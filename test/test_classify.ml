(* Unit tests for report classification, report rendering and
   suppression generation over synthetic reports. *)

module Det = Raceguard_detector
module Loc = Raceguard_util.Loc
module R = Raceguard

let mk_report ?(kind = Det.Report.Race_write) ?(addr = 16) ~stack () =
  {
    Det.Report.kind;
    addr;
    tid = 2;
    thread_name = "worker";
    stack;
    detail = "Previous state: shared modified, no locks";
    block =
      Some { Det.Report.b_base = 16; b_len = 4; b_alloc_tid = 0; b_alloc_stack = [ Loc.v "a.c" "main" 1 ] };
    clock = 100;
    provenance = None;
  }

let stack1 =
  [ Loc.v "x.c" "f" 10; Loc.v "x.c" "g" 20; Loc.v "x.c" "h" 25; Loc.v "x.c" "main" 30 ]
let stack2 = [ Loc.v "y.c" "h" 5; Loc.v "y.c" "main" 6 ]
let stack3 = [ Loc.v "z.c" "k" 7 ]

let test_signature () =
  let r1 = mk_report ~stack:stack1 () and r1' = mk_report ~addr:99 ~stack:stack1 () in
  Alcotest.(check bool) "same stack, same signature" true
    (Det.Report.signature r1 = Det.Report.signature r1');
  let r2 = mk_report ~kind:Det.Report.Race_read ~stack:stack1 () in
  Alcotest.(check bool) "kind is part of the signature" false
    (Det.Report.signature r1 = Det.Report.signature r2);
  (* only the top 4 frames participate *)
  let deep extra = mk_report ~stack:(stack1 @ [ Loc.v "x.c" "outer" extra ]) () in
  Alcotest.(check bool) "frames beyond the depth are ignored" true
    (Det.Report.signature (deep 1) = Det.Report.signature (deep 2))

let test_report_rendering () =
  let rendered = Fmt.str "%a" Det.Report.pp (mk_report ~stack:stack1 ()) in
  List.iter
    (fun needle ->
      let contains =
        let n = String.length needle and m = String.length rendered in
        let rec go i = i + n <= m && (String.sub rendered i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("rendering mentions " ^ needle) true contains)
    [
      "Possible data race writing variable";
      "at f (x.c:10)";
      "by g (x.c:20)";
      "inside a block of size 4 alloc'd by thread 0";
      "Previous state";
    ]

let test_split_differencing () =
  (* Original reports {1,2,3}; HWLC removes 1; DR removes 2; 3 remains *)
  let l1 = mk_report ~stack:stack1 () in
  let l2 = mk_report ~stack:stack2 () in
  let l3 = mk_report ~stack:stack3 () in
  let s =
    R.Classify.split
      ~original:[ (l1, 4); (l2, 2); (l3, 1) ]
      ~hwlc:[ (l2, 2); (l3, 1) ]
      ~hwlc_dr:[ (l3, 1) ]
  in
  Alcotest.(check int) "hw FP" 1 s.hw_lock_fp;
  Alcotest.(check int) "dtor FP" 1 s.destructor_fp;
  Alcotest.(check int) "remaining" 1 s.remaining;
  Alcotest.(check int) "total" 3 s.total;
  Alcotest.(check bool) "reduction" true (abs_float (R.Classify.reduction_pct s -. 66.6) < 1.0)

let test_bug_attribution () =
  let watchdog_stack = [ Loc.v "lock_watch.cpp" "LockWatch::scan" 52 ] in
  let ctime_stack = [ Loc.v "time.c" "ctime" 22; Loc.v "proxy.cpp" "SipProxy::handleInvite" 160 ] in
  Alcotest.(check bool) "watchdog stack -> B1" true
    (Raceguard_sip.Bugs.identify watchdog_stack = [ Raceguard_sip.Bugs.B1_watchdog ]);
  Alcotest.(check bool) "ctime stack -> B5" true
    (List.mem Raceguard_sip.Bugs.B5_static_buffer (Raceguard_sip.Bugs.identify ctime_stack));
  Alcotest.(check (list string)) "unrelated stack -> nothing" []
    (List.map Raceguard_sip.Bugs.to_string (Raceguard_sip.Bugs.identify stack1))

let test_gen_suppression_matches_own_report () =
  let r = mk_report ~stack:stack1 () in
  let s =
    Det.Suppression.of_frames ~name:"generated"
      ~kind:(Fmt.str "%a" Det.Report.pp_kind r.kind)
      ~frames:r.stack
  in
  Alcotest.(check bool) "suppresses its own report" true
    (Det.Suppression.matches s
       ~kind:(Fmt.str "%a" Det.Report.pp_kind r.kind)
       ~stack:r.stack);
  Alcotest.(check bool) "does not suppress others" false
    (Det.Suppression.matches s
       ~kind:(Fmt.str "%a" Det.Report.pp_kind r.kind)
       ~stack:stack2);
  (* survives a serialisation round trip *)
  match Det.Suppression.parse_string (Det.Suppression.to_string s) with
  | [ s' ] ->
      Alcotest.(check bool) "roundtripped suppression still matches" true
        (Det.Suppression.matches s'
           ~kind:(Fmt.str "%a" Det.Report.pp_kind r.kind)
           ~stack:r.stack)
  | _ -> Alcotest.fail "roundtrip parse failed"

let test_collector_ordering () =
  let c = Det.Report.collector () in
  Det.Report.add c { (mk_report ~stack:stack2 ()) with clock = 5 };
  Det.Report.add c { (mk_report ~stack:stack1 ()) with clock = 9 };
  Det.Report.add c { (mk_report ~stack:stack2 ()) with clock = 12 };
  Alcotest.(check int) "two locations" 2 (Det.Report.location_count c);
  Alcotest.(check int) "three occurrences" 3 (Det.Report.occurrence_count c);
  match Det.Report.locations c with
  | [ (first, n1); (second, n2) ] ->
      Alcotest.(check int) "first seen first" 5 first.clock;
      Alcotest.(check int) "first count" 2 n1;
      Alcotest.(check int) "second count" 1 n2;
      Alcotest.(check int) "second clock" 9 second.clock
  | _ -> Alcotest.fail "unexpected location list"

let suite =
  ( "classify",
    [
      Alcotest.test_case "signatures" `Quick test_signature;
      Alcotest.test_case "report rendering" `Quick test_report_rendering;
      Alcotest.test_case "split by differencing" `Quick test_split_differencing;
      Alcotest.test_case "bug attribution" `Quick test_bug_attribution;
      Alcotest.test_case "gen-suppressions" `Quick test_gen_suppression_matches_own_report;
      Alcotest.test_case "collector ordering" `Quick test_collector_ordering;
    ] )
