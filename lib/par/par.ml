(** Multicore cell pool: run a grid of independent deterministic cells
    across OCaml 5 domains with per-domain work-stealing deques.

    Every matrix this repo runs — bench audits, the chaos matrix, the
    explain knob sweep, the static/dynamic cross-check — is an array of
    cells where cell [i]'s result depends only on cell [i]'s input
    (each cell builds its own VM/tool instances, and the few
    process-wide caches — lockset interning, held-lock memos, the
    metrics registry — are domain-local, see DESIGN.md §12).  So the
    parallel contract is simple: {!map_cells} returns exactly
    [Array.map f cells], it just computes the slots on [domains]
    domains.

    Scheduling follows the [polytypic/par-ml] exemplar in spirit:
    one deque per worker, round-robin seeding, owners pop LIFO, idle
    workers sweep the other deques in {!steal_rounds} bounded rounds
    (distinguishing a lost CAS from emptiness) and back off between
    sweeps.  Cells are coarse (whole VM runs), so there is no fiber
    layer — a cell never suspends. *)

(** How many worker domains [domains = 0] resolves to: all
    recommended domains minus one for the rest of the process, never
    below 1.  Keeps local runs and CI from hardcoding core counts. *)
let recommended () = max 1 (Domain.recommended_domain_count () - 1)

let resolve domains = if domains <= 0 then recommended () else domains

type stats = {
  st_domains : int;  (** workers actually used (capped by cell count) *)
  st_cells : int;
  st_steals : int;  (** cells executed by a non-home worker *)
}

let steal_rounds = 2

(* Grab one cell index for [wid]: own deque first, else sweep the other
   deques in [steal_rounds] bounded rounds.  [None] means "nothing
   found this sweep", not "the matrix is done" — the caller re-checks
   [remaining]. *)
let find_work deques wid steals =
  let w = Array.length deques in
  match Deque.pop deques.(wid) with
  | Some _ as cell -> cell
  | None ->
      let stolen = ref None in
      let round = ref 0 in
      while !stolen = None && !round < steal_rounds do
        incr round;
        let v = ref 1 in
        while !stolen = None && !v < w do
          (match Deque.steal deques.((wid + !v) mod w) with
          | Deque.Stolen i ->
              Atomic.incr steals;
              stolen := Some i
          | Deque.Retry | Deque.Empty -> ());
          incr v
        done
      done;
      !stolen

let map_cells_stats ~domains f cells =
  let n = Array.length cells in
  let domains = resolve domains in
  if domains <= 1 || n <= 1 then begin
    (* sequential fast path — same failure contract as the pool: every
       cell still runs, then the lowest-index failure is re-raised, so
       switching [--domains] never changes which cells executed *)
    let results = Array.make n None in
    let failure = ref None in
    for i = 0 to n - 1 do
      match f cells.(i) with
      | v -> results.(i) <- Some v
      | exception e -> (
          match !failure with
          | Some _ -> ()
          | None -> failure := Some (e, Printexc.get_raw_backtrace ()))
    done;
    (match !failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    ( Array.map (function Some v -> v | None -> assert false) results,
      { st_domains = 1; st_cells = n; st_steals = 0 } )
  end
  else begin
    let w = min domains n in
    let deques = Array.init w (fun _ -> Deque.create ~capacity:n) in
    (* Round-robin seeding, pushed high-to-low so each owner pops its
       cells in index order — with no steals the execution order per
       worker matches the sequential runner's. *)
    for i = n - 1 downto 0 do
      Deque.push deques.(i mod w) i
    done;
    let results = Array.make n None in
    let remaining = Atomic.make n in
    let steals = Atomic.make 0 in
    let failures = Atomic.make [] in
    let run_cell i =
      (match f cells.(i) with
      | v -> results.(i) <- Some v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          let rec record () =
            let cur = Atomic.get failures in
            if not (Atomic.compare_and_set failures cur ((i, e, bt) :: cur)) then record ()
          in
          record ());
      ignore (Atomic.fetch_and_add remaining (-1))
    in
    let worker wid =
      let backoff = ref 0 in
      let rec go () =
        match find_work deques wid steals with
        | Some i ->
            backoff := 0;
            run_cell i;
            go ()
        | None ->
            if Atomic.get remaining > 0 then begin
              (* nothing stealable right now: some worker is inside a
                 long cell.  Spin politely, then sleep — on small
                 machines a spinning domain would steal cycles from the
                 one doing the work. *)
              incr backoff;
              if !backoff < 32 then Domain.cpu_relax () else Unix.sleepf 0.0005;
              go ()
            end
      in
      go ()
    in
    let spawned = Array.init (w - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1))) in
    worker 0;
    Array.iter Domain.join spawned;
    (* All cells ran to completion (or failure) — surface the
       lowest-index failure, like the sequential runner would have. *)
    (match List.sort compare (List.map (fun (i, _, _) -> i) (Atomic.get failures)) with
    | [] -> ()
    | first :: _ ->
        let _, e, bt =
          List.find (fun (i, _, _) -> i = first) (Atomic.get failures)
        in
        Printexc.raise_with_backtrace e bt);
    ( Array.map (function Some v -> v | None -> assert false) results,
      { st_domains = w; st_cells = n; st_steals = Atomic.get steals } )
  end

let map_cells ~domains f cells = fst (map_cells_stats ~domains f cells)
