(** Post-mortem (offline) analysis — §2.2 / §4.5.

    "Principally, on-the-fly checkers can work post mortem and hence
    reduce the performance impact due to the online calculations.  But
    they still need logging of the execution trace.  Hence, offline
    techniques suffer from their need for large amounts of data."

    A {!recorder} is the compact binary recorder of {!Raceguard_trace}:
    a VM tool that streams every event {e together with} the
    introspection data a detector would have queried live (call stack,
    heap block, clock) into a [raceguard-trace/1] byte stream —
    interned tables, varint encoding, CRC-guarded footer.  {!replay}
    then feeds any detector tool the decoded stream through the
    synthetic context of {!Raceguard_trace.Reader}.  The recorder's
    [footprint_words] makes the space cost measurable — the trade-off
    experiment of §4.5 — and is now the cost of the {e encoded} log,
    not of an in-memory object graph.

    The {!sink} registry names the ten detector configurations the
    replay plane drives (the bench subjects plus the §5 annotation
    extension); {!replay_config} is the pure per-config cell the
    parallel fan-out in [lib/core] maps across domains. *)

module Vm = Raceguard_vm
module Loc = Raceguard_util.Loc
module Json = Raceguard_obs.Json
module Trace = Raceguard_trace

(* --- recording ------------------------------------------------------ *)

type recorder = { writer : Trace.Writer.t }

let create_recorder ?snapshot_every ?meta () =
  { writer = Trace.Writer.create ?snapshot_every ?meta () }

let tool r = Trace.Writer.tool r.writer
let length r = Trace.Writer.event_count r.writer
let writer r = r.writer
let contents r = Trace.Writer.contents r.writer
let to_file r path = Trace.Writer.to_file r.writer path

(** Space cost of the encoded log, in words — the paper's "heavy memory
    usage" of offline analysis, made concrete (and, with the interned
    binary format, small). *)
let footprint_words r =
  (Trace.Writer.byte_size r.writer + (Sys.word_size / 8) - 1) / (Sys.word_size / 8)

let decode r =
  match Trace.Reader.of_string (contents r) with
  | Ok t -> t
  | Error (`Msg m) -> invalid_arg ("Offline.decode: " ^ m)

(** Feed the recorded trace through a tool, post mortem. *)
let replay r (tool : Vm.Tool.t) = Trace.Reader.replay (decode r) [ tool ]

(* --- the detector sink registry ------------------------------------- *)

(** One detector instance behind a uniform face: the replay plane can
    drive any of them and read back counts, dedup signatures and
    rendered occurrences without knowing which algorithm it is. *)
type sink = {
  sk_name : string;
  sk_config : Json.t;  (** full configuration, echoed into JSON outputs *)
  sk_tool : Vm.Tool.t;
  sk_occurrences : unit -> Report.t list;
  sk_locations : unit -> (Report.t * int) list;
}

let sink_of_helgrind name cfg =
  let h = Helgrind.create cfg in
  {
    sk_name = name;
    sk_config = Helgrind.config_to_json cfg;
    sk_tool = Helgrind.tool h;
    sk_occurrences = (fun () -> Helgrind.reports h);
    sk_locations = (fun () -> Helgrind.locations h);
  }

let other_config detector = Json.Obj [ ("detector", Json.Str detector) ]

(** The ten replayable configurations: the paper's Helgrind column
    (original → HWLC → HWLC+DR → HWLC+DR+HB), the pure-Eraser ablation,
    the three surveyed baselines, and the epoch-based pair —
    "fasttrack" pinned byte-identical to "djit", "hybrid-epoch" pinned
    byte-identical to "hybrid". *)
let configs =
  [
    "helgrind-original";
    "helgrind-hwlc";
    "helgrind-hwlc+dr";
    "helgrind-hwlc+dr+hb";
    "eraser-pure";
    "djit";
    "fasttrack";
    "racetrack";
    "hybrid";
    "hybrid-epoch";
  ]

let sink = function
  | "helgrind-original" -> sink_of_helgrind "helgrind-original" Helgrind.original
  | "helgrind-hwlc" -> sink_of_helgrind "helgrind-hwlc" Helgrind.hwlc
  | "helgrind-hwlc+dr" -> sink_of_helgrind "helgrind-hwlc+dr" Helgrind.hwlc_dr
  | "helgrind-hwlc+dr+hb" -> sink_of_helgrind "helgrind-hwlc+dr+hb" Helgrind.hwlc_dr_hb
  | "eraser-pure" -> sink_of_helgrind "eraser-pure" Helgrind.pure_eraser
  | "djit" ->
      let d = Djit.create () in
      {
        sk_name = "djit";
        sk_config = other_config "djit";
        sk_tool = Djit.tool d;
        sk_occurrences = (fun () -> Djit.reports d);
        sk_locations = (fun () -> Djit.locations d);
      }
  | "fasttrack" ->
      let f = Fasttrack.create () in
      {
        sk_name = "fasttrack";
        sk_config = Fasttrack.config_to_json Fasttrack.default_config;
        sk_tool = Fasttrack.tool f;
        sk_occurrences = (fun () -> Fasttrack.reports f);
        sk_locations = (fun () -> Fasttrack.locations f);
      }
  | "racetrack" ->
      let r = Racetrack.create () in
      {
        sk_name = "racetrack";
        sk_config = other_config "racetrack";
        sk_tool = Racetrack.tool r;
        sk_occurrences = (fun () -> Racetrack.reports r);
        sk_locations = (fun () -> Racetrack.locations r);
      }
  | "hybrid" ->
      let h = Hybrid.create () in
      {
        sk_name = "hybrid";
        sk_config = other_config "hybrid";
        sk_tool = Hybrid.tool h;
        sk_occurrences = (fun () -> Hybrid.reports h);
        sk_locations = (fun () -> Hybrid.locations h);
      }
  | "hybrid-epoch" ->
      let h = Hybrid.create ~config:Hybrid.epoch_config () in
      {
        sk_name = "hybrid-epoch";
        sk_config = other_config "hybrid-epoch";
        sk_tool = Hybrid.tool h;
        sk_occurrences = (fun () -> Hybrid.reports h);
        sk_locations = (fun () -> Hybrid.locations h);
      }
  | name -> invalid_arg ("Offline.sink: unknown config " ^ name)

let sinks ?(configs = configs) () = List.map sink configs

(* --- verdicts: what a detector concluded, digested ------------------ *)

let sig_string (r : Report.t) =
  let kind, frames = Report.signature r in
  Fmt.str "%a@%s" Report.pp_kind kind
    (String.concat ";" (List.map (fun l -> Fmt.str "%a" Loc.pp l) frames))

let digest_strings lines = Digest.to_hex (Digest.string (String.concat "\n" lines))

(** MD5 over the sorted dedup signatures — the same digest the bench
    and chaos fidelity gates use. *)
let digest_signatures locations =
  digest_strings (List.sort compare (List.map (fun (r, _) -> sig_string r) locations))

(** MD5 over every occurrence rendered with {!Report.pp}, in
    chronological order: byte-level equality of the full report stream,
    not just of its dedup signatures. *)
let digest_reports occurrences =
  digest_strings (List.map (Fmt.str "%a" Report.pp) occurrences)

type verdict = {
  v_config : string;
  v_events : int;  (** events fed to the detector *)
  v_occurrences : int;
  v_locations : int;  (** deduplicated — the Figure-6 metric *)
  v_sig_digest : string;
  v_report_digest : string;
}

let verdict_of_sink ~events s =
  {
    v_config = s.sk_name;
    v_events = events;
    v_occurrences = List.length (s.sk_occurrences ());
    v_locations = List.length (s.sk_locations ());
    v_sig_digest = digest_signatures (s.sk_locations ());
    v_report_digest = digest_reports (s.sk_occurrences ());
  }

let verdict_to_json v =
  Json.Obj
    [
      ("config", Json.Str v.v_config);
      ("events", Json.int v.v_events);
      ("occurrences", Json.int v.v_occurrences);
      ("locations", Json.int v.v_locations);
      ("sig_digest", Json.Str v.v_sig_digest);
      ("report_digest", Json.Str v.v_report_digest);
    ]

let verdict_equal a b =
  a.v_config = b.v_config && a.v_events = b.v_events
  && a.v_occurrences = b.v_occurrences
  && a.v_locations = b.v_locations
  && a.v_sig_digest = b.v_sig_digest
  && a.v_report_digest = b.v_report_digest

(** Drive one named configuration over a decoded trace.  Pure in the
    sense the parallel runner needs: a fresh detector instance per
    call, no shared state — one cell of the replay fan-out. *)
let replay_config trace name =
  let s = sink name in
  Trace.Reader.replay trace [ s.sk_tool ];
  verdict_of_sink ~events:(Trace.Reader.length trace) s

(** Sequential replay of several configurations (the parallel version
    lives in [lib/core], on the work-stealing pool). *)
let replay_all ?(configs = configs) trace = List.map (replay_config trace) configs
