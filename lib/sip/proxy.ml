(** The SIP proxy / registrar server — the application under test.

    A scaled-down transliteration of the paper's 500 kLOC commercial
    signalling server: POSIX-thread style concurrency, the
    "thread-per-request" pattern (one worker spawned per datagram,
    §3.3) with an optional thread-pool variant (§4.2.3), shared state
    behind mutexes — and the real bugs the paper found left in,
    individually toggleable:

    - B1 watchdog race ([enable_watchdog], disabled by default exactly
      as the authors disabled it "for further experiments");
    - B2 initialisation-order race ([init_racy], §4.1.1);
    - B3 shutdown-order race ([shutdown_racy], §4.1.1);
    - B4 returning a reference to a locked map ([use_leaked_ref],
      §4.1.2 / Figure 7);
    - B5 non-thread-safe time formatting (always on, §4.1.3);
    - B6 unsynchronised statistics counters (always on).

    False-positive generators faithful to the paper: destructor chains
    of derived objects deleted after unlinking from shared tables,
    copy-on-write strings with bus-locked reference counters, stop
    flags written with [LOCK]-prefixed stores, and (optionally) the
    pooled container allocator.

    With [config.resilience] set the server additionally behaves like
    a hardened RFC 3261 element: final responses are cached and replay
    retransmitted requests ({!Txn_cache}), INVITE 200s are retransmitted
    with exponential backoff until ACKed ({!Timer_wheel} + {!Backoff}),
    requests past their deadline and datagrams arriving over the pool's
    high-water mark are deliberately shed with 503 + Retry-After, and
    injected allocation failures are converted to 503s instead of dead
    workers. *)

module Loc = Raceguard_util.Loc
module Api = Raceguard_vm.Api
module Obj_model = Raceguard_cxxsim.Object_model
module Refstring = Raceguard_cxxsim.Refstring
module Allocator = Raceguard_cxxsim.Allocator
module Metrics = Raceguard_obs.Metrics

let lc func line = Loc.v "proxy.cpp" ("SipProxy::" ^ func) line

let m_shed = Metrics.counter "sip.resilience.shed"
let m_deadline_dropped = Metrics.counter "sip.resilience.deadline_dropped"
let m_oom_503 = Metrics.counter "sip.resilience.oom_503"
let m_invite_replayed = Metrics.counter "sip.resilience.invite_replayed"

type pattern = Per_request | Pool of int

type resilience = {
  res_shed_high_water : int;
      (** pool-queue depth at which the listener starts shedding *)
  res_retry_after : int;  (** Retry-After value on shed 503s (ticks) *)
  res_deadline : int;
      (** drop (with 503) requests older than this when dequeued;
          0 disables the deadline check *)
}

let default_resilience = { res_shed_high_water = 12; res_retry_after = 60; res_deadline = 300 }

type config = {
  annotate : bool;  (** built with the DR instrumentation? *)
  alloc_mode : Allocator.mode;
  pattern : pattern;
  enable_watchdog : bool;  (** B1 *)
  init_racy : bool;  (** B2 *)
  shutdown_racy : bool;  (** B3 *)
  use_leaked_ref : bool;  (** B4 *)
  require_auth : bool;
      (** challenge REGISTERs with a digest nonce (401 flow) *)
  domains : string list;
  resilience : resilience option;
      (** [None] = the legacy server; [Some _] enables the recovery
          paths (response cache, 200 retransmission, shedding) *)
  faults : Raceguard_faults.Injector.t option;
      (** fault injector shared with the transport/engine, consulted by
          the allocator (allocation-failure faults) *)
  registrar_sharding : Registrar.sharding;
      (** [Unsharded] (the default) keeps the historical single-mutex
          registrar byte-identical; [Sharded] stripes it with online
          rebalance (the T9/T10 storm surface) *)
}

let default_config =
  {
    annotate = false;
    alloc_mode = Allocator.Direct;
    pattern = Per_request;
    enable_watchdog = false;
    init_racy = true;
    shutdown_racy = true;
    use_leaked_ref = true;
    require_auth = false;
    domains = [ "example.com"; "voip.example.net"; "pbx.local" ];
    resilience = None;
    faults = None;
    registrar_sharding = Registrar.Unsharded;
  }

(* class CtxBase { int src_id; }
   class RequestCtx : CtxBase { int buf; int len; int status; int handled; } *)
let ctx_base_class =
  Obj_model.define ~name:"CtxBase" ~fields:[ "src_id" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.set ~loc:(Loc.v "proxy.cpp" "CtxBase::~CtxBase" 60) cls obj "src_id" 0)
    ()

let request_ctx_class =
  Obj_model.define ~parent:ctx_base_class ~name:"RequestCtx"
    ~fields:[ "buf"; "len"; "status"; "handled"; "latency"; "born" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.set ~loc:(Loc.v "proxy.cpp" "RequestCtx::~RequestCtx" 67) cls obj "handled" 0)
    ()

type t = {
  config : config;
  transport : Transport.t;
  endpoint : Transport.endpoint;
  alloc : Allocator.t;
  stats : Stats.t;
  time : Timeutil.t;
  logger : Logger.t;
  registrar : Registrar.t;
  dialogs : Dialogs.t;
  domain_data : Domain_data.t;
  routing : Routing.t;
  history : History.t;
  auth : Auth.t;
  timer : Timer_wheel.t;
  watchdog : Watchdog.t option;
  txn_cache : Txn_cache.t option;  (** response cache, resilient builds only *)
  retrans : (int, string * string) Hashtbl.t;
      (** txn_key -> (peer, final 200 wire) awaiting ACK — the host-side
          mirror backing the timer's resend callback *)
  server_name : Refstring.t;  (** shared banner string *)
  reason_ok : Refstring.t;  (** canned reason phrases, shared across workers *)
  reason_ringing : Refstring.t;
  reason_not_found : Refstring.t;
  reason_bad_request : Refstring.t;
  reason_gone : Refstring.t;
  reason_unauthorized : Refstring.t;
  mutable sources : string array;  (** src_id -> endpoint name (host side) *)
  mutable n_sources : int;
  mutable listener : int;
  mutable workers : int list;  (** per-request worker tids *)
  pool : Raceguard_vm.Thread_pool.t option ref;
  mutable requests_handled : int;
  mutable sheds : int;  (** host-side mirror: 503s sent by overload control *)
}

let stop_wire = "__STOP__"

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let extract_domain uri =
  (* sip:user@domain -> domain *)
  match String.index_opt uri '@' with
  | Some i -> String.sub uri (i + 1) (String.length uri - i - 1)
  | None -> ( match String.index_opt uri ':' with
      | Some i -> String.sub uri (i + 1) (String.length uri - i - 1)
      | None -> uri)

let extract_user uri =
  let uri = match String.index_opt uri ':' with
    | Some i when String.length uri > 4 && String.sub uri 0 4 = "sip:" ->
        String.sub uri (i + 1) (String.length uri - i - 1)
    | _ -> uri
  in
  match String.index_opt uri '@' with Some i -> String.sub uri 0 i | None -> uri

let resilient t = Option.is_some t.config.resilience

let retry_after t =
  match t.config.resilience with Some r -> r.res_retry_after | None -> 0

let txn_key_of (w : Sip_msg.wire_request) =
  Txn_cache.key ~call_id:w.w_call_id ~cseq:w.w_cseq ~meth:(Sip_msg.meth_code w.w_meth)

(** Cache key for the final response of this transaction, when the
    response cache is enabled. *)
let ck t (w : Sip_msg.wire_request) =
  match t.txn_cache with Some _ -> Some (txn_key_of w) | None -> None

(** A matchable 503 built host-side (no allocation): the recovery path
    for requests we refuse or cannot serve. *)
let unavailable_wire (w : Sip_msg.wire_request) ~retry_after =
  Printf.sprintf
    "SIP/2.0 503 Service Unavailable\r\nFrom: %s\r\nTo: %s\r\nCall-ID: %s\r\nCSeq: %d\r\nRetry-After: %d\r\n\r\n"
    w.w_from w.w_to w.w_call_id w.w_cseq retry_after

let reply t ~src ?(www_auth = 0) ?store ~status ~reason_rs req_obj =
  let loc = lc "reply" 120 in
  Api.with_frame loc @@ fun () ->
  let resp = Sip_msg.build_response_object ~loc ~www_auth ~status ~reason_rs req_obj in
  let wire = Sip_msg.serialize_response ~loc resp in
  (match Transport.send t.transport ~src:"server" ~dst:src wire with
  | Transport.Dropped_unroutable ->
      Logger.log t.logger ~loc:(lc "reply" 123) ~level:2
        (Printf.sprintf "response %d to unroutable peer %s" status src)
  | Transport.Delivered | Transport.Dropped_fault | Transport.Delayed_fault -> ());
  Stats.incr_total_responses t.stats;
  (* remember the final response so a retransmitted request is answered
     from the cache (401 challenges carry one-shot nonces: never cached) *)
  (match (t.txn_cache, store) with
  | Some cache, Some key when status >= 200 && status <> 401 ->
      Txn_cache.store cache ~key ~status ~wire
  | _ -> ());
  (* the response was created and is deleted by this worker: exclusive,
     so its destructor chain is (correctly) silent *)
  Obj_model.delete_ ~loc:(lc "reply" 127) ~annotate:t.config.annotate Sip_msg.sip_response resp;
  wire

let reply_raw t ~src ~status ~reason =
  ignore
    (Transport.send t.transport ~src:"server" ~dst:src
       (Printf.sprintf "SIP/2.0 %d %s\r\n\r\n" status reason));
  Stats.incr_total_responses t.stats

let record_history t ~src_id (w : Sip_msg.wire_request) ~outcome =
  Stats.incr_method t.stats ~meth_code:(Sip_msg.meth_code w.w_meth);
  (* timestamp the handler trace with the non-thread-safe ctime (B5) *)
  ignore (Timeutil.ctime t.time);
  History.record t.history ~src_id ~meth:(Sip_msg.meth_code w.w_meth) ~uri:w.w_uri ~outcome

(** Drop the awaiting-ACK state of a terminated INVITE transaction:
    cancel pending 200 retransmissions and forget the cached wire. *)
let clear_retransmit t ~call_id =
  if resilient t then begin
    let txn_key = Registrar.hash_string call_id in
    ignore (Timer_wheel.cancel t.timer ~txn_key);
    Hashtbl.remove t.retrans txn_key
  end

let handle_register t ~src ~src_id (w : Sip_msg.wire_request) req_obj =
  Api.with_frame (lc "handleRegister" 137) @@ fun () ->
  record_history t ~src_id w ~outcome:200;
  let aor = extract_user w.w_to ^ "@" ^ extract_domain w.w_to in
  let authorized =
    (not t.config.require_auth)
    || (w.w_auth <> 0 && Auth.verify t.auth ~user:aor ~response:w.w_auth)
  in
  if not authorized then begin
    (* RFC 2617 challenge: issue a nonce and ask the UAC to retry *)
    let nonce = Auth.challenge t.auth ~user:aor in
    ignore (reply t ~src ~www_auth:nonce ~status:401 ~reason_rs:t.reason_unauthorized req_obj)
  end
  else
  if w.w_expires = 0 then begin
    let existed = Registrar.unregister t.registrar ~annotate:t.config.annotate ~aor in
    Logger.log t.logger ~loc:(lc "handleRegister" 140) ~level:1
      (Printf.sprintf "unregister %s (%b)" aor existed);
    ignore (reply t ~src ?store:(ck t w) ~status:200 ~reason_rs:t.reason_ok req_obj)
  end
  else begin
    let expires = if w.w_expires > 0 then w.w_expires else 3600 in
    let outcome =
      Registrar.register t.registrar ~annotate:t.config.annotate ~aor ~contact:w.w_contact
        ~cseq:w.w_cseq ~expires
    in
    Logger.log t.logger ~loc:(lc "handleRegister" 150) ~level:1
      (Printf.sprintf "register %s -> %s (%s)" aor w.w_contact
         (match outcome with `Registered -> "new" | `Refreshed -> "refresh"));
    ignore (reply t ~src ?store:(ck t w) ~status:200 ~reason_rs:t.reason_ok req_obj)
  end

let handle_invite t ~src ~src_id (w : Sip_msg.wire_request) req_obj =
  Api.with_frame (lc "handleInvite" 160) @@ fun () ->
  record_history t ~src_id w ~outcome:180;
  let callee = extract_user w.w_to ^ "@" ^ extract_domain w.w_to in
  let domain = extract_domain w.w_to in
  (* consult per-domain limits through the leaky accessor (B4) *)
  let _limit =
    if t.config.use_leaked_ref then Domain_data.unsafe_lookup t.domain_data ~domain
    else Domain_data.safe_lookup t.domain_data ~domain
  in
  let _route = Routing.next_hop t.routing ~domain in
  match Registrar.lookup t.registrar ~aor:callee with
  | None ->
      Logger.log t.logger ~loc:(lc "handleInvite" 167) ~level:2
        (Printf.sprintf "INVITE %s: callee not registered" callee);
      ignore (reply t ~src ?store:(ck t w) ~status:404 ~reason_rs:t.reason_not_found req_obj)
  | Some contact_copy ->
      (* we own one reference to the contact string now *)
      let txn_key = Registrar.hash_string w.w_call_id in
      let rec establish ~retry_left =
        let started =
          Dialogs.start_call t.dialogs ~caller:w.w_from ~callee:w.w_to ~call_id:w.w_call_id
            ~cseq:w.w_cseq
        in
        if started then begin
          Timer_wheel.schedule_retransmit t.timer ~txn_key ~delay:40;
          Logger.log t.logger ~loc:(lc "handleInvite" 179) ~level:1
            (Printf.sprintf "call %s -> %s via %s" w.w_from w.w_to
               (Refstring.to_string contact_copy));
          ignore (reply t ~src ~status:180 ~reason_rs:t.reason_ringing req_obj);
          let wire = reply t ~src ?store:(ck t w) ~status:200 ~reason_rs:t.reason_ok req_obj in
          if resilient t then Hashtbl.replace t.retrans txn_key (src, wire)
        end
        else if retry_left > 0 && resilient t then begin
          (* a duplicate INVITE whose original transaction is still live
             (its 200 may have been lost before the cache saw it): tear
             the half-open dialog down and re-establish, instead of the
             legacy spurious 482 *)
          Metrics.incr m_invite_replayed;
          clear_retransmit t ~call_id:w.w_call_id;
          ignore (Dialogs.end_call t.dialogs ~annotate:t.config.annotate ~call_id:w.w_call_id);
          establish ~retry_left:(retry_left - 1)
        end
        else
          ignore (reply t ~src ?store:(ck t w) ~status:482 ~reason_rs:t.reason_bad_request req_obj)
      in
      establish ~retry_left:1;
      Refstring.release contact_copy

let handle_bye t ~src ~src_id (w : Sip_msg.wire_request) req_obj =
  Api.with_frame (lc "handleBye" 189) @@ fun () ->
  record_history t ~src_id w ~outcome:200;
  let ended = Dialogs.end_call t.dialogs ~annotate:t.config.annotate ~call_id:w.w_call_id in
  Logger.log t.logger ~loc:(lc "handleBye" 191) ~level:1
    (Printf.sprintf "BYE %s (%b)" w.w_call_id ended);
  if ended then begin
    clear_retransmit t ~call_id:w.w_call_id;
    ignore (reply t ~src ?store:(ck t w) ~status:200 ~reason_rs:t.reason_ok req_obj)
  end
  else ignore (reply t ~src ?store:(ck t w) ~status:481 ~reason_rs:t.reason_gone req_obj)

let handle_cancel t ~src ~src_id (w : Sip_msg.wire_request) req_obj =
  Api.with_frame (lc "handleCancel" 197) @@ fun () ->
  record_history t ~src_id w ~outcome:487;
  let ok = Dialogs.cancel t.dialogs ~call_id:w.w_call_id in
  if ok then begin
    clear_retransmit t ~call_id:w.w_call_id;
    ignore (reply t ~src ?store:(ck t w) ~status:200 ~reason_rs:t.reason_ok req_obj)
  end
  else ignore (reply t ~src ?store:(ck t w) ~status:481 ~reason_rs:t.reason_gone req_obj)

let handle_options t ~src ~src_id (w : Sip_msg.wire_request) req_obj =
  Api.with_frame (lc "handleOptions" 202) @@ fun () ->
  record_history t ~src_id w ~outcome:200;
  let _route = Routing.next_hop t.routing ~domain:(extract_domain w.w_uri) in
  (* touch the shared banner (copy + read + release: bus-lock sites) *)
  let banner = Refstring.copy t.server_name in
  Logger.log t.logger ~loc:(lc "handleOptions" 204) ~level:0
    (Printf.sprintf "OPTIONS served by %s" (Refstring.to_string banner));
  Refstring.release banner;
  ignore (reply t ~src ~status:200 ~reason_rs:t.reason_ok req_obj)

(** The per-request worker body: parse, dispatch, clean up. *)
let process_request t ~src_id ~buf ~len ~born =
  let loc = lc "processRequest" 212 in
  Api.with_frame loc @@ fun () ->
  (match t.watchdog with Some w -> Watchdog.before_lock w | None -> ());
  let src = t.sources.(src_id) in
  Stats.incr_total_requests t.stats;
  t.requests_handled <- t.requests_handled + 1;
  (match Sip_msg.parse_request buf len with
  | exception Sip_msg.Parse_error why ->
      Stats.incr_parse_errors t.stats;
      Logger.log t.logger ~loc:(lc "processRequest" 221) ~level:2 ("parse error: " ^ why);
      reply_raw t ~src ~status:400 ~reason:"Bad Request"
  | w ->
      let answered_from_cache =
        match t.txn_cache with
        | Some cache when w.w_meth <> Sip_msg.ACK -> (
            match Txn_cache.lookup cache ~key:(txn_key_of w) with
            | Some wire ->
                (* a retransmission of a completed transaction: replay
                   the final response instead of re-executing (§17.2) *)
                ignore (Transport.send t.transport ~src:"server" ~dst:src wire);
                Stats.incr_total_responses t.stats;
                true
            | None -> false)
        | _ -> false
      in
      let past_deadline =
        match t.config.resilience with
        | Some r -> r.res_deadline > 0 && Api.now () - born > r.res_deadline
        | None -> false
      in
      if answered_from_cache then ()
      else if past_deadline then begin
        (* the client has long since retransmitted or given up: answer
           cheaply and deliberately instead of doing stale work *)
        Metrics.incr m_deadline_dropped;
        t.sheds <- t.sheds + 1;
        ignore
          (Transport.send t.transport ~src:"server" ~dst:src
             (unavailable_wire w ~retry_after:(retry_after t)));
        Stats.incr_total_responses t.stats
      end
      else begin
        let req_obj = Sip_msg.build_request_object ~loc w in
        (try
           match w.w_meth with
           | Sip_msg.REGISTER -> handle_register t ~src ~src_id w req_obj
           | Sip_msg.INVITE -> handle_invite t ~src ~src_id w req_obj
           | Sip_msg.ACK ->
               ignore (Dialogs.confirm t.dialogs ~call_id:w.w_call_id);
               (* the ACK ends 200 retransmission (RFC 3261 §13.3.1.4) *)
               clear_retransmit t ~call_id:w.w_call_id
           | Sip_msg.BYE -> handle_bye t ~src ~src_id w req_obj
           | Sip_msg.CANCEL -> handle_cancel t ~src ~src_id w req_obj
           | Sip_msg.OPTIONS -> handle_options t ~src ~src_id w req_obj
         with Raceguard_faults.Injector.Out_of_memory when resilient t ->
           (* injected allocation failure: the legacy server lets the
              worker die; the resilient one degrades to a 503 *)
           Metrics.incr m_oom_503;
           Logger.log t.logger ~loc:(lc "processRequest" 233) ~level:2
             (Printf.sprintf "allocation failure handling %s: 503" w.w_call_id);
           ignore
             (Transport.send t.transport ~src:"server" ~dst:src
                (unavailable_wire w ~retry_after:(retry_after t)));
           Stats.incr_total_responses t.stats);
        (* request object was created and dies here: exclusive, silent *)
        Obj_model.delete_ ~loc:(lc "processRequest" 234) ~annotate:t.config.annotate
          Sip_msg.sip_request req_obj
      end);
  (* scrub the datagram before releasing it (it may hold credentials);
     in pool mode these writes hit listener-owned memory *)
  for i = 0 to len - 1 do
    Api.write ~loc:(lc "scrubBuffer" 239) (buf + i) 0
  done;
  Api.free ~loc:(lc "processRequest" 241) buf;
  match t.watchdog with Some w -> Watchdog.after_lock w | None -> ()

(** Entry point shared by both concurrency patterns: takes ownership of
    a [RequestCtx] object, processes it, writes the outcome back into
    the ctx (the Figure 11 "process data" write) and deletes it. *)
let run_ctx t ctx =
  let loc = lc "runCtx" 243 in
  let cls = request_ctx_class in
  let src_id = Obj_model.get ~loc cls ctx "src_id" in
  let buf = Obj_model.get ~loc cls ctx "buf" in
  let len = Obj_model.get ~loc cls ctx "len" in
  let born = Obj_model.get ~loc cls ctx "born" in
  let t0 = Api.now () in
  process_request t ~src_id ~buf ~len ~born;
  (* in pool mode these writes land on memory set up by the listener
     with no create/join edge in between: reported (Figure 11) *)
  Obj_model.set ~loc:(lc "runCtx" 250) cls ctx "status" 200;
  Obj_model.set ~loc:(lc "runCtx" 251) cls ctx "handled" 1;
  Obj_model.set ~loc:(lc "runCtx" 252) cls ctx "latency" (Api.now () - t0);
  Obj_model.delete_ ~loc:(lc "runCtx" 253) ~annotate:t.config.annotate cls ctx

(* ------------------------------------------------------------------ *)
(* Listener                                                            *)
(* ------------------------------------------------------------------ *)

let src_id_of t name =
  let rec find i = if i >= t.n_sources then -1 else if t.sources.(i) = name then i else find (i + 1) in
  let existing = find 0 in
  if existing >= 0 then existing
  else begin
    if t.n_sources >= Array.length t.sources then begin
      let bigger = Array.make (2 * Array.length t.sources) "" in
      Array.blit t.sources 0 bigger 0 t.n_sources;
      t.sources <- bigger
    end;
    t.sources.(t.n_sources) <- name;
    t.n_sources <- t.n_sources + 1;
    t.n_sources - 1
  end

(** Overload control (RFC 3261 §21.5.4): when the pool queue is past
    the high-water mark, answer 503 + Retry-After straight from the
    listener and never enqueue the work. *)
let shed_datagram t ~src wire_peek =
  Metrics.incr m_shed;
  t.sheds <- t.sheds + 1;
  let header name default =
    match Sip_msg.wire_header wire_peek name with Some v -> v | None -> default
  in
  ignore
    (Transport.send t.transport ~src:"server" ~dst:src
       (Printf.sprintf
          "SIP/2.0 503 Service Unavailable\r\nCall-ID: %s\r\nCSeq: %s\r\nRetry-After: %d\r\n\r\n"
          (header "Call-ID" "?") (header "CSeq" "0") (retry_after t)));
  Stats.incr_total_responses t.stats

let listener_body t () =
  Api.with_frame (lc "listener" 275) @@ fun () ->
  let continue_ = ref true in
  while !continue_ do
    let src, buf, len = Transport.recv t.transport t.endpoint in
    let wire_peek = Transport.read_buffer buf len in
    if wire_peek = stop_wire then begin
      Api.free ~loc:(lc "listener" 281) buf;
      continue_ := false
    end
    else begin
      let loc = lc "listener" 285 in
      let src_id = src_id_of t src in
      let overloaded =
        match (t.config.resilience, !(t.pool)) with
        | Some r, Some pool ->
            Raceguard_vm.Thread_pool.queue_length pool >= r.res_shed_high_water
        | _ -> false
      in
      if overloaded then begin
        shed_datagram t ~src wire_peek;
        Api.free ~loc:(lc "listener" 292) buf
      end
      else begin
        (* the setup writes of Figures 10/11: the listener fills the ctx
           before handing it over *)
        let ctx =
          Obj_model.new_ ~loc request_ctx_class ~init:(fun obj ->
              let cls = request_ctx_class in
              Obj_model.set ~loc cls obj "src_id" src_id;
              Obj_model.set ~loc cls obj "buf" buf;
              Obj_model.set ~loc cls obj "len" len;
              Obj_model.set ~loc cls obj "status" 0;
              Obj_model.set ~loc cls obj "handled" 0;
              Obj_model.set ~loc cls obj "latency" 0;
              Obj_model.set ~loc cls obj "born" (Api.now ()))
        in
        match t.config.pattern with
        | Per_request ->
            (* Figure 10: ownership passes through thread creation *)
            let tid =
              Api.spawn ~loc:(lc "listener" 302) ~name:"worker" (fun () -> run_ctx t ctx)
            in
            t.workers <- tid :: t.workers
        | Pool _ -> (
            (* Figure 11: ownership passes through the queue — invisible
               to the lock-set algorithm *)
            match !(t.pool) with
            | Some pool -> Raceguard_vm.Thread_pool.submit pool ctx
            | None -> invalid_arg "listener: pool not started")
      end
    end
  done

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

(** Start the server (call from inside the VM).  Returns the handle
    used by drivers and by {!shutdown}. *)
let start ~transport config =
  let loc = lc "start" 322 in
  Api.with_frame loc @@ fun () ->
  let resilient_cfg = Option.is_some config.resilience in
  let alloc = Allocator.create ?faults:config.faults config.alloc_mode in
  let stats = Stats.create () in
  let time = Timeutil.create () in
  let logger = Logger.create ~stats ~time ~annotate:config.annotate in
  Logger.start logger;
  let registrar = Registrar.create ~sharding:config.registrar_sharding ~alloc ~stats () in
  let dialogs = Dialogs.create ~alloc ~stats in
  (* B2 lives inside: the reloader starts before the map is filled *)
  let domain_data =
    Domain_data.create ~alloc ~annotate:config.annotate ~init_racy:config.init_racy
      ~recover_alloc_failure:resilient_cfg ~domains:config.domains ()
  in
  let routing = Routing.create ~domains:config.domains in
  let history = History.create ~annotate:config.annotate ~capacity:6 in
  let auth = Auth.create ~alloc ~annotate:config.annotate in
  let registrar_ref = ref registrar in
  (* the resend callback closes over [t], which does not exist yet:
     indirect through a ref cell filled in below *)
  let resend_ref = ref (fun ~txn_key:_ ~attempt:_ -> false) in
  let timer =
    Timer_wheel.create ~alloc ~annotate:config.annotate
      ?resend:
        (if resilient_cfg then Some (fun ~txn_key ~attempt -> !resend_ref ~txn_key ~attempt)
         else None)
      ~recover_alloc_failure:resilient_cfg
      ~housekeeping:(fun () ->
        ignore (Registrar.expire_stale !registrar_ref ~annotate:config.annotate);
        Routing.refresh routing)
      ()
  in
  Timer_wheel.start timer;
  let watchdog =
    if config.enable_watchdog then begin
      let w = Watchdog.create ~timeout:500 in
      Watchdog.start w;
      Some w
    end
    else None
  in
  let endpoint = Transport.endpoint transport "server" in
  let t =
    {
      config;
      transport;
      endpoint;
      alloc;
      stats;
      time;
      logger;
      registrar;
      dialogs;
      domain_data;
      routing;
      history;
      auth;
      timer;
      watchdog;
      txn_cache =
        (if resilient_cfg then Some (Txn_cache.create ~alloc ~annotate:config.annotate)
         else None);
      retrans = Hashtbl.create 32;
      server_name = Refstring.create ~loc "RaceGuard-SIP/0.9 (experimental)";
      reason_ok = Refstring.create ~loc "OK";
      reason_ringing = Refstring.create ~loc "Ringing";
      reason_not_found = Refstring.create ~loc "Not Found";
      reason_bad_request = Refstring.create ~loc "Loop Detected";
      reason_gone = Refstring.create ~loc "Call/Transaction Does Not Exist";
      reason_unauthorized = Refstring.create ~loc "Unauthorized";
      sources = Array.make 8 "";
      n_sources = 0;
      listener = -1;
      workers = [];
      pool = ref None;
      requests_handled = 0;
      sheds = 0;
    }
  in
  resend_ref :=
    (fun ~txn_key ~attempt:_ ->
      (* retransmit the un-ACKed 200 (RFC 3261 §13.3.1.4); stop once the
         ACK cleared the entry *)
      match Hashtbl.find_opt t.retrans txn_key with
      | Some (dst, wire) ->
          ignore (Transport.send t.transport ~src:"server" ~dst wire);
          true
      | None -> false);
  (match config.pattern with
  | Per_request -> ()
  | Pool n ->
      t.pool :=
        Some
          (Raceguard_vm.Thread_pool.create ~annotated:config.annotate ~name:"sip-pool"
             ~workers:n ~queue_capacity:32
             ~handler:(fun ctx -> run_ctx t ctx)
             ()));
  t.listener <- Api.spawn ~loc:(lc "start" 380) ~name:"listener" (listener_body t);
  t

(** Ask the listener to stop (any VM thread may call this).  Admin
    traffic bypasses fault injection, so the stop datagram always
    arrives. *)
let post_stop t =
  ignore (Transport.send t.transport ~src:"admin" ~dst:"server" stop_wire)

(** Shut the server down.  With [config.shutdown_racy] the statistics
    block is destroyed {e before} the logger thread is joined — bug B3:
    the logger's final flush still bumps a counter inside it. *)
let shutdown t =
  let loc = lc "shutdown" 390 in
  Api.with_frame loc @@ fun () ->
  Api.join ~loc:(lc "shutdown" 392) t.listener;
  (* wait for in-flight requests *)
  List.iter (fun tid -> Api.join ~loc:(lc "shutdown" 394) tid) t.workers;
  (match !(t.pool) with Some pool -> Raceguard_vm.Thread_pool.shutdown pool | None -> ());
  Timer_wheel.stop t.timer;
  Timer_wheel.join t.timer;
  (match t.txn_cache with Some cache -> Txn_cache.destroy cache | None -> ());
  Hashtbl.reset t.retrans;
  Domain_data.stop t.domain_data;
  Domain_data.join t.domain_data;
  History.clear t.history;
  if t.config.shutdown_racy then begin
    (* B3: tear down Stats, then stop/join the logger that uses it *)
    Stats.destroy t.stats ~annotate:t.config.annotate;
    Logger.stop t.logger;
    Logger.join t.logger
  end
  else begin
    Logger.stop t.logger;
    Logger.join t.logger;
    Stats.destroy t.stats ~annotate:t.config.annotate
  end;
  (* either way the logger's destructor flushes leftovers: B3 reorders
     destruction but must not silently drop enqueued lines *)
  Logger.destroy t.logger;
  match t.watchdog with
  | Some w ->
      Watchdog.stop w;
      Watchdog.join w
  | None -> ()

let requests_handled t = t.requests_handled
let log_lines t = Logger.lines t.logger
let sheds t = t.sheds
let cache_hits t = match t.txn_cache with Some c -> Txn_cache.hits c | None -> 0
let retransmits t = Timer_wheel.resent t.timer
let bound_aors t = Registrar.bound_aors t.registrar
let registrar_audit t = Registrar.audit t.registrar
let registrar_shard_count t = Registrar.shard_count t.registrar
let registrar_resizes t = Registrar.resizes t.registrar
let registrar_migrations t = Registrar.migrations t.registrar
