lib/core/runner.mli: Raceguard_detector Raceguard_sip Raceguard_vm
