(** Vector clocks for happens-before based detection (DJIT, §2.2).

    A clock maps thread ids to logical timestamps.  Implemented as a
    growable int array indexed by tid; missing entries are 0. *)

type t = { mutable data : int array }

let create () = { data = Array.make 8 0 }

let get t tid = if tid < Array.length t.data then t.data.(tid) else 0

let ensure t tid =
  if tid >= Array.length t.data then begin
    let data = Array.make (max (tid + 1) (2 * Array.length t.data)) 0 in
    Array.blit t.data 0 data 0 (Array.length t.data);
    t.data <- data
  end

let set t tid v =
  ensure t tid;
  t.data.(tid) <- v

let incr t tid = set t tid (get t tid + 1)

let copy t = { data = Array.copy t.data }

(** [join a b] merges [b] into [a] (pointwise max). *)
let join a b =
  ensure a (Array.length b.data - 1);
  Array.iteri (fun i v -> if v > a.data.(i) then a.data.(i) <- v) b.data

(** [leq a b]: does every entry of [a] appear ≤ the entry in [b]?  This
    is the happens-before test for full clocks. *)
let leq a b =
  let n = Array.length a.data in
  let rec go i = i >= n || (a.data.(i) <= get b i && go (i + 1)) in
  go 0

(** An access stamped (tid, clk) happened-before the current state of
    clock [vc] iff [vc] has seen at least [clk] of thread [tid]. *)
let ordered_before ~tid ~clk vc = clk <= get vc tid

(** Pointwise equality — the logical clock contents, independent of
    the backing arrays' growth histories. *)
let equal a b =
  let n = max (Array.length a.data) (Array.length b.data) in
  let rec go i = i >= n || (get a i = get b i && go (i + 1)) in
  go 0

(* Render the {e logical} entries only: the backing array over-allocates
   on growth, so printing it raw would render two pointwise-equal
   clocks differently depending on how they grew.  Trailing zeros are
   capacity padding (a missing entry and a zero entry are the same
   clock value), so the print frontier is the last non-zero entry. *)
let pp ppf t =
  let n = ref (Array.length t.data) in
  while !n > 0 && t.data.(!n - 1) = 0 do
    decr n
  done;
  Fmt.pf ppf "[%a]"
    Fmt.(array ~sep:(any ",") int)
    (Array.sub t.data 0 !n)
