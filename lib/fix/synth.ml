(** Patch synthesis: from confirmed static∩dynamic findings to
    concrete, applicable AST patches.

    For each confirmed group of racing accesses (an abstract
    [(site, field)] pair) the engine:

    - prefers an {e existing} lock — the lock already protecting the
      most accesses of the group (ties broken by lowest site id), so
      the patch minimises both contention and edit size;
    - {e threads} that lock through call chains when a racing function
      cannot name it, appending a parameter and rewriting every call
      site (the callgraph-based scope widening);
    - falls back to a {e fresh mutex member} on the owning class,
      initialised after every allocation, when the group shares no
      lock;
    - gives up with a reason otherwise (implicit vptr lifetime races,
      raw word sites without an owning class, unthreadable scopes).

    See DESIGN.md §15 for the full rules and the verification
    argument. *)

module M = Raceguard_minicc
module Static = M.Static_race
module Token = M.Token
module Report = Raceguard_detector.Report
module Loc = Raceguard_util.Loc
module Static_dyn = Raceguard.Static_dyn
open M.Ast

type sigkey = Report.kind * Loc.t list

type guard =
  | G_existing of {
      gx_site : Static.site;
      gx_name : string;  (** the lock's creation name, for humans *)
      gx_bind : (string * string) list;  (** node -> in-scope variable *)
      gx_new_params : (string * string) list;  (** (fn, param) appended, thread order *)
    }
  | G_member of { gm_cls : string; gm_field : string; gm_name : string }

type plan = {
  pl_site : Static.site;
  pl_field : string;
  pl_strategy : string;  (** ["existing-lock"], ["threaded-lock"] or ["fresh-member"] *)
  pl_guard : guard;
  pl_guard_desc : string;
  pl_targets : (string * Token.pos) list;  (** (node, access span) needing a wrap *)
  pl_fixed_sigs : sigkey list;  (** confirmed signatures this patch repairs *)
  pl_group_sigs : sigkey list;  (** every signature attributable to the group *)
  pl_edits : string list;
}

(* ------------------------------------------------------------------ *)
(* Lock-binding resolution                                             *)
(* ------------------------------------------------------------------ *)

module SMap = Map.Make (String)

type binding = Bound of int | Poisoned

(** Where is each statically-known lock nameable?  Returns, per node
    (keyed like access-stack functions), the variables bound to each
    lock site — seeded from [var x = mutex("...")] declarations matched
    against the analysis' lock sites, then propagated through call and
    spawn argument positions to a fixpoint.  A parameter fed two
    different locks is poisoned.  Also returns each lock's creation
    name and the call-site relation used for threading. *)
let resolve (p : program) (static : Static.result) =
  let bodies = Rewrite.bodies p in
  let lock_sites =
    List.filter (fun s -> s.Static.site_desc = "mutex" || s.Static.site_desc = "rwlock")
      static.Static.sites
  in
  let bindings : (string, binding SMap.t) Hashtbl.t = Hashtbl.create 16 in
  let get node = Option.value ~default:SMap.empty (Hashtbl.find_opt bindings node) in
  let changed = ref true in
  let bind node var site =
    let m = get node in
    match SMap.find_opt var m with
    | Some (Bound s) when s = site -> ()
    | Some Poisoned -> ()
    | Some (Bound _) ->
        Hashtbl.replace bindings node (SMap.add var Poisoned m);
        changed := true
    | None ->
        Hashtbl.replace bindings node (SMap.add var (Bound site) m);
        changed := true
  in
  let lock_names : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let call_sites : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  let add_call_site callee caller =
    let l = Option.value ~default:[] (Hashtbl.find_opt call_sites callee) in
    if not (List.mem caller l) then Hashtbl.replace call_sites callee (caller :: l)
  in
  (* seeds: lock creations bound to a local variable *)
  List.iter
    (fun (node, _params, body) ->
      let seed_stmt s =
        match s.s with
        | Var_decl (x, { e = Call (desc, args); epos })
        | Assign (Lvar x, { e = Call (desc, args); epos })
          when desc = "mutex" || desc = "rwlock" ->
            let site =
              List.find_opt
                (fun st ->
                  st.Static.site_desc = desc
                  && st.Static.site_loc.Loc.file = epos.Token.file
                  && st.Static.site_loc.Loc.line = epos.Token.line
                  && st.Static.site_loc.Loc.func = node)
                lock_sites
            in
            Option.iter
              (fun st ->
                bind node x st.Static.site_id;
                match args with
                | [ { e = Str n; _ } ] -> Hashtbl.replace lock_names st.Static.site_id n
                | _ -> ())
              site
        | _ -> ()
      in
      let rec go s =
        seed_stmt s;
        match s.s with
        | If (_, a, b) ->
            List.iter go a;
            List.iter go b
        | While (_, b) | Lock (_, b) | Block b -> List.iter go b
        | _ -> ()
      in
      List.iter go body)
    bodies;
  (* propagation through call/spawn argument positions *)
  let params_of = Hashtbl.create 16 in
  List.iter (fun (node, params, _) -> Hashtbl.replace params_of node params) bodies;
  let propagate () =
    List.iter
      (fun (node, _params, body) ->
        let prop_call callee args =
          match Hashtbl.find_opt params_of callee with
          | None -> ()
          | Some params when List.length params = List.length args ->
              List.iter2
                (fun prm a ->
                  match a.e with
                  | Var x -> (
                      match SMap.find_opt x (get node) with
                      | Some (Bound s) -> bind callee prm s
                      | Some Poisoned ->
                          let m = get callee in
                          if SMap.find_opt prm m <> Some Poisoned then begin
                            Hashtbl.replace bindings callee (SMap.add prm Poisoned m);
                            changed := true
                          end
                      | None -> ())
                  | _ -> ())
                params args
          | Some _ -> ()
        in
        List.iter
          (Rewrite.iter_stmt_exprs (fun e ->
               match e.e with
               | Call (n, args) when Hashtbl.mem params_of n ->
                   add_call_site n node;
                   prop_call n args
               | Spawn (n, args) ->
                   add_call_site n node;
                   prop_call n args
               | Method_call (_, m, args) ->
                   List.iter
                     (fun c ->
                       let mn = c.cls_name ^ "::" ^ m in
                       if Hashtbl.mem params_of mn then begin
                         add_call_site mn node;
                         prop_call mn args
                       end)
                     (classes p)
               | _ -> ()))
          body)
      bodies
  in
  while !changed do
    changed := false;
    propagate ()
  done;
  let binding_of node site =
    SMap.fold
      (fun var b acc ->
        match (b, acc) with Bound s, None when s = site -> Some var | _ -> acc)
      (get node) None
  in
  (binding_of, lock_names, call_sites)

(* ------------------------------------------------------------------ *)
(* Guard choice and plan construction                                  *)
(* ------------------------------------------------------------------ *)

let node_of_access (a : Static.access_info) =
  match a.Static.ac_stack with [] -> "?" | l :: _ -> l.Loc.func

let fresh_param = "__rg_lock"
let fresh_field = "__rg_guard"

(** Build one plan per confirmed group, or a reason it stays unfixed.
    [confirmed] are the cross-check's confirmed signatures. *)
let plan_groups (p : program) (static : Static.result) ~(confirmed : sigkey list) :
    plan list * (string * string) list =
  let bodies = Rewrite.bodies p in
  let body_names = List.map (fun (n, _, _) -> n) bodies in
  let binding_of, lock_names, call_sites = resolve p static in
  let confirmed_warnings =
    List.filter
      (fun (w : Static.warning) ->
        List.mem (Static_dyn.sig_of w.Static.w_kind w.Static.w_stack) confirmed)
      static.Static.warnings
  in
  let groups =
    List.sort_uniq compare
      (List.map
         (fun (w : Static.warning) -> (w.Static.w_site.Static.site_id, w.Static.w_field))
         confirmed_warnings)
  in
  let plans = ref [] in
  let unfixed = ref [] in
  List.iter
    (fun (site_id, field) ->
      let site =
        List.find (fun s -> s.Static.site_id = site_id) static.Static.sites
      in
      let gdesc = Fmt.str "%s %s" site.Static.site_desc (Static.field_desc field) in
      let give_up reason = unfixed := (gdesc, reason) :: !unfixed in
      let accesses =
        List.filter
          (fun a -> a.Static.ac_site = site_id && a.Static.ac_field = field)
          static.Static.accesses
      in
      let group_sigs =
        List.sort_uniq compare
          (List.map
             (fun a -> Static_dyn.sig_of a.Static.ac_kind a.Static.ac_stack)
             accesses)
      in
      let fixed_sigs =
        List.sort_uniq compare
          (List.filter_map
             (fun (w : Static.warning) ->
               if w.Static.w_site.Static.site_id = site_id && w.Static.w_field = field then
                 Some (Static_dyn.sig_of w.Static.w_kind w.Static.w_stack)
               else None)
             confirmed_warnings)
      in
      if field = "<vptr>" then
        give_up "implicit vptr access (object-lifetime race): not repairable by lock insertion"
      else begin
        (* candidate guards: locks already protecting part of the group *)
        let tally = Hashtbl.create 4 in
        List.iter
          (fun a ->
            Static.ISet.iter
              (fun l ->
                Hashtbl.replace tally l (1 + Option.value ~default:0 (Hashtbl.find_opt tally l)))
              a.Static.ac_locks)
          accesses;
        let best =
          Hashtbl.fold
            (fun l n acc ->
              match acc with
              | Some (bl, bn) when bn > n || (bn = n && bl <= l) -> acc
              | _ -> Some (l, n))
            tally None
        in
        let targets_for guard_site =
          List.filter_map
            (fun a ->
              let held =
                match guard_site with
                | Some g -> Static.ISet.mem g a.Static.ac_locks
                | None -> false
              in
              if held then None else Some (node_of_access a, a.Static.ac_pos))
            accesses
          |> List.sort_uniq compare
        in
        let unrewritable targets =
          List.filter (fun (n, _) -> not (List.mem n body_names)) targets
        in
        let try_existing (lock_id, _count) =
          let guard_site =
            List.find (fun s -> s.Static.site_id = lock_id) static.Static.sites
          in
          let targets = targets_for (Some lock_id) in
          match unrewritable targets with
          | (n, _) :: _ -> Error (Fmt.str "access attributed to non-rewritable context %s" n)
          | [] -> (
              let target_nodes = List.sort_uniq compare (List.map fst targets) in
              let missing =
                List.filter (fun n -> binding_of n lock_id = None) target_nodes
              in
              (* close the set of functions that must receive the lock *)
              let rec close need queue =
                match queue with
                | [] -> Ok need
                | fn :: rest ->
                    if String.contains fn ':' then
                      Error (Fmt.str "cannot thread a lock through method %s" fn)
                    else if fn = "main" then
                      Error "the racing scope is main itself, which has no callers"
                    else begin
                      match Hashtbl.find_opt call_sites fn with
                      | None | Some [] -> Error (Fmt.str "%s has no call sites to widen" fn)
                      | Some callers ->
                          let newly =
                            List.filter
                              (fun c ->
                                binding_of c lock_id = None && not (List.mem c need)
                                && not (List.mem c rest))
                              callers
                          in
                          close (need @ newly) (rest @ newly)
                    end
              in
              match close missing missing with
              | Error e -> Error e
              | Ok need ->
                  (* the fresh parameter must be free in every widened fn *)
                  let clash =
                    List.find_opt
                      (fun fn ->
                        let used = ref false in
                        List.iter
                          (fun (n, params, body) ->
                            if n = fn then begin
                              if List.mem fresh_param params then used := true;
                              List.iter
                                (Rewrite.iter_stmt_exprs (fun e ->
                                     match e.e with
                                     | Var x when x = fresh_param -> used := true
                                     | _ -> ()))
                                body
                            end)
                          bodies;
                        !used)
                      need
                  in
                  match clash with
                  | Some fn -> Error (Fmt.str "%s already uses the name %s" fn fresh_param)
                  | None ->
                      (* every node that wraps, receives, or forwards the
                         lock needs a nameable binding *)
                      let all_callers =
                        List.concat_map
                          (fun fn ->
                            Option.value ~default:[] (Hashtbl.find_opt call_sites fn))
                          need
                      in
                      let gx_bind =
                        List.sort_uniq compare (target_nodes @ need @ all_callers)
                        |> List.map (fun n ->
                               match binding_of n lock_id with
                               | Some v -> (n, v)
                               | None -> (n, fresh_param))
                      in
                      let gx_name =
                        Option.value ~default:(Fmt.str "lock#%d" lock_id)
                          (Hashtbl.find_opt lock_names lock_id)
                      in
                      Ok
                        ( G_existing
                            {
                              gx_site = guard_site;
                              gx_name;
                              gx_bind;
                              gx_new_params = List.map (fun n -> (n, fresh_param)) need;
                            },
                          (if need = [] then "existing-lock" else "threaded-lock"),
                          Fmt.str "existing lock %S (site %d)" gx_name lock_id,
                          targets,
                          need ))
        in
        let try_member () =
          match site.Static.site_cls with
          | None ->
              Error "group shares no lock and the site has no owning class (raw allocation)"
          | Some cls ->
              if field = "[]" then
                Error "raw word accesses cannot take a per-class guard member"
              else
                let targets = targets_for None in
                (match unrewritable targets with
                | (n, _) :: _ ->
                    Error (Fmt.str "access attributed to non-rewritable context %s" n)
                | [] ->
                    Ok
                      ( G_member
                          {
                            gm_cls = cls;
                            gm_field = fresh_field;
                            gm_name = fresh_field ^ "_" ^ cls;
                          },
                        "fresh-member",
                        Fmt.str "fresh mutex member %s.%s" cls fresh_field,
                        targets,
                        [] ))
        in
        let chosen =
          match best with
          | Some b -> (
              match try_existing b with
              | Ok r -> Ok r
              | Error e1 -> (
                  match try_member () with
                  | Ok r -> Ok r
                  | Error e2 -> Error (e1 ^ "; " ^ e2)))
          | None -> try_member ()
        in
        match chosen with
        | Error reason -> give_up reason
        | Ok (guard, strategy, guard_desc, targets, threaded) ->
            let edits =
              List.map
                (fun (n, (pos : Token.pos)) ->
                  Fmt.str "wrap %s:%d:%d in %s" n pos.Token.line pos.Token.col guard_desc)
                targets
              @ List.map (fun fn -> Fmt.str "thread lock parameter into %s" fn) threaded
              @
              match guard with
              | G_member { gm_cls; gm_field; _ } ->
                  [ Fmt.str "add field %s to class %s and initialise it after every allocation"
                      gm_field gm_cls ]
              | G_existing _ -> []
            in
            plans :=
              {
                pl_site = site;
                pl_field = field;
                pl_strategy = strategy;
                pl_guard = guard;
                pl_guard_desc = guard_desc;
                pl_targets = targets;
                pl_fixed_sigs = fixed_sigs;
                pl_group_sigs = group_sigs;
                pl_edits = edits;
              }
              :: !plans
      end)
    groups;
  (List.rev !plans, List.rev !unfixed)

(* ------------------------------------------------------------------ *)
(* Plan application                                                    *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

(** Apply one plan to a program (the original, or one already carrying
    other verified patches — positions survive, so plans compose). *)
let apply (p : program) (plan : plan) : (program, string) result =
  let wrap_node p (node, targets) ~guard_for =
    let res = ref (Ok ()) in
    let p' =
      Rewrite.map_body p ~node (fun body ->
          match Rewrite.wrap_in_body ~guard_for ~targets body with
          | Ok (body', n) ->
              if n = 0 && !res = Ok () then
                res := Error (Fmt.str "no statement found to wrap in %s" node);
              body'
          | Error e ->
              res := Error e;
              body)
    in
    match p' with
    | None -> Error (Fmt.str "no rewritable body named %s" node)
    | Some p' -> ( match !res with Ok () -> Ok p' | Error e -> Error e)
  in
  let by_node =
    List.fold_left
      (fun acc (n, pos) ->
        let cur = Option.value ~default:[] (List.assoc_opt n acc) in
        (n, pos :: cur) :: List.remove_assoc n acc)
      [] plan.pl_targets
  in
  match plan.pl_guard with
  | G_member { gm_cls; gm_field; gm_name } ->
      let p = Rewrite.add_class_field p ~cls:gm_cls ~field:gm_field in
      let* p, _n = Rewrite.insert_guard_inits p ~cls:gm_cls ~field:gm_field ~name:gm_name in
      List.fold_left
        (fun acc (node, targets) ->
          let* p = acc in
          wrap_node p (node, targets) ~guard_for:(fun s covered ->
              match covered with
              | [] -> None
              | pos :: _ -> (
                  match Rewrite.find_field_base ~field:plan.pl_field ~pos s with
                  | Some base when Rewrite.is_pure_path base ->
                      Some { e = Field (base, gm_field); epos = s.spos }
                  | _ -> None)))
        (Ok p) by_node
  | G_existing { gx_bind; gx_new_params; _ } ->
      let p = List.fold_left (fun p (fn, param) -> Rewrite.add_param p ~fn ~param) p gx_new_params in
      let* p =
        List.fold_left
          (fun acc (fn, _param) ->
            let* p = acc in
            Rewrite.add_args p ~callee:fn ~arg_for:(fun node pos ->
                match List.assoc_opt node gx_bind with
                | Some v -> Some { e = Var v; epos = pos }
                | None -> None))
          (Ok p) gx_new_params
      in
      List.fold_left
        (fun acc (node, targets) ->
          let* p = acc in
          match List.assoc_opt node gx_bind with
          | None -> Error (Fmt.str "no guard binding for %s" node)
          | Some v ->
              wrap_node p (node, targets) ~guard_for:(fun s _covered ->
                  Some { e = Var v; epos = s.spos }))
        (Ok p) by_node
