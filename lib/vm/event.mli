(** Events observed by tools (Valgrind "skins").

    The engine serialises the execution of all simulated threads and
    emits one event per interesting operation, in execution order —
    the single totally-ordered stream tools subscribe to. *)

module Loc = Raceguard_util.Loc

(** Synchronisation object reference (separate id spaces per kind). *)
type sync_ref =
  | Mutex of int
  | Rwlock of int
  | Cond of int
  | Sem of int

val pp_sync_ref : Format.formatter -> sync_ref -> unit

type t =
  | E_thread_start of { tid : int; name : string; parent : int option }
  | E_thread_exit of { tid : int }
  | E_spawn of { parent : int; child : int; loc : Loc.t }
  | E_join of { joiner : int; joined : int; loc : Loc.t }
  | E_read of { tid : int; addr : int; value : int; atomic : bool; loc : Loc.t }
  | E_write of { tid : int; addr : int; value : int; atomic : bool; loc : Loc.t }
      (** [atomic] marks the two halves of a [LOCK]-prefixed
          read-modify-write (emitted as an E_read then an E_write with
          no scheduling point in between) *)
  | E_alloc of { tid : int; addr : int; len : int; loc : Loc.t }
  | E_free of { tid : int; addr : int; len : int; loc : Loc.t }
  | E_sync_create of { tid : int; sync : sync_ref; name : string; loc : Loc.t }
  | E_acquire of { tid : int; lock : sync_ref; mode : Eff.mode; loc : Loc.t }
      (** emitted at grant time; a plain mutex is always [Write_mode] *)
  | E_release of { tid : int; lock : sync_ref; loc : Loc.t }
  | E_cond_signal of { tid : int; cv : int; broadcast : bool; loc : Loc.t }
  | E_cond_wait_pre of { tid : int; cv : int; m : int; loc : Loc.t }
  | E_cond_wait_post of { tid : int; cv : int; m : int; loc : Loc.t }
      (** after the mutex has been reacquired *)
  | E_sem_post of { tid : int; sem : int; loc : Loc.t }
  | E_sem_wait_post of { tid : int; sem : int; loc : Loc.t }
  | E_client of { tid : int; req : Eff.client_request; loc : Loc.t }

val tid : t -> int
(** The thread an event is attributed to. *)

val kind_id : t -> int
(** Stable small integer per constructor — the binary trace codec's
    event tag.  Never renumbered (recorded traces depend on it). *)

val kind_name : t -> string
(** Static per-constructor name (no rendering cost): ring tracer,
    Chrome export, trace-info histograms. *)

val kind_count : int
(** Number of constructors ([kind_id] is in [0 .. kind_count-1]). *)

val pp : Format.formatter -> t -> unit
