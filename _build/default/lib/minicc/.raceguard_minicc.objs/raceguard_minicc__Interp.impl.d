lib/minicc/interp.ml: Annotate Array Ast Check Fmt Hashtbl List Preprocess Pretty Raceguard_util Raceguard_vm Token
