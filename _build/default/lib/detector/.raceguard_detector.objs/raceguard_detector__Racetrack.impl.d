lib/detector/racetrack.ml: Fmt Hashtbl Hb_clocks Helgrind List Lock_id Lockset Printf Raceguard_vm Report
