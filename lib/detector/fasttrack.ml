(** FastTrack-style epoch-based happens-before race detection.

    Same detection semantics as {!Djit} — report an access iff it is
    concurrent with a previous conflicting access, with the same
    first-report-per-location behaviour and byte-identical reports —
    but with FastTrack's representation (Flanagan & Freund, surveyed in
    PAPERS.md): the overwhelmingly common non-racy access is decided by
    O(1) packed-epoch ({!Epoch}) comparisons over a dense shadow array
    instead of DJIT's hashtable cells and per-read list surgery.

    Per-word state machine:

    - {b write epoch}: the last write is always a single epoch — a
      write either races with everything unordered after it or clears
      the read state, so a full clock is never needed;
    - {b read-exclusive}: reads by one thread (or totally ordered reads
      by several — each new read that happens-after the stored one
      {e replaces} it) stay a single epoch.  Replacement is lossless:
      clocks only grow and transfer whole along HB edges, so any later
      access ordered after the replacing read is ordered after the
      replaced one too (DESIGN.md §14 states the lemma);
    - {b read-shared}: only a genuinely concurrent read promotes the
      cell to a read vector — per-thread (clk, loc, recency) triples
      that carry exactly the information DJIT's read list holds, so
      racing writes pick the same previous access and render the same
      report.  Reads in this state are still O(1) stores;
    - {b demotion}: periodically (every [demote_check] accesses to a
      hot shared cell) a read that happens-after every recorded read
      demotes the cell back to its single epoch — read-mostly words
      that go through a synchronisation front return to the cheap
      representation instead of paying the vector forever.  The same
      replacement lemma makes this report-preserving.

    The {!unordered_now} probe mirrors {!Djit.unordered_now} for the
    {!Hybrid} composition — including answering [false] for cells
    killed by [first_only], which the DJIT probe historically got
    wrong. *)

module Loc = Raceguard_util.Loc
module Vm = Raceguard_vm
module Vc = Vector_clock
module Metrics = Raceguard_obs.Metrics
open Vm.Event

(* Process-global instruments (aggregate across instances; the
   per-instance counters below feed the bench's per-row hit rates). *)
let m_accesses = Metrics.counter "detector.fasttrack.accesses_checked"
let m_epoch_hits = Metrics.counter "detector.fasttrack.epoch_hits"
let m_promotions = Metrics.counter "detector.fasttrack.read_promotions"
let m_demotions = Metrics.counter "detector.fasttrack.read_demotions"

type config = {
  sync_on_cond : bool;
  sync_on_sem : bool;
  sync_on_annotations : bool;
  first_only : bool;  (** stop checking a location after its first report *)
  demote_check : int;
      (** attempt read-shared → epoch demotion every [demote_check]-th
          access to a shared cell (power of two; 0 = never, classic
          FastTrack).  Demotion is report-preserving; the knob only
          moves the representation-maintenance cost. *)
}

let default_config =
  {
    sync_on_cond = true;
    sync_on_sem = true;
    sync_on_annotations = true;
    first_only = true;
    demote_check = 32;
  }

(* read vector of a promoted (read-shared) cell: per-tid last-read
   clock/site plus a per-cell recency sequence.  Equivalent to DJIT's
   "one read per tid since the last write" list — the list is exactly
   the triples ordered by decreasing [s_seq] — so racing writes report
   the same previous access. *)
type shared = {
  mutable s_clk : int array;  (** tid -> last read clock (0 = absent) *)
  mutable s_loc : Loc.t array;
  mutable s_seq : int array;  (** tid -> recency stamp (0 = absent) *)
  mutable s_next : int;  (** next recency stamp, starts at 1 *)
}

type cell = {
  mutable we : Epoch.t;  (** last write ({!Epoch.none} = never written) *)
  mutable w_loc : Loc.t;
  mutable re : Epoch.t;  (** read-exclusive epoch (unused when shared) *)
  mutable r_loc : Loc.t;
  mutable r_clean : bool;
      (** the last read slow-check at epoch [re] against the current
          [we] reported nothing — a same-epoch read may skip the
          write-race check without losing report occurrences.  Cleared
          by every write. *)
  mutable shared : shared option;  (** read vector once promoted *)
  mutable dead : bool;  (** stop checking after the first report *)
  mutable n_acc : int;  (** per-word access counter (demotion cadence) *)
}

type t = {
  config : config;
  clocks : Hb_clocks.t;
  mutable shadow : cell array;  (** dense, indexed by word address *)
  collector : Report.collector;
  mutable accesses_checked : int;
  mutable epoch_hits : int;
  mutable promotions : int;
  mutable demotions : int;
}

let create ?(config = default_config) ?(suppressions = []) () =
  {
    config;
    clocks =
      Hb_clocks.create
        ~config:
          {
            Hb_clocks.sync_on_cond = config.sync_on_cond;
            sync_on_sem = config.sync_on_sem;
            sync_on_annotations = config.sync_on_annotations;
          }
        ();
    shadow = [||];
    collector = Report.collector ~suppressions ();
    accesses_checked = 0;
    epoch_hits = 0;
    promotions = 0;
    demotions = 0;
  }

let config_to_json c =
  let module J = Raceguard_obs.Json in
  J.Obj
    [
      ("detector", J.Str "fasttrack");
      ("sync_on_cond", J.Bool c.sync_on_cond);
      ("sync_on_sem", J.Bool c.sync_on_sem);
      ("sync_on_annotations", J.Bool c.sync_on_annotations);
      ("first_only", J.Bool c.first_only);
      ("demote_check", J.int c.demote_check);
    ]

let reports t = Report.occurrences t.collector
let locations t = Report.locations t.collector
let location_count t = Report.location_count t.collector
let collector t = t.collector
let accesses_checked t = t.accesses_checked
let epoch_hits t = t.epoch_hits
let read_promotions t = t.promotions
let read_demotions t = t.demotions

let thread_vc t tid = Hb_clocks.thread_vc t.clocks tid

let fresh_cell () =
  {
    we = Epoch.none;
    w_loc = Loc.unknown;
    re = Epoch.none;
    r_loc = Loc.unknown;
    r_clean = false;
    shared = None;
    dead = false;
    n_acc = 0;
  }

let cell t addr =
  let n = Array.length t.shadow in
  if addr >= n then begin
    let a =
      Array.init
        (max 4096 (max (2 * n) (addr + 1)))
        (fun i -> if i < n then Array.unsafe_get t.shadow i else fresh_cell ())
    in
    t.shadow <- a
  end;
  Array.unsafe_get t.shadow addr

let reset_cell c =
  c.we <- Epoch.none;
  c.re <- Epoch.none;
  c.r_clean <- false;
  c.shared <- None;
  c.dead <- false;
  c.n_acc <- 0

(* identical rendering to {!Djit.report}: same kind, same stack, same
   detail string — the equivalence pins compare report digests
   byte-for-byte *)
let report t (ctx : Vm.Tool.ctx) ~kind ~tid ~addr ~loc ~prev_tid ~prev_loc =
  let block =
    match ctx.block_of addr with
    | Some (b : Vm.Memory.block) ->
        Some
          {
            Report.b_base = b.base;
            b_len = b.len;
            b_alloc_tid = b.alloc_tid;
            b_alloc_stack = b.alloc_stack;
          }
    | None -> None
  in
  Report.add t.collector
    {
      Report.kind;
      addr;
      tid;
      thread_name = ctx.thread_name tid;
      stack = loc :: ctx.stack_of tid;
      detail =
        Fmt.str "Conflicts with unordered access by thread %d at %a" prev_tid Loc.pp prev_loc;
      block;
      clock = ctx.clock ();
      provenance = None;
    }

let grow_shared s tid =
  let n = Array.length s.s_clk in
  if tid >= n then begin
    let m = max 8 (max (2 * n) (tid + 1)) in
    let clk = Array.make m 0 and seq = Array.make m 0 and loc = Array.make m Loc.unknown in
    Array.blit s.s_clk 0 clk 0 n;
    Array.blit s.s_seq 0 seq 0 n;
    Array.blit s.s_loc 0 loc 0 n;
    s.s_clk <- clk;
    s.s_seq <- seq;
    s.s_loc <- loc
  end

let record_shared s ~tid ~clk ~loc =
  grow_shared s tid;
  s.s_clk.(tid) <- clk;
  s.s_loc.(tid) <- loc;
  s.s_seq.(tid) <- s.s_next;
  s.s_next <- s.s_next + 1

(* does every read recorded in [s] happen-before [me]?  The demotion
   guard — O(recorded tids), attempted only every [demote_check]-th
   access to the cell. *)
let all_reads_ordered s me =
  let n = Array.length s.s_clk in
  let rec go u = u >= n || ((s.s_seq.(u) = 0 || s.s_clk.(u) <= Vc.get me u) && go (u + 1)) in
  go 0

(* the read racing a write in shared state, DJIT-equivalent: DJIT scans
   its recency-ordered list and reports the first unordered entry, i.e.
   the unordered read with the highest recency stamp *)
let find_racing_read s ~tid me =
  let n = Array.length s.s_clk in
  let best = ref (-1) and best_seq = ref 0 in
  for u = 0 to n - 1 do
    if u <> tid && s.s_seq.(u) > !best_seq && s.s_clk.(u) > Vc.get me u then begin
      best := u;
      best_seq := s.s_seq.(u)
    end
  done;
  !best

(* ------------------------------------------------------------------ *)
(* The per-access state machine                                        *)
(* ------------------------------------------------------------------ *)

let check_read t ctx ~tid ~addr ~loc =
  t.accesses_checked <- t.accesses_checked + 1;
  Metrics.incr m_accesses;
  let c = cell t addr in
  if not c.dead then begin
    c.n_acc <- c.n_acc + 1;
    let me = thread_vc t tid in
    let cur = Epoch.make ~tid ~clk:(Vc.get me tid) in
    match c.shared with
    | None when c.re = cur && c.r_clean ->
        (* read-same-epoch: the previous slow check at this epoch
           vouched there is no racing write (and none was stored
           since), and re-recording the read is idempotent up to the
           site, which a later racing write must render freshly *)
        c.r_loc <- loc;
        t.epoch_hits <- t.epoch_hits + 1;
        Metrics.incr m_epoch_hits
    | None ->
        (* write-race check is one epoch compare *)
        if
          (not (Epoch.is_none c.we))
          && Epoch.tid c.we <> tid
          && not (Epoch.ordered_before c.we me)
        then begin
          report t ctx ~kind:Report.Race_read ~tid ~addr ~loc ~prev_tid:(Epoch.tid c.we)
            ~prev_loc:c.w_loc;
          if t.config.first_only then c.dead <- true
        end
        else c.r_clean <- true;
        if not c.dead then
          if Epoch.is_none c.re || Epoch.tid c.re = tid || Epoch.ordered_before c.re me
          then begin
            (* first read, same reader, or ordered reads: replace —
               still one epoch *)
            c.re <- cur;
            c.r_loc <- loc;
            t.epoch_hits <- t.epoch_hits + 1;
            Metrics.incr m_epoch_hits
          end
          else begin
            (* genuinely concurrent second reader: lazily promote to a
               read vector, previous reader first in recency order *)
            let s =
              {
                s_clk = Array.make 8 0;
                s_loc = Array.make 8 Loc.unknown;
                s_seq = Array.make 8 0;
                s_next = 1;
              }
            in
            record_shared s ~tid:(Epoch.tid c.re) ~clk:(Epoch.clk c.re) ~loc:c.r_loc;
            record_shared s ~tid ~clk:(Vc.get me tid) ~loc;
            c.shared <- Some s;
            c.re <- Epoch.none;
            c.r_clean <- false;
            t.promotions <- t.promotions + 1;
            Metrics.incr m_promotions
          end
    | Some s ->
        if
          (not (Epoch.is_none c.we))
          && Epoch.tid c.we <> tid
          && not (Epoch.ordered_before c.we me)
        then begin
          report t ctx ~kind:Report.Race_read ~tid ~addr ~loc ~prev_tid:(Epoch.tid c.we)
            ~prev_loc:c.w_loc;
          if t.config.first_only then c.dead <- true
        end;
        if not c.dead then begin
          record_shared s ~tid ~clk:(Vc.get me tid) ~loc;
          (* adaptive demotion: every [demote_check]-th access to this
             hot cell, check whether this read dominates the vector —
             if so the single epoch carries the same information *)
          if
            t.config.demote_check > 0
            && c.n_acc land (t.config.demote_check - 1) = 0
            && all_reads_ordered s me
          then begin
            c.shared <- None;
            c.re <- cur;
            c.r_loc <- loc;
            c.r_clean <- false;
            t.demotions <- t.demotions + 1;
            Metrics.incr m_demotions
          end
        end
  end

let check_write t ctx ~tid ~addr ~loc =
  t.accesses_checked <- t.accesses_checked + 1;
  Metrics.incr m_accesses;
  let c = cell t addr in
  if not c.dead then begin
    c.n_acc <- c.n_acc + 1;
    let me = thread_vc t tid in
    let clk = Vc.get me tid in
    let cur = Epoch.make ~tid ~clk in
    if c.we = cur && c.shared = None && (Epoch.is_none c.re || Epoch.tid c.re = tid) then begin
      (* write-same-epoch: the only possible conflicts are this
         thread's own accesses; DJIT would re-store the write and
         clear the reads — one compare plus three stores *)
      c.w_loc <- loc;
      c.re <- Epoch.none;
      c.r_clean <- false;
      t.epoch_hits <- t.epoch_hits + 1;
      Metrics.incr m_epoch_hits
    end
    else begin
      (* conflict scan in DJIT's order: the last write first, then the
         reads in recency order *)
      let slow_scan = c.shared <> None in
      (if
         (not (Epoch.is_none c.we))
         && Epoch.tid c.we <> tid
         && not (Epoch.ordered_before c.we me)
       then begin
         report t ctx ~kind:Report.Race_write ~tid ~addr ~loc ~prev_tid:(Epoch.tid c.we)
           ~prev_loc:c.w_loc;
         if t.config.first_only then c.dead <- true
       end
       else
         match c.shared with
         | None ->
             if
               (not (Epoch.is_none c.re))
               && Epoch.tid c.re <> tid
               && not (Epoch.ordered_before c.re me)
             then begin
               report t ctx ~kind:Report.Race_write ~tid ~addr ~loc
                 ~prev_tid:(Epoch.tid c.re) ~prev_loc:c.r_loc;
               if t.config.first_only then c.dead <- true
             end
         | Some s ->
             let u = find_racing_read s ~tid me in
             if u >= 0 then begin
               report t ctx ~kind:Report.Race_write ~tid ~addr ~loc ~prev_tid:u
                 ~prev_loc:s.s_loc.(u);
               if t.config.first_only then c.dead <- true
             end);
      if not c.dead then begin
        c.we <- cur;
        c.w_loc <- loc;
        c.re <- Epoch.none;
        c.r_clean <- false;
        c.shared <- None;
        if not slow_scan then begin
          t.epoch_hits <- t.epoch_hits + 1;
          Metrics.incr m_epoch_hits
        end
      end
    end
  end

(** Composition probe, mirroring {!Djit.unordered_now} — with dead
    cells correctly answering [false]: once [first_only] stops
    updating a cell, its stale state must not keep gating lock-set
    warnings. *)
let unordered_now t ~tid ~addr ~write =
  if addr >= Array.length t.shadow then false
  else
    let c = Array.unsafe_get t.shadow addr in
    if c.dead then false
    else
      let me = thread_vc t tid in
      let unordered e = Epoch.tid e <> tid && not (Epoch.ordered_before e me) in
      ((not (Epoch.is_none c.we)) && unordered c.we)
      || write
         &&
         match c.shared with
         | None -> (not (Epoch.is_none c.re)) && unordered c.re
         | Some s ->
             let n = Array.length s.s_clk in
             let rec go u =
               u < n
               && ((u <> tid && s.s_seq.(u) > 0 && s.s_clk.(u) > Vc.get me u) || go (u + 1))
             in
             go 0

let on_event t (ctx : Vm.Tool.ctx) (e : Vm.Event.t) =
  Hb_clocks.on_event t.clocks e;
  match e with
  | E_read { tid; addr; loc; _ } -> check_read t ctx ~tid ~addr ~loc
  | E_write { tid; addr; loc; _ } -> check_write t ctx ~tid ~addr ~loc
  | E_alloc { addr; len; _ } ->
      (* range clear on the dense shadow: slots past the frontier are
         already fresh *)
      let n = Array.length t.shadow in
      for a = addr to min (addr + len - 1) (n - 1) do
        reset_cell (Array.unsafe_get t.shadow a)
      done
  | E_thread_start _ | E_thread_exit _ | E_join _ | E_spawn _ | E_free _ | E_sync_create _
  | E_acquire _ | E_release _ | E_cond_signal _ | E_cond_wait_pre _ | E_cond_wait_post _
  | E_sem_post _ | E_sem_wait_post _ | E_client _ ->
      ()

let tool t = Vm.Tool.make ~name:"fasttrack" ~on_event:(on_event t)
