(** Suppression files: silence known-benign or unfixable report sites,
    as in Valgrind (§2.3.1).

    File format — one entry per block:

    {v
    {
      name-of-suppression
      kind: Possible data race*
      frame: std::string::*
      frame: *
    }
    v}

    [kind:] matches the report headline, each [frame:] line matches one
    stack frame (formatted ["func (file:line)"]) from the top;
    [*] is a wildcard over any substring. *)

type t

val make : name:string -> kind_pattern:string -> frame_patterns:string list -> t

val matches : t -> kind:string -> stack:Raceguard_util.Loc.t list -> bool

val frame_to_string : Raceguard_util.Loc.t -> string

val glob_match : string -> string -> bool
(** [glob_match pattern s]: literal match with [*] wildcards. *)

exception Parse_error of string

val parse_string : string -> t list
(** Parse a suppression file body; raises {!Parse_error}. *)

val of_frames : name:string -> kind:string -> frames:Raceguard_util.Loc.t list -> t
(** Build a suppression matching exactly one report location — what
    [--gen-suppressions] prints for pasting into a file. *)

val to_string : t -> string
(** Render in the file format; [parse_string (to_string t)] yields an
    equivalent suppression. *)
