(** Decoder and replay driver for [raceguard-trace/1] traces.

    [of_string]/[of_file] validate the whole container up front — head
    and tail magics, version, schema, the CRC-32 footer, and the event
    and snapshot counts in the end record — before decoding a single
    event, so a truncated or bit-flipped trace is rejected with a
    message instead of yielding a silently shorter replay.

    [replay] feeds the decoded entries to any set of VM tools through a
    synthesised {!Raceguard_vm.Tool.ctx} whose queries answer from the
    recorded per-event data: a detector run this way sees byte-for-byte
    what it would have seen live. *)

module Vm = Raceguard_vm
module Loc = Raceguard_util.Loc
module Metrics = Raceguard_obs.Metrics

let m_replay_events = Metrics.counter "trace.replay.events"
let m_replay_traces = Metrics.counter "trace.replay.traces"

type entry = {
  en_index : int;  (** 0-based position in the event stream *)
  en_offset : int;  (** byte offset of the event record's tag *)
  en_event : Vm.Event.t;
  en_clock : int;
  en_stack : Loc.t list;  (** acting thread's call stack at the event *)
  en_thread : string;  (** acting thread's name *)
  en_block : Vm.Memory.block option;  (** reads/writes: block containing the address *)
}

type snapshot_mark = {
  sn_offset : int;
  sn_index : int;  (** events before this marker *)
  sn_clock : int;
  sn_strings : int;
  sn_locs : int;
  sn_stacks : int;
  sn_blocks : int;
}

type t = {
  version : int;
  schema : string;
  meta : (string * string) list;
  entries : entry array;
  snapshots : snapshot_mark list;
  byte_size : int;
}

let version t = t.version
let schema t = t.schema
let meta t = t.meta
let entries t = t.entries
let length t = Array.length t.entries
let snapshots t = t.snapshots
let byte_size t = t.byte_size
let meta_find t key = List.assoc_opt key t.meta

exception Parse of string

let fail fmt = Fmt.kstr (fun m -> raise (Parse m)) fmt

(* growable append-only table for interned definitions *)
module Tbl = struct
  type 'a t = { what : string; dummy : 'a; mutable a : 'a array; mutable n : int }

  let create what dummy = { what; dummy; a = Array.make 16 dummy; n = 0 }

  let add t x =
    if t.n = Array.length t.a then begin
      let b = Array.make (2 * t.n) t.dummy in
      Array.blit t.a 0 b 0 t.n;
      t.a <- b
    end;
    t.a.(t.n) <- x;
    t.n <- t.n + 1

  let get t i = if i < 0 || i >= t.n then fail "dangling %s id %d" t.what i else t.a.(i)
  let length t = t.n
end

let read_sync c =
  let n = Codec.read_varint c in
  let id = n lsr 2 in
  match n land 3 with
  | 0 -> Vm.Event.Mutex id
  | 1 -> Vm.Event.Rwlock id
  | 2 -> Vm.Event.Cond id
  | _ -> Vm.Event.Sem id

type decoder = {
  c : Codec.cursor;
  strings : string Tbl.t;
  locs : Loc.t Tbl.t;
  stacks : Loc.t list Tbl.t;
  blocks : Vm.Memory.block Tbl.t;
}

let read_payload d kind : Vm.Event.t =
  let c = d.c in
  let v () = Codec.read_varint c in
  let z () = Codec.read_zigzag c in
  let b () = Codec.read_bool c in
  let l () = Tbl.get d.locs (v ()) in
  let s () = Tbl.get d.strings (v ()) in
  match kind with
  | 0 ->
      let tid = v () in
      let name = s () in
      let parent = match v () with 0 -> None | p -> Some (p - 1) in
      Vm.Event.E_thread_start { tid; name; parent }
  | 1 -> E_thread_exit { tid = v () }
  | 2 ->
      let parent = v () in
      let child = v () in
      E_spawn { parent; child; loc = l () }
  | 3 ->
      let joiner = v () in
      let joined = v () in
      E_join { joiner; joined; loc = l () }
  | 4 | 5 ->
      let tid = v () in
      let addr = v () in
      let value = z () in
      let atomic = b () in
      let loc = l () in
      if kind = 4 then E_read { tid; addr; value; atomic; loc }
      else E_write { tid; addr; value; atomic; loc }
  | 6 | 7 ->
      let tid = v () in
      let addr = v () in
      let len = v () in
      let loc = l () in
      if kind = 6 then E_alloc { tid; addr; len; loc } else E_free { tid; addr; len; loc }
  | 8 ->
      let tid = v () in
      let sync = read_sync c in
      let name = s () in
      E_sync_create { tid; sync; name; loc = l () }
  | 9 ->
      let tid = v () in
      let lock = read_sync c in
      let mode = if b () then Vm.Eff.Write_mode else Vm.Eff.Read_mode in
      E_acquire { tid; lock; mode; loc = l () }
  | 10 ->
      let tid = v () in
      let lock = read_sync c in
      E_release { tid; lock; loc = l () }
  | 11 ->
      let tid = v () in
      let cv = v () in
      let broadcast = b () in
      E_cond_signal { tid; cv; broadcast; loc = l () }
  | 12 | 13 ->
      let tid = v () in
      let cv = v () in
      let m = v () in
      let loc = l () in
      if kind = 12 then E_cond_wait_pre { tid; cv; m; loc }
      else E_cond_wait_post { tid; cv; m; loc }
  | 14 | 15 ->
      let tid = v () in
      let sem = v () in
      let loc = l () in
      if kind = 14 then E_sem_post { tid; sem; loc } else E_sem_wait_post { tid; sem; loc }
  | 16 ->
      let tid = v () in
      let req =
        match Codec.read_byte c with
        | 0 ->
            let addr = v () in
            let len = v () in
            Vm.Eff.Destruct { addr; len }
        | 1 ->
            let addr = v () in
            let len = v () in
            Vm.Eff.Benign_race { addr; len }
        | 2 -> Vm.Eff.Happens_before { tag = z () }
        | 3 -> Vm.Eff.Happens_after { tag = z () }
        | n -> fail "unknown client-request subtag %d" n
      in
      E_client { tid; req; loc = l () }
  | _ -> fail "unknown event kind %d" kind

let decode data =
  let len = String.length data in
  let min_len = String.length Writer.magic_head + 1 + 8 in
  if len < min_len then fail "trace too short (%d bytes)" len;
  if String.sub data 0 4 <> Writer.magic_head then fail "bad magic (not a raceguard trace)";
  let tail = String.sub data (len - 4) 4 in
  if tail <> Writer.magic_tail then fail "bad trailing magic (truncated trace?)";
  let stored_crc = Codec.read_u32_at data (len - 8) in
  let computed_crc = Codec.crc32 data 0 (len - 8) in
  if stored_crc <> computed_crc then
    fail "CRC mismatch (stored %08x, computed %08x): corrupt trace" stored_crc computed_crc;
  let c = Codec.cursor ~pos:4 ~limit:(len - 8) data in
  let version = Codec.read_byte c in
  if version <> Writer.version then fail "unsupported trace version %d" version;
  let schema = Codec.read_string c in
  if schema <> Writer.schema then fail "unsupported schema %S (want %S)" schema Writer.schema;
  let n_meta = Codec.read_varint c in
  let meta =
    List.init n_meta (fun _ ->
        let k = Codec.read_string c in
        let v = Codec.read_string c in
        (k, v))
  in
  let d =
    {
      c;
      strings = Tbl.create "string" "";
      locs = Tbl.create "loc" Loc.unknown;
      stacks = Tbl.create "stack" [];
      blocks =
        Tbl.create "block"
          {
            Vm.Memory.base = 0;
            len = 0;
            alloc_tid = 0;
            alloc_loc = Loc.unknown;
            alloc_stack = [];
            freed = false;
          };
    }
  in
  let entries = ref [] in
  let n_entries = ref 0 in
  let snapshots = ref [] in
  let last_clock = ref 0 in
  let finished = ref false in
  while not !finished do
    if Codec.at_end c then fail "missing end record";
    let offset = c.Codec.pos in
    let tag = Codec.read_byte c in
    if tag = Writer.tag_sdef then Tbl.add d.strings (Codec.read_string c)
    else if tag = Writer.tag_ldef then begin
      let file = Tbl.get d.strings (Codec.read_varint c) in
      let func = Tbl.get d.strings (Codec.read_varint c) in
      let line = Codec.read_varint c in
      Tbl.add d.locs (Loc.v file func line)
    end
    else if tag = Writer.tag_kdef then begin
      let n = Codec.read_varint c in
      let frames = List.init n (fun _ -> Tbl.get d.locs (Codec.read_varint c)) in
      Tbl.add d.stacks frames
    end
    else if tag = Writer.tag_bdef then begin
      let base = Codec.read_varint c in
      let blen = Codec.read_varint c in
      let alloc_tid = Codec.read_varint c in
      let alloc_loc = Tbl.get d.locs (Codec.read_varint c) in
      let alloc_stack = Tbl.get d.stacks (Codec.read_varint c) in
      let freed = Codec.read_bool c in
      Tbl.add d.blocks { Vm.Memory.base; len = blen; alloc_tid; alloc_loc; alloc_stack; freed }
    end
    else if tag = Writer.tag_snap then begin
      let sn_index = Codec.read_varint c in
      let sn_clock = Codec.read_varint c in
      let sn_strings = Codec.read_varint c in
      let sn_locs = Codec.read_varint c in
      let sn_stacks = Codec.read_varint c in
      let sn_blocks = Codec.read_varint c in
      if sn_index <> !n_entries then
        fail "snapshot marker claims %d events at offset %d, decoded %d" sn_index offset
          !n_entries;
      if
        sn_strings > Tbl.length d.strings
        || sn_locs > Tbl.length d.locs
        || sn_stacks > Tbl.length d.stacks
        || sn_blocks > Tbl.length d.blocks
      then fail "snapshot marker at offset %d claims undefined table entries" offset;
      snapshots :=
        { sn_offset = offset; sn_index; sn_clock; sn_strings; sn_locs; sn_stacks; sn_blocks }
        :: !snapshots
    end
    else if tag = Writer.tag_end then begin
      let claimed_events = Codec.read_varint c in
      let claimed_snaps = Codec.read_varint c in
      if claimed_events <> !n_entries then
        fail "end record claims %d events, decoded %d" claimed_events !n_entries;
      if claimed_snaps <> List.length !snapshots then
        fail "end record claims %d snapshots, decoded %d" claimed_snaps
          (List.length !snapshots);
      if not (Codec.at_end c) then fail "%d trailing bytes after end record" (Codec.remaining c);
      finished := true
    end
    else if tag >= Writer.tag_event && tag < Writer.tag_event + Vm.Event.kind_count then begin
      let en_event = read_payload d (tag - Writer.tag_event) in
      let en_clock = !last_clock + Codec.read_varint c in
      last_clock := en_clock;
      let en_stack = Tbl.get d.stacks (Codec.read_varint c) in
      let en_thread = Tbl.get d.strings (Codec.read_varint c) in
      let en_block =
        match en_event with
        | E_read _ | E_write _ -> (
            match Codec.read_varint c with 0 -> None | b -> Some (Tbl.get d.blocks (b - 1)))
        | _ -> None
      in
      entries :=
        { en_index = !n_entries; en_offset = offset; en_event; en_clock; en_stack; en_thread;
          en_block }
        :: !entries;
      incr n_entries
    end
    else fail "unknown record tag 0x%02x at offset %d" tag offset
  done;
  {
    version;
    schema;
    meta;
    entries = Array.of_list (List.rev !entries);
    snapshots = List.rev !snapshots;
    byte_size = len;
  }

let of_string data =
  match decode data with
  | t -> Ok t
  | exception Parse m -> Error (`Msg m)
  | exception Codec.Truncated -> Error (`Msg "truncated trace")

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | data -> of_string data
  | exception Sys_error m -> Error (`Msg m)

(* --- replay --------------------------------------------------------- *)

(** Drive [tools] over the trace.  The synthesised ctx answers from the
    current entry's recorded data: [stack_of]/[thread_name] for the
    acting thread (thread names of other, previously started threads
    come from their [E_thread_start] events), [block_of] for the
    recorded access address.  Detectors in this repo query nothing
    else, which is what makes replayed reports byte-identical. *)
let replay ?on_event t (tools : Vm.Tool.t list) =
  Metrics.incr m_replay_traces;
  let names : (int, string) Hashtbl.t = Hashtbl.create 16 in
  let current = ref None in
  let ctx : Vm.Tool.ctx =
    {
      stack_of =
        (fun tid ->
          match !current with
          | Some e when Vm.Event.tid e.en_event = tid -> e.en_stack
          | _ -> []);
      thread_name =
        (fun tid ->
          match !current with
          | Some e when Vm.Event.tid e.en_event = tid -> e.en_thread
          | _ -> ( match Hashtbl.find_opt names tid with Some n -> n | None -> "?"));
      block_of =
        (fun addr ->
          match !current with
          | Some { en_block = Some b; _ } when addr >= b.base && addr < b.base + b.len ->
              Some b
          | _ -> None);
      clock = (fun () -> match !current with Some e -> e.en_clock | None -> 0);
    }
  in
  Array.iter
    (fun e ->
      (match e.en_event with
      | Vm.Event.E_thread_start { tid; name; _ } -> Hashtbl.replace names tid name
      | _ -> ());
      current := Some e;
      (match on_event with Some f -> f e | None -> ());
      List.iter (fun (tool : Vm.Tool.t) -> tool.on_event ctx e.en_event) tools;
      Metrics.incr m_replay_events)
    t.entries;
  current := None
