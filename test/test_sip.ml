(* Tests for the SIP substrate: message wire format, transport,
   registrar/dialog logic, the proxy's functional behaviour under every
   test case, and the injected-bug toggles. *)

module Vm = Raceguard_vm
module Engine = Vm.Engine
module Api = Vm.Api
module Sip = Raceguard_sip
module Det = Raceguard_detector
module Loc = Raceguard_util.Loc

let loc = Loc.v "test_sip.ml" "test" 1

let run ?(seed = 3) f =
  let vm = Engine.create ~config:{ Engine.default_config with seed } () in
  let result = ref None in
  let outcome = Engine.run vm (fun () -> result := Some (f ())) in
  (match outcome.failures with
  | [] -> ()
  | (_, name, e) :: _ -> Alcotest.failf "thread %s raised %s" name (Printexc.to_string e));
  (match outcome.deadlock with
  | None -> ()
  | Some d -> Alcotest.failf "unexpected deadlock: %s" (Fmt.str "%a" Engine.pp_deadlock d));
  Option.get !result

(* --- wire format ---------------------------------------------------- *)

let sample_request =
  {
    Sip.Sip_msg.w_meth = Sip.Sip_msg.INVITE;
    w_uri = "sip:bob@example.com";
    w_from = "sip:alice@example.com";
    w_to = "sip:bob@example.com";
    w_call_id = "call-1";
    w_cseq = 7;
    w_contact = "sip:alice@10.0.0.5:5060";
    w_expires = 3600;
    w_auth = 0;
  }

let test_wire_roundtrip () =
  let wire = Sip.Sip_msg.request_to_wire sample_request in
  let parsed =
    run (fun () ->
        let buf = Api.alloc ~loc (String.length wire) in
        String.iteri (fun i c -> Api.write ~loc (buf + i) (Char.code c)) wire;
        Sip.Sip_msg.parse_request buf (String.length wire))
  in
  Alcotest.(check bool) "roundtrip" true (parsed = sample_request)

let test_wire_parse_errors () =
  let parse_fails wire =
    run (fun () ->
        let buf = Api.alloc ~loc (max 1 (String.length wire)) in
        String.iteri (fun i c -> Api.write ~loc (buf + i) (Char.code c)) wire;
        match Sip.Sip_msg.parse_request buf (String.length wire) with
        | exception Sip.Sip_msg.Parse_error _ -> true
        | _ -> false)
  in
  Alcotest.(check bool) "garbage" true (parse_fails "GET / HTTP/1.1\r\n\r\n");
  Alcotest.(check bool) "unknown method" true (parse_fails "PUBLISH sip:x SIP/2.0\r\nFrom: a\r\nTo: b\r\nCall-ID: c\r\nCSeq: 1 PUBLISH\r\n\r\n");
  Alcotest.(check bool) "missing header" true
    (parse_fails "INVITE sip:x SIP/2.0\r\nFrom: a\r\nTo: b\r\n\r\n");
  Alcotest.(check bool) "bad cseq" true
    (parse_fails "INVITE sip:x SIP/2.0\r\nFrom: a\r\nTo: b\r\nCall-ID: c\r\nCSeq: x INVITE\r\n\r\n")

let test_wire_status () =
  Alcotest.(check (option int)) "status" (Some 404)
    (Sip.Sip_msg.wire_status "SIP/2.0 404 Not Found\r\n\r\n");
  Alcotest.(check (option int)) "not a response" None (Sip.Sip_msg.wire_status "INVITE x SIP/2.0");
  Alcotest.(check (option string)) "header extract" (Some "abc")
    (Sip.Sip_msg.wire_header "SIP/2.0 200 OK\r\nCall-ID: abc\r\n\r\n" "Call-ID")

(* --- transport -------------------------------------------------------- *)

let test_transport_delivery () =
  let got =
    run (fun () ->
        let t = Sip.Transport.create () in
        let server = Sip.Transport.endpoint t "server" in
        let d1 = Sip.Transport.send t ~src:"client" ~dst:"server" "hello" in
        let d2 = Sip.Transport.send t ~src:"client" ~dst:"nowhere" "dropped" in
        let src, buf, len = Sip.Transport.recv t server in
        let payload = Sip.Transport.read_buffer buf len in
        Api.free ~loc buf;
        (src, payload, d1 = Sip.Transport.Delivered, d2 = Sip.Transport.Dropped_unroutable))
  in
  let src, payload, delivered, unroutable = got in
  Alcotest.(check (pair string string)) "delivered with source" ("client", "hello") (src, payload);
  Alcotest.(check bool) "routable send reports delivery" true delivered;
  Alcotest.(check bool) "unroutable send reports the drop" true unroutable

(* --- registrar --------------------------------------------------------- *)

let test_registrar_lifecycle () =
  let r =
    run (fun () ->
        let alloc = Raceguard_cxxsim.Allocator.create Raceguard_cxxsim.Allocator.Direct in
        let stats = Sip.Stats.create () in
        let reg = Sip.Registrar.create ~alloc ~stats () in
        let o1 =
          Sip.Registrar.register reg ~annotate:true ~aor:"alice@x" ~contact:"sip:a@1" ~cseq:1
            ~expires:60
        in
        let o2 =
          Sip.Registrar.register reg ~annotate:true ~aor:"alice@x" ~contact:"sip:a@2" ~cseq:2
            ~expires:60
        in
        let found = Sip.Registrar.lookup reg ~aor:"alice@x" in
        let contact =
          match found with
          | Some c ->
              let s = Raceguard_cxxsim.Refstring.to_string c in
              Raceguard_cxxsim.Refstring.release c;
              s
          | None -> "<none>"
        in
        let missing = Sip.Registrar.lookup reg ~aor:"bob@x" in
        let removed = Sip.Registrar.unregister reg ~annotate:true ~aor:"alice@x" in
        let removed_again = Sip.Registrar.unregister reg ~annotate:true ~aor:"alice@x" in
        (o1, o2, contact, missing = None, removed, removed_again, Sip.Registrar.size reg))
  in
  let o1, o2, contact, missing, removed, removed_again, size = r in
  Alcotest.(check bool) "first is new" true (o1 = `Registered);
  Alcotest.(check bool) "second is refresh" true (o2 = `Refreshed);
  Alcotest.(check string) "refresh wins" "sip:a@2" contact;
  Alcotest.(check bool) "missing user" true missing;
  Alcotest.(check bool) "unregister" true removed;
  Alcotest.(check bool) "second unregister is a no-op" false removed_again;
  Alcotest.(check int) "empty at the end" 0 size

let test_registrar_expiry () =
  let expired, after =
    run (fun () ->
        let alloc = Raceguard_cxxsim.Allocator.create Raceguard_cxxsim.Allocator.Direct in
        let stats = Sip.Stats.create () in
        let reg = Sip.Registrar.create ~alloc ~stats () in
        ignore
          (Sip.Registrar.register reg ~annotate:true ~aor:"a@x" ~contact:"c" ~cseq:1 ~expires:0);
        (* expires:0 means unregister in SIP, but register() treats the
           caller-provided ttl; use a tiny ttl then advance the clock *)
        ignore
          (Sip.Registrar.register reg ~annotate:true ~aor:"b@x" ~contact:"c" ~cseq:1 ~expires:1);
        Api.sleep 500;
        let n = Sip.Registrar.expire_stale reg ~annotate:true in
        (n, Sip.Registrar.lookup reg ~aor:"b@x"))
  in
  Alcotest.(check bool) "stale bindings expired" true (expired >= 1);
  Alcotest.(check bool) "expired binding gone" true (after = None)

(* --- dialogs ------------------------------------------------------------ *)

let test_dialog_lifecycle () =
  let r =
    run (fun () ->
        let alloc = Raceguard_cxxsim.Allocator.create Raceguard_cxxsim.Allocator.Direct in
        let stats = Sip.Stats.create () in
        let d = Sip.Dialogs.create ~alloc ~stats in
        let started = Sip.Dialogs.start_call d ~caller:"a" ~callee:"b" ~call_id:"c1" ~cseq:1 in
        let dup = Sip.Dialogs.start_call d ~caller:"a" ~callee:"b" ~call_id:"c1" ~cseq:2 in
        let confirmed = Sip.Dialogs.confirm d ~call_id:"c1" in
        let active = Sip.Dialogs.active_count d in
        let ended = Sip.Dialogs.end_call d ~annotate:true ~call_id:"c1" in
        let ended_again = Sip.Dialogs.end_call d ~annotate:true ~call_id:"c1" in
        let stray = Sip.Dialogs.confirm d ~call_id:"zzz" in
        (started, dup, confirmed, active, ended, ended_again, stray))
  in
  let started, dup, confirmed, active, ended, ended_again, stray = r in
  Alcotest.(check bool) "call started" true started;
  Alcotest.(check bool) "duplicate rejected" false dup;
  Alcotest.(check bool) "ack confirmed" true confirmed;
  Alcotest.(check int) "one active" 1 active;
  Alcotest.(check bool) "bye ends" true ended;
  Alcotest.(check bool) "double bye rejected" false ended_again;
  Alcotest.(check bool) "stray ack rejected" false stray

(* --- full proxy functional behaviour -------------------------------------- *)

let run_tc ?(server_config = { Sip.Proxy.default_config with annotate = true }) ?(seed = 3) tc =
  run ~seed (fun () ->
      let transport = Sip.Transport.create () in
      Sip.Workload.run_test_case ~transport ~server_config tc ())

let test_all_cases_functionally_clean () =
  List.iter
    (fun tc ->
      let r = run_tc tc in
      Alcotest.(check (list string))
        (tc.Sip.Workload.tc_name ^ " oracle clean")
        [] r.Sip.Workload.r_failures;
      Alcotest.(check bool)
        (tc.Sip.Workload.tc_name ^ " handled requests")
        true
        (r.r_requests_handled > 0 && r.r_responses > 0))
    Sip.Workload.all_test_cases

let test_pool_mode_functionally_clean () =
  let r =
    run_tc
      ~server_config:
        { Sip.Proxy.default_config with annotate = true; pattern = Sip.Proxy.Pool 3 }
      Sip.Workload.t2
  in
  Alcotest.(check (list string)) "pool-mode oracle clean" [] r.r_failures

let test_seed_variation_stays_clean () =
  List.iter
    (fun seed ->
      let r = run_tc ~seed Sip.Workload.t4 in
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d clean" seed)
        [] r.r_failures)
    [ 1; 2; 11; 23 ]

(* --- bug toggles ------------------------------------------------------------ *)

let locations_with server_config tc ~seed =
  let vm = Engine.create ~config:{ Engine.default_config with seed } () in
  let h = Det.Helgrind.create Det.Helgrind.hwlc_dr in
  Engine.add_tool vm (Det.Helgrind.tool h);
  let transport = Sip.Transport.create () in
  let outcome =
    Engine.run vm (fun () ->
        ignore (Sip.Workload.run_test_case ~transport ~server_config tc ()))
  in
  assert (outcome.failures = []);
  Det.Helgrind.locations h

let has_bug bug locs =
  List.exists (fun ((r : Det.Report.t), _) -> List.mem bug (Sip.Bugs.identify r.stack)) locs

let test_bug_toggles () =
  let base = { Sip.Proxy.default_config with annotate = true; enable_watchdog = true } in
  let locs = locations_with base Sip.Workload.t4 ~seed:7 in
  Alcotest.(check bool) "B1 found when watchdog on" true (has_bug Sip.Bugs.B1_watchdog locs);
  Alcotest.(check bool) "B4 found" true (has_bug Sip.Bugs.B4_returned_reference locs);
  Alcotest.(check bool) "B5 found" true (has_bug Sip.Bugs.B5_static_buffer locs);
  Alcotest.(check bool) "B6 found" true (has_bug Sip.Bugs.B6_racy_counters locs);
  (* toggled off: the corresponding reports disappear *)
  let no_watchdog = locations_with { base with enable_watchdog = false } Sip.Workload.t4 ~seed:7 in
  Alcotest.(check bool) "B1 gone when watchdog off" false
    (has_bug Sip.Bugs.B1_watchdog no_watchdog);
  let fixed_ref = locations_with { base with use_leaked_ref = false } Sip.Workload.t4 ~seed:7 in
  Alcotest.(check bool) "B4 gone when callers use the safe API" false
    (has_bug Sip.Bugs.B4_returned_reference fixed_ref)

let test_shutdown_bug_toggle () =
  let base = { Sip.Proxy.default_config with annotate = true } in
  let racy = locations_with base Sip.Workload.t3 ~seed:7 in
  let fixed = locations_with { base with shutdown_racy = false } Sip.Workload.t3 ~seed:7 in
  Alcotest.(check bool) "B3 present with racy shutdown" true
    (has_bug Sip.Bugs.B3_shutdown_order racy);
  Alcotest.(check bool) "B3 absent with ordered shutdown" false
    (has_bug Sip.Bugs.B3_shutdown_order fixed)

let test_auth_challenge_flow () =
  let auth_case =
    {
      Sip.Workload.tc_name = "AUTH";
      tc_description = "digest challenge flow";
      tc_drivers =
        [
          ( "uac1",
            fun d ->
              Sip.Workload.do_register_auth d ~user:"alice" ~domain:"example.com" ~cseq:1;
              Sip.Workload.do_register_auth d ~user:"bob" ~domain:"example.com" ~cseq:2 );
          ( "uac2",
            fun d ->
              (* unauthenticated REGISTER must keep being challenged *)
              Sip.Workload.send d
                (Sip.Workload.request ~meth:Sip.Sip_msg.REGISTER ~uri:"sip:example.com"
                   ~from:"sip:eve@example.com" ~to_:"sip:eve@example.com" ~call_id:"eve-1"
                   ~cseq:1 ~contact:"sip:eve@6.6.6.6" ());
              let resp = Sip.Workload.recv_response d in
              if Sip.Sip_msg.wire_status resp <> Some 401 then
                Alcotest.failf "expected 401 for unauthenticated register, got %s" resp );
        ];
    }
  in
  let r =
    run_tc
      ~server_config:
        { Sip.Proxy.default_config with annotate = true; require_auth = true }
      auth_case
  in
  Alcotest.(check (list string)) "auth flow oracle clean" [] r.r_failures

let test_auth_wrong_response_rejected () =
  let ok =
    run (fun () ->
        let alloc = Raceguard_cxxsim.Allocator.create Raceguard_cxxsim.Allocator.Direct in
        let a = Sip.Auth.create ~alloc ~annotate:true in
        let nonce = Sip.Auth.challenge a ~user:"u@x" in
        let wrong = Sip.Auth.verify a ~user:"u@x" ~response:(Sip.Auth.response_for ~nonce + 1) in
        (* the nonce is consumed even by a failed attempt: single use *)
        let nonce2 = Sip.Auth.challenge a ~user:"u@x" in
        let right = Sip.Auth.verify a ~user:"u@x" ~response:(Sip.Auth.response_for ~nonce:nonce2) in
        let replay = Sip.Auth.verify a ~user:"u@x" ~response:(Sip.Auth.response_for ~nonce:nonce2) in
        let unknown = Sip.Auth.verify a ~user:"nobody@x" ~response:1 in
        ((not wrong) && right && (not replay)) && not unknown)
  in
  Alcotest.(check bool) "digest verification semantics" true ok

let test_history_and_routing_exercised () =
  (* white-box: the report population must include history-eviction
     destructor sites (without DR) and routing must answer lookups *)
  let base = { Sip.Proxy.default_config with annotate = true } in
  let vm = Engine.create ~config:{ Engine.default_config with seed = 7 } () in
  let hwlc = Det.Helgrind.create Det.Helgrind.hwlc in
  Engine.add_tool vm (Det.Helgrind.tool hwlc);
  let transport = Sip.Transport.create () in
  let _ =
    Engine.run vm (fun () ->
        ignore (Sip.Workload.run_test_case ~transport ~server_config:base Sip.Workload.t1 ()))
  in
  let locs = Det.Helgrind.locations hwlc in
  Alcotest.(check bool) "history eviction sites reported under HWLC (no DR)" true
    (List.exists
       (fun ((r : Det.Report.t), _) ->
         List.exists (fun l -> Loc.file l = "history.cpp") r.stack)
       locs)

let suite =
  ( "sip",
    [
      Alcotest.test_case "wire roundtrip" `Quick test_wire_roundtrip;
      Alcotest.test_case "wire parse errors" `Quick test_wire_parse_errors;
      Alcotest.test_case "wire status/header" `Quick test_wire_status;
      Alcotest.test_case "transport delivery" `Quick test_transport_delivery;
      Alcotest.test_case "registrar lifecycle" `Quick test_registrar_lifecycle;
      Alcotest.test_case "registrar expiry" `Quick test_registrar_expiry;
      Alcotest.test_case "dialog lifecycle" `Quick test_dialog_lifecycle;
      Alcotest.test_case "all 8 cases functionally clean" `Slow test_all_cases_functionally_clean;
      Alcotest.test_case "pool mode clean" `Quick test_pool_mode_functionally_clean;
      Alcotest.test_case "seed variation clean" `Slow test_seed_variation_stays_clean;
      Alcotest.test_case "bug toggles" `Slow test_bug_toggles;
      Alcotest.test_case "shutdown bug toggle" `Quick test_shutdown_bug_toggle;
      Alcotest.test_case "auth challenge flow" `Quick test_auth_challenge_flow;
      Alcotest.test_case "auth verification" `Quick test_auth_wrong_response_rejected;
      Alcotest.test_case "history/routing exercised" `Quick test_history_and_routing_exercised;
    ] )
