lib/sip/timeutil.mli:
