(** Chaos matrix runner: fault plans × SIP test cases × resilience
    on/off, each cell one deterministic VM run judged by post-run
    invariant oracles.  (seed, plan) ⇒ byte-identical digests. *)

module Vm = Raceguard_vm
module Det = Raceguard_detector
module Sip = Raceguard_sip
module Obs = Raceguard_obs
module Faults = Raceguard_faults

type config = {
  seed : int;
  plans : Faults.Plan.t list;
  tests : Sip.Workload.test_case list;
  shard_plans : Faults.Plan.t list;
      (** shard-targeted plans — crossed with [scenario_tests] only,
          never with [tests], so the T1–T8 grid is untouched *)
  scenario_tests : Sip.Workload.test_case list;
      (** compiled [raceguard-scenario/1] storm scenarios (T9/T10);
          their cells run against a sharded registrar and carry the
          extra {b shards} invariant oracle *)
  fast_path : bool;
      (** detector fast-path toggle — guaranteed not to change digests *)
  max_ops : int;
  domains : int;
      (** worker domains for the cell grid (work-stealing pool,
          [lib/par/]); 1 = sequential, 0 = auto — guaranteed not to
          change digests either *)
  record_dir : string option;
      (** when set, every cell also records a [raceguard-trace/1]
          binary trace into [<dir>/<plan>-<test>-<res|base>.rgt]; the
          recorder is a pure observer, so digests are unchanged *)
}

val default : config
(** All shipped plans × all eight chaos test cases, plus all three
    shard plans × T9/T10, × both resilience settings. *)

val quick : config
(** The CI smoke subset: plans [drop]/[dup]/[oom] on T2 and T6, plus
    [shard-storm] on T9/T10. *)

val cell_resilience : Sip.Proxy.resilience
(** The knobs every resilient cell runs with (low high-water mark so
    pool cells actually shed). *)

(** One post-run invariant check. *)
type oracle = { o_name : string; o_ok : bool; o_detail : string }

type cell = {
  cl_plan : string;
  cl_test : string;
  cl_resilient : bool;
  cl_oracles : oracle list;
  cl_violations : string list;
  cl_locations : int;
  cl_sig_digest : string;
  cl_behavior_digest : string;
  cl_unanswered : int;
  cl_wrong_finals : int;
  cl_shed_seen : int;
  cl_sheds : int;
  cl_cache_hits : int;
  cl_retransmits : int;
  cl_injected : Faults.Injector.counts;
  cl_thread_failures : int;
  cl_deadlocked : bool;
  cl_wall : float;
  cl_sharded : bool;  (** scenario cell against a sharded registrar *)
  cl_shard_count : int;  (** final shard count (1 when unsharded) *)
  cl_resizes : int;
  cl_migrations : int;
  cl_shard_audit : string list;  (** {!Sip.Registrar.audit} violations *)
}

val run_cell :
  config -> plan:Faults.Plan.t -> resilient:bool -> Sip.Workload.test_case -> cell

val grid : config -> (Faults.Plan.t * Sip.Workload.test_case * bool) array
(** The cell grid in the order the sequential runner executes it:
    plans outermost, then tests, resilient before baseline; the T1–T8
    grid first, then the shard-plan × scenario grid.  Exposed
    so harnesses (the bench scaling suite) can drive {!run_cell} over
    the pool themselves and read the steal statistics. *)

type report = {
  rp_seed : int;
  rp_fast_path : bool;
  rp_domains : int;
  rp_cells : cell list;
  rp_resilient_violations : int;
  rp_baseline_violations : int;
}

val run : config -> report
(** Runs the cell grid on [config.domains] worker domains; the report
    (cell order, every digest) is identical for any domain count. *)

val passed : report -> bool
(** Resilient cells all clean AND at least one baseline cell violates
    an oracle — the asymmetry the resilience layer must produce. *)

val matrix_digest : report -> string
(** MD5 over every cell's (plan, test, resilient, signature digest,
    behaviour digest, violations) — the determinism pin. *)

val to_json : ?config:config -> report -> Obs.Json.t
(** Schema [raceguard-chaos/1]. *)

val pp : Format.formatter -> report -> unit
