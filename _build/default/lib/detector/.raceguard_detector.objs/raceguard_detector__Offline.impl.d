lib/detector/offline.ml: List Raceguard_util Raceguard_vm String
