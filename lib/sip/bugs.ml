(** Ground truth: the bugs injected into the server (§4.1) and how to
    recognise them in detector reports.

    Each bug is identified by file/function patterns over the report
    call stack.  This oracle is used by experiment E10 ("true
    positives") and by tests asserting that every detector
    configuration still finds the real bugs. *)

type id =
  | B1_watchdog  (** race in the app's own deadlock-detection code *)
  | B2_init_order  (** thread started before its data is initialised *)
  | B3_shutdown_order  (** structure destroyed before its user thread exits *)
  | B4_returned_reference  (** Figure 7: reference escapes the guard *)
  | B5_static_buffer  (** ctime/localtime-style static data *)
  | B6_racy_counters  (** unsynchronised statistics increments *)

let all = [ B1_watchdog; B2_init_order; B3_shutdown_order; B4_returned_reference; B5_static_buffer; B6_racy_counters ]

let to_string = function
  | B1_watchdog -> "B1-watchdog-race"
  | B2_init_order -> "B2-init-order"
  | B3_shutdown_order -> "B3-shutdown-order"
  | B4_returned_reference -> "B4-returned-reference"
  | B5_static_buffer -> "B5-static-time-buffer"
  | B6_racy_counters -> "B6-racy-counters"

let description = function
  | B1_watchdog ->
      "the application's timeout-based deadlock detector reads/writes its watch table unsynchronised"
  | B2_init_order ->
      "the domain-data reload thread starts before the initial population of the table"
  | B3_shutdown_order -> "Stats is destroyed before the logger thread that bumps it is joined"
  | B4_returned_reference ->
      "getDomainData() returns the address of the mutex-guarded map; callers iterate it unlocked"
  | B5_static_buffer -> "ctime() formats into a static buffer shared by all threads"
  | B6_racy_counters -> "fast-path statistics counters use unlocked read-modify-write"

(** Does a stack frame belong to this bug's code?  [frames] are
    (func, file) pairs from the report stack, innermost first. *)
let stack_matches bug (frames : (string * string) list) =
  let any_frame p = List.exists p frames in
  let starts_with prefix s =
    String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix
  in
  match bug with
  | B1_watchdog -> any_frame (fun (_, file) -> file = "lock_watch.cpp")
  | B2_init_order ->
      any_frame (fun (func, file) ->
          file = "domain_data.cpp" && starts_with "ServerModulesManagerImpl::populate" func)
  | B3_shutdown_order ->
      any_frame (fun (func, _) -> starts_with "Logger::flushFinal" func)
  | B4_returned_reference ->
      (* the caller-side dereference of the escaped map reference:
         container code reached from unsafe_lookup/callerDeref without
         the guard *)
      any_frame (fun (func, _) -> starts_with "ServerModulesManagerImpl::callerDeref" func)
      || (any_frame (fun (_, file) -> file = "stl_map.h")
         && any_frame (fun (func, _) -> starts_with "ServerModulesManagerImpl::getDomainData" func))
  | B5_static_buffer -> any_frame (fun (_, file) -> file = "time.c")
  | B6_racy_counters ->
      any_frame (fun (func, file) -> file = "stats.cpp" && starts_with "Stats::on" func)

(** Is this stack part of the resilience/recovery machinery (response
    cache, timer cancellation/resend)?  Recovery-path traffic is
    correctly synchronised new code the chaos matrix exercises; the
    E10-style classification separates it from the injected bugs. *)
let recovery_path (stack : Raceguard_util.Loc.t list) =
  let starts_with prefix s =
    String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix
  in
  List.exists
    (fun l ->
      let file = Raceguard_util.Loc.file l and func = Raceguard_util.Loc.func l in
      file = "txn_cache.cpp"
      || (file = "timer_wheel.cpp"
         && (starts_with "TimerWheel::cancel" func || starts_with "TimerWheel::resend" func)))
    stack

(** Classify a report against the known bugs. *)
let identify (stack : Raceguard_util.Loc.t list) =
  let frames =
    List.map (fun l -> (Raceguard_util.Loc.func l, Raceguard_util.Loc.file l)) stack
  in
  List.filter (fun bug -> stack_matches bug frames) all
