examples/schedule_search.ml: Raceguard
