examples/minicc_pipeline.ml: Array Fmt List Printexc Printf Raceguard Raceguard_detector Raceguard_minicc Raceguard_vm String Sys
