lib/core/classify.mli: Raceguard_detector Raceguard_sip Set
