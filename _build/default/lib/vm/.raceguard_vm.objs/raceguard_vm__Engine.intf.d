lib/vm/engine.mli: Event Format Memory Tool
