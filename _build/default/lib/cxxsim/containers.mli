(** STL-like containers with storage in VM memory: a growing vector and
    a sorted map (linked nodes standing in for the red-black tree — the
    per-operation access pattern is what matters at simulation sizes).
    Both allocate through the {!Allocator} they were "instantiated"
    with, so the pool-allocator experiment flips one switch. *)

module Vector : sig
  type t

  val create : Allocator.t -> t
  val size : t -> int
  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val push_back : t -> int -> unit
  val iter : t -> (int -> unit) -> unit
  val destroy : t -> unit
end

module Map : sig
  type t

  val create : Allocator.t -> t

  val address : t -> int
  (** The header address — what a method "returning a reference to the
      internal map" hands out (the Figure-7 bug pattern). *)

  val of_address : Allocator.t -> int -> t
  (** Rebuild a view from an escaped address (the caller side of the
      same bug). *)

  val size : t -> int
  val find : t -> int -> int option
  val insert : t -> int -> int -> unit
  (** Sorted insert; updates in place when the key exists. *)

  val remove : t -> int -> bool
  val iter : t -> (int -> int -> unit) -> unit
  val clear : t -> unit
  val destroy : t -> unit
end
