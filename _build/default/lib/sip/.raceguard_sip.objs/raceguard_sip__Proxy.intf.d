lib/sip/proxy.mli: Raceguard_cxxsim Transport
