(** Metrics registry: named counters, gauges and log2-bucket
    histograms with snapshot / merge / diff / JSON export.

    Instruments are registered once (typically at module init) and
    incremented through their handle — the hot path is a single
    domain-local array store, no hashing or allocation.  Instrument
    {e state} is domain-local ([Domain.DLS]): each domain sees only the
    work it did, so independent cells running on the multicore pool
    ([lib/par/]) never interfere, and their per-cell [snapshot]/[diff]
    deltas combine with [merge].  Consumers take [snapshot]s of the
    [default] registry and [diff] them to get per-run deltas. *)

type registry

val create : unit -> registry
val default : registry
(** The process-wide registry used when [?registry] is omitted. *)

(** {1 Instruments}

    Registering the same name twice in one registry raises
    [Invalid_argument]. *)

type counter
type gauge
type histogram

val counter : ?registry:registry -> string -> counter
val gauge : ?registry:registry -> string -> gauge
val histogram : ?registry:registry -> string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set : gauge -> int -> unit
val gauge_value : gauge -> int

val observe : histogram -> int -> unit
(** Record one value.  Negative values clamp to 0.  Value [v] lands in
    bucket [bucket_of_value v]; bucket [i>0] covers [2^(i-1), 2^i). *)

val buckets : int
(** Number of histogram buckets (64 — enough for any [int]). *)

val bucket_of_value : int -> int

(** {1 Snapshots} *)

type hist_data = { buckets : int array; count : int; sum : int }

type snapshot = {
  s_counters : (string * int) list;
  s_gauges : (string * int) list;
  s_histograms : (string * hist_data) list;
}
(** All three lists are sorted by name. *)

val snapshot : ?registry:registry -> unit -> snapshot
val empty : snapshot

val merge : snapshot -> snapshot -> snapshot
(** Combine snapshots from independent runs: counters and histogram
    buckets add, gauges keep the max.  Associative and commutative,
    with [empty] as identity (qcheck-tested). *)

val diff : before:snapshot -> snapshot -> snapshot
(** Per-run delta: counters and histograms subtract (clamped at 0),
    gauges keep the [after] level. *)

val find_counter : snapshot -> string -> int option
val find_gauge : snapshot -> string -> int option

val to_json : snapshot -> Json.t
val pp : Format.formatter -> snapshot -> unit
(** Human-readable dump; zero-valued instruments are omitted. *)
