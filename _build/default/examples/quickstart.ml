(* Quickstart: write a small multi-threaded program against the VM API,
   run it under the Helgrind-style detector, and read the reports.

     dune exec examples/quickstart.exe

   The program has one real data race (the unlocked counter) and one
   correctly locked counter.  The detector flags exactly the former. *)

module Vm = Raceguard_vm
module Det = Raceguard_detector
module Loc = Raceguard_util.Loc
module Api = Vm.Api

(* give every access a pseudo source position — reports quote these *)
let loc line = Loc.v "quickstart.c" "main" line

let program () =
  let racy = Api.alloc ~loc:(loc 3) 1 in
  let safe = Api.alloc ~loc:(loc 4) 1 in
  let m = Api.Mutex.create ~loc:(loc 5) "counter_guard" in
  let worker () =
    Api.with_frame (Loc.v "quickstart.c" "worker" 8) @@ fun () ->
    for _ = 1 to 5 do
      (* BUG: unlocked read-modify-write of shared memory *)
      let v = Api.read ~loc:(loc 11) racy in
      Api.write ~loc:(loc 12) racy (v + 1);
      (* correct: same pattern under a mutex *)
      Api.Mutex.with_lock ~loc:(loc 14) m (fun () ->
          let v = Api.read ~loc:(loc 15) safe in
          Api.write ~loc:(loc 16) safe (v + 1))
    done
  in
  let t1 = Api.spawn ~loc:(loc 20) ~name:"worker-1" worker in
  let t2 = Api.spawn ~loc:(loc 21) ~name:"worker-2" worker in
  Api.join ~loc:(loc 22) t1;
  Api.join ~loc:(loc 23) t2;
  Printf.printf "racy counter = %d, safe counter = %d (both \"should\" be 10)\n"
    (Api.read ~loc:(loc 25) racy)
    (Api.read ~loc:(loc 26) safe)

let () =
  (* 1. create a VM, 2. attach the detector, 3. run, 4. read reports *)
  let vm = Vm.Engine.create ~config:{ Vm.Engine.default_config with seed = 42 } () in
  let helgrind = Det.Helgrind.create Det.Helgrind.hwlc_dr in
  Vm.Engine.add_tool vm (Det.Helgrind.tool helgrind);
  let outcome = Vm.Engine.run vm program in
  Printf.printf "\nexecuted %d operations on %d threads\n" outcome.stats.ops_executed
    outcome.stats.threads_created;
  let locations = Det.Helgrind.locations helgrind in
  Printf.printf "detector reported %d distinct location(s):\n\n" (List.length locations);
  List.iter (fun (r, n) -> Fmt.pr "[%d occurrence(s)] %a@." n Det.Report.pp r) locations
