lib/sip/timer_wheel.ml: List Raceguard_cxxsim Raceguard_util Raceguard_vm
