(* Tests for the C++ semantics simulation: object model layout and
   destructor chains, copy-on-write strings, allocators, containers. *)

module Vm = Raceguard_vm
module Engine = Vm.Engine
module Api = Vm.Api
module Event = Vm.Event
module Obj = Raceguard_cxxsim.Object_model
module Refstring = Raceguard_cxxsim.Refstring
module Allocator = Raceguard_cxxsim.Allocator
module C = Raceguard_cxxsim.Containers
module Loc = Raceguard_util.Loc

let loc = Loc.v "cxx.cpp" "main" 1

let run ?(seed = 1) ?tool f =
  let vm = Engine.create ~config:{ Engine.default_config with seed } () in
  (match tool with Some t -> Engine.add_tool vm t | None -> ());
  let result = ref None in
  let outcome = Engine.run vm (fun () -> result := Some (f ())) in
  (match outcome.failures with
  | [] -> ()
  | (_, name, e) :: _ -> Alcotest.failf "thread %s raised %s" name (Printexc.to_string e));
  (outcome, Option.get !result)

(* a 3-level hierarchy for the layout tests *)
let base = Obj.define ~name:"LBase" ~fields:[ "a"; "b" ] ()
let mid = Obj.define ~parent:base ~name:"LMid" ~fields:[ "c" ] ()
let derived = Obj.define ~parent:mid ~name:"LDerived" ~fields:[ "d"; "e" ] ()

let test_layout () =
  Alcotest.(check int) "size base" 3 (Obj.size base);
  Alcotest.(check int) "size derived" 6 (Obj.size derived);
  Alcotest.(check int) "offset of inherited field" 1 (Obj.field_offset derived "a");
  Alcotest.(check int) "offset of mid field" 3 (Obj.field_offset derived "c");
  Alcotest.(check int) "offset of own field" 5 (Obj.field_offset derived "e");
  Alcotest.check_raises "unknown field"
    (Invalid_argument "field \"z\" not found in class LDerived") (fun () ->
      ignore (Obj.field_offset derived "z"))

let test_field_roundtrip () =
  let _, (va, ve) =
    run (fun () ->
        let o = Obj.new_ ~loc derived in
        Obj.set ~loc derived o "a" 11;
        Obj.set ~loc derived o "e" 55;
        let r = (Obj.get ~loc derived o "a", Obj.get ~loc derived o "e") in
        Obj.delete_ ~loc ~annotate:true derived o;
        r)
  in
  Alcotest.(check int) "field a" 11 va;
  Alcotest.(check int) "field e" 55 ve

let test_vptr_writes_during_lifecycle () =
  (* observe the construction and destruction vptr protocol through
     the event stream: ctor chain base->derived, dtor derived->base *)
  let vptr_writes = ref [] in
  let obj_addr = ref (-1) in
  let tool =
    Vm.Tool.of_fn "vptr" (fun e ->
        match e with
        | Event.E_write { addr; value; loc = l; _ }
          when addr = !obj_addr && String.length (Loc.func l) > 0 ->
            vptr_writes := (Loc.func l, value) :: !vptr_writes
        | _ -> ())
  in
  let _, () =
    run ~tool (fun () ->
        (* pre-reserve: the first alloc in this VM gives address 1 *)
        obj_addr := 1;
        let o = Obj.new_ ~loc derived in
        assert (o = 1);
        Obj.delete_ ~loc ~annotate:false derived o)
  in
  let funcs = List.rev_map fst !vptr_writes in
  Alcotest.(check (list string)) "vptr protocol order"
    [
      "LBase::LBase"; "LMid::LMid"; "LDerived::LDerived";
      "LDerived::~LDerived"; "LMid::~LMid"; "LBase::~LBase";
    ]
    funcs

let test_delete_annotation_event () =
  let destructs = ref [] in
  let tool =
    Vm.Tool.of_fn "destructs" (fun e ->
        match e with
        | Event.E_client { req = Vm.Eff.Destruct { addr; len }; _ } ->
            destructs := (addr, len) :: !destructs
        | _ -> ())
  in
  let _, o =
    run ~tool (fun () ->
        let o = Obj.new_ ~loc derived in
        Obj.delete_ ~loc ~annotate:true derived o;
        let o2 = Obj.new_ ~loc base in
        Obj.delete_ ~loc ~annotate:false base o2;
        o)
  in
  Alcotest.(check (list (pair int int))) "exactly the annotated delete, full size"
    [ (o, 6) ] !destructs

let test_delete_null_is_noop () =
  let _, () = run (fun () -> Obj.delete_ ~loc ~annotate:true derived 0) in
  ()

(* --- refstring -------------------------------------------------------- *)

let test_refstring_roundtrip () =
  let _, s =
    run (fun () ->
        let r = Refstring.create ~loc "hello world" in
        let s = Refstring.to_string r in
        Refstring.release r;
        s)
  in
  Alcotest.(check string) "contents survive" "hello world" s

let test_refstring_sharing_and_cow () =
  let _, (shared_before, s1, s2, shared_after) =
    run (fun () ->
        let a = Refstring.create ~loc "abc" in
        let b = Refstring.copy a in
        let shared_before = Refstring.is_shared a in
        (* mutate through b: must unshare, leaving a intact *)
        let b' = Refstring.set_char ~loc b 0 'X' in
        let s1 = Refstring.to_string a and s2 = Refstring.to_string b' in
        let shared_after = Refstring.is_shared a in
        Refstring.release a;
        Refstring.release b';
        (shared_before, s1, s2, shared_after))
  in
  Alcotest.(check bool) "shared after copy" true shared_before;
  Alcotest.(check string) "original untouched" "abc" s1;
  Alcotest.(check string) "copy mutated" "Xbc" s2;
  Alcotest.(check bool) "unshared after CoW" false shared_after

let test_refstring_mutate_unshared_in_place () =
  let _, (r, r') =
    run (fun () ->
        let r = Refstring.create ~loc "abc" in
        let r' = Refstring.set_char ~loc r 1 'Z' in
        let pair = (r, r') in
        Refstring.release r';
        pair)
  in
  Alcotest.(check int) "no copy when sole owner" r r'

let test_refstring_release_frees () =
  let frees = ref 0 in
  let tool =
    Vm.Tool.of_fn "frees" (fun e -> match e with Event.E_free _ -> incr frees | _ -> ())
  in
  let _, () =
    run ~tool (fun () ->
        let a = Refstring.create ~loc "x" in
        let b = Refstring.copy a in
        Refstring.release a;
        (* still one owner: no free yet *)
        assert (!frees = 0);
        Refstring.release b)
  in
  Alcotest.(check int) "freed exactly once, at the last release" 1 !frees

let test_refstring_equal_hash () =
  let _, (eq1, eq2, h_eq) =
    run (fun () ->
        let a = Refstring.create ~loc "same" in
        let b = Refstring.create ~loc "same" in
        let c = Refstring.create ~loc "diff" in
        let r = (Refstring.equal a b, Refstring.equal a c, Refstring.hash a = Refstring.hash b) in
        Refstring.release a;
        Refstring.release b;
        Refstring.release c;
        r)
  in
  Alcotest.(check bool) "equal contents" true eq1;
  Alcotest.(check bool) "different contents" false eq2;
  Alcotest.(check bool) "equal hashes" true h_eq

(* --- allocator --------------------------------------------------------- *)

let count_allocs tool_events f =
  let allocs = ref 0 and frees = ref 0 in
  let tool =
    Vm.Tool.of_fn "allocs" (fun e ->
        match e with
        | Event.E_alloc _ -> incr allocs
        | Event.E_free _ -> incr frees
        | _ -> ())
  in
  ignore tool_events;
  let _, () = run ~tool f in
  (!allocs, !frees)

let test_allocator_direct_visible () =
  let allocs, frees =
    count_allocs () (fun () ->
        let a = Allocator.create Allocator.Direct in
        let chunks = List.init 10 (fun _ -> Allocator.alloc a ~loc 3) in
        List.iter (fun c -> Allocator.free a ~loc c 3) chunks)
  in
  Alcotest.(check int) "every chunk malloc'd" 10 allocs;
  Alcotest.(check int) "every chunk freed" 10 frees

let test_allocator_pooled_invisible () =
  let allocs, frees =
    count_allocs () (fun () ->
        let a = Allocator.create Allocator.Pooled in
        let c1 = Allocator.alloc a ~loc 3 in
        Allocator.free a ~loc c1 3;
        let c2 = Allocator.alloc a ~loc 3 in
        (* LIFO reuse: the same chunk comes back with no VM events *)
        assert (c1 = c2);
        Allocator.free a ~loc c2 3)
  in
  Alcotest.(check int) "one slab allocation only" 1 allocs;
  Alcotest.(check int) "no frees reach the VM" 0 frees

let test_allocator_pool_stats () =
  let _, (slabs, hits) =
    run (fun () ->
        let a = Allocator.create Allocator.Pooled in
        let cs = List.init 5 (fun _ -> Allocator.alloc a ~loc 2) in
        List.iter (fun c -> Allocator.free a ~loc c 2) cs;
        let _ = List.init 5 (fun _ -> Allocator.alloc a ~loc 2) in
        (Allocator.slabs_allocated a, Allocator.pool_hits a))
  in
  Alcotest.(check int) "one slab" 1 slabs;
  Alcotest.(check bool) "reuse hits counted" true (hits >= 5)

(* --- containers --------------------------------------------------------- *)

let test_vector () =
  let _, (size, front, back, sum) =
    run (fun () ->
        let a = Allocator.create Allocator.Direct in
        let v = C.Vector.create a in
        for i = 0 to 49 do
          C.Vector.push_back v (i * 3)
        done;
        let sum = ref 0 in
        C.Vector.iter v (fun x -> sum := !sum + x);
        let r = (C.Vector.size v, C.Vector.get v 0, C.Vector.get v 49, !sum) in
        C.Vector.destroy v;
        r)
  in
  Alcotest.(check int) "size" 50 size;
  Alcotest.(check int) "front" 0 front;
  Alcotest.(check int) "back" 147 back;
  Alcotest.(check int) "sum" (3 * 49 * 50 / 2) sum

let test_map_basics () =
  let _, (found, missing, size_after, removed, size_final) =
    run (fun () ->
        let a = Allocator.create Allocator.Direct in
        let m = C.Map.create a in
        C.Map.insert m 5 50;
        C.Map.insert m 1 10;
        C.Map.insert m 9 90;
        C.Map.insert m 5 55;
        (* overwrite *)
        let found = C.Map.find m 5 in
        let missing = C.Map.find m 7 in
        let size_after = C.Map.size m in
        let removed = C.Map.remove m 1 in
        let size_final = C.Map.size m in
        C.Map.destroy m;
        (found, missing, size_after, removed, size_final))
  in
  Alcotest.(check (option int)) "find overwritten" (Some 55) found;
  Alcotest.(check (option int)) "find missing" None missing;
  Alcotest.(check int) "size counts keys once" 3 size_after;
  Alcotest.(check bool) "remove existing" true removed;
  Alcotest.(check int) "size after remove" 2 size_final

let test_map_iter_sorted () =
  let _, keys =
    run (fun () ->
        let a = Allocator.create Allocator.Direct in
        let m = C.Map.create a in
        List.iter (fun k -> C.Map.insert m k (k * 2)) [ 42; 7; 19; 3; 23 ];
        let acc = ref [] in
        C.Map.iter m (fun k _ -> acc := k :: !acc);
        C.Map.destroy m;
        List.rev !acc)
  in
  Alcotest.(check (list int)) "iteration in key order" [ 3; 7; 19; 23; 42 ] keys

(* model-based property: Map behaves like Stdlib.Map *)
module IM = Map.Make (Int)

let qc_map_model =
  let op_gen =
    QCheck2.Gen.(
      list_size (int_bound 40)
        (triple (int_bound 2) (int_bound 10) (int_bound 100)))
  in
  QCheck2.Test.make ~name:"containers: Map models Stdlib.Map" ~count:100 op_gen
    (fun ops ->
      let _, ok =
        run (fun () ->
            let a = Allocator.create Allocator.Direct in
            let m = C.Map.create a in
            let model = ref IM.empty in
            let ok = ref true in
            List.iter
              (fun (op, k, v) ->
                match op with
                | 0 ->
                    C.Map.insert m k v;
                    model := IM.add k v !model
                | 1 ->
                    let got = C.Map.remove m k in
                    let expected = IM.mem k !model in
                    if got <> expected then ok := false;
                    model := IM.remove k !model
                | _ ->
                    if C.Map.find m k <> IM.find_opt k !model then ok := false)
              ops;
            if C.Map.size m <> IM.cardinal !model then ok := false;
            C.Map.destroy m;
            !ok)
      in
      ok)

let suite =
  ( "cxxsim",
    [
      Alcotest.test_case "object layout" `Quick test_layout;
      Alcotest.test_case "field roundtrip" `Quick test_field_roundtrip;
      Alcotest.test_case "vptr protocol" `Quick test_vptr_writes_during_lifecycle;
      Alcotest.test_case "delete annotation event" `Quick test_delete_annotation_event;
      Alcotest.test_case "delete null" `Quick test_delete_null_is_noop;
      Alcotest.test_case "refstring roundtrip" `Quick test_refstring_roundtrip;
      Alcotest.test_case "refstring CoW" `Quick test_refstring_sharing_and_cow;
      Alcotest.test_case "refstring in-place mutate" `Quick test_refstring_mutate_unshared_in_place;
      Alcotest.test_case "refstring free on last release" `Quick test_refstring_release_frees;
      Alcotest.test_case "refstring equal/hash" `Quick test_refstring_equal_hash;
      Alcotest.test_case "allocator direct" `Quick test_allocator_direct_visible;
      Alcotest.test_case "allocator pooled" `Quick test_allocator_pooled_invisible;
      Alcotest.test_case "allocator pool stats" `Quick test_allocator_pool_stats;
      Alcotest.test_case "vector" `Quick test_vector;
      Alcotest.test_case "map basics" `Quick test_map_basics;
      Alcotest.test_case "map iter sorted" `Quick test_map_iter_sorted;
      QCheck_alcotest.to_alcotest qc_map_model;
    ] )
