(** Transactions and call sessions (dialog state).

    INVITE creates an [InviteTransaction] + [CallSession]; ACK confirms
    under the lock; BYE — handled by a different worker — unlinks both
    under the lock and deletes them outside: more destructor-FP sites
    at distinct report locations. *)

val transaction_class : Raceguard_cxxsim.Object_model.class_desc
val client_transaction_class : Raceguard_cxxsim.Object_model.class_desc
val invite_transaction_class : Raceguard_cxxsim.Object_model.class_desc
val session_class : Raceguard_cxxsim.Object_model.class_desc
val media_session_class : Raceguard_cxxsim.Object_model.class_desc
val call_session_class : Raceguard_cxxsim.Object_model.class_desc

(** Transaction states. *)

val st_proceeding : int
val st_confirmed : int
val st_cancelled : int

type t

val create : alloc:Raceguard_cxxsim.Allocator.t -> stats:Stats.t -> t

val start_call : t -> caller:string -> callee:string -> call_id:string -> cseq:int -> bool
(** False on a duplicate call-id. *)

val confirm : t -> call_id:string -> bool
val cancel : t -> call_id:string -> bool

val end_call : t -> annotate:bool -> call_id:string -> bool
(** Unlink transaction and session under the lock, delete both outside;
    false for an unknown dialog. *)

val active_count : t -> int
