(** The SIPp stand-in: scripted UAC drivers and the eight test cases.

    "The basic request patterns are delivered to the application by an
    automated test suite.  The main utility of this test suite is SIPp,
    a tool for SIP load testing." (§3.3)

    Each driver runs as a VM thread with its own transport endpoint: it
    sends scripted requests, waits for the responses, and records an
    oracle verdict (host-side) so the functional behaviour of the
    server is checked on every detector run.  Test cases T1–T8 mix the
    scenarios differently, which is why their warning-location counts
    differ (Figure 6). *)

module Loc = Raceguard_util.Loc
module Api = Raceguard_vm.Api

let lc func line = Loc.v "sipp_driver.cpp" func line

type driver = {
  d_name : string;
  transport : Transport.t;
  endpoint : Transport.endpoint;
  mutable failures : string list;  (** oracle violations (host side) *)
  mutable responses : int;
  mutable chaos_regs : (string * bool) list;
      (** chaos mode: (aor, should-be-bound) in chronological order,
          appended on each acknowledged REGISTER/unREGISTER *)
  mutable shed_seen : int;  (** chaos mode: 503s received and retried *)
  mutable unanswered : int;
      (** chaos mode: transactions abandoned after every retry timed out *)
}

let make_driver ~transport name =
  {
    d_name = name;
    transport;
    endpoint = Transport.endpoint transport name;
    failures = [];
    responses = 0;
    chaos_regs = [];
    shed_seen = 0;
    unanswered = 0;
  }

let send d wire = ignore (Transport.send d.transport ~src:d.d_name ~dst:"server" wire)

(** Wait for one response and check its status code. *)
let expect d ?(among = []) status =
  let _src, buf, len = Transport.recv d.transport d.endpoint in
  let wire = Transport.read_buffer buf len in
  Api.free ~loc:(lc "expect" 36) buf;
  d.responses <- d.responses + 1;
  let ok =
    match Sip_msg.wire_status wire with
    | Some s -> s = status || List.mem s among
    | None -> false
  in
  if not ok then
    d.failures <-
      Printf.sprintf "%s: expected %d, got %s" d.d_name status
        (String.concat " | " (String.split_on_char '\r' (String.concat "" (String.split_on_char '\n' wire))))
      :: d.failures

(** Wait for one response and return its wire text (for flows that need
    header contents, e.g. the digest challenge). *)
let recv_response d =
  let _src, buf, len = Transport.recv d.transport d.endpoint in
  let wire = Transport.read_buffer buf len in
  Api.free ~loc:(lc "recv_response" 50) buf;
  d.responses <- d.responses + 1;
  wire

let request ~meth ~uri ~from ~to_ ~call_id ~cseq ?(contact = "") ?(expires = -1) ?(auth = 0) () =
  Sip_msg.request_to_wire
    { w_meth = meth; w_uri = uri; w_from = from; w_to = to_; w_call_id = call_id; w_cseq = cseq;
      w_contact = contact; w_expires = expires; w_auth = auth }

(* --- scenario building blocks ------------------------------------- *)

let aor user domain = Printf.sprintf "sip:%s@%s" user domain

let do_register d ~user ~domain ~cseq ?(expires = 3600) () =
  let a = aor user domain in
  send d
    (request ~meth:Sip_msg.REGISTER ~uri:("sip:" ^ domain) ~from:a ~to_:a
       ~call_id:(Printf.sprintf "reg-%s-%d" user cseq) ~cseq
       ~contact:(Printf.sprintf "sip:%s@10.0.0.%d:5060" user (1 + (cseq mod 250)))
       ~expires ());
  expect d 200

let do_unregister d ~user ~domain ~cseq =
  ignore (do_register d ~user ~domain ~cseq ~expires:0 ())

(** Registration against a server with [require_auth]: expect the 401
    challenge, compute the digest from the nonce, retry. *)
let do_register_auth d ~user ~domain ~cseq =
  let a = aor user domain in
  let contact = Printf.sprintf "sip:%s@10.0.1.%d:5060" user (1 + (cseq mod 250)) in
  let reg ?auth () =
    request ~meth:Sip_msg.REGISTER ~uri:("sip:" ^ domain) ~from:a ~to_:a
      ~call_id:(Printf.sprintf "rega-%s-%d" user cseq) ~cseq ~contact ?auth ()
  in
  send d (reg ());
  let challenge = recv_response d in
  match Sip_msg.wire_status challenge with
  | Some 401 -> (
      match Sip_msg.wire_header challenge "WWW-Authenticate" with
      | Some h -> (
          match String.index_opt h '=' with
          | Some i -> (
              match int_of_string_opt (String.trim (String.sub h (i + 1) (String.length h - i - 1))) with
              | Some nonce ->
                  send d (reg ~auth:(Auth.response_for ~nonce) ());
                  expect d 200
              | None -> d.failures <- (d.d_name ^ ": unparsable nonce") :: d.failures)
          | None -> d.failures <- (d.d_name ^ ": malformed challenge") :: d.failures)
      | None -> d.failures <- (d.d_name ^ ": 401 without WWW-Authenticate") :: d.failures)
  | s ->
      d.failures <-
        Printf.sprintf "%s: expected 401 challenge, got %s" d.d_name
          (match s with Some s -> string_of_int s | None -> "garbage")
        :: d.failures

let do_options d ~domain ~cseq =
  send d
    (request ~meth:Sip_msg.OPTIONS ~uri:("sip:" ^ domain) ~from:(aor "ping" domain)
       ~to_:(aor "server" domain) ~call_id:(Printf.sprintf "opt-%s-%d" d.d_name cseq) ~cseq ());
  expect d 200

(** One complete call: INVITE (180 + 200), ACK, pause, BYE (200). *)
let do_call d ~caller ~callee ~domain ~call_id ~cseq ?(talk = 10) () =
  let from = aor caller domain and to_ = aor callee domain in
  let uri = to_ in
  send d (request ~meth:Sip_msg.INVITE ~uri ~from ~to_ ~call_id ~cseq ());
  expect d 180;
  expect d 200;
  send d (request ~meth:Sip_msg.ACK ~uri ~from ~to_ ~call_id ~cseq ());
  Api.sleep talk;
  send d (request ~meth:Sip_msg.BYE ~uri ~from ~to_ ~call_id ~cseq:(cseq + 1) ());
  expect d 200

(** INVITE to an unregistered callee: 404 expected. *)
let do_failed_call d ~caller ~callee ~domain ~call_id ~cseq =
  let from = aor caller domain and to_ = aor callee domain in
  send d (request ~meth:Sip_msg.INVITE ~uri:to_ ~from ~to_ ~call_id ~cseq ());
  expect d 404

(** INVITE then CANCEL then BYE (teardown of a cancelled call). *)
let do_cancelled_call d ~caller ~callee ~domain ~call_id ~cseq =
  let from = aor caller domain and to_ = aor callee domain in
  let uri = to_ in
  send d (request ~meth:Sip_msg.INVITE ~uri ~from ~to_ ~call_id ~cseq ());
  expect d 180;
  expect d 200;
  send d (request ~meth:Sip_msg.CANCEL ~uri ~from ~to_ ~call_id ~cseq ());
  expect d 200;
  send d (request ~meth:Sip_msg.BYE ~uri ~from ~to_ ~call_id ~cseq:(cseq + 1) ());
  expect d 200

let do_malformed d ~cseq =
  send d (Printf.sprintf "GARBAGE nonsense/%d\r\n\r\n" cseq);
  expect d 400

(* ------------------------------------------------------------------ *)
(* The eight test cases                                                 *)
(* ------------------------------------------------------------------ *)

type test_case = {
  tc_name : string;
  tc_description : string;
  tc_drivers : (string * (driver -> unit)) list;
}

(** T1: registration burst — twenty users register, a few OPTIONS pings
    in parallel. *)
let t1 =
  {
    tc_name = "T1";
    tc_description = "REGISTER burst (20 users) + OPTIONS pings";
    tc_drivers =
      [
        ( "uac1",
          fun d ->
            for i = 0 to 9 do
              ignore (do_register d ~user:(Printf.sprintf "alice%d" i) ~domain:"example.com" ~cseq:(i + 1) ())
            done;
            (* refresh half of them: each refresh deletes the previous binding *)
            for i = 0 to 4 do
              ignore (do_register d ~user:(Printf.sprintf "alice%d" i) ~domain:"example.com" ~cseq:(20 + i) ())
            done );
        ( "uac2",
          fun d ->
            for i = 0 to 9 do
              ignore (do_register d ~user:(Printf.sprintf "bob%d" i) ~domain:"voip.example.net" ~cseq:(i + 1) ())
            done;
            for i = 0 to 4 do
              ignore (do_register d ~user:(Printf.sprintf "bob%d" i) ~domain:"voip.example.net" ~cseq:(20 + i) ())
            done );
        ( "uac3",
          fun d ->
            for i = 0 to 4 do
              do_options d ~domain:"example.com" ~cseq:(i + 1)
            done );
      ];
  }

(** T2: basic calls — register two parties, then ten sequential
    INVITE/ACK/BYE cycles. *)
let t2 =
  {
    tc_name = "T2";
    tc_description = "basic INVITE/ACK/BYE calls";
    tc_drivers =
      [
        ( "uac1",
          fun d ->
            ignore (do_register d ~user:"alice" ~domain:"example.com" ~cseq:1 ());
            ignore (do_register d ~user:"bob" ~domain:"example.com" ~cseq:2 ());
            for i = 0 to 9 do
              do_call d ~caller:"alice" ~callee:"bob" ~domain:"example.com"
                ~call_id:(Printf.sprintf "call-t2-%d" i) ~cseq:(10 + (2 * i)) ()
            done );
      ];
  }

(** T3: OPTIONS keep-alives only — the lightest case. *)
let t3 =
  {
    tc_name = "T3";
    tc_description = "OPTIONS keep-alives only";
    tc_drivers =
      [
        ( "uac1",
          fun d ->
            for i = 0 to 7 do
              do_options d ~domain:"example.com" ~cseq:(i + 1)
            done );
        ( "uac2",
          fun d ->
            for i = 0 to 6 do
              do_options d ~domain:"pbx.local" ~cseq:(i + 1)
            done );
      ];
  }

(** T4: mixed registrations and calls from three agents. *)
let t4 =
  {
    tc_name = "T4";
    tc_description = "mixed REGISTER + calls, three agents";
    tc_drivers =
      [
        ( "uac1",
          fun d ->
            for i = 0 to 5 do
              ignore (do_register d ~user:(Printf.sprintf "user%d" i) ~domain:"example.com" ~cseq:(i + 1) ())
            done );
        ( "uac2",
          fun d ->
            ignore (do_register d ~user:"carol" ~domain:"example.com" ~cseq:1 ());
            for i = 0 to 5 do
              do_call d ~caller:"dave" ~callee:"carol" ~domain:"example.com"
                ~call_id:(Printf.sprintf "call-t4a-%d" i) ~cseq:(10 + (2 * i)) ~talk:6 ()
            done );
        ( "uac3",
          fun d ->
            ignore (do_register d ~user:"erin" ~domain:"voip.example.net" ~cseq:1 ());
            for i = 0 to 4 do
              do_call d ~caller:"frank" ~callee:"erin" ~domain:"voip.example.net"
                ~call_id:(Printf.sprintf "call-t4b-%d" i) ~cseq:(30 + (2 * i)) ~talk:4 ()
            done );
      ];
  }

(** T5: the heaviest case — concurrent calls with re-registrations and
    pings from four agents. *)
let t5 =
  {
    tc_name = "T5";
    tc_description = "concurrent calls + re-registrations, four agents";
    tc_drivers =
      [
        ( "uac1",
          fun d ->
            ignore (do_register d ~user:"alice" ~domain:"example.com" ~cseq:1 ());
            for i = 0 to 6 do
              do_call d ~caller:"x" ~callee:"alice" ~domain:"example.com"
                ~call_id:(Printf.sprintf "t5a-%d" i) ~cseq:(10 + (2 * i)) ~talk:8 ()
            done );
        ( "uac2",
          fun d ->
            ignore (do_register d ~user:"bob" ~domain:"example.com" ~cseq:1 ());
            for i = 0 to 6 do
              do_call d ~caller:"y" ~callee:"bob" ~domain:"example.com"
                ~call_id:(Printf.sprintf "t5b-%d" i) ~cseq:(50 + (2 * i)) ~talk:8 ()
            done );
        ( "uac3",
          fun d ->
            (* keep refreshing the same users: refresh = delete old binding *)
            for i = 0 to 9 do
              ignore (do_register d ~user:"alice" ~domain:"example.com" ~cseq:(100 + i) ());
              Api.sleep 5
            done );
        ( "uac4",
          fun d ->
            for i = 0 to 6 do
              do_options d ~domain:"example.com" ~cseq:(i + 1);
              Api.sleep 4
            done );
      ];
  }

(** T6: registrar churn — register/refresh/unregister cycles. *)
let t6 =
  {
    tc_name = "T6";
    tc_description = "registrar churn (register/refresh/unregister)";
    tc_drivers =
      [
        ( "uac1",
          fun d ->
            for i = 0 to 7 do
              let user = Printf.sprintf "churn%d" (i mod 4) in
              ignore (do_register d ~user ~domain:"example.com" ~cseq:(10 * (i + 1)) ());
              ignore (do_register d ~user ~domain:"example.com" ~cseq:((10 * (i + 1)) + 1) ());
              do_unregister d ~user ~domain:"example.com" ~cseq:((10 * (i + 1)) + 2)
            done );
        ( "uac2",
          fun d ->
            for i = 0 to 7 do
              let user = Printf.sprintf "churn%d" (4 + (i mod 4)) in
              ignore (do_register d ~user ~domain:"pbx.local" ~cseq:(10 * (i + 1)) ());
              do_unregister d ~user ~domain:"pbx.local" ~cseq:((10 * (i + 1)) + 1)
            done );
        ( "uac3",
          fun d ->
            ignore (do_register d ~user:"stable" ~domain:"example.com" ~cseq:1 ());
            for i = 0 to 4 do
              do_call d ~caller:"z" ~callee:"stable" ~domain:"example.com"
                ~call_id:(Printf.sprintf "t6-%d" i) ~cseq:(200 + (2 * i)) ~talk:5 ()
            done );
      ];
  }

(** T7: error flows — malformed datagrams, calls to unknown users,
    BYEs for unknown dialogs. *)
let t7 =
  {
    tc_name = "T7";
    tc_description = "error flows: malformed, 404s, stray BYEs";
    tc_drivers =
      [
        ( "uac1",
          fun d ->
            for i = 0 to 4 do
              do_malformed d ~cseq:i
            done;
            for i = 0 to 4 do
              do_failed_call d ~caller:"ghost" ~callee:(Printf.sprintf "nobody%d" i)
                ~domain:"example.com" ~call_id:(Printf.sprintf "t7-%d" i) ~cseq:(10 + i)
            done );
        ( "uac2",
          fun d ->
            (* BYE for calls that never existed: 481 *)
            for i = 0 to 4 do
              send d
                (request ~meth:Sip_msg.BYE ~uri:(aor "x" "example.com")
                   ~from:(aor "y" "example.com") ~to_:(aor "x" "example.com")
                   ~call_id:(Printf.sprintf "stray-%d" i) ~cseq:(i + 1) ());
              expect d 481
            done;
            ignore (do_register d ~user:"late" ~domain:"example.com" ~cseq:99 ()) );
      ];
  }

(** T8: CANCEL flows. *)
let t8 =
  {
    tc_name = "T8";
    tc_description = "INVITE/CANCEL teardown flows";
    tc_drivers =
      [
        ( "uac1",
          fun d ->
            ignore (do_register d ~user:"victim" ~domain:"example.com" ~cseq:1 ());
            for i = 0 to 5 do
              do_cancelled_call d ~caller:"w" ~callee:"victim" ~domain:"example.com"
                ~call_id:(Printf.sprintf "t8-%d" i) ~cseq:(10 + (2 * i))
            done );
        ( "uac2",
          fun d ->
            for i = 0 to 3 do
              do_options d ~domain:"example.com" ~cseq:(i + 1)
            done );
      ];
  }

let all_test_cases = [ t1; t2; t3; t4; t5; t6; t7; t8 ]

(* ------------------------------------------------------------------ *)
(* Running a test case against a server                                *)
(* ------------------------------------------------------------------ *)

type run_result = {
  r_failures : string list;  (** oracle violations across all drivers *)
  r_responses : int;
  r_requests_handled : int;
}

(** Body to execute as the VM main thread: start the server, run every
    driver of [tc] in its own thread, join them, stop and shut down the
    server.  Returns the oracle result. *)
let run_test_case ~transport ~(server_config : Proxy.config) tc () =
  let server = Proxy.start ~transport server_config in
  let drivers =
    List.map
      (fun (name, script) ->
        let d = make_driver ~transport name in
        let tid =
          Api.spawn ~loc:(lc "main" 300) ~name (fun () ->
              Api.with_frame (lc name 301) (fun () -> script d))
        in
        (d, tid))
      tc.tc_drivers
  in
  List.iter (fun (_, tid) -> Api.join ~loc:(lc "main" 306) tid) drivers;
  Proxy.post_stop server;
  Proxy.shutdown server;
  {
    r_failures = List.concat_map (fun (d, _) -> List.rev d.failures) drivers;
    r_responses = List.fold_left (fun acc (d, _) -> acc + d.responses) 0 drivers;
    r_requests_handled = Proxy.requests_handled server;
  }

(* ------------------------------------------------------------------ *)
(* Chaos workload: fault-tolerant UAC drivers                          *)
(* ------------------------------------------------------------------ *)

(** Under injected datagram faults a blocking [expect] would wedge on
    the first dropped response, so the chaos drivers speak a small
    RFC 3261 UAC core instead: every request is retransmitted with
    bounded backoff until a {e matching} final response (Call-ID +
    CSeq) arrives; 503s are honoured and retried; duplicate and stale
    responses are discarded.  Whether the {e server} is resilient is an
    independent toggle — that asymmetry is exactly what the chaos
    oracles measure. *)

type chaos_opts = {
  co_max_attempts : int;  (** per transaction, before declaring it unanswered *)
  co_attempt_timeout : int;  (** base wait (ticks) before retransmitting *)
  co_seed : int;  (** perturbs the per-transaction backoff jitter *)
}

let default_chaos_opts = { co_max_attempts = 8; co_attempt_timeout = 90; co_seed = 1 }

(** Does [wire] carry a final/provisional status for transaction
    (call_id, cseq)?  [None] = not ours (stale, duplicate, garbage). *)
let resp_matches ~call_id ~cseq wire =
  match Sip_msg.wire_status wire with
  | None -> None
  | Some s ->
      let cid_ok =
        match Sip_msg.wire_header wire "Call-ID" with Some c -> c = call_id | None -> false
      in
      let cseq_ok =
        match Sip_msg.wire_header wire "CSeq" with
        | Some v -> (
            match String.split_on_char ' ' (String.trim v) with
            | tok :: _ -> ( match int_of_string_opt tok with Some n -> n = cseq | None -> false)
            | [] -> false)
        | None -> false
      in
      if cid_ok && cseq_ok then Some s else None

(** Drive one transaction to a final response: send, wait with a
    deadline, retransmit on timeout with capped backoff, retry on 503.
    Returns the final status, or [None] after [co_max_attempts]. *)
let chaos_transact opts d ~wire ~call_id ~cseq =
  let bo = Backoff.default in
  let jitter_seed = opts.co_seed lxor Registrar.hash_string call_id in
  let saw_shed = ref false in
  let rec attempt n =
    if n >= opts.co_max_attempts then begin
      (* a transaction whose attempts all ended in 503 was deliberately
         shed, not lost — only silence counts as unanswered *)
      if not !saw_shed then d.unanswered <- d.unanswered + 1;
      None
    end
    else begin
      send d wire;
      let deadline =
        Api.now () + opts.co_attempt_timeout + Backoff.delay bo ~seed:jitter_seed ~attempt:n
      in
      let rec wait () =
        match Transport.recv_deadline d.transport d.endpoint ~deadline with
        | None -> attempt (n + 1) (* timed out: retransmit *)
        | Some (_src, buf, len) ->
            let rwire = Transport.read_buffer buf len in
            Api.free ~loc:(lc "chaos_transact" 470) buf;
            d.responses <- d.responses + 1;
            (match resp_matches ~call_id ~cseq rwire with
            | Some 503 ->
                (* deliberate shedding: back off and try again *)
                saw_shed := true;
                d.shed_seen <- d.shed_seen + 1;
                Api.sleep (20 + (10 * n));
                attempt (n + 1)
            | Some s when s >= 200 -> Some s
            | Some _ (* provisional *) | None (* not ours *) -> wait ())
      in
      wait ()
    end
  in
  attempt 0

let chaos_wrong d ~what ~call_id status =
  d.failures <-
    Printf.sprintf "%s: %s %s got unexpected final %d" d.d_name what call_id status
    :: d.failures

(** Register (or with [expires = 0] unregister) until acknowledged;
    records the acknowledged binding expectation for the post-run
    oracle.  Returns whether the 200 arrived. *)
let chaos_register opts d ~user ~domain ~cseq ?(expires = 100_000) () =
  let a = aor user domain in
  let call_id = Printf.sprintf "creg-%s-%d" user cseq in
  let wire =
    request ~meth:Sip_msg.REGISTER ~uri:("sip:" ^ domain) ~from:a ~to_:a ~call_id ~cseq
      ~contact:(Printf.sprintf "sip:%s@10.0.2.%d:5060" user (1 + (cseq mod 250)))
      ~expires ()
  in
  match chaos_transact opts d ~wire ~call_id ~cseq with
  | Some 200 ->
      (* the registrar keys bindings as user@domain, without the scheme *)
      d.chaos_regs <- (user ^ "@" ^ domain, expires > 0) :: d.chaos_regs;
      true
  | Some s ->
      chaos_wrong d ~what:"REGISTER" ~call_id s;
      false
  | None -> false

let chaos_unregister opts d ~user ~domain ~cseq =
  ignore (chaos_register opts d ~user ~domain ~cseq ~expires:0 ())

let chaos_options opts d ~domain ~cseq =
  let call_id = Printf.sprintf "copt-%s-%d" d.d_name cseq in
  let wire =
    request ~meth:Sip_msg.OPTIONS ~uri:("sip:" ^ domain) ~from:(aor "ping" domain)
      ~to_:(aor "server" domain) ~call_id ~cseq ()
  in
  match chaos_transact opts d ~wire ~call_id ~cseq with
  | Some 200 | None -> ()
  | Some s -> chaos_wrong d ~what:"OPTIONS" ~call_id s

(** One complete call under faults: INVITE until final, ACK, talk,
    BYE until final.  [accept_404] makes a 404 final acceptable — for
    scripts calling a callee whose registration another agent owns (the
    caller cannot know whether that REGISTER was shed). *)
let chaos_call opts d ~caller ~callee ~domain ~call_id ~cseq ?(talk = 6) ?(accept_404 = false)
    () =
  let from = aor caller domain and to_ = aor callee domain in
  let uri = to_ in
  let invite = request ~meth:Sip_msg.INVITE ~uri ~from ~to_ ~call_id ~cseq () in
  match chaos_transact opts d ~wire:invite ~call_id ~cseq with
  | Some 404 when accept_404 -> ()
  | Some 200 -> (
      send d (request ~meth:Sip_msg.ACK ~uri ~from ~to_ ~call_id ~cseq ());
      Api.sleep talk;
      let bye = request ~meth:Sip_msg.BYE ~uri ~from ~to_ ~call_id ~cseq:(cseq + 1) () in
      match chaos_transact opts d ~wire:bye ~call_id ~cseq:(cseq + 1) with
      (* 481 is acceptable: it can only reach us when another copy of
         this same BYE already tore the dialog down (its 200 was lost
         or overtaken), and RFC 3261 §15.1.2 has the UAC treat it as
         terminated either way *)
      | Some 200 | Some 481 | None -> ()
      | Some s -> chaos_wrong d ~what:"BYE" ~call_id s)
  | Some s -> chaos_wrong d ~what:"INVITE" ~call_id s
  | None -> ()

(** INVITE to an unregistered callee: 404 is the correct final. *)
let chaos_failed_call opts d ~caller ~callee ~domain ~call_id ~cseq =
  let from = aor caller domain and to_ = aor callee domain in
  let wire = request ~meth:Sip_msg.INVITE ~uri:to_ ~from ~to_ ~call_id ~cseq () in
  match chaos_transact opts d ~wire ~call_id ~cseq with
  | Some 404 | None -> ()
  | Some s -> chaos_wrong d ~what:"INVITE(404)" ~call_id s

(** INVITE, CANCEL (same CSeq, distinct transaction), BYE. *)
let chaos_cancelled_call opts d ~caller ~callee ~domain ~call_id ~cseq =
  let from = aor caller domain and to_ = aor callee domain in
  let uri = to_ in
  let invite = request ~meth:Sip_msg.INVITE ~uri ~from ~to_ ~call_id ~cseq () in
  match chaos_transact opts d ~wire:invite ~call_id ~cseq with
  | Some 200 -> (
      let cancel = request ~meth:Sip_msg.CANCEL ~uri ~from ~to_ ~call_id ~cseq () in
      (match chaos_transact opts d ~wire:cancel ~call_id ~cseq with
      | Some 200 | Some 481 | None -> ()
      | Some s -> chaos_wrong d ~what:"CANCEL" ~call_id s);
      let bye = request ~meth:Sip_msg.BYE ~uri ~from ~to_ ~call_id ~cseq:(cseq + 1) () in
      match chaos_transact opts d ~wire:bye ~call_id ~cseq:(cseq + 1) with
      | Some 200 | Some 481 | None -> ()
      | Some s -> chaos_wrong d ~what:"BYE" ~call_id s)
  | Some s -> chaos_wrong d ~what:"INVITE" ~call_id s
  | None -> ()

(** Garbage datagram: the server answers 400 without echoing Call-ID,
    so accept any 400 (or give up quietly — the 400 itself may be
    dropped by a fault). *)
let chaos_malformed opts d ~cseq =
  let rec attempt n =
    if n < opts.co_max_attempts then begin
      send d (Printf.sprintf "GARBAGE nonsense/%d\r\n\r\n" cseq);
      let deadline = Api.now () + opts.co_attempt_timeout in
      let rec wait () =
        match Transport.recv_deadline d.transport d.endpoint ~deadline with
        | None -> attempt (n + 1)
        | Some (_src, buf, len) ->
            let rwire = Transport.read_buffer buf len in
            Api.free ~loc:(lc "chaos_malformed" 530) buf;
            d.responses <- d.responses + 1;
            if Sip_msg.wire_status rwire = Some 400 then () else wait ()
      in
      wait ()
    end
  in
  attempt 0

(* --- the chaos matrix test cases (T1–T8 shapes, hardened drivers) --- *)

let chaos_test_cases opts =
  let reg = chaos_register opts
  and unreg = chaos_unregister opts
  and opt = chaos_options opts
  and call = chaos_call opts
  and failed = chaos_failed_call opts
  and cancelled = chaos_cancelled_call opts
  and malformed = chaos_malformed opts in
  [
    {
      tc_name = "T1";
      tc_description = "chaos: REGISTER burst + OPTIONS pings";
      tc_drivers =
        [
          ( "cuac1",
            fun d ->
              for i = 0 to 3 do
                ignore (reg d ~user:(Printf.sprintf "calice%d" i) ~domain:"example.com" ~cseq:(i + 1) ())
              done;
              ignore (reg d ~user:"calice0" ~domain:"example.com" ~cseq:20 ()) );
          ( "cuac2",
            fun d ->
              for i = 0 to 3 do
                ignore (reg d ~user:(Printf.sprintf "cbob%d" i) ~domain:"voip.example.net" ~cseq:(i + 1) ())
              done );
          ("cuac3", fun d -> for i = 0 to 2 do opt d ~domain:"example.com" ~cseq:(i + 1) done);
        ];
    };
    {
      tc_name = "T2";
      tc_description = "chaos: basic INVITE/ACK/BYE calls";
      tc_drivers =
        [
          ( "cuac1",
            fun d ->
              ignore (reg d ~user:"cal" ~domain:"example.com" ~cseq:1 ());
              if reg d ~user:"cbo" ~domain:"example.com" ~cseq:2 () then
                for i = 0 to 2 do
                  call d ~caller:"cal" ~callee:"cbo" ~domain:"example.com"
                    ~call_id:(Printf.sprintf "ccall-t2-%d" i) ~cseq:(10 + (2 * i)) ()
                done );
        ];
    };
    {
      tc_name = "T3";
      tc_description = "chaos: OPTIONS keep-alives only";
      tc_drivers =
        [
          ("cuac1", fun d -> for i = 0 to 3 do opt d ~domain:"example.com" ~cseq:(i + 1) done);
          ("cuac2", fun d -> for i = 0 to 2 do opt d ~domain:"pbx.local" ~cseq:(i + 1) done);
        ];
    };
    {
      tc_name = "T4";
      tc_description = "chaos: mixed REGISTER + calls, three agents";
      tc_drivers =
        [
          ( "cuac1",
            fun d ->
              for i = 0 to 2 do
                ignore (reg d ~user:(Printf.sprintf "cuser%d" i) ~domain:"example.com" ~cseq:(i + 1) ())
              done );
          ( "cuac2",
            fun d ->
              if reg d ~user:"ccarol" ~domain:"example.com" ~cseq:1 () then
                for i = 0 to 1 do
                  call d ~caller:"cdave" ~callee:"ccarol" ~domain:"example.com"
                    ~call_id:(Printf.sprintf "ccall-t4a-%d" i) ~cseq:(10 + (2 * i)) ~talk:4 ()
                done );
          ( "cuac3",
            fun d ->
              if reg d ~user:"cerin" ~domain:"voip.example.net" ~cseq:1 () then
                for i = 0 to 1 do
                  call d ~caller:"cfrank" ~callee:"cerin" ~domain:"voip.example.net"
                    ~call_id:(Printf.sprintf "ccall-t4b-%d" i) ~cseq:(30 + (2 * i)) ~talk:3 ()
                done );
        ];
    };
    {
      tc_name = "T5";
      tc_description = "chaos: concurrent calls + re-registrations";
      tc_drivers =
        [
          ( "cuac1",
            fun d ->
              if reg d ~user:"cvic1" ~domain:"example.com" ~cseq:1 () then
                for i = 0 to 2 do
                  call d ~caller:"cx" ~callee:"cvic1" ~domain:"example.com"
                    ~call_id:(Printf.sprintf "ct5a-%d" i) ~cseq:(10 + (2 * i)) ~talk:5 ()
                done );
          ( "cuac2",
            fun d ->
              if reg d ~user:"cvic2" ~domain:"example.com" ~cseq:1 () then
                for i = 0 to 2 do
                  call d ~caller:"cy" ~callee:"cvic2" ~domain:"example.com"
                    ~call_id:(Printf.sprintf "ct5b-%d" i) ~cseq:(50 + (2 * i)) ~talk:5 ()
                done );
          ( "cuac3",
            fun d ->
              for i = 0 to 3 do
                ignore (reg d ~user:"cvic1" ~domain:"example.com" ~cseq:(100 + i) ());
                Api.sleep 5
              done );
          ( "cuac4",
            fun d ->
              for i = 0 to 2 do
                opt d ~domain:"example.com" ~cseq:(i + 1);
                Api.sleep 4
              done );
        ];
    };
    {
      tc_name = "T6";
      tc_description = "chaos: registrar churn";
      tc_drivers =
        [
          ( "cuac1",
            fun d ->
              for i = 0 to 2 do
                let user = Printf.sprintf "cchurn%d" (i mod 2) in
                ignore (reg d ~user ~domain:"example.com" ~cseq:(10 * (i + 1)) ());
                unreg d ~user ~domain:"example.com" ~cseq:((10 * (i + 1)) + 1)
              done );
          ( "cuac2",
            fun d ->
              if reg d ~user:"cstable" ~domain:"example.com" ~cseq:1 () then
                for i = 0 to 1 do
                  call d ~caller:"cz" ~callee:"cstable" ~domain:"example.com"
                    ~call_id:(Printf.sprintf "ct6-%d" i) ~cseq:(200 + (2 * i)) ~talk:4 ()
                done );
        ];
    };
    {
      tc_name = "T7";
      tc_description = "chaos: error flows (malformed, 404s)";
      tc_drivers =
        [
          ( "cuac1",
            fun d ->
              for i = 0 to 1 do
                malformed d ~cseq:i
              done;
              for i = 0 to 1 do
                failed d ~caller:"cghost" ~callee:(Printf.sprintf "cnobody%d" i)
                  ~domain:"example.com" ~call_id:(Printf.sprintf "ct7-%d" i) ~cseq:(10 + i)
              done );
          ( "cuac2",
            fun d -> ignore (reg d ~user:"clate" ~domain:"example.com" ~cseq:99 ()) );
        ];
    };
    {
      tc_name = "T8";
      tc_description = "chaos: INVITE/CANCEL teardown flows";
      tc_drivers =
        [
          ( "cuac1",
            fun d ->
              if reg d ~user:"cvictim" ~domain:"example.com" ~cseq:1 () then
                for i = 0 to 1 do
                  cancelled d ~caller:"cw" ~callee:"cvictim" ~domain:"example.com"
                    ~call_id:(Printf.sprintf "ct8-%d" i) ~cseq:(10 + (2 * i))
                done );
          ("cuac2", fun d -> for i = 0 to 1 do opt d ~domain:"example.com" ~cseq:(i + 1) done);
        ];
    };
  ]

type chaos_run_result = {
  cr_base : run_result;
  cr_acked_regs : (string * bool) list;
      (** chronological (aor, should-be-bound) across all drivers *)
  cr_shed_seen : int;  (** 503s received by drivers *)
  cr_unanswered : int;  (** transactions with no final after all retries *)
  cr_bound : string list;  (** server-side bound AORs after shutdown *)
  cr_sheds : int;  (** server-side deliberate 503 count *)
  cr_cache_hits : int;  (** retransmissions absorbed by the cache *)
  cr_retransmits : int;  (** timer-driven 200 retransmissions *)
  cr_shard_audit : string list;
      (** {!Registrar.audit} violations after shutdown (empty when the
          registrar kept its invariants — always, when unsharded) *)
  cr_shard_count : int;  (** final shard count (1 when unsharded) *)
  cr_resizes : int;  (** online shard-doublings performed *)
  cr_migrations : int;  (** bindings moved shard-to-shard *)
}

(** Chaos variant of {!run_test_case}: same lifecycle, hardened drivers,
    richer post-run evidence for the invariant oracles. *)
let run_chaos_test_case ~transport ~(server_config : Proxy.config) tc () =
  let server = Proxy.start ~transport server_config in
  let drivers =
    List.map
      (fun (name, script) ->
        let d = make_driver ~transport name in
        let tid =
          Api.spawn ~loc:(lc "chaos_main" 700) ~name (fun () ->
              Api.with_frame (lc name 701) (fun () -> script d))
        in
        (d, tid))
      tc.tc_drivers
  in
  List.iter (fun (_, tid) -> Api.join ~loc:(lc "chaos_main" 706) tid) drivers;
  Proxy.post_stop server;
  Proxy.shutdown server;
  {
    cr_base =
      {
        r_failures = List.concat_map (fun (d, _) -> List.rev d.failures) drivers;
        r_responses = List.fold_left (fun acc (d, _) -> acc + d.responses) 0 drivers;
        r_requests_handled = Proxy.requests_handled server;
      };
    cr_acked_regs = List.concat_map (fun (d, _) -> List.rev d.chaos_regs) drivers;
    cr_shed_seen = List.fold_left (fun acc (d, _) -> acc + d.shed_seen) 0 drivers;
    cr_unanswered = List.fold_left (fun acc (d, _) -> acc + d.unanswered) 0 drivers;
    cr_bound = Proxy.bound_aors server;
    cr_sheds = Proxy.sheds server;
    cr_cache_hits = Proxy.cache_hits server;
    cr_retransmits = Proxy.retransmits server;
    cr_shard_audit = Proxy.registrar_audit server;
    cr_shard_count = Proxy.registrar_shard_count server;
    cr_resizes = Proxy.registrar_resizes server;
    cr_migrations = Proxy.registrar_migrations server;
  }

(* ------------------------------------------------------------------ *)
(* The scenario DSL (raceguard-scenario/1)                             *)
(* ------------------------------------------------------------------ *)

(** Data-driven call-flow scenarios: T9+ workloads are JSON documents
    compiled onto the hardened chaos drivers, so new storm shapes are
    data, not code.  Steps run sequentially per agent; every agent is
    one driver thread.  String fields substitute [%i] (innermost
    repeat index) and [%a] (agent name); CSeq numbers are assigned
    automatically per agent from disjoint ranges. *)
module Scenario = struct
  type step =
    | Register of { user : string; domain : string; expires : int }
    | Unregister of { user : string; domain : string }
    | Options of { domain : string }
    | Call of { caller : string; callee : string; domain : string; talk : int }
    | Sleep of int
    | Repeat of { count : int; body : step list }

  type agent = { ag_name : string; ag_steps : step list }

  type shard_spec = { sp_initial : int; sp_grow_at : int; sp_max_shards : int }

  type t = {
    sc_name : string;
    sc_description : string;
    sc_sharding : shard_spec option;
        (** when set, the scenario runs against a sharded registrar
            ([Resilient] with the chaos resilience toggle on,
            [Legacy_striped] with it off) *)
    sc_agents : agent list;
  }

  let schema = "raceguard-scenario/1"

  let sharding ~resilient t =
    match t.sc_sharding with
    | None -> Registrar.Unsharded
    | Some sp ->
        Registrar.Sharded
          {
            flavor = (if resilient then Registrar.Resilient else Registrar.Legacy_striped);
            initial = sp.sp_initial;
            grow_at = sp.sp_grow_at;
            max_shards = sp.sp_max_shards;
          }

  (* [%i] -> repeat index, [%a] -> agent name (host-side, cheap) *)
  let subst ~agent ~index s =
    if not (String.contains s '%') then s
    else
      let buf = Buffer.create (String.length s + 8) in
      let n = String.length s in
      let rec go i =
        if i < n then
          if s.[i] = '%' && i + 1 < n then (
            (match s.[i + 1] with
            | 'i' -> Buffer.add_string buf (string_of_int index)
            | 'a' -> Buffer.add_string buf agent
            | c ->
                Buffer.add_char buf '%';
                Buffer.add_char buf c);
            go (i + 2))
          else (
            Buffer.add_char buf s.[i];
            go (i + 1))
      in
      go 0;
      Buffer.contents buf

  let compile_agent opts sc ~agent_index ag d =
    let cseq = ref (1000 * (agent_index + 1)) in
    let next () =
      incr cseq;
      !cseq
    in
    (* registrations this agent attempted / saw acknowledged, keyed by
       AOR — the T2/T4 idiom generalised: a call to a callee whose
       registration this agent owns is skipped when that registration
       was shed away; a call to anyone else tolerates a 404 final *)
    let attempted = Hashtbl.create 8 and confirmed = Hashtbl.create 8 in
    let rec exec ~index step =
      let sub s = subst ~agent:ag.ag_name ~index s in
      match step with
      | Register { user; domain; expires } ->
          let user = sub user in
          let a = user ^ "@" ^ domain in
          Hashtbl.replace attempted a ();
          if chaos_register opts d ~user ~domain ~cseq:(next ()) ~expires () then
            Hashtbl.replace confirmed a ()
      | Unregister { user; domain } ->
          let user = sub user in
          Hashtbl.remove confirmed (user ^ "@" ^ domain);
          chaos_unregister opts d ~user ~domain ~cseq:(next ())
      | Options { domain } -> chaos_options opts d ~domain ~cseq:(next ())
      | Call { caller; callee; domain; talk } ->
          let callee = sub callee in
          let c = next () in
          ignore (next ());
          (* the BYE consumes c+1 *)
          let a = callee ^ "@" ^ domain in
          let own = Hashtbl.mem attempted a in
          if own && not (Hashtbl.mem confirmed a) then ()
            (* this agent's own registration of the callee was shed:
               skipping mirrors T2's [if reg ... then call ...] *)
          else
            chaos_call opts d ~caller:(sub caller) ~callee ~domain
              ~call_id:(Printf.sprintf "sc-%s-%s-%d" sc.sc_name ag.ag_name c)
              ~cseq:c ~talk ~accept_404:(not own) ()
      | Sleep ticks -> Api.sleep ticks
      | Repeat { count; body } ->
          for i = 0 to count - 1 do
            List.iter (exec ~index:i) body
          done
    in
    List.iter (exec ~index:0) ag.ag_steps

  let to_test_case opts sc =
    {
      tc_name = sc.sc_name;
      tc_description = sc.sc_description;
      tc_drivers =
        List.mapi
          (fun i ag -> (ag.ag_name, compile_agent opts sc ~agent_index:i ag))
          sc.sc_agents;
    }

  (* --- JSON ------------------------------------------------------- *)

  module Json = Raceguard_obs.Json

  let rec step_to_json = function
    | Register { user; domain; expires } ->
        Json.Obj
          [
            ("op", Json.Str "register");
            ("user", Json.Str user);
            ("domain", Json.Str domain);
            ("expires", Json.int expires);
          ]
    | Unregister { user; domain } ->
        Json.Obj
          [ ("op", Json.Str "unregister"); ("user", Json.Str user); ("domain", Json.Str domain) ]
    | Options { domain } -> Json.Obj [ ("op", Json.Str "options"); ("domain", Json.Str domain) ]
    | Call { caller; callee; domain; talk } ->
        Json.Obj
          [
            ("op", Json.Str "call");
            ("caller", Json.Str caller);
            ("callee", Json.Str callee);
            ("domain", Json.Str domain);
            ("talk", Json.int talk);
          ]
    | Sleep ticks -> Json.Obj [ ("op", Json.Str "sleep"); ("ticks", Json.int ticks) ]
    | Repeat { count; body } ->
        Json.Obj
          [
            ("op", Json.Str "repeat");
            ("count", Json.int count);
            ("steps", Json.List (List.map step_to_json body));
          ]

  let to_json sc =
    Json.Obj
      [
        ("schema", Json.Str schema);
        ("name", Json.Str sc.sc_name);
        ("description", Json.Str sc.sc_description);
        ( "sharding",
          match sc.sc_sharding with
          | None -> Json.Null
          | Some sp ->
              Json.Obj
                [
                  ("initial", Json.int sp.sp_initial);
                  ("grow_at", Json.int sp.sp_grow_at);
                  ("max_shards", Json.int sp.sp_max_shards);
                ] );
        ( "agents",
          Json.List
            (List.map
               (fun ag ->
                 Json.Obj
                   [
                     ("name", Json.Str ag.ag_name);
                     ("steps", Json.List (List.map step_to_json ag.ag_steps));
                   ])
               sc.sc_agents) );
      ]

  let ( let* ) = Result.bind

  let str_field name j =
    match Json.member name j with
    | Some (Json.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "missing string field %S" name)

  let int_field ?default name j =
    match (Json.member name j, default) with
    | Some (Json.Num f), _ -> Ok (int_of_float f)
    | (None | Some Json.Null), Some d -> Ok d
    | _ -> Error (Printf.sprintf "missing int field %S" name)

  let rec step_of_json j =
    let* op = str_field "op" j in
    match op with
    | "register" ->
        let* user = str_field "user" j in
        let* domain = str_field "domain" j in
        let* expires = int_field ~default:100_000 "expires" j in
        Ok (Register { user; domain; expires })
    | "unregister" ->
        let* user = str_field "user" j in
        let* domain = str_field "domain" j in
        Ok (Unregister { user; domain })
    | "options" ->
        let* domain = str_field "domain" j in
        Ok (Options { domain })
    | "call" ->
        let* caller = str_field "caller" j in
        let* callee = str_field "callee" j in
        let* domain = str_field "domain" j in
        let* talk = int_field ~default:6 "talk" j in
        Ok (Call { caller; callee; domain; talk })
    | "sleep" ->
        let* ticks = int_field "ticks" j in
        Ok (Sleep ticks)
    | "repeat" ->
        let* count = int_field "count" j in
        let* body = steps_of_json j in
        Ok (Repeat { count; body })
    | op -> Error (Printf.sprintf "unknown op %S" op)

  and steps_of_json j =
    match Json.member "steps" j with
    | Some (Json.List l) ->
        List.fold_left
          (fun acc s ->
            let* acc = acc in
            let* s = step_of_json s in
            Ok (s :: acc))
          (Ok []) l
        |> Result.map List.rev
    | _ -> Error "missing \"steps\" list"

  let of_json j =
    let* s = str_field "schema" j in
    if s <> schema then Error (Printf.sprintf "unsupported schema %S (want %S)" s schema)
    else
      let* name = str_field "name" j in
      let* description = str_field "description" j in
      let* sharding =
        match Json.member "sharding" j with
        | None | Some Json.Null -> Ok None
        | Some sp ->
            let* initial = int_field "initial" sp in
            let* grow_at = int_field ~default:0 "grow_at" sp in
            let* max_shards = int_field ~default:initial "max_shards" sp in
            Ok (Some { sp_initial = initial; sp_grow_at = grow_at; sp_max_shards = max_shards })
      in
      let* agents =
        match Json.member "agents" j with
        | Some (Json.List l) ->
            List.fold_left
              (fun acc a ->
                let* acc = acc in
                let* name = str_field "name" a in
                let* steps = steps_of_json a in
                Ok ({ ag_name = name; ag_steps = steps } :: acc))
              (Ok []) l
            |> Result.map List.rev
        | _ -> Error "missing \"agents\" list"
      in
      if agents = [] then Error "scenario has no agents"
      else Ok { sc_name = name; sc_description = description; sc_sharding = sharding; sc_agents = agents }

  let of_string s =
    match Json.parse s with Error e -> Error ("parse error: " ^ e) | Ok j -> of_json j
end
