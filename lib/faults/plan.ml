module Json = Raceguard_obs.Json

type datagram = {
  drop : int;
  duplicate : int;
  delay : int;
  delay_ticks : int * int;
  reorder : int;
  corrupt : int;
}

type t = {
  p_name : string;
  p_datagram : datagram;
  p_alloc_failure : int;
  p_alloc_failure_after : int;
  p_spawn_delay : int;
  p_spawn_delay_ticks : int * int;
  p_lock_delay : int;
  p_lock_delay_ticks : int * int;
}

let no_datagram =
  {
    drop = 0;
    duplicate = 0;
    delay = 0;
    delay_ticks = (0, 0);
    reorder = 0;
    corrupt = 0;
  }

let none =
  {
    p_name = "none";
    p_datagram = no_datagram;
    p_alloc_failure = 0;
    p_alloc_failure_after = 0;
    p_spawn_delay = 0;
    p_spawn_delay_ticks = (0, 0);
    p_lock_delay = 0;
    p_lock_delay_ticks = (0, 0);
  }

let is_none t = { t with p_name = "none" } = none

(* Shipped plans.  Rates are chosen so every plan visibly perturbs a
   reduced T-workload (tens of requests) without making the
   fault-free completion of a resilient run improbable: datagram
   faults sit in the 8–20% band, structural faults lower. *)

let drop = { none with p_name = "drop"; p_datagram = { no_datagram with drop = 150 } }

let dup =
  { none with p_name = "dup"; p_datagram = { no_datagram with duplicate = 200 } }

let delay =
  {
    none with
    p_name = "delay";
    p_datagram = { no_datagram with delay = 200; delay_ticks = (30, 120) };
  }

let reorder =
  {
    none with
    p_name = "reorder";
    p_datagram = { no_datagram with reorder = 250; delay_ticks = (5, 25) };
  }

let corrupt =
  { none with p_name = "corrupt"; p_datagram = { no_datagram with corrupt = 120 } }

let oom =
  (* container allocations are rare (a few dozen per run: map nodes and
     vector growth), so the rate is high and the grace window short *)
  { none with p_name = "oom"; p_alloc_failure = 300; p_alloc_failure_after = 4 }

let slow_threads =
  {
    none with
    p_name = "slow-threads";
    p_spawn_delay = 300;
    p_spawn_delay_ticks = (20, 90);
    p_lock_delay = 60;
    p_lock_delay_ticks = (5, 30);
  }

let mayhem =
  {
    p_name = "mayhem";
    p_datagram =
      {
        drop = 60;
        duplicate = 80;
        delay = 80;
        delay_ticks = (10, 60);
        reorder = 80;
        corrupt = 40;
      };
    p_alloc_failure = 60;
    p_alloc_failure_after = 30;
    p_spawn_delay = 120;
    p_spawn_delay_ticks = (10, 40);
    p_lock_delay = 40;
    p_lock_delay_ticks = (5, 20);
  }

let shipped = [ drop; dup; delay; reorder; corrupt; oom; slow_threads; mayhem ]

(* Shard-targeted plans for the T9/T10 storm scenarios: they stretch
   the windows the striped registrar's bug classes need (lock holds
   during migration, racing refreshes, duplicated storms) without ever
   making a request vanish — none is drop-class, so the strict
   registrations oracle applies to every scenario cell. *)

let shard_delay =
  {
    none with
    p_name = "shard-delay";
    p_lock_delay = 100;
    p_lock_delay_ticks = (3, 12);
  }

let shard_storm =
  {
    none with
    p_name = "shard-storm";
    p_datagram = { no_datagram with duplicate = 250; delay = 200; delay_ticks = (15, 70) };
  }

let shard_quake =
  {
    none with
    p_name = "shard-quake";
    p_datagram = { no_datagram with delay = 120; delay_ticks = (10, 50) };
    p_spawn_delay = 300;
    p_spawn_delay_ticks = (20, 80);
    p_lock_delay = 80;
    p_lock_delay_ticks = (5, 15);
  }

let shard_shipped = [ shard_delay; shard_storm; shard_quake ]

let lookup name =
  if name = "none" then Some none
  else List.find_opt (fun p -> p.p_name = name) (shipped @ shard_shipped)

let has_drops t =
  t.p_datagram.drop > 0 || t.p_datagram.corrupt > 0 || t.p_alloc_failure > 0

let range_json (lo, hi) = Json.List [ Json.int lo; Json.int hi ]

let to_json t =
  let d = t.p_datagram in
  Json.Obj
    [
      ("name", Json.Str t.p_name);
      ( "datagram",
        Json.Obj
          [
            ("drop", Json.int d.drop);
            ("duplicate", Json.int d.duplicate);
            ("delay", Json.int d.delay);
            ("delay_ticks", range_json d.delay_ticks);
            ("reorder", Json.int d.reorder);
            ("corrupt", Json.int d.corrupt);
          ] );
      ("alloc_failure", Json.int t.p_alloc_failure);
      ("alloc_failure_after", Json.int t.p_alloc_failure_after);
      ("spawn_delay", Json.int t.p_spawn_delay);
      ("spawn_delay_ticks", range_json t.p_spawn_delay_ticks);
      ("lock_delay", Json.int t.p_lock_delay);
      ("lock_delay_ticks", range_json t.p_lock_delay_ticks);
    ]

let pp fmt t = Fmt.pf fmt "%s" (Json.to_string (to_json t))
