(** The VM instruction set, exposed as an OCaml effect.

    A simulated thread is an ordinary OCaml closure that [perform]s
    {!Do} effects; the scheduler in {!Engine} interprets them.  This
    mirrors Valgrind's architecture: the "binary" runs on a virtual
    machine that observes every memory access and every call into the
    threading library, serialising all threads onto a single carrier
    thread ({i "the virtual machine in itself is single-threaded"},
    §3.3 of the paper). *)

module Loc = Raceguard_util.Loc

(** Acquisition mode for read-write locks.  A plain mutex always counts
    as [Write_mode]. *)
type mode = Read_mode | Write_mode

let pp_mode ppf = function
  | Read_mode -> Fmt.string ppf "read"
  | Write_mode -> Fmt.string ppf "write"

(** Client requests: user-space calls that are no-ops under normal
    execution but are recognised by the VM and forwarded to tools —
    the analogue of Valgrind's [VALGRIND_HG_*] macros (Figure 4). *)
type client_request =
  | Destruct of { addr : int; len : int }
      (** [VALGRIND_HG_DESTRUCT]: the object at [addr..addr+len-1] is
          about to be destroyed by the calling thread; mark it
          exclusively owned. *)
  | Benign_race of { addr : int; len : int }
      (** Mark a range as intentionally racy (suppress reports). *)
  | Happens_before of { tag : int }
      (** [ANNOTATE_HAPPENS_BEFORE]: everything this thread did so far
          is ordered before whoever observes [tag] with
          {!Happens_after}.  The §5 "higher level synchronisation"
          extension: message queues annotate their put/get with the
          payload as tag, making ownership transfer through queues
          visible to the thread-segment graph. *)
  | Happens_after of { tag : int }  (** [ANNOTATE_HAPPENS_AFTER] *)

type 'a op =
  | Read : { addr : int; loc : Loc.t } -> int op
  | Write : { addr : int; value : int; loc : Loc.t } -> unit op
  | Atomic_rmw : { addr : int; f : int -> int; loc : Loc.t } -> int op
      (** Bus-locked read-modify-write ([LOCK]-prefixed instruction);
          returns the {e old} value. *)
  | Alloc : { len : int; loc : Loc.t } -> int op
  | Free : { addr : int; loc : Loc.t } -> unit op
  | Spawn : { name : string; body : unit -> unit; loc : Loc.t } -> int op
  | Join : { tid : int; loc : Loc.t } -> unit op
  | Mutex_create : { name : string; loc : Loc.t } -> int op
  | Mutex_lock : { m : int; loc : Loc.t } -> unit op
  | Mutex_trylock : { m : int; loc : Loc.t } -> bool op
  | Mutex_unlock : { m : int; loc : Loc.t } -> unit op
  | Rwlock_create : { name : string; loc : Loc.t } -> int op
  | Rwlock_lock : { rw : int; mode : mode; loc : Loc.t } -> unit op
  | Rwlock_unlock : { rw : int; loc : Loc.t } -> unit op
  | Cond_create : { name : string; loc : Loc.t } -> int op
  | Cond_wait : { cv : int; m : int; loc : Loc.t } -> unit op
  | Cond_signal : { cv : int; loc : Loc.t } -> unit op
  | Cond_broadcast : { cv : int; loc : Loc.t } -> unit op
  | Sem_create : { name : string; init : int; loc : Loc.t } -> int op
  | Sem_wait : { s : int; loc : Loc.t } -> unit op
  | Sem_post : { s : int; loc : Loc.t } -> unit op
  | Client : client_request -> unit op
  | Yield : unit op
  | Sleep : int -> unit op  (** block for [n] virtual clock ticks *)
  | Now : int op  (** current virtual clock *)
  | Self : int op  (** calling thread's id *)
  | Push_frame : Loc.t -> unit op
  | Pop_frame : unit op
  | Random_int : int -> int op
      (** deterministic per-run randomness drawn from the VM seed *)

type _ Effect.t += Do : 'a op -> 'a Effect.t

let perform op = Effect.perform (Do op)
