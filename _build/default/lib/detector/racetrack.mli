(** RaceTrack-style adaptive detection — the paper's citation [16]
    (Yu, Rodeheffer & Chen, SOSP 2005).

    Per location, a happens-before-pruned {e threadset} decides whether
    the location is effectively exclusive (candidate lock-set stays at
    ⊤) or genuinely concurrent (lock-set refinement and checking run).
    Ownership transfer through any synchronisation — including the
    queue handoffs of §4.2.3 — re-privatises the location without
    annotations, at the price of the happens-before family's schedule
    dependence. *)

type config = {
  hb : Hb_clocks.config;
  bus_model : Helgrind.bus_model;  (** same semantics as in {!Helgrind} *)
  report_reads : bool;
}

val default_config : config
(** Corrected (rw-lock) bus model, all HB edge sources on. *)

type t

val create : ?config:config -> ?suppressions:Suppression.t list -> unit -> t
val tool : t -> Raceguard_vm.Tool.t
val on_event : t -> Raceguard_vm.Tool.ctx -> Raceguard_vm.Event.t -> unit

val reports : t -> Report.t list
val locations : t -> (Report.t * int) list
val location_count : t -> int
val collector : t -> Report.collector
