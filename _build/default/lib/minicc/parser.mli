(** Recursive-descent parser for MiniC++ (precedence climbing for
    expressions).  The real pipeline needed a GLR parser (ELSA) because
    of full ISO C++; MiniC++ is deliberately LL(1)-ish. *)

exception Error of string * Token.pos

val parse_program : file:string -> Token.t list -> Ast.program
(** Parse a token stream (ending in EOF). *)

val parse_string : file:string -> string -> Ast.program
(** Lex + parse (no preprocessing; see {!Preprocess.parse}). *)
