(** A bounded message queue built from a mutex and two condition
    variables, as {e application-level library code}.

    This is deliberately implemented on top of the low-level primitives
    rather than inside the VM: the paper's §4.2.3 observes that
    higher-level synchronisation (message put/get in thread-pool
    patterns) is invisible to the lock-set algorithm, which therefore
    reports false positives on data handed over through a queue.  For
    that effect to reproduce, the detector must see exactly what
    Helgrind saw — mutex acquire/release and condition signal/wait —
    and nothing more.

    The ring buffer storage lives in VM memory, so the detector also
    checks the queue's own internals (which are properly locked and
    must never be reported). *)

module Loc = Raceguard_util.Loc

let lc line = Loc.v "msg_queue.cpp" "MsgQueue" line

type t = {
  mutex : Api.Mutex.t;
  nonempty : Api.Cond.t;
  nonfull : Api.Cond.t;
  buf : int;  (** base address of the ring storage *)
  capacity : int;
  head : int;  (** address of head index *)
  tail : int;  (** address of tail index *)
  count : int;  (** address of element count *)
  annotated : bool;
      (** emit HAPPENS_BEFORE/AFTER client requests around put/get —
          the instrumented build of the §5 extension.  No-ops unless a
          detector honours them. *)
}

let create ?(annotated = false) ~name ~capacity () =
  if capacity <= 0 then invalid_arg "Msg_queue.create: capacity must be positive";
  let buf = Api.alloc ~loc:(lc 20) (capacity + 3) in
  {
    mutex = Api.Mutex.create ~loc:(lc 21) (name ^ ".mutex");
    nonempty = Api.Cond.create ~loc:(lc 22) (name ^ ".nonempty");
    nonfull = Api.Cond.create ~loc:(lc 23) (name ^ ".nonfull");
    buf;
    capacity;
    head = buf + capacity;
    tail = buf + capacity + 1;
    count = buf + capacity + 2;
    annotated;
  }

(** Enqueue a value (usually the address of a message struct).  Blocks
    while the queue is full. *)
let put t v =
  if t.annotated then Api.annotate_happens_before ~tag:v;
  Api.Mutex.lock ~loc:(lc 30) t.mutex;
  while Api.read ~loc:(lc 31) t.count = t.capacity do
    Api.Cond.wait ~loc:(lc 32) t.nonfull t.mutex
  done;
  let tail = Api.read ~loc:(lc 34) t.tail in
  Api.write ~loc:(lc 35) (t.buf + tail) v;
  Api.write ~loc:(lc 36) t.tail ((tail + 1) mod t.capacity);
  Api.write ~loc:(lc 37) t.count (Api.read ~loc:(lc 37) t.count + 1);
  Api.Cond.signal ~loc:(lc 38) t.nonempty;
  Api.Mutex.unlock ~loc:(lc 39) t.mutex

(** Dequeue a value; blocks while the queue is empty. *)
let get t =
  Api.Mutex.lock ~loc:(lc 44) t.mutex;
  while Api.read ~loc:(lc 45) t.count = 0 do
    Api.Cond.wait ~loc:(lc 46) t.nonempty t.mutex
  done;
  let head = Api.read ~loc:(lc 48) t.head in
  let v = Api.read ~loc:(lc 49) (t.buf + head) in
  Api.write ~loc:(lc 50) t.head ((head + 1) mod t.capacity);
  Api.write ~loc:(lc 51) t.count (Api.read ~loc:(lc 51) t.count - 1);
  Api.Cond.signal ~loc:(lc 52) t.nonfull;
  Api.Mutex.unlock ~loc:(lc 53) t.mutex;
  if t.annotated then Api.annotate_happens_after ~tag:v;
  v

let length t =
  Api.Mutex.lock ~loc:(lc 57) t.mutex;
  let n = Api.read ~loc:(lc 58) t.count in
  Api.Mutex.unlock ~loc:(lc 59) t.mutex;
  n
