(** Cross-check static lint findings against dynamic detector reports
    by (kind, top-4 stack) signature — the same signature the
    {!Raceguard_detector.Report} collector deduplicates by. *)

module Loc = Raceguard_util.Loc
module Report = Raceguard_detector.Report
module Static = Raceguard_minicc.Static_race

type verdict =
  | Confirmed  (** same signature found statically and dynamically *)
  | Static_only  (** unexecuted path, or a static over-approximation *)
  | Dynamic_only
      (** lockset-flagged sharing the static pass proves fork-join
          ordered, or code lost to static havoc *)

type entry = { e_verdict : verdict; e_kind : Report.kind; e_stack : Loc.t list }

type t = {
  entries : entry list;  (** confirmed, then static-only, then dynamic-only *)
  n_confirmed : int;
  n_static_only : int;
  n_dynamic_only : int;
}

val cross_check : static:Static.result -> dynamic:Report.t list -> t

val cross_check_seeds :
  ?domains:int -> static:Static.result -> run:(int -> Report.t list) -> int list -> t
(** [cross_check_seeds ~domains ~static ~run seeds] replays the
    program once per seed ([run seed] must return that schedule's
    dynamic reports, a pure function of the seed) — each replay a cell
    on the work-stealing pool — and cross-checks against the union of
    the dynamic signatures.  Seeds are de-duplicated and sorted;
    verdicts are identical for any [domains] (1 = sequential,
    0 = auto). *)

val sig_of : Report.kind -> Loc.t list -> Report.kind * Loc.t list
(** Truncate a stack to the collector's {!Report.signature_depth} —
    the equivalence the whole static/dynamic matching runs on. *)

val confirmed_sigs : t -> (Report.kind * Loc.t list) list
(** Signatures of the [Confirmed] entries, the repair engine's
    work-list. *)

val verdict_to_string : verdict -> string
val pp : Format.formatter -> t -> unit
val to_json : t -> Raceguard_obs.Json.t
