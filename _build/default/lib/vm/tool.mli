(** The tool ("skin") interface: how detectors observe the VM, exactly
    like a Valgrind tool instruments the intermediate code. *)

module Loc = Raceguard_util.Loc

type ctx = {
  stack_of : int -> Loc.t list;
      (** current call stack of a thread, innermost frame first *)
  thread_name : int -> string;
  block_of : int -> Memory.block option;
      (** heap block containing an address, if any *)
  clock : unit -> int;  (** virtual clock *)
}
(** Synchronous read access to VM introspection data, valid during the
    [on_event] callback. *)

type t = { name : string; on_event : ctx -> Event.t -> unit }

val make : name:string -> on_event:(ctx -> Event.t -> unit) -> t

val of_fn : string -> (Event.t -> unit) -> t
(** A tool that ignores the context — handy in tests. *)
