lib/core/runner.ml: List Raceguard_detector Raceguard_sip Raceguard_vm Unix
