(** Lock-sets: the candidate sets C(v) of the Eraser algorithm.

    [Top] is the initial "set of all locks" — intersecting anything
    with it yields the other operand, so we never need to materialise
    the universe. *)

module Iss = Raceguard_util.Int_sorted_set

type t = Top | Set of Iss.t

let top = Top
let empty = Set Iss.empty
let of_list l = Set (Iss.of_list l)

let is_empty = function Top -> false | Set s -> Iss.is_empty s

let inter a b =
  match (a, b) with
  | Top, x | x, Top -> x
  | Set a, Set b -> Set (Iss.inter a b)

let mem x = function Top -> true | Set s -> Iss.mem x s

let equal a b =
  match (a, b) with
  | Top, Top -> true
  | Set a, Set b -> Iss.equal a b
  | Top, Set _ | Set _, Top -> false

let cardinal = function Top -> max_int | Set s -> Iss.cardinal s

let to_list = function Top -> None | Set s -> Some (Iss.to_list s)

let pp ~name_of ppf = function
  | Top -> Fmt.string ppf "<all locks>"
  | Set s ->
      if Iss.is_empty s then Fmt.string ppf "no locks"
      else
        Fmt.pf ppf "{%a}"
          Fmt.(list ~sep:(any ", ") (fun ppf uid -> Lock_id.pp ~name_of ppf uid))
          (Iss.to_list s)
