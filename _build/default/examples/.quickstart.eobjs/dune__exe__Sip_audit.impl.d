examples/sip_audit.ml: Array Fmt List Printf Raceguard Raceguard_detector Raceguard_sip Sys
