lib/detector/vector_clock.mli: Format
