test/test_vm.ml: Alcotest Fmt List Printexc Printf Raceguard_util Raceguard_vm
