lib/core/scenarios.mli:
