examples/minicc_pipeline.mli:
