lib/vm/engine.ml: Array Eff Effect Event Fmt Hashtbl List Memory Queue Raceguard_util Tool
