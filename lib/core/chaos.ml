(** The chaos matrix: fault plans × test cases × resilience on/off.

    Each cell is one full deterministic VM run: a fresh {!Faults.Injector}
    (derived from the matrix seed and the plan) is wired into the
    transport, the allocator and the engine; the chaos drivers
    ({!Raceguard_sip.Workload.chaos_test_cases}) run their scripts with
    UAC-side retransmission; afterwards the post-run invariant oracles
    judge the cell:

    - {b registrations}: every REGISTER the server acknowledged with a
      200 is still bound at shutdown (and every acknowledged
      unREGISTER stays unbound) — checked strictly unless the plan can
      make whole requests vanish ({!Faults.Plan.has_drops});
    - {b answered}: every driver transaction reached a correct final
      response or was deliberately shed with 503;
    - {b shutdown}: the run ended cleanly — no deadlock, no dead
      threads, listener and services joined.

    The acceptance shape of the whole matrix: with resilience ON no
    cell violates any oracle; with resilience OFF at least one cell
    does (that asymmetry is what the resilience layer buys).  Each
    cell also carries the MD5 digest of its detector-report signatures
    and of its behavioural evidence, so (seed, plan) ⇒ byte-identical
    digests is pinned by test and CI. *)

module Vm = Raceguard_vm
module Det = Raceguard_detector
module Sip = Raceguard_sip
module Obs = Raceguard_obs
module Faults = Raceguard_faults
module Json = Obs.Json

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  seed : int;
  plans : Faults.Plan.t list;
  tests : Sip.Workload.test_case list;
  shard_plans : Faults.Plan.t list;
      (** shard-targeted plans — crossed with [scenario_tests] only,
          never with [tests], so the T1–T8 grid is untouched *)
  scenario_tests : Sip.Workload.test_case list;
      (** compiled [raceguard-scenario/1] storm scenarios (T9/T10);
          their cells run against a sharded registrar ([Resilient] when
          the cell is resilient, [Legacy_striped] otherwise) and are
          additionally judged by the {b shards} invariant oracle *)
  fast_path : bool;  (** detector fast path — must not change any digest *)
  max_ops : int;
  domains : int;
      (** worker domains for the cell grid; 1 = sequential, 0 = pick
          from [Domain.recommended_domain_count] — must not change any
          digest either (pinned by test and the CI par-smoke step) *)
  record_dir : string option;
      (** when set, every cell also records a [raceguard-trace/1]
          binary trace into [<dir>/<plan>-<test>-<res|base>.rgt]; the
          recorder is a pure observer, so digests are unchanged *)
}

(** The resilience knobs used by every resilient cell: an aggressive
    high-water mark so pool-mode cells actually shed under bursts. *)
let cell_resilience =
  { Sip.Proxy.default_resilience with res_shed_high_water = 4; res_deadline = 400 }

let chaos_opts = Sip.Workload.default_chaos_opts

(** Storm-scenario drivers get a longer retry budget: under the
    shard plans the pooled server is deliberately slowed, and a driver
    that gives up while the server is merely saturated (not broken)
    would turn honest backpressure into a spurious "unanswered"
    violation. *)
let scenario_chaos_opts =
  { chaos_opts with Sip.Workload.co_max_attempts = 14; co_attempt_timeout = 150 }

let scenario_tests_of scenarios =
  List.map (Sip.Workload.Scenario.to_test_case scenario_chaos_opts) scenarios

let default =
  {
    seed = 7;
    plans = Faults.Plan.shipped;
    tests = Sip.Workload.chaos_test_cases chaos_opts;
    shard_plans = Faults.Plan.shard_shipped;
    scenario_tests = scenario_tests_of Scenarios.sip_scenarios;
    fast_path = true;
    max_ops = 4_000_000;
    domains = 1;
    record_dir = None;
  }

(** The CI smoke subset: three representative plans (datagram loss,
    duplication, allocation failure) on two request mixes, plus the
    storm-duplication shard plan on both scenarios. *)
let quick =
  {
    default with
    plans =
      List.filter_map Faults.Plan.lookup [ "drop"; "dup"; "oom" ];
    tests =
      List.filter
        (fun (tc : Sip.Workload.test_case) -> tc.tc_name = "T2" || tc.tc_name = "T6")
        (Sip.Workload.chaos_test_cases chaos_opts);
    shard_plans = List.filter_map Faults.Plan.lookup [ "shard-storm" ];
  }

(** Plans that stress scheduling/allocation run against the thread-pool
    server (a queue for overload shedding to watch); pure datagram
    plans keep the thread-per-request shape.  The storm scenario T9
    always runs pooled (shedding is part of its script); the rebalance
    scenario T10 always runs thread-per-request (maximum registrar
    concurrency during migration). *)
let pattern_for (plan : Faults.Plan.t) (tc : Sip.Workload.test_case) =
  match tc.tc_name with
  | "T9" -> Sip.Proxy.Pool 2
  | "T10" -> Sip.Proxy.Per_request
  | _ -> (
      match plan.p_name with
      | "oom" | "slow-threads" | "mayhem" -> Sip.Proxy.Pool 2
      | _ -> Sip.Proxy.Per_request)

(* ------------------------------------------------------------------ *)
(* One cell                                                            *)
(* ------------------------------------------------------------------ *)

type oracle = { o_name : string; o_ok : bool; o_detail : string }

type cell = {
  cl_plan : string;
  cl_test : string;
  cl_resilient : bool;
  cl_oracles : oracle list;
  cl_violations : string list;  (** failed oracles, rendered *)
  cl_locations : int;  (** deduplicated detector locations *)
  cl_sig_digest : string;  (** MD5 over the sorted report signatures *)
  cl_behavior_digest : string;  (** MD5 over the behavioural evidence *)
  cl_unanswered : int;
  cl_wrong_finals : int;
  cl_shed_seen : int;
  cl_sheds : int;
  cl_cache_hits : int;
  cl_retransmits : int;
  cl_injected : Faults.Injector.counts;
  cl_thread_failures : int;
  cl_deadlocked : bool;
  cl_wall : float;
  cl_sharded : bool;  (** scenario cell against a sharded registrar *)
  cl_shard_count : int;  (** final shard count (1 when unsharded) *)
  cl_resizes : int;
  cl_migrations : int;
  cl_shard_audit : string list;  (** {!Sip.Registrar.audit} violations *)
}

let sig_string (r : Det.Report.t) =
  let kind, frames = Det.Report.signature r in
  Fmt.str "%a@%s" Det.Report.pp_kind kind
    (String.concat ";" (List.map (fun l -> Fmt.str "%a" Raceguard_util.Loc.pp l) frames))

let digest_of_strings sigs =
  Digest.to_hex (Digest.string (String.concat "\n" (List.sort compare sigs)))

(** Final binding expectation per AOR: the last acknowledged
    REGISTER/unREGISTER wins. *)
let final_expectations acked =
  List.fold_left
    (fun acc (aor, bound) -> (aor, bound) :: List.remove_assoc aor acc)
    [] acked
  |> List.sort compare

let run_oracles ~(plan : Faults.Plan.t) ~sharded ~(cr : Sip.Workload.chaos_run_result)
    ~(outcome : Vm.Engine.outcome) =
  let expectations = final_expectations cr.cr_acked_regs in
  let lost =
    List.filter_map
      (fun (aor, bound) ->
        let is_bound = List.mem aor cr.cr_bound in
        if bound && not is_bound then Some (aor ^ " lost")
        else if (not bound) && is_bound then Some (aor ^ " ghost-bound")
        else None)
      expectations
  in
  let o_reg =
    if Faults.Plan.has_drops plan && lost <> [] then
      (* request-vanishing faults relax the strict form; report but pass *)
      { o_name = "registrations"; o_ok = true;
        o_detail = "relaxed (drop-class plan): " ^ String.concat ", " lost }
    else
      { o_name = "registrations";
        o_ok = lost = [];
        o_detail = (if lost = [] then "all acknowledged bindings consistent"
                    else String.concat ", " lost) }
  in
  let wrong = List.length cr.cr_base.r_failures in
  let o_answered =
    let sample =
      match cr.cr_base.r_failures with
      | [] -> ""
      | fs ->
          " ["
          ^ String.concat "; " (List.filteri (fun i _ -> i < 3) fs)
          ^ (if wrong > 3 then "; ..." else "")
          ^ "]"
    in
    { o_name = "answered";
      o_ok = cr.cr_unanswered = 0 && wrong = 0;
      o_detail =
        Printf.sprintf "%d unanswered, %d wrong finals, %d shed%s" cr.cr_unanswered wrong
          (cr.cr_sheds + cr.cr_shed_seen) sample }
  in
  let dead = outcome.Vm.Engine.deadlock <> None in
  let crashed = List.length outcome.Vm.Engine.failures in
  let o_shutdown =
    { o_name = "clean-shutdown";
      o_ok = (not dead) && crashed = 0;
      o_detail =
        (if dead then "deadlock / ops budget exhausted"
         else if crashed > 0 then
           Printf.sprintf "%d dead threads (%s)" crashed
             (String.concat ", "
                (List.map (fun (_, name, _) -> name) outcome.Vm.Engine.failures))
         else "clean") }
  in
  let base = [ o_reg; o_answered; o_shutdown ] in
  if not sharded then base
  else
    (* scenario cells only: the sharded-registrar invariant audit
       (lost / ghost / dup / stale-contact / misplaced bindings and
       cross-shard lock-order inversions, from the host-side mirrors) *)
    base
    @ [
        { o_name = "shards";
          o_ok = cr.cr_shard_audit = [];
          o_detail =
            (if cr.cr_shard_audit = [] then
               Printf.sprintf "clean: %d shard(s), %d resize(s), %d migration(s)"
                 cr.cr_shard_count cr.cr_resizes cr.cr_migrations
             else String.concat ", " cr.cr_shard_audit) };
      ]

(* djb2, as elsewhere in the repo *)
let hash_name name =
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h lsl 5) + !h + Char.code c) land 0x3FFFFFFF) name;
  !h

let run_cell config ~(plan : Faults.Plan.t) ~resilient (tc : Sip.Workload.test_case) =
  (* Mix the cell coordinates into the injector seed: cells of the same
     plan must not share one roll stream, or an unlucky prefix starves
     every cell of a category at once.  Still a pure function of
     (config.seed, plan, test, resilient) — the determinism contract. *)
  let cell_seed =
    config.seed
    lxor (hash_name tc.tc_name * 31)
    lxor if resilient then 0x5EED else 0
  in
  let inj = Faults.Injector.create ~seed:cell_seed ~plan in
  let transport = Sip.Transport.create ~faults:inj () in
  let sharding =
    (* scenario cells (T9/T10) run against the sharded registrar:
       Resilient with the resilience toggle on, Legacy_striped off *)
    match Scenarios.sip_lookup tc.tc_name with
    | Some sc -> Sip.Workload.Scenario.sharding ~resilient sc
    | None -> Sip.Registrar.Unsharded
  in
  let sharded = sharding <> Sip.Registrar.Unsharded in
  let server =
    {
      Sip.Proxy.default_config with
      annotate = true;
      pattern = pattern_for plan tc;
      resilience = (if resilient then Some cell_resilience else None);
      faults = Some inj;
      registrar_sharding = sharding;
    }
  in
  let recorder =
    match config.record_dir with
    | None -> None
    | Some _ ->
        Some
          (Det.Offline.create_recorder
             ~meta:
               [
                 ("workload", tc.tc_name);
                 ("plan", plan.p_name);
                 ("resilient", string_of_bool resilient);
                 ("seed", string_of_int config.seed);
                 ("generator", "raceguard-chaos");
               ]
             ())
  in
  let runner =
    {
      Runner.default with
      seed = config.seed;
      helgrind_configs =
        [ ("HWLC+DR", { Det.Helgrind.hwlc_dr with fast_path = config.fast_path }) ];
      max_ops = config.max_ops;
      faults = Some inj;
      recorder;
    }
  in
  let result, value =
    Runner.run_main runner (Sip.Workload.run_chaos_test_case ~transport ~server_config:server tc)
  in
  let cr =
    match value with
    | Some cr -> cr
    | None ->
        (* the main thread itself died (legacy server under OOM faults):
           synthesise empty evidence; the shutdown oracle flags the cell *)
        {
          Sip.Workload.cr_base =
            { r_failures = [ "main thread did not complete" ]; r_responses = 0;
              r_requests_handled = 0 };
          cr_acked_regs = [];
          cr_shed_seen = 0;
          cr_unanswered = 0;
          cr_bound = [];
          cr_sheds = 0;
          cr_cache_hits = 0;
          cr_retransmits = 0;
          cr_shard_audit = [];
          cr_shard_count = 1;
          cr_resizes = 0;
          cr_migrations = 0;
        }
  in
  (match (config.record_dir, recorder) with
  | Some dir, Some r ->
      let file =
        Printf.sprintf "%s-%s-%s.rgt" plan.p_name
          (String.lowercase_ascii tc.tc_name)
          (if resilient then "res" else "base")
      in
      Det.Offline.to_file r (Filename.concat dir file)
  | _ -> ());
  let oracles = run_oracles ~plan ~sharded ~cr ~outcome:result.Runner.outcome in
  let violations =
    List.filter_map (fun o -> if o.o_ok then None else Some (o.o_name ^ ": " ^ o.o_detail)) oracles
  in
  let locations = Runner.locations_of result "HWLC+DR" in
  let sigs = List.map (fun (r, _) -> sig_string r) locations in
  let behavior =
    [
      "bound=" ^ String.concat "," cr.cr_bound;
      "acked=" ^ String.concat ","
        (List.map (fun (a, b) -> Printf.sprintf "%s:%b" a b) (final_expectations cr.cr_acked_regs));
      Printf.sprintf "unanswered=%d" cr.cr_unanswered;
      Printf.sprintf "wrong=%d" (List.length cr.cr_base.r_failures);
      Printf.sprintf "responses=%d" cr.cr_base.r_responses;
      Printf.sprintf "sheds=%d/%d" cr.cr_sheds cr.cr_shed_seen;
      Printf.sprintf "cache_hits=%d" cr.cr_cache_hits;
      Printf.sprintf "retransmits=%d" cr.cr_retransmits;
      Printf.sprintf "injected=%d" (Faults.Injector.total (Faults.Injector.counts inj));
    ]
    @ (if not sharded then []
       else
         (* scenario cells only, so T1–T8 behaviour digests are
            untouched by the sharding feature *)
         [
           Printf.sprintf "shards=%d" cr.cr_shard_count;
           Printf.sprintf "resizes=%d" cr.cr_resizes;
           Printf.sprintf "migrations=%d" cr.cr_migrations;
           "audit=" ^ String.concat "," cr.cr_shard_audit;
         ])
    @ [
        "oracles=" ^ String.concat ";"
          (List.map (fun o -> Printf.sprintf "%s:%b" o.o_name o.o_ok) oracles);
      ]
  in
  {
    cl_plan = plan.p_name;
    cl_test = tc.tc_name;
    cl_resilient = resilient;
    cl_oracles = oracles;
    cl_violations = violations;
    cl_locations = List.length locations;
    cl_sig_digest = digest_of_strings sigs;
    cl_behavior_digest = digest_of_strings behavior;
    cl_unanswered = cr.cr_unanswered;
    cl_wrong_finals = List.length cr.cr_base.r_failures;
    cl_shed_seen = cr.cr_shed_seen;
    cl_sheds = cr.cr_sheds;
    cl_cache_hits = cr.cr_cache_hits;
    cl_retransmits = cr.cr_retransmits;
    cl_injected = Faults.Injector.counts inj;
    cl_thread_failures = List.length result.Runner.outcome.Vm.Engine.failures;
    cl_deadlocked = result.Runner.outcome.Vm.Engine.deadlock <> None;
    cl_wall = result.Runner.wall_seconds;
    cl_sharded = sharded;
    cl_shard_count = cr.cr_shard_count;
    cl_resizes = cr.cr_resizes;
    cl_migrations = cr.cr_migrations;
    cl_shard_audit = cr.cr_shard_audit;
  }

(* ------------------------------------------------------------------ *)
(* The matrix                                                          *)
(* ------------------------------------------------------------------ *)

type report = {
  rp_seed : int;
  rp_fast_path : bool;
  rp_domains : int;  (** worker domains the grid actually ran on *)
  rp_cells : cell list;
  rp_resilient_violations : int;  (** cells with resilience ON that violate *)
  rp_baseline_violations : int;  (** cells with resilience OFF that violate *)
}

(** The cell grid, in the order the sequential runner executes it:
    plans outermost, then tests, resilient before baseline — the T1–T8
    grid first, then the shard-plan × scenario grid. *)
let grid config =
  let cross plans tests =
    List.concat_map
      (fun plan ->
        List.concat_map
          (fun (tc : Sip.Workload.test_case) ->
            List.map (fun resilient -> (plan, tc, resilient)) [ true; false ])
          tests)
      plans
  in
  cross config.plans config.tests @ cross config.shard_plans config.scenario_tests
  |> Array.of_list

let run config =
  let domains = Raceguard_par.Par.resolve config.domains in
  let cells =
    Raceguard_par.Par.map_cells ~domains
      (fun (plan, tc, resilient) -> run_cell config ~plan ~resilient tc)
      (grid config)
    |> Array.to_list
  in
  let count p = List.length (List.filter p cells) in
  {
    rp_seed = config.seed;
    rp_fast_path = config.fast_path;
    rp_domains = domains;
    rp_cells = cells;
    rp_resilient_violations = count (fun c -> c.cl_resilient && c.cl_violations <> []);
    rp_baseline_violations = count (fun c -> (not c.cl_resilient) && c.cl_violations <> []);
  }

let passed r = r.rp_resilient_violations = 0 && r.rp_baseline_violations > 0

(** One digest covering the whole matrix (violations + per-cell
    digests): the value the determinism pin compares across runs and
    fast-path modes. *)
let matrix_digest r =
  digest_of_strings
    (List.map
       (fun c ->
         Printf.sprintf "%s|%s|%b|%s|%s|%s" c.cl_plan c.cl_test c.cl_resilient c.cl_sig_digest
           c.cl_behavior_digest
           (String.concat ";" c.cl_violations))
       r.rp_cells)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let cell_to_json c =
  Json.Obj
    ([
      ("plan", Json.Str c.cl_plan);
      ("test", Json.Str c.cl_test);
      ("resilient", Json.Bool c.cl_resilient);
      ("locations", Json.int c.cl_locations);
      ("sig_digest", Json.Str c.cl_sig_digest);
      ("behavior_digest", Json.Str c.cl_behavior_digest);
      ( "oracles",
        Json.List
          (List.map
             (fun o ->
               Json.Obj
                 [
                   ("name", Json.Str o.o_name);
                   ("ok", Json.Bool o.o_ok);
                   ("detail", Json.Str o.o_detail);
                 ])
             c.cl_oracles) );
      ("violations", Json.List (List.map (fun v -> Json.Str v) c.cl_violations));
      ("unanswered", Json.int c.cl_unanswered);
      ("wrong_finals", Json.int c.cl_wrong_finals);
      ("shed_server", Json.int c.cl_sheds);
      ("shed_seen", Json.int c.cl_shed_seen);
      ("cache_hits", Json.int c.cl_cache_hits);
      ("retransmits", Json.int c.cl_retransmits);
      ("injected", Faults.Injector.counts_to_json c.cl_injected);
      ("thread_failures", Json.int c.cl_thread_failures);
      ("deadlocked", Json.Bool c.cl_deadlocked);
    ]
    @
    if not c.cl_sharded then []
    else
      [
        ("shard_count", Json.int c.cl_shard_count);
        ("resizes", Json.int c.cl_resizes);
        ("migrations", Json.int c.cl_migrations);
        ("shard_audit", Json.List (List.map (fun v -> Json.Str v) c.cl_shard_audit));
      ])

let to_json ?(config = default) r =
  Json.Obj
    [
      ("schema", Json.Str "raceguard-chaos/1");
      ("seed", Json.int r.rp_seed);
      ("fast_path", Json.Bool r.rp_fast_path);
      ("domains", Json.int r.rp_domains);
      ("plans", Json.List (List.map Faults.Plan.to_json (config.plans @ config.shard_plans)));
      ("cells", Json.List (List.map cell_to_json r.rp_cells));
      ( "summary",
        Json.Obj
          [
            ("cells", Json.int (List.length r.rp_cells));
            ("resilient_violations", Json.int r.rp_resilient_violations);
            ("baseline_violations", Json.int r.rp_baseline_violations);
            ("matrix_digest", Json.Str (matrix_digest r));
            ("passed", Json.Bool (passed r));
          ] );
    ]

let pp ppf r =
  let open Format in
  fprintf ppf "chaos matrix: seed %d, %d cells (fast_path %b, %d domain(s))@," r.rp_seed
    (List.length r.rp_cells) r.rp_fast_path r.rp_domains;
  fprintf ppf "%-12s %-4s %-4s %5s %5s %5s %5s %6s  %s@," "plan" "test" "res" "locs" "unans"
    "wrong" "shed" "inject" "verdict";
  List.iter
    (fun c ->
      fprintf ppf "%-12s %-4s %-4s %5d %5d %5d %5d %6d  %s@," c.cl_plan c.cl_test
        (if c.cl_resilient then "on" else "off")
        c.cl_locations c.cl_unanswered c.cl_wrong_finals (c.cl_sheds + c.cl_shed_seen)
        (Faults.Injector.total c.cl_injected)
        (if c.cl_violations = [] then "ok" else String.concat "; " c.cl_violations))
    r.rp_cells;
  fprintf ppf "violations: %d resilient, %d baseline — %s@," r.rp_resilient_violations
    r.rp_baseline_violations
    (if passed r then
       "PASS (resilient cells clean, baseline demonstrably breaks)"
     else "FAIL");
  fprintf ppf "matrix digest: %s" (matrix_digest r)
