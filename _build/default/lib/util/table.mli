(** Plain-text table and stacked-bar rendering for experiment output
    (the Figure 5/6 artefacts). *)

type align = Left | Right

type t

val create : headers:string list -> ?aligns:align list -> unit -> t
(** [aligns] defaults to all-[Right]; length must match [headers]. *)

val add_row : t -> string list -> t
(** Persistent; raises [Invalid_argument] on arity mismatch. *)

val render : t -> string
val print : t -> unit

val render_stacked_bars :
  title:string ->
  segments:(string * char) list ->
  rows:(string * int list) list ->
  max_width:int ->
  string
(** One horizontal stacked bar per row; each row gives the value of
    every segment, rendered with the segment's glyph. *)
