(* Tests pinning the callgraph on recursion — the part the static
   lockset pass leans on hardest:

   - self-recursion and mutual recursion are detected by [may_recurse],
     and acyclic call chains are not;
   - [may_alter_locks] propagates through a call cycle;
   - [unreachable_functions] still finds a dead mutually-recursive
     pair (dead cycles have no path from a root);
   - the static race analysis terminates on recursive programs and
     owns up to truncation via [stats.truncated]. *)

module M = Raceguard_minicc
module CG = M.Callgraph
module S = M.Static_race

let parse src = M.Preprocess.parse (M.Preprocess.with_builtins ()) ~file:"cg.mcc" src

let recursive_src =
  {|
fn fact(n) {
  if (n <= 1) {
    return 1;
  }
  return n * fact(n - 1);
}

fn even(n) {
  if (n == 0) {
    return 1;
  }
  return odd(n - 1);
}

fn odd(n) {
  if (n == 0) {
    return 0;
  }
  return even(n - 1);
}

fn straight(n) {
  return fact(n) + even(n);
}

fn main() {
  print(straight(5));
  return 0;
}
|}

let test_self_and_mutual_recursion () =
  let g = CG.build (parse recursive_src) in
  let r name = CG.may_recurse g (CG.Func name) in
  Alcotest.(check bool) "fact self-recurses" true (r "fact");
  Alcotest.(check bool) "even recurses via odd" true (r "even");
  Alcotest.(check bool) "odd recurses via even" true (r "odd");
  Alcotest.(check bool) "straight does not recurse" false (r "straight");
  Alcotest.(check bool) "main does not recurse" false (r "main")

let test_lock_alteration_through_cycle () =
  let g =
    CG.build
      (parse
         {|
fn ping(m, n) {
  if (n > 0) {
    pong(m, n - 1);
  }
  return 0;
}

fn pong(m, n) {
  mutex_lock(m);
  mutex_unlock(m);
  if (n > 0) {
    ping(m, n - 1);
  }
  return 0;
}

fn pure(n) {
  if (n > 0) {
    pure(n - 1);
  }
  return 0;
}

fn main() {
  var m = mutex("g");
  ping(m, 2);
  pure(2);
  return 0;
}
|})
  in
  Alcotest.(check bool) "pong alters locks" true (CG.may_alter_locks g (CG.Func "pong"));
  Alcotest.(check bool)
    "ping alters locks through the cycle" true
    (CG.may_alter_locks g (CG.Func "ping"));
  Alcotest.(check bool)
    "recursive but lock-free" false
    (CG.may_alter_locks g (CG.Func "pure"))

let test_dead_recursive_pair_unreachable () =
  let g =
    CG.build
      (parse
         {|
fn dead_a(n) {
  return dead_b(n);
}

fn dead_b(n) {
  return dead_a(n);
}

fn main() {
  return 0;
}
|})
  in
  Alcotest.(check (slist string compare))
    "dead cycle is unreachable" [ "dead_a"; "dead_b" ] (CG.unreachable_functions g);
  Alcotest.(check bool)
    "dead nodes still recurse" true
    (CG.may_recurse g (CG.Func "dead_a"))

let test_static_analysis_terminates_on_recursion () =
  (* a recursive worker hammering a shared field: the analysis must
     terminate, admit truncation of the unbounded call chain, and still
     run deterministically *)
  let p =
    parse
      {|
class Cell {
  var v;
}

fn hammer(c, n) {
  c.v = c.v + 1;
  if (n > 0) {
    hammer(c, n - 1);
  }
  return 0;
}

fn main() {
  var c = new Cell();
  c.v = 0;
  var t = spawn hammer(c, 10);
  hammer(c, 10);
  join(t);
  print(c.v);
  delete c;
  return 0;
}
|}
  in
  let r = S.analyse p in
  Alcotest.(check bool) "terminates with truncation admitted" true r.S.stats.S.truncated;
  Alcotest.(check bool) "still flags the race" true (r.S.warnings <> []);
  let a = Fmt.str "%a" S.pp_result r and b = Fmt.str "%a" S.pp_result (S.analyse p) in
  Alcotest.(check string) "deterministic" a b

let suite =
  ( "callgraph",
    [
      Alcotest.test_case "self and mutual recursion" `Quick test_self_and_mutual_recursion;
      Alcotest.test_case "lock alteration through a cycle" `Quick
        test_lock_alteration_through_cycle;
      Alcotest.test_case "dead recursive pair unreachable" `Quick
        test_dead_recursive_pair_unreachable;
      Alcotest.test_case "static analysis terminates on recursion" `Quick
        test_static_analysis_terminates_on_recursion;
    ] )
