(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (the same rows/series the paper reports), then times the
   detector configurations with Bechamel.

     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- tables    # only the tables/figures
     dune exec bench/main.exe -- timings   # only the Bechamel timings

   Table/figure index (see DESIGN.md §4):
     Figure 6  -> "fig6"      Figure 5    -> "fig5"
     Figure 4  -> "fig4"      Figures 8/9 -> "fig8"
     Figures 10/11 -> "pools" §4.3 -> "fneg"   §4.1 -> "bugs"
     §4 alloc  -> "alloc"     §4.5 -> "perf"   §3.3 -> "deadlock"
     ablations -> "segments", "states", "baselines" *)

open Bechamel
open Toolkit

module R = Raceguard
module Det = Raceguard_detector
module Vm = Raceguard_vm
module Sip = Raceguard_sip

let seed = 7

(* ------------------------------------------------------------------ *)
(* Bechamel test subjects: one per table/figure workload               *)
(* ------------------------------------------------------------------ *)

let run_t2 helgrind_configs ~djit () =
  let cfg = { R.Runner.default with seed; helgrind_configs; run_djit = djit } in
  ignore (R.Runner.run_test_case cfg Sip.Workload.t2)

let run_scenario helgrind_configs scenario () =
  let cfg = { R.Runner.default with seed; helgrind_configs } in
  ignore (R.Runner.run_main cfg scenario)

let offline_replay () =
  (* record once per run, replay through the detector post mortem *)
  let recorder = Det.Offline.create_recorder () in
  let vm = Vm.Engine.create ~config:{ Vm.Engine.default_config with seed } () in
  Vm.Engine.add_tool vm (Det.Offline.tool recorder);
  let transport = Sip.Transport.create () in
  let _ =
    Vm.Engine.run vm (fun () ->
        ignore
          (Sip.Workload.run_test_case ~transport ~server_config:R.Runner.default.server
             Sip.Workload.t3 ()))
  in
  let h = Det.Helgrind.create Det.Helgrind.hwlc_dr in
  Det.Offline.replay recorder (Det.Helgrind.tool h)

let minicc_pipeline () =
  let module M = Raceguard_minicc in
  let interp, _pretty, _n =
    M.Interp.compile ~annotate:true ~file:"g.mcc" R.Experiments.figure4_source
  in
  let h = Det.Helgrind.create Det.Helgrind.hwlc_dr in
  let vm = Vm.Engine.create ~config:{ Vm.Engine.default_config with seed } () in
  Vm.Engine.add_tool vm (Det.Helgrind.tool h);
  ignore (Vm.Engine.run vm (fun () -> M.Interp.run_main interp))

let cfgs name c = [ (name, c) ]

let tests =
  [
    (* Figure 6 / §4.5 series: T2 under each configuration *)
    Test.make ~name:"fig6/T2-no-tool" (Staged.stage (run_t2 [] ~djit:false));
    Test.make ~name:"fig6/T2-Original"
      (Staged.stage (run_t2 (cfgs "Original" Det.Helgrind.original) ~djit:false));
    Test.make ~name:"fig6/T2-HWLC"
      (Staged.stage (run_t2 (cfgs "HWLC" Det.Helgrind.hwlc) ~djit:false));
    Test.make ~name:"fig6/T2-HWLC+DR"
      (Staged.stage (run_t2 (cfgs "HWLC+DR" Det.Helgrind.hwlc_dr) ~djit:false));
    (* baselines: DJIT on the same workload *)
    Test.make ~name:"baselines/T2-DJIT" (Staged.stage (run_t2 [] ~djit:true));
    (* ablation: pure Eraser (no state machine) *)
    Test.make ~name:"states/T2-pure-eraser"
      (Staged.stage (run_t2 (cfgs "pure" Det.Helgrind.pure_eraser) ~djit:false));
    (* Figures 8/9: the string test *)
    Test.make ~name:"fig8/stringtest-original"
      (Staged.stage
         (run_scenario (cfgs "Original" Det.Helgrind.original) R.Scenarios.stringtest));
    Test.make ~name:"fig8/stringtest-hwlc"
      (Staged.stage (run_scenario (cfgs "HWLC" Det.Helgrind.hwlc) R.Scenarios.stringtest));
    (* Figures 10/11: handoff patterns *)
    Test.make ~name:"pools/handoff-per-request"
      (Staged.stage
         (run_scenario (cfgs "HWLC+DR" Det.Helgrind.hwlc_dr) R.Scenarios.handoff_per_request));
    Test.make ~name:"pools/handoff-queue"
      (Staged.stage
         (run_scenario (cfgs "HWLC+DR" Det.Helgrind.hwlc_dr) R.Scenarios.handoff_pool));
    (* §4.5 offline mode: record + post-mortem replay *)
    Test.make ~name:"perf/offline-record-replay-T3" (Staged.stage offline_replay);
    (* Figure 4: the full MiniC++ instrumentation pipeline *)
    Test.make ~name:"fig4/minicc-pipeline" (Staged.stage minicc_pipeline);
  ]

let run_timings () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"raceguard" tests) in
  let analyzed = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "Bechamel timings (monotonic clock, OLS estimate per run):";
  print_endline "";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> est
        | Some [] | None -> nan
      in
      rows := (name, ns) :: !rows)
    analyzed;
  let rows = List.sort compare !rows in
  let width = List.fold_left (fun w (n, _) -> max w (String.length n)) 0 rows in
  List.iter
    (fun (name, ns) -> Printf.printf "  %-*s  %12.3f ms/run\n" width name (ns /. 1e6))
    rows

let run_tables () =
  List.iter
    (fun (id, descr, f) ->
      Printf.printf "==== %s — %s ====\n%!" id descr;
      print_endline (f ());
      print_newline ())
    R.Experiments.all

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  if what = "tables" || what = "all" then run_tables ();
  if what = "timings" || what = "all" then run_timings ()
