(* Thread segments and ownership transfer: Figures 2, 10 and 11.

     dune exec examples/thread_handoff.exe

   The same producer/worker data exchange is run twice: once handing
   the buffer over through thread creation (thread-per-request), once
   through a message queue (thread pool).  The detector stays silent on
   the first and reports the second, then the segments ablation shows
   why. *)

let () =
  print_endline (Raceguard.Experiments.pools ());
  print_endline (Raceguard.Experiments.segments_ablation ())
