(* The §2.3.1 triage workflow: run the detector, decide which reports
   are benign/unfixable, generate suppressions for them (Valgrind's
   --gen-suppressions), and rerun with the suppression file so only new
   findings surface.

     dune exec examples/triage_workflow.exe *)

module Vm = Raceguard_vm
module Det = Raceguard_detector
module Api = Vm.Api
module Loc = Raceguard_util.Loc

let loc = Loc.v "app.c" "main" 1

(* an application with one race we can fix and one we decide to accept
   (a monotonic "progress" counter used only for operator dashboards) *)
let application () =
  let progress = Api.alloc ~loc 1 in
  let balance = Api.alloc ~loc 1 in
  let m = Api.Mutex.create ~loc "balance_guard" in
  let worker () =
    Api.with_frame (Loc.v "app.c" "worker" 10) @@ fun () ->
    for _ = 1 to 5 do
      (* accepted: approximate counter, off-by-a-few is fine *)
      Api.write ~loc:(Loc.v "app.c" "bump_progress" 13) progress
        (Api.read ~loc:(Loc.v "app.c" "bump_progress" 13) progress + 1);
      (* BUG: the balance update misses the lock on this path *)
      Api.write ~loc:(Loc.v "app.c" "update_balance" 15) balance
        (Api.read ~loc:(Loc.v "app.c" "update_balance" 15) balance + 10)
    done;
    Api.Mutex.with_lock ~loc:(Loc.v "app.c" "worker" 17) m (fun () ->
        Api.write ~loc:(Loc.v "app.c" "worker" 18) balance
          (Api.read ~loc:(Loc.v "app.c" "worker" 18) balance - 1))
  in
  let t1 = Api.spawn ~loc ~name:"w1" worker in
  let t2 = Api.spawn ~loc ~name:"w2" worker in
  Api.join ~loc t1;
  Api.join ~loc t2

let audit ~suppressions =
  let vm = Vm.Engine.create ~config:{ Vm.Engine.default_config with seed = 5 } () in
  let h = Det.Helgrind.create ~suppressions Det.Helgrind.hwlc_dr in
  Vm.Engine.add_tool vm (Det.Helgrind.tool h);
  let _ = Vm.Engine.run vm application in
  h

let () =
  print_endline "=== first run: everything is reported ===";
  let h = audit ~suppressions:[] in
  List.iter (fun (r, n) -> Fmt.pr "[%d×] %a@." n Det.Report.pp r) (Det.Helgrind.locations h);

  print_endline "=== triage: accept the progress counter, suppress it ===";
  let accepted, real =
    List.partition
      (fun ((r : Det.Report.t), _) ->
        List.exists (fun l -> Loc.func l = "bump_progress") r.stack)
      (Det.Helgrind.locations h)
  in
  let suppressions =
    List.map
      (fun ((r : Det.Report.t), _) ->
        Det.Suppression.of_frames ~name:"benign-progress-counter"
          ~kind:(Fmt.str "%a" Det.Report.pp_kind r.kind)
          ~frames:r.stack)
      accepted
  in
  List.iter (fun s -> print_string (Det.Suppression.to_string s)) suppressions;
  Printf.printf "(%d location(s) suppressed, %d considered real)\n\n" (List.length accepted)
    (List.length real);

  print_endline "=== second run, with the suppression file ===";
  let h2 = audit ~suppressions in
  List.iter (fun (r, n) -> Fmt.pr "[%d×] %a@." n Det.Report.pp r) (Det.Helgrind.locations h2);
  Printf.printf
    "%d location(s) remain (the real bug), %d occurrence(s) silenced by suppressions\n"
    (Det.Helgrind.location_count h2)
    (Det.Report.suppressed_count (Det.Helgrind.collector h2))
