lib/sip/routing.ml: List Raceguard_cxxsim Raceguard_util Raceguard_vm Registrar
