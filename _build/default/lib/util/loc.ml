(** Source locations for the simulated programs.

    Reports produced by the detectors print Valgrind-style call stacks,
    so every memory access and synchronisation operation in a simulated
    application carries a [Loc.t] naming the (pseudo) source position
    that performed it. *)

type t = { file : string; func : string; line : int }

let make ~file ~func ~line = { file; func; line }

let v file func line = { file; func; line }

let unknown = { file = "<unknown>"; func = "<unknown>"; line = 0 }

let file t = t.file
let func t = t.func
let line t = t.line

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare a.line b.line in
    if c <> 0 then c else String.compare a.func b.func

let equal a b = compare a b = 0

let hash t = Hashtbl.hash (t.file, t.func, t.line)

let pp ppf t = Fmt.pf ppf "%s (%s:%d)" t.func t.file t.line

let to_string t = Fmt.str "%a" pp t

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
