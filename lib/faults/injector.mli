(** The seeded decision engine behind a {!Plan}.

    One injector instance serves one run.  Each fault category draws
    from its own [Util.Rng] stream (derived with [Rng.split] from the
    run seed and the plan name), so consulting one category never
    perturbs another — and, crucially, never perturbs the scheduler's
    stream.  Every "did it fire?" outcome is counted, both in the
    process-wide metrics registry ([faults.injected.*]) and in
    per-instance counters the chaos oracles read as ground truth. *)

exception Out_of_memory
(** Raised by the allocator when an allocation-failure fault fires. *)

type t

type datagram_decision =
  | Deliver
  | Drop
  | Duplicate
  | Delay_by of int
  | Corrupt_with of int  (** payload xor key for deterministic mangling *)

val create : seed:int -> plan:Plan.t -> t
val plan : t -> Plan.t

val is_off : t -> bool
(** True when the plan is {!Plan.none}: every hook below is a
    constant-time no-op returning the "nothing happened" value. *)

val datagram : t -> datagram_decision
(** Decide the fate of one outbound datagram.  Reorder faults
    materialise as short {!Delay_by} postponements. *)

val alloc_fails : t -> bool
(** Consulted once per pool allocation; true = raise OOM upstream. *)

val spawn_delay : t -> int
(** Extra ticks before a freshly spawned thread first runs (0 = none). *)

val lock_delay : t -> int
(** Extra ticks a thread stalls inside a mutex acquisition (0 = none). *)

val corrupt_wire : key:int -> string -> string
(** Deterministically mangle a payload: flips bytes chosen by [key].
    Pure — exposed for tests. *)

(** Ground truth for oracles and reports: *)

type counts = {
  c_dropped : int;
  c_duplicated : int;
  c_delayed : int;
  c_corrupted : int;
  c_alloc_failures : int;
  c_spawn_delays : int;
  c_lock_delays : int;
}

val counts : t -> counts
val total : counts -> int
val counts_to_json : counts -> Raceguard_obs.Json.t
