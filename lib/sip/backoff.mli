(** Exponential backoff schedules for retransmission.

    Pure host-side arithmetic — no VM operations — shared by the
    server's retransmission timer and the chaos test drivers.  A
    schedule is fully determined by (params, seed): jitter comes from a
    private splitmix stream, and the schedule is monotone
    nondecreasing and capped by construction (qcheck-pinned). *)

type params = {
  base : int;  (** first delay, ticks *)
  factor_num : int;
  factor_den : int;  (** growth ratio per attempt, as a fraction > 1 *)
  cap : int;  (** ceiling for the un-jittered delay *)
  jitter_pct : int;  (** max jitter as % of the un-jittered delay *)
}

val default : params
(** T1-timer-flavoured: base 50, ×2 per attempt, cap 400, 25% jitter. *)

val max_delay : params -> int
(** Hard ceiling for any delay the schedule can produce:
    [cap + cap * jitter_pct / 100]. *)

val schedule : params -> seed:int -> attempts:int -> int list
(** The first [attempts] delays.  Guarantees, for any params with
    [base >= 1]: every element >= 1, the list is monotone
    nondecreasing, and every element <= [max_delay params].  Equal
    (params, seed, attempts) give equal lists. *)

val delay : params -> seed:int -> attempt:int -> int
(** [delay p ~seed ~attempt] = k-th element (0-based) of the schedule. *)
