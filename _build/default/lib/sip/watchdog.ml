(** The application's home-grown deadlock detector — itself racy.

    "One of the first reported data races was in the application's
    deadlock detection code.  Unfortunately, this code was not easy to
    change in order to remove the race condition.  Therefore, it was
    disabled for further experiments." (§4.1)

    The pattern: every lock acquisition writes who-is-waiting-for-what
    into a global watch table {e without synchronisation} (taking the
    very lock being watched would deadlock...), and a watchdog thread
    periodically scans the table looking for threads stuck too long.
    The table accesses are genuine data races. *)

module Loc = Raceguard_util.Loc
module Api = Raceguard_vm.Api

let lc func line = Loc.v "lock_watch.cpp" ("LockWatch::" ^ func) line

let max_slots = 64

type t = {
  table : int;  (** [max_slots] words: waiting-since clock per thread, 0 = idle *)
  stop_flag : int;
  timeout : int;
  mutable thread : int;
  mutable alarms : (int * int) list;  (** (tid, waited) — host-side findings *)
}

let create ~timeout =
  let table = Api.alloc ~loc:(lc "LockWatch" 30) max_slots in
  let stop_flag = Api.alloc ~loc:(lc "LockWatch" 31) 1 in
  { table; stop_flag; timeout; thread = -1; alarms = [] }

(** Called by [GuardedMutex::lock] just before blocking: record the
    wait start.  Unsynchronised write — bug B1. *)
let before_lock t =
  let tid = Api.self () in
  if tid < max_slots then Api.write ~loc:(lc "beforeLock" 39) (t.table + tid) (Api.now ())

(** Called after the lock is acquired: clear the slot.  Also racy. *)
let after_lock t =
  let tid = Api.self () in
  if tid < max_slots then Api.write ~loc:(lc "afterLock" 45) (t.table + tid) 0

let scan t =
  let now = Api.now () in
  for tid = 0 to max_slots - 1 do
    (* unsynchronised read of a slot another thread writes — bug B1 *)
    let since = Api.read ~loc:(lc "scan" 52) (t.table + tid) in
    if since > 0 && now - since > t.timeout then t.alarms <- (tid, now - since) :: t.alarms
  done

let run t () =
  Api.with_frame (lc "run" 58) @@ fun () ->
  while Api.read ~loc:(lc "run" 59) t.stop_flag = 0 do
    scan t;
    Api.sleep 20
  done

let start t = t.thread <- Api.spawn ~loc:(lc "start" 65) ~name:"lock-watchdog" (run t)
let stop t = ignore (Api.atomic_rmw ~loc:(lc "stop" 66) t.stop_flag (fun _ -> 1))
let join t = if t.thread >= 0 then Api.join ~loc:(lc "join" 67) t.thread
let alarms t = t.alarms
