lib/core/experiments.ml: Array Buffer Classify Fmt List Printf Raceguard_cxxsim Raceguard_detector Raceguard_minicc Raceguard_sip Raceguard_util Raceguard_vm Runner Scenarios String Unix
