lib/sip/timer_wheel.mli: Raceguard_cxxsim
