(* Tests for the binary trace plane ([lib/trace/] + the offline replay
   driver):

   - codec properties: varint/zigzag/string round-trips, incremental
     CRC-32 equals whole-buffer CRC-32;
   - qcheck container round-trip: decode (encode entries) = entries for
     random event streams, including interning-table reuse and snapshot
     markers at aggressive cadences;
   - corruption rejection: truncation anywhere, a flipped body byte
     (CRC), bad magics, wrong version byte are all decode errors;
   - recording determinism: the same (workload, seed) produces
     byte-identical trace files;
   - the replay fidelity pin: for every SIP test case x seeds 7/42, all
     eight registry detector configurations replayed from the trace (at
     1 and 4 domains) produce verdicts byte-identical to the detectors
     that watched the run live;
   - trace diffing: identical traces have no divergence; a mutated
     stream is pinpointed at the exact first divergent event;
   - recorder throughput metrics ride the Obs.Metrics registry. *)

module Trace = Raceguard_trace
module Codec = Trace.Codec
module Writer = Trace.Writer
module Reader = Trace.Reader
module Vm = Raceguard_vm
module Event = Vm.Event
module Eff = Vm.Eff
module Loc = Raceguard_util.Loc
module Det = Raceguard_detector
module Sip = Raceguard_sip
module Obs = Raceguard_obs
module R = Raceguard
module Gen = QCheck2.Gen

(* --- codec properties --------------------------------------------------- *)

let qc_varint_roundtrip =
  QCheck2.Test.make ~name:"varint round-trips" ~count:500
    Gen.(oneof [ int_bound 200; int_bound max_int ])
    (fun n ->
      let b = Buffer.create 10 in
      Codec.write_varint b n;
      let c = Codec.cursor (Buffer.contents b) in
      Codec.read_varint c = n && Codec.at_end c)

let qc_zigzag_roundtrip =
  (* zigzag doubles the magnitude, so the representable range is
     [-max_int/2, max_int/2] — plenty for the client-request tags it
     encodes *)
  QCheck2.Test.make ~name:"zigzag round-trips (negatives too)" ~count:500
    Gen.(map (fun (s, n) -> if s then -n else n) (pair bool (int_bound (max_int / 2))))
    (fun n ->
      let b = Buffer.create 10 in
      Codec.write_zigzag b n;
      let c = Codec.cursor (Buffer.contents b) in
      Codec.read_zigzag c = n && Codec.at_end c)

let qc_string_roundtrip =
  QCheck2.Test.make ~name:"length-prefixed strings round-trip" ~count:200
    Gen.(string_size (int_bound 64))
    (fun s ->
      let b = Buffer.create 16 in
      Codec.write_string b s;
      let c = Codec.cursor (Buffer.contents b) in
      Codec.read_string c = s && Codec.at_end c)

let qc_crc_incremental =
  QCheck2.Test.make ~name:"incremental CRC-32 = whole-buffer CRC-32" ~count:200
    Gen.(pair (string_size (int_bound 128)) (string_size (int_bound 128)))
    (fun (a, b) ->
      let whole = a ^ b in
      let one = Codec.crc32 whole 0 (String.length whole) in
      let two =
        Codec.crc32 ~crc:(Codec.crc32 a 0 (String.length a)) b 0 (String.length b)
      in
      one = two)

(* --- random entry streams ----------------------------------------------- *)

let locs =
  [|
    Loc.v "a.cpp" "f" 1;
    Loc.v "a.cpp" "g" 2;
    Loc.v "b.cpp" "h" 3;
    Loc.v "c.cpp" "i" 44;
    Loc.unknown;
  |]

let names = [| "main"; "worker"; "logger"; "reaper" |]
let gen_loc = Gen.(map (fun i -> locs.(i)) (int_bound (Array.length locs - 1)))
let gen_name = Gen.(map (fun i -> names.(i)) (int_bound (Array.length names - 1)))
let gen_stack = Gen.(list_size (int_bound 4) gen_loc)

let gen_sync =
  Gen.(
    map2
      (fun k i ->
        match k with
        | 0 -> Event.Mutex i
        | 1 -> Event.Rwlock i
        | 2 -> Event.Cond i
        | _ -> Event.Sem i)
      (int_bound 3) (int_bound 5))

let gen_block tid =
  Gen.(
    map3
      (fun base len freed ->
        {
          Vm.Memory.base;
          len = len + 1;
          alloc_tid = tid;
          alloc_loc = locs.(0);
          alloc_stack = [ locs.(0); locs.(1) ];
          freed;
        })
      (int_bound 1000) (int_bound 16) bool)

(* one random event plus the block a read/write would resolve to; the
   writer only encodes blocks for reads/writes, so other kinds carry
   [None] to keep the round-trip an equality *)
let gen_entry =
  let open Gen in
  let* tid = int_bound 5 in
  let* loc = gen_loc in
  let* kind = int_bound 16 in
  let* value = int_bound 10_000 in
  let* addr = int_bound 2000 in
  let* atomic = bool in
  let no_block ev = return (ev, None) in
  match kind with
  | 0 ->
      let* name = gen_name in
      let* parent = oneof [ return None; map Option.some (int_bound 3) ] in
      no_block (Event.E_thread_start { tid; name; parent })
  | 1 -> no_block (Event.E_thread_exit { tid })
  | 2 -> no_block (Event.E_spawn { parent = tid; child = tid + 1; loc })
  | 3 -> no_block (Event.E_join { joiner = tid; joined = tid + 1; loc })
  | 4 ->
      let* block = oneof [ return None; map Option.some (gen_block tid) ] in
      return (Event.E_read { tid; addr; value; atomic; loc }, block)
  | 5 ->
      let* block = oneof [ return None; map Option.some (gen_block tid) ] in
      return (Event.E_write { tid; addr; value; atomic; loc }, block)
  | 6 -> no_block (Event.E_alloc { tid; addr; len = (value mod 64) + 1; loc })
  | 7 -> no_block (Event.E_free { tid; addr; len = (value mod 64) + 1; loc })
  | 8 ->
      let* sync = gen_sync in
      let* name = gen_name in
      no_block (Event.E_sync_create { tid; sync; name; loc })
  | 9 ->
      let* lock = gen_sync in
      let* w = bool in
      no_block
        (Event.E_acquire
           { tid; lock; mode = (if w then Eff.Write_mode else Eff.Read_mode); loc })
  | 10 ->
      let* lock = gen_sync in
      no_block (Event.E_release { tid; lock; loc })
  | 11 -> no_block (Event.E_cond_signal { tid; cv = addr mod 6; broadcast = atomic; loc })
  | 12 -> no_block (Event.E_cond_wait_pre { tid; cv = addr mod 6; m = value mod 6; loc })
  | 13 -> no_block (Event.E_cond_wait_post { tid; cv = addr mod 6; m = value mod 6; loc })
  | 14 -> no_block (Event.E_sem_post { tid; sem = addr mod 6; loc })
  | 15 -> no_block (Event.E_sem_wait_post { tid; sem = addr mod 6; loc })
  | _ ->
      let* req =
        oneof
          [
            return (Eff.Destruct { addr; len = (value mod 8) + 1 });
            return (Eff.Benign_race { addr; len = (value mod 8) + 1 });
            return (Eff.Happens_before { tag = value });
            return (Eff.Happens_after { tag = value });
          ]
      in
      no_block (Event.E_client { tid; req; loc })

(* a stream: events with strictly monotonic clocks and per-entry
   stack/thread-name context *)
let gen_stream =
  let open Gen in
  let* raw = list_size (int_bound 60) (triple gen_entry gen_stack gen_name) in
  let clock = ref 0 in
  return
    (List.map
       (fun ((ev, block), stack, name) ->
         incr clock;
         (ev, !clock, stack, name, block))
       raw)

let encode ?snapshot_every ?meta stream =
  let w = Writer.create ?snapshot_every ?meta () in
  List.iter
    (fun (event, clock, stack, thread_name, block) ->
      Writer.add_entry w ~event ~clock ~stack ~thread_name ~block)
    stream;
  (w, Writer.contents w)

let decode_exn s =
  match Reader.of_string s with
  | Ok t -> t
  | Error (`Msg m) -> Alcotest.failf "decode failed: %s" m

let entry_matches (e : Reader.entry) (event, clock, stack, thread_name, block) =
  e.Reader.en_event = event && e.en_clock = clock && e.en_stack = stack
  && e.en_thread = thread_name
  && e.en_block = block

let qc_container_roundtrip =
  QCheck2.Test.make ~name:"decode (encode stream) = stream" ~count:120
    Gen.(pair gen_stream (int_range 1 9))
    (fun (stream, snapshot_every) ->
      let w, bytes = encode ~snapshot_every ~meta:[ ("k", "v"); ("seed", "9") ] stream in
      let t = decode_exn bytes in
      Reader.length t = List.length stream
      && Reader.schema t = Writer.schema
      && Reader.meta_find t "k" = Some "v"
      && List.length (Reader.snapshots t) = Writer.snapshot_count w
      && List.for_all2 entry_matches (Array.to_list (Reader.entries t)) stream)

let qc_truncation_rejected =
  QCheck2.Test.make ~name:"every truncation is rejected" ~count:40 gen_stream
    (fun stream ->
      let _, bytes = encode ~snapshot_every:5 stream in
      let n = String.length bytes in
      (* every prefix strictly shorter than the container fails *)
      List.for_all
        (fun k ->
          match Reader.of_string (String.sub bytes 0 k) with
          | Error _ -> true
          | Ok _ -> false)
        [ 0; 1; 3; n / 4; n / 2; n - 9; n - 5; n - 1 ])

let test_corruption_rejected () =
  let stream =
    [
      (Event.E_thread_start { tid = 0; name = "main"; parent = None }, 1, [], "main", None);
      ( Event.E_write { tid = 0; addr = 4; value = 7; atomic = false; loc = locs.(0) },
        2,
        [ locs.(0) ],
        "main",
        None );
      (Event.E_thread_exit { tid = 0 }, 3, [], "main", None);
    ]
  in
  let _, bytes = encode stream in
  let expect_error what s =
    match Reader.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s was accepted" what
  in
  (* flip one byte in the middle of the body: CRC must catch it *)
  let flipped = Bytes.of_string bytes in
  let mid = String.length bytes / 2 in
  Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 0x5A));
  expect_error "flipped body byte" (Bytes.to_string flipped);
  (* bad magics *)
  expect_error "bad head magic" ("XXXX" ^ String.sub bytes 4 (String.length bytes - 4));
  expect_error "bad tail magic" (String.sub bytes 0 (String.length bytes - 4) ^ "XXXX");
  (* wrong version byte (also breaks the CRC, but the message path must
     not crash) *)
  let vbad = Bytes.of_string bytes in
  Bytes.set vbad 4 '\xee';
  expect_error "wrong version" (Bytes.to_string vbad);
  expect_error "empty input" ""

let test_monotonic_clock_enforced () =
  let w = Writer.create () in
  Writer.add_entry w
    ~event:(Event.E_thread_start { tid = 0; name = "main"; parent = None })
    ~clock:5 ~stack:[] ~thread_name:"main" ~block:None;
  Alcotest.check_raises "backwards clock rejected"
    (Invalid_argument "Writer.add_entry: clock went backwards") (fun () ->
      Writer.add_entry w ~event:(Event.E_thread_exit { tid = 0 }) ~clock:4 ~stack:[]
        ~thread_name:"main" ~block:None)

(* --- recording determinism and replay fidelity --------------------------- *)

let t4 = Option.get (R.Trace_ops.test_case_of_string "T4")

let test_recording_deterministic () =
  let a = Det.Offline.contents (R.Trace_ops.record_test ~seed:7 t4).rec_recorder in
  let b = Det.Offline.contents (R.Trace_ops.record_test ~seed:7 t4).rec_recorder in
  Alcotest.(check bool) "same (workload, seed) => byte-identical trace" true (a = b);
  let c = Det.Offline.contents (R.Trace_ops.record_test ~seed:42 t4).rec_recorder in
  Alcotest.(check bool) "different seed => different trace" true (a <> c)

let test_write_behind_materialize () =
  (* record mode logs only (workload, seed); materializing must yield the
     same bytes as an eager capture run, and must cache the result *)
  let d = R.Trace_ops.record_deferred ~seed:7 t4 in
  let m1 = R.Trace_ops.materialize d in
  let m2 = R.Trace_ops.materialize d in
  Alcotest.(check bool) "materialize is cached" true (m1 == m2);
  let eager = Det.Offline.contents (R.Trace_ops.record_test ~seed:7 t4).rec_recorder in
  Alcotest.(check bool)
    "materialized bytes == eager capture bytes" true
    (String.equal (Det.Offline.contents m1.rec_recorder) eager)

let test_trace_self_describing () =
  let r = R.Trace_ops.record_test ~seed:7 t4 in
  let t = decode_exn (Det.Offline.contents r.rec_recorder) in
  Alcotest.(check (option string)) "workload in meta" (Some "T4") (Reader.meta_find t "workload");
  Alcotest.(check (option string)) "seed in meta" (Some "7") (Reader.meta_find t "seed");
  Alcotest.(check bool) "snapshots present" true (Reader.snapshots t <> [])

let test_replay_matches_live () =
  List.iter
    (fun (tc : Sip.Workload.test_case) ->
      List.iter
        (fun seed ->
          let r = R.Trace_ops.record_test ~seed ~live:Det.Offline.configs tc in
          let trace = decode_exn (Det.Offline.contents r.rec_recorder) in
          List.iter
            (fun domains ->
              let replayed = R.Trace_ops.replay_parallel ~domains trace in
              List.iter
                (fun (name, status) ->
                  Alcotest.(check bool)
                    (Fmt.str "%s seed %d domains %d: %s replay byte-identical to live"
                       tc.tc_name seed domains name)
                    true (status = `Match))
                (R.Trace_ops.compare_verdicts ~live:r.rec_live replayed))
            [ 1; 4 ])
        [ 7; 42 ])
    Sip.Workload.all_test_cases

(* --- diffing ------------------------------------------------------------- *)

let fixed_stream n =
  List.init n (fun i ->
      ( Event.E_write
          { tid = i mod 3; addr = 16 + i; value = i; atomic = false; loc = locs.(i mod 4) },
        i + 1,
        [ locs.(i mod 4) ],
        names.(i mod 3),
        None ))

let test_diff_identical () =
  let _, bytes = encode (fixed_stream 32) in
  let t = decode_exn bytes in
  Alcotest.(check bool) "no divergence against itself" true
    (Trace.Diff.first_divergence t t = None)

let test_diff_pinpoints_first_divergence () =
  let stream = fixed_stream 32 in
  let mutated =
    List.mapi
      (fun i ((_ev, clk, stack, name, block) as e) ->
        if i = 17 then
          (Event.E_read { tid = 9; addr = 999; value = 0; atomic = true; loc = locs.(1) },
           clk, stack, name, block)
        else e)
      stream
  in
  let _, a = encode stream and _, b = encode mutated in
  match Trace.Diff.first_divergence ~window:5 (decode_exn a) (decode_exn b) with
  | None -> Alcotest.fail "divergence not detected"
  | Some d ->
      Alcotest.(check int) "first divergent event index" 17 d.Trace.Diff.d_index;
      Alcotest.(check int) "context window" 5 (List.length d.d_context);
      (match (d.d_left, d.d_right) with
      | Some l, Some r ->
          Alcotest.(check bool) "sides differ" true (l.Reader.en_event <> r.Reader.en_event)
      | _ -> Alcotest.fail "both sides should be present")

let test_diff_prefix_shorter () =
  let stream = fixed_stream 20 in
  let _, a = encode stream in
  let _, b = encode (fixed_stream 12) in
  match Trace.Diff.first_divergence (decode_exn a) (decode_exn b) with
  | None -> Alcotest.fail "length divergence not detected"
  | Some d ->
      Alcotest.(check int) "diverges where the prefix ends" 12 d.Trace.Diff.d_index;
      Alcotest.(check bool) "right side exhausted" true (d.d_right = None)

(* --- recorder metrics ----------------------------------------------------- *)

let test_recorder_metrics () =
  let before = Obs.Metrics.snapshot () in
  let stream = fixed_stream 10 in
  let _, bytes = encode stream in
  let after = Obs.Metrics.snapshot () in
  let d = Obs.Metrics.diff ~before after in
  let j = Obs.Metrics.to_json d in
  let counters = Option.get (Obs.Json.member "counters" j) in
  let counter name =
    match Obs.Json.member name counters with
    | Some v -> Option.get (Obs.Json.to_float_opt v)
    | None -> Alcotest.failf "counter %s not published" name
  in
  Alcotest.(check (float 0.)) "trace.record.events counts entries" 10.
    (counter "trace.record.events");
  Alcotest.(check bool) "trace.record.bytes within container size" true
    (counter "trace.record.bytes" > 0.
    && counter "trace.record.bytes" <= float_of_int (String.length bytes))

let suite =
  ( "trace",
    [
      QCheck_alcotest.to_alcotest qc_varint_roundtrip;
      QCheck_alcotest.to_alcotest qc_zigzag_roundtrip;
      QCheck_alcotest.to_alcotest qc_string_roundtrip;
      QCheck_alcotest.to_alcotest qc_crc_incremental;
      QCheck_alcotest.to_alcotest qc_container_roundtrip;
      QCheck_alcotest.to_alcotest qc_truncation_rejected;
      Alcotest.test_case "corrupt containers rejected" `Quick test_corruption_rejected;
      Alcotest.test_case "monotonic clock enforced" `Quick test_monotonic_clock_enforced;
      Alcotest.test_case "recording is deterministic" `Slow test_recording_deterministic;
      Alcotest.test_case "write-behind materialization matches eager capture" `Slow
        test_write_behind_materialize;
      Alcotest.test_case "trace is self-describing" `Slow test_trace_self_describing;
      Alcotest.test_case "replay byte-identical to live (T1-T8 x 10 configs x 2 seeds)" `Slow
        test_replay_matches_live;
      Alcotest.test_case "diff: identical traces" `Quick test_diff_identical;
      Alcotest.test_case "diff pinpoints first divergent event" `Quick
        test_diff_pinpoints_first_divergence;
      Alcotest.test_case "diff: one trace a prefix of the other" `Quick test_diff_prefix_shorter;
      Alcotest.test_case "recorder metrics published" `Quick test_recorder_metrics;
    ] )
