(** Metrics registry: named counters, gauges and log2-bucket
    histograms.

    Design constraints, in order:

    - The hot path (detector per-access code, VM event dispatch) must
      stay trivial — one domain-local array store per increment, no
      hashing, no allocation.  Handles are created once (registration
      hashes the name and assigns a slot) and incremented through that
      slot.
    - Since the multicore pool ([lib/par/]) runs independent cells on
      several domains at once, every instrument's {e state} is
      domain-local: a handle names a slot, and each domain lazily
      materialises its own slot array via [Domain.DLS].  A cell's
      [snapshot]/[diff] therefore sees exactly the work its own domain
      did — no cross-domain interference, no locks on the hot path —
      and per-cell snapshots combine with {!merge}.
    - Runs happen back-to-back in one process (bench rows, the runner's
      multi-config sweeps), so consumers need per-run deltas from
      domain-global counters: [snapshot] + [diff].
    - Merging snapshots from independent runs must be associative and
      commutative so aggregation order can't change results (tested by
      qcheck in [test/test_obs.ml]): counters and histogram buckets
      add; gauges keep the max.

    Histograms bucket by log2: value [v] lands in bucket
    [bucket_of_value v]; bucket [i] covers [2^(i-1) .. 2^i - 1] (bucket
    0 covers values <= 0 — nothing in this codebase records negatives,
    they are clamped). *)

let buckets = 64

type hist_state = { hs_buckets : int array; mutable hs_count : int; mutable hs_sum : int }

let fresh_hist () = { hs_buckets = Array.make buckets 0; hs_count = 0; hs_sum = 0 }

type counter = { c_name : string; c_slot : int; c_reg : registry }
and gauge = { g_name : string; g_slot : int; g_reg : registry }
and histogram = { h_name : string; h_slot : int; h_reg : registry }

and registry = {
  mutable counters : counter list;
  mutable gauges : gauge list;
  mutable histograms : histogram list;
  n_counters : int ref;  (** slots assigned so far (also sizes new domains' arrays) *)
  n_gauges : int ref;
  n_histograms : int ref;
  c_key : int array Domain.DLS.key;  (** this domain's counter values by slot *)
  g_key : int array Domain.DLS.key;
  h_key : hist_state array Domain.DLS.key;
  tbl : (string, unit) Hashtbl.t;  (* duplicate-name guard *)
  reg_lock : Mutex.t;  (* registration only; never on the hot path *)
}

let create () =
  let n_counters = ref 0 and n_gauges = ref 0 and n_histograms = ref 0 in
  {
    counters = [];
    gauges = [];
    histograms = [];
    n_counters;
    n_gauges;
    n_histograms;
    c_key = Domain.DLS.new_key (fun () -> Array.make (max 8 !n_counters) 0);
    g_key = Domain.DLS.new_key (fun () -> Array.make (max 8 !n_gauges) 0);
    h_key =
      Domain.DLS.new_key (fun () -> Array.init (max 8 !n_histograms) (fun _ -> fresh_hist ()));
    tbl = Hashtbl.create 64;
    reg_lock = Mutex.create ();
  }

(* One process-wide registry (with per-domain state).  Library code
   registers its instruments here at module-init or first use;
   consumers take before/after snapshots and [diff] them. *)
let default = create ()

let check_fresh r name =
  if Hashtbl.mem r.tbl name then
    invalid_arg (Printf.sprintf "Obs.Metrics: duplicate instrument %S" name);
  Hashtbl.replace r.tbl name ()

let registered r f =
  Mutex.lock r.reg_lock;
  match f () with
  | v ->
      Mutex.unlock r.reg_lock;
      v
  | exception e ->
      Mutex.unlock r.reg_lock;
      raise e

let counter ?(registry = default) name =
  registered registry @@ fun () ->
  check_fresh registry name;
  let c = { c_name = name; c_slot = !(registry.n_counters); c_reg = registry } in
  incr registry.n_counters;
  registry.counters <- c :: registry.counters;
  c

let gauge ?(registry = default) name =
  registered registry @@ fun () ->
  check_fresh registry name;
  let g = { g_name = name; g_slot = !(registry.n_gauges); g_reg = registry } in
  incr registry.n_gauges;
  registry.gauges <- g :: registry.gauges;
  g

let histogram ?(registry = default) name =
  registered registry @@ fun () ->
  check_fresh registry name;
  let h = { h_name = name; h_slot = !(registry.n_histograms); h_reg = registry } in
  incr registry.n_histograms;
  registry.histograms <- h :: registry.histograms;
  h

(* This domain's slot array, grown if instruments were registered after
   the array was created (registration happens at module init, so
   growth is once-per-domain cold path at worst). *)
let int_cells key wanted n =
  let a = Domain.DLS.get key in
  if wanted < Array.length a then a
  else begin
    let a' = Array.make (max !n (Array.length a * 2)) 0 in
    Array.blit a 0 a' 0 (Array.length a);
    Domain.DLS.set key a';
    a'
  end

let c_cells c = int_cells c.c_reg.c_key c.c_slot c.c_reg.n_counters
let g_cells g = int_cells g.g_reg.g_key g.g_slot g.g_reg.n_gauges

let h_state h =
  let a = Domain.DLS.get h.h_reg.h_key in
  if h.h_slot < Array.length a then a.(h.h_slot)
  else begin
    let n = max !(h.h_reg.n_histograms) (Array.length a * 2) in
    let a' = Array.init n (fun i -> if i < Array.length a then a.(i) else fresh_hist ()) in
    Domain.DLS.set h.h_reg.h_key a';
    a'.(h.h_slot)
  end

let incr c =
  let a = c_cells c in
  a.(c.c_slot) <- a.(c.c_slot) + 1

let add c n =
  let a = c_cells c in
  a.(c.c_slot) <- a.(c.c_slot) + n

let counter_value c = (c_cells c).(c.c_slot)

let set g v =
  let a = g_cells g in
  a.(g.g_slot) <- v

let gauge_value g = (g_cells g).(g.g_slot)

let bucket_of_value v =
  if v <= 0 then 0
  else
    (* index of the highest set bit, + 1; v=1 -> 1, v=2..3 -> 2, ... *)
    let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + 1) in
    min (buckets - 1) (go v 0)

let observe h v =
  let v = max 0 v in
  let b = bucket_of_value v in
  let st = h_state h in
  st.hs_buckets.(b) <- st.hs_buckets.(b) + 1;
  st.hs_count <- st.hs_count + 1;
  st.hs_sum <- st.hs_sum + v

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type hist_data = { buckets : int array; count : int; sum : int }

type snapshot = {
  s_counters : (string * int) list;
  s_gauges : (string * int) list;
  s_histograms : (string * hist_data) list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot ?(registry = default) () =
  {
    s_counters =
      List.sort by_name (List.map (fun c -> (c.c_name, counter_value c)) registry.counters);
    s_gauges =
      List.sort by_name (List.map (fun g -> (g.g_name, gauge_value g)) registry.gauges);
    s_histograms =
      List.sort by_name
        (List.map
           (fun h ->
             let st = h_state h in
             ( h.h_name,
               { buckets = Array.copy st.hs_buckets; count = st.hs_count; sum = st.hs_sum } ))
           registry.histograms);
  }

let empty = { s_counters = []; s_gauges = []; s_histograms = [] }

(* Merge two sorted assoc lists with a per-value combiner; names in
   either side survive.  Keeping the result sorted keeps merge
   associative/commutative structurally. *)
let rec merge_assoc f xs ys =
  match (xs, ys) with
  | [], l | l, [] -> l
  | (kx, vx) :: xs', (ky, vy) :: ys' ->
      let c = String.compare kx ky in
      if c = 0 then (kx, f vx vy) :: merge_assoc f xs' ys'
      else if c < 0 then (kx, vx) :: merge_assoc f xs' ys
      else (ky, vy) :: merge_assoc f xs ys'

let merge_hist a b =
  {
    buckets = Array.init buckets (fun i -> a.buckets.(i) + b.buckets.(i));
    count = a.count + b.count;
    sum = a.sum + b.sum;
  }

let merge a b =
  {
    s_counters = merge_assoc ( + ) a.s_counters b.s_counters;
    s_gauges = merge_assoc max a.s_gauges b.s_gauges;
    s_histograms = merge_assoc merge_hist a.s_histograms b.s_histograms;
  }

(* [diff ~before after]: per-run delta of the monotonic instruments.
   Counters and histogram buckets subtract (clamped at 0 in case an
   instrument was registered between the snapshots); gauges keep the
   [after] level — a gauge is a level, not a rate. *)
let diff ~before after =
  let sub_c name v = v - (match List.assoc_opt name before.s_counters with Some b -> b | None -> 0) in
  let sub_h name (h : hist_data) =
    match List.assoc_opt name before.s_histograms with
    | None -> h
    | Some b ->
        {
          buckets = Array.init buckets (fun i -> max 0 (h.buckets.(i) - b.buckets.(i)));
          count = max 0 (h.count - b.count);
          sum = max 0 (h.sum - b.sum);
        }
  in
  {
    s_counters = List.map (fun (k, v) -> (k, max 0 (sub_c k v))) after.s_counters;
    s_gauges = after.s_gauges;
    s_histograms = List.map (fun (k, h) -> (k, sub_h k h)) after.s_histograms;
  }

let find_counter s name = List.assoc_opt name s.s_counters
let find_gauge s name = List.assoc_opt name s.s_gauges

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let hist_to_json h =
  (* Sparse bucket encoding: [[bucket, count], ...] for non-empty
     buckets only, so 64 mostly-zero slots don't bloat the output. *)
  let bs = ref [] in
  for i = buckets - 1 downto 0 do
    if h.buckets.(i) > 0 then bs := Json.List [ Json.int i; Json.int h.buckets.(i) ] :: !bs
  done;
  Json.Obj [ ("count", Json.int h.count); ("sum", Json.int h.sum); ("buckets", Json.List !bs) ]

let to_json s =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.int v)) s.s_counters));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.int v)) s.s_gauges));
      ("histograms", Json.Obj (List.map (fun (k, h) -> (k, hist_to_json h)) s.s_histograms));
    ]

let pp ppf s =
  let non_zero = List.filter (fun (_, v) -> v <> 0) in
  Fmt.pf ppf "@[<v>";
  List.iter (fun (k, v) -> Fmt.pf ppf "%-44s %d@," k v) (non_zero s.s_counters);
  List.iter (fun (k, v) -> Fmt.pf ppf "%-44s %d@," k v) (non_zero s.s_gauges);
  List.iter
    (fun (k, h) ->
      if h.count > 0 then
        Fmt.pf ppf "%-44s count=%d sum=%d mean=%.1f@," k h.count h.sum
          (float_of_int h.sum /. float_of_int h.count))
    s.s_histograms;
  Fmt.pf ppf "@]"
