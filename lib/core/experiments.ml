(** Reproduction of every table and figure in the paper's evaluation,
    plus the ablations DESIGN.md calls out.  Each experiment returns a
    rendered text artefact (and structured data where tests need it).

    Index (see DESIGN.md §4): E1 {!fig6}, E2 {!fig5}, E3/E4 are test
    suites, E5 {!fig8}, E6 {!fig4}, E7 {!pools}, E8 {!false_negatives},
    E9 {!perf}, E10 {!bugs}, E11 {!deadlock}, E12 {!alloc}; extra
    ablations: {!segments_ablation}, {!eraser_states_ablation},
    {!baselines}, {!offline_vs_online}. *)

module Vm = Raceguard_vm
module Det = Raceguard_detector
module Sip = Raceguard_sip
module Obs = Raceguard_obs
module Table = Raceguard_util.Table

let default_seed = 7

(* ------------------------------------------------------------------ *)
(* E1 — Figure 6: the eight test cases under three configurations      *)
(* ------------------------------------------------------------------ *)

type fig6_row = {
  tc : string;
  original : int;
  hwlc : int;
  hwlc_dr : int;
  split : Classify.split;
  oracle_failures : int;
}

let fig6_data ?(seed = default_seed) () =
  List.map
    (fun tc ->
      let res = Runner.run_test_case { Runner.default with seed } tc in
      let original = Runner.locations_of res "Original" in
      let hwlc = Runner.locations_of res "HWLC" in
      let hwlc_dr = Runner.locations_of res "HWLC+DR" in
      {
        tc = tc.Sip.Workload.tc_name;
        original = List.length original;
        hwlc = List.length hwlc;
        hwlc_dr = List.length hwlc_dr;
        split = Classify.split ~original ~hwlc ~hwlc_dr;
        oracle_failures =
          (match res.oracle with Some o -> List.length o.r_failures | None -> 0);
      })
    Sip.Workload.all_test_cases

let fig6 ?seed () =
  let rows = fig6_data ?seed () in
  let table =
    List.fold_left
      (fun t r ->
        Table.add_row t
          [
            r.tc;
            string_of_int r.original;
            string_of_int r.hwlc;
            string_of_int r.hwlc_dr;
            Printf.sprintf "%.0f%%" (Classify.reduction_pct r.split);
          ])
      (Table.create
         ~headers:[ "Test case"; "Original"; "HWLC"; "HWLC+DR"; "reduction" ]
         ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
         ())
      rows
  in
  "Figure 6 — reported possible-data-race locations per test case\n"
  ^ "(paper: T1 483/448/120 ... T8 357/270/78; reductions 65-81%)\n\n"
  ^ Table.render table

(** Robustness of the Figure 6 result across schedules: the paper ran
    each test case once; we can rerun the whole suite under several
    random schedules and check that the orderings and the reduction
    band are schedule-independent. *)
let fig6_stability ?(seeds = [ 7; 11; 23 ]) () =
  let per_seed = List.map (fun seed -> (seed, fig6_data ~seed ())) seeds in
  let table =
    List.fold_left
      (fun t (seed, rows) ->
        let reductions = List.map (fun r -> Classify.reduction_pct r.split) rows in
        let lo = List.fold_left min 100.0 reductions in
        let hi = List.fold_left max 0.0 reductions in
        let ordering_ok =
          List.for_all (fun r -> r.hwlc < r.original && r.hwlc_dr < r.hwlc) rows
        in
        let oracle_ok = List.for_all (fun r -> r.oracle_failures = 0) rows in
        Table.add_row t
          [
            string_of_int seed;
            Printf.sprintf "%.0f-%.0f%%" lo hi;
            (if ordering_ok then "yes" else "NO");
            (if oracle_ok then "yes" else "NO");
          ])
      (Table.create
         ~headers:[ "seed"; "reduction range"; "Original>HWLC>HWLC+DR"; "oracle clean" ]
         ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right ]
         ())
      per_seed
  in
  "Figure 6 robustness — the whole suite under several random schedules\n\n"
  ^ Table.render table
  ^ "\n\n(The paper's 65-81% band and per-case orderings are properties of\n\
     the workload, not of one lucky schedule.)"

(* ------------------------------------------------------------------ *)
(* E2 — Figure 5: stacked split of the Original population             *)
(* ------------------------------------------------------------------ *)

let fig5 ?seed () =
  let rows = fig6_data ?seed () in
  let bars =
    List.map
      (fun r ->
        ( r.tc,
          [ r.split.Classify.remaining; r.split.Classify.destructor_fp; r.split.Classify.hw_lock_fp ] ))
      rows
  in
  Table.render_stacked_bars
    ~title:
      "Figure 5 — composition of reported locations per test case\n\
       (bottom-to-top: reported by HWLC+DR; destructor FPs; hardware-lock FPs)"
    ~segments:[ ("remaining (HWLC+DR)", '#'); ("destructor FP", 'd'); ("hw-lock FP", 'h') ]
    ~rows:bars ~max_width:60

(* ------------------------------------------------------------------ *)
(* E5 — Figure 8/9: the reference-counted string                       *)
(* ------------------------------------------------------------------ *)

let fig8 ?(seed = default_seed) () =
  let run name hconfig =
    let cfg =
      { Runner.default with seed; helgrind_configs = [ (name, hconfig) ] }
    in
    let res, _ = Runner.run_main cfg Scenarios.stringtest in
    Runner.locations_of res name
  in
  let orig = run "Original" Det.Helgrind.original in
  let hwlc = run "HWLC" Det.Helgrind.hwlc in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Figure 8/9 - stringtest.cpp: shared std::string with bus-locked refcount\n\n";
  Buffer.add_string buf
    (Printf.sprintf "Original bus-lock model (mutex): %d location(s) reported\n"
       (List.length orig));
  List.iter
    (fun (r, _) -> Buffer.add_string buf (Fmt.str "%a\n" Det.Report.pp r))
    orig;
  Buffer.add_string buf
    (Printf.sprintf "\nCorrected rw-lock model (HWLC):  %d location(s) reported\n"
       (List.length hwlc));
  List.iter
    (fun (r, _) -> Buffer.add_string buf (Fmt.str "%a\n" Det.Report.pp r))
    hwlc;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* E6 — Figure 4: the automatic delete annotation (MiniC++ pipeline)   *)
(* ------------------------------------------------------------------ *)

let figure4_source =
  {|// g.mcc - the Figure 4 example, MiniC++ rendering
class Buffer {
  var refs;
  var size;
  fn ~Buffer() { this.size = 0; }
}
class SharedBuffer : Buffer {
  var tag;
  fn ~SharedBuffer() { this.tag = 0; }
}

fn g(p) {
  delete p;
  return 0;
}

fn worker(p, m) {
  lock (m) { p.refs = p.refs + 1; }
  return 0;
}

fn main() {
  var m = mutex("refs_guard");
  var p = new SharedBuffer();
  p.refs = 1;
  p.size = 64;
  p.tag = 7;
  var t = spawn worker(p, m);
  lock (m) { p.refs = p.refs - 1; }
  join(t);
  g(p);
  return 0;
}
|}

let fig4 ?(seed = default_seed) () =
  let module M = Raceguard_minicc in
  let run ~annotate =
    let interp, pretty, n_annotated =
      M.Interp.compile ~annotate ~file:"g.mcc" figure4_source
    in
    let h = Det.Helgrind.create Det.Helgrind.hwlc_dr in
    let vm =
      Vm.Engine.create ~config:{ Vm.Engine.default_config with seed } ()
    in
    Vm.Engine.add_tool vm (Det.Helgrind.tool h);
    let outcome = Vm.Engine.run vm (fun () -> M.Interp.run_main interp) in
    assert (outcome.failures = []);
    (pretty, n_annotated, Det.Helgrind.location_count h)
  in
  let _, _, n_plain = run ~annotate:false in
  let pretty, n_annotated, n_instr = run ~annotate:true in
  Printf.sprintf
    "Figure 4 - automatic annotation of delete operations (MiniC++ pipeline)\n\n\
     uninstrumented build: %d destructor false-positive location(s)\n\
     instrumented build:   %d location(s)  (%d delete(s) annotated)\n\n\
     --- annotated source as fed to the compiler ---\n%s"
    n_plain n_instr n_annotated pretty

(* ------------------------------------------------------------------ *)
(* E7 — Figures 10/11 + §4.2.3: thread pools vs thread-per-request     *)
(* ------------------------------------------------------------------ *)

let pools ?(seed = default_seed) () =
  let count scenario =
    let cfg =
      {
        Runner.default with
        seed;
        helgrind_configs = [ ("HWLC+DR", Det.Helgrind.hwlc_dr) ];
      }
    in
    let res, _ = Runner.run_main cfg scenario in
    Runner.locations_of res "HWLC+DR"
  in
  let per_request = count Scenarios.handoff_per_request in
  let pool = count Scenarios.handoff_pool in
  let run_tc pattern =
    let cfg =
      {
        Runner.default with
        seed;
        helgrind_configs = [ ("HWLC+DR", Det.Helgrind.hwlc_dr) ];
        server = { Runner.default.server with pattern };
      }
    in
    let res = Runner.run_test_case cfg Sip.Workload.t2 in
    ( List.length (Runner.locations_of res "HWLC+DR"),
      match res.oracle with Some o -> List.length o.r_failures | None -> -1 )
  in
  let tpr_count, tpr_fail = run_tc Sip.Proxy.Per_request in
  let pool_count, pool_fail = run_tc (Sip.Proxy.Pool 4) in
  Printf.sprintf
    "Figures 10/11 + §4.2.3 — ownership transfer vs the lock-set algorithm\n\n\
     micro handoff, thread-per-request (Figure 10): %d location(s)\n\
     micro handoff, via message queue (Figure 11):  %d location(s)\n\n\
     SIP test case T2, thread-per-request: %d location(s), oracle failures %d\n\
     SIP test case T2, thread pool (4):    %d location(s), oracle failures %d\n\n\
     The queue's put/get ordering is real but invisible to the lock-set\n\
     algorithm, so the pool configuration reports more false positives\n\
     even with both paper improvements enabled.\n"
    (List.length per_request) (List.length pool) tpr_count tpr_fail pool_count pool_fail

(* ------------------------------------------------------------------ *)
(* Extension — §5 future work: higher-level synchronisation            *)
(* ------------------------------------------------------------------ *)

(** "Common concurrent patterns often rely on higher level constructs
    for synchronization that the lock-set algorithm is unaware of" —
    the paper's closing future-work item, implemented here: message
    queues in the instrumented build emit
    [ANNOTATE_HAPPENS_BEFORE]/[_AFTER] client requests around put/get,
    and the extended detector turns them into thread-segment edges, so
    ownership transfer through queues is recognised exactly like
    transfer through thread creation. *)
let queue_annotations ?(seed = default_seed) () =
  let micro config =
    let cfg = { Runner.default with seed; helgrind_configs = [ ("c", config) ] } in
    let res, _ = Runner.run_main cfg Scenarios.handoff_pool in
    Runner.location_count res "c"
  in
  let server config =
    let cfg =
      {
        Runner.default with
        seed;
        helgrind_configs = [ ("c", config) ];
        server = { Runner.default.server with pattern = Sip.Proxy.Pool 4 };
      }
    in
    let res = Runner.run_test_case cfg Sip.Workload.t2 in
    ( Runner.location_count res "c",
      match res.oracle with Some o -> List.length o.r_failures | None -> -1 )
  in
  let micro_plain = micro Det.Helgrind.hwlc_dr in
  let micro_hb = micro Det.Helgrind.hwlc_dr_hb in
  let pool_plain, f1 = server Det.Helgrind.hwlc_dr in
  let pool_hb, f2 = server Det.Helgrind.hwlc_dr_hb in
  Printf.sprintf
    "§5 extension — queue-aware detection via HAPPENS_BEFORE annotations\n\n\
     Figure 11 micro handoff, HWLC+DR:      %3d location(s)\n\
     Figure 11 micro handoff, HWLC+DR+HB:   %3d location(s)\n\
     SIP T2 in pool mode,     HWLC+DR:      %3d location(s) (oracle failures %d)\n\
     SIP T2 in pool mode,     HWLC+DR+HB:   %3d location(s) (oracle failures %d)\n\n\
     The annotated message queue makes put/get ownership transfer\n\
     visible to the thread-segment graph, removing the thread-pool\n\
     false positives of §4.2.3 without weakening the lock-set check\n\
     anywhere else.\n"
    micro_plain micro_hb pool_plain f1 pool_hb f2

(* ------------------------------------------------------------------ *)
(* E8 — §4.3: false negatives of delayed lock-set initialisation       *)
(* ------------------------------------------------------------------ *)

let false_negatives ?(seeds = 40) () =
  let detected config seed =
    let cfg =
      { Runner.default with seed; helgrind_configs = [ ("cfg", config) ] }
    in
    let res, _ = Runner.run_main cfg Scenarios.false_negative_schedule in
    Runner.location_count res "cfg" > 0
  in
  let djit_detected seed =
    let cfg =
      { Runner.default with seed; helgrind_configs = []; run_djit = true }
    in
    let res, _ = Runner.run_main cfg Scenarios.false_negative_schedule in
    match res.djit with Some d -> Det.Djit.location_count d > 0 | None -> false
  in
  let count f = List.length (List.filter f (List.init seeds (fun i -> i + 1))) in
  let with_states = count (detected Det.Helgrind.hwlc_dr) in
  let pure = count (detected Det.Helgrind.pure_eraser) in
  let djit = count djit_detected in
  Printf.sprintf
    "§4.3 — false negatives from delayed lock-set initialisation\n\n\
     program: thread A writes v unlocked; thread B writes v holding a lock.\n\
     %d random schedules:\n\n\
     Helgrind (states, HWLC+DR):  detected in %2d/%d schedules (order-dependent)\n\
     pure Eraser (no states):     detected in %2d/%d schedules\n\
     DJIT (happens-before):       detected in %2d/%d schedules\n\n\
     The state machine trades initialisation false positives for\n\
     schedule-dependent false negatives; rerunning with different\n\
     schedules (seeds) recovers the missed races.\n"
    seeds with_states seeds pure seeds djit seeds

(* ------------------------------------------------------------------ *)
(* Extension — systematic schedule exploration for §4.3                *)
(* ------------------------------------------------------------------ *)

(** Upgrade "repeated tests with different test data (resulting in
    different interleavings) could help find such data-races" from
    hope to procedure: a CHESS-style bounded search over scheduler
    decisions finds the §4.3 miss deterministically. *)
let explore () =
  let instantiate scenario ~policy =
    let vm =
      Vm.Engine.create ~config:{ Vm.Engine.default_config with policy } ()
    in
    let h = Det.Helgrind.create Det.Helgrind.hwlc_dr in
    Vm.Engine.add_tool vm (Det.Helgrind.tool h);
    let execute () =
      let _ = Vm.Engine.run vm scenario in
      vm
    in
    let check _vm =
      if Det.Helgrind.location_count h > 0 then Some (Det.Helgrind.locations h) else None
    in
    (execute, check)
  in
  let found = Vm.Explore.search ~max_depth:24 ~max_runs:500 (instantiate Scenarios.false_negative_schedule) in
  (* random baseline: how many seeds until the same race is seen? *)
  let random_runs =
    let rec go seed =
      if seed > 500 then 500
      else begin
        let cfg =
          { Runner.default with seed; helgrind_configs = [ ("c", Det.Helgrind.hwlc_dr) ] }
        in
        let res, _ = Runner.run_main cfg Scenarios.false_negative_schedule in
        if Runner.location_count res "c" > 0 then seed else go (seed + 1)
      end
    in
    go 1
  in
  (* sanity: a disciplined program exhausts without a witness *)
  let clean () =
    let loc = Raceguard_util.Loc.v "clean.c" "main" 1 in
    let module Api = Vm.Api in
    let v = Api.alloc ~loc 1 in
    let m = Api.Mutex.create ~loc "m" in
    let w () = Api.Mutex.with_lock ~loc m (fun () -> Api.write ~loc v 1) in
    let t1 = Api.spawn ~loc ~name:"a" w in
    let t2 = Api.spawn ~loc ~name:"b" w in
    Api.join ~loc t1;
    Api.join ~loc t2
  in
  let none = Vm.Explore.search ~max_depth:4 ~max_runs:500 (instantiate clean) in
  Printf.sprintf
    "extension — systematic schedule exploration (§4.3 upgraded)\n\n\
     program: thread A writes v unlocked; thread B writes v under a lock.\n\
     Helgrind (HWLC+DR) misses the race on schedules that run A first.\n\n\
     systematic search: witness found after %d run(s)%s\n\
     random reruns:     first witness at seed %d\n\n\
     control (properly locked program): %d run(s), no witness,\n\
     first 4 decision points %s\n"
    found.Vm.Explore.runs
    (match found.Vm.Explore.witness_script with
    | Some s ->
        Printf.sprintf " (decision script [%s])"
          (String.concat ";" (Array.to_list (Array.map string_of_int s)))
    | None -> " — NOT FOUND")
    random_runs none.Vm.Explore.runs
    (if none.Vm.Explore.exhausted then "exhausted" else "not exhausted")

(* ------------------------------------------------------------------ *)
(* E10 — §4.1: the injected real bugs                                  *)
(* ------------------------------------------------------------------ *)

let bugs ?(seed = default_seed) ?(sweep = 5) () =
  let found_in_run seed =
    let cfg =
      {
        Runner.default with
        seed;
        helgrind_configs = [ ("HWLC+DR", Det.Helgrind.hwlc_dr) ];
        server = { Runner.default.server with enable_watchdog = true };
      }
    in
    let res = Runner.run_test_case cfg Sip.Workload.t4 in
    Classify.bugs_found (Runner.locations_of res "HWLC+DR")
  in
  let runs = List.init sweep (fun i -> found_in_run (seed + i)) in
  let table =
    List.fold_left
      (fun t bug ->
        let hits = List.length (List.filter (fun found -> List.mem bug found) runs) in
        Table.add_row t
          [
            Sip.Bugs.to_string bug;
            Printf.sprintf "%d/%d" hits sweep;
            Sip.Bugs.description bug;
          ])
      (Table.create
         ~headers:[ "bug"; "runs detected"; "description" ]
         ~aligns:[ Table.Left; Table.Right; Table.Left ]
         ())
      Sip.Bugs.all
  in
  "§4.1 — true positives: injected bugs found by the detector (test case T4,\n"
  ^ Printf.sprintf "watchdog enabled, %d random schedules)\n\n" sweep
  ^ Table.render table
  ^ "\n\nNote: B2 (initialisation order) is schedule-dependent — the paper's\n\
     authors found it through a changed schedule, not a direct report.\n"

(* ------------------------------------------------------------------ *)
(* E12 — allocator reuse (the GNU pool allocator issue, §4)            *)
(* ------------------------------------------------------------------ *)

let alloc ?(seed = default_seed) () =
  let run mode =
    let cfg =
      {
        Runner.default with
        seed;
        helgrind_configs = [ ("HWLC+DR", Det.Helgrind.hwlc_dr) ];
        server = { Runner.default.server with alloc_mode = mode };
      }
    in
    let res = Runner.run_test_case cfg Sip.Workload.t6 in
    List.length (Runner.locations_of res "HWLC+DR")
  in
  let direct = run Raceguard_cxxsim.Allocator.Direct in
  let pooled = run Raceguard_cxxsim.Allocator.Pooled in
  Printf.sprintf
    "§4 — container allocator strategy (test case T6, HWLC+DR)\n\n\
     GLIBCXX_FORCE_NEW (every node malloc'd):   %3d location(s)\n\
     default pool allocator (silent reuse):     %3d location(s)\n\n\
     The pool recycles node memory without malloc/free events, so shadow\n\
     state leaks across logical lifetimes; the paper had to disable the\n\
     GNU allocator's pooling via environment variables before running\n\
     Helgrind.\n"
    direct pooled

(* ------------------------------------------------------------------ *)
(* Ablations: thread segments, Eraser states, baselines                *)
(* ------------------------------------------------------------------ *)

let segments_ablation ?(seed = default_seed) () =
  let run_tc config =
    let cfg = { Runner.default with seed; helgrind_configs = [ ("cfg", config) ] } in
    let res = Runner.run_test_case cfg Sip.Workload.t1 in
    List.length (Runner.locations_of res "cfg")
  in
  let run_micro config =
    let cfg = { Runner.default with seed; helgrind_configs = [ ("cfg", config) ] } in
    let res, _ = Runner.run_main cfg Scenarios.handoff_per_request in
    Runner.location_count res "cfg"
  in
  (* measured under HWLC without DR: the handoff pattern's extra reports
     include the ctx destructor writes, which DR would also suppress *)
  let with_ts_tc = run_tc Det.Helgrind.hwlc in
  let without_ts_tc = run_tc { Det.Helgrind.hwlc with thread_segments = false } in
  let with_ts_micro = run_micro Det.Helgrind.hwlc in
  let without_ts_micro = run_micro { Det.Helgrind.hwlc with thread_segments = false } in
  Printf.sprintf
    "ablation — VisualThreads thread segments (HWLC configuration)\n\n\
     Figure 10 micro handoff, with segments:    %3d location(s)\n\
     Figure 10 micro handoff, without segments: %3d location(s)\n\
     SIP test case T1, with segments:           %3d location(s)\n\
     SIP test case T1, without segments:        %3d location(s)\n\n\
     Without segment tracking the producer->worker handoff of the\n\
     thread-per-request pattern (Figure 10) is reported even though\n\
     thread creation orders the accesses.\n"
    with_ts_micro without_ts_micro with_ts_tc without_ts_tc

let eraser_states_ablation ?(seed = default_seed) () =
  let run config =
    let cfg = { Runner.default with seed; helgrind_configs = [ ("cfg", config) ] } in
    let res = Runner.run_test_case cfg Sip.Workload.t3 in
    List.length (Runner.locations_of res "cfg")
  in
  let with_states = run Det.Helgrind.original in
  let pure = run Det.Helgrind.pure_eraser in
  Printf.sprintf
    "ablation — the Figure 1 state machine (test case T3, Original config)\n\n\
     Eraser with states:          %3d location(s)\n\
     pure Eraser (no states):     %3d location(s)\n\n\
     Without the NEW/EXCLUSIVE/SHARED states every initialisation write\n\
     and read-shared access empties a lock-set (\"results in too many\n\
     false positives\", §2.3.2).\n"
    with_states pure

let baselines ?(seed = default_seed) () =
  (* run Helgrind, DJIT and the true hybrid tool on the same stream *)
  let vm_config = { Vm.Engine.default_config with seed } in
  let vm = Vm.Engine.create ~config:vm_config () in
  let helgrind = Det.Helgrind.create Det.Helgrind.hwlc_dr in
  let djit = Det.Djit.create () in
  let hybrid = Det.Hybrid.create () in
  let racetrack = Det.Racetrack.create () in
  Vm.Engine.add_tool vm (Det.Helgrind.tool helgrind);
  Vm.Engine.add_tool vm (Det.Djit.tool djit);
  Vm.Engine.add_tool vm (Det.Hybrid.tool hybrid);
  Vm.Engine.add_tool vm (Det.Racetrack.tool racetrack);
  let transport = Sip.Transport.create () in
  let _ =
    Vm.Engine.run vm (fun () ->
        ignore
          (Sip.Workload.run_test_case ~transport ~server_config:Runner.default.server
             Sip.Workload.t2 ()))
  in
  Printf.sprintf
    "§2.2 — lock-set vs happens-before vs hybrids on the same execution (T2)\n\n\
     Helgrind (HWLC+DR) locations:          %3d\n\
     DJIT (vector clocks, first-only):      %3d\n\
     hybrid (lock-set gated by HB):         %3d\n\
     RaceTrack-style adaptive [16]:         %3d\n\n\
     DJIT sees only apparent races on this schedule and stops at the\n\
     first report per location; the lock-set algorithm flags every\n\
     locking-discipline violation on the execution path, including ones\n\
     that did not race this time; the hybrid (Multi-Race-style) keeps a\n\
     lock-set warning only when the access is provably concurrent; the\n\
     adaptive detector additionally re-privatises locations whose\n\
     threadset prunes back to one thread.\n"
    (Det.Helgrind.location_count helgrind)
    (Det.Djit.location_count djit)
    (Det.Hybrid.location_count hybrid)
    (Det.Racetrack.location_count racetrack)

(* ------------------------------------------------------------------ *)
(* E9 — §4.5: performance                                              *)
(* ------------------------------------------------------------------ *)

let time_run f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let median l =
  let a = Array.of_list (List.sort compare l) in
  a.(Array.length a / 2)

let perf ?(seed = default_seed) ?(reps = 3) () =
  let workload () = Scenarios.handoff_per_request () in
  ignore workload;
  let run_with tools =
    let samples =
      List.init reps (fun i ->
          let cfg =
            {
              Runner.default with
              seed = seed + i;
              helgrind_configs = tools;
              run_djit = false;
            }
          in
          let t, _ = time_run (fun () -> Runner.run_test_case cfg Sip.Workload.t2) in
          t)
    in
    median samples
  in
  (* native: the workload logic without the VM — a pure OCaml analogue
     doing the same arithmetic over a plain array, for the 8-10x
     "program on the bare VM" comparison *)
  let native_analogue () =
    let a = Array.make 4096 0 in
    let acc = ref 0 in
    for k = 0 to 200_000 do
      let i = k land 4095 in
      a.(i) <- a.(i) + k;
      acc := !acc + a.(i)
    done;
    !acc
  in
  let native_t, _ = time_run (fun () -> native_analogue ()) in
  let bare = run_with [] in
  let helgrind = run_with [ ("HWLC+DR", Det.Helgrind.hwlc_dr) ] in
  let helgrind_slow =
    run_with [ ("HWLC+DR", { Det.Helgrind.hwlc_dr with fast_path = false }) ]
  in
  (* hot-path counters from one instrumented run, read from the
     process-global metrics registry (the single stats path — no more
     per-instance counter reads or Lockset.stats here) *)
  let run_metrics =
    let before = Obs.Metrics.snapshot () in
    let h = Det.Helgrind.create Det.Helgrind.hwlc_dr in
    let vm = Vm.Engine.create ~config:{ Vm.Engine.default_config with seed } () in
    Vm.Engine.add_tool vm (Det.Helgrind.tool h);
    let transport = Sip.Transport.create () in
    let _ =
      Vm.Engine.run vm (fun () ->
          ignore
            (Sip.Workload.run_test_case ~transport ~server_config:Runner.default.server
               Sip.Workload.t2 ()))
    in
    Obs.Metrics.diff ~before (Obs.Metrics.snapshot ())
  in
  let m name = Option.value ~default:0 (Obs.Metrics.find_counter run_metrics name) in
  let g name = Option.value ~default:0 (Obs.Metrics.find_gauge run_metrics name) in
  let checked = m "detector.helgrind.accesses_checked" in
  let fast_hits = m "detector.helgrind.fast_path_hits" in
  (* gauges are levels, so these read as process-global totals — the
     same semantics Lockset.stats always had *)
  let interned = g "detector.lockset.interned" in
  let memo_entries = g "detector.lockset.inter_memo_entries" in
  let memo_hits = m "detector.lockset.inter_memo_hits" in
  let memo_misses = m "detector.lockset.inter_memo_misses" in
  let all3 =
    run_with
      [
        ("Original", Det.Helgrind.original);
        ("HWLC", Det.Helgrind.hwlc);
        ("HWLC+DR", Det.Helgrind.hwlc_dr);
      ]
  in
  (* offline: record the trace, then replay through the detector *)
  let offline_record_t, (rec_len, rec_words, replay_t, offline_locs) =
    time_run (fun () ->
        let recorder = Det.Offline.create_recorder () in
        let vm = Vm.Engine.create ~config:{ Vm.Engine.default_config with seed } () in
        Vm.Engine.add_tool vm (Det.Offline.tool recorder);
        let transport = Sip.Transport.create () in
        let _ =
          Vm.Engine.run vm (fun () ->
              ignore
                (Sip.Workload.run_test_case ~transport
                   ~server_config:Runner.default.server Sip.Workload.t2 ()))
        in
        let h = Det.Helgrind.create Det.Helgrind.hwlc_dr in
        let replay_t, () = time_run (fun () -> Det.Offline.replay recorder (Det.Helgrind.tool h)) in
        ( Det.Offline.length recorder,
          Det.Offline.footprint_words recorder,
          replay_t,
          Det.Helgrind.location_count h ))
  in
  Printf.sprintf
    "§4.5 — performance of the debugging process (test case T2, median of %d)\n\n\
     native analogue (no VM):          %8.4f s   (reference computation)\n\
     VM, no tools:                     %8.4f s   (x%.1f vs bare VM)\n\
     VM + Helgrind (HWLC+DR):          %8.4f s   (x%.2f vs bare VM)\n\
     ... with the fast path disabled:  %8.4f s   (x%.2f vs bare VM)\n\
     VM + 3 configurations at once:    %8.4f s   (x%.2f vs bare VM)\n\n\
     hot path: %d/%d accesses (%.1f%%) answered by the shadow stamp;\n\
     lockset intern table: %d sets, %d memoised intersections\n\
     (%d hits / %d misses)\n\n\
     offline mode: record %d events (~%d kwords of log), then replay:\n\
     record %.4f s + replay %.4f s; replay found %d locations\n\n\
     Paper context: Valgrind alone slows execution 8-10x, Helgrind on top\n\
     20-30x.  Our VM's per-op cost replaces binary translation, so the\n\
     bare-VM factor differs, but the detector-on-top overhead and the\n\
     online/offline trade-off reproduce.\n"
    reps native_t bare 1.0 helgrind (helgrind /. bare) helgrind_slow
    (helgrind_slow /. bare) all3 (all3 /. bare) fast_hits checked
    (100.0 *. float_of_int fast_hits /. float_of_int (max 1 checked))
    interned memo_entries memo_hits memo_misses rec_len (rec_words / 1024)
    offline_record_t replay_t offline_locs
  ^ Fmt.str "@\nmetrics registry (delta of the instrumented run):@\n%a" Obs.Metrics.pp run_metrics

(* ------------------------------------------------------------------ *)
(* E11 — deadlock detection                                            *)
(* ------------------------------------------------------------------ *)

let deadlock ?(seed = default_seed) () =
  (* predictive: inversion without a runtime deadlock *)
  let cfg =
    { Runner.default with seed; helgrind_configs = []; run_lock_order = true }
  in
  let res, _ = Runner.run_main cfg (Scenarios.lock_order_inversion ~force_deadlock:false) in
  let predicted =
    match res.lock_order with Some l -> Det.Lock_order.locations l | None -> []
  in
  (* runtime: force the interleaving that actually deadlocks *)
  let cfg2 =
    {
      Runner.default with
      seed;
      policy = Vm.Engine.Round_robin;
      helgrind_configs = [];
    }
  in
  let res2, _ = Runner.run_main cfg2 (Scenarios.lock_order_inversion ~force_deadlock:true) in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "§3.3 — deadlock detection by the race checker\n\n";
  Buffer.add_string buf
    (Printf.sprintf "predictive lock-order analysis: %d inversion(s) flagged\n"
       (List.length predicted));
  List.iter (fun (r, _) -> Buffer.add_string buf (Fmt.str "%a\n" Det.Report.pp r)) predicted;
  (match res2.outcome.deadlock with
  | Some d -> Buffer.add_string buf (Fmt.str "\nruntime detection:\n%a" Vm.Engine.pp_deadlock d)
  | None ->
      Buffer.add_string buf "\nruntime detection: schedule avoided the deadlock this run\n");
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let all : (string * string * (unit -> string)) list =
  [
    ("fig6", "E1: Figure 6 table — 8 test cases x 3 configurations", fun () -> fig6 ());
    ("fig5", "E2: Figure 5 stacked composition of reports", fun () -> fig5 ());
    ("fig6x", "E1 robustness: Figure 6 across several schedules", fun () -> fig6_stability ());
    ("fig8", "E5: Figure 8/9 refcounted string bus-lock FP", fun () -> fig8 ());
    ("fig4", "E6: Figure 4 automatic delete annotation (MiniC++)", fun () -> fig4 ());
    ("pools", "E7: Figures 10/11 thread pools vs thread-per-request", fun () -> pools ());
    ("hb", "extension (§5): queue-aware detection via HB annotations", fun () -> queue_annotations ());
    ("fneg", "E8: §4.3 schedule-dependent false negatives", fun () -> false_negatives ());
    ("explore", "extension: systematic schedule search for §4.3", fun () -> explore ());
    ("bugs", "E10: §4.1 injected real bugs ground truth", fun () -> bugs ());
    ("alloc", "E12: §4 allocator reuse false positives", fun () -> alloc ());
    ("segments", "ablation: thread segments on/off", fun () -> segments_ablation ());
    ("states", "ablation: Eraser state machine on/off", fun () -> eraser_states_ablation ());
    ("baselines", "§2.2: lock-set vs DJIT vs hybrid", fun () -> baselines ());
    ("perf", "E9: §4.5 performance / online vs offline", fun () -> perf ());
    ("deadlock", "E11: §3.3 deadlock detection", fun () -> deadlock ());
  ]
