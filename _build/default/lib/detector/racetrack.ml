(** RaceTrack-style adaptive detection — the paper's citation [16]
    (Yu, Rodeheffer & Chen, "RaceTrack: efficient detection of data
    race conditions via adaptive tracking", SOSP 2005).

    Per memory location the detector keeps a {e threadset}: the set of
    (thread, clock) stamps of accesses not yet ordered-before the
    current access by the happens-before relation.  On each access the
    set is pruned with vector clocks; while it holds at most one thread
    the location is effectively exclusive and the candidate lock-set
    stays at ⊤, so initialisation, read-sharing {e and ownership
    transfer through any synchronisation} (including the queue handoffs
    of §4.2.3 — via lock edges and, configurably, cond/sem edges) are
    accepted without annotations.  Only while the threadset is
    genuinely concurrent does lock-set refinement and checking run.

    The trade-off mirrors the paper's §2.2 discussion: RaceTrack
    removes the lock-set algorithm's residual false positives at the
    price of the happens-before family's schedule dependence. *)

module Vm = Raceguard_vm
open Vm.Event

type config = {
  hb : Hb_clocks.config;
  bus_model : Helgrind.bus_model;  (** same semantics as in {!Helgrind} *)
  report_reads : bool;
}

let default_config =
  { hb = Hb_clocks.default_config; bus_model = Helgrind.Rw_lock; report_reads = true }

type cell = {
  mutable lockset : Lockset.t;
  mutable threadset : (int * int) list;  (** (tid, clock) stamps *)
}

type thread_locks = { mutable held_any : int list; mutable held_write : int list }

type t = {
  config : config;
  clocks : Hb_clocks.t;
  shadow : (int, cell) Hashtbl.t;
  locks : (int, thread_locks) Hashtbl.t;
  lock_names : (int, string) Hashtbl.t;
  collector : Report.collector;
  mutable benign : (int * int) list;
}

let create ?(config = default_config) ?(suppressions = []) () =
  {
    config;
    clocks = Hb_clocks.create ~config:config.hb ();
    shadow = Hashtbl.create 65536;
    locks = Hashtbl.create 64;
    lock_names = Hashtbl.create 64;
    collector = Report.collector ~suppressions ();
    benign = [];
  }

let reports t = Report.occurrences t.collector
let locations t = Report.locations t.collector
let location_count t = Report.location_count t.collector
let collector t = t.collector

let thread_locks t tid =
  match Hashtbl.find_opt t.locks tid with
  | Some l -> l
  | None ->
      let l = { held_any = []; held_write = [] } in
      Hashtbl.replace t.locks tid l;
      l

let cell t addr =
  match Hashtbl.find_opt t.shadow addr with
  | Some c -> c
  | None ->
      let c = { lockset = Lockset.top; threadset = [] } in
      Hashtbl.replace t.shadow addr c;
      c

let is_benign t addr = List.exists (fun (b, l) -> addr >= b && addr < b + l) t.benign

let effective_sets t tid ~atomic =
  let l = thread_locks t tid in
  let with_bus cond set = if cond then Lock_id.bus :: set else set in
  let any =
    match t.config.bus_model with
    | Helgrind.Rw_lock -> with_bus true l.held_any
    | Helgrind.Locked_mutex -> with_bus atomic l.held_any
  in
  let write = with_bus atomic l.held_write in
  (Lockset.of_list any, Lockset.of_list write)

let name_of t uid =
  match Hashtbl.find_opt t.lock_names uid with
  | Some n -> Printf.sprintf "%S" n
  | None -> Printf.sprintf "lock#%d" uid

let report t (ctx : Vm.Tool.ctx) ~kind ~tid ~addr ~loc (c : cell) =
  let block =
    match ctx.block_of addr with
    | Some (b : Vm.Memory.block) ->
        Some
          { Report.b_base = b.base; b_len = b.len; b_alloc_tid = b.alloc_tid; b_alloc_stack = b.alloc_stack }
    | None -> None
  in
  Report.add t.collector
    {
      Report.kind;
      addr;
      tid;
      thread_name = ctx.thread_name tid;
      stack = loc :: ctx.stack_of tid;
      detail =
        Fmt.str "Threadset of %d concurrent thread(s); candidate set %a"
          (List.length c.threadset)
          (Lockset.pp ~name_of:(name_of t))
          c.lockset;
      block;
      clock = ctx.clock ();
    }

type access = Read | Write

let check_access t ctx ~access ~tid ~addr ~atomic ~loc =
  let c = cell t addr in
  (* prune stamps that happen-before this access *)
  c.threadset <-
    List.filter
      (fun (u, clk) -> not (Hb_clocks.ordered_before t.clocks ~tid:u ~clk ~now:tid))
      c.threadset;
  c.threadset <-
    (tid, Hb_clocks.clock_of t.clocks tid) :: List.remove_assoc tid c.threadset;
  if List.length c.threadset <= 1 then
    (* effectively exclusive again: adaptive reset *)
    c.lockset <- Lockset.top
  else begin
    let any_set, write_set = effective_sets t tid ~atomic in
    let ls =
      match access with
      | Read -> Lockset.inter c.lockset any_set
      | Write -> Lockset.inter c.lockset write_set
    in
    c.lockset <- ls;
    if Lockset.is_empty ls && not (is_benign t addr) then
      match access with
      | Write -> report t ctx ~kind:Report.Race_write ~tid ~addr ~loc c
      | Read -> if t.config.report_reads then report t ctx ~kind:Report.Race_read ~tid ~addr ~loc c
  end

let acquire t tid uid mode =
  let l = thread_locks t tid in
  l.held_any <- uid :: l.held_any;
  match mode with
  | Vm.Eff.Write_mode -> l.held_write <- uid :: l.held_write
  | Vm.Eff.Read_mode -> ()

let release t tid uid =
  let remove_one xs =
    let rec go = function [] -> [] | x :: rest -> if x = uid then rest else x :: go rest in
    go xs
  in
  let l = thread_locks t tid in
  l.held_any <- remove_one l.held_any;
  l.held_write <- remove_one l.held_write

let on_event t (ctx : Vm.Tool.ctx) (e : Vm.Event.t) =
  (* clocks first: an acquire's edge must be visible to the accesses
     that follow it, and the access pruning below reads them *)
  Hb_clocks.on_event t.clocks e;
  match e with
  | E_read { tid; addr; atomic; loc; _ } -> check_access t ctx ~access:Read ~tid ~addr ~atomic ~loc
  | E_write { tid; addr; atomic; loc; _ } ->
      check_access t ctx ~access:Write ~tid ~addr ~atomic ~loc
  | E_alloc { addr; len; _ } ->
      for a = addr to addr + len - 1 do
        match Hashtbl.find_opt t.shadow a with
        | Some c ->
            c.lockset <- Lockset.top;
            c.threadset <- []
        | None -> ()
      done
  | E_sync_create { sync; name; _ } -> (
      match Lock_id.of_sync_ref sync with
      | Some uid -> Hashtbl.replace t.lock_names uid name
      | None -> ())
  | E_acquire { tid; lock; mode; _ } -> (
      match lock with
      | Mutex m -> acquire t tid (Lock_id.of_mutex m) Vm.Eff.Write_mode
      | Rwlock rw -> acquire t tid (Lock_id.of_rwlock rw) mode
      | Cond _ | Sem _ -> ())
  | E_release { tid; lock; _ } -> (
      match lock with
      | Mutex m -> release t tid (Lock_id.of_mutex m)
      | Rwlock rw -> release t tid (Lock_id.of_rwlock rw)
      | Cond _ | Sem _ -> ())
  | E_client { req = Vm.Eff.Benign_race { addr; len }; _ } ->
      t.benign <- (addr, len) :: t.benign
  | E_thread_start _ | E_thread_exit _ | E_spawn _ | E_join _ | E_free _ | E_cond_signal _
  | E_cond_wait_pre _ | E_cond_wait_post _ | E_sem_post _ | E_sem_wait_post _ | E_client _ ->
      ()

let tool t = Vm.Tool.make ~name:"racetrack" ~on_event:(on_event t)
