(** The virtual machine engine: a deterministic cooperative scheduler.

    Simulated threads are OCaml fibers (effect handlers).  Every VM
    operation is a scheduling point: the fiber suspends, the operation
    is applied to the VM state, events are emitted to the registered
    tools, and the scheduler picks the next runnable thread according
    to the configured policy.  Given the same seed and policy, a run is
    bit-for-bit reproducible — which is what makes "rerun the test
    suite after fixing a problem" (§4 of the paper) meaningful.

    The engine also performs runtime deadlock detection: when no thread
    is runnable or sleeping but some are blocked, it reconstructs the
    waits-for graph and reports the cycle (the paper's application
    detected deadlocks with lock timeouts; the race checker "also does
    dead-lock detection, [so] application level detection is not
    needed", §3.3). *)

module Loc = Raceguard_util.Loc
module Rng = Raceguard_util.Rng
module Growvec = Raceguard_util.Growvec
module Metrics = Raceguard_obs.Metrics
module Trace = Raceguard_obs.Trace
module Injector = Raceguard_faults.Injector
open Eff

(* Process-global instruments; per-run deltas come from snapshot/diff. *)
let m_events = Metrics.counter "vm.events_emitted"
let m_ops = Metrics.counter "vm.ops_executed"
let m_switches = Metrics.counter "vm.scheduler_switches"
let m_threads = Metrics.counter "vm.threads_created"
let m_allocs = Metrics.counter "vm.memory_allocs"
let m_deadlocks = Metrics.counter "vm.deadlocks"
let h_thread_ops = Metrics.histogram "vm.ops_per_thread"

(* ------------------------------------------------------------------ *)
(* Scheduling policies                                                 *)
(* ------------------------------------------------------------------ *)

type policy =
  | Round_robin  (** strict FIFO over ready threads *)
  | Random_seeded  (** uniformly random among ready threads (uses seed) *)
  | Sticky
      (** keep running the current thread until it blocks or exits;
          models a coarse-grained interleaving with few switches *)
  | Scripted of int array
      (** replay a decision script: the k-th scheduling decision picks
          ready thread [script.(k) mod n]; past the end of the script
          decisions default to 0 (FIFO).  The backbone of systematic
          schedule exploration ({!Explore}). *)

let pp_policy ppf = function
  | Round_robin -> Fmt.string ppf "round-robin"
  | Random_seeded -> Fmt.string ppf "random"
  | Sticky -> Fmt.string ppf "sticky"
  | Scripted s -> Fmt.pf ppf "scripted[%d]" (Array.length s)

type config = {
  seed : int;
  policy : policy;
  reuse_memory : bool;
  trace_events : bool;  (** record the full event trace (offline analysis) *)
  max_ops : int;  (** safety valve against runaway simulations *)
  tracer : Trace.t option;
      (** when set, every emitted event is offered to this sampling
          ring tracer (Chrome trace_event export); [None] costs one
          comparison per event *)
  faults : Injector.t option;
      (** fault-injection decision engine: delayed thread starts and
          slow mutex acquisitions are drawn from its dedicated streams
          (never from the scheduler's rng); [None] costs one comparison
          per spawn / free-mutex lock *)
}

let default_config =
  {
    seed = 1;
    policy = Random_seeded;
    reuse_memory = true;
    trace_events = false;
    max_ops = 50_000_000;
    tracer = None;
    faults = None;
  }

(* ------------------------------------------------------------------ *)
(* Threads                                                             *)
(* ------------------------------------------------------------------ *)

type wake =
  | Wake : ('a, unit) Effect.Deep.continuation * (unit -> 'a) -> wake
  | Wake_v : ('a, unit) Effect.Deep.continuation * 'a -> wake
      (** plain-value resume: the common case, no thunk allocation *)

type block_reason =
  | On_mutex of int
  | On_rwlock of int * mode
  | On_cond of int * int  (** cv, mutex to reacquire *)
  | On_sem of int
  | On_join of int
  | On_sleep of int  (** absolute wake time *)

type status =
  | Fresh of (unit -> unit)
  | Ready
  | Running
  | Blocked of block_reason
  | Done

type thread = {
  tid : int;
  name : string;
  parent : int option;
  mutable status : status;
  mutable wake : wake option;
  mutable frames : Loc.t list;
  mutable failure : exn option;
  mutable join_waiters : int list;
  mutable ops : int;  (** operations executed by this thread *)
}

(* ------------------------------------------------------------------ *)
(* Synchronisation objects                                             *)
(* ------------------------------------------------------------------ *)

type mutex_obj = {
  m_id : int;
  m_name : string;
  mutable m_owner : int option;
  m_waiters : int Queue.t;
}

type rwlock_obj = {
  rw_id : int;
  rw_name : string;
  mutable rw_writer : int option;
  mutable rw_readers : int list;
  rw_waiters : (int * mode) Queue.t;
}

type cond_obj = { cv_id : int; cv_name : string; cv_waiters : (int * int) Queue.t }
(** waiters carry the mutex they must reacquire *)

type sem_obj = { sem_id : int; sem_name : string; mutable sem_count : int; sem_waiters : int Queue.t }

(* ------------------------------------------------------------------ *)
(* Deadlock / run outcome                                              *)
(* ------------------------------------------------------------------ *)

type deadlock = {
  dl_cycle : (int * string) list;  (** (tid, what it waits for) *)
  dl_stuck : (int * string) list;  (** blocked threads not in a cycle *)
}

let pp_deadlock ppf d =
  if d.dl_cycle <> [] then begin
    Fmt.pf ppf "DEADLOCK: cyclic wait among %d thread(s):@\n" (List.length d.dl_cycle);
    List.iter (fun (tid, what) -> Fmt.pf ppf "  thread %d waits for %s@\n" tid what) d.dl_cycle
  end;
  if d.dl_stuck <> [] then begin
    Fmt.pf ppf "HANG: %d thread(s) blocked with no waker:@\n" (List.length d.dl_stuck);
    List.iter (fun (tid, what) -> Fmt.pf ppf "  thread %d waits for %s@\n" tid what) d.dl_stuck
  end

type run_stats = {
  ops_executed : int;
  scheduler_switches : int;
  threads_created : int;
  final_clock : int;
  memory_allocs : int;
  memory_live_words : int;
}

type outcome = {
  deadlock : deadlock option;
  failures : (int * string * exn) list;  (** threads that raised *)
  stats : run_stats;
  trace : Event.t array;  (** empty unless [trace_events] *)
}

exception Misuse of string
(** raised inside a simulated thread on API misuse (unlocking a mutex
    one does not hold, double free, ...) *)

(* ------------------------------------------------------------------ *)
(* The VM                                                              *)
(* ------------------------------------------------------------------ *)

type t = {
  config : config;
  rng : Rng.t;
  memory : Memory.t;
  threads : thread Growvec.t;
  mutexes : mutex_obj Growvec.t;
  rwlocks : rwlock_obj Growvec.t;
  conds : cond_obj Growvec.t;
  sems : sem_obj Growvec.t;
  mutable ready : int array;  (** first [ready_len] entries: ready tids, FIFO *)
  mutable ready_len : int;
  mutable current : int;
  mutable clock : int;
  mutable ops : int;
  mutable switches : int;
  mutable tools : Tool.t list;
  mutable trace : Event.t Growvec.t;
  mutable benign_ranges : (int * int) list;
  mutable decisions : (int * int) list;
      (** reverse log of (chosen index, arity) for decision points with
          arity > 1 — the branching structure {!Explore} enumerates.
          Only kept under [Scripted] policy (its sole consumer), so the
          common policies do not allocate per scheduling step *)
  mutable decision_count : int;
  mutable cached_ctx : Tool.ctx option;
      (** the tool ctx is pure closures over [t]; built once so [emit]
          does not allocate per event *)
  mutable delayed_fresh : (int * int) list;
      (** (tid, wake_at): spawned threads whose first run a spawn-delay
          fault postponed; they stay [Fresh] and enter the ready queue
          when the clock reaches [wake_at] *)
}

let dummy_thread =
  {
    tid = -1;
    name = "<dummy>";
    parent = None;
    status = Done;
    wake = None;
    frames = [];
    failure = None;
    join_waiters = [];
    ops = 0;
  }

let create ?(config = default_config) () =
  {
    config;
    rng = Rng.create ~seed:config.seed;
    memory = Memory.create ~reuse:config.reuse_memory ();
    threads = Growvec.create ~dummy:dummy_thread;
    mutexes =
      Growvec.create ~dummy:{ m_id = -1; m_name = ""; m_owner = None; m_waiters = Queue.create () };
    rwlocks =
      Growvec.create
        ~dummy:{ rw_id = -1; rw_name = ""; rw_writer = None; rw_readers = []; rw_waiters = Queue.create () };
    conds = Growvec.create ~dummy:{ cv_id = -1; cv_name = ""; cv_waiters = Queue.create () };
    sems = Growvec.create ~dummy:{ sem_id = -1; sem_name = ""; sem_count = 0; sem_waiters = Queue.create () };
    ready = [||];
    ready_len = 0;
    decision_count = 0;
    current = -1;
    clock = 0;
    ops = 0;
    switches = 0;
    tools = [];
    trace = Growvec.create ~dummy:(Event.E_thread_exit { tid = -1 });
    benign_ranges = [];
    decisions = [];
    cached_ctx = None;
    delayed_fresh = [];
  }

let add_tool t tool = t.tools <- t.tools @ [ tool ]

(** Chronological log of nontrivial scheduling decisions as
    (chosen index, arity) pairs; meaningful after {!run}. *)
let decision_log t = List.rev t.decisions

let thread t tid = Growvec.get t.threads tid
let memory t = t.memory

let tool_ctx t : Tool.ctx =
  match t.cached_ctx with
  | Some ctx -> ctx
  | None ->
      let ctx : Tool.ctx =
        {
          stack_of = (fun tid -> (thread t tid).frames);
          thread_name = (fun tid -> (thread t tid).name);
          block_of = (fun addr -> Memory.block_of t.memory addr);
          clock = (fun () -> t.clock);
        }
      in
      t.cached_ctx <- Some ctx;
      ctx

let emit t event =
  Metrics.incr m_events;
  if t.config.trace_events then ignore (Growvec.push t.trace event);
  (match t.config.tracer with
  | None -> ()
  | Some tr ->
      Trace.emit tr ~ts:t.clock ~tid:(Event.tid event) ~name:(Event.kind_name event) ~cat:"vm" ());
  let ctx = tool_ctx t in
  List.iter (fun (tool : Tool.t) -> tool.on_event ctx event) t.tools

(* --- ready queue ------------------------------------------------- *)

let enqueue_ready t tid =
  let th = thread t tid in
  (match th.status with
  | Fresh _ | Ready -> ()
  | Running | Blocked _ -> th.status <- Ready
  | Done -> invalid_arg "enqueue_ready: thread is done");
  let n = Array.length t.ready in
  if t.ready_len >= n then begin
    let a = Array.make (max 16 (2 * n)) (-1) in
    Array.blit t.ready 0 a 0 n;
    t.ready <- a
  end;
  t.ready.(t.ready_len) <- tid;
  t.ready_len <- t.ready_len + 1

let ready_count t = t.ready_len

let take_ready_at t idx =
  if idx < 0 || idx >= t.ready_len then invalid_arg "take_ready_at";
  let x = t.ready.(idx) in
  Array.blit t.ready (idx + 1) t.ready idx (t.ready_len - idx - 1);
  t.ready_len <- t.ready_len - 1;
  x

let pick_ready t =
  let n = t.ready_len in
  if n = 0 then None
  else begin
    let choice =
      match t.config.policy with
      | Round_robin -> 0
      | Random_seeded -> Rng.int t.rng n
      | Sticky ->
          (* prefer the thread that ran last if it is ready *)
          let rec find i = if i >= n then 0 else if t.ready.(i) = t.current then i else find (i + 1) in
          find 0
      | Scripted script ->
          let k = t.decision_count in
          if k < Array.length script then script.(k) mod n else 0
    in
    if n > 1 then begin
      t.decision_count <- t.decision_count + 1;
      match t.config.policy with
      | Scripted _ -> t.decisions <- (choice, n) :: t.decisions
      | Round_robin | Random_seeded | Sticky -> ()
    end;
    Some (take_ready_at t choice)
  end

(* --- waking helpers ---------------------------------------------- *)

let resume_with (th : thread) (v : unit -> 'a) (k : ('a, unit) Effect.Deep.continuation) =
  th.wake <- Some (Wake (k, v))

let resume_value (th : thread) (v : 'a) (k : ('a, unit) Effect.Deep.continuation) =
  th.wake <- Some (Wake_v (k, v))

(* Grant a mutex to a waiting thread and make it runnable.  The
   acquire event is emitted at grant time: that is the moment the
   acquisition semantically happens. *)
let grant_mutex t (m : mutex_obj) tid ~loc =
  m.m_owner <- Some tid;
  emit t (Event.E_acquire { tid; lock = Event.Mutex m.m_id; mode = Write_mode; loc });
  enqueue_ready t tid

let rec rwlock_grant_waiters t (rw : rwlock_obj) ~loc =
  (* FIFO with reader batching: grant the head; if it is a reader, keep
     granting readers until a writer is at the head. *)
  if (not (Queue.is_empty rw.rw_waiters)) && rw.rw_writer = None then begin
    let tid, mode = Queue.peek rw.rw_waiters in
    match mode with
    | Write_mode ->
        if rw.rw_readers = [] then begin
          ignore (Queue.pop rw.rw_waiters);
          rw.rw_writer <- Some tid;
          emit t (Event.E_acquire { tid; lock = Event.Rwlock rw.rw_id; mode = Write_mode; loc });
          enqueue_ready t tid
        end
    | Read_mode ->
        ignore (Queue.pop rw.rw_waiters);
        rw.rw_readers <- tid :: rw.rw_readers;
        emit t (Event.E_acquire { tid; lock = Event.Rwlock rw.rw_id; mode = Read_mode; loc });
        enqueue_ready t tid;
        rwlock_grant_waiters t rw ~loc
  end

(* Full mutex unlock path shared by Mutex_unlock and Cond_wait. *)
let do_mutex_unlock t th (m : mutex_obj) ~loc =
  if m.m_owner <> Some th.tid then
    raise (Misuse (Fmt.str "thread %d unlocks mutex %S it does not hold" th.tid m.m_name));
  m.m_owner <- None;
  emit t (Event.E_release { tid = th.tid; lock = Event.Mutex m.m_id; loc });
  if not (Queue.is_empty m.m_waiters) then begin
    let w = Queue.pop m.m_waiters in
    grant_mutex t m w ~loc
  end

(* --- deadlock detection ------------------------------------------ *)

let describe_wait t = function
  | On_mutex m ->
      let mu = Growvec.get t.mutexes m in
      Fmt.str "mutex %S (held by %s)" mu.m_name
        (match mu.m_owner with Some o -> Fmt.str "thread %d" o | None -> "nobody")
  | On_rwlock (rw, mode) ->
      let r = Growvec.get t.rwlocks rw in
      Fmt.str "rwlock %S in %a mode (writer=%s, readers=%d)" r.rw_name Eff.pp_mode mode
        (match r.rw_writer with Some o -> Fmt.str "t%d" o | None -> "none")
        (List.length r.rw_readers)
  | On_cond (cv, _) -> Fmt.str "condition %S (no signal pending)" (Growvec.get t.conds cv).cv_name
  | On_sem s -> Fmt.str "semaphore %S" (Growvec.get t.sems s).sem_name
  | On_join tid -> Fmt.str "termination of thread %d" tid
  | On_sleep until -> Fmt.str "sleep until %d" until

(* waits-for edges: tid -> tid that could wake it (single blocking
   owner for mutex/rwlock-writer/join; none for cond/sem). *)
let waiting_on_thread t reason =
  match reason with
  | On_mutex m -> (Growvec.get t.mutexes m).m_owner
  | On_rwlock (rw, _) -> (
      let r = Growvec.get t.rwlocks rw in
      match r.rw_writer with
      | Some w -> Some w
      | None -> ( match r.rw_readers with [ x ] -> Some x | _ -> None))
  | On_join tid -> Some tid
  | On_cond _ | On_sem _ | On_sleep _ -> None

let detect_deadlock t =
  let blocked = ref [] in
  Growvec.iter
    (fun th -> match th.status with Blocked r -> blocked := (th, r) :: !blocked | _ -> ())
    t.threads;
  match !blocked with
  | [] -> None
  | blocked ->
      (* find a cycle in the waits-for graph *)
      let edge tid =
        match (thread t tid).status with
        | Blocked r -> waiting_on_thread t r
        | _ -> None
      in
      let in_cycle = Hashtbl.create 8 in
      List.iter
        (fun (th, _) ->
          (* follow edges from th; if we come back to a visited node on
             this walk, everything from there on is a cycle *)
          let rec walk seen tid =
            if List.mem tid seen then begin
              let rec mark = function
                | [] -> ()
                | x :: rest ->
                    if x = tid then List.iter (fun y -> Hashtbl.replace in_cycle y ()) (tid :: rest)
                    else mark rest
              in
              mark (List.rev seen)
            end
            else match edge tid with None -> () | Some next -> walk (tid :: seen) next
          in
          walk [] th.tid)
        blocked;
      let cycle, stuck =
        List.partition (fun (th, _) -> Hashtbl.mem in_cycle th.tid) blocked
      in
      let describe (th, r) = (th.tid, describe_wait t r) in
      Some { dl_cycle = List.map describe cycle; dl_stuck = List.map describe stuck }

(* ------------------------------------------------------------------ *)
(* Operation interpretation                                            *)
(* ------------------------------------------------------------------ *)

exception Too_many_ops

let reschedule_self t th v k =
  resume_value th v k;
  enqueue_ready t th.tid

(* Interpret one operation performed by thread [th].  Must either make
   [th] runnable again (with a wake) or leave it blocked in some wait
   queue. *)
let rec handle_op : type a. t -> thread -> a op -> (a, unit) Effect.Deep.continuation -> unit =
 fun t th op k ->
  t.ops <- t.ops + 1;
  th.ops <- th.ops + 1;
  t.clock <- t.clock + 1;
  if t.ops > t.config.max_ops then raise Too_many_ops;
  let ret (v : a) = reschedule_self t th v k in
  match op with
  | Read { addr; loc } ->
      let value = Memory.get t.memory addr in
      emit t (Event.E_read { tid = th.tid; addr; value; atomic = false; loc });
      ret value
  | Write { addr; value; loc } ->
      Memory.set t.memory addr value;
      emit t (Event.E_write { tid = th.tid; addr; value; atomic = false; loc });
      ret ()
  | Atomic_rmw { addr; f; loc } ->
      (* one LOCK-prefixed instruction: an atomic load followed by an
         atomic store, indivisible (no scheduling point in between) *)
      let old = Memory.get t.memory addr in
      let value = f old in
      Memory.set t.memory addr value;
      emit t (Event.E_read { tid = th.tid; addr; value = old; atomic = true; loc });
      emit t (Event.E_write { tid = th.tid; addr; value; atomic = true; loc });
      ret old
  | Alloc { len; loc } ->
      let addr = Memory.alloc t.memory ~tid:th.tid ~loc ~stack:th.frames ~len in
      emit t (Event.E_alloc { tid = th.tid; addr; len; loc });
      ret addr
  | Free { addr; loc } ->
      let len = Memory.free t.memory ~addr in
      emit t (Event.E_free { tid = th.tid; addr; len; loc });
      ret ()
  | Spawn { name; body; loc } ->
      let child =
        {
          tid = Growvec.length t.threads;
          name;
          parent = Some th.tid;
          status = Fresh body;
          wake = None;
          frames = [ loc ];
          failure = None;
          join_waiters = [];
          ops = 0;
        }
      in
      ignore (Growvec.push t.threads child);
      emit t (Event.E_thread_start { tid = child.tid; name; parent = Some th.tid });
      emit t (Event.E_spawn { parent = th.tid; child = child.tid; loc });
      let spawn_delay =
        match t.config.faults with Some inj -> Injector.spawn_delay inj | None -> 0
      in
      if spawn_delay = 0 then enqueue_ready t child.tid
      else t.delayed_fresh <- (child.tid, t.clock + spawn_delay) :: t.delayed_fresh;
      ret child.tid
  | Join { tid; loc } ->
      if tid < 0 || tid >= Growvec.length t.threads then
        raise (Misuse (Fmt.str "join of unknown thread %d" tid));
      let target = thread t tid in
      if target.status = Done then begin
        emit t (Event.E_join { joiner = th.tid; joined = tid; loc });
        ret ()
      end
      else begin
        target.join_waiters <- (th.tid :: target.join_waiters);
        th.status <- Blocked (On_join tid);
        resume_with th (fun () -> ()) k
      end
  | Mutex_create { name; loc } ->
      let m = { m_id = Growvec.length t.mutexes; m_name = name; m_owner = None; m_waiters = Queue.create () } in
      ignore (Growvec.push t.mutexes m);
      emit t (Event.E_sync_create { tid = th.tid; sync = Event.Mutex m.m_id; name; loc });
      ret m.m_id
  | Mutex_lock { m; loc } -> (
      let mu = Growvec.get t.mutexes m in
      match mu.m_owner with
      | None ->
          mu.m_owner <- Some th.tid;
          emit t (Event.E_acquire { tid = th.tid; lock = Event.Mutex m; mode = Write_mode; loc });
          let lock_delay =
            match t.config.faults with Some inj -> Injector.lock_delay inj | None -> 0
          in
          if lock_delay = 0 then ret ()
          else begin
            (* slow-acquire fault: the lock is held from this moment
               (contention builds behind it) but the owner stalls
               before proceeding *)
            resume_value th () k;
            th.status <- Blocked (On_sleep (t.clock + lock_delay))
          end
      | Some owner when owner = th.tid ->
          raise (Misuse (Fmt.str "thread %d relocks non-recursive mutex %S" th.tid mu.m_name))
      | Some _ ->
          Queue.push th.tid mu.m_waiters;
          th.status <- Blocked (On_mutex m);
          resume_with th (fun () -> ()) k)
  | Mutex_trylock { m; loc } -> (
      let mu = Growvec.get t.mutexes m in
      match mu.m_owner with
      | None ->
          mu.m_owner <- Some th.tid;
          emit t (Event.E_acquire { tid = th.tid; lock = Event.Mutex m; mode = Write_mode; loc });
          ret true
      | Some _ -> ret false)
  | Mutex_unlock { m; loc } ->
      let mu = Growvec.get t.mutexes m in
      do_mutex_unlock t th mu ~loc;
      ret ()
  | Rwlock_create { name; loc } ->
      let rw =
        { rw_id = Growvec.length t.rwlocks; rw_name = name; rw_writer = None; rw_readers = []; rw_waiters = Queue.create () }
      in
      ignore (Growvec.push t.rwlocks rw);
      emit t (Event.E_sync_create { tid = th.tid; sync = Event.Rwlock rw.rw_id; name; loc });
      ret rw.rw_id
  | Rwlock_lock { rw; mode; loc } -> (
      let r = Growvec.get t.rwlocks rw in
      match mode with
      | Read_mode ->
          if r.rw_writer = None && Queue.is_empty r.rw_waiters then begin
            r.rw_readers <- th.tid :: r.rw_readers;
            emit t (Event.E_acquire { tid = th.tid; lock = Event.Rwlock rw; mode; loc });
            ret ()
          end
          else begin
            Queue.push (th.tid, mode) r.rw_waiters;
            th.status <- Blocked (On_rwlock (rw, mode));
            resume_with th (fun () -> ()) k
          end
      | Write_mode ->
          if r.rw_writer = None && r.rw_readers = [] && Queue.is_empty r.rw_waiters then begin
            r.rw_writer <- Some th.tid;
            emit t (Event.E_acquire { tid = th.tid; lock = Event.Rwlock rw; mode; loc });
            ret ()
          end
          else begin
            Queue.push (th.tid, mode) r.rw_waiters;
            th.status <- Blocked (On_rwlock (rw, mode));
            resume_with th (fun () -> ()) k
          end)
  | Rwlock_unlock { rw; loc } ->
      let r = Growvec.get t.rwlocks rw in
      (if r.rw_writer = Some th.tid then r.rw_writer <- None
       else if List.mem th.tid r.rw_readers then
         r.rw_readers <- List.filter (fun x -> x <> th.tid) r.rw_readers
       else raise (Misuse (Fmt.str "thread %d unlocks rwlock %S it does not hold" th.tid r.rw_name)));
      emit t (Event.E_release { tid = th.tid; lock = Event.Rwlock rw; loc });
      rwlock_grant_waiters t r ~loc;
      ret ()
  | Cond_create { name; loc } ->
      let cv = { cv_id = Growvec.length t.conds; cv_name = name; cv_waiters = Queue.create () } in
      ignore (Growvec.push t.conds cv);
      emit t (Event.E_sync_create { tid = th.tid; sync = Event.Cond cv.cv_id; name; loc });
      ret cv.cv_id
  | Cond_wait { cv; m; loc } ->
      let c = Growvec.get t.conds cv in
      let mu = Growvec.get t.mutexes m in
      emit t (Event.E_cond_wait_pre { tid = th.tid; cv; m; loc });
      do_mutex_unlock t th mu ~loc;
      Queue.push (th.tid, m) c.cv_waiters;
      th.status <- Blocked (On_cond (cv, m));
      resume_with th (fun () -> ()) k
  | Cond_signal { cv; loc } ->
      let c = Growvec.get t.conds cv in
      emit t (Event.E_cond_signal { tid = th.tid; cv; broadcast = false; loc });
      (if not (Queue.is_empty c.cv_waiters) then begin
         let w, m = Queue.pop c.cv_waiters in
         wake_cond_waiter t w m ~cv ~loc
       end);
      ret ()
  | Cond_broadcast { cv; loc } ->
      let c = Growvec.get t.conds cv in
      emit t (Event.E_cond_signal { tid = th.tid; cv; broadcast = true; loc });
      while not (Queue.is_empty c.cv_waiters) do
        let w, m = Queue.pop c.cv_waiters in
        wake_cond_waiter t w m ~cv ~loc
      done;
      ret ()
  | Sem_create { name; init; loc } ->
      let s = { sem_id = Growvec.length t.sems; sem_name = name; sem_count = init; sem_waiters = Queue.create () } in
      ignore (Growvec.push t.sems s);
      emit t (Event.E_sync_create { tid = th.tid; sync = Event.Sem s.sem_id; name; loc });
      ret s.sem_id
  | Sem_wait { s; loc } ->
      let sem = Growvec.get t.sems s in
      if sem.sem_count > 0 then begin
        sem.sem_count <- sem.sem_count - 1;
        emit t (Event.E_sem_wait_post { tid = th.tid; sem = s; loc });
        ret ()
      end
      else begin
        Queue.push th.tid sem.sem_waiters;
        th.status <- Blocked (On_sem s);
        resume_with th (fun () -> ()) k
      end
  | Sem_post { s; loc } ->
      let sem = Growvec.get t.sems s in
      emit t (Event.E_sem_post { tid = th.tid; sem = s; loc });
      (if Queue.is_empty sem.sem_waiters then sem.sem_count <- sem.sem_count + 1
       else begin
         let w = Queue.pop sem.sem_waiters in
         emit t (Event.E_sem_wait_post { tid = w; sem = s; loc });
         enqueue_ready t w
       end);
      ret ()
  | Client req ->
      let loc = match th.frames with [] -> Loc.unknown | l :: _ -> l in
      (match req with
      | Benign_race { addr; len } -> t.benign_ranges <- (addr, len) :: t.benign_ranges
      | Destruct _ | Happens_before _ | Happens_after _ -> ());
      emit t (Event.E_client { tid = th.tid; req; loc });
      ret ()
  | Yield -> ret ()
  | Sleep n ->
      th.status <- Blocked (On_sleep (t.clock + max 1 n));
      resume_with th (fun () -> ()) k
  | Now -> ret t.clock
  | Self -> ret th.tid
  | Push_frame loc ->
      th.frames <- loc :: th.frames;
      ret ()
  | Pop_frame ->
      (match th.frames with [] -> () | _ :: rest -> th.frames <- rest);
      ret ()
  | Random_int bound -> ret (Rng.int t.rng bound)

and wake_cond_waiter t w m ~cv ~loc =
  (* a signalled waiter must reacquire its mutex before returning *)
  let mu = Growvec.get t.mutexes m in
  let wth = thread t w in
  (match mu.m_owner with
  | None ->
      mu.m_owner <- Some w;
      emit t (Event.E_acquire { tid = w; lock = Event.Mutex m; mode = Write_mode; loc });
      emit t (Event.E_cond_wait_post { tid = w; cv; m; loc });
      enqueue_ready t w
  | Some _ ->
      (* park on the mutex; when granted, the wait_post event must
         still be emitted — we wrap the thread's wake closure. *)
      wth.status <- Blocked (On_mutex m);
      (match wth.wake with
      | Some (Wake (k, v)) ->
          wth.wake <-
            Some
              (Wake
                 ( k,
                   fun () ->
                     emit t (Event.E_cond_wait_post { tid = w; cv; m; loc });
                     v () ))
      | Some (Wake_v (k, v)) ->
          wth.wake <-
            Some
              (Wake
                 ( k,
                   fun () ->
                     emit t (Event.E_cond_wait_post { tid = w; cv; m; loc });
                     v ))
      | None -> ());
      Queue.push w mu.m_waiters)

(* ------------------------------------------------------------------ *)
(* The scheduler loop                                                  *)
(* ------------------------------------------------------------------ *)

let thread_finished t th =
  th.status <- Done;
  emit t (Event.E_thread_exit { tid = th.tid });
  List.iter
    (fun w ->
      emit t (Event.E_join { joiner = w; joined = th.tid; loc = Loc.unknown });
      enqueue_ready t w)
    th.join_waiters;
  th.join_waiters <- []

let handler t th : (unit, unit) Effect.Deep.handler =
  {
    retc = (fun () -> thread_finished t th);
    exnc =
      (fun e ->
        th.failure <- Some e;
        thread_finished t th);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Do op ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                (* API misuse (bad unlock, double free, out-of-bounds
                   access, ...) is the calling thread's error: deliver
                   it at the perform point so the thread fails and the
                   VM keeps running.  Engine-level conditions
                   (Too_many_ops) still abort the run. *)
                match handle_op t th op k with
                | () -> ()
                | exception ((Misuse _ | Invalid_argument _) as e) ->
                    Effect.Deep.discontinue k e)
        | _ -> None);
  }

let run_thread t th =
  t.current <- th.tid;
  t.switches <- t.switches + 1;
  match th.status with
  | Fresh body ->
      th.status <- Running;
      Effect.Deep.match_with body () (handler t th)
  | Ready -> (
      th.status <- Running;
      match th.wake with
      | Some (Wake (k, v)) ->
          th.wake <- None;
          Effect.Deep.continue k (v ())
      | Some (Wake_v (k, v)) ->
          th.wake <- None;
          Effect.Deep.continue k v
      | None -> invalid_arg "run_thread: ready thread without wake")
  | Running | Blocked _ | Done -> invalid_arg "run_thread: thread not runnable"

let wake_due_sleepers t =
  let woke = ref false in
  (match t.delayed_fresh with
  | [] -> ()
  | delayed ->
      let due, still = List.partition (fun (_, until) -> until <= t.clock) delayed in
      if due <> [] then begin
        t.delayed_fresh <- still;
        List.iter
          (fun (tid, _) ->
            enqueue_ready t tid;
            woke := true)
          (List.sort compare due)
      end);
  Growvec.iter
    (fun th ->
      match th.status with
      | Blocked (On_sleep until) when until <= t.clock ->
          enqueue_ready t th.tid;
          woke := true
      | _ -> ())
    t.threads;
  !woke

let earliest_sleeper t =
  let from_delayed =
    List.fold_left
      (fun acc (_, until) ->
        match acc with Some u -> Some (min u until) | None -> Some until)
      None t.delayed_fresh
  in
  Growvec.fold
    (fun acc th ->
      match th.status with
      | Blocked (On_sleep until) -> (
          match acc with Some u -> Some (min u until) | None -> Some until)
      | _ -> acc)
    from_delayed t.threads

(** Run [main] as thread 0 until all threads finish, a deadlock is
    detected, or the op budget is exhausted. *)
let run t main =
  let main_thread =
    {
      tid = 0;
      name = "main";
      parent = None;
      status = Fresh main;
      wake = None;
      frames = [ Loc.v "<vm>" "main" 0 ];
      failure = None;
      join_waiters = [];
      ops = 0;
    }
  in
  ignore (Growvec.push t.threads main_thread);
  emit t (Event.E_thread_start { tid = 0; name = "main"; parent = None });
  enqueue_ready t 0;
  let deadlock = ref None in
  (try
     let continue_loop = ref true in
     while !continue_loop do
       match pick_ready t with
       | Some tid -> run_thread t (thread t tid)
       | None -> (
           ignore (wake_due_sleepers t);
           if ready_count t > 0 then ()
           else
             match earliest_sleeper t with
             | Some until ->
                 t.clock <- until;
                 ignore (wake_due_sleepers t)
             | None -> (
                 match detect_deadlock t with
                 | Some d ->
                     deadlock := Some d;
                     continue_loop := false
                 | None -> continue_loop := false))
     done
   with Too_many_ops ->
     deadlock :=
       Some
         {
           dl_cycle = [];
           dl_stuck = [ (t.current, Fmt.str "op budget (%d) exhausted — livelock?" t.config.max_ops) ];
         });
  let failures =
    Growvec.fold
      (fun acc th -> match th.failure with Some e -> (th.tid, th.name, e) :: acc | None -> acc)
      [] t.threads
  in
  Metrics.add m_ops t.ops;
  Metrics.add m_switches t.switches;
  Metrics.add m_threads (Growvec.length t.threads);
  Metrics.add m_allocs (Memory.total_allocs t.memory);
  if !deadlock <> None then Metrics.incr m_deadlocks;
  Growvec.iter (fun (th : thread) -> Metrics.observe h_thread_ops th.ops) t.threads;
  {
    deadlock = !deadlock;
    failures = List.rev failures;
    stats =
      {
        ops_executed = t.ops;
        scheduler_switches = t.switches;
        threads_created = Growvec.length t.threads;
        final_clock = t.clock;
        memory_allocs = Memory.total_allocs t.memory;
        memory_live_words = Memory.live_words t.memory;
      };
    trace = Array.init (Growvec.length t.trace) (fun i -> Growvec.get t.trace i);
  }
