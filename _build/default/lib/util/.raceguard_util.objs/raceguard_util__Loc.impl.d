lib/util/loc.ml: Fmt Hashtbl Map Set String
