test/test_minicc.ml: Alcotest List Printexc Raceguard_detector Raceguard_minicc Raceguard_util Raceguard_vm String
