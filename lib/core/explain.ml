(** Warning provenance: which config knob would suppress each warning.

    The paper's evaluation (Figures 5/6) classifies warnings {e in
    aggregate} by differencing whole configurations; this module does
    the same per warning.  The base configuration (with provenance
    recording on) and one variant per applicable knob — hwlc, dr,
    segments, hb — observe the {e same} VM event stream side by side
    (the runner already supports that), and a warning is "suppressed by
    knob K" iff its dedup signature is absent from the base+K variant's
    locations.  Because every variant sees the identical schedule, the
    attribution is exact, not statistical.

    The verdicts are written into each warning's
    [Report.provenance.p_suppressed_by] and rendered by {!pp} /
    {!to_json} — the [--explain] mode of the CLI. *)

module Det = Raceguard_detector
module Sip = Raceguard_sip
module Obs = Raceguard_obs
module Json = Obs.Json

type knob = {
  k_name : string;
  k_doc : string;
  k_applicable : Det.Helgrind.config -> bool;
      (** a knob already enabled in the base cannot be attributed *)
  k_apply : Det.Helgrind.config -> Det.Helgrind.config;
}

let knobs =
  [
    {
      k_name = "hwlc";
      k_doc = "corrected hardware bus-lock model (read-write bus lock)";
      k_applicable = (fun c -> c.Det.Helgrind.bus_model = Det.Helgrind.Locked_mutex);
      k_apply =
        (fun c -> { c with Det.Helgrind.bus_model = Det.Helgrind.Rw_lock; track_rwlocks = true });
    };
    {
      k_name = "dr";
      k_doc = "destructor annotations (VALGRIND_HG_DESTRUCT)";
      k_applicable = (fun c -> not c.Det.Helgrind.destructor_annotations);
      k_apply = (fun c -> { c with Det.Helgrind.destructor_annotations = true });
    };
    {
      k_name = "segments";
      k_doc = "thread-segment refinement (VisualThreads, Figure 2)";
      k_applicable = (fun c -> not c.Det.Helgrind.thread_segments);
      k_apply = (fun c -> { c with Det.Helgrind.thread_segments = true });
    };
    {
      k_name = "hb";
      k_doc = "happens-before annotations (the \xc2\xa75 extension)";
      k_applicable = (fun c -> not c.Det.Helgrind.hb_annotations);
      k_apply = (fun c -> { c with Det.Helgrind.hb_annotations = true });
    };
  ]

type explained = {
  e_report : Det.Report.t;  (** first occurrence; provenance filled in *)
  e_count : int;
  e_suppressed_by : string list;
}

type t = {
  x_test : string;
  x_base : Det.Helgrind.config;
  x_knobs : string list;  (** knobs that were attributable *)
  x_seed : int;
  x_domains : int;
  x_warnings : explained list;
  x_result : Runner.result;
}

let test_case_of_string name =
  List.find_opt
    (fun (tc : Sip.Workload.test_case) -> String.lowercase_ascii tc.tc_name = String.lowercase_ascii name)
    Sip.Workload.all_test_cases

(** Run [tc] with the base configuration plus one variant per
    applicable knob, all on the same event stream, and attribute every
    base warning.  [base] defaults to the paper's Original
    configuration; provenance recording is forced on.

    With [domains > 1] each configuration becomes its own cell on the
    work-stealing pool: the VM is deterministic in (seed, policy,
    workload) and detectors are pure observers, so a single-config
    rerun sees byte-for-byte the schedule the side-by-side attachment
    would, and the per-config location sets — hence the attribution —
    are identical.  Only the metrics snapshot differs (N runs do N
    times the VM work); it is the {!Obs.Metrics.merge} of the cells. *)
let run ?(runner = Runner.default) ?(base = Det.Helgrind.original) ?(domains = 1) tc =
  let base = { base with Det.Helgrind.provenance = true } in
  let applicable = List.filter (fun k -> k.k_applicable base) knobs in
  let helgrind_configs =
    ("base", base) :: List.map (fun k -> (k.k_name, k.k_apply base)) applicable
  in
  let domains = Raceguard_par.Par.resolve domains in
  let cells =
    if domains <= 1 then
      (* classic side-by-side attachment: one VM run, every config
         observing the same serialised stream *)
      let result = Runner.run_test_case { runner with helgrind_configs } tc in
      List.map (fun (name, _) -> (name, result)) helgrind_configs
    else
      (* one single-config cell per configuration; the tracer (a shared
         mutable ring) rides only with the base cell *)
      Raceguard_par.Par.map_cells ~domains
        (fun (name, cfg) ->
          let tracer = if String.equal name "base" then runner.Runner.tracer else None in
          ( name,
            Runner.run_test_case
              { runner with helgrind_configs = [ (name, cfg) ]; tracer }
              tc ))
        (Array.of_list helgrind_configs)
      |> Array.to_list
  in
  let result_of name = List.assoc name cells in
  let result =
    let base_result = result_of "base" in
    if domains <= 1 then base_result
    else
      let merged =
        List.fold_left
          (fun acc (_, r) -> Obs.Metrics.merge acc r.Runner.metrics)
          Obs.Metrics.empty cells
      in
      { base_result with Runner.metrics = merged }
  in
  let variant_sigs =
    List.map
      (fun k ->
        (k.k_name, Classify.signature_set (Runner.locations_of (result_of k.k_name) k.k_name)))
      applicable
  in
  let warnings =
    Runner.locations_of (result_of "base") "base"
    |> List.map (fun ((r : Det.Report.t), n) ->
           let sg = Det.Report.signature r in
           let suppressed =
             List.filter_map
               (fun (name, sigs) -> if Classify.Sig_set.mem sg sigs then None else Some name)
               variant_sigs
           in
           (match r.provenance with
           | Some p -> p.p_suppressed_by <- suppressed
           | None -> ());
           { e_report = r; e_count = n; e_suppressed_by = suppressed })
  in
  {
    x_test = tc.Sip.Workload.tc_name;
    x_base = base;
    x_knobs = List.map (fun k -> k.k_name) applicable;
    x_seed = runner.Runner.seed;
    x_domains = domains;
    x_warnings = warnings;
    x_result = result;
  }

(* --- rendering ----------------------------------------------------- *)

let pp ppf x =
  Fmt.pf ppf "Explaining %s under %a (seed %d, %d domain(s))@\n" x.x_test
    Det.Helgrind.pp_config_name x.x_base x.x_seed x.x_domains;
  Fmt.pf ppf "Knobs tried: %s@\n" (String.concat ", " x.x_knobs);
  Fmt.pf ppf "%d distinct warning location(s)@\n" (List.length x.x_warnings);
  List.iteri
    (fun i e ->
      Fmt.pf ppf "@\n--- warning %d of %d (%d occurrence(s)) ---@\n" (i + 1)
        (List.length x.x_warnings) e.e_count;
      Det.Report.pp ppf e.e_report;
      (match e.e_report.Det.Report.provenance with
      | Some p -> Det.Report.pp_provenance ppf p
      | None -> ());
      if e.e_suppressed_by = [] then
        Fmt.pf ppf " No tried knob suppresses this warning (likely a real race or a pool FP)@\n")
    x.x_warnings

let to_json x =
  Json.Obj
    [
      ("schema", Json.Str "raceguard-explain/1");
      ("test", Json.Str x.x_test);
      ("seed", Json.int x.x_seed);
      ("domains", Json.int x.x_domains);
      ("base_config", Det.Helgrind.config_to_json x.x_base);
      ("knobs", Json.List (List.map (fun k -> Json.Str k) x.x_knobs));
      ( "warnings",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("count", Json.int e.e_count);
                   ("report", Det.Report.to_json e.e_report);
                   ("suppressed_by", Json.List (List.map (fun s -> Json.Str s) e.e_suppressed_by));
                 ])
             x.x_warnings) );
      ("metrics", Obs.Metrics.to_json x.x_result.Runner.metrics);
    ]
