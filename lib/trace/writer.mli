(** Streaming encoder for [raceguard-trace/1] binary traces.

    Record mode: attach {!tool} to a VM run and every event is appended
    to an in-memory stream together with the introspection data a live
    detector would have queried (clock, acting thread's call stack and
    name, accessed heap block) — zero analysis at record time.  The
    interned string/location/stack/block tables keep the encoding
    compact; periodic snapshot markers give readers seek points.
    {!contents} seals the stream with an event-count end record and a
    CRC-32-guarded footer. *)

module Vm = Raceguard_vm
module Loc = Raceguard_util.Loc

val schema : string
(** ["raceguard-trace/1"]. *)

val magic_head : string
val magic_tail : string
val version : int

(** Record tags (decoder contract; events use [tag_event + kind_id]). *)

val tag_sdef : int
val tag_ldef : int
val tag_kdef : int
val tag_bdef : int
val tag_snap : int
val tag_end : int
val tag_event : int

val default_snapshot_every : int

type t

val create : ?snapshot_every:int -> ?meta:(string * string) list -> unit -> t
(** [meta] is a list of free-form (key, value) pairs stored in the
    header — seed, workload, detector config, anything a replay needs
    to be self-describing. *)

val add_entry :
  t ->
  event:Vm.Event.t ->
  clock:int ->
  stack:Loc.t list ->
  thread_name:string ->
  block:Vm.Memory.block option ->
  unit
(** Append one event with its captured tool-context data.  [clock]
    must be monotonic.  [block] is only encoded for reads/writes. *)

val add_event : t -> Vm.Tool.ctx -> Vm.Event.t -> unit
(** {!add_entry} with the context data pulled from a live VM [ctx]. *)

val tool : t -> Vm.Tool.t
(** The recorder as a VM tool (named ["trace-recorder"]). *)

val event_count : t -> int
val snapshot_count : t -> int

val byte_size : t -> int
(** Bytes written so far (header + body, without the footer). *)

val contents : t -> string
(** The complete trace: body + end record + CRC footer.
    Non-destructive — the writer remains usable afterwards. *)

val to_file : t -> string -> unit
