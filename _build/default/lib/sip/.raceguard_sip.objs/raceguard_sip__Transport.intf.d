lib/sip/transport.mli:
