lib/vm/explore.ml: Array Engine
