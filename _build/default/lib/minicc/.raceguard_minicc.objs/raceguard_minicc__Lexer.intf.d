lib/minicc/lexer.mli: Token
