lib/detector/offline.mli: Raceguard_vm
