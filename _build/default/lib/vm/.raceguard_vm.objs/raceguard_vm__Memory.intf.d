lib/vm/memory.mli: Raceguard_util
