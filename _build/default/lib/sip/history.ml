(** Request history: a bounded ring of per-request digest objects kept
    for diagnostics ("last N requests seen"), shared by all workers.

    Every handler records a digest; once the ring is full each insert
    evicts the oldest entry — an object created by {e some other}
    worker thread, unlinked under the ring's lock and deleted outside
    it.  Like every delete-after-unlink in this code base, the eviction
    is correct, and the destructor chain of the evicted digest is a
    false-positive factory until the DR annotation suppresses it.
    Because the recording call sits inside each handler, every request
    kind contributes its own family of report sites — this is how a
    large C++ server accumulates {e hundreds} of destructor-FP
    locations (Figure 5's dominant bar). *)

module Loc = Raceguard_util.Loc
module Api = Raceguard_vm.Api
module Obj_model = Raceguard_cxxsim.Object_model
module Refstring = Raceguard_cxxsim.Refstring

let lc func line = Loc.v "history.cpp" ("RequestHistory::" ^ func) line

(* class Digest { int timestamp; int src_id; }
   class StampedDigest : Digest { int seq; int flags; }
   class RequestDigest : StampedDigest { RefString uri; int method; int outcome; } *)
let digest_class =
  Obj_model.define ~name:"Digest" ~fields:[ "timestamp"; "src_id" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.scrub ~file:"history.cpp" ~base_line:22 cls obj ~strings:[]
        ~ints:[ "timestamp"; "src_id" ])
    ()

let stamped_digest_class =
  Obj_model.define ~parent:digest_class ~name:"StampedDigest" ~fields:[ "seq"; "flags" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.scrub ~file:"history.cpp" ~base_line:28 cls obj ~strings:[]
        ~ints:[ "seq"; "flags" ])
    ()

let request_digest_class =
  Obj_model.define ~parent:stamped_digest_class ~name:"RequestDigest"
    ~fields:[ "uri"; "method"; "outcome" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.scrub ~file:"history.cpp" ~base_line:34 cls obj ~strings:[ "uri" ]
        ~ints:[ "method"; "outcome" ])
    ()

type t = {
  mutex : Api.Mutex.t;
  ring : int;  (** capacity words holding digest addresses *)
  capacity : int;
  next : int;  (** address of the rotating insert index *)
  annotate : bool;
}

let create ~annotate ~capacity =
  let loc = lc "RequestHistory" 44 in
  let ring = Api.alloc ~loc (capacity + 1) in
  {
    mutex = Api.Mutex.create ~loc "history.mutex";
    ring;
    capacity;
    next = ring + capacity;
    annotate;
  }

(** Record one request: build a digest, swap it into the ring under the
    lock, delete the evicted digest outside the lock. *)
let record t ~src_id ~meth ~uri ~outcome =
  let loc = lc "record" 57 in
  Api.with_frame loc @@ fun () ->
  let digest =
    Obj_model.new_ ~loc request_digest_class ~init:(fun obj ->
        let cls = request_digest_class in
        Obj_model.set ~loc cls obj "timestamp" (Api.now ());
        Obj_model.set ~loc cls obj "src_id" src_id;
        Obj_model.set ~loc cls obj "seq" (Api.now () land 0xffff);
        Obj_model.set ~loc cls obj "flags" 0;
        Obj_model.set ~loc cls obj "uri" (Refstring.create ~loc uri);
        Obj_model.set ~loc cls obj "method" meth;
        Obj_model.set ~loc cls obj "outcome" outcome)
  in
  let evicted =
    Api.Mutex.with_lock ~loc t.mutex (fun () ->
        let idx = Api.read ~loc:(lc "record" 71) t.next in
        let old = Api.read ~loc:(lc "record" 72) (t.ring + idx) in
        Api.write ~loc:(lc "record" 73) (t.ring + idx) digest;
        Api.write ~loc:(lc "record" 74) t.next ((idx + 1) mod t.capacity);
        old)
  in
  if evicted <> 0 then
    Obj_model.delete_ ~loc:(lc "record" 78) ~annotate:t.annotate request_digest_class evicted

(** Drain the ring at shutdown. *)
let clear t =
  let loc = lc "clear" 83 in
  Api.with_frame loc @@ fun () ->
  let victims =
    Api.Mutex.with_lock ~loc t.mutex (fun () ->
        let out = ref [] in
        for i = 0 to t.capacity - 1 do
          let d = Api.read ~loc:(lc "clear" 89) (t.ring + i) in
          if d <> 0 then out := d :: !out;
          Api.write ~loc:(lc "clear" 91) (t.ring + i) 0
        done;
        !out)
  in
  List.iter
    (fun d -> Obj_model.delete_ ~loc:(lc "clear" 96) ~annotate:t.annotate request_digest_class d)
    victims
