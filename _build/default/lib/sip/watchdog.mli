(** The application's home-grown deadlock detector — itself racy
    (bug B1, §4.1): lock/request wait states are written into a global
    watch table without synchronisation and scanned by a watchdog
    thread.  "One of the first reported data races was in the
    application's deadlock detection code ... it was disabled for
    further experiments." *)

type t

val create : timeout:int -> t
val start : t -> unit

val before_lock : t -> unit
(** Record that the calling thread starts a watched wait (unsynchronised
    write — the bug). *)

val after_lock : t -> unit
(** Clear the calling thread's slot (also racy). *)

val stop : t -> unit
val join : t -> unit

val alarms : t -> (int * int) list
(** Host-side findings: (tid, observed wait length). *)
