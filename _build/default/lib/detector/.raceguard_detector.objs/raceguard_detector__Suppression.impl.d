lib/detector/suppression.ml: Buffer List Printf Raceguard_util String
