(* Tests pinning the hot-path optimisations:

   - properties: the interned {!Lockset} operations agree with the
     naive sorted-set reference implementation, and interning gives
     physical equality for equal sets;
   - fidelity: the per-word shadow fast path produces byte-identical
     reports to the full Figure-1 state machine, on the example
     MiniC++ programs and on every SIP test case. *)

module Vm = Raceguard_vm
module Engine = Vm.Engine
module M = Raceguard_minicc
module Sip = Raceguard_sip
module R = Raceguard
module Det = Raceguard_detector
module Ls = Det.Lockset
module Iss = Raceguard_util.Int_sorted_set

(* --- lockset vs naive reference ---------------------------------------- *)

(* lock uids in real runs are small ints; keep the generated universe
   small so intersections are non-trivially non-empty *)
let gen_elts = QCheck2.Gen.(list_size (int_bound 8) (int_bound 20))

let naive l = Iss.of_list l

let listed ls =
  match Ls.to_list ls with
  | Some l -> l
  | None -> Alcotest.fail "finite lockset rendered as top"

let qc_inter_agrees_with_naive =
  QCheck2.Test.make ~name:"interned inter agrees with naive sets" ~count:300
    QCheck2.Gen.(pair gen_elts gen_elts)
    (fun (l1, l2) ->
      let a = Ls.of_list l1 and b = Ls.of_list l2 in
      listed (Ls.inter a b) = Iss.to_list (Iss.inter (naive l1) (naive l2)))

let qc_union_agrees_with_naive =
  QCheck2.Test.make ~name:"interned union agrees with naive sets" ~count:300
    QCheck2.Gen.(pair gen_elts gen_elts)
    (fun (l1, l2) ->
      let a = Ls.of_list l1 and b = Ls.of_list l2 in
      listed (Ls.union a b) = Iss.to_list (Iss.union (naive l1) (naive l2)))

let qc_add_remove_agree_with_naive =
  QCheck2.Test.make ~name:"interned add/remove agree with naive sets" ~count:300
    QCheck2.Gen.(pair gen_elts (int_bound 20))
    (fun (l, x) ->
      let a = Ls.of_list l in
      listed (Ls.add x a) = Iss.to_list (Iss.add x (naive l))
      && listed (Ls.remove x a) = Iss.to_list (Iss.remove x (naive l))
      && Ls.mem x a = Iss.mem x (naive l)
      && Ls.cardinal a = Iss.cardinal (naive l))

let qc_interning_gives_physical_equality =
  QCheck2.Test.make ~name:"equal sets intern to the same value" ~count:300 gen_elts
    (fun l ->
      (* order- and duplicate-insensitive, and memoised ops return the
         physically identical interned value every time *)
      Ls.of_list l == Ls.of_list (List.rev l @ l)
      && Ls.inter (Ls.of_list l) Ls.top == Ls.of_list l
      &&
      let a = Ls.of_list l and b = Ls.of_list (List.rev l) in
      Ls.inter a b == Ls.inter a b && Ls.equal a b)

(* --- fast-path fidelity on the example programs ------------------------- *)

let slow_hwlc_dr = { Det.Helgrind.hwlc_dr with fast_path = false }

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* run [file] under [cfg]; return every report occurrence rendered in
   full plus the fast-path hit counter *)
let run_mcc ~seed cfg file =
  let interp, _pretty, _n = M.Interp.compile ~annotate:true ~file (read_file file) in
  let h = Det.Helgrind.create cfg in
  let vm = Engine.create ~config:{ Engine.default_config with seed } () in
  Engine.add_tool vm (Det.Helgrind.tool h);
  let outcome = Engine.run vm (fun () -> M.Interp.run_main interp) in
  (match outcome.failures with
  | [] -> ()
  | (_, name, e) :: _ -> Alcotest.failf "thread %s raised %s" name (Printexc.to_string e));
  ( List.map (Fmt.str "%a" Det.Report.pp) (Det.Helgrind.reports h),
    Det.Helgrind.fast_path_hits h )

let test_mcc_fast_path_identical file () =
  let path = "../examples/programs/" ^ file in
  List.iter
    (fun seed ->
      let fast, hits = run_mcc ~seed Det.Helgrind.hwlc_dr path in
      let slow, slow_hits = run_mcc ~seed slow_hwlc_dr path in
      Alcotest.(check (list string))
        (Printf.sprintf "%s seed %d: byte-identical reports" file seed)
        slow fast;
      Alcotest.(check int) "fast path disabled counts nothing" 0 slow_hits;
      Alcotest.(check bool)
        (Printf.sprintf "%s seed %d: fast path engaged" file seed)
        true (hits > 0))
    [ 1; 7; 11 ]

(* --- fast-path fidelity on the SIP test cases --------------------------- *)

let run_sip ~seed cfg tc =
  let h = Det.Helgrind.create cfg in
  let vm = Engine.create ~config:{ Engine.default_config with seed } () in
  Engine.add_tool vm (Det.Helgrind.tool h);
  let transport = Sip.Transport.create () in
  let outcome =
    Engine.run vm (fun () ->
        ignore
          (Sip.Workload.run_test_case ~transport ~server_config:R.Runner.default.server tc ()))
  in
  (match outcome.failures with
  | [] -> ()
  | (_, name, e) :: _ -> Alcotest.failf "thread %s raised %s" name (Printexc.to_string e));
  List.map (Fmt.str "%a" Det.Report.pp) (Det.Helgrind.reports h)

let test_sip_fast_path_identical () =
  List.iter
    (fun tc ->
      let fast = run_sip ~seed:7 Det.Helgrind.hwlc_dr tc in
      let slow = run_sip ~seed:7 slow_hwlc_dr tc in
      Alcotest.(check (list string))
        (Printf.sprintf "%s: byte-identical reports" tc.Sip.Workload.tc_name)
        slow fast)
    Sip.Workload.all_test_cases

(* the other stateful configurations take different Figure-1 paths;
   make sure the short-circuit is faithful for them too *)
let test_sip_fast_path_other_configs () =
  List.iter
    (fun cfg ->
      let slow_cfg = { cfg with Det.Helgrind.fast_path = false } in
      List.iter
        (fun tc ->
          let fast = run_sip ~seed:3 cfg tc in
          let slow = run_sip ~seed:3 slow_cfg tc in
          Alcotest.(check (list string))
            (Fmt.str "%a/%s: byte-identical reports" Det.Helgrind.pp_config_name cfg
               tc.Sip.Workload.tc_name)
            slow fast)
        [ Sip.Workload.t1; Sip.Workload.t4; Sip.Workload.t7 ])
    [ Det.Helgrind.original; Det.Helgrind.hwlc; Det.Helgrind.pure_eraser ]

let suite =
  ( "fastpath",
    [
      QCheck_alcotest.to_alcotest qc_inter_agrees_with_naive;
      QCheck_alcotest.to_alcotest qc_union_agrees_with_naive;
      QCheck_alcotest.to_alcotest qc_add_remove_agree_with_naive;
      QCheck_alcotest.to_alcotest qc_interning_gives_physical_equality;
      Alcotest.test_case "racy_counter.mcc reports identical" `Quick
        (test_mcc_fast_path_identical "racy_counter.mcc");
      Alcotest.test_case "refcount.mcc reports identical" `Quick
        (test_mcc_fast_path_identical "refcount.mcc");
      Alcotest.test_case "SIP T1-T8 reports identical" `Quick test_sip_fast_path_identical;
      Alcotest.test_case "other configs identical on T1/T4/T7" `Quick
        test_sip_fast_path_other_configs;
    ] )
