(** Plain-text table and bar-chart rendering for experiment output.

    The benchmark harness prints the same rows/series the paper reports
    (Figure 5 bar chart, Figure 6 table); this module does the layout. *)

type align = Left | Right

type t = { headers : string list; aligns : align list; rows : string list list }

let create ~headers ?aligns () =
  let aligns =
    match aligns with
    | Some a ->
        if List.length a <> List.length headers then
          invalid_arg "Table.create: aligns length mismatch";
        a
    | None -> List.map (fun _ -> Right) headers
  in
  { headers; aligns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: row length mismatch";
  { t with rows = t.rows @ [ row ] }

let widths t =
  let all = t.headers :: t.rows in
  List.mapi
    (fun i _ -> List.fold_left (fun w row -> max w (String.length (List.nth row i))) 0 all)
    t.headers

let pad align w s =
  let n = w - String.length s in
  if n <= 0 then s
  else match align with Left -> s ^ String.make n ' ' | Right -> String.make n ' ' ^ s

let render t =
  let ws = widths t in
  let line row =
    String.concat "  "
      (List.map2 (fun (w, a) s -> pad a w s) (List.combine ws t.aligns) row)
  in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') ws) in
  String.concat "\n" (line t.headers :: sep :: List.map line t.rows)

let print t = print_endline (render t)

(** Horizontal ASCII bar chart: one stacked bar per row.  [segments] is a
    list of (label, glyph); each row gives the value of every segment. *)
let render_stacked_bars ~title ~segments ~rows ~max_width =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (title ^ "\n");
  let max_total =
    List.fold_left (fun m (_, vals) -> max m (List.fold_left ( + ) 0 vals)) 1 rows
  in
  let scale v = v * max_width / max_total in
  let label_w = List.fold_left (fun m (l, _) -> max m (String.length l)) 0 rows in
  List.iter
    (fun (label, vals) ->
      Buffer.add_string buf (pad Left label_w label);
      Buffer.add_string buf " |";
      List.iteri
        (fun i v ->
          let _, glyph = List.nth segments i in
          Buffer.add_string buf (String.make (scale v) glyph))
        vals;
      Buffer.add_string buf (Printf.sprintf "  (total %d)\n" (List.fold_left ( + ) 0 vals)))
    rows;
  Buffer.add_string buf "legend: ";
  List.iter
    (fun (name, glyph) -> Buffer.add_string buf (Printf.sprintf "[%c] %s  " glyph name))
    segments;
  Buffer.add_string buf "\n";
  Buffer.contents buf
