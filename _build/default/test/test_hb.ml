(* Tests for the happens-before machinery: thread segments (Figure 2),
   vector clocks, the DJIT baseline, the lock-order analysis and
   offline (post-mortem) replay. *)

module Vm = Raceguard_vm
module Engine = Vm.Engine
module Api = Vm.Api
module Det = Raceguard_detector
module Segments = Det.Segments
module Vc = Det.Vector_clock
module Loc = Raceguard_util.Loc

let loc = Loc.v "hb.c" "main" 1

(* --- segments (E4) ---------------------------------------------------- *)

let test_segments_create_edge () =
  let s = Segments.create () in
  Segments.on_thread_start s ~tid:0 ~parent:None;
  let main_before = Segments.seg_of s 0 in
  Segments.on_thread_start s ~tid:1 ~parent:(Some 0);
  let main_after = Segments.seg_of s 0 in
  let child = Segments.seg_of s 1 in
  Alcotest.(check bool) "parent seg before create HB child" true
    (Segments.happens_before s main_before child);
  Alcotest.(check bool) "parent seg before create HB parent after" true
    (Segments.happens_before s main_before main_after);
  Alcotest.(check bool) "child does not HB parent continuation" false
    (Segments.happens_before s child main_after);
  Alcotest.(check bool) "parent continuation does not HB child" false
    (Segments.happens_before s main_after child)

let test_segments_join_edge () =
  let s = Segments.create () in
  Segments.on_thread_start s ~tid:0 ~parent:None;
  Segments.on_thread_start s ~tid:1 ~parent:(Some 0);
  let child_seg = Segments.seg_of s 1 in
  Segments.on_thread_exit s ~tid:1;
  Segments.on_join s ~joiner:0 ~joined:1;
  let after_join = Segments.seg_of s 0 in
  Alcotest.(check bool) "joined thread HB joiner's continuation" true
    (Segments.happens_before s child_seg after_join)

let test_segments_siblings_unordered () =
  let s = Segments.create () in
  Segments.on_thread_start s ~tid:0 ~parent:None;
  Segments.on_thread_start s ~tid:1 ~parent:(Some 0);
  Segments.on_thread_start s ~tid:2 ~parent:(Some 0);
  let a = Segments.seg_of s 1 and b = Segments.seg_of s 2 in
  Alcotest.(check bool) "sibling a !HB b" false (Segments.happens_before s a b);
  Alcotest.(check bool) "sibling b !HB a" false (Segments.happens_before s b a)

let test_segments_reflexive_and_chain () =
  let s = Segments.create () in
  Segments.on_thread_start s ~tid:0 ~parent:None;
  let g0 = Segments.seg_of s 0 in
  Alcotest.(check bool) "reflexive" true (Segments.happens_before s g0 g0);
  (* chain of creates: grandparent HB grandchild *)
  Segments.on_thread_start s ~tid:1 ~parent:(Some 0);
  Segments.on_thread_start s ~tid:2 ~parent:(Some 1);
  let grandchild = Segments.seg_of s 2 in
  Alcotest.(check bool) "transitive through two creates" true
    (Segments.happens_before s g0 grandchild)

(* property: happens_before agrees with naive reachability over random
   create/join histories, and is a partial order *)
let qc_segments_model =
  let gen =
    (* a random history: each step either creates a thread from a live
       one or joins a finished one into a live one *)
    QCheck2.Gen.(list_size (int_bound 20) (pair (int_bound 5) (int_bound 5)))
  in
  QCheck2.Test.make ~name:"segments: HB = reachability, and is a partial order" ~count:200 gen
    (fun steps ->
      let s = Segments.create () in
      Segments.on_thread_start s ~tid:0 ~parent:None;
      let next_tid = ref 1 in
      let live = ref [ 0 ] in
      (* mirror: adjacency for naive reachability *)
      let edges = Hashtbl.create 64 in
      let add_edge a b = Hashtbl.add edges b a in
      let record_segments f =
        (* capture current segments of all live threads before and
           after, adding the program-order edges our implementation
           creates implicitly through parent lists *)
        f ()
      in
      List.iter
        (fun (op, pick) ->
          let tids = !live in
          let victim = List.nth tids (pick mod List.length tids) in
          if op mod 2 = 0 && List.length tids < 6 then begin
            let child = !next_tid in
            incr next_tid;
            let before = Segments.seg_of s victim in
            record_segments (fun () ->
                Segments.on_thread_start s ~tid:child ~parent:(Some victim));
            let after = Segments.seg_of s victim in
            let cseg = Segments.seg_of s child in
            add_edge before after;
            add_edge before cseg;
            live := child :: !live
          end
          else if List.length tids > 1 && victim <> 0 then begin
            (* join victim into thread 0 *)
            let vseg = Segments.seg_of s victim in
            let joiner_before = Segments.seg_of s 0 in
            Segments.on_thread_exit s ~tid:victim;
            Segments.on_join s ~joiner:0 ~joined:victim;
            let joiner_after = Segments.seg_of s 0 in
            add_edge vseg joiner_after;
            add_edge joiner_before joiner_after;
            live := List.filter (fun t -> t <> victim) !live
          end)
        steps;
      let n = Segments.count s in
      let naive_reaches a b =
        (* BFS backwards over the mirror edges *)
        let seen = Hashtbl.create 16 in
        let rec go frontier =
          match frontier with
          | [] -> false
          | x :: rest ->
              if x = a then true
              else if Hashtbl.mem seen x then go rest
              else begin
                Hashtbl.replace seen x ();
                go (Hashtbl.find_all edges x @ rest)
              end
        in
        go [ b ]
      in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          let hb = Segments.happens_before s a b in
          if hb <> (a = b || naive_reaches a b) then ok := false;
          (* antisymmetry *)
          if a <> b && hb && Segments.happens_before s b a then ok := false
        done
      done;
      !ok)

(* --- vector clocks ----------------------------------------------------- *)

let test_vc_basics () =
  let a = Vc.create () in
  Vc.incr a 3;
  Vc.incr a 3;
  Vc.incr a 0;
  Alcotest.(check int) "get" 2 (Vc.get a 3);
  Alcotest.(check int) "get missing" 0 (Vc.get a 7);
  let b = Vc.copy a in
  Vc.incr b 7;
  Alcotest.(check bool) "a <= b" true (Vc.leq a b);
  Alcotest.(check bool) "not b <= a" false (Vc.leq b a);
  Vc.join a b;
  Alcotest.(check bool) "after join b <= a" true (Vc.leq b a)

let qc_vc_join_is_lub =
  let gen = QCheck2.Gen.(list_size (int_bound 8) (int_bound 5)) in
  QCheck2.Test.make ~name:"vector clock join is a least upper bound" ~count:200
    QCheck2.Gen.(pair gen gen)
    (fun (la, lb) ->
      let mk l =
        let v = Vc.create () in
        List.iteri (fun i x -> Vc.set v i x) l;
        v
      in
      let a = mk la and b = mk lb in
      let j = Vc.copy a in
      Vc.join j b;
      Vc.leq a j && Vc.leq b j
      &&
      (* least: any upper bound dominates the join *)
      let ub = Vc.copy a in
      Vc.join ub b;
      Vc.incr ub 0;
      Vc.leq j ub)

(* --- DJIT --------------------------------------------------------------- *)

let run_djit ?(seed = 1) ?config f =
  let vm = Engine.create ~config:{ Engine.default_config with seed } () in
  let d = Det.Djit.create ?config () in
  Engine.add_tool vm (Det.Djit.tool d);
  let outcome = Engine.run vm f in
  assert (outcome.failures = []);
  d

let wloc = Loc.v "hb.c" "worker" 2

let unordered_writes () =
  let a = Api.alloc ~loc 1 in
  let w () = Api.write ~loc:wloc a 1 in
  let t1 = Api.spawn ~loc ~name:"a" w in
  let t2 = Api.spawn ~loc ~name:"b" w in
  Api.join ~loc t1;
  Api.join ~loc t2

let test_djit_detects_unordered () =
  let d = run_djit unordered_writes in
  Alcotest.(check bool) "unordered writes reported" true (Det.Djit.location_count d > 0)

let test_djit_mutex_orders () =
  let d =
    run_djit (fun () ->
        let a = Api.alloc ~loc 1 in
        let m = Api.Mutex.create ~loc "m" in
        let w () =
          Api.Mutex.with_lock ~loc:wloc m (fun () ->
              Api.write ~loc:wloc a (Api.read ~loc:wloc a + 1))
        in
        let t1 = Api.spawn ~loc ~name:"a" w in
        let t2 = Api.spawn ~loc ~name:"b" w in
        Api.join ~loc t1;
        Api.join ~loc t2)
  in
  Alcotest.(check int) "mutex-ordered accesses silent" 0 (Det.Djit.location_count d)

let test_djit_join_orders () =
  let d =
    run_djit (fun () ->
        let a = Api.alloc ~loc 1 in
        let t = Api.spawn ~loc ~name:"w" (fun () -> Api.write ~loc:wloc a 1) in
        Api.join ~loc t;
        Api.write ~loc a 2)
  in
  Alcotest.(check int) "join-ordered accesses silent" 0 (Det.Djit.location_count d)

let test_djit_semaphore_orders () =
  let d =
    run_djit (fun () ->
        let a = Api.alloc ~loc 1 in
        let s = Api.Sem.create ~loc ~init:0 "s" in
        let t =
          Api.spawn ~loc ~name:"producer" (fun () ->
              Api.write ~loc:wloc a 1;
              Api.Sem.post ~loc:wloc s)
        in
        Api.Sem.wait ~loc s;
        Api.write ~loc a 2;
        Api.join ~loc t)
  in
  Alcotest.(check int) "semaphore edge orders the accesses" 0 (Det.Djit.location_count d)

let test_djit_sem_edges_off () =
  (* with semaphore edges disabled (the paper's §2.2 criticism) the
     same program is reported *)
  let d =
    run_djit
      ~config:{ Det.Djit.default_config with sync_on_sem = false }
      (fun () ->
        let a = Api.alloc ~loc 1 in
        let s = Api.Sem.create ~loc ~init:0 "s" in
        let t =
          Api.spawn ~loc ~name:"producer" (fun () ->
              Api.write ~loc:wloc a 1;
              Api.Sem.post ~loc:wloc s)
        in
        Api.Sem.wait ~loc s;
        Api.write ~loc a 2;
        Api.join ~loc t)
  in
  Alcotest.(check bool) "without sem edges the handoff is reported" true
    (Det.Djit.location_count d > 0)

let test_djit_first_only () =
  let with_first_only flag =
    let d =
      run_djit ~config:{ Det.Djit.default_config with first_only = flag } (fun () ->
          let a = Api.alloc ~loc 1 in
          let w l () =
            Api.write ~loc:l a 1;
            Api.yield ();
            Api.write ~loc:l a 2
          in
          let t1 = Api.spawn ~loc ~name:"a" (w (Loc.v "hb.c" "wa" 3)) in
          let t2 = Api.spawn ~loc ~name:"b" (w (Loc.v "hb.c" "wb" 4)) in
          Api.join ~loc t1;
          Api.join ~loc t2)
    in
    Det.Report.occurrence_count (Det.Djit.collector d)
  in
  Alcotest.(check int) "first_only: one report per location" 1 (with_first_only true);
  Alcotest.(check bool) "without first_only: several" true (with_first_only false >= 1)

(* --- lock order ---------------------------------------------------------- *)

let run_lock_order ?(seed = 1) f =
  let vm = Engine.create ~config:{ Engine.default_config with seed } () in
  let l = Det.Lock_order.create () in
  Engine.add_tool vm (Det.Lock_order.tool l);
  let outcome = Engine.run vm f in
  (outcome, l)

let test_lock_order_inversion_flagged () =
  let _, l = run_lock_order (Raceguard.Scenarios.lock_order_inversion ~force_deadlock:false) in
  Alcotest.(check int) "one inversion pair" 1 (Det.Lock_order.location_count l)

let test_lock_order_consistent_silent () =
  let _, l =
    run_lock_order (fun () ->
        let a = Api.Mutex.create ~loc "A" and b = Api.Mutex.create ~loc "B" in
        let f () =
          Api.Mutex.lock ~loc a;
          Api.Mutex.lock ~loc b;
          Api.Mutex.unlock ~loc b;
          Api.Mutex.unlock ~loc a
        in
        let t1 = Api.spawn ~loc ~name:"t1" f in
        let t2 = Api.spawn ~loc ~name:"t2" f in
        Api.join ~loc t1;
        Api.join ~loc t2)
  in
  Alcotest.(check int) "consistent order silent" 0 (Det.Lock_order.location_count l)

let test_lock_order_three_cycle () =
  let _, l =
    run_lock_order (fun () ->
        let a = Api.Mutex.create ~loc "A"
        and b = Api.Mutex.create ~loc "B"
        and c = Api.Mutex.create ~loc "C" in
        let pairwise x y () =
          Api.Mutex.lock ~loc x;
          Api.Mutex.lock ~loc y;
          Api.Mutex.unlock ~loc y;
          Api.Mutex.unlock ~loc x
        in
        (* A<B, B<C established sequentially, then C<A closes a 3-cycle *)
        pairwise a b ();
        pairwise b c ();
        pairwise c a ())
  in
  Alcotest.(check bool) "3-cycle flagged" true (Det.Lock_order.location_count l > 0)

(* --- hybrid (lock-set gated by happens-before) ------------------------------ *)

let run_hybrid ?(seed = 1) ?config f =
  let vm = Engine.create ~config:{ Engine.default_config with seed } () in
  let h = Det.Hybrid.create ?config () in
  Engine.add_tool vm (Det.Hybrid.tool h);
  let outcome = Engine.run vm f in
  assert (outcome.failures = []);
  h

let test_hybrid_reports_real_race () =
  let h = run_hybrid unordered_writes in
  Alcotest.(check bool) "concurrent unlocked writes reported" true
    (Det.Hybrid.location_count h > 0)

let test_hybrid_suppresses_ordered_violation () =
  (* a locking-discipline violation whose accesses are ordered by a
     semaphore: plain Helgrind reports it, the hybrid does not *)
  let program () =
    let a = Api.alloc ~loc 1 in
    let s = Api.Sem.create ~loc ~init:0 "s" in
    let m = Api.Mutex.create ~loc "m" in
    let t =
      Api.spawn ~loc ~name:"first" (fun () ->
          (* writes under the lock *)
          Api.Mutex.with_lock ~loc:wloc m (fun () -> Api.write ~loc:wloc a 1);
          Api.Sem.post ~loc:wloc s)
    in
    Api.Sem.wait ~loc s;
    (* writes without the lock — discipline violation, but strictly
       after the other thread's write *)
    Api.write ~loc a 2;
    Api.join ~loc t
  in
  let plain =
    let vm = Engine.create ~config:Engine.default_config () in
    let h = Det.Helgrind.create Det.Helgrind.hwlc_dr in
    Engine.add_tool vm (Det.Helgrind.tool h);
    let _ = Engine.run vm program in
    Det.Helgrind.location_count h
  in
  let hybrid = Det.Hybrid.location_count (run_hybrid program) in
  Alcotest.(check bool) "lock-set alone reports the violation" true (plain > 0);
  Alcotest.(check int) "hybrid suppresses the ordered violation" 0 hybrid

let test_hybrid_never_exceeds_lockset () =
  List.iter
    (fun seed ->
      let vm = Engine.create ~config:{ Engine.default_config with seed } () in
      let plain = Det.Helgrind.create Det.Helgrind.hwlc_dr in
      let hybrid = Det.Hybrid.create () in
      Engine.add_tool vm (Det.Helgrind.tool plain);
      Engine.add_tool vm (Det.Hybrid.tool hybrid);
      let transport = Raceguard_sip.Transport.create () in
      let _ =
        Engine.run vm (fun () ->
            ignore
              (Raceguard_sip.Workload.run_test_case ~transport
                 ~server_config:Raceguard.Runner.default.server Raceguard_sip.Workload.t3 ()))
      in
      Alcotest.(check bool)
        (Printf.sprintf "hybrid <= lockset (seed %d)" seed)
        true
        (Det.Hybrid.location_count hybrid <= Det.Helgrind.location_count plain))
    [ 1; 4 ]

(* --- RaceTrack-style adaptive detector ([16]) ------------------------------- *)

let run_racetrack ?(seed = 1) ?config f =
  let vm = Engine.create ~config:{ Engine.default_config with seed } () in
  let r = Det.Racetrack.create ?config () in
  Engine.add_tool vm (Det.Racetrack.tool r);
  let outcome = Engine.run vm f in
  assert (outcome.failures = []);
  r

let test_racetrack_reports_real_race () =
  Alcotest.(check bool) "unordered unlocked writes reported" true
    (Det.Racetrack.location_count (run_racetrack unordered_writes) > 0)

let test_racetrack_accepts_discipline () =
  let program () =
    let a = Api.alloc ~loc 1 in
    let m = Api.Mutex.create ~loc "m" in
    let w () =
      for _ = 1 to 5 do
        Api.Mutex.with_lock ~loc:wloc m (fun () -> Api.write ~loc:wloc a (Api.read ~loc:wloc a + 1))
      done
    in
    let t1 = Api.spawn ~loc ~name:"a" w in
    let t2 = Api.spawn ~loc ~name:"b" w in
    Api.join ~loc t1;
    Api.join ~loc t2
  in
  Alcotest.(check int) "disciplined locking accepted" 0
    (Det.Racetrack.location_count (run_racetrack program))

let test_racetrack_adaptive_reprivatisation () =
  (* handoff through a semaphore: the threadset prunes back to the new
     owner, so its unlocked writes are accepted — where the plain
     lock-set algorithm (without annotations) reports them *)
  let program () =
    let a = Api.alloc ~loc 1 in
    let s = Api.Sem.create ~loc ~init:0 "s" in
    let t =
      Api.spawn ~loc ~name:"producer" (fun () ->
          Api.write ~loc:wloc a 1;
          Api.Sem.post ~loc:wloc s)
    in
    Api.Sem.wait ~loc s;
    Api.write ~loc a 2;
    Api.write ~loc a 3;
    Api.join ~loc t
  in
  Alcotest.(check int) "sem handoff re-privatised" 0
    (Det.Racetrack.location_count (run_racetrack program));
  (* the queue handoff of Figure 11 is likewise accepted without
     needing the HB annotations *)
  Alcotest.(check int) "queue handoff accepted adaptively" 0
    (Det.Racetrack.location_count (run_racetrack Raceguard.Scenarios.handoff_pool))

let test_racetrack_refcount_bus_model () =
  let refcount () =
    let a = Api.alloc ~loc 1 in
    Api.write ~loc a 1;
    let user () =
      ignore (Api.read ~loc:wloc a);
      ignore (Api.atomic_incr ~loc:wloc a);
      ignore (Api.atomic_decr ~loc:wloc a)
    in
    let t1 = Api.spawn ~loc ~name:"a" user in
    let t2 = Api.spawn ~loc ~name:"b" user in
    Api.join ~loc t1;
    Api.join ~loc t2
  in
  Alcotest.(check int) "refcount accepted under rw-lock bus model" 0
    (Det.Racetrack.location_count (run_racetrack refcount));
  Alcotest.(check bool) "reported under the original bus model" true
    (Det.Racetrack.location_count
       (run_racetrack
          ~config:{ Det.Racetrack.default_config with bus_model = Det.Helgrind.Locked_mutex }
          refcount)
    > 0)

(* --- §5 extension: HAPPENS_BEFORE/AFTER annotations ------------------------ *)

let test_segments_annotation_edge () =
  let s = Segments.create () in
  Segments.on_thread_start s ~tid:0 ~parent:None;
  Segments.on_thread_start s ~tid:1 ~parent:(Some 0);
  (* make them genuinely concurrent first *)
  let sender_before = Segments.seg_of s 0 in
  Segments.on_happens_before s ~tid:0 ~tag:42;
  let sender_after = Segments.seg_of s 0 in
  let recv_before = Segments.seg_of s 1 in
  Segments.on_happens_after s ~tid:1 ~tag:42;
  let recv_after = Segments.seg_of s 1 in
  Alcotest.(check bool) "sender's past HB receiver's future" true
    (Segments.happens_before s sender_before recv_after);
  Alcotest.(check bool) "sender's future not ordered" false
    (Segments.happens_before s sender_after recv_after);
  Alcotest.(check bool) "receiver's past preserved" true
    (Segments.happens_before s recv_before recv_after);
  (* an AFTER with no matching BEFORE creates no edge *)
  Segments.on_happens_after s ~tid:1 ~tag:99;
  Alcotest.(check bool) "unmatched tag is ignored" false
    (Segments.happens_before s sender_after (Segments.seg_of s 1))

let count_helgrind ?(seed = 1) config f =
  let vm = Engine.create ~config:{ Engine.default_config with seed } () in
  let h = Det.Helgrind.create config in
  Engine.add_tool vm (Det.Helgrind.tool h);
  let outcome = Engine.run vm f in
  assert (outcome.failures = []);
  Det.Helgrind.location_count h

let test_queue_annotations_remove_pool_fps () =
  Alcotest.(check bool) "pool handoff reported without HB support" true
    (count_helgrind Det.Helgrind.hwlc_dr Raceguard.Scenarios.handoff_pool > 0);
  Alcotest.(check int) "pool handoff silent with HB support" 0
    (count_helgrind Det.Helgrind.hwlc_dr_hb Raceguard.Scenarios.handoff_pool)

let test_hb_does_not_mask_real_races () =
  (* an annotated handoff of object X must not silence a race on an
     unrelated object Y *)
  let program () =
    let loc = Loc.v "hbx.c" "main" 1 in
    let wloc = Loc.v "hbx.c" "worker" 2 in
    let q = Vm.Msg_queue.create ~annotated:true ~name:"q" ~capacity:2 () in
    let x = Api.alloc ~loc 1 in
    let y = Api.alloc ~loc 1 in
    Api.write ~loc y 1;
    let worker () =
      let x' = Vm.Msg_queue.get q in
      Api.write ~loc:wloc x' 1;
      (* racy: y was never handed over *)
      Api.write ~loc:wloc y 2
    in
    let t = Api.spawn ~loc ~name:"w" worker in
    Api.write ~loc x 5;
    Vm.Msg_queue.put q x;
    (* concurrent unlocked write to y in main *)
    Api.write ~loc y 3;
    Api.yield ();
    Api.write ~loc y 4;
    Api.join ~loc t
  in
  let detected =
    List.exists
      (fun seed -> count_helgrind ~seed Det.Helgrind.hwlc_dr_hb program > 0)
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check bool) "unrelated race still reported" true detected

let test_djit_honours_annotations () =
  let program () =
    let loc = Loc.v "hbd.c" "main" 1 in
    let a = Api.alloc ~loc 1 in
    let t =
      Api.spawn ~loc ~name:"w" (fun () ->
          Api.write ~loc:(Loc.v "hbd.c" "w" 2) a 1;
          Api.annotate_happens_before ~tag:a)
    in
    Api.sleep 20;
    Api.annotate_happens_after ~tag:a;
    Api.write ~loc a 2;
    Api.join ~loc t
  in
  let run config =
    let d = run_djit ~seed:2 ~config program in
    Det.Djit.location_count d
  in
  Alcotest.(check int) "annotations order the accesses" 0
    (run Det.Djit.default_config);
  Alcotest.(check bool) "ignoring annotations reports" true
    (run { Det.Djit.default_config with sync_on_annotations = false } > 0)

(* --- offline replay -------------------------------------------------------- *)

let test_offline_replay_equals_online () =
  let program () =
    let transport = Raceguard_sip.Transport.create () in
    ignore
      (Raceguard_sip.Workload.run_test_case ~transport
         ~server_config:Raceguard.Runner.default.server Raceguard_sip.Workload.t3 ())
  in
  (* online *)
  let vm1 = Engine.create ~config:{ Engine.default_config with seed = 4 } () in
  let online = Det.Helgrind.create Det.Helgrind.hwlc_dr in
  Engine.add_tool vm1 (Det.Helgrind.tool online);
  let _ = Engine.run vm1 program in
  (* offline: record the same seed's trace, replay post mortem *)
  let vm2 = Engine.create ~config:{ Engine.default_config with seed = 4 } () in
  let recorder = Det.Offline.create_recorder () in
  Engine.add_tool vm2 (Det.Offline.tool recorder);
  let _ = Engine.run vm2 program in
  let offline = Det.Helgrind.create Det.Helgrind.hwlc_dr in
  Det.Offline.replay recorder (Det.Helgrind.tool offline);
  Alcotest.(check int) "offline replay reproduces the online locations"
    (Det.Helgrind.location_count online)
    (Det.Helgrind.location_count offline);
  Alcotest.(check bool) "trace is non-trivial" true (Det.Offline.length recorder > 1000);
  Alcotest.(check bool) "log footprint measured" true (Det.Offline.footprint_words recorder > 0)

let suite =
  ( "happens-before",
    [
      Alcotest.test_case "segments: create edge" `Quick test_segments_create_edge;
      Alcotest.test_case "segments: join edge" `Quick test_segments_join_edge;
      Alcotest.test_case "segments: siblings unordered" `Quick test_segments_siblings_unordered;
      Alcotest.test_case "segments: reflexive + chain" `Quick test_segments_reflexive_and_chain;
      QCheck_alcotest.to_alcotest qc_segments_model;
      Alcotest.test_case "vector clock basics" `Quick test_vc_basics;
      QCheck_alcotest.to_alcotest qc_vc_join_is_lub;
      Alcotest.test_case "djit: unordered reported" `Quick test_djit_detects_unordered;
      Alcotest.test_case "djit: mutex orders" `Quick test_djit_mutex_orders;
      Alcotest.test_case "djit: join orders" `Quick test_djit_join_orders;
      Alcotest.test_case "djit: semaphore orders" `Quick test_djit_semaphore_orders;
      Alcotest.test_case "djit: sem edges off" `Quick test_djit_sem_edges_off;
      Alcotest.test_case "djit: first-only" `Quick test_djit_first_only;
      Alcotest.test_case "lock order: inversion" `Quick test_lock_order_inversion_flagged;
      Alcotest.test_case "lock order: consistent" `Quick test_lock_order_consistent_silent;
      Alcotest.test_case "lock order: 3-cycle" `Quick test_lock_order_three_cycle;
      Alcotest.test_case "hybrid: real race reported" `Quick test_hybrid_reports_real_race;
      Alcotest.test_case "hybrid: ordered violation suppressed" `Quick
        test_hybrid_suppresses_ordered_violation;
      Alcotest.test_case "hybrid: never exceeds lockset" `Quick test_hybrid_never_exceeds_lockset;
      Alcotest.test_case "racetrack: real race reported" `Quick test_racetrack_reports_real_race;
      Alcotest.test_case "racetrack: discipline accepted" `Quick test_racetrack_accepts_discipline;
      Alcotest.test_case "racetrack: adaptive re-privatisation" `Quick
        test_racetrack_adaptive_reprivatisation;
      Alcotest.test_case "racetrack: bus models" `Quick test_racetrack_refcount_bus_model;
      Alcotest.test_case "annotations: segment edges" `Quick test_segments_annotation_edge;
      Alcotest.test_case "annotations: pool FPs removed" `Quick test_queue_annotations_remove_pool_fps;
      Alcotest.test_case "annotations: no masking" `Quick test_hb_does_not_mask_real_races;
      Alcotest.test_case "annotations: djit edges" `Quick test_djit_honours_annotations;
      Alcotest.test_case "offline replay = online" `Quick test_offline_replay_equals_online;
    ] )
