lib/minicc/annotate.ml: Ast List Option
