lib/detector/vector_clock.ml: Array Fmt
