(** Per-thread held-lock bookkeeping shared by the lock-set detectors
    ({!Helgrind}, {!Racetrack}).

    The uid lists (unsorted, may hold duplicates for re-entrant
    rw-lock read acquisition) are the source of truth.  The four
    {e interned} lock-sets an access can need — held-any / held-write,
    each with and without the virtual bus lock — are bundled into a
    {!ctx} record, and ctx transitions are memoised process-globally
    keyed by (ctx, uid, mode): after warm-up an acquire is one hash
    probe, and a LIFO release (the overwhelmingly common discipline)
    restores the pre-acquire snapshot without touching any table. *)

type ctx = {
  c_id : int;
  any_set : Lockset.t;
  any_bus : Lockset.t;  (** [any_set] + the virtual bus lock *)
  write_set : Lockset.t;
  write_bus : Lockset.t;
}

module Metrics = Raceguard_obs.Metrics

let m_ctx_count = Metrics.gauge "detector.held_locks.ctx_count"
let m_transition_hits = Metrics.counter "detector.held_locks.transition_memo_hits"
let m_transition_misses = Metrics.counter "detector.held_locks.transition_memo_misses"
let m_nonlifo_releases = Metrics.counter "detector.held_locks.nonlifo_releases"

(* The whole memo store — including the root ctx, whose bus set is an
   interned lockset — is domain-local (Domain.DLS).  The multicore pool
   runs independent cells on several domains; lockset interning is
   domain-local, so a ctx built on one domain must never be extended on
   another (its set ids would collide with the other domain's memo
   keys), and a shared Hashtbl would be a crash hazard anyway.  Each
   detector instance lives and dies on one domain, so every ctx it ever
   sees comes from its own domain's store. *)
type store = { mutable ctx_count : int; s_root : ctx; transitions : (int, ctx) Hashtbl.t }
(** [transitions]: (c_id, uid, mode) -> successor ctx.  uids share the
    24-bit guard of lockset ids; ctx ids stay far below 2^30. *)

let store_key : store Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let bus = Lockset.of_list [ Lock_id.bus ] in
      {
        ctx_count = 1;
        s_root =
          {
            c_id = 0;
            any_set = Lockset.empty;
            any_bus = bus;
            write_set = Lockset.empty;
            write_bus = bus;
          };
        transitions = Hashtbl.create 256;
      })

let store () = Domain.DLS.get store_key
let root () = (store ()).s_root

let fresh_ctx st ~any_set ~any_bus ~write_set ~write_bus =
  let c = { c_id = st.ctx_count; any_set; any_bus; write_set; write_bus } in
  st.ctx_count <- st.ctx_count + 1;
  Metrics.set m_ctx_count st.ctx_count;
  c

let transition c uid (mode : Raceguard_vm.Eff.mode) =
  let st = store () in
  let mode_bit = match mode with Raceguard_vm.Eff.Write_mode -> 1 | Read_mode -> 0 in
  let key = (c.c_id lsl 26) lor (uid lsl 1) lor mode_bit in
  match Hashtbl.find st.transitions key with
  | c' ->
      Metrics.incr m_transition_hits;
      c'
  | exception Not_found ->
      Metrics.incr m_transition_misses;
      let c' =
        match mode with
        | Raceguard_vm.Eff.Write_mode ->
            fresh_ctx st
              ~any_set:(Lockset.add uid c.any_set)
              ~any_bus:(Lockset.add uid c.any_bus)
              ~write_set:(Lockset.add uid c.write_set)
              ~write_bus:(Lockset.add uid c.write_bus)
        | Raceguard_vm.Eff.Read_mode ->
            fresh_ctx st
              ~any_set:(Lockset.add uid c.any_set)
              ~any_bus:(Lockset.add uid c.any_bus)
              ~write_set:c.write_set ~write_bus:c.write_bus
      in
      Hashtbl.add st.transitions key c';
      c'

type snap = { s_uid : int; s_held_any : int list; s_held_write : int list; s_ctx : ctx }
(** the full state before one acquire; a LIFO release restores it *)

type t = {
  mutable held_any : int list;  (** uids held in any mode *)
  mutable held_write : int list;  (** uids held in write mode *)
  mutable ctx : ctx;
  mutable snaps : snap list;
      (** snapshots of unreleased acquires, newest first — valid as
          long as releases arrive in LIFO order; cleared on the first
          out-of-order release *)
}

let create () = { held_any = []; held_write = []; ctx = root (); snaps = [] }

let acquire t uid (mode : Raceguard_vm.Eff.mode) =
  t.snaps <-
    { s_uid = uid; s_held_any = t.held_any; s_held_write = t.held_write; s_ctx = t.ctx }
    :: t.snaps;
  t.held_any <- uid :: t.held_any;
  (match mode with
  | Raceguard_vm.Eff.Write_mode -> t.held_write <- uid :: t.held_write
  | Raceguard_vm.Eff.Read_mode -> ());
  t.ctx <- transition t.ctx uid mode

let remove_one uid xs =
  let rec go = function [] -> [] | x :: rest -> if x = uid then rest else x :: go rest in
  go xs

(* cold path: rebuild a ctx from the uid lists after a non-LIFO
   release; the sets are interned so equal rebuilds stay cheap to
   compare, and transitions from the fresh ctx re-memoise *)
let recompute held_any held_write =
  let any_set = Lockset.of_list held_any in
  let write_set = Lockset.of_list held_write in
  fresh_ctx (store ()) ~any_set
    ~any_bus:(Lockset.add Lock_id.bus any_set)
    ~write_set
    ~write_bus:(Lockset.add Lock_id.bus write_set)

let release t uid =
  match t.snaps with
  | s :: rest when s.s_uid = uid ->
      (* LIFO release: restore the pre-acquire state wholesale *)
      t.held_any <- s.s_held_any;
      t.held_write <- s.s_held_write;
      t.ctx <- s.s_ctx;
      t.snaps <- rest
  | _ ->
      Metrics.incr m_nonlifo_releases;
      t.snaps <- [];
      t.held_any <- remove_one uid t.held_any;
      t.held_write <- remove_one uid t.held_write;
      t.ctx <- recompute t.held_any t.held_write

(** The effective (any, write) lock-sets of one access.  [bus_rw] is
    the paper's HWLC model: every read implicitly holds the bus lock
    in read mode, so the any-set always contains it; under the
    original model only [atomic] accesses do. *)
let effective t ~bus_rw ~atomic =
  let c = t.ctx in
  let any = if bus_rw || atomic then c.any_bus else c.any_set in
  let write = if atomic then c.write_bus else c.write_set in
  (any, write)
