(* Audit the SIP proxy server with all three detector configurations —
   the paper's debugging process end to end on one test case.

     dune exec examples/sip_audit.exe -- [T1..T8] [seed]

   Prints the Figure-6 style counts for the chosen test case, the
   classified composition of the reports, and the real bugs identified
   by the ground-truth oracle. *)

module R = Raceguard
module Det = Raceguard_detector
module Sip = Raceguard_sip

let () =
  let tc_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "T4" in
  let seed = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 7 in
  let tc =
    match
      List.find_opt
        (fun tc -> tc.Sip.Workload.tc_name = tc_name)
        Sip.Workload.all_test_cases
    with
    | Some tc -> tc
    | None ->
        Printf.eprintf "unknown test case %s (use T1..T8)\n" tc_name;
        exit 1
  in
  Printf.printf "Auditing the SIP proxy with test case %s (%s), seed %d\n\n" tc.tc_name
    tc.tc_description seed;
  let config =
    { R.Runner.default with seed; server = { R.Runner.default.server with enable_watchdog = true } }
  in
  let res = R.Runner.run_test_case config tc in
  (match res.oracle with
  | Some o ->
      Printf.printf "functional oracle: %d requests handled, %d responses, %d failures\n"
        o.r_requests_handled o.r_responses (List.length o.r_failures)
  | None -> ());
  let original = R.Runner.locations_of res "Original" in
  let hwlc = R.Runner.locations_of res "HWLC" in
  let hwlc_dr = R.Runner.locations_of res "HWLC+DR" in
  Printf.printf "\nreported locations: Original %d | HWLC %d | HWLC+DR %d\n"
    (List.length original) (List.length hwlc) (List.length hwlc_dr);
  let s = R.Classify.split ~original ~hwlc ~hwlc_dr in
  Printf.printf
    "composition: %d hardware-lock FPs, %d destructor FPs, %d remaining (%.0f%% removed)\n"
    s.hw_lock_fp s.destructor_fp s.remaining (R.Classify.reduction_pct s);
  let bugs = R.Classify.bugs_found hwlc_dr in
  Printf.printf "\nreal bugs witnessed by the remaining reports:\n";
  List.iter
    (fun b -> Printf.printf "  %-24s %s\n" (Sip.Bugs.to_string b) (Sip.Bugs.description b))
    bugs;
  Printf.printf "\nfirst three remaining reports in full:\n\n";
  List.iteri
    (fun i (r, n) -> if i < 3 then Fmt.pr "[%d occurrence(s)] %a@." n Det.Report.pp r)
    hwlc_dr
