(** Hybrid lock-set × happens-before detection — the Multi-Race /
    O'Callahan-Choi combination the paper surveys in §2.2.

    "Multi-Race tries to improve the data race detection capabilities
    by combining enhanced versions of Lock-set and DJIT into a common
    framework"; the hybrid detector of [12] gates lock-set warnings
    with a vector-clock happens-before check on synchronisation
    primitives.

    This implementation composes the two real engines: a {!Helgrind}
    instance performs the lock-set analysis, and each of its candidate
    warnings is admitted only if a {!Djit} instance (updated on the
    same event stream) confirms the access is {e concurrent} with a
    previous conflicting access.  Lock-discipline violations whose
    accesses happened to be ordered on this execution are therefore
    suppressed — precision up, at the price of DJIT's
    schedule-dependence (the §2.2 trade-off, measurable in the
    [baselines] experiment). *)

module Vm = Raceguard_vm

type gate_engine =
  | Vector_clocks  (** full-VC {!Djit} gate — the historical default *)
  | Epochs
      (** {!Fasttrack} gate with adaptive read-vector demotion — same
          answers (both probes implement the same unordered-now
          question over equivalent state), cheaper per access *)

type config = {
  helgrind : Helgrind.config;
  sync_on_cond : bool;  (** HB edges for condition variables *)
  sync_on_sem : bool;  (** HB edges for semaphores *)
  gate : gate_engine;
}

let default_config =
  {
    helgrind = Helgrind.hwlc_dr;
    sync_on_cond = true;
    sync_on_sem = true;
    gate = Vector_clocks;
  }

let epoch_config = { default_config with gate = Epochs }

type engine = Vc of Djit.t | Ft of Fasttrack.t
type t = { lockset : Helgrind.t; hb : engine }

let create ?(config = default_config) ?(suppressions = []) () =
  let lockset = Helgrind.create ~suppressions config.helgrind in
  let hb =
    match config.gate with
    | Vector_clocks ->
        Vc
          (Djit.create
             ~config:
               {
                 Djit.sync_on_cond = config.sync_on_cond;
                 sync_on_sem = config.sync_on_sem;
                 sync_on_annotations = true;
                 first_only = false;
               }
             ())
    | Epochs ->
        Ft
          (Fasttrack.create
             ~config:
               {
                 Fasttrack.default_config with
                 sync_on_cond = config.sync_on_cond;
                 sync_on_sem = config.sync_on_sem;
                 first_only = false;
               }
             ())
  in
  (* the gate: a lock-set warning survives only when the access is
     genuinely unordered with a previous conflicting access *)
  Helgrind.set_warning_filter lockset (fun ~tid ~addr ~kind ->
      let write = match kind with Report.Race_write -> true | _ -> false in
      match hb with
      | Vc d -> Djit.unordered_now d ~tid ~addr ~write
      | Ft f -> Fasttrack.unordered_now f ~tid ~addr ~write);
  { lockset; hb }

(* event order matters: the lock-set side (and its gate probing the
   HB state of all {e previous} accesses) runs first, then the HB side
   absorbs the current event. *)
let on_event t ctx e =
  Helgrind.on_event t.lockset ctx e;
  match t.hb with Vc d -> Djit.on_event d ctx e | Ft f -> Fasttrack.on_event f ctx e

let tool t = Vm.Tool.make ~name:"hybrid" ~on_event:(on_event t)

let reports t = Helgrind.reports t.lockset
let locations t = Helgrind.locations t.lockset
let location_count t = Helgrind.location_count t.lockset
let collector t = Helgrind.collector t.lockset
