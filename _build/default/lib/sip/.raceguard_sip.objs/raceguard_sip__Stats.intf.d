lib/sip/stats.mli: Raceguard_util
