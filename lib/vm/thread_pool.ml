(** A fixed-size worker pool fed by a {!Msg_queue} — the
    "thread pool" concurrency pattern of §4.2.3 and Figure 11.

    Workers are created {e before} any task data exists, so the
    thread-segment refinement cannot order task-setup writes before
    worker reads: ownership transfer happens through queue put/get,
    which the lock-set algorithm does not understand.  Running the same
    application in pool mode therefore re-introduces false positives
    that the thread-per-request pattern (Figure 10) avoids. *)

module Loc = Raceguard_util.Loc

let lc line = Loc.v "thread_pool.cpp" "ThreadPool" line

type t = {
  queue : Msg_queue.t;
  workers : int array;  (** worker tids *)
  stop_sentinel : int;
}

(** [create ~name ~workers ~handler] starts [workers] threads, each
    looping: pop a task address from the queue and run [handler] on it.
    The handler runs on the worker's simulated stack. *)
let create ?(annotated = false) ~name ~workers ~queue_capacity ~handler () =
  let stop_sentinel = -1 in
  let queue = Msg_queue.create ~annotated ~name:(name ^ ".queue") ~capacity:queue_capacity () in
  let worker_body _idx () =
    (* every pool worker runs the same function: one stack frame name,
       so identical reports from different workers dedup together *)
    Api.with_frame (Loc.v "thread_pool.cpp" "pool_worker" 30) @@ fun () ->
    let rec loop () =
      let task = Msg_queue.get queue in
      if task <> stop_sentinel then begin
        handler task;
        loop ()
      end
    in
    loop ()
  in
  let workers =
    Array.init workers (fun i ->
        Api.spawn ~loc:(lc 40) ~name:(Printf.sprintf "%s.worker%d" name i) (worker_body i))
  in
  { queue; workers; stop_sentinel }

(** Submit the address of a task struct for processing. *)
let submit t task =
  if task = t.stop_sentinel then invalid_arg "Thread_pool.submit: reserved value";
  Msg_queue.put t.queue task

(** Current queue depth (takes the queue mutex) — the overload
    high-water probe. *)
let queue_length t = Msg_queue.length t.queue

(** Push one sentinel per worker and join them all. *)
let shutdown t =
  Array.iter (fun _ -> Msg_queue.put t.queue t.stop_sentinel) t.workers;
  Array.iter (fun tid -> Api.join ~loc:(lc 52) tid) t.workers
