examples/string_refcount.ml: Raceguard
