(** The preprocessor stage (§3.3): the parser "requires all information
    to be included in the source file", so [#include "name"] splices
    headers from a registry (the simulated include path), recursively,
    each at most once, with per-fragment file/line attribution. *)

exception Error of string

type t

val create : unit -> t

val register : t -> name:string -> source:string -> unit

val with_builtins : unit -> t
(** A registry preloaded with the built-in headers
    ([valgrind/helgrind.h]). *)

val preprocess : t -> file:string -> string -> Token.t list
(** Token stream with all includes spliced in front. *)

val parse : t -> file:string -> string -> Ast.program
(** Preprocess, then parse. *)
