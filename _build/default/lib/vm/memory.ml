(** Word-addressed simulated memory with an allocator.

    Addresses are word indices into a paged store.  Every allocation is
    recorded as a {!block} carrying the allocating thread and call
    stack, so that race reports can print the Valgrind-style
    "Address 0x... is N bytes inside a block of size M alloc'd by
    thread T" footer (Figure 9 of the paper).

    The allocator can run in two modes:
    - [reuse = false]: bump allocation, freed addresses are never
      handed out again (fresh addresses, like a debugging allocator);
    - [reuse = true]: freed blocks go to size-segregated free lists and
      are reused LIFO, like a production malloc. *)

module Loc = Raceguard_util.Loc
module Growvec = Raceguard_util.Growvec

let page_bits = 12
let page_size = 1 lsl page_bits

type block = {
  base : int;
  len : int;
  alloc_tid : int;
  alloc_loc : Loc.t;
  alloc_stack : Loc.t list;
  mutable freed : bool;
}

type t = {
  pages : int array Growvec.t;  (** values *)
  owners : int array Growvec.t;  (** word -> block base, or -1 *)
  mutable brk : int;
  blocks : (int, block) Hashtbl.t;  (** base -> block *)
  free_lists : (int, int list ref) Hashtbl.t;  (** len -> bases *)
  reuse : bool;
  mutable live_words : int;
  mutable total_allocs : int;
}

let create ?(reuse = true) () =
  {
    pages = Growvec.create ~dummy:[||];
    owners = Growvec.create ~dummy:[||];
    brk = 1;
    (* address 0 is reserved as the null pointer *)
    blocks = Hashtbl.create 1024;
    free_lists = Hashtbl.create 64;
    reuse;
    live_words = 0;
    total_allocs = 0;
  }

let null = 0

let ensure_page t i =
  while Growvec.length t.pages <= i do
    ignore (Growvec.push t.pages (Array.make page_size 0));
    ignore (Growvec.push t.owners (Array.make page_size (-1)))
  done

let check_addr t addr =
  if addr <= 0 || addr >= t.brk then
    Fmt.invalid_arg "Memory: address %#x out of bounds (brk=%#x)" addr t.brk

let get t addr =
  check_addr t addr;
  (Growvec.get t.pages (addr lsr page_bits)).(addr land (page_size - 1))

let set t addr v =
  check_addr t addr;
  (Growvec.get t.pages (addr lsr page_bits)).(addr land (page_size - 1)) <- v

let owner_base t addr =
  if addr <= 0 || addr >= t.brk then -1
  else (Growvec.get t.owners (addr lsr page_bits)).(addr land (page_size - 1))

let set_owner t addr base =
  (Growvec.get t.owners (addr lsr page_bits)).(addr land (page_size - 1)) <- base

let block_of t addr =
  match owner_base t addr with
  | -1 -> None
  | base -> Hashtbl.find_opt t.blocks base

let fresh_range t len =
  let base = t.brk in
  t.brk <- t.brk + len;
  ensure_page t ((t.brk - 1) lsr page_bits);
  base

let alloc t ~tid ~loc ~stack ~len =
  if len <= 0 then invalid_arg "Memory.alloc: len must be positive";
  t.total_allocs <- t.total_allocs + 1;
  t.live_words <- t.live_words + len;
  let base =
    if t.reuse then
      match Hashtbl.find_opt t.free_lists len with
      | Some ({ contents = base :: rest } as cell) ->
          cell := rest;
          base
      | _ -> fresh_range t len
    else fresh_range t len
  in
  let block = { base; len; alloc_tid = tid; alloc_loc = loc; alloc_stack = stack; freed = false } in
  Hashtbl.replace t.blocks base block;
  for i = base to base + len - 1 do
    set_owner t i base;
    set t i 0
  done;
  base

let free t ~addr =
  match Hashtbl.find_opt t.blocks addr with
  | None -> Fmt.invalid_arg "Memory.free: %#x is not a block base" addr
  | Some b when b.freed -> Fmt.invalid_arg "Memory.free: double free of %#x" addr
  | Some b ->
      b.freed <- true;
      t.live_words <- t.live_words - b.len;
      if t.reuse then begin
        let cell =
          match Hashtbl.find_opt t.free_lists b.len with
          | Some c -> c
          | None ->
              let c = ref [] in
              Hashtbl.replace t.free_lists b.len c;
              c
        in
        cell := addr :: !cell
      end;
      b.len

let live_words t = t.live_words
let total_allocs t = t.total_allocs
let words_used t = t.brk
