lib/detector/hybrid.ml: Djit Helgrind Raceguard_vm Report
