lib/sip/stats.ml: Raceguard_util Raceguard_vm
