lib/sip/bugs.mli: Raceguard_util
