examples/string_refcount.mli:
