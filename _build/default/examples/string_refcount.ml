(* Figure 8/9: the copy-on-write string false positive, side by side
   under the original and the corrected hardware bus-lock model.

     dune exec examples/string_refcount.exe *)

let () = print_endline (Raceguard.Experiments.fig8 ())
