(** Server statistics counters — partly racy by design (§4.1 bug B6).

    The "proper" counters are guarded by a mutex.  The "fast path"
    counters are plain unsynchronised read-modify-write increments from
    every worker thread, a classic real data race that the detector
    must report in every configuration. *)

module Loc = Raceguard_util.Loc
module Api = Raceguard_vm.Api
module Metrics = Raceguard_obs.Metrics

let lc func line = Loc.v "stats.cpp" ("Stats::" ^ func) line

type t = {
  base : int;  (** block of counter words *)
  mutex : Api.Mutex.t;  (** guards only the "locked" counters *)
}

(* word offsets *)
let total_requests = 0  (* racy *)
let total_responses = 1  (* racy *)
let parse_errors = 2  (* racy *)
let lines_logged = 3  (* racy; also the shutdown-race target (B3) *)
let active_calls = 4  (* locked *)
let registered_users = 5  (* locked *)
let method_base = 6  (* 6 racy per-method counters (INVITE..OPTIONS) *)
let n_counters = 12

(* Host-side mirror in the metrics registry: reading the counters out
   of VM memory would emit detector-visible events (and for the racy
   words, warnings), so observers read [sip.stats.*] from the registry
   instead, maintained at the increment sites without any VM traffic.
   The racy VM words can lose updates by design; the mirror counts
   every call, so it is also the ground truth the lost-update bug can
   be measured against. *)
let metric_name counter =
  match counter with
  | 0 -> "sip.stats.total_requests"
  | 1 -> "sip.stats.total_responses"
  | 2 -> "sip.stats.parse_errors"
  | 3 -> "sip.stats.lines_logged"
  | 4 -> "sip.stats.active_calls"
  | 5 -> "sip.stats.registered_users"
  | 6 -> "sip.stats.method_invite"
  | 7 -> "sip.stats.method_ack"
  | 8 -> "sip.stats.method_bye"
  | 9 -> "sip.stats.method_cancel"
  | 10 -> "sip.stats.method_register"
  | 11 -> "sip.stats.method_options"
  | _ -> "sip.stats.unknown"

type mirror = C of Metrics.counter | G of Metrics.gauge

let mirrors =
  Array.init n_counters (fun i ->
      if i = active_calls || i = registered_users then G (Metrics.gauge (metric_name i))
      else C (Metrics.counter (metric_name i)))

let mirror_adjust counter delta =
  match mirrors.(counter) with
  | C c -> Metrics.add c delta
  | G g -> Metrics.set g (Metrics.gauge_value g + delta)

let create () =
  {
    base = Api.alloc ~loc:(lc "Stats" 10) n_counters;
    mutex = Api.Mutex.create ~loc:(lc "Stats" 11) "stats.mutex";
  }

(** The racy fast-path increment: unlocked load + store. *)
let bump_racy t counter ~loc =
  mirror_adjust counter 1;
  let addr = t.base + counter in
  let v = Api.read ~loc addr in
  Api.write ~loc addr (v + 1)

let incr_total_requests t = bump_racy t total_requests ~loc:(lc "onRequest" 20)

(** Per-method counter, bumped from inside each handler — six more
    unsynchronised increment sites (each with its own handler stack). *)
let incr_method t ~meth_code =
  if meth_code >= 1 && meth_code <= 6 then
    bump_racy t (method_base + meth_code - 1) ~loc:(lc "onMethod" 22)
let incr_total_responses t = bump_racy t total_responses ~loc:(lc "onResponse" 24)
let incr_parse_errors t = bump_racy t parse_errors ~loc:(lc "onParseError" 28)
let incr_lines_logged t = bump_racy t lines_logged ~loc:(lc "onLogLine" 32)

(** The correctly locked counters (mirrored as registry gauges: they go
    up and down, so a monotonic counter would be wrong). *)
let adjust_locked t counter delta ~loc =
  mirror_adjust counter delta;
  Api.Mutex.with_lock ~loc t.mutex (fun () ->
      let addr = t.base + counter in
      Api.write ~loc addr (Api.read ~loc addr + delta))

let incr_active_calls t = adjust_locked t active_calls 1 ~loc:(lc "callStarted" 42)
let decr_active_calls t = adjust_locked t active_calls (-1) ~loc:(lc "callEnded" 44)
let incr_registered t = adjust_locked t registered_users 1 ~loc:(lc "userRegistered" 46)
let decr_registered t = adjust_locked t registered_users (-1) ~loc:(lc "userUnregistered" 48)

let get t counter ~loc = Api.read ~loc (t.base + counter)

(** Free the counter block — part of the shutdown-order bug (B3): the
    main thread destroys the statistics while the logger thread is
    still bumping [lines_logged]. *)
let destroy t ~annotate =
  if annotate then Api.hg_destruct ~addr:t.base ~len:n_counters;
  Api.free ~loc:(lc "~Stats" 58) t.base
