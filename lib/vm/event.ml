(** Events observed by tools (Valgrind "skins").

    The engine serialises the execution of all simulated threads and
    emits one event per interesting operation, in execution order.
    Tools such as the Helgrind-style detector subscribe to this stream;
    they never see OCaml-level parallelism. *)

module Loc = Raceguard_util.Loc

(** Synchronisation object reference.  Mutexes, rw-locks, condition
    variables and semaphores have separate id spaces. *)
type sync_ref =
  | Mutex of int
  | Rwlock of int
  | Cond of int
  | Sem of int

let pp_sync_ref ppf = function
  | Mutex i -> Fmt.pf ppf "mutex#%d" i
  | Rwlock i -> Fmt.pf ppf "rwlock#%d" i
  | Cond i -> Fmt.pf ppf "cond#%d" i
  | Sem i -> Fmt.pf ppf "sem#%d" i

type t =
  | E_thread_start of { tid : int; name : string; parent : int option }
  | E_thread_exit of { tid : int }
  | E_spawn of { parent : int; child : int; loc : Loc.t }
  | E_join of { joiner : int; joined : int; loc : Loc.t }
  | E_read of { tid : int; addr : int; value : int; atomic : bool; loc : Loc.t }
  | E_write of { tid : int; addr : int; value : int; atomic : bool; loc : Loc.t }
  | E_alloc of { tid : int; addr : int; len : int; loc : Loc.t }
  | E_free of { tid : int; addr : int; len : int; loc : Loc.t }
  | E_sync_create of { tid : int; sync : sync_ref; name : string; loc : Loc.t }
  | E_acquire of { tid : int; lock : sync_ref; mode : Eff.mode; loc : Loc.t }
  | E_release of { tid : int; lock : sync_ref; loc : Loc.t }
  | E_cond_signal of { tid : int; cv : int; broadcast : bool; loc : Loc.t }
  | E_cond_wait_pre of { tid : int; cv : int; m : int; loc : Loc.t }
  | E_cond_wait_post of { tid : int; cv : int; m : int; loc : Loc.t }
  | E_sem_post of { tid : int; sem : int; loc : Loc.t }
  | E_sem_wait_post of { tid : int; sem : int; loc : Loc.t }
  | E_client of { tid : int; req : Eff.client_request; loc : Loc.t }

(** Stable small integer per constructor — the binary trace codec's
    event tag ([lib/trace/]).  Appending new constructors is fine;
    renumbering existing ones breaks every recorded trace. *)
let kind_id = function
  | E_thread_start _ -> 0
  | E_thread_exit _ -> 1
  | E_spawn _ -> 2
  | E_join _ -> 3
  | E_read _ -> 4
  | E_write _ -> 5
  | E_alloc _ -> 6
  | E_free _ -> 7
  | E_sync_create _ -> 8
  | E_acquire _ -> 9
  | E_release _ -> 10
  | E_cond_signal _ -> 11
  | E_cond_wait_pre _ -> 12
  | E_cond_wait_post _ -> 13
  | E_sem_post _ -> 14
  | E_sem_wait_post _ -> 15
  | E_client _ -> 16

(** Static per-constructor names (no rendering cost), used by the ring
    tracer, the Chrome exporter and the trace-info histogram. *)
let kind_name = function
  | E_thread_start _ -> "thread_start"
  | E_thread_exit _ -> "thread_exit"
  | E_spawn _ -> "spawn"
  | E_join _ -> "join"
  | E_read _ -> "read"
  | E_write _ -> "write"
  | E_alloc _ -> "alloc"
  | E_free _ -> "free"
  | E_sync_create _ -> "sync_create"
  | E_acquire _ -> "acquire"
  | E_release _ -> "release"
  | E_cond_signal _ -> "cond_signal"
  | E_cond_wait_pre _ -> "cond_wait_pre"
  | E_cond_wait_post _ -> "cond_wait_post"
  | E_sem_post _ -> "sem_post"
  | E_sem_wait_post _ -> "sem_wait_post"
  | E_client _ -> "client_request"

let kind_count = 17

let tid = function
  | E_thread_start { tid; _ }
  | E_thread_exit { tid }
  | E_read { tid; _ }
  | E_write { tid; _ }
  | E_alloc { tid; _ }
  | E_free { tid; _ }
  | E_sync_create { tid; _ }
  | E_acquire { tid; _ }
  | E_release { tid; _ }
  | E_cond_signal { tid; _ }
  | E_cond_wait_pre { tid; _ }
  | E_cond_wait_post { tid; _ }
  | E_sem_post { tid; _ }
  | E_sem_wait_post { tid; _ }
  | E_client { tid; _ } -> tid
  | E_spawn { parent; _ } -> parent
  | E_join { joiner; _ } -> joiner

let pp ppf = function
  | E_thread_start { tid; name; parent } ->
      Fmt.pf ppf "thread_start t%d %S parent=%a" tid name Fmt.(option int) parent
  | E_thread_exit { tid } -> Fmt.pf ppf "thread_exit t%d" tid
  | E_spawn { parent; child; _ } -> Fmt.pf ppf "spawn t%d -> t%d" parent child
  | E_join { joiner; joined; _ } -> Fmt.pf ppf "join t%d <- t%d" joiner joined
  | E_read { tid; addr; value; atomic; _ } ->
      Fmt.pf ppf "read t%d [%#x] = %d%s" tid addr value (if atomic then " (locked)" else "")
  | E_write { tid; addr; value; atomic; _ } ->
      Fmt.pf ppf "write t%d [%#x] <- %d%s" tid addr value (if atomic then " (locked)" else "")
  | E_alloc { tid; addr; len; _ } -> Fmt.pf ppf "alloc t%d %#x+%d" tid addr len
  | E_free { tid; addr; len; _ } -> Fmt.pf ppf "free t%d %#x+%d" tid addr len
  | E_sync_create { tid; sync; name; _ } ->
      Fmt.pf ppf "sync_create t%d %a %S" tid pp_sync_ref sync name
  | E_acquire { tid; lock; mode; _ } ->
      Fmt.pf ppf "acquire t%d %a (%a)" tid pp_sync_ref lock Eff.pp_mode mode
  | E_release { tid; lock; _ } -> Fmt.pf ppf "release t%d %a" tid pp_sync_ref lock
  | E_cond_signal { tid; cv; broadcast; _ } ->
      Fmt.pf ppf "%s t%d cond#%d" (if broadcast then "broadcast" else "signal") tid cv
  | E_cond_wait_pre { tid; cv; _ } -> Fmt.pf ppf "cond_wait_pre t%d cond#%d" tid cv
  | E_cond_wait_post { tid; cv; _ } -> Fmt.pf ppf "cond_wait_post t%d cond#%d" tid cv
  | E_sem_post { tid; sem; _ } -> Fmt.pf ppf "sem_post t%d sem#%d" tid sem
  | E_sem_wait_post { tid; sem; _ } -> Fmt.pf ppf "sem_wait_post t%d sem#%d" tid sem
  | E_client { tid; req; _ } -> (
      match req with
      | Eff.Destruct { addr; len } -> Fmt.pf ppf "client t%d HG_DESTRUCT %#x+%d" tid addr len
      | Eff.Benign_race { addr; len } ->
          Fmt.pf ppf "client t%d BENIGN_RACE %#x+%d" tid addr len
      | Eff.Happens_before { tag } -> Fmt.pf ppf "client t%d HAPPENS_BEFORE %#x" tid tag
      | Eff.Happens_after { tag } -> Fmt.pf ppf "client t%d HAPPENS_AFTER %#x" tid tag)
