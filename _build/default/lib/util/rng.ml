(** Deterministic pseudo-random number generator (splitmix64).

    Every source of nondeterminism in the simulator — scheduler choices,
    workload jitter, property-test shrinking seeds — goes through an
    explicit [Rng.t] so that a run is fully reproducible from its seed.
    We do not use [Stdlib.Random] because its state is global and its
    algorithm differs across OCaml releases. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 step: a single 64-bit multiply-xorshift mix with a Weyl
   increment.  Passes BigCrush; more than adequate for scheduling. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* mask to 62 bits so the result is a non-negative OCaml int *)
let next t = Int64.to_int (next_int64 t) land max_int

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  next t mod bound

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range: hi < lo";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* [chance t ~num ~den] is true with probability num/den. *)
let chance t ~num ~den = int t den < num

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let split t =
  (* Derive an independent stream: mix the parent's next output into a
     fresh state.  Streams from distinct draws never collide in practice. *)
  { state = Int64.logxor (next_int64 t) 0xD1B54A32D192ED03L }
