(** Tokens for MiniC++, with source positions.

    MiniC++ is the small C++-like language used to demonstrate the
    paper's instrumentation pipeline end to end (preprocess → parse →
    annotate → pretty-print → execute on the VM), standing in for the
    GCC-preprocess → ELSA-parse → annotate → compile chain of §3.3. *)

type pos = { file : string; line : int; col : int }

let pp_pos ppf p = Fmt.pf ppf "%s:%d:%d" p.file p.line p.col

type kind =
  | INT of int
  | STRING of string
  | IDENT of string
  (* keywords *)
  | KW_class
  | KW_fn
  | KW_var
  | KW_if
  | KW_else
  | KW_while
  | KW_return
  | KW_new
  | KW_delete
  | KW_spawn
  | KW_lock
  | KW_this
  | KW_null
  (* punctuation *)
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | SEMI
  | COMMA
  | COLON
  | DOT
  | TILDE
  | ASSIGN
  (* operators *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | ANDAND
  | OROR
  | BANG
  | EOF

type t = { kind : kind; pos : pos }

let keyword_of_string = function
  | "class" -> Some KW_class
  | "fn" -> Some KW_fn
  | "var" -> Some KW_var
  | "if" -> Some KW_if
  | "else" -> Some KW_else
  | "while" -> Some KW_while
  | "return" -> Some KW_return
  | "new" -> Some KW_new
  | "delete" -> Some KW_delete
  | "spawn" -> Some KW_spawn
  | "lock" -> Some KW_lock
  | "this" -> Some KW_this
  | "null" -> Some KW_null
  | _ -> None

let describe = function
  | INT n -> Printf.sprintf "integer %d" n
  | STRING s -> Printf.sprintf "string %S" s
  | IDENT s -> Printf.sprintf "identifier %S" s
  | KW_class -> "'class'"
  | KW_fn -> "'fn'"
  | KW_var -> "'var'"
  | KW_if -> "'if'"
  | KW_else -> "'else'"
  | KW_while -> "'while'"
  | KW_return -> "'return'"
  | KW_new -> "'new'"
  | KW_delete -> "'delete'"
  | KW_spawn -> "'spawn'"
  | KW_lock -> "'lock'"
  | KW_this -> "'this'"
  | KW_null -> "'null'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | SEMI -> "';'"
  | COMMA -> "','"
  | COLON -> "':'"
  | DOT -> "'.'"
  | TILDE -> "'~'"
  | ASSIGN -> "'='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | EQ -> "'=='"
  | NEQ -> "'!='"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | ANDAND -> "'&&'"
  | OROR -> "'||'"
  | BANG -> "'!'"
  | EOF -> "end of input"
