lib/detector/helgrind.mli: Format Raceguard_vm Report Suppression
