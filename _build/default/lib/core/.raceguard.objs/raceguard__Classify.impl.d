lib/core/classify.ml: List Raceguard_detector Raceguard_sip Raceguard_util Set
