(** Simulated datagram transport (the "kernel" socket).

    Payload strings travel through a host-level queue — invisible to
    the detectors, exactly as the kernel is invisible to Helgrind — and
    a VM semaphore provides blocking receive.  On {!recv} the payload
    is copied into a fresh VM buffer {e by the receiving thread},
    modelling how Valgrind attributes syscall memory effects. *)

type endpoint
type t

val create : unit -> t

val endpoint : t -> string -> endpoint
(** Look up or create a named endpoint (call from inside the VM: the
    first call creates its semaphore). *)

val send : t -> src:string -> dst:string -> string -> unit
(** Datagram send; silently dropped if [dst] does not exist. *)

val recv : t -> endpoint -> string * int * int
(** Blocking receive: (source name, VM buffer address, length).  The
    caller owns — and must free — the buffer. *)

val read_buffer : int -> int -> string
(** Read a received buffer back into a host string (VM reads). *)

val drain_host : endpoint -> (string * string) list
(** Host-side inspection of undelivered messages (post-run oracles). *)

val pending : endpoint -> int
