lib/sip/registrar.mli: Raceguard_cxxsim Stats
