lib/sip/proxy.ml: Array Auth Dialogs Domain_data History List Logger Printf Raceguard_cxxsim Raceguard_util Raceguard_vm Registrar Routing Sip_msg Stats String Timer_wheel Timeutil Transport Watchdog
