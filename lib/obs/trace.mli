(** Fixed-capacity ring-buffer event tracer with Chrome
    [trace_event]-JSON export (load the output in chrome://tracing or
    Perfetto).

    Sampling is counter-based (1-in-[sample]) and therefore
    deterministic: two runs over the same event stream record the same
    subset.  Once full, the ring overwrites oldest-first, keeping the
    tail of the run. *)

type t

type record = {
  ts : int; (** VM logical clock, exported as microseconds *)
  tid : int;
  name : string;
  cat : string;
  args : (string * Json.t) list;
}

val create : ?capacity:int -> ?sample:int -> unit -> t
(** [capacity] defaults to 4096 records, [sample] to 1 (record
    everything offered).  Raises [Invalid_argument] on non-positive
    values. *)

val emit : t -> ts:int -> tid:int -> name:string -> cat:string -> ?args:(string * Json.t) list -> unit -> unit
(** Offer one event; it is recorded iff the offer counter hits the
    sampling stride. *)

val offered : t -> int
val recorded : t -> int
val dropped : t -> int
(** Records overwritten because the ring wrapped. *)

val records : t -> record list
(** Live records, oldest first. *)

val to_json : t -> Json.t
(** Chrome [trace_event] document: [{"traceEvents": [...], ...}] with
    generator/sampling metadata under ["otherData"]. *)

val to_string : t -> string
