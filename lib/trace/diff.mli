(** Structural diff of two decoded traces. *)

type divergence = {
  d_index : int;  (** index of the first event that differs *)
  d_left : Reader.entry option;  (** [None]: the left trace ended first *)
  d_right : Reader.entry option;
  d_context : Reader.entry list;  (** up to [window] shared events before the split *)
}

val default_window : int

val first_divergence : ?window:int -> Reader.t -> Reader.t -> divergence option
(** [None] when the traces are event-identical (events, clocks, stacks,
    thread names, length). *)

val entry_equal : Reader.entry -> Reader.entry -> bool
val pp_entry : Format.formatter -> Reader.entry -> unit
val pp_divergence : Format.formatter -> divergence -> unit
