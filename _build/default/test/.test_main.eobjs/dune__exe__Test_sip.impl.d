test/test_sip.ml: Alcotest Char Fmt List Option Printexc Printf Raceguard_cxxsim Raceguard_detector Raceguard_sip Raceguard_util Raceguard_vm String
