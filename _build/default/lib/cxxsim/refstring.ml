(** A GNU-libstdc++-style copy-on-write reference-counted string.

    This is the [std::string] of Figure 8/9: the representation block
    is shared between copies and carries a reference counter that is
    updated with bus-locked ([LOCK]-prefixed) increments/decrements,
    but {e inspected} with plain unlocked reads ([_M_is_shared] /
    [_M_is_leaked] style checks).  Under the original Helgrind bus-lock
    model those plain reads empty the candidate lock-set of the counter
    word and every subsequent locked update is reported as a possible
    race; under the corrected rw-lock model (HWLC) all these accesses
    share the virtual bus lock and the warnings disappear — while a
    plain (non-atomic) write to the counter would still be caught.

    Representation block layout: [[refcount; length; chars...]]. *)

module Loc = Raceguard_util.Loc
module Api = Raceguard_vm.Api

type t = int
(** address of the representation block *)

let rep_refcount = 0
let rep_length = 1
let rep_chars = 2

let lc func line = Loc.v "basic_string.h" ("std::string::" ^ func) line

(** [_Rep::_S_create]: allocate a representation holding [s]. *)
let create ~loc:_ s =
  let n = String.length s in
  let rep = Api.alloc ~loc:(lc "_Rep::_S_create" 580) (rep_chars + n) in
  Api.write ~loc:(lc "_Rep::_S_create" 581) (rep + rep_refcount) 1;
  Api.write ~loc:(lc "_Rep::_S_create" 582) (rep + rep_length) n;
  String.iteri
    (fun i c -> Api.write ~loc:(lc "_Rep::_S_create" 583) (rep + rep_chars + i) (Char.code c))
    s;
  rep

let length t = Api.read ~loc:(lc "length" 700) (t + rep_length)

let get_char t i = Api.read ~loc:(lc "operator[]" 770) (t + rep_chars + i)

(** plain (unlocked) read of the reference counter — the access that
    breaks the original bus-lock model *)
let is_shared t = Api.read ~loc:(lc "_Rep::_M_is_shared" 210) (t + rep_refcount) > 1

(** [_M_grab]: copy construction shares the representation and bumps
    the counter with a bus-locked increment. *)
let copy t =
  ignore (is_shared t);
  ignore (Api.atomic_incr ~loc:(lc "_Rep::_M_grab" 230) (t + rep_refcount));
  t

(** [_M_dispose]: drop one reference; free the representation when the
    last owner releases it. *)
let release t =
  let old = Api.atomic_decr ~loc:(lc "_Rep::_M_dispose" 240) (t + rep_refcount) in
  if old = 1 then Api.free ~loc:(lc "_Rep::_M_destroy" 245) t

let to_string t =
  let n = length t in
  String.init n (fun i -> Char.chr (get_char t i land 0xff))

(* deep copy into a fresh representation *)
let clone ~loc t = create ~loc (to_string t)

(** Mutation with copy-on-write: unshare first if needed ([_M_mutate]).
    Returns the (possibly new) representation address. *)
let set_char ~loc t i c =
  let t' =
    if is_shared t then begin
      let fresh = clone ~loc t in
      release t;
      fresh
    end
    else t
  in
  Api.write ~loc:(lc "_M_mutate" 450) (t' + rep_chars + i) (Char.code c);
  t'

(** Equality by contents (reads both representations). *)
let equal a b =
  if a = b then true
  else
    let la = length a and lb = length b in
    la = lb
    &&
    let rec go i = i >= la || (get_char a i = get_char b i && go (i + 1)) in
    go 0

(** Hash of the character data (plain reads). *)
let hash t =
  let n = length t in
  let h = ref 5381 in
  for i = 0 to n - 1 do
    h := (!h * 33) + get_char t i
  done;
  !h land max_int
