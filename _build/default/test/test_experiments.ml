(* Integration tests over the experiment harness: these pin the
   qualitative results of the paper — the orderings, compositions and
   crossovers that the reproduction must preserve (EXPERIMENTS.md). *)

module R = Raceguard
module Det = Raceguard_detector
module Sip = Raceguard_sip

let fig6_rows = lazy (R.Experiments.fig6_data ~seed:7 ())

(* E1/Figure 6: for every test case Original > HWLC > HWLC+DR and the
   total reduction falls in (or near) the paper's 65-81% band *)
let test_fig6_ordering () =
  List.iter
    (fun (r : R.Experiments.fig6_row) ->
      Alcotest.(check bool) (r.tc ^ ": HWLC removes reports") true (r.hwlc < r.original);
      Alcotest.(check bool) (r.tc ^ ": DR removes more") true (r.hwlc_dr < r.hwlc);
      Alcotest.(check bool) (r.tc ^ ": something remains") true (r.hwlc_dr > 0))
    (Lazy.force fig6_rows)

let test_fig6_reduction_band () =
  List.iter
    (fun (r : R.Experiments.fig6_row) ->
      let red = R.Classify.reduction_pct r.split in
      Alcotest.(check bool)
        (Printf.sprintf "%s reduction %.0f%% within 60-90%%" r.tc red)
        true
        (red >= 60.0 && red <= 90.0))
    (Lazy.force fig6_rows)

let test_fig6_oracle_clean () =
  List.iter
    (fun (r : R.Experiments.fig6_row) ->
      Alcotest.(check int) (r.tc ^ " oracle failures") 0 r.oracle_failures)
    (Lazy.force fig6_rows)

let test_fig6_extremes () =
  (* the paper's lightest case is T3, the heaviest T5 *)
  let rows = Lazy.force fig6_rows in
  let by name = List.find (fun (r : R.Experiments.fig6_row) -> r.tc = name) rows in
  List.iter
    (fun (r : R.Experiments.fig6_row) ->
      if r.tc <> "T3" then
        Alcotest.(check bool) (r.tc ^ " >= T3") true (r.original >= (by "T3").original);
      if r.tc <> "T5" then
        Alcotest.(check bool) (r.tc ^ " <= T5") true (r.original <= (by "T5").original))
    rows

(* E2/Figure 5: destructor FPs dominate hardware-lock FPs overall *)
let test_fig5_composition () =
  let rows = Lazy.force fig6_rows in
  let total f = List.fold_left (fun acc (r : R.Experiments.fig6_row) -> acc + f r.split) 0 rows in
  let hw = total (fun s -> s.R.Classify.hw_lock_fp) in
  let dtor = total (fun s -> s.R.Classify.destructor_fp) in
  let remaining = total (fun s -> s.R.Classify.remaining) in
  Alcotest.(check bool) "destructor FPs dominate hw-lock FPs" true (dtor > hw);
  Alcotest.(check bool) "both FP classes are substantial" true (hw > 0 && dtor > 0);
  Alcotest.(check bool) "false positives dominate the original output" true
    (hw + dtor > remaining)

let test_fig5_remaining_mostly_real () =
  (* "most of them are real synchronization failures" (§4) *)
  let rows = Lazy.force fig6_rows in
  List.iter
    (fun (r : R.Experiments.fig6_row) ->
      Alcotest.(check bool)
        (r.tc ^ ": remaining reports are mostly attributed to real bugs")
        true
        (2 * r.split.R.Classify.remaining_true >= r.split.R.Classify.remaining))
    rows

(* E5/Figure 8 *)
let test_fig8 () =
  let run config =
    let cfg = { R.Runner.default with seed = 7; helgrind_configs = [ ("c", config) ] } in
    let res, _ = R.Runner.run_main cfg R.Scenarios.stringtest in
    R.Runner.location_count res "c"
  in
  Alcotest.(check bool) "original model reports the string" true (run Det.Helgrind.original > 0);
  Alcotest.(check int) "HWLC accepts it" 0 (run Det.Helgrind.hwlc)

(* E7/Figures 10-11 *)
let test_pools_crossover () =
  let count scenario =
    let cfg =
      { R.Runner.default with seed = 7; helgrind_configs = [ ("c", Det.Helgrind.hwlc_dr) ] }
    in
    let res, _ = R.Runner.run_main cfg scenario in
    R.Runner.location_count res "c"
  in
  Alcotest.(check int) "thread-per-request silent" 0 (count R.Scenarios.handoff_per_request);
  Alcotest.(check bool) "queue handoff reported" true (count R.Scenarios.handoff_pool > 0)

let test_pools_server_crossover () =
  let run pattern =
    let cfg =
      {
        R.Runner.default with
        seed = 7;
        helgrind_configs = [ ("c", Det.Helgrind.hwlc_dr) ];
        server = { R.Runner.default.server with pattern };
      }
    in
    let res = R.Runner.run_test_case cfg Sip.Workload.t2 in
    R.Runner.location_count res "c"
  in
  Alcotest.(check bool) "pool mode reports more than per-request" true
    (run (Sip.Proxy.Pool 4) > run Sip.Proxy.Per_request)

(* E8/§4.3 *)
let test_false_negative_rates () =
  let detected config seed =
    let cfg = { R.Runner.default with seed; helgrind_configs = [ ("c", config) ] } in
    let res, _ = R.Runner.run_main cfg R.Scenarios.false_negative_schedule in
    R.Runner.location_count res "c" > 0
  in
  let seeds = List.init 25 (fun i -> i + 1) in
  let rate config = List.length (List.filter (detected config) seeds) in
  let with_states = rate Det.Helgrind.hwlc_dr in
  let pure = rate Det.Helgrind.pure_eraser in
  Alcotest.(check int) "pure Eraser always detects" 25 pure;
  Alcotest.(check bool) "states sometimes miss" true (with_states < 25);
  Alcotest.(check bool) "states sometimes detect" true (with_states > 0)

(* E10/§4.1: every injected bug is witnessed across a small seed sweep *)
let test_all_bugs_found () =
  let found =
    List.concat_map
      (fun seed ->
        let cfg =
          {
            R.Runner.default with
            seed;
            helgrind_configs = [ ("c", Det.Helgrind.hwlc_dr) ];
            server = { R.Runner.default.server with enable_watchdog = true };
          }
        in
        let res = R.Runner.run_test_case cfg Sip.Workload.t4 in
        R.Classify.bugs_found (R.Runner.locations_of res "c"))
      [ 7; 8; 9 ]
    |> List.sort_uniq compare
  in
  List.iter
    (fun bug ->
      Alcotest.(check bool) (Sip.Bugs.to_string bug ^ " witnessed") true (List.mem bug found))
    Sip.Bugs.all

(* E12/§4: allocator reuse adds reports *)
let test_alloc_reuse () =
  let run mode =
    let cfg =
      {
        R.Runner.default with
        seed = 7;
        helgrind_configs = [ ("c", Det.Helgrind.hwlc_dr) ];
        server = { R.Runner.default.server with alloc_mode = mode };
      }
    in
    let res = R.Runner.run_test_case cfg Sip.Workload.t6 in
    R.Runner.location_count res "c"
  in
  Alcotest.(check bool) "pooled allocator adds false positives" true
    (run Raceguard_cxxsim.Allocator.Pooled > run Raceguard_cxxsim.Allocator.Direct)

(* ablations *)
let test_states_ablation () =
  let run config =
    let cfg = { R.Runner.default with seed = 7; helgrind_configs = [ ("c", config) ] } in
    let res = R.Runner.run_test_case cfg Sip.Workload.t3 in
    R.Runner.location_count res "c"
  in
  Alcotest.(check bool) "pure Eraser floods vs states" true
    (run Det.Helgrind.pure_eraser > 2 * run Det.Helgrind.original)

let test_segments_ablation () =
  let run config =
    let cfg = { R.Runner.default with seed = 7; helgrind_configs = [ ("c", config) ] } in
    let res = R.Runner.run_test_case cfg Sip.Workload.t1 in
    R.Runner.location_count res "c"
  in
  Alcotest.(check bool) "segments reduce reports" true
    (run { Det.Helgrind.hwlc with thread_segments = false } > run Det.Helgrind.hwlc)

(* determinism of the whole pipeline *)
let test_runs_deterministic () =
  let counts () =
    let cfg = { R.Runner.default with seed = 13 } in
    let res = R.Runner.run_test_case cfg Sip.Workload.t3 in
    List.map (fun (name, h) -> (name, Det.Helgrind.location_count h)) res.helgrind
  in
  Alcotest.(check (list (pair string int))) "same seed, same counts" (counts ()) (counts ())

(* experiment registry renders without exceptions (smoke over them all
   is done by the bench harness; here we keep the cheap ones) *)
let test_render_smoke () =
  List.iter
    (fun name ->
      match List.find_opt (fun (id, _, _) -> id = name) R.Experiments.all with
      | Some (_, _, f) ->
          let s = f () in
          Alcotest.(check bool) (name ^ " renders") true (String.length s > 40)
      | None -> Alcotest.failf "experiment %s missing" name)
    [ "fig8"; "fig4"; "deadlock" ]

let suite =
  ( "experiments",
    [
      Alcotest.test_case "fig6: ordering" `Slow test_fig6_ordering;
      Alcotest.test_case "fig6: reduction band" `Slow test_fig6_reduction_band;
      Alcotest.test_case "fig6: oracle clean" `Slow test_fig6_oracle_clean;
      Alcotest.test_case "fig6: extremes (T3 min, T5 max)" `Slow test_fig6_extremes;
      Alcotest.test_case "fig5: composition" `Slow test_fig5_composition;
      Alcotest.test_case "fig5: remaining mostly real" `Slow test_fig5_remaining_mostly_real;
      Alcotest.test_case "fig8: bus-lock models" `Quick test_fig8;
      Alcotest.test_case "pools: micro crossover" `Quick test_pools_crossover;
      Alcotest.test_case "pools: server crossover" `Slow test_pools_server_crossover;
      Alcotest.test_case "fneg: detection rates" `Slow test_false_negative_rates;
      Alcotest.test_case "bugs: all witnessed" `Slow test_all_bugs_found;
      Alcotest.test_case "alloc: pooled adds FPs" `Slow test_alloc_reuse;
      Alcotest.test_case "ablation: states" `Slow test_states_ablation;
      Alcotest.test_case "ablation: segments" `Slow test_segments_ablation;
      Alcotest.test_case "determinism" `Quick test_runs_deterministic;
      Alcotest.test_case "render smoke" `Quick test_render_smoke;
    ] )
