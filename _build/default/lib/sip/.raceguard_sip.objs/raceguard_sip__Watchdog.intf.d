lib/sip/watchdog.mli:
