lib/sip/history.ml: List Raceguard_cxxsim Raceguard_util Raceguard_vm
