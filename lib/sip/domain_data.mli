(** Per-domain configuration data — home of two injected real bugs:
    B2 (the reload thread starts before the table is populated, §4.1.1)
    and B4 ([get_domain_data] returns the {e address} of the guarded
    map, Figure 7, so callers walk it unlocked while the reloader
    mutates it). *)

val config_object_class : Raceguard_cxxsim.Object_model.class_desc
val domain_data_class : Raceguard_cxxsim.Object_model.class_desc

type t

val create :
  alloc:Raceguard_cxxsim.Allocator.t ->
  annotate:bool ->
  init_racy:bool ->
  ?recover_alloc_failure:bool ->
  domains:string list ->
  unit ->
  t
(** With [init_racy] (the shipped code) the reload thread starts before
    the initial population — bug B2.  [recover_alloc_failure] makes the
    reload thread skip a generation on an injected allocation failure
    instead of dying (resilient builds). *)

val get_domain_data : t -> int
(** Figure 7: lock, read the internal map's address, unlock, return the
    address — protecting nothing. *)

val unsafe_lookup : t -> domain:string -> int option
(** What callers do with the escaped reference: unlocked map walk
    (bug B4); returns the domain's max-calls setting. *)

val safe_lookup : t -> domain:string -> int option
(** The correct API, for fixed builds. *)

val stop : t -> unit
val join : t -> unit
