(** The debugging-process driver (Figure 3).

    [Instrumentation → Compilation → Execution(VM) → Results]: the
    simulated application is always built {e with} the automatic
    annotation (the client requests are no-ops under normal execution,
    §3.1), one VM run executes the workload, and any number of detector
    configurations observe the same serialised event stream
    simultaneously — so configuration comparisons (Figures 5/6) see
    identical schedules and differ only in the algorithm. *)

module Vm = Raceguard_vm
module Det = Raceguard_detector
module Sip = Raceguard_sip
module Obs = Raceguard_obs

type config = {
  seed : int;
  policy : Vm.Engine.policy;
  helgrind_configs : (string * Det.Helgrind.config) list;
      (** configurations run side by side on the same event stream *)
  run_djit : bool;
  run_fasttrack : bool;
  run_lock_order : bool;
  server : Sip.Proxy.config;
  trace_events : bool;
  max_ops : int;
  tracer : Obs.Trace.t option;
      (** offered every VM event and every detector decision *)
  faults : Raceguard_faults.Injector.t option;
      (** fault injector consulted by the engine's spawn/lock hooks *)
  recorder : Det.Offline.recorder option;
      (** binary trace recorder attached alongside the detectors: the
          record mode of the offline plane *)
}

let default =
  {
    seed = 1;
    policy = Vm.Engine.Random_seeded;
    helgrind_configs =
      [
        ("Original", Det.Helgrind.original);
        ("HWLC", Det.Helgrind.hwlc);
        ("HWLC+DR", Det.Helgrind.hwlc_dr);
      ];
    run_djit = false;
    run_fasttrack = false;
    run_lock_order = false;
    server = { Sip.Proxy.default_config with annotate = true };
    trace_events = false;
    max_ops = 50_000_000;
    tracer = None;
    faults = None;
    recorder = None;
  }

type result = {
  helgrind : (string * Det.Helgrind.t) list;
  djit : Det.Djit.t option;
  fasttrack : Det.Fasttrack.t option;
  lock_order : Det.Lock_order.t option;
  outcome : Vm.Engine.outcome;
  oracle : Sip.Workload.run_result option;
  wall_seconds : float;
  metrics : Obs.Metrics.snapshot;  (** this run's delta of the global registry *)
}

(** Run an arbitrary VM main function under the configured detectors. *)
let run_main config main =
  let vm_config =
    {
      Vm.Engine.seed = config.seed;
      policy = config.policy;
      reuse_memory = true;
      trace_events = config.trace_events;
      max_ops = config.max_ops;
      tracer = config.tracer;
      faults = config.faults;
    }
  in
  let vm = Vm.Engine.create ~config:vm_config () in
  (match config.recorder with
  | Some r -> Vm.Engine.add_tool vm (Det.Offline.tool r)
  | None -> ());
  let helgrind =
    List.map (fun (name, hc) -> (name, Det.Helgrind.create hc)) config.helgrind_configs
  in
  List.iter
    (fun (_, h) ->
      (match config.tracer with Some tr -> Det.Helgrind.set_tracer h tr | None -> ());
      Vm.Engine.add_tool vm (Det.Helgrind.tool h))
    helgrind;
  let djit =
    if config.run_djit then begin
      let d = Det.Djit.create () in
      Vm.Engine.add_tool vm (Det.Djit.tool d);
      Some d
    end
    else None
  in
  let fasttrack =
    if config.run_fasttrack then begin
      let f = Det.Fasttrack.create () in
      Vm.Engine.add_tool vm (Det.Fasttrack.tool f);
      Some f
    end
    else None
  in
  let lock_order =
    if config.run_lock_order then begin
      let l = Det.Lock_order.create () in
      Vm.Engine.add_tool vm (Det.Lock_order.tool l);
      Some l
    end
    else None
  in
  let before = Obs.Metrics.snapshot () in
  let t0 = Unix.gettimeofday () in
  let value = ref None in
  let outcome = Vm.Engine.run vm (fun () -> value := Some (main ())) in
  let wall = Unix.gettimeofday () -. t0 in
  let metrics = Obs.Metrics.diff ~before (Obs.Metrics.snapshot ()) in
  ( {
      helgrind;
      djit;
      fasttrack;
      lock_order;
      outcome;
      oracle = None;
      wall_seconds = wall;
      metrics;
    },
    !value )

(** Run one of the eight SIP test cases. *)
let run_test_case config tc =
  let transport = Sip.Transport.create () in
  let result, oracle =
    run_main config (Sip.Workload.run_test_case ~transport ~server_config:config.server tc)
  in
  { result with oracle }

let locations_of result name =
  match List.assoc_opt name result.helgrind with
  | Some h -> Det.Helgrind.locations h
  | None -> invalid_arg ("no helgrind config named " ^ name)

let location_count result name =
  match List.assoc_opt name result.helgrind with
  | Some h -> Det.Helgrind.location_count h
  | None -> invalid_arg ("no helgrind config named " ^ name)
