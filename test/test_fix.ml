(* Tests pinning the raceguard-fix repair engine end to end:

   - racy_counter is repaired fully automatically by threading the
     existing "counter_guard" lock into the unguarded worker, with all
     four verification stages passing and the emitted source
     re-checking;
   - leaky_escape gets a verified fresh-member guard on Box,
     initialised after every allocation;
   - guarded_counter yields no confirmed finding and no patch;
   - bounded_buffer's candidate is REJECTED by the static stage (the
     guard-member handoff itself races) and its vptr lifetime group is
     refused with a reason — the pipeline never claims an unsound fix;
   - the engine is deterministic and domain-count independent;
   - the raceguard-fix/1 JSON document is well-formed;
   - Rewrite.wrap_in_body wraps the minimal enclosing statement;
   - Lock_order.Static_graph inversion queries behave. *)

module M = Raceguard_minicc
module Det = Raceguard_detector
module Fix = Raceguard_fix
module SG = Det.Lock_order.Static_graph
module S = M.Static_race

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run_example ?(domains = 1) file =
  let path = "../examples/programs/" ^ file in
  match Fix.Engine.run ~domains ~file:path ~src:(read_file path) () with
  | Ok t -> t
  | Error e -> Alcotest.failf "fix engine failed on %s: %s" file e

let verified t =
  List.filter (fun p -> p.Fix.Engine.pr_verified) t.Fix.Engine.t_patches

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* --- end-to-end repairs -------------------------------------------------- *)

let test_racy_counter_repaired () =
  let t = run_example "racy_counter.mcc" in
  Alcotest.(check bool) "has confirmed findings" true (t.Fix.Engine.t_confirmed <> []);
  Alcotest.(check int) "one patch" 1 (List.length t.Fix.Engine.t_patches);
  match verified t with
  | [ p ] ->
      Alcotest.(check string)
        "threaded strategy" "threaded-lock" p.Fix.Engine.pr_plan.Fix.Synth.pl_strategy;
      Alcotest.(check int) "four stages" 4 (List.length p.Fix.Engine.pr_stages);
      List.iter
        (fun (s : Fix.Verify.stage) ->
          Alcotest.(check bool) ("stage " ^ s.Fix.Verify.sg_name) true s.Fix.Verify.sg_ok)
        p.Fix.Engine.pr_stages;
      Alcotest.(check bool) "emitted source rechecks" true t.Fix.Engine.t_recheck_ok;
      let src =
        match t.Fix.Engine.t_combined_source with
        | Some s -> s
        | None -> Alcotest.fail "no combined source"
      in
      (* the existing lock is threaded as a parameter and the unguarded
         increment is wrapped *)
      Alcotest.(check bool)
        "worker gained the lock parameter" true
        (contains ~needle:"fn bad_worker(c, n, __rg_lock)" src);
      Alcotest.(check bool)
        "wrap uses the threaded lock" true (contains ~needle:"lock (__rg_lock)" src);
      Alcotest.(check bool)
        "spawn site passes the lock" true
        (contains ~needle:"spawn bad_worker(c, 10, m)" src)
  | l -> Alcotest.failf "expected exactly one verified patch, got %d" (List.length l)

let test_leaky_escape_fresh_member () =
  let t = run_example "leaky_escape.mcc" in
  match verified t with
  | [ p ] ->
      Alcotest.(check string)
        "fresh-member strategy" "fresh-member" p.Fix.Engine.pr_plan.Fix.Synth.pl_strategy;
      let src = Option.get t.Fix.Engine.t_combined_source in
      Alcotest.(check bool)
        "class gained the guard field" true (contains ~needle:"var __rg_guard;" src);
      Alcotest.(check bool)
        "guard initialised after allocation" true
        (contains ~needle:"b.__rg_guard = mutex(\"__rg_guard_Box\");" src);
      Alcotest.(check bool)
        "accesses wrapped in the member guard" true
        (contains ~needle:"lock (b.__rg_guard)" src);
      Alcotest.(check bool) "rechecks" true t.Fix.Engine.t_recheck_ok
  | l -> Alcotest.failf "expected exactly one verified patch, got %d" (List.length l)

let test_guarded_counter_clean () =
  let t = run_example "guarded_counter.mcc" in
  Alcotest.(check int) "no confirmed findings" 0 (List.length t.Fix.Engine.t_confirmed);
  Alcotest.(check int) "no patches" 0 (List.length t.Fix.Engine.t_patches);
  Alcotest.(check bool) "no combined source" true (t.Fix.Engine.t_combined_source = None)

let test_bounded_buffer_rejected () =
  let t = run_example "bounded_buffer.mcc" in
  Alcotest.(check int) "no verified patch" 0 (List.length (verified t));
  (* the candidate fails the static stage: adding a guard member to a
     handed-off object introduces new warnings *)
  (match t.Fix.Engine.t_patches with
  | [ p ] ->
      Alcotest.(check bool) "rejected" false p.Fix.Engine.pr_verified;
      let static_stage =
        List.find (fun (s : Fix.Verify.stage) -> s.Fix.Verify.sg_name = "static")
          p.Fix.Engine.pr_stages
      in
      Alcotest.(check bool) "static stage failed" false static_stage.Fix.Verify.sg_ok
  | l -> Alcotest.failf "expected one candidate patch, got %d" (List.length l));
  (* the vptr lifetime group is refused with a reason, not patched *)
  Alcotest.(check bool)
    "vptr group unfixed with reason" true
    (List.exists
       (fun (_, reason) -> contains ~needle:"vptr" reason)
       t.Fix.Engine.t_unfixed)

(* --- determinism --------------------------------------------------------- *)

let test_domains_invariant () =
  let render t = Raceguard_obs.Json.to_string (Fix.Engine.to_json t) in
  let a = render (run_example ~domains:1 "racy_counter.mcc") in
  let b = render (run_example ~domains:2 "racy_counter.mcc") in
  let c = render (run_example ~domains:1 "racy_counter.mcc") in
  Alcotest.(check string) "1 vs 2 domains" a b;
  Alcotest.(check string) "repeated run" a c

(* --- JSON document ------------------------------------------------------- *)

let test_json_schema () =
  let module Json = Raceguard_obs.Json in
  let t = run_example "racy_counter.mcc" in
  let doc = Json.to_string ~indent:2 (Fix.Engine.to_json t) in
  match Json.parse doc with
  | Error e -> Alcotest.failf "raceguard-fix/1 does not reparse: %s" e
  | Ok j ->
      Alcotest.(check (option string))
        "schema" (Some "raceguard-fix/1")
        (Option.bind (Json.member "schema" j) Json.to_string_opt);
      let summary = Option.get (Json.member "summary" j) in
      Alcotest.(check (option (float 0.0)))
        "verified count" (Some 1.0)
        (Option.bind (Json.member "verified" summary) Json.to_float_opt)

(* --- wrap rewriter ------------------------------------------------------- *)

let parse_src src =
  M.Preprocess.parse (M.Preprocess.with_builtins ()) ~file:"wrap_test.mcc" src

let test_wrap_minimal_statement () =
  let p =
    parse_src
      {|
fn main() {
  var m = mutex("g");
  var x = 0;
  if (x < 1) {
    x = x + 1;
    print(x);
  }
  return 0;
}
|}
  in
  (* wrap only the statement containing the access at line 6 (the [x]
     read on the right-hand side of [x = x + 1]) *)
  let target_pos = { M.Token.file = "wrap_test.mcc"; line = 6; col = 9 } in
  let guard_for (s : M.Ast.stmt) _covered =
    Some M.Ast.{ e = Var "m"; epos = s.M.Ast.spos }
  in
  let p' =
    match
      Fix.Rewrite.map_body p ~node:"main" (fun body ->
          match Fix.Rewrite.wrap_in_body ~guard_for ~targets:[ target_pos ] body with
          | Ok (body', n) ->
              Alcotest.(check int) "one wrap" 1 n;
              body'
          | Error e -> Alcotest.fail e)
    with
    | Some p' -> p'
    | None -> Alcotest.fail "main not found"
  in
  let src = M.Pretty.program p' in
  (* the assignment alone is wrapped — not the whole if, not the print *)
  Alcotest.(check bool)
    "assignment wrapped" true
    (contains ~needle:"lock (m) {\n      x = x + 1;\n    }" src);
  Alcotest.(check bool) "print untouched" false (contains ~needle:"lock (m) {\n      print" src)

(* --- static lock-order graph --------------------------------------------- *)

let test_static_graph () =
  let g = SG.of_edges [ (1, 2); (2, 3) ] in
  Alcotest.(check bool) "transitive reach" true (SG.reachable g ~from:1 ~target:3);
  Alcotest.(check bool) "no back reach" false (SG.reachable g ~from:3 ~target:1);
  Alcotest.(check (list (pair int int))) "acyclic: no inversion" [] (SG.inversions g);
  Alcotest.(check bool) "3->1 would invert" true (SG.adds_inversion g ~before:3 ~after:1);
  Alcotest.(check bool) "1->3 is safe" false (SG.adds_inversion g ~before:1 ~after:3);
  let g' = SG.add_edge g ~before:3 ~after:1 in
  Alcotest.(check (list (pair int int)))
    "all pairs inverted" [ (1, 2); (1, 3); (2, 3) ] (SG.inversions g');
  (* self-edges are ignored *)
  Alcotest.(check (list (pair int int)))
    "self edge dropped" (SG.edges g)
    (SG.edges (SG.add_edge g ~before:2 ~after:2))

let suite =
  ( "fix",
    [
      Alcotest.test_case "racy_counter repaired end to end" `Slow test_racy_counter_repaired;
      Alcotest.test_case "leaky_escape fresh member" `Slow test_leaky_escape_fresh_member;
      Alcotest.test_case "guarded_counter untouched" `Quick test_guarded_counter_clean;
      Alcotest.test_case "bounded_buffer candidate rejected" `Slow test_bounded_buffer_rejected;
      Alcotest.test_case "domain-count invariant" `Slow test_domains_invariant;
      Alcotest.test_case "raceguard-fix/1 JSON" `Slow test_json_schema;
      Alcotest.test_case "wrap minimal statement" `Quick test_wrap_minimal_statement;
      Alcotest.test_case "static lock-order graph" `Quick test_static_graph;
    ] )
