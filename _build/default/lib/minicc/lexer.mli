(** Hand-written lexer for MiniC++: identifiers/keywords, integers,
    string literals with escapes, [//] and [/*...*/] comments. *)

exception Error of string * Token.pos

val tokens : file:string -> string -> Token.t list
(** Tokenise a whole source string; the list ends with EOF.  Raises
    {!Error} on malformed input. *)
