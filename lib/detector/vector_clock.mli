(** Vector clocks for happens-before detection (DJIT).  A clock maps
    thread ids to logical timestamps; missing entries are 0. *)

type t

val create : unit -> t
val get : t -> int -> int
val set : t -> int -> int -> unit
val incr : t -> int -> unit
val copy : t -> t

val join : t -> t -> unit
(** [join a b] merges [b] into [a] (pointwise max). *)

val leq : t -> t -> bool
(** Pointwise ≤ — the happens-before test for full clocks. *)

val ordered_before : tid:int -> clk:int -> t -> bool
(** An access stamped (tid, clk) happened-before the state [vc] iff
    [vc] has seen at least [clk] of thread [tid]. *)

val equal : t -> t -> bool
(** Pointwise equality, independent of backing-array capacity. *)

val pp : Format.formatter -> t -> unit
(** Prints the logical entries (up to the last non-zero one) — two
    pointwise-equal clocks always render identically, whatever their
    growth history. *)
