lib/sip/history.mli: Raceguard_cxxsim
