lib/vm/tool.mli: Event Memory Raceguard_util
