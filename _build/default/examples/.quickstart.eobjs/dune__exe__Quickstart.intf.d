examples/quickstart.mli:
