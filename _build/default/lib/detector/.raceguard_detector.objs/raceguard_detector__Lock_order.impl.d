lib/detector/lock_order.ml: Fmt Hashtbl List Lock_id Printf Raceguard_util Raceguard_vm Report
