lib/vm/msg_queue.mli:
