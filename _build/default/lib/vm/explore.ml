(** Systematic schedule exploration (a CHESS-style stateless searcher).

    §4.3 of the paper observes that the lock-set algorithm's delayed
    initialisation misses races on some schedules, and that "repeated
    tests with different test data (resulting in different
    interleavings) could help find such data-races".  Random reruns are
    probabilistic; this module upgrades them to a {e systematic} search
    over the scheduler's decision tree:

    - every run is driven by a {!Engine.policy.Scripted} decision
      prefix; the engine logs the branching structure it encountered;
    - depth-first search enumerates alternative choices at each
      nontrivial decision point, bounded by [max_depth] (only the first
      k decision points are branched — the preemption-bounding idea)
      and [max_runs].

    The program under test must be deterministic apart from scheduling
    (true for every VM program by construction, since even
    {!Api.random_int} draws from the seeded VM RNG — but note the RNG
    stream interleaves with scheduling, so programs using it may
    explore a superset of schedules). *)

type 'a outcome = {
  found : 'a option;  (** the first witness the checker accepted *)
  runs : int;  (** executions performed *)
  exhausted : bool;
      (** the whole depth-bounded tree was covered (no witness exists
          within the first [max_depth] decision points) *)
  depth_limited : bool;
      (** some run had more decision points than [max_depth]: deeper
          schedules were not enumerated *)
  witness_script : int array option;  (** decision prefix reproducing it *)
}

(** [search ~max_depth ~max_runs instantiate] repeatedly calls
    [instantiate ~policy] to build a fresh VM run; the returned pair is
    (execute, check): [execute ()] runs the program and returns the
    engine, [check engine] inspects it (and whatever tools the caller
    attached) and returns a witness to stop the search.

    The caller must attach fresh tools on every [instantiate] call. *)
let search ?(max_depth = 32) ?(max_runs = 2000)
    (instantiate : policy:Engine.policy -> (unit -> Engine.t) * (Engine.t -> 'a option)) :
    'a outcome =
  let runs = ref 0 in
  let stack = ref [ [||] ] in
  let result = ref None in
  let runs_capped = ref false in
  let depth_limited = ref false in
  (try
     while !stack <> [] do
       match !stack with
       | [] -> ()
       | prefix :: rest ->
           stack := rest;
           if !runs >= max_runs then begin
             runs_capped := true;
             raise Exit
           end;
           incr runs;
           let execute, check = instantiate ~policy:(Engine.Scripted prefix) in
           let engine = execute () in
           (match check engine with
           | Some witness ->
               result := Some (witness, prefix);
               raise Exit
           | None -> ());
           (* expand: for every decision point at or after the prefix
              (up to max_depth), push the untried alternatives.
              Shallowest-first: flipping an early decision changes the
              schedule most, so witnesses that hinge on "who goes
              first" surface quickly (iterative-context-bounding
              flavour). *)
           let decisions = Array.of_list (Engine.decision_log engine) in
           let from = Array.length prefix in
           let upto = min (Array.length decisions) max_depth in
           if Array.length decisions > max_depth then depth_limited := true;
           let children = ref [] in
           for i = upto - 1 downto from do
             let chosen, arity = decisions.(i) in
             for alt = arity - 1 downto 0 do
               if alt <> chosen then begin
                 let child = Array.make (i + 1) 0 in
                 for j = 0 to i - 1 do
                   child.(j) <- fst decisions.(j)
                 done;
                 child.(i) <- alt;
                 children := child :: !children
               end
             done
           done;
           stack := !children @ !stack
     done
   with Exit -> ());
  match !result with
  | Some (witness, script) ->
      {
        found = Some witness;
        runs = !runs;
        exhausted = false;
        depth_limited = !depth_limited;
        witness_script = Some script;
      }
  | None ->
      {
        found = None;
        runs = !runs;
        exhausted = not !runs_capped;
        depth_limited = !depth_limited;
        witness_script = None;
      }
