(** Operations available {e inside} simulated threads.

    These are the "system calls" of the VM: a simulated application is
    ordinary OCaml code calling these functions.  Each call suspends
    the fiber and hands control to the scheduler, so every call is a
    potential preemption point — the granularity at which Valgrind's
    serialised execution can interleave threads.

    All functions taking [~loc] record the (pseudo) source position for
    race reports; use {!with_frame} to maintain the simulated call
    stack. *)

module Loc = Raceguard_util.Loc
open Eff

(* --- memory ------------------------------------------------------- *)

let read ~loc addr = perform (Read { addr; loc })
let write ~loc addr value = perform (Write { addr; value; loc })

(** [LOCK]-prefixed read-modify-write; returns the old value. *)
let atomic_rmw ~loc addr f = perform (Atomic_rmw { addr; f; loc })

let atomic_incr ~loc addr = atomic_rmw ~loc addr (fun v -> v + 1)
let atomic_decr ~loc addr = atomic_rmw ~loc addr (fun v -> v - 1)

let atomic_cas ~loc addr ~expected ~desired =
  let old = atomic_rmw ~loc addr (fun v -> if v = expected then desired else v) in
  old = expected

let alloc ~loc len = perform (Alloc { len; loc })
let free ~loc addr = perform (Free { addr; loc })

(* --- threads ------------------------------------------------------ *)

let spawn ~loc ~name body = perform (Spawn { name; body; loc })
let join ~loc tid = perform (Join { tid; loc })
let self () = perform Self
let yield () = perform Yield
let sleep n = perform (Sleep n)
let now () = perform Now
let random_int bound = perform (Random_int bound)

(* --- synchronisation ---------------------------------------------- *)

module Mutex = struct
  type t = int

  let create ~loc name = perform (Mutex_create { name; loc })
  let lock ~loc m = perform (Mutex_lock { m; loc })
  let try_lock ~loc m = perform (Mutex_trylock { m; loc })
  let unlock ~loc m = perform (Mutex_unlock { m; loc })

  let with_lock ~loc m f =
    lock ~loc m;
    Fun.protect ~finally:(fun () -> unlock ~loc m) f
end

module Rwlock = struct
  type t = int

  let create ~loc name = perform (Rwlock_create { name; loc })
  let rdlock ~loc rw = perform (Rwlock_lock { rw; mode = Read_mode; loc })
  let wrlock ~loc rw = perform (Rwlock_lock { rw; mode = Write_mode; loc })
  let unlock ~loc rw = perform (Rwlock_unlock { rw; loc })

  let with_rdlock ~loc rw f =
    rdlock ~loc rw;
    Fun.protect ~finally:(fun () -> unlock ~loc rw) f

  let with_wrlock ~loc rw f =
    wrlock ~loc rw;
    Fun.protect ~finally:(fun () -> unlock ~loc rw) f
end

module Cond = struct
  type t = int

  let create ~loc name = perform (Cond_create { name; loc })
  let wait ~loc cv m = perform (Cond_wait { cv; m; loc })
  let signal ~loc cv = perform (Cond_signal { cv; loc })
  let broadcast ~loc cv = perform (Cond_broadcast { cv; loc })
end

module Sem = struct
  type t = int

  let create ~loc ~init name = perform (Sem_create { name; init; loc })
  let wait ~loc s = perform (Sem_wait { s; loc })
  let post ~loc s = perform (Sem_post { s; loc })
end

(* --- client requests (Valgrind user-space calls) ------------------ *)

(** Announce that the object at [addr..addr+len-1] is about to be
    destroyed — the [VALGRIND_HG_DESTRUCT] macro of Figure 4.  A no-op
    for the VM itself; only tools interpret it. *)
let hg_destruct ~addr ~len = perform (Client (Destruct { addr; len }))

let benign_race ~addr ~len = perform (Client (Benign_race { addr; len }))

(** [ANNOTATE_HAPPENS_BEFORE]/[_AFTER]: make a higher-level handoff
    (queue put/get, custom synchronisation) visible to detectors that
    honour these annotations — the paper's §5 future-work direction. *)
let annotate_happens_before ~tag = perform (Client (Happens_before { tag }))

let annotate_happens_after ~tag = perform (Client (Happens_after { tag }))

(* --- call stack maintenance --------------------------------------- *)

let push_frame loc = perform (Push_frame loc)
let pop_frame () = perform Pop_frame

(** Run [f] with [loc] pushed on the simulated call stack. *)
let with_frame loc f =
  push_frame loc;
  Fun.protect ~finally:pop_frame f
