(** Small self-contained VM programs used by experiments and tests.
    Each is a VM main function: run with
    {!Raceguard_vm.Engine.run} or {!Runner.run_main}. *)

val stringtest : unit -> unit
(** Figure 8: stringtest.cpp — a shared CoW string whose bus-locked
    refcount the original bus-lock model misreports. *)

val false_negative_schedule : unit -> unit
(** §4.3: one unlocked writer, one coincidentally locked writer;
    whether the lock-set algorithm reports depends on the schedule. *)

val handoff_per_request : unit -> unit
(** Figure 10: ownership transfer through thread create/join — silent
    with thread segments. *)

val handoff_pool : unit -> unit
(** Figure 11: the same transfer through a message queue and a
    pre-started worker — false positives unless annotations are
    honoured (the queue and the post/wait handback are annotated, as in
    the instrumented build). *)

val high_contention :
  ?threads:int -> ?iters:int -> ?words:int -> ?locks:int -> unit -> unit
(** Synthetic detector-hot-path microbenchmark: striped-mutex hammering
    of shared words plus a bus-locked refcount — disciplined (zero
    reports), Shared-Modified steady state. *)

val read_shared : ?threads:int -> ?iters:int -> ?words:int -> unit -> unit
(** Initialise once, then lock-free concurrent readers — the Shared-RO
    steady state. *)

val read_shared_churn :
  ?threads:int -> ?rounds:int -> ?iters:int -> ?words:int -> unit -> unit
(** Fork-join rounds of concurrent readers, each followed by
    single-threaded sweeps: race-free promote/demote churn for adaptive
    epoch detectors (every round re-promotes; every join opens a
    demotion window). *)

val lock_order_inversion : force_deadlock:bool -> unit -> unit
(** Two locks taken in opposite orders; [force_deadlock] arranges the
    overlap so the run actually deadlocks. *)

(** {1 Shipped SIP storm scenarios ([raceguard-scenario/1])} *)

module Scenario = Raceguard_sip.Workload.Scenario

val t9_storm : Scenario.t
(** T9: registration storm with shedding/backoff against the sharded
    registrar (includes the hash-collision AOR pair). *)

val t10_rebalance : Scenario.t
(** T10: online shard rebalance under live traffic — fillers cross the
    growth threshold while a refresher races the migration window. *)

val sip_scenarios : Scenario.t list

val sip_lookup : string -> Scenario.t option
(** Shipped scenario by test-case name ("T9", "T10"). *)
