lib/detector/lock_id.mli: Format Raceguard_vm
