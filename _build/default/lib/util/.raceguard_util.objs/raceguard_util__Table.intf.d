lib/util/table.mli:
