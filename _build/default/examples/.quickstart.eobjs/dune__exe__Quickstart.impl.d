examples/quickstart.ml: Fmt List Printf Raceguard_detector Raceguard_util Raceguard_vm
