lib/cxxsim/object_model.ml: Fmt Hashtbl List Raceguard_util Raceguard_vm Refstring
