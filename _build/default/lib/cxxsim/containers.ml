(** STL-like containers whose storage lives in VM memory.

    A [vector] (geometric growth through the allocator) and a [map]
    (sorted singly-linked list of nodes, standing in for the red-black
    tree — the access pattern per lookup/insert is what matters, not
    the asymptotics at simulation sizes).

    Containers take the {!Allocator} they were "instantiated" with, so
    the pool-allocator false-positive experiment (E12) can flip one
    switch. *)

module Loc = Raceguard_util.Loc
module Api = Raceguard_vm.Api

(* ------------------------------------------------------------------ *)
(* vector<int>                                                         *)
(* ------------------------------------------------------------------ *)

module Vector = struct
  (* header: [size; capacity; data] *)
  type t = { hdr : int; alloc : Allocator.t }

  let hdr_size = 0
  let hdr_cap = 1
  let hdr_data = 2

  let lc func line = Loc.v "stl_vector.h" ("std::vector::" ^ func) line

  let create alloc =
    let hdr = Api.alloc ~loc:(lc "vector" 100) 3 in
    Api.write ~loc:(lc "vector" 101) (hdr + hdr_size) 0;
    Api.write ~loc:(lc "vector" 102) (hdr + hdr_cap) 0;
    Api.write ~loc:(lc "vector" 103) (hdr + hdr_data) 0;
    { hdr; alloc }

  let size t = Api.read ~loc:(lc "size" 110) (t.hdr + hdr_size)

  let get t i =
    let data = Api.read ~loc:(lc "operator[]" 120) (t.hdr + hdr_data) in
    Api.read ~loc:(lc "operator[]" 121) (data + i)

  let set t i v =
    let data = Api.read ~loc:(lc "operator[]" 125) (t.hdr + hdr_data) in
    Api.write ~loc:(lc "operator[]" 126) (data + i) v

  let push_back t v =
    let n = size t in
    let cap = Api.read ~loc:(lc "push_back" 131) (t.hdr + hdr_cap) in
    if n = cap then begin
      let new_cap = max 4 (2 * cap) in
      let fresh = Allocator.alloc t.alloc ~loc:(lc "push_back" 134) new_cap in
      let old = Api.read ~loc:(lc "push_back" 135) (t.hdr + hdr_data) in
      for i = 0 to n - 1 do
        Api.write ~loc:(lc "push_back" 137) (fresh + i) (Api.read ~loc:(lc "push_back" 137) (old + i))
      done;
      if old <> 0 then Allocator.free t.alloc ~loc:(lc "push_back" 139) old cap;
      Api.write ~loc:(lc "push_back" 140) (t.hdr + hdr_data) fresh;
      Api.write ~loc:(lc "push_back" 141) (t.hdr + hdr_cap) new_cap
    end;
    set t n v;
    Api.write ~loc:(lc "push_back" 144) (t.hdr + hdr_size) (n + 1)

  let iter t f =
    for i = 0 to size t - 1 do
      f (get t i)
    done

  let destroy t =
    let cap = Api.read ~loc:(lc "~vector" 150) (t.hdr + hdr_cap) in
    let data = Api.read ~loc:(lc "~vector" 151) (t.hdr + hdr_data) in
    if data <> 0 then Allocator.free t.alloc ~loc:(lc "~vector" 152) data cap;
    Api.free ~loc:(lc "~vector" 153) t.hdr
end

(* ------------------------------------------------------------------ *)
(* map<int,int>                                                        *)
(* ------------------------------------------------------------------ *)

module Map = struct
  (* header: [first; size]; node: [key; value; next] *)
  type t = { hdr : int; alloc : Allocator.t }

  let node_size = 3
  let lc func line = Loc.v "stl_map.h" ("std::map::" ^ func) line

  let create alloc =
    let hdr = Api.alloc ~loc:(lc "map" 200) 2 in
    Api.write ~loc:(lc "map" 201) hdr 0;
    Api.write ~loc:(lc "map" 202) (hdr + 1) 0;
    { hdr; alloc }

  (** The header address: what a method "returning a reference to the
      internal map" hands out (the §4.1.2 bug pattern). *)
  let address t = t.hdr

  let of_address alloc hdr = { hdr; alloc }

  let size t = Api.read ~loc:(lc "size" 210) (t.hdr + 1)

  let find t key =
    let rec go node =
      if node = 0 then None
      else
        let k = Api.read ~loc:(lc "find" 222) node in
        if k = key then Some (Api.read ~loc:(lc "find" 223) (node + 1))
        else if k > key then None
        else go (Api.read ~loc:(lc "find" 225) (node + 2))
    in
    go (Api.read ~loc:(lc "find" 227) t.hdr)

  let insert t key value =
    (* sorted insert; update in place when the key exists *)
    let new_node () =
      let n = Allocator.alloc t.alloc ~loc:(lc "insert" 233) node_size in
      Api.write ~loc:(lc "insert" 234) n key;
      Api.write ~loc:(lc "insert" 235) (n + 1) value;
      n
    in
    let bump () = Api.write ~loc:(lc "insert" 237) (t.hdr + 1) (size t + 1) in
    let rec go prev node =
      if node = 0 then begin
        let n = new_node () in
        Api.write ~loc:(lc "insert" 241) (n + 2) 0;
        Api.write ~loc:(lc "insert" 242) prev n;
        bump ()
      end
      else
        let k = Api.read ~loc:(lc "insert" 245) node in
        if k = key then Api.write ~loc:(lc "insert" 246) (node + 1) value
        else if k > key then begin
          let n = new_node () in
          Api.write ~loc:(lc "insert" 249) (n + 2) node;
          Api.write ~loc:(lc "insert" 250) prev n;
          bump ()
        end
        else go (node + 2) (Api.read ~loc:(lc "insert" 252) (node + 2))
    in
    go t.hdr (Api.read ~loc:(lc "insert" 254) t.hdr)

  let remove t key =
    let dec () = Api.write ~loc:(lc "erase" 258) (t.hdr + 1) (size t - 1) in
    let rec go prev node =
      if node = 0 then false
      else
        let k = Api.read ~loc:(lc "erase" 262) node in
        if k = key then begin
          let next = Api.read ~loc:(lc "erase" 264) (node + 2) in
          Api.write ~loc:(lc "erase" 265) prev next;
          Allocator.free t.alloc ~loc:(lc "erase" 266) node node_size;
          dec ();
          true
        end
        else if k > key then false
        else go (node + 2) (Api.read ~loc:(lc "erase" 271) (node + 2))
    in
    go t.hdr (Api.read ~loc:(lc "erase" 273) t.hdr)

  let iter t f =
    let rec go node =
      if node <> 0 then begin
        let k = Api.read ~loc:(lc "iterator" 279) node in
        let v = Api.read ~loc:(lc "iterator" 280) (node + 1) in
        f k v;
        go (Api.read ~loc:(lc "iterator" 282) (node + 2))
      end
    in
    go (Api.read ~loc:(lc "begin" 284) t.hdr)

  let clear t =
    let rec go node =
      if node <> 0 then begin
        let next = Api.read ~loc:(lc "clear" 290) (node + 2) in
        Allocator.free t.alloc ~loc:(lc "clear" 291) node node_size;
        go next
      end
    in
    go (Api.read ~loc:(lc "clear" 294) t.hdr);
    Api.write ~loc:(lc "clear" 295) t.hdr 0;
    Api.write ~loc:(lc "clear" 296) (t.hdr + 1) 0

  let destroy t =
    clear t;
    Api.free ~loc:(lc "~map" 300) t.hdr
end
