lib/vm/tool.ml: Event Memory Raceguard_util
