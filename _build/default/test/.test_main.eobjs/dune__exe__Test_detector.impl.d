test/test_detector.ml: Alcotest Fun List Printexc QCheck2 QCheck_alcotest Raceguard Raceguard_cxxsim Raceguard_detector Raceguard_util Raceguard_vm
