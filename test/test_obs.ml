(* Tests for the observability layer:

   - properties: histogram/counter merge is associative and commutative
     with [empty] as identity, and snapshotting one registry that saw
     all observations equals merging per-registry snapshots;
   - the ring tracer's JSON export round-trips through our own parser,
     with sampling and overwrite accounting intact;
   - warning provenance is byte-identical with the shadow fast path on
     or off (the histories only record genuine state changes). *)

module Obs = Raceguard_obs
module Json = Obs.Json
module Metrics = Obs.Metrics
module Trace = Obs.Trace
module Vm = Raceguard_vm
module Engine = Vm.Engine
module Sip = Raceguard_sip
module R = Raceguard
module Det = Raceguard_detector

(* --- metrics merge properties ------------------------------------------ *)

(* one registry per sample list: a histogram, a counter and their
   observations; gauges are excluded from the merge-equals-combined
   property because merge takes the max while a combined run keeps the
   last [set] *)
let snapshot_of xs =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r "test.hist" in
  let c = Metrics.counter ~registry:r "test.count" in
  List.iter
    (fun x ->
      Metrics.observe h x;
      Metrics.add c x)
    xs;
  Metrics.snapshot ~registry:r ()

let gen_obs = QCheck2.Gen.(list_size (int_bound 40) (int_bound 100_000))

let qc_merge_assoc =
  QCheck2.Test.make ~name:"snapshot merge is associative" ~count:200
    QCheck2.Gen.(triple gen_obs gen_obs gen_obs)
    (fun (a, b, c) ->
      let sa = snapshot_of a and sb = snapshot_of b and sc = snapshot_of c in
      Metrics.merge sa (Metrics.merge sb sc) = Metrics.merge (Metrics.merge sa sb) sc)

let qc_merge_comm =
  QCheck2.Test.make ~name:"snapshot merge is commutative" ~count:200
    QCheck2.Gen.(pair gen_obs gen_obs)
    (fun (a, b) ->
      let sa = snapshot_of a and sb = snapshot_of b in
      Metrics.merge sa sb = Metrics.merge sb sa)

let qc_merge_identity =
  QCheck2.Test.make ~name:"empty is the merge identity" ~count:200 gen_obs (fun a ->
      let sa = snapshot_of a in
      Metrics.merge Metrics.empty sa = sa && Metrics.merge sa Metrics.empty = sa)

let qc_snapshot_after_merge =
  QCheck2.Test.make ~name:"snapshot of combined run = merged snapshots" ~count:200
    QCheck2.Gen.(pair gen_obs gen_obs)
    (fun (a, b) ->
      snapshot_of (a @ b) = Metrics.merge (snapshot_of a) (snapshot_of b))

let qc_diff_recovers =
  QCheck2.Test.make ~name:"diff after merge recovers the increment" ~count:200
    QCheck2.Gen.(pair gen_obs gen_obs)
    (fun (a, b) ->
      (* counters/histograms: (a merged b) diffed against a gives b *)
      let sa = snapshot_of a and sb = snapshot_of b in
      Metrics.diff ~before:sa (Metrics.merge sa sb) = sb)

(* --- trace export round-trip ------------------------------------------- *)

let get_exn = function Ok v -> v | Error e -> Alcotest.failf "JSON parse error: %s" e

let member_exn name j =
  match Json.member name j with Some v -> v | None -> Alcotest.failf "missing %S" name

let test_trace_roundtrip () =
  let t = Trace.create ~capacity:8 () in
  for i = 1 to 5 do
    Trace.emit t ~ts:(i * 10) ~tid:i ~name:(Printf.sprintf "ev%d" i) ~cat:"vm"
      ~args:[ ("i", Json.int i); ("label", Json.Str "x\"y") ]
      ()
  done;
  let j = get_exn (Json.parse (Trace.to_string t)) in
  let events = Option.get (Json.to_list_opt (member_exn "traceEvents" j)) in
  Alcotest.(check int) "all five events exported" 5 (List.length events);
  List.iteri
    (fun i e ->
      Alcotest.(check (option string))
        "name survives" (Some (Printf.sprintf "ev%d" (i + 1)))
        (Json.to_string_opt (member_exn "name" e));
      Alcotest.(check (option (float 0.)))
        "ts survives"
        (Some (float_of_int ((i + 1) * 10)))
        (Json.to_float_opt (member_exn "ts" e));
      let args = member_exn "args" e in
      Alcotest.(check (option string))
        "escaped arg string survives" (Some "x\"y")
        (Json.to_string_opt (member_exn "label" args)))
    events;
  let other = member_exn "otherData" j in
  Alcotest.(check (option (float 0.)))
    "offered recorded in metadata" (Some 5.)
    (Json.to_float_opt (member_exn "offered" other))

let test_trace_ring_overwrites_oldest () =
  let t = Trace.create ~capacity:8 () in
  for i = 1 to 20 do
    Trace.emit t ~ts:i ~tid:0 ~name:"e" ~cat:"vm" ()
  done;
  Alcotest.(check int) "offered" 20 (Trace.offered t);
  Alcotest.(check int) "recorded counts every write" 20 (Trace.recorded t);
  Alcotest.(check int) "dropped counts the overwritten" 12 (Trace.dropped t);
  Alcotest.(check int) "live records cap at capacity" 8 (List.length (Trace.records t));
  Alcotest.(check (list int))
    "keeps the tail, oldest first"
    [ 13; 14; 15; 16; 17; 18; 19; 20 ]
    (List.map (fun (r : Trace.record) -> r.ts) (Trace.records t))

let test_trace_wrap_monotonic_export () =
  (* merged event sources can offer out-of-order timestamps; after the
     ring wraps, the Chrome export must still come out in monotonic ts
     order (trace viewers silently drop unsorted events) *)
  let t = Trace.create ~capacity:4 () in
  List.iter (fun ts -> Trace.emit t ~ts ~tid:0 ~name:"e" ~cat:"vm" ()) [ 5; 1; 9; 3; 7; 2 ];
  (* ring keeps the last four offers: 9, 3, 7, 2 *)
  let ts_of rs = List.map (fun (r : Trace.record) -> r.ts) rs in
  Alcotest.(check (list int)) "records sorted by ts after wrap" [ 2; 3; 7; 9 ]
    (ts_of (Trace.records t));
  let j = get_exn (Json.parse (Trace.to_string t)) in
  let events = Option.get (Json.to_list_opt (member_exn "traceEvents" j)) in
  let exported =
    List.map (fun e -> Option.get (Json.to_float_opt (member_exn "ts" e))) events
  in
  Alcotest.(check (list (float 0.))) "export is monotonic" [ 2.; 3.; 7.; 9. ] exported

let test_trace_sampling_deterministic () =
  let one () =
    let t = Trace.create ~capacity:64 ~sample:3 () in
    for i = 1 to 10 do
      Trace.emit t ~ts:i ~tid:0 ~name:"e" ~cat:"vm" ()
    done;
    List.map (fun (r : Trace.record) -> r.ts) (Trace.records t)
  in
  let a = one () and b = one () in
  Alcotest.(check (list int)) "same subset both runs" a b;
  Alcotest.(check int) "1-in-3 of ten offers" 4 (List.length a)

let test_metrics_json_parses () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "c.one" in
  let g = Metrics.gauge ~registry:r "g.one" in
  let h = Metrics.histogram ~registry:r "h.one" in
  Metrics.add c 41;
  Metrics.incr c;
  Metrics.set g 17;
  List.iter (Metrics.observe h) [ 0; 1; 5; 5; 1024 ];
  let j = get_exn (Json.parse (Json.to_string ~indent:2 (Metrics.to_json (Metrics.snapshot ~registry:r ())))) in
  let counters = member_exn "counters" j in
  Alcotest.(check (option (float 0.)))
    "counter value" (Some 42.)
    (Json.to_float_opt (member_exn "c.one" counters));
  let hist = member_exn "h.one" (member_exn "histograms" j) in
  Alcotest.(check (option (float 0.)))
    "histogram count" (Some 5.)
    (Json.to_float_opt (member_exn "count" hist));
  Alcotest.(check (option (float 0.)))
    "histogram sum" (Some 1035.)
    (Json.to_float_opt (member_exn "sum" hist))

(* --- provenance byte-stability across the fast path --------------------- *)

let provenance_cfg base = { base with Det.Helgrind.provenance = true }

let run_sip ~seed cfg tc =
  let h = Det.Helgrind.create cfg in
  let vm = Engine.create ~config:{ Engine.default_config with seed } () in
  Engine.add_tool vm (Det.Helgrind.tool h);
  let transport = Sip.Transport.create () in
  let outcome =
    Engine.run vm (fun () ->
        ignore
          (Sip.Workload.run_test_case ~transport ~server_config:R.Runner.default.server tc ()))
  in
  (match outcome.failures with
  | [] -> ()
  | (_, name, e) :: _ -> Alcotest.failf "thread %s raised %s" name (Printexc.to_string e));
  List.map
    (fun (r : Det.Report.t) ->
      match r.provenance with
      | None -> Alcotest.fail "provenance missing with config.provenance = true"
      | Some p -> Fmt.str "%a@\n%a" Det.Report.pp r Det.Report.pp_provenance p)
    (Det.Helgrind.reports h)

let test_provenance_fast_path_stable () =
  List.iter
    (fun cfg ->
      let fast = provenance_cfg cfg in
      let slow = { fast with Det.Helgrind.fast_path = false } in
      List.iter
        (fun tc ->
          let f = run_sip ~seed:7 fast tc in
          let s = run_sip ~seed:7 slow tc in
          Alcotest.(check (list string))
            (Fmt.str "%a/%s: byte-identical provenance" Det.Helgrind.pp_config_name cfg
               tc.Sip.Workload.tc_name)
            s f)
        Sip.Workload.all_test_cases)
    [ Det.Helgrind.hwlc_dr; Det.Helgrind.original ]

let test_provenance_in_explain_json () =
  let x = R.Explain.run (Option.get (R.Explain.test_case_of_string "T4")) in
  let j = get_exn (Json.parse (Json.to_string (R.Explain.to_json x))) in
  let warnings = Option.get (Json.to_list_opt (member_exn "warnings" j)) in
  Alcotest.(check bool) "warnings present" true (warnings <> []);
  List.iter
    (fun w ->
      let report = member_exn "report" w in
      ignore (member_exn "provenance" report))
    warnings;
  let suppressed =
    List.concat_map
      (fun w ->
        List.filter_map Json.to_string_opt
          (Option.get (Json.to_list_opt (member_exn "suppressed_by" w))))
      warnings
  in
  Alcotest.(check bool) "some warning names a suppressing knob" true (suppressed <> [])

let suite =
  ( "obs",
    [
      QCheck_alcotest.to_alcotest qc_merge_assoc;
      QCheck_alcotest.to_alcotest qc_merge_comm;
      QCheck_alcotest.to_alcotest qc_merge_identity;
      QCheck_alcotest.to_alcotest qc_snapshot_after_merge;
      QCheck_alcotest.to_alcotest qc_diff_recovers;
      Alcotest.test_case "trace JSON round-trips" `Quick test_trace_roundtrip;
      Alcotest.test_case "ring overwrites oldest-first" `Quick test_trace_ring_overwrites_oldest;
      Alcotest.test_case "wrapped ring exports monotonic ts" `Quick
        test_trace_wrap_monotonic_export;
      Alcotest.test_case "sampling is deterministic" `Quick test_trace_sampling_deterministic;
      Alcotest.test_case "metrics JSON parses back" `Quick test_metrics_json_parses;
      Alcotest.test_case "provenance stable across fast path" `Slow
        test_provenance_fast_path_stable;
      Alcotest.test_case "explain JSON carries provenance + knobs" `Slow
        test_provenance_in_explain_json;
    ] )
