(** The debugging-process driver (Figure 3): one VM run, any number of
    detector configurations observing the same serialised event stream.

    The simulated application is always built {e with} the automatic
    annotations (client requests are no-ops under normal execution,
    §3.1); each attached configuration decides independently whether to
    honour them, so configuration comparisons (Figures 5/6) see
    identical schedules and differ only in the algorithm. *)

module Vm = Raceguard_vm
module Det = Raceguard_detector
module Sip = Raceguard_sip
module Obs = Raceguard_obs

type config = {
  seed : int;
  policy : Vm.Engine.policy;
  helgrind_configs : (string * Det.Helgrind.config) list;
      (** named configurations run side by side *)
  run_djit : bool;
  run_fasttrack : bool;  (** epoch-based HB detector alongside (or instead) *)
  run_lock_order : bool;
  server : Sip.Proxy.config;
  trace_events : bool;
  max_ops : int;
  tracer : Obs.Trace.t option;
      (** installed on the VM and on every Helgrind instance, so one
          ring receives both VM events and detector decisions *)
  faults : Raceguard_faults.Injector.t option;
      (** fault injector handed to the engine (spawn-delay and
          lock-delay faults); share the instance wired into the
          transport and server config for one coherent plan *)
  recorder : Det.Offline.recorder option;
      (** binary trace recorder attached alongside the detectors: the
          record mode of the offline plane.  Recording is a pure
          observer — schedule, RNG draws and detector reports are
          unchanged by its presence. *)
}

val default : config
(** Seed 1, random scheduling, the three Figure-6 configurations
    (Original / HWLC / HWLC+DR), instrumented server build. *)

type result = {
  helgrind : (string * Det.Helgrind.t) list;
  djit : Det.Djit.t option;
  fasttrack : Det.Fasttrack.t option;
  lock_order : Det.Lock_order.t option;
  outcome : Vm.Engine.outcome;
  oracle : Sip.Workload.run_result option;
      (** functional verdict when the run was a SIP test case *)
  wall_seconds : float;
  metrics : Obs.Metrics.snapshot;
      (** this run's delta of the process-global metrics registry
          (VM counters, detector fast-path hits, lockset memo stats) *)
}

val run_main : config -> (unit -> 'a) -> result * 'a option
(** Run an arbitrary VM main function under the configured detectors. *)

val run_test_case : config -> Sip.Workload.test_case -> result
(** Run one of the eight SIP test cases (server + drivers + shutdown). *)

val locations_of : result -> string -> (Det.Report.t * int) list
(** Deduplicated locations of a named configuration; raises
    [Invalid_argument] for an unknown name. *)

val location_count : result -> string -> int
