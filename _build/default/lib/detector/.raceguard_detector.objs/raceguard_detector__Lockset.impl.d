lib/detector/lockset.ml: Fmt Lock_id Raceguard_util
