(* Deadlock detection, both predictive (lock-order graph) and at
   runtime (waits-for cycle in the scheduler).

     dune exec examples/deadlock_demo.exe *)

let () = print_endline (Raceguard.Experiments.deadlock ())
