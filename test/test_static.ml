(* Tests pinning the static lockset & thread-escape analysis and its
   feedback paths into the dynamic detector:

   - properties over generated programs: the analysis terminates, is
     deterministic, and stays silent on programs with no shared state;
   - the lint flags racy_counter's race and stays silent on
     guarded_counter;
   - generated suppressions round-trip through the suppression-file
     parser and match the dynamic reports they came from;
   - [set_static_hints] leaves reports byte-identical on every example
     program while never lowering the fast-path hit rate — and raises
     it strictly on a hint-heavy workload;
   - the static/dynamic cross-check confirms racy_counter end to end;
   - [Check.check_all] accumulates every semantic violation. *)

module Vm = Raceguard_vm
module Engine = Vm.Engine
module M = Raceguard_minicc
module R = Raceguard
module Det = Raceguard_detector
module S = M.Static_race

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_file file =
  let path = "../examples/programs/" ^ file in
  M.Preprocess.parse (M.Preprocess.with_builtins ()) ~file:path (read_file path)

let analyse_file file = S.analyse (parse_file file)

(* --- properties on generated programs ----------------------------------- *)

let qc_analyse_terminates_deterministic =
  QCheck2.Test.make ~name:"static analysis terminates and is deterministic" ~count:100
    Test_minicc_gen.gen_program (fun p ->
      let a = Fmt.str "%a" S.pp_result (S.analyse p) in
      let b = Fmt.str "%a" S.pp_result (S.analyse p) in
      a = b)

let qc_analyse_silent_without_sharing =
  (* generated programs touch only locals and parameters: no object or
     raw word ever escapes, so the lint must stay silent *)
  QCheck2.Test.make ~name:"static analysis silent on share-free programs" ~count:100
    Test_minicc_gen.gen_program (fun p ->
      let r = S.analyse p in
      r.S.warnings = [] && r.S.escaping_allocs = [])

(* --- the two example programs ------------------------------------------- *)

let test_racy_counter_flagged () =
  let r = analyse_file "racy_counter.mcc" in
  Alcotest.(check bool) "has warnings" true (r.S.warnings <> []);
  let in_fn fn (w : S.warning) =
    match w.S.w_stack with l :: _ -> l.Raceguard_util.Loc.func = fn | [] -> false
  in
  Alcotest.(check bool) "flags the unlocked bad_worker write" true
    (List.exists
       (fun w -> w.S.w_kind = Det.Report.Race_write && in_fn "bad_worker" w)
       r.S.warnings);
  Alcotest.(check bool) "every warning names field 'value'" true
    (List.for_all (fun w -> w.S.w_field = "value") r.S.warnings)

let test_guarded_counter_silent () =
  let r = analyse_file "guarded_counter.mcc" in
  Alcotest.(check int) "zero warnings" 0 (List.length r.S.warnings);
  Alcotest.(check bool) "generates suppressions for the guarded accesses" true
    (r.S.suppressions <> []);
  Alcotest.(check bool) "the counter escapes" true (r.S.escaping_allocs <> [])

let test_leaky_escape_flagged () =
  let r = analyse_file "leaky_escape.mcc" in
  Alcotest.(check bool) "write-after-publication flagged in main" true
    (List.exists
       (fun (w : S.warning) ->
         w.S.w_kind = Det.Report.Race_write
         && match w.S.w_stack with l :: _ -> l.Raceguard_util.Loc.func = "main" | [] -> false)
       r.S.warnings);
  Alcotest.(check int) "the scratch buffer is a locality hint" 1
    (List.length r.S.hint_locs)

(* --- suppression round-trip --------------------------------------------- *)

let test_suppressions_roundtrip () =
  let r = analyse_file "guarded_counter.mcc" in
  let rendered = List.map Det.Suppression.to_string r.S.suppressions in
  let reparsed = Det.Suppression.parse_string (String.concat "" rendered) in
  Alcotest.(check int) "same number of suppressions" (List.length r.S.suppressions)
    (List.length reparsed);
  Alcotest.(check (list string))
    "render -> parse -> render is the identity" rendered
    (List.map Det.Suppression.to_string reparsed)

(* --- static hints: fidelity + hit rate ----------------------------------- *)

let run_mcc ?(hints = []) ~seed file =
  let path = "../examples/programs/" ^ file in
  let interp, _pretty, _n = M.Interp.compile ~annotate:true ~file:path (read_file path) in
  let h = Det.Helgrind.create Det.Helgrind.hwlc_dr in
  if hints <> [] then Det.Helgrind.set_static_hints h hints;
  let vm = Engine.create ~config:{ Engine.default_config with seed } () in
  Engine.add_tool vm (Det.Helgrind.tool h);
  let outcome = Engine.run vm (fun () -> M.Interp.run_main interp) in
  (match outcome.failures with
  | [] -> ()
  | (_, name, e) :: _ -> Alcotest.failf "thread %s raised %s" name (Printexc.to_string e));
  ( List.map (Fmt.str "%a" Det.Report.pp) (Det.Helgrind.reports h),
    Det.Helgrind.fast_path_hits h )

let all_examples () =
  Sys.readdir "../examples/programs" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".mcc")
  |> List.sort compare

let test_hints_reports_identical () =
  List.iter
    (fun file ->
      let hints = (analyse_file file).S.hint_locs in
      List.iter
        (fun seed ->
          let plain, plain_hits = run_mcc ~seed file in
          let hinted, hinted_hits = run_mcc ~hints ~seed file in
          Alcotest.(check (list string))
            (Printf.sprintf "%s seed %d: byte-identical reports under hints" file seed)
            plain hinted;
          Alcotest.(check bool)
            (Printf.sprintf "%s seed %d: hit rate never drops" file seed)
            true
            (hinted_hits >= plain_hits))
        [ 1; 7 ])
    (all_examples ())

let hinty_source =
  (* main re-touches a private buffer between spawn/join segment
     advances: without hints the first access per word per pass misses
     the Exclusive fast path on the stale segment stamp *)
  {|
fn worker(k) {
  var i = 0;
  while (i < 10) { i = i + k; }
  return i;
}

fn main() {
  var buf = alloc(16);
  var pass = 0;
  while (pass < 4) {
    var i = 0;
    while (i < 16) {
      store(buf + i, load(buf + i) + pass);
      i = i + 1;
    }
    var t = spawn worker(1);
    join(t);
    pass = pass + 1;
  }
  free(buf);
  return 0;
}
|}

let test_hints_raise_hit_rate () =
  let ast =
    M.Preprocess.parse (M.Preprocess.with_builtins ()) ~file:"hinty.mcc" hinty_source
  in
  let r = S.analyse ast in
  Alcotest.(check int) "one hint site" 1 (List.length r.S.hint_locs);
  let run hints =
    let interp, _, _ = M.Interp.compile ~annotate:true ~file:"hinty.mcc" hinty_source in
    let h = Det.Helgrind.create Det.Helgrind.hwlc_dr in
    if hints <> [] then Det.Helgrind.set_static_hints h hints;
    let vm = Engine.create ~config:{ Engine.default_config with seed = 3 } () in
    Engine.add_tool vm (Det.Helgrind.tool h);
    ignore (Engine.run vm (fun () -> M.Interp.run_main interp));
    ( List.map (Fmt.str "%a" Det.Report.pp) (Det.Helgrind.reports h),
      Det.Helgrind.fast_path_hits h,
      Det.Helgrind.accesses_checked h )
  in
  let plain_reports, plain_hits, plain_checked = run [] in
  let hinted_reports, hinted_hits, hinted_checked = run r.S.hint_locs in
  Alcotest.(check (list string)) "reports identical" plain_reports hinted_reports;
  Alcotest.(check int) "same accesses checked" plain_checked hinted_checked;
  Alcotest.(check bool)
    (Printf.sprintf "hit rate strictly rises (%d -> %d of %d)" plain_hits hinted_hits
       plain_checked)
    true (hinted_hits > plain_hits)

(* --- static/dynamic cross-check ------------------------------------------ *)

let test_cross_check_racy_counter () =
  let static = analyse_file "racy_counter.mcc" in
  let path = "../examples/programs/racy_counter.mcc" in
  let interp, _, _ = M.Interp.compile ~annotate:true ~file:path (read_file path) in
  let h = Det.Helgrind.create Det.Helgrind.hwlc_dr in
  let vm = Engine.create ~config:{ Engine.default_config with seed = 1 } () in
  Engine.add_tool vm (Det.Helgrind.tool h);
  ignore (Engine.run vm (fun () -> M.Interp.run_main interp));
  let cc = R.Static_dyn.cross_check ~static ~dynamic:(Det.Helgrind.reports h) in
  Alcotest.(check bool) "some findings confirmed" true (cc.R.Static_dyn.n_confirmed > 0);
  Alcotest.(check int) "every static finding is dynamically witnessed" 0
    cc.R.Static_dyn.n_static_only

(* --- Check.check_all accumulation ----------------------------------------- *)

let test_check_all_accumulates () =
  let src =
    "fn f(a) { return b + c; }\nfn main() { f(1); undefined_fn(2); return 0; }\n"
  in
  let ast =
    M.Preprocess.parse (M.Preprocess.with_builtins ()) ~file:"bad.mcc" src
  in
  let diags = M.Check.check_all ast in
  Alcotest.(check int) "all three violations reported" 3 (List.length diags);
  (match M.Check.check ast with
  | () -> Alcotest.fail "check accepted an invalid program"
  | exception M.Check.Error (msg, _) ->
      Alcotest.(check string) "check raises the first diagnostic" (fst (List.hd diags)) msg);
  let ok = M.Preprocess.parse (M.Preprocess.with_builtins ()) ~file:"ok.mcc"
      "fn main() { return 0; }\n"
  in
  Alcotest.(check int) "well-formed program has no diagnostics" 0
    (List.length (M.Check.check_all ok))

let suite =
  ( "static",
    [
      QCheck_alcotest.to_alcotest qc_analyse_terminates_deterministic;
      QCheck_alcotest.to_alcotest qc_analyse_silent_without_sharing;
      Alcotest.test_case "racy_counter: race flagged statically" `Quick
        test_racy_counter_flagged;
      Alcotest.test_case "guarded_counter: statically silent" `Quick
        test_guarded_counter_silent;
      Alcotest.test_case "leaky_escape: escape-after-publication flagged" `Quick
        test_leaky_escape_flagged;
      Alcotest.test_case "generated suppressions round-trip" `Quick
        test_suppressions_roundtrip;
      Alcotest.test_case "static hints: reports identical on all examples" `Quick
        test_hints_reports_identical;
      Alcotest.test_case "static hints: hit rate strictly rises" `Quick
        test_hints_raise_hit_rate;
      Alcotest.test_case "cross-check confirms racy_counter" `Quick
        test_cross_check_racy_counter;
      Alcotest.test_case "check_all accumulates every violation" `Quick
        test_check_all_accumulates;
    ] )
