lib/sip/domain_data.ml: List Raceguard_cxxsim Raceguard_util Raceguard_vm Registrar
