lib/sip/transport.ml: Char Hashtbl List Queue Raceguard_util Raceguard_vm String
