(* Tests for the sharded registrar and the storm-scenario plane:
   hash-collision regression (the legacy blindness and the interned
   fix), qcheck properties of the shard router and online rebalance,
   timer-wheel expiry under injected delay faults, the scenario DSL
   round-trip, and the T9/T10 chaos-cell pins (asymmetry, domain and
   fast-path invariance). *)

module Vm = Raceguard_vm
module Engine = Vm.Engine
module Api = Vm.Api
module Sip = Raceguard_sip
module Faults = Raceguard_faults
module Registrar = Sip.Registrar
module Scenario = Sip.Workload.Scenario
module Loc = Raceguard_util.Loc

let loc = Loc.v "test_shards.ml" "test" 1

let run ?(seed = 3) ?faults f =
  let vm = Engine.create ~config:{ Engine.default_config with seed; faults } () in
  let result = ref None in
  let outcome = Engine.run vm (fun () -> result := Some (f ())) in
  (match outcome.failures with
  | [] -> ()
  | (_, name, e) :: _ -> Alcotest.failf "thread %s raised %s" name (Printexc.to_string e));
  (match outcome.deadlock with
  | None -> ()
  | Some d -> Alcotest.failf "unexpected deadlock: %s" (Fmt.str "%a" Engine.pp_deadlock d));
  Option.get !result

let make_registrar ?(sharding = Registrar.Unsharded) () =
  let alloc = Raceguard_cxxsim.Allocator.create Raceguard_cxxsim.Allocator.Direct in
  let stats = Sip.Stats.create () in
  Registrar.create ~sharding ~alloc ~stats ()

let reg r ~aor ~contact =
  ignore (Registrar.register r ~annotate:true ~aor ~contact ~cseq:1 ~expires:600)

let lookup_str r ~aor =
  match Registrar.lookup r ~aor with
  | None -> None
  | Some c ->
      let s = Raceguard_cxxsim.Refstring.to_string c in
      Raceguard_cxxsim.Refstring.release c;
      Some s

(* --- the collision pair --------------------------------------------- *)

let test_collision_pair_collides () =
  let u1, u2 = Registrar.collision_pair () in
  Alcotest.(check bool) "distinct users" true (u1 <> u2);
  Alcotest.(check int) "AORs collide under hash_string"
    (Registrar.hash_string (u1 ^ "@example.com"))
    (Registrar.hash_string (u2 ^ "@example.com"))

(* The historical bug: the single-mutex registrar keyed its container
   by hash alone, so the second user of a colliding pair silently
   clobbered the first.  The collision-safe interning must keep both. *)
let test_collision_unsharded_safe () =
  let u1, u2 = Registrar.collision_pair () in
  let a1 = u1 ^ "@example.com" and a2 = u2 ^ "@example.com" in
  let c1, c2, size, audit, bound =
    run (fun () ->
        let r = make_registrar () in
        reg r ~aor:a1 ~contact:"sip:first";
        reg r ~aor:a2 ~contact:"sip:second";
        (lookup_str r ~aor:a1, lookup_str r ~aor:a2, Registrar.size r, Registrar.audit r,
         Registrar.bound_aors r))
  in
  Alcotest.(check (option string)) "first binding intact" (Some "sip:first") c1;
  Alcotest.(check (option string)) "second binding intact" (Some "sip:second") c2;
  Alcotest.(check int) "both bindings held" 2 size;
  Alcotest.(check (list string)) "audit clean" [] audit;
  Alcotest.(check (list string)) "both AORs bound" (List.sort compare [ a1; a2 ]) bound

let test_collision_resilient_sharded () =
  let u1, u2 = Registrar.collision_pair () in
  let a1 = u1 ^ "@example.com" and a2 = u2 ^ "@example.com" in
  let c1, c2, audit =
    run (fun () ->
        let r =
          make_registrar
            ~sharding:
              (Registrar.Sharded
                 { flavor = Registrar.Resilient; initial = 2; grow_at = 0; max_shards = 8 })
            ()
        in
        reg r ~aor:a1 ~contact:"sip:first";
        reg r ~aor:a2 ~contact:"sip:second";
        ignore (Registrar.rebalance r);
        (lookup_str r ~aor:a1, lookup_str r ~aor:a2, Registrar.audit r))
  in
  Alcotest.(check (option string)) "first survives" (Some "sip:first") c1;
  Alcotest.(check (option string)) "second survives" (Some "sip:second") c2;
  Alcotest.(check (list string)) "audit clean" [] audit

let test_collision_legacy_blind () =
  let u1, u2 = Registrar.collision_pair () in
  let a1 = u1 ^ "@example.com" and a2 = u2 ^ "@example.com" in
  let size, audit, bound =
    run (fun () ->
        let r =
          make_registrar
            ~sharding:
              (Registrar.Sharded
                 { flavor = Registrar.Legacy_striped; initial = 2; grow_at = 0; max_shards = 8 })
            ()
        in
        reg r ~aor:a1 ~contact:"sip:first";
        reg r ~aor:a2 ~contact:"sip:second";
        (Registrar.size r, Registrar.audit r, Registrar.bound_aors r))
  in
  Alcotest.(check int) "second clobbered the first" 1 size;
  Alcotest.(check bool) "audit flags the lost binding" true
    (List.mem ("lost:" ^ a1) audit);
  Alcotest.(check bool) "first AOR no longer bound" false (List.mem a1 bound)

(* --- qcheck: router and rebalance ----------------------------------- *)

let gen_users =
  QCheck2.Gen.(
    let user =
      let* n = 3 -- 8 in
      string_size (return n) ~gen:(char_range 'a' 'z')
    in
    let* n = 1 -- 12 in
    let* us = list_size (return n) user in
    (* distinct users; a few runs also carry the colliding pair *)
    let* with_collision = bool in
    let us = List.sort_uniq compare us in
    let us =
      if with_collision then
        let u1, u2 = Registrar.collision_pair () in
        u1 :: u2 :: us
      else us
    in
    let* seed = 1 -- 1000 in
    return (us, seed))

let print_users (us, seed) = Printf.sprintf "seed=%d users=%s" seed (String.concat "," us)

(* Same AOR ⇒ same shard at a fixed shard count, and every route is in
   range; after a rebalance the routes are consistent with the doubled
   count. *)
let qc_router_stable =
  QCheck2.Test.make ~name:"router: stable per AOR, in range, rebalance-consistent" ~count:25
    ~print:print_users gen_users (fun (users, seed) ->
      run ~seed (fun () ->
          let r =
            make_registrar
              ~sharding:
                (Registrar.Sharded
                   { flavor = Registrar.Resilient; initial = 2; grow_at = 0; max_shards = 16 })
              ()
          in
          List.iter (fun u -> reg r ~aor:(u ^ "@x") ~contact:("sip:" ^ u)) users;
          let routes_ok count =
            List.for_all
              (fun u ->
                let s = Registrar.route r ~aor:(u ^ "@x") in
                s = Registrar.route r ~aor:(u ^ "@x") && s >= 0 && s < count)
              users
          in
          let before = routes_ok (Registrar.shard_count r) in
          let grew = Registrar.rebalance r in
          before && grew && Registrar.shard_count r = 4 && routes_ok 4))

(* After any number of doublings, shard-union ≡ the unsharded model:
   the audit is clean, the bound set is exactly the registered set, and
   every migrated binding keeps its contact (field preservation). *)
let qc_rebalance_union =
  QCheck2.Test.make ~name:"rebalance: shard-union = model, bindings preserved" ~count:25
    ~print:print_users gen_users (fun (users, seed) ->
      run ~seed (fun () ->
          let r =
            make_registrar
              ~sharding:
                (Registrar.Sharded
                   { flavor = Registrar.Resilient; initial = 2; grow_at = 0; max_shards = 16 })
              ()
          in
          let aors = List.map (fun u -> (u ^ "@x", "sip:" ^ u)) users in
          List.iter (fun (a, c) -> reg r ~aor:a ~contact:c) aors;
          ignore (Registrar.rebalance r);
          ignore (Registrar.rebalance r);
          Registrar.audit r = []
          && Registrar.bound_aors r = List.sort compare (List.map fst aors)
          && Registrar.size r = List.length aors
          && List.for_all (fun (a, c) -> lookup_str r ~aor:a = Some c) aors))

(* --- timer wheel under injected delay faults ------------------------ *)

(* The timer_cancel_race shape, under a lock/datagram-delay fault plan:
   whatever the injected delays do to the interleaving, the firing
   sequence is a pure function of the seed. *)
let shard_plan name = Option.get (Faults.Plan.lookup name)

let timer_under_delay seed =
  let inj = Faults.Injector.create ~seed ~plan:(shard_plan "shard-quake") in
  run ~seed ~faults:inj (fun () ->
      let fired = ref [] in
      let alloc = Raceguard_cxxsim.Allocator.create Raceguard_cxxsim.Allocator.Direct in
      let wheel =
        Sip.Timer_wheel.create ~alloc ~annotate:false
          ~resend:(fun ~txn_key ~attempt:_ ->
            fired := txn_key :: !fired;
            false)
          ~housekeeping:(fun () -> ())
          ()
      in
      Sip.Timer_wheel.start wheel;
      Sip.Timer_wheel.schedule_retransmit wheel ~txn_key:1 ~delay:5;
      Sip.Timer_wheel.schedule_retransmit wheel ~txn_key:2 ~delay:9;
      Sip.Timer_wheel.schedule_retransmit wheel ~txn_key:3 ~delay:13;
      let canceller =
        Api.spawn ~loc ~name:"canceller" (fun () ->
            Api.sleep (1 + (seed mod 7));
            ignore (Sip.Timer_wheel.cancel wheel ~txn_key:2))
      in
      Api.join ~loc canceller;
      Api.sleep 60;
      Sip.Timer_wheel.stop wheel;
      Sip.Timer_wheel.join wheel;
      (List.rev !fired, Sip.Timer_wheel.fired wheel, Sip.Timer_wheel.cancelled wheel))

let test_timer_delay_deterministic () =
  List.iter
    (fun seed ->
      let a = timer_under_delay seed and b = timer_under_delay seed in
      let fired, wheel_fired, _ = a in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: expiry sequence reproducible" seed)
        true (a = b);
      Alcotest.(check int) "callback count matches the wheel's" (List.length fired) wheel_fired)
    [ 1; 2; 5; 11; 23 ]

(* A cancelled refresh timer must never fire into a shard its binding
   has since migrated out of: cancel, then rebalance — the binding
   keeps its pre-migration contact and the audit stays clean. *)
let cancelled_timer_never_fires seed =
  let inj = Faults.Injector.create ~seed ~plan:(shard_plan "shard-delay") in
  run ~seed ~faults:inj (fun () ->
      let alloc = Raceguard_cxxsim.Allocator.create Raceguard_cxxsim.Allocator.Direct in
      let stats = Sip.Stats.create () in
      let r =
        Registrar.create
          ~sharding:
            (Registrar.Sharded
               { flavor = Registrar.Resilient; initial = 2; grow_at = 0; max_shards = 8 })
          ~alloc ~stats ()
      in
      reg r ~aor:"vic@x" ~contact:"sip:original";
      let wheel =
        Sip.Timer_wheel.create ~alloc ~annotate:false
          ~resend:(fun ~txn_key:_ ~attempt:_ ->
            (* the stale refresh the cancel must suppress *)
            ignore
              (Registrar.register r ~annotate:true ~aor:"vic@x" ~contact:"sip:stale" ~cseq:9
                 ~expires:600);
            false)
          ~housekeeping:(fun () -> ())
          ()
      in
      Sip.Timer_wheel.start wheel;
      Sip.Timer_wheel.schedule_retransmit wheel ~txn_key:7 ~delay:25;
      let cancelled = Sip.Timer_wheel.cancel wheel ~txn_key:7 >= 1 in
      ignore (Registrar.rebalance r);
      Api.sleep 80;
      Sip.Timer_wheel.stop wheel;
      Sip.Timer_wheel.join wheel;
      (cancelled, lookup_str r ~aor:"vic@x", Registrar.audit r))

let test_cancelled_timer_migrated_shard () =
  List.iter
    (fun seed ->
      let cancelled, contact, audit = cancelled_timer_never_fires seed in
      Alcotest.(check bool) "cancel landed before the deadline" true cancelled;
      Alcotest.(check (option string))
        (Printf.sprintf "seed %d: migrated binding untouched by the cancelled timer" seed)
        (Some "sip:original") contact;
      Alcotest.(check (list string)) "audit clean after migration" [] audit)
    [ 2; 7; 19 ]

(* --- scenario DSL round-trip (qcheck) ------------------------------- *)

let gen_step =
  QCheck2.Gen.(
    let name = string_size (2 -- 6) ~gen:(char_range 'a' 'z') in
    let leaf =
      oneof
        [
          (let* user = name in
           let* expires = 1 -- 100_000 in
           return (Scenario.Register { user; domain = "example.com"; expires }));
          (let* user = name in
           return (Scenario.Unregister { user; domain = "example.com" }));
          return (Scenario.Options { domain = "example.com" });
          (let* caller = name in
           let* callee = name in
           let* talk = 1 -- 20 in
           return (Scenario.Call { caller; callee; domain = "example.com"; talk }));
          (let* t = 1 -- 50 in
           return (Scenario.Sleep t));
        ]
    in
    let* count = 1 -- 4 in
    let* body = list_size (1 -- 3) leaf in
    oneof [ leaf; return (Scenario.Repeat { count; body }) ])

let gen_scenario =
  QCheck2.Gen.(
    let name = string_size (2 -- 6) ~gen:(char_range 'a' 'z') in
    let* sc_name = name in
    let* agents = list_size (1 -- 3) (pair name (list_size (1 -- 4) gen_step)) in
    let* sharded = bool in
    let* initial = 1 -- 4 in
    let* grow_at = 0 -- 5 in
    return
      {
        Scenario.sc_name;
        sc_description = "generated";
        sc_sharding =
          (if sharded then
             Some { Scenario.sp_initial = initial; sp_grow_at = grow_at; sp_max_shards = 16 }
           else None);
        sc_agents =
          List.map (fun (n, steps) -> { Scenario.ag_name = n; ag_steps = steps }) agents;
      })

let qc_scenario_roundtrip =
  QCheck2.Test.make ~name:"scenario DSL: to_json |> of_json is the identity" ~count:200
    gen_scenario (fun sc ->
      match Scenario.of_string (Raceguard_obs.Json.to_string (Scenario.to_json sc)) with
      | Ok sc' -> sc' = sc
      | Error _ -> false)

let test_shipped_scenarios_roundtrip () =
  List.iter
    (fun sc ->
      match Scenario.of_string (Raceguard_obs.Json.to_string ~indent:2 (Scenario.to_json sc)) with
      | Ok sc' ->
          Alcotest.(check bool) (sc.Scenario.sc_name ^ " round-trips") true (sc' = sc)
      | Error e -> Alcotest.failf "%s: %s" sc.Scenario.sc_name e)
    Raceguard.Scenarios.sip_scenarios

(* --- T9/T10 chaos cells --------------------------------------------- *)

let scenario_config ?(fast_path = true) ?(domains = 1) () =
  {
    Raceguard.Chaos.default with
    plans = [];
    tests = [];
    shard_plans = List.filter_map Faults.Plan.lookup [ "shard-storm" ];
    fast_path;
    domains;
  }

let test_scenario_chaos_asymmetry () =
  let r = Raceguard.Chaos.run (scenario_config ()) in
  Alcotest.(check int) "four cells" 4 (List.length r.rp_cells);
  List.iter
    (fun (c : Raceguard.Chaos.cell) ->
      Alcotest.(check bool) (c.cl_test ^ " marked sharded") true c.cl_sharded;
      if c.cl_resilient then begin
        Alcotest.(check (list string)) (c.cl_test ^ " resilient clean") [] c.cl_violations;
        Alcotest.(check (list string)) (c.cl_test ^ " audit clean") [] c.cl_shard_audit;
        Alcotest.(check bool) (c.cl_test ^ " actually resized under load") true
          (c.cl_resizes >= 1 && c.cl_migrations >= 1)
      end
      else begin
        Alcotest.(check bool) (c.cl_test ^ " legacy violates") true (c.cl_violations <> []);
        let u1, _ = Registrar.collision_pair () in
        Alcotest.(check bool) (c.cl_test ^ " collision loss flagged") true
          (List.mem ("lost:" ^ u1 ^ "@example.com") c.cl_shard_audit)
      end)
    r.rp_cells

let test_scenario_chaos_domain_invariance () =
  let r1 = Raceguard.Chaos.run (scenario_config ~domains:1 ()) in
  let r2 = Raceguard.Chaos.run (scenario_config ~domains:2 ()) in
  Alcotest.(check string) "matrix digest invariant under domains"
    (Raceguard.Chaos.matrix_digest r1)
    (Raceguard.Chaos.matrix_digest r2);
  List.iter2
    (fun (a : Raceguard.Chaos.cell) (b : Raceguard.Chaos.cell) ->
      Alcotest.(check string) "sig digest" a.cl_sig_digest b.cl_sig_digest;
      Alcotest.(check string) "behaviour digest" a.cl_behavior_digest b.cl_behavior_digest)
    r1.rp_cells r2.rp_cells

let test_scenario_chaos_fast_path_invariance () =
  let r_fast = Raceguard.Chaos.run (scenario_config ~fast_path:true ()) in
  let r_slow = Raceguard.Chaos.run (scenario_config ~fast_path:false ()) in
  Alcotest.(check string) "matrix digest invariant under fast path"
    (Raceguard.Chaos.matrix_digest r_fast)
    (Raceguard.Chaos.matrix_digest r_slow)

let suite =
  ( "shards",
    [
      Alcotest.test_case "collision pair actually collides" `Quick test_collision_pair_collides;
      Alcotest.test_case "collision: interned registrar keeps both bindings" `Quick
        test_collision_unsharded_safe;
      Alcotest.test_case "collision: resilient shards keep both across rebalance" `Quick
        test_collision_resilient_sharded;
      Alcotest.test_case "collision: legacy-striped silently loses one" `Quick
        test_collision_legacy_blind;
      QCheck_alcotest.to_alcotest qc_router_stable;
      QCheck_alcotest.to_alcotest qc_rebalance_union;
      Alcotest.test_case "timer wheel: expiry deterministic under delay faults" `Quick
        test_timer_delay_deterministic;
      Alcotest.test_case "timer wheel: cancelled timer never fires into migrated shard" `Quick
        test_cancelled_timer_migrated_shard;
      QCheck_alcotest.to_alcotest qc_scenario_roundtrip;
      Alcotest.test_case "shipped scenarios round-trip through JSON" `Quick
        test_shipped_scenarios_roundtrip;
      Alcotest.test_case "chaos T9/T10: resilient clean, legacy violates" `Slow
        test_scenario_chaos_asymmetry;
      Alcotest.test_case "chaos T9/T10: digests invariant under domains" `Slow
        test_scenario_chaos_domain_invariance;
      Alcotest.test_case "chaos T9/T10: digests invariant under fast path" `Slow
        test_scenario_chaos_fast_path_invariance;
    ] )
