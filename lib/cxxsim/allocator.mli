(** Container allocators: the GNU libstdc++ pool-allocator issue (§4).

    [Pooled] recycles chunks on internal free lists with no VM
    malloc/free events, so detector shadow state leaks across logical
    lifetimes and produces false positives; [Direct]
    ([GLIBCXX_FORCE_NEW]) makes every lifetime boundary visible. *)

module Loc = Raceguard_util.Loc

type mode = Direct | Pooled

val pp_mode : Format.formatter -> mode -> unit

val slab_chunks : int
(** Chunks carved from each slab in [Pooled] mode. *)

type t

val create : ?faults:Raceguard_faults.Injector.t -> mode -> t
(** [?faults]: when given, every allocation first consults the
    injector's allocation-failure stream and raises
    {!Raceguard_faults.Injector.Out_of_memory} when the fault fires
    (the simulated [std::bad_alloc]). *)

val alloc : t -> loc:Loc.t -> int -> int
(** May raise [Raceguard_faults.Injector.Out_of_memory] when an
    injected allocation failure fires. *)

val free : t -> loc:Loc.t -> int -> int -> unit
(** [free t ~loc addr n]: release a chunk of size [n]. *)

val slabs_allocated : t -> int
val pool_hits : t -> int
(** How many allocations were served from recycled chunks. *)
