(** The preprocessor stage.

    "The input for the parser must be preprocessed, because external
    files are not read by the parser and the parser requires all
    information to be included in the source file." (§3.3)

    MiniC++ supports [#include "name"]: the named header is spliced in
    from a registry of header sources (the simulated system include
    path).  Includes are resolved recursively with cycle detection;
    every spliced line keeps its {e own} file/line attribution by way
    of [#line]-style bookkeeping — we simply lex each fragment under
    its own file name and concatenate token streams, which is what a
    real preprocessor's line markers achieve. *)

exception Error of string

type t = { headers : (string, string) Hashtbl.t }

let create () = { headers = Hashtbl.create 16 }

let register t ~name ~source = Hashtbl.replace t.headers name source

let builtin_headers =
  [
    ( "valgrind/helgrind.h",
      (* the client-request helper of Figure 4; the deletor itself is a
         parser-level builtin, so the header only documents it *)
      "// valgrind/helgrind.h (MiniC++ rendering)\n\
       // fn ca_deletor_single(object): announces object destruction\n\
       // to the race detector; a no-op under normal execution.\n" );
  ]

let with_builtins () =
  let t = create () in
  List.iter (fun (name, source) -> register t ~name ~source) builtin_headers;
  t

(* extract [#include "..."] directives; returns (includes, remaining
   source with directive lines blanked to preserve line numbers) *)
let split_includes src =
  let lines = String.split_on_char '\n' src in
  let includes = ref [] in
  let body =
    List.map
      (fun line ->
        let trimmed = String.trim line in
        if String.length trimmed > 9 && String.sub trimmed 0 8 = "#include" then begin
          let rest = String.trim (String.sub trimmed 8 (String.length trimmed - 8)) in
          let name =
            let n = String.length rest in
            if n >= 2 && ((rest.[0] = '"' && rest.[n - 1] = '"') || (rest.[0] = '<' && rest.[n - 1] = '>'))
            then String.sub rest 1 (n - 2)
            else raise (Error ("malformed #include: " ^ trimmed))
          in
          includes := name :: !includes;
          ""
        end
        else line)
      lines
  in
  (List.rev !includes, String.concat "\n" body)

(** Produce the token stream for [file]/[src] with all includes spliced
    in front (depth-first, each at most once). *)
let preprocess t ~file src =
  let seen = Hashtbl.create 8 in
  let rec expand ~file src =
    let includes, body = split_includes src in
    let included_tokens =
      List.concat_map
        (fun name ->
          if Hashtbl.mem seen name then []
          else begin
            Hashtbl.replace seen name ();
            match Hashtbl.find_opt t.headers name with
            | Some header_src -> expand ~file:name header_src
            | None -> raise (Error ("header not found: " ^ name))
          end)
        includes
    in
    let own = Lexer.tokens ~file body in
    (* drop the EOF of every fragment except the last *)
    included_tokens @ List.filter (fun tok -> tok.Token.kind <> Token.EOF) own
  in
  let toks = expand ~file src in
  toks @ [ { Token.kind = Token.EOF; pos = { Token.file; line = 0; col = 0 } } ]

(** Full front end: preprocess, then parse. *)
let parse t ~file src = Parser.parse_program ~file (preprocess t ~file src)
