(** Request history: a bounded ring of per-request digest objects,
    shared by all workers.

    Once full, each insert evicts the oldest entry — created by some
    other worker, unlinked under the ring's lock, deleted outside.
    Because the recording call sits inside each handler, every request
    kind contributes its own family of destructor-FP report sites; this
    is how a large C++ server accumulates hundreds of such locations
    (Figure 5's dominant bar). *)

val digest_class : Raceguard_cxxsim.Object_model.class_desc
val stamped_digest_class : Raceguard_cxxsim.Object_model.class_desc
val request_digest_class : Raceguard_cxxsim.Object_model.class_desc

type t

val create : annotate:bool -> capacity:int -> t

val record : t -> src_id:int -> meth:int -> uri:string -> outcome:int -> unit
(** Build a digest, swap it into the ring under the lock, delete the
    evicted digest outside it. *)

val clear : t -> unit
(** Drain the ring at shutdown. *)
