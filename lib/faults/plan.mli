(** Fault plans: the declarative description of what a hostile
    environment does to one run.

    A plan is pure data — per-mille probabilities and tick ranges for
    each fault category.  All randomness is drawn later, by
    {!Injector}, from dedicated streams derived from the run seed, so
    (seed, plan) fully determines every injected fault and the run
    stays bit-for-bit reproducible.

    Probabilities are expressed in per-mille (0–1000) so plans stay
    integer-only and digest-stable. *)

type datagram = {
  drop : int;  (** ‰ chance a datagram disappears *)
  duplicate : int;  (** ‰ chance a datagram is delivered twice *)
  delay : int;  (** ‰ chance delivery is postponed *)
  delay_ticks : int * int;  (** (lo, hi) postponement in VM ticks *)
  reorder : int;
      (** ‰ chance a datagram is held back just long enough for later
          traffic to overtake it (a short postponement) *)
  corrupt : int;  (** ‰ chance payload bytes are flipped *)
}

type t = {
  p_name : string;
  p_datagram : datagram;
  p_alloc_failure : int;  (** ‰ chance a container allocation fails *)
  p_alloc_failure_after : int;
      (** allocations always succeed until this many were served *)
  p_spawn_delay : int;  (** ‰ chance a spawned thread starts late *)
  p_spawn_delay_ticks : int * int;
  p_lock_delay : int;
      (** ‰ chance a free-mutex acquisition stalls its caller while
          already holding the lock (slow-acquire / convoying fault) *)
  p_lock_delay_ticks : int * int;
}

val none : t
(** The empty plan: every probability zero.  An injector driven by it
    never fires, which is what the chaos-off overhead gate measures. *)

val is_none : t -> bool

val shipped : t list
(** The named plans exercised by the chaos matrix: [drop], [dup],
    [delay], [reorder], [corrupt], [oom], [slow-threads], [mayhem]. *)

val shard_shipped : t list
(** Shard-targeted plans for the T9/T10 storm scenarios:
    [shard-delay], [shard-storm], [shard-quake].  None is drop-class,
    so the strict registrations oracle applies to every scenario cell.
    Deliberately {e not} part of {!shipped} — they only cross with the
    scenario tests, never with T1–T8. *)

val lookup : string -> t option
(** Find a shipped or shard-shipped plan (or ["none"]) by name. *)

val has_drops : t -> bool
(** True when the plan can make a datagram or a whole request vanish
    (drop / corrupt / allocation faults) — relaxes the
    attempted-registration oracle. *)

val to_json : t -> Raceguard_obs.Json.t
val pp : Format.formatter -> t -> unit
