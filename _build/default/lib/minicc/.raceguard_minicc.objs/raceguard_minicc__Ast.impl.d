lib/minicc/ast.ml: List Token
