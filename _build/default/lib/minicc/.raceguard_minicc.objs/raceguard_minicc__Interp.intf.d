lib/minicc/interp.mli: Ast Preprocess Token
