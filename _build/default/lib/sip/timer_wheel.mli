(** Retransmission / housekeeping timers: workers schedule [TimerTask]
    objects into a locked list; the timer thread fires due tasks and
    deletes them (another cross-thread delete site), and runs the
    periodic housekeeping callback (registrar expiry, route refresh). *)

val timer_task_class : Raceguard_cxxsim.Object_model.class_desc
val retransmit_timer_class : Raceguard_cxxsim.Object_model.class_desc

type t

val create :
  alloc:Raceguard_cxxsim.Allocator.t -> annotate:bool -> housekeeping:(unit -> unit) -> t

val start : t -> unit
val schedule_retransmit : t -> txn_key:int -> delay:int -> unit
val stop : t -> unit
val join : t -> unit
val fired : t -> int
