test/test_util.ml: Alcotest Array Int List QCheck2 QCheck_alcotest Raceguard_util Set String
