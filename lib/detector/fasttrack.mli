(** FastTrack-style epoch-based happens-before race detector.

    Detection-equivalent to {!Djit} — same races, same first-report
    behaviour, byte-identical report rendering — but the common
    non-racy access is decided by O(1) packed-epoch ({!Epoch})
    comparisons over a dense shadow array instead of vector-clock walks
    and per-read list surgery.  Reads are kept as a single epoch while
    they are totally ordered, lazily promoted to a per-thread read
    vector on the first genuinely concurrent read, and adaptively
    demoted back once a read dominates the vector again (DESIGN.md §14
    argues why both moves preserve reports). *)

type config = {
  sync_on_cond : bool;  (** treat condition signal→wait as ordering *)
  sync_on_sem : bool;  (** treat semaphore post→wait as ordering *)
  sync_on_annotations : bool;  (** honour HAPPENS_BEFORE/AFTER requests *)
  first_only : bool;  (** stop checking a location after its first report *)
  demote_check : int;
      (** attempt read-shared → epoch demotion every [demote_check]-th
          access to a shared cell (power of two; 0 = never, i.e.
          classic FastTrack).  Report-preserving either way. *)
}

val default_config : config

type t

val create : ?config:config -> ?suppressions:Suppression.t list -> unit -> t
val tool : t -> Raceguard_vm.Tool.t

val on_event : t -> Raceguard_vm.Tool.ctx -> Raceguard_vm.Event.t -> unit
(** Feed one event directly (composition / offline replay). *)

val unordered_now : t -> tid:int -> addr:int -> write:bool -> bool
(** Composition probe: would an access by [tid] to [addr] right now be
    concurrent (unordered) with a previous conflicting access?  Pure.
    [write] makes previous reads conflict too.  Cells retired by
    [first_only] answer [false]. *)

val config_to_json : config -> Raceguard_obs.Json.t

val reports : t -> Report.t list
val locations : t -> (Report.t * int) list
val location_count : t -> int
val collector : t -> Report.collector

(** {2 Representation instrumentation} (per-instance; the process-wide
    [detector.fasttrack.*] metrics aggregate the same counts) *)

val accesses_checked : t -> int
val epoch_hits : t -> int
(** Accesses fully decided in the epoch representation — the fast-path
    hit count the bench gate pins. *)

val read_promotions : t -> int
(** Cells promoted epoch → read vector (concurrent readers). *)

val read_demotions : t -> int
(** Cells demoted read vector → epoch (a read dominated the vector). *)
