(** The registrar: user → contact bindings — single-mutex or sharded.

    Binding objects are created by the worker handling a REGISTER,
    stored in a shared map, and later deleted by {e different} workers
    (refresh, unregister, expiry) — correctly: the binding is unlinked
    from the map under the lock and deleted {e outside} it, at which
    point it is private again.  The lock-set algorithm cannot know
    that: the destructor-chain writes happen with an empty lock-set on
    SHARED-MODIFIED memory, producing the paper's dominant
    false-positive class until the DR annotation suppresses it.

    {2 Sharding}

    [Unsharded] (the default) keeps the historical single-mutex layout
    — byte-identical VM operation sequence, so every T1–T8 digest is
    unchanged.  [Sharded] stripes the table over N per-shard mutexes
    behind a router word and supports {e online} growth: when the load
    factor crosses [grow_at], the triggering worker doubles the shard
    count and migrates bindings shard-to-shard under a two-lock
    transfer (lower index first).  Two flavors carry the ground truth:

    - [Resilient]: router words are bus-locked ([atomic_rmw] only);
      workers lock-then-validate (shard count and resize-in-progress
      re-checked under the shard lock, retry through the resize mutex
      on mismatch); migration holds {e both} shard locks in index
      order.  The {!audit} invariants hold under every fault plan.
    - [Legacy_striped]: three injected bug classes — (1) the migration
      inserts into the destination shard {e without} its lock, (2)
      workers skip the resize validation so a refresh can race the
      migration and strand or duplicate a binding, (3) the router word
      is read and written {e plainly}, and the read is cached across a
      yield (stale-router).  It is also collision-blind (see below).

    {2 Hash collisions}

    [hash_string] maps AORs into 2^30 keys; two colliding AORs used to
    silently overwrite each other in both the VM map and the host
    mirror.  Collision-safe modes (unsharded, resilient) intern keys
    host-side — first claimant keeps [hash_string aor], later
    colliders linearly probe to a free key — and key the mirror by the
    full AOR.  Interning is pure host bookkeeping: when no collision
    occurs the key {e is} the hash, so T1–T8 event streams are
    untouched.  [Legacy_striped] keeps the raw hash and the hash-keyed
    mirror, so the chaos "no lost registration" oracle catches the
    overwrite deterministically. *)

module Loc = Raceguard_util.Loc
module Api = Raceguard_vm.Api
module Obj_model = Raceguard_cxxsim.Object_model
module Refstring = Raceguard_cxxsim.Refstring
module Containers = Raceguard_cxxsim.Containers
module Allocator = Raceguard_cxxsim.Allocator
module Metrics = Raceguard_obs.Metrics

let lc func line = Loc.v "registrar.cpp" ("Registrar::" ^ func) line

(* class Binding { RefString aor; int expires_at; }
   class ContactBinding : Binding { RefString contact, user_agent; int cseq; int q_value; } *)
let binding_class =
  Obj_model.define ~name:"Binding" ~fields:[ "aor"; "expires_at" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.scrub ~file:"registrar.cpp" ~base_line:25 cls obj ~strings:[ "aor" ]
        ~ints:[ "expires_at" ])
    ()

let contact_binding_class =
  Obj_model.define ~parent:binding_class ~name:"ContactBinding"
    ~fields:[ "contact"; "user_agent"; "cseq"; "q_value" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.scrub ~file:"registrar.cpp" ~base_line:34 cls obj
        ~strings:[ "contact"; "user_agent" ] ~ints:[ "cseq"; "q_value" ])
    ()

let hash_string s =
  let h = ref 5381 in
  String.iter (fun c -> h := (!h * 33) + Char.code c) s;
  !h land 0x3FFFFFFF

(** A memoised pair of distinct users whose [user ^ "@example.com"]
    AORs collide under {!hash_string} — the regression input for the
    collision-blindness fix (found by offline birthday search). *)
let collision_pair () =
  let u1 = "cxryap02u" and u2 = "cx96ar2op" in
  assert (hash_string (u1 ^ "@example.com") = hash_string (u2 ^ "@example.com"));
  (u1, u2)

(* ------------------------------------------------------------------ *)
(* Sharding configuration                                              *)
(* ------------------------------------------------------------------ *)

type flavor = Resilient | Legacy_striped

type sharding =
  | Unsharded
  | Sharded of {
      flavor : flavor;
      initial : int;  (** shard count at creation (≥ 1) *)
      grow_at : int;
          (** double the shard count when total bindings reach
              [grow_at × current shard count]; 0 = manual growth only *)
      max_shards : int;
    }

(* Host-side shard metrics (registered once, like the Stats mirrors). *)
let m_resizes = Metrics.counter "sip.registrar.shard.resizes"
let m_migrations = Metrics.counter "sip.registrar.shard.migrations"
let m_router_retries = Metrics.counter "sip.registrar.shard.router_retries"
let g_shard_count = Metrics.gauge "sip.registrar.shard.count"

type shard = {
  sh_index : int;
  sh_mutex : Api.Mutex.t;
  sh_map : Containers.Map.t;  (** key -> binding object address *)
  sh_mirror : (string, string * string) Hashtbl.t;
      (** host shadow of this shard's map: mirror-key -> (aor, contact);
          the mirror key is the full AOR when collision-safe, the
          stringified hash when legacy (collision-blind on purpose) *)
}

type striped = {
  st_flavor : flavor;
  mutable st_shards : shard array;
      (** grows by append only, so a stale index < old count still
          names the same shard record *)
  st_router : int;
      (** base of two VM words: +0 shard count, +1 resize-in-progress.
          Resilient accesses both only via [atomic_rmw] (bus-locked);
          legacy reads/writes the count plainly — the stale-router bug *)
  st_resize_mutex : Api.Mutex.t;
  st_grow_at : int;
  st_max : int;
  mutable st_host_count : int;  (** host shadow of the count word *)
  mutable st_lock_pairs : (int * int) list;
      (** (outer, inner) shard-index pairs of every nested two-lock
          transfer, audited for lower-index-first ordering *)
  mutable st_resizes : int;
  mutable st_migrations : int;
}

type mode =
  | Single of { mutex : Api.Mutex.t; bindings : Containers.Map.t }
  | Striped of striped

type t = {
  mode : mode;
  stats : Stats.t;
  alloc : Allocator.t;  (** kept for shard creation during resize *)
  collision_safe : bool;
  intern : (string, int) Hashtbl.t;  (** aor -> interned map key *)
  claims : (int, string) Hashtbl.t;  (** interned map key -> aor *)
  model : (string, string) Hashtbl.t;
      (** host ground truth: aor -> contact as a {e correct} registrar
          would hold it, updated at the same points as the map (under
          the shard lock, zero VM traffic) — what {!audit} compares
          the shard mirrors against *)
  mirror : (string, string * string) Hashtbl.t;
      (** unsharded mirror: mirror-key -> (aor, contact) *)
}

(* --- key interning (collision-safe host bookkeeping) ---------------- *)

let intern_key t ~aor =
  if not t.collision_safe then hash_string aor
  else
    match Hashtbl.find_opt t.intern aor with
    | Some k -> k
    | None ->
        let rec probe k =
          match Hashtbl.find_opt t.claims k with
          | Some owner when not (String.equal owner aor) -> probe ((k + 1) land 0x3FFFFFFF)
          | _ -> k
        in
        let k = probe (hash_string aor) in
        Hashtbl.replace t.intern aor k;
        Hashtbl.replace t.claims k aor;
        k

let mirror_key t ~aor = if t.collision_safe then aor else string_of_int (hash_string aor)

(* the reverse direction, for migration and expiry (key -> mirror key) *)
let mirror_key_of_key t key =
  if t.collision_safe then
    match Hashtbl.find_opt t.claims key with Some aor -> aor | None -> string_of_int key
  else string_of_int key

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let make_shard ~alloc ~index =
  {
    sh_index = index;
    sh_mutex =
      Api.Mutex.create ~loc:(lc "Shard" 56) (Printf.sprintf "registrar.shard.%d" index);
    sh_map = Containers.Map.create alloc;
    sh_mirror = Hashtbl.create 8;
  }

let create ?(sharding = Unsharded) ~alloc ~stats () =
  let mode, collision_safe =
    match sharding with
    | Unsharded ->
        ( Single
            {
              mutex = Api.Mutex.create ~loc:(lc "Registrar" 50) "registrar.mutex";
              bindings = Containers.Map.create alloc;
            },
          true )
    | Sharded { flavor; initial; grow_at; max_shards } ->
        let initial = max 1 initial in
        let loc = lc "Registrar" 52 in
        let resize_mutex = Api.Mutex.create ~loc "registrar.resize" in
        let router = Api.alloc ~loc 2 in
        (match flavor with
        | Resilient ->
            ignore (Api.atomic_rmw ~loc router (fun _ -> initial));
            ignore (Api.atomic_rmw ~loc (router + 1) (fun _ -> 0))
        | Legacy_striped -> Api.write ~loc router initial);
        let shards = Array.init initial (fun i -> make_shard ~alloc ~index:i) in
        Metrics.set g_shard_count initial;
        ( Striped
            {
              st_flavor = flavor;
              st_shards = shards;
              st_router = router;
              st_resize_mutex = resize_mutex;
              st_grow_at = grow_at;
              st_max = max initial max_shards;
              st_host_count = initial;
              st_lock_pairs = [];
              st_resizes = 0;
              st_migrations = 0;
            },
          flavor = Resilient )
  in
  {
    mode;
    stats;
    alloc;
    collision_safe;
    intern = Hashtbl.create 16;
    claims = Hashtbl.create 16;
    model = Hashtbl.create 16;
    mirror = Hashtbl.create 16;
  }

let new_binding ~loc ~aor ~contact ~cseq ~expires_at =
  Obj_model.new_ ~loc contact_binding_class ~init:(fun obj ->
      let cls = contact_binding_class in
      Obj_model.set ~loc cls obj "aor" (Refstring.create ~loc aor);
      Obj_model.set ~loc cls obj "expires_at" expires_at;
      Obj_model.set ~loc cls obj "contact" (Refstring.create ~loc contact);
      Obj_model.set ~loc cls obj "user_agent" (Refstring.create ~loc "SIPp-sim/1.0");
      Obj_model.set ~loc cls obj "cseq" cseq;
      Obj_model.set ~loc cls obj "q_value" 100)

(* ------------------------------------------------------------------ *)
(* Shard routing                                                       *)
(* ------------------------------------------------------------------ *)

(** Resilient lock-then-validate: route on the bus-locked count, take
    the shard lock, then re-check count and resize-in-progress under
    it.  On mismatch, release and wait out the resize by bouncing
    through the resize mutex. *)
let rec acquire_shard st ~key ~loc =
  match st.st_flavor with
  | Resilient ->
      let n = Api.atomic_rmw ~loc st.st_router (fun v -> v) in
      let sh = st.st_shards.(key mod n) in
      Api.Mutex.lock ~loc sh.sh_mutex;
      let inprog = Api.atomic_rmw ~loc (st.st_router + 1) (fun v -> v) in
      let n' = Api.atomic_rmw ~loc st.st_router (fun v -> v) in
      if inprog <> 0 || n' <> n then begin
        Api.Mutex.unlock ~loc sh.sh_mutex;
        Metrics.incr m_router_retries;
        Api.Mutex.lock ~loc st.st_resize_mutex;
        Api.Mutex.unlock ~loc st.st_resize_mutex;
        acquire_shard st ~key ~loc
      end
      else sh
  | Legacy_striped ->
      (* BUG (stale-router): plain read of the count, cached across a
         yield, and no validation under the shard lock — a concurrent
         resize leaves this worker routing on the old shard count. *)
      let n = Api.read ~loc st.st_router in
      Api.yield ();
      let sh = st.st_shards.(key mod n) in
      Api.Mutex.lock ~loc sh.sh_mutex;
      sh

let release_shard sh ~loc = Api.Mutex.unlock ~loc sh.sh_mutex

(* ------------------------------------------------------------------ *)
(* Online growth                                                       *)
(* ------------------------------------------------------------------ *)

(** Double the shard count, migrating bindings under two-lock transfer
    (resilient) or the injected buggy protocol (legacy).  Caller must
    hold no shard lock.  Returns whether a resize actually ran. *)
let grow_locked t st ~loc =
  let n = st.st_host_count in
  if 2 * n > st.st_max then false
  else begin
    st.st_resizes <- st.st_resizes + 1;
    Metrics.incr m_resizes;
    let fresh = Array.init n (fun i -> make_shard ~alloc:t.alloc ~index:(n + i)) in
    st.st_shards <- Array.append st.st_shards fresh;
    (match st.st_flavor with
    | Resilient ->
        ignore (Api.atomic_rmw ~loc (st.st_router + 1) (fun _ -> 1));
        for i = 0 to n - 1 do
          let src = st.st_shards.(i) and dst = st.st_shards.(i + n) in
          (* two-lock transfer, lower index first *)
          Api.Mutex.lock ~loc src.sh_mutex;
          Api.Mutex.lock ~loc dst.sh_mutex;
          st.st_lock_pairs <- (i, i + n) :: st.st_lock_pairs;
          let moves = ref [] in
          Containers.Map.iter src.sh_map (fun k b ->
              if b <> 0 && k mod (2 * n) <> i then moves := (k, b) :: !moves);
          List.iter
            (fun (k, b) ->
              ignore (Containers.Map.remove src.sh_map k);
              Containers.Map.insert dst.sh_map k b;
              st.st_migrations <- st.st_migrations + 1;
              Metrics.incr m_migrations;
              let mk = mirror_key_of_key t k in
              match Hashtbl.find_opt src.sh_mirror mk with
              | Some v ->
                  Hashtbl.remove src.sh_mirror mk;
                  Hashtbl.replace dst.sh_mirror mk v
              | None -> ())
            !moves;
          Api.Mutex.unlock ~loc dst.sh_mutex;
          Api.Mutex.unlock ~loc src.sh_mutex
        done;
        ignore (Api.atomic_rmw ~loc st.st_router (fun _ -> 2 * n));
        st.st_host_count <- 2 * n;
        ignore (Api.atomic_rmw ~loc (st.st_router + 1) (fun _ -> 0))
    | Legacy_striped ->
        for i = 0 to n - 1 do
          let src = st.st_shards.(i) and dst = st.st_shards.(i + n) in
          Api.Mutex.lock ~loc src.sh_mutex;
          let moves = ref [] in
          Containers.Map.iter src.sh_map (fun k b ->
              if b <> 0 && k mod (2 * n) <> i then moves := (k, b) :: !moves);
          let moves =
            List.map
              (fun (k, b) ->
                ignore (Containers.Map.remove src.sh_map k);
                let mk = mirror_key_of_key t k in
                let v = Hashtbl.find_opt src.sh_mirror mk in
                Hashtbl.remove src.sh_mirror mk;
                (k, b, mk, v))
              !moves
          in
          Api.Mutex.unlock ~loc src.sh_mutex;
          (* BUG (unlocked cross-shard transfer): the bindings are in
             flight in neither shard across this yield, and the
             destination inserts below happen without [dst]'s lock — a
             refresh racing this window strands or duplicates its
             binding, and the unlocked map writes race any worker. *)
          Api.yield ();
          List.iter
            (fun (k, b, mk, v) ->
              Containers.Map.insert dst.sh_map k b;
              st.st_migrations <- st.st_migrations + 1;
              Metrics.incr m_migrations;
              (* faithfully mirror the clobbering insert: if a refresh
                 raced its own binding into [dst] meanwhile, the stale
                 migrated value overwrites it — exactly what the map
                 just did *)
              match v with Some v -> Hashtbl.replace dst.sh_mirror mk v | None -> ())
            moves
        done;
        (* BUG (stale-router write): plain store racing the workers'
           plain router reads *)
        Api.write ~loc st.st_router (2 * n);
        st.st_host_count <- 2 * n);
    Metrics.set g_shard_count st.st_host_count;
    true
  end

let grow t st ~loc =
  Api.Mutex.lock ~loc st.st_resize_mutex;
  let grew = grow_locked t st ~loc in
  Api.Mutex.unlock ~loc st.st_resize_mutex;
  grew

let maybe_grow t st ~loc =
  if
    st.st_grow_at > 0
    && Hashtbl.length t.model >= st.st_grow_at * st.st_host_count
    && 2 * st.st_host_count <= st.st_max
  then ignore (grow t st ~loc)

(** Force one doubling (tests, rebalance-under-load drivers).  Must be
    called from inside the VM. *)
let rebalance t =
  match t.mode with
  | Single _ -> false
  | Striped st -> grow t st ~loc:(lc "rebalance" 340)

(* ------------------------------------------------------------------ *)
(* The registrar interface                                             *)
(* ------------------------------------------------------------------ *)

(** Register or refresh a binding.  Returns [`Registered] or
    [`Refreshed].  A refresh unlinks the old binding under the lock and
    deletes it outside (the FP-generating pattern). *)
let register t ~annotate ~aor ~contact ~cseq ~expires =
  let loc = lc "addBinding" 70 in
  Api.with_frame loc @@ fun () ->
  let expires_at = Api.now () + (expires * 100) in
  let fresh = new_binding ~loc ~aor ~contact ~cseq ~expires_at in
  let key = intern_key t ~aor in
  let old =
    match t.mode with
    | Single { mutex; bindings } ->
        Api.Mutex.with_lock ~loc mutex (fun () ->
            let old = Containers.Map.find bindings key in
            Containers.Map.insert bindings key fresh;
            Hashtbl.replace t.mirror (mirror_key t ~aor) (aor, contact);
            Hashtbl.replace t.model aor contact;
            old)
    | Striped st ->
        let sh = acquire_shard st ~key ~loc in
        let old = Containers.Map.find sh.sh_map key in
        Containers.Map.insert sh.sh_map key fresh;
        Hashtbl.replace sh.sh_mirror (mirror_key t ~aor) (aor, contact);
        Hashtbl.replace t.model aor contact;
        release_shard sh ~loc;
        maybe_grow t st ~loc;
        old
  in
  match old with
  | Some old_binding when old_binding <> 0 ->
      (* delete outside the lock: the object is private again *)
      Obj_model.delete_ ~loc:(lc "addBinding" 82) ~annotate contact_binding_class old_binding;
      `Refreshed
  | _ ->
      Stats.incr_registered t.stats;
      `Registered

(** Remove a binding (REGISTER with Expires: 0). *)
let unregister t ~annotate ~aor =
  let loc = lc "removeBinding" 91 in
  Api.with_frame loc @@ fun () ->
  let key = intern_key t ~aor in
  let victim =
    match t.mode with
    | Single { mutex; bindings } ->
        Api.Mutex.with_lock ~loc mutex (fun () ->
            match Containers.Map.find bindings key with
            | Some b when b <> 0 ->
                ignore (Containers.Map.remove bindings key);
                Hashtbl.remove t.mirror (mirror_key t ~aor);
                Hashtbl.remove t.model aor;
                Some b
            | _ -> None)
    | Striped st -> (
        let sh = acquire_shard st ~key ~loc in
        match Containers.Map.find sh.sh_map key with
        | Some b when b <> 0 ->
            ignore (Containers.Map.remove sh.sh_map key);
            Hashtbl.remove sh.sh_mirror (mirror_key t ~aor);
            Hashtbl.remove t.model aor;
            release_shard sh ~loc;
            Some b
        | _ ->
            release_shard sh ~loc;
            Hashtbl.remove t.model aor;
            None)
  in
  match victim with
  | Some b ->
      Stats.decr_registered t.stats;
      Obj_model.delete_ ~loc:(lc "removeBinding" 103) ~annotate contact_binding_class b;
      true
  | None -> false

(** Look up the current contact for an AOR; copies the contact string
    {e under the lock} (correct code, but the copy bumps a shared
    refcount — a bus-lock site). *)
let lookup t ~aor =
  let loc = lc "lookup" 111 in
  Api.with_frame loc @@ fun () ->
  let key = intern_key t ~aor in
  let find_in map =
    match Containers.Map.find map key with
    | Some b when b <> 0 ->
        let cls = contact_binding_class in
        let expires_at = Obj_model.get ~loc cls b "expires_at" in
        if expires_at > Api.now () then
          Some (Refstring.copy (Obj_model.get ~loc cls b "contact"))
        else None
    | _ -> None
  in
  match t.mode with
  | Single { mutex; bindings } -> Api.Mutex.with_lock ~loc mutex (fun () -> find_in bindings)
  | Striped st ->
      let sh = acquire_shard st ~key ~loc in
      let r = find_in sh.sh_map in
      release_shard sh ~loc;
      r

(** Delete every expired binding: unlink under the lock, delete
    outside.  Called from the housekeeping timer. *)
let expire_stale t ~annotate =
  let loc = lc "expireStale" 126 in
  Api.with_frame loc @@ fun () ->
  let now = Api.now () in
  let victims = ref [] in
  let sweep_map ~mirror map =
    let expired = ref [] in
    Containers.Map.iter map (fun key b ->
        if b <> 0 then begin
          let e = Obj_model.get ~loc contact_binding_class b "expires_at" in
          if e <= now then expired := (key, b) :: !expired
        end);
    List.iter
      (fun (key, b) ->
        ignore (Containers.Map.remove map key);
        let mk = mirror_key_of_key t key in
        (match Hashtbl.find_opt mirror mk with
        | Some (aor, _) -> Hashtbl.remove t.model aor
        | None -> ());
        Hashtbl.remove mirror mk;
        victims := (key, b) :: !victims)
      !expired
  in
  (match t.mode with
  | Single { mutex; bindings } ->
      Api.Mutex.with_lock ~loc mutex (fun () -> sweep_map ~mirror:t.mirror bindings)
  | Striped st -> (
      match st.st_flavor with
      | Resilient ->
          (* hold the resize mutex for the sweep so the shard walk and a
             concurrent growth cannot interleave; per-shard locks are
             taken one at a time in index order *)
          Api.Mutex.lock ~loc st.st_resize_mutex;
          Array.iter
            (fun sh ->
              Api.Mutex.lock ~loc sh.sh_mutex;
              sweep_map ~mirror:sh.sh_mirror sh.sh_map;
              Api.Mutex.unlock ~loc sh.sh_mutex)
            st.st_shards;
          Api.Mutex.unlock ~loc st.st_resize_mutex
      | Legacy_striped ->
          (* BUG-adjacent: walks a plainly-read shard count with no
             resize coordination *)
          let n = Api.read ~loc st.st_router in
          for i = 0 to n - 1 do
            let sh = st.st_shards.(i) in
            Api.Mutex.lock ~loc sh.sh_mutex;
            sweep_map ~mirror:sh.sh_mirror sh.sh_map;
            Api.Mutex.unlock ~loc sh.sh_mutex
          done));
  List.iter
    (fun (_key, b) ->
      Stats.decr_registered t.stats;
      Obj_model.delete_ ~loc:(lc "expireStale" 145) ~annotate contact_binding_class b)
    !victims;
  List.length !victims

let size t =
  let loc = lc "size" 150 in
  match t.mode with
  | Single { mutex; bindings } ->
      Api.Mutex.with_lock ~loc mutex (fun () -> Containers.Map.size bindings)
  | Striped st ->
      Array.fold_left
        (fun acc sh ->
          Api.Mutex.lock ~loc sh.sh_mutex;
          let s = Containers.Map.size sh.sh_map in
          Api.Mutex.unlock ~loc sh.sh_mutex;
          acc + s)
        0 st.st_shards

(** Host-side view of the current bindings, sorted by AOR — for
    post-run oracles only (no VM traffic).  In a legacy-striped
    registrar a duplicated binding appears once per holding shard. *)
let bound_aors t =
  let of_mirror m acc = Hashtbl.fold (fun _ (aor, _) acc -> aor :: acc) m acc in
  (match t.mode with
  | Single _ -> of_mirror t.mirror []
  | Striped st -> Array.fold_left (fun acc sh -> of_mirror sh.sh_mirror acc) [] st.st_shards)
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Introspection & audit                                               *)
(* ------------------------------------------------------------------ *)

let shard_count t = match t.mode with Single _ -> 1 | Striped st -> st.st_host_count
let resizes t = match t.mode with Single _ -> 0 | Striped st -> st.st_resizes
let migrations t = match t.mode with Single _ -> 0 | Striped st -> st.st_migrations

(** Which shard an AOR routes to at the current shard count (host-side,
    no VM traffic) — the router function the qcheck properties pin. *)
let route t ~aor =
  match t.mode with
  | Single _ -> 0
  | Striped st ->
      (if t.collision_safe then intern_key t ~aor else hash_string aor) mod st.st_host_count

(** Post-run invariant audit (host-side, safe after shutdown).  Empty
    on a correct registrar; each violation is a rendered string:

    - ["lost:AOR"] — the model holds a binding no shard mirror has;
    - ["ghost:AOR"] — a mirror holds a binding absent from the model;
    - ["dup:AOR"] — one AOR bound in two shards at once;
    - ["stale-contact:AOR"] — bound, but with an outdated contact;
    - ["misplaced:AOR"] — stored in a shard the router no longer maps
      its key to (stale-router / stranded-refresh evidence);
    - ["lock-order:i>j"] — a nested shard-lock pair was taken against
      the index order (inversion risk across shards). *)
let audit t =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let entries =
    match t.mode with
    | Single _ -> Hashtbl.fold (fun _ (aor, c) acc -> (0, aor, c) :: acc) t.mirror []
    | Striped st ->
        Array.fold_left
          (fun acc sh ->
            Hashtbl.fold (fun _ (aor, c) acc -> (sh.sh_index, aor, c) :: acc) sh.sh_mirror acc)
          [] st.st_shards
  in
  (* lost: in the model, nowhere in the mirrors *)
  let bound = Hashtbl.create (List.length entries) in
  List.iter (fun (_, aor, _) -> Hashtbl.replace bound aor ()) entries;
  Hashtbl.iter
    (fun aor _ -> if not (Hashtbl.mem bound aor) then add ("lost:" ^ aor))
    t.model;
  (* ghost / stale-contact / dup / misplaced *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (shard, aor, contact) ->
      (match Hashtbl.find_opt t.model aor with
      | None -> add ("ghost:" ^ aor)
      | Some c -> if not (String.equal c contact) then add ("stale-contact:" ^ aor));
      (match Hashtbl.find_opt seen aor with
      | Some other when other <> shard -> add ("dup:" ^ aor)
      | _ -> Hashtbl.replace seen aor shard);
      match t.mode with
      | Single _ -> ()
      | Striped st ->
          let key = if t.collision_safe then intern_key t ~aor else hash_string aor in
          if key mod st.st_host_count <> shard then
            add (Printf.sprintf "misplaced:%s" aor))
    (List.sort compare entries);
  (match t.mode with
  | Single _ -> ()
  | Striped st ->
      List.iter
        (fun (a, b) -> if a >= b then add (Printf.sprintf "lock-order:%d>%d" a b))
        st.st_lock_pairs);
  List.sort_uniq compare !violations
