(** The Helgrind-style lock-set race detector.

    Implements the Eraser algorithm with the per-location state machine
    of Figure 1 (New / Exclusive / Shared-RO / Shared-Modified), the
    VisualThreads thread-segment refinement (Figure 2), and the two
    improvements contributed by the paper:

    - {b HWLC} ([bus_model = Rw_lock]): the x86 bus lock is modelled as
      a read-write lock implicitly held for reading by {e every} read
      access and held for writing by [LOCK]-prefixed writes, instead of
      the original plain mutex held only around [LOCK]-prefixed
      instructions.  This removes the spurious reports on bus-locked
      reference counters (Figures 8/9) while still flagging plain
      writes that race with them.  Supporting it required read-write
      lock-sets (reads check locks held in {e any} mode, writes check
      locks held in {e write} mode), which also gives POSIX rw-lock
      support ([track_rwlocks]) "for free", as the paper notes.

    - {b DR} ([destructor_annotations]): honour the
      [VALGRIND_HG_DESTRUCT] client request emitted by annotated
      [delete] operators (Figure 4): the object's memory becomes
      exclusively owned by the deleting thread's current segment, so
      the vptr writes performed by the destructor chain of a derived
      class no longer look like unsynchronised writes to shared memory
      — while a genuine access by another thread during destruction is
      still detected.

    Setting [eraser_states = false] disables the state machine and
    runs the naive textbook Eraser (lock-set refined from the very
    first access, warnings whenever it empties) — the configuration the
    paper calls "too many false positives" for initialisation and
    read-shared data.

    {b Hot path.}  Lock-sets are hash-consed ({!Lockset}), the
    per-thread effective sets are maintained incrementally on
    acquire/release ({!Held_locks}), and each shadow word remembers the
    thread / segment / lock-sets of its last access: when nothing
    relevant changed since, the state-machine step is provably a no-op
    (it cannot warn and rewrites the state with an identical value), so
    [fast_path] short-circuits it.  Reports are byte-identical with the
    fast path on or off. *)

module Loc = Raceguard_util.Loc
module Vm = Raceguard_vm
module Metrics = Raceguard_obs.Metrics
module Trace = Raceguard_obs.Trace
open Vm.Event

(* Process-global instruments (one registration per process); the
   per-instance [accesses_checked]/[fast_hits] counters below remain
   for per-detector introspection, these aggregate across instances. *)
let m_accesses = Metrics.counter "detector.helgrind.accesses_checked"
let m_fast_hits = Metrics.counter "detector.helgrind.fast_path_hits"
let m_transitions = Metrics.counter "detector.helgrind.state_transitions"
let m_warnings = Metrics.counter "detector.helgrind.warnings"

type bus_model =
  | Locked_mutex  (** original Helgrind: a mutex around LOCK-prefixed ops *)
  | Rw_lock  (** the paper's corrected model *)

type config = {
  bus_model : bus_model;
  destructor_annotations : bool;
  thread_segments : bool;
  track_rwlocks : bool;
      (** understand POSIX rw-lock events; the original Helgrind did not *)
  eraser_states : bool;  (** Figure 1 state machine (vs. pure Eraser) *)
  report_reads : bool;  (** also report reads with empty lock-set *)
  hb_annotations : bool;
      (** honour HAPPENS_BEFORE/AFTER client requests: the paper's §5
          future work ("higher level constructs for synchronization
          that the lock-set algorithm is unaware of"), implemented as
          annotation-induced thread-segment edges *)
  fast_path : bool;
      (** short-circuit the state machine when a word's steady state
          provably cannot change or warn; never alters reports *)
  provenance : bool;
      (** record the shadow-state transition history of every word and
          attach it to warnings as {!Report.provenance}.  History is
          only appended on {e genuine} state changes — exactly the
          steps the fast path cannot skip — so it is byte-identical
          with [fast_path] on or off. *)
}

(** The three configurations evaluated in Figures 5/6. *)
let original =
  {
    bus_model = Locked_mutex;
    destructor_annotations = false;
    thread_segments = true;
    track_rwlocks = false;
    eraser_states = true;
    report_reads = true;
    hb_annotations = false;
    fast_path = true;
    provenance = false;
  }

let hwlc = { original with bus_model = Rw_lock; track_rwlocks = true }
let hwlc_dr = { hwlc with destructor_annotations = true }

(** The §5 extension on top of the paper's final configuration. *)
let hwlc_dr_hb = { hwlc_dr with hb_annotations = true }

(** Ablation: Eraser without the state machine. *)
let pure_eraser = { original with eraser_states = false }

let pp_config_name ppf c =
  let base =
    match (c.bus_model, c.destructor_annotations) with
    | Locked_mutex, false -> "Original"
    | Locked_mutex, true -> "Original+DR"
    | Rw_lock, false -> "HWLC"
    | Rw_lock, true -> "HWLC+DR"
  in
  let base = if c.eraser_states then base else base ^ "(pure)" in
  let base = if c.thread_segments then base else base ^ "-noTS" in
  let base = if c.hb_annotations then base ^ "+HB" else base in
  Fmt.string ppf base

(** Full config echo for machine-readable outputs (bench rows, explain
    JSON) — every knob, not just the derived display name. *)
let config_to_json c =
  let module J = Raceguard_obs.Json in
  J.Obj
    [
      ("name", J.Str (Fmt.str "%a" pp_config_name c));
      ( "bus_model",
        J.Str (match c.bus_model with Locked_mutex -> "locked_mutex" | Rw_lock -> "rw_lock") );
      ("destructor_annotations", J.Bool c.destructor_annotations);
      ("thread_segments", J.Bool c.thread_segments);
      ("track_rwlocks", J.Bool c.track_rwlocks);
      ("eraser_states", J.Bool c.eraser_states);
      ("report_reads", J.Bool c.report_reads);
      ("hb_annotations", J.Bool c.hb_annotations);
      ("fast_path", J.Bool c.fast_path);
      ("provenance", J.Bool c.provenance);
    ]

(* ------------------------------------------------------------------ *)
(* Shadow state                                                        *)
(* ------------------------------------------------------------------ *)

type owner = { o_tid : int; o_seg : Segments.seg }

type state =
  | Virgin
  | Exclusive of owner
  | Shared_ro of Lockset.t
  | Shared_mod of Lockset.t

let pp_state ~name_of ppf = function
  | Virgin -> Fmt.string ppf "virgin"
  | Exclusive o -> Fmt.pf ppf "exclusive (thread %d)" o.o_tid
  | Shared_ro ls -> Fmt.pf ppf "shared RO, %a" (Lockset.pp ~name_of) ls
  | Shared_mod ls -> Fmt.pf ppf "shared modified, %a" (Lockset.pp ~name_of) ls

type cell = {
  mutable st : state;
  (* fast-path stamp: the interned effective sets the last slow-path
     access applied (physical equality suffices — sets are interned).
     Thread-agnostic on purpose: the Shared transitions never look at
     the accessing thread, and under contention different threads
     holding the same lock produce the same interned sets.
     [f_any = Lockset.top] invalidates the stamp (an effective set is
     never ⊤). *)
  mutable f_any : Lockset.t;
  mutable f_write : Lockset.t;
  mutable f_wrote : bool;  (** last stamped access was a write *)
  mutable f_local : bool;
      (** statically proven thread-local (allocated at a hinted source
          line, see {!set_static_hints}): the Exclusive fast path may
          skip even across segment advances, because no second thread
          can ever observe the stale segment *)
  (* provenance history (config.provenance only): genuine state
     transitions of this word since its last allocation, newest first,
     capped at [max_history] with an overflow count.  "Genuine" means
     the stored state actually changed — precisely the steps the fast
     path can never skip, so the history is mode-independent. *)
  mutable hist : Report.transition list;
  mutable hist_len : int;
  mutable hist_dropped : int;
}

type t = {
  config : config;
  mutable shadow : cell array;
      (** indexed by word address — the VM allocator hands out dense
          word indices, so direct mapping beats hashing *)
  mutable locks : Held_locks.t array;  (** indexed by tid *)
  segments : Segments.t;
  lock_names : (int, string) Hashtbl.t;  (** uid -> name *)
  collector : Report.collector;
  hints : (string * int, unit) Hashtbl.t;
      (** (file, line) of allocation sites statically proven
          thread-local; filled by {!set_static_hints} *)
  mutable benign : (int * int) list;
  mutable accesses_checked : int;
  mutable fast_hits : int;
  mutable tracer : Trace.t option;
      (** when set, state transitions / warnings / fast-path skips are
          offered to the (sampling) ring tracer *)
  mutable warning_filter : (tid:int -> addr:int -> kind:Report.kind -> bool) option;
      (** when set, a warning is only recorded if the filter agrees —
          the composition hook used by the {!Hybrid} detector *)
}

let create ?(suppressions = []) config =
  {
    config;
    shadow = [||];
    locks = [||];
    segments = Segments.create ();
    lock_names = Hashtbl.create 64;
    collector = Report.collector ~suppressions ();
    hints = Hashtbl.create 8;
    benign = [];
    accesses_checked = 0;
    fast_hits = 0;
    tracer = None;
    warning_filter = None;
  }

let set_warning_filter t f = t.warning_filter <- Some f

let set_static_hints t locs =
  List.iter (fun (file, line) -> Hashtbl.replace t.hints (file, line) ()) locs
let set_tracer t tr = t.tracer <- Some tr

let reports t = Report.occurrences t.collector
let locations t = Report.locations t.collector
let location_count t = Report.location_count t.collector
let collector t = t.collector
let accesses_checked t = t.accesses_checked
let fast_path_hits t = t.fast_hits

let name_of t uid =
  match Hashtbl.find_opt t.lock_names uid with
  | Some n -> Printf.sprintf "%S" n
  | None -> Printf.sprintf "lock#%d" uid

let thread_locks t tid =
  let n = Array.length t.locks in
  if tid >= n then begin
    let a =
      Array.init
        (max 16 (max (2 * n) (tid + 1)))
        (fun i -> if i < n then Array.unsafe_get t.locks i else Held_locks.create ())
    in
    t.locks <- a
  end;
  Array.unsafe_get t.locks tid

let fresh_cell () =
  {
    st = Virgin;
    f_any = Lockset.top;
    f_write = Lockset.top;
    f_wrote = false;
    f_local = false;
    hist = [];
    hist_len = 0;
    hist_dropped = 0;
  }

let cell t addr =
  let n = Array.length t.shadow in
  if addr >= n then begin
    let a =
      Array.init
        (max 4096 (max (2 * n) (addr + 1)))
        (fun i -> if i < n then Array.unsafe_get t.shadow i else fresh_cell ())
    in
    t.shadow <- a
  end;
  Array.unsafe_get t.shadow addr

let is_benign t addr = List.exists (fun (base, len) -> addr >= base && addr < base + len) t.benign

(* ------------------------------------------------------------------ *)
(* The per-access state machine                                        *)
(* ------------------------------------------------------------------ *)

type access = Read | Write

(** History entries kept per word before truncation; Virgin →
    Exclusive → Shared plus a handful of refinements fit comfortably,
    and the elided count preserves the information that more
    happened. *)
let max_history = 12

(* Append one genuine transition to the cell's history and offer it to
   the tracer.  Callers only invoke this when the stored state actually
   changes — precisely the steps the fast path can never skip — so the
   recorded history is byte-identical across fast-path modes. *)
let record_transition t (ctx : Vm.Tool.ctx) c ~tid ~access ~from_st ~to_st ~loc =
  Metrics.incr m_transitions;
  let render st = Fmt.str "%a" (pp_state ~name_of:(name_of t)) st in
  (match t.tracer with
  | None -> ()
  | Some tr ->
      Trace.emit tr ~ts:(ctx.clock ()) ~tid ~name:"state_transition" ~cat:"detector"
        ~args:
          [
            ("from", Raceguard_obs.Json.Str (render from_st));
            ("to", Raceguard_obs.Json.Str (render to_st));
            ("access", Raceguard_obs.Json.Str access);
          ]
        ());
  if t.config.provenance then
    if c.hist_len >= max_history then c.hist_dropped <- c.hist_dropped + 1
    else begin
      c.hist <-
        {
          Report.t_clock = ctx.clock ();
          t_tid = tid;
          t_access = access;
          t_from = render from_st;
          t_to = render to_st;
          t_loc = loc;
        }
        :: c.hist;
      c.hist_len <- c.hist_len + 1
    end

let report t (ctx : Vm.Tool.ctx) ~kind ~tid ~addr ~loc ~prev_state ~cell:c =
  let block =
    match ctx.block_of addr with
    | Some (b : Vm.Memory.block) ->
        Some
          {
            Report.b_base = b.base;
            b_len = b.len;
            b_alloc_tid = b.alloc_tid;
            b_alloc_stack = b.alloc_stack;
          }
    | None -> None
  in
  let stack = loc :: ctx.stack_of tid in
  Metrics.incr m_warnings;
  (match t.tracer with
  | None -> ()
  | Some tr ->
      Trace.emit tr ~ts:(ctx.clock ()) ~tid ~name:"warning" ~cat:"detector"
        ~args:[ ("addr", Raceguard_obs.Json.int addr) ]
        ());
  let provenance =
    if t.config.provenance then
      Some
        {
          Report.p_history = List.rev c.hist;
          p_dropped = c.hist_dropped;
          p_suppressed_by = [];
        }
    else None
  in
  Report.add t.collector
    {
      Report.kind;
      addr;
      tid;
      thread_name = ctx.thread_name tid;
      stack;
      detail = Fmt.str "Previous state: %a" (pp_state ~name_of:(name_of t)) prev_state;
      block;
      clock = ctx.clock ();
      provenance;
    }

(* Fast-path soundness: the stamp records the interned effective sets
   the last (slow-path) access to this word applied, so when the stamp
   matches the current access the word's candidate set [ls] already
   satisfies [ls ⊆ any_set] (and, after a stamped write,
   [ls ⊆ write_set] — write-sets are always subsets of any-sets).
   Intersection is then the identity, and requiring a non-empty [ls] in
   Shared-Modified rules out the one case where the slow path would
   record another warning occurrence.  The skipped step would rewrite
   the state with an identical value and emit nothing.  The Shared
   transitions never look at the accessing thread or segment, so the
   stamp deliberately ignores both — under contention, threads holding
   the same lock share the same interned sets and all hit. *)
let check_access t ctx ~access ~tid ~addr ~atomic ~loc =
  t.accesses_checked <- t.accesses_checked + 1;
  Metrics.incr m_accesses;
  let c = cell t addr in
  match c.st with
  | Exclusive o
    when t.config.fast_path && o.o_tid = tid
         && ((c.f_local && not t.config.provenance)
            || o.o_seg = Segments.seg_of t.segments tid) ->
      (* steady-state exclusive: the slow path would rewrite the owner
         with identical fields and cannot warn.  For words allocated at
         a statically-proven thread-local line [f_local] the skip also
         covers segment advances — the rewrite would only refresh
         [o_seg], which no second thread can ever read (kept precise
         under [provenance], where the seg advance is recorded). *)
      t.fast_hits <- t.fast_hits + 1;
      Metrics.incr m_fast_hits;
      (match t.tracer with
      | None -> ()
      | Some tr ->
          Trace.emit tr ~ts:(ctx.Vm.Tool.clock ()) ~tid ~name:"fast_skip" ~cat:"detector" ())
  | prev -> (
      let lc = (thread_locks t tid).Held_locks.ctx in
      let any_set =
        match t.config.bus_model with
        | Rw_lock -> lc.Held_locks.any_bus
        | Locked_mutex -> if atomic then lc.Held_locks.any_bus else lc.Held_locks.any_set
      in
      let write_set = if atomic then lc.Held_locks.write_bus else lc.Held_locks.write_set in
      let fast =
        t.config.fast_path
        &&
        match (prev, access) with
        | Shared_ro _, Read -> c.f_any == any_set
        | Shared_mod ls, Read -> c.f_any == any_set && not (Lockset.is_empty ls)
        | Shared_mod ls, Write ->
            c.f_wrote && c.f_write == write_set && not (Lockset.is_empty ls)
        | _ -> false
      in
      if fast then begin
        t.fast_hits <- t.fast_hits + 1;
        Metrics.incr m_fast_hits;
        match t.tracer with
        | None -> ()
        | Some tr -> Trace.emit tr ~ts:(ctx.Vm.Tool.clock ()) ~tid ~name:"fast_skip" ~cat:"detector" ()
      end
      else begin
        let seg = Segments.seg_of t.segments tid in
        let access_s = match access with Read -> "read" | Write -> "write" in
        (* record-then-store, so the warning issued just below sees its
           own transition at the end of the history *)
        let set_st to_st =
          record_transition t ctx c ~tid ~access:access_s ~from_st:prev ~to_st ~loc:(Some loc);
          c.st <- to_st
        in
        let warn kind ls =
          if
            Lockset.is_empty ls
            && (not (is_benign t addr))
            && (match t.warning_filter with None -> true | Some f -> f ~tid ~addr ~kind)
          then report t ctx ~kind ~tid ~addr ~loc ~prev_state:prev ~cell:c
        in
        (if not t.config.eraser_states then begin
           (* pure Eraser: C(v) starts at Top and is refined by every access *)
           let ls_prev = match prev with Shared_mod ls -> ls | _ -> Lockset.top in
           let ls =
             match access with
             | Read -> Lockset.inter ls_prev any_set
             | Write -> Lockset.inter ls_prev write_set
           in
           (match prev with
           | Shared_mod ls0 when ls0 == ls -> ()  (* interned: same set, same state *)
           | _ -> set_st (Shared_mod ls));
           match access with
           | Read -> warn Report.Race_read ls
           | Write -> warn Report.Race_write ls
         end
         else
           match prev with
           | Virgin -> set_st (Exclusive { o_tid = tid; o_seg = seg })
           | Exclusive o ->
               if o.o_tid = tid then begin
                 (* same owner: only a segment advance is a genuine
                    change (and the only case the fast path lets
                    through here) *)
                 if o.o_seg <> seg then set_st (Exclusive { o_tid = tid; o_seg = seg })
               end
               else if t.config.thread_segments && Segments.happens_before t.segments o.o_seg seg
               then
                 (* ownership passes to the later segment; stays exclusive *)
                 set_st (Exclusive { o_tid = tid; o_seg = seg })
               else begin
                 (* second thread: initialise the candidate set with the locks
                    active at this access and start checking *)
                 match access with
                 | Read -> set_st (Shared_ro any_set)
                 | Write ->
                     set_st (Shared_mod write_set);
                     warn Report.Race_write write_set
               end
           | Shared_ro ls -> (
               match access with
               | Read ->
                   let ls' = Lockset.inter ls any_set in
                   if ls' != ls then set_st (Shared_ro ls')
               | Write ->
                   let ls = Lockset.inter ls write_set in
                   set_st (Shared_mod ls);
                   warn Report.Race_write ls
               )
           | Shared_mod ls -> (
               match access with
               | Read ->
                   let ls' = Lockset.inter ls any_set in
                   if ls' != ls then set_st (Shared_mod ls');
                   if t.config.report_reads then warn Report.Race_read ls'
               | Write ->
                   let ls' = Lockset.inter ls write_set in
                   if ls' != ls then set_st (Shared_mod ls');
                   warn Report.Race_write ls'));
        c.f_any <- any_set;
        c.f_write <- write_set;
        c.f_wrote <- access = Write
      end)

(* ------------------------------------------------------------------ *)
(* Event dispatch                                                      *)
(* ------------------------------------------------------------------ *)

let on_event t (ctx : Vm.Tool.ctx) (e : Vm.Event.t) =
  match e with
  | E_thread_start { tid; parent; _ } -> Segments.on_thread_start t.segments ~tid ~parent
  | E_thread_exit { tid } -> Segments.on_thread_exit t.segments ~tid
  | E_join { joiner; joined; _ } -> Segments.on_join t.segments ~joiner ~joined
  | E_spawn _ -> ()  (* segment split already done at thread_start *)
  | E_read { tid; addr; atomic; loc; _ } ->
      check_access t ctx ~access:Read ~tid ~addr ~atomic ~loc
  | E_write { tid; addr; atomic; loc; _ } ->
      check_access t ctx ~access:Write ~tid ~addr ~atomic ~loc
  | E_alloc { addr; len; loc; _ } ->
      if Hashtbl.mem t.hints (loc.Loc.file, loc.Loc.line) then
        (* a statically-proven thread-local allocation site: mark the
           whole block (materialising cells past the frontier, which
           would otherwise be created lazily without the mark) *)
        for a = addr to addr + len - 1 do
          let c = cell t a in
          c.st <- Virgin;
          c.f_any <- Lockset.top;
          c.f_wrote <- false;
          c.f_local <- true;
          if c.hist_len > 0 then begin
            c.hist <- [];
            c.hist_len <- 0;
            c.hist_dropped <- 0
          end
        done
      else begin
        (* fresh (or recycled through malloc) memory starts life virgin;
           slots past the shadow's frontier are already virgin *)
        let n = Array.length t.shadow in
        for a = addr to min (addr + len - 1) (n - 1) do
          let c = Array.unsafe_get t.shadow a in
          c.st <- Virgin;
          c.f_any <- Lockset.top;
          c.f_wrote <- false;
          c.f_local <- false;
          if c.hist_len > 0 then begin
            (* recycled memory starts a fresh provenance life *)
            c.hist <- [];
            c.hist_len <- 0;
            c.hist_dropped <- 0
          end
        done
      end
  | E_free _ -> ()
  | E_sync_create { sync; name; _ } -> (
      match Lock_id.of_sync_ref sync with
      | Some uid -> Hashtbl.replace t.lock_names uid name
      | None -> ())
  | E_acquire { tid; lock; mode; _ } -> (
      match lock with
      | Mutex m -> Held_locks.acquire (thread_locks t tid) (Lock_id.of_mutex m) Vm.Eff.Write_mode
      | Rwlock rw ->
          if t.config.track_rwlocks then
            Held_locks.acquire (thread_locks t tid) (Lock_id.of_rwlock rw) mode
      | Cond _ | Sem _ -> ())
  | E_release { tid; lock; _ } -> (
      match lock with
      | Mutex m -> Held_locks.release (thread_locks t tid) (Lock_id.of_mutex m)
      | Rwlock rw ->
          if t.config.track_rwlocks then Held_locks.release (thread_locks t tid) (Lock_id.of_rwlock rw)
      | Cond _ | Sem _ -> ())
  | E_cond_signal _ | E_cond_wait_pre _ | E_cond_wait_post _ | E_sem_post _ | E_sem_wait_post _
    ->
      ()  (* the lock-set algorithm is blind to these — §4.2.3 *)
  | E_client { tid; req; loc } -> (
      match req with
      | Vm.Eff.Destruct { addr; len } ->
          if t.config.destructor_annotations then begin
            (* the object is about to be destroyed: it becomes
               exclusively owned by the deleting thread's segment, so
               destructor-chain writes stop looking like races while
               genuine concurrent accesses still trigger a transition *)
            let seg = Segments.seg_of t.segments tid in
            for a = addr to addr + len - 1 do
              let c = cell t a in
              (match c.st with
              | Exclusive o when o.o_tid = tid && o.o_seg = seg -> ()
              | prev ->
                  record_transition t ctx c ~tid ~access:"destruct" ~from_st:prev
                    ~to_st:(Exclusive { o_tid = tid; o_seg = seg })
                    ~loc:(Some loc));
              c.st <- Exclusive { o_tid = tid; o_seg = seg };
              c.f_any <- Lockset.top;
              c.f_wrote <- false
            done
          end
      | Vm.Eff.Benign_race { addr; len } -> t.benign <- (addr, len) :: t.benign
      | Vm.Eff.Happens_before { tag } ->
          if t.config.hb_annotations then Segments.on_happens_before t.segments ~tid ~tag
      | Vm.Eff.Happens_after { tag } ->
          if t.config.hb_annotations then Segments.on_happens_after t.segments ~tid ~tag)

let tool t = Vm.Tool.make ~name:"helgrind" ~on_event:(on_event t)
