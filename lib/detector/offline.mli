(** Post-mortem (offline) analysis — the §2.2 / §4.5 trade-off.

    A {!recorder} streams every event, together with the introspection
    data a detector would query live (stacks, blocks, clock), into a
    compact [raceguard-trace/1] binary log ({!Raceguard_trace});
    {!replay} feeds any tool the decoded stream afterwards.  Replaying
    a detector over a recorded trace reproduces its online reports
    byte-for-byte (asserted in the test suite across every registry
    configuration); the log's measured {!footprint_words} is the "large
    amounts of data" cost the paper attributes to offline techniques —
    now the cost of the encoded bytes.

    The {!sink} registry gives the replay plane a uniform face over the
    ten detector configurations it drives; a {!verdict} digests what
    one configuration concluded, comparably between live and replayed
    runs. *)

module Vm = Raceguard_vm
module Json = Raceguard_obs.Json
module Trace = Raceguard_trace

(** {1 Recording} *)

type recorder

val create_recorder :
  ?snapshot_every:int -> ?meta:(string * string) list -> unit -> recorder
(** [meta] lands in the trace header (seed, workload, …), making the
    recording self-describing. *)

val tool : recorder -> Vm.Tool.t
(** Attach to the VM to capture the run. *)

val length : recorder -> int
(** Events recorded. *)

val footprint_words : recorder -> int
(** Space cost of the encoded log, in words. *)

val writer : recorder -> Trace.Writer.t
val contents : recorder -> string
(** The sealed [raceguard-trace/1] bytes (CRC footer included). *)

val to_file : recorder -> string -> unit

val replay : recorder -> Vm.Tool.t -> unit
(** Feed the recorded trace through a tool, post mortem. *)

(** {1 The detector sink registry} *)

type sink = {
  sk_name : string;
  sk_config : Json.t;  (** full configuration, echoed into JSON outputs *)
  sk_tool : Vm.Tool.t;
  sk_occurrences : unit -> Report.t list;
  sk_locations : unit -> (Report.t * int) list;
}

val configs : string list
(** The ten replayable configurations: ["helgrind-original"],
    ["helgrind-hwlc"], ["helgrind-hwlc+dr"], ["helgrind-hwlc+dr+hb"],
    ["eraser-pure"], ["djit"], ["fasttrack"], ["racetrack"],
    ["hybrid"], ["hybrid-epoch"]. *)

val sink : string -> sink
(** A fresh detector instance for a registry name.
    @raise Invalid_argument on an unknown name. *)

val sinks : ?configs:string list -> unit -> sink list

(** {1 Verdicts} *)

type verdict = {
  v_config : string;
  v_events : int;  (** events fed to the detector *)
  v_occurrences : int;
  v_locations : int;  (** deduplicated — the Figure-6 metric *)
  v_sig_digest : string;  (** MD5 over the sorted dedup signatures *)
  v_report_digest : string;
      (** MD5 over every occurrence rendered with {!Report.pp},
          chronologically — byte-level equality of the report stream *)
}

val sig_string : Report.t -> string
val digest_signatures : (Report.t * int) list -> string
val digest_reports : Report.t list -> string

val verdict_of_sink : events:int -> sink -> verdict
val verdict_to_json : verdict -> Json.t
val verdict_equal : verdict -> verdict -> bool

val replay_config : Trace.Reader.t -> string -> verdict
(** Drive one named configuration over a decoded trace.  Fresh detector
    instance per call, no shared state — safe as a parallel cell. *)

val replay_all : ?configs:string list -> Trace.Reader.t -> verdict list
(** Sequential multi-config replay (the parallel fan-out lives in
    [lib/core], on the work-stealing pool). *)
