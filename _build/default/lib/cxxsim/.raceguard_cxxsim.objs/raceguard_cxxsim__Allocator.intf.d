lib/cxxsim/allocator.mli: Format Raceguard_util
