(** Simulated datagram transport (the "kernel" socket).

    Payload strings travel through a host-level queue — invisible to
    the detectors, exactly as the kernel is invisible to Helgrind — and
    a VM semaphore provides blocking receive.  On {!recv} the payload
    is copied into a fresh VM buffer {e by the receiving thread},
    modelling how Valgrind attributes syscall memory effects.

    An optional fault {!Raceguard_faults.Injector} makes the network
    hostile: datagrams (except from the ["admin"] control endpoint) may
    be dropped, duplicated, postponed/reordered or corrupted — all
    deterministically in (seed, plan). *)

type endpoint
type t

(** What happened to a datagram handed to {!send}. *)
type delivery =
  | Delivered  (** reached the destination inbox (possibly twice/mangled) *)
  | Dropped_unroutable
      (** no such endpoint — counted in [sip.transport.dropped_unroutable] *)
  | Dropped_fault  (** an injected drop fault consumed it *)
  | Delayed_fault  (** held back; will be flushed by later transport activity *)

val create : ?faults:Raceguard_faults.Injector.t -> unit -> t

val endpoint : t -> string -> endpoint
(** Look up or create a named endpoint (call from inside the VM: the
    first call creates its semaphore). *)

val send : t -> src:string -> dst:string -> string -> delivery
(** Datagram send; never silent — the result says what happened. *)

val recv : t -> endpoint -> string * int * int
(** Blocking receive: (source name, VM buffer address, length).  The
    caller owns — and must free — the buffer. *)

val recv_deadline : t -> endpoint -> deadline:int -> (string * int * int) option
(** Receive with an absolute VM-clock deadline; polls so postponed
    datagrams keep flowing.  [None] = nothing arrived in time.  Only
    valid when the endpoint has a single reader (all ours do). *)

val read_buffer : int -> int -> string
(** Read a received buffer back into a host string (VM reads). *)

val drain_host : endpoint -> (string * string) list
(** Host-side inspection of undelivered messages (post-run oracles). *)

val pending : endpoint -> int

val held_count : t -> int
(** Postponed datagrams not yet flushed (host-side, for oracles). *)
