lib/detector/segments.mli:
