(** Pretty-printer for MiniC++ — renders what "the compiler" sees after
    the annotation pass, as Figure 4 shows the instrumented C++.
    Printing then re-parsing is the identity on the AST (property
    tested). *)

val program : ?header_comment:string -> Ast.program -> string
(** [header_comment] is prepended (the build wrapper adds the
    [#include "valgrind/helgrind.h"] banner for annotated output). *)
