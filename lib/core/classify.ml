(** Classification of reported locations.

    Figure 5 splits every test case's reports into three populations —
    hardware-bus-lock false positives, destructor false positives, and
    the rest ("correctly reported data races") — which the paper
    obtains by {e differencing} the three detector configurations.  We
    do the same: a location is a bus-lock FP if the Original
    configuration reports it and HWLC does not, a destructor FP if HWLC
    reports it and HWLC+DR does not, and remaining if HWLC+DR still
    reports it.

    On top of that, the ground-truth oracle ({!Raceguard_sip.Bugs})
    splits the remaining population into identified real bugs and
    other reports (queue-handoff false positives etc.) — information
    the paper's authors had to produce by reading hundreds of warnings
    by hand. *)

module Det = Raceguard_detector
module Sip = Raceguard_sip

module Sig_set = Set.Make (struct
  type t = Det.Report.signature

  let compare (k1, s1) (k2, s2) =
    let c = compare k1 k2 in
    if c <> 0 then c else List.compare Raceguard_util.Loc.compare s1 s2
end)

let signature_set locations =
  List.fold_left
    (fun acc ((r : Det.Report.t), _count) -> Sig_set.add (Det.Report.signature r) acc)
    Sig_set.empty locations

type split = {
  hw_lock_fp : int;  (** removed by the HWLC correction *)
  destructor_fp : int;  (** removed by the DR annotation *)
  remaining : int;  (** still reported by HWLC+DR *)
  remaining_true : int;  (** remaining & matching a known injected bug *)
  remaining_recovery : int;
      (** remaining & running through the resilience machinery
          (recovery-path traffic, not an injected bug) *)
  remaining_other : int;  (** remaining, not attributed (pool FPs etc.) *)
  total : int;
}

let split ~original ~hwlc ~hwlc_dr =
  let so = signature_set original
  and sh = signature_set hwlc
  and sd = signature_set hwlc_dr in
  let hw_lock_fp = Sig_set.cardinal (Sig_set.diff so sh) in
  let destructor_fp = Sig_set.cardinal (Sig_set.diff sh sd) in
  let is_true (r : Det.Report.t) = Sip.Bugs.identify r.stack <> [] in
  let is_recovery (r : Det.Report.t) = (not (is_true r)) && Sip.Bugs.recovery_path r.stack in
  let remaining_true =
    List.length (List.filter (fun (r, _) -> is_true r) hwlc_dr)
  in
  let remaining_recovery =
    List.length (List.filter (fun (r, _) -> is_recovery r) hwlc_dr)
  in
  let remaining = List.length hwlc_dr in
  {
    hw_lock_fp;
    destructor_fp;
    remaining;
    remaining_true;
    remaining_recovery;
    remaining_other = remaining - remaining_true - remaining_recovery;
    total = Sig_set.cardinal so;
  }

let reduction_pct s =
  if s.total = 0 then 0.0
  else 100.0 *. float_of_int (s.total - s.remaining) /. float_of_int s.total

(** Which injected bugs does a location list witness? *)
let bugs_found locations =
  List.concat_map (fun ((r : Det.Report.t), _) -> Sip.Bugs.identify r.stack) locations
  |> List.sort_uniq compare
