(* Tests for the fault-injection plane and the resilience layer:
   backoff schedule properties (qcheck), the retransmission timer's
   cancel/fire race, injector determinism, and the chaos matrix
   determinism pin (same seed+plan => byte-identical digests, with and
   without the detector fast path). *)

module Vm = Raceguard_vm
module Engine = Vm.Engine
module Api = Vm.Api
module Sip = Raceguard_sip
module Faults = Raceguard_faults
module Backoff = Sip.Backoff
module Loc = Raceguard_util.Loc

let loc = Loc.v "t.ml" "t" 1

(* --- backoff schedule (qcheck) -------------------------------------- *)

let gen_params =
  QCheck2.Gen.(
    let* base = 1 -- 100 in
    let* factor_den = 1 -- 4 in
    let* factor_num = factor_den + 1 -- (factor_den * 3) in
    let* cap = base -- 2000 in
    let* jitter_pct = 0 -- 100 in
    return { Backoff.base; factor_num; factor_den; cap; jitter_pct })

let gen_case =
  QCheck2.Gen.(
    let* p = gen_params in
    let* seed = 0 -- 100_000 in
    let* attempts = 1 -- 12 in
    return (p, seed, attempts))

let print_case (p, seed, attempts) =
  Printf.sprintf "base=%d num=%d den=%d cap=%d jitter=%d seed=%d attempts=%d" p.Backoff.base
    p.Backoff.factor_num p.Backoff.factor_den p.Backoff.cap p.Backoff.jitter_pct seed attempts

let qc_backoff_monotone_capped =
  QCheck2.Test.make ~name:"backoff schedule is monotone, positive, capped" ~count:500
    ~print:print_case gen_case (fun (p, seed, attempts) ->
      let s = Backoff.schedule p ~seed ~attempts in
      let ceiling = Backoff.max_delay p in
      List.length s = attempts
      && List.for_all (fun d -> d >= 1 && d <= ceiling) s
      && fst
           (List.fold_left (fun (mono, prev) d -> (mono && d >= prev, d)) (true, 0) s))

let qc_backoff_deterministic =
  QCheck2.Test.make ~name:"backoff schedule is deterministic per (params, seed)" ~count:300
    ~print:print_case gen_case (fun (p, seed, attempts) ->
      Backoff.schedule p ~seed ~attempts = Backoff.schedule p ~seed ~attempts
      && List.init attempts (fun k -> Backoff.delay p ~seed ~attempt:k)
         = Backoff.schedule p ~seed ~attempts)

(* --- injector ------------------------------------------------------- *)

let qc_corrupt_wire_pure =
  QCheck2.Test.make ~name:"corrupt_wire is deterministic and length-preserving" ~count:300
    QCheck2.Gen.(pair (1 -- 10_000) (string_size (1 -- 200)))
    (fun (key, wire) ->
      let a = Faults.Injector.corrupt_wire ~key wire in
      let b = Faults.Injector.corrupt_wire ~key wire in
      a = b && String.length a = String.length wire)

let test_injector_off_is_noop () =
  let inj = Faults.Injector.create ~seed:1 ~plan:Faults.Plan.none in
  Alcotest.(check bool) "off" true (Faults.Injector.is_off inj);
  for _ = 1 to 100 do
    (match Faults.Injector.datagram inj with
    | Faults.Injector.Deliver -> ()
    | _ -> Alcotest.fail "fault fired under the empty plan");
    Alcotest.(check bool) "no alloc failure" false (Faults.Injector.alloc_fails inj);
    Alcotest.(check int) "no spawn delay" 0 (Faults.Injector.spawn_delay inj);
    Alcotest.(check int) "no lock delay" 0 (Faults.Injector.lock_delay inj)
  done;
  Alcotest.(check int) "nothing counted" 0
    (Faults.Injector.total (Faults.Injector.counts inj))

let test_injector_deterministic_stream () =
  let drain seed =
    let plan = Option.get (Faults.Plan.lookup "mayhem") in
    let inj = Faults.Injector.create ~seed ~plan in
    let log = Buffer.create 256 in
    for _ = 1 to 200 do
      (match Faults.Injector.datagram inj with
      | Faults.Injector.Deliver -> Buffer.add_char log '.'
      | Faults.Injector.Drop -> Buffer.add_char log 'x'
      | Faults.Injector.Duplicate -> Buffer.add_char log '2'
      | Faults.Injector.Delay_by n -> Buffer.add_string log (Printf.sprintf "d%d" n)
      | Faults.Injector.Corrupt_with k -> Buffer.add_string log (Printf.sprintf "c%d" k));
      Buffer.add_string log (Printf.sprintf "a%b" (Faults.Injector.alloc_fails inj))
    done;
    Buffer.contents log
  in
  Alcotest.(check string) "same seed, same decisions" (drain 42) (drain 42);
  Alcotest.(check bool) "different seed, different decisions" true (drain 42 <> drain 43)

(* --- timer wheel: cancellation racing the resend -------------------- *)

(* Schedule a retransmission, then cancel it from another thread while
   the timer thread may be firing it.  Whatever the interleaving: the
   run ends cleanly, the attempt budget is respected, and the resend
   count the wheel reports equals the number of callback invocations. *)
let timer_cancel_race seed =
  let vm = Engine.create ~config:{ Engine.default_config with seed } () in
  let resends = ref 0 in
  let result = ref None in
  let outcome =
    Engine.run vm (fun () ->
        let alloc = Raceguard_cxxsim.Allocator.create Raceguard_cxxsim.Allocator.Direct in
        let wheel =
          Sip.Timer_wheel.create ~alloc ~annotate:false
            ~resend:(fun ~txn_key:_ ~attempt:_ ->
              incr resends;
              true)
            ~housekeeping:(fun () -> ())
            ()
        in
        Sip.Timer_wheel.start wheel;
        Sip.Timer_wheel.schedule_retransmit wheel ~txn_key:42 ~delay:5;
        let canceller =
          Api.spawn ~loc ~name:"canceller" (fun () ->
              Api.sleep (1 + (seed mod 13));
              ignore (Sip.Timer_wheel.cancel wheel ~txn_key:42))
        in
        Api.join ~loc canceller;
        Api.sleep 30;
        Sip.Timer_wheel.stop wheel;
        Sip.Timer_wheel.join wheel;
        result := Some (Sip.Timer_wheel.resent wheel, Sip.Timer_wheel.cancelled wheel))
  in
  (match outcome.Engine.failures with
  | [] -> ()
  | (_, name, e) :: _ -> Alcotest.failf "thread %s raised %s" name (Printexc.to_string e));
  Alcotest.(check bool) "no deadlock" true (outcome.Engine.deadlock = None);
  let resent, cancelled = Option.get !result in
  Alcotest.(check int) "resend callback count matches the wheel's" !resends resent;
  Alcotest.(check bool) "attempt budget respected" true
    (resent <= Sip.Timer_wheel.max_attempts);
  Alcotest.(check bool) "cancel accounted" true (cancelled >= 0);
  (resent, cancelled)

let test_timer_cancel_race () =
  (* different seeds explore different interleavings of cancel vs fire *)
  let outcomes = List.map timer_cancel_race [ 1; 2; 3; 5; 8; 13; 21; 34 ] in
  List.iter2
    (fun seed (a, b) ->
      let a', b' = timer_cancel_race seed in
      Alcotest.(check (pair int int))
        (Printf.sprintf "seed %d reproducible" seed)
        (a, b) (a', b'))
    [ 1; 2; 3; 5; 8; 13; 21; 34 ] outcomes

(* --- chaos determinism pin ------------------------------------------ *)

let tiny_config ~fast_path =
  {
    Raceguard.Chaos.quick with
    plans = List.filter_map Faults.Plan.lookup [ "drop" ];
    tests =
      List.filter
        (fun (tc : Sip.Workload.test_case) -> tc.tc_name = "T2")
        (Sip.Workload.chaos_test_cases Sip.Workload.default_chaos_opts);
    (* scenario cells have their own pins in test_shards.ml *)
    shard_plans = [];
    scenario_tests = [];
    fast_path;
  }

let test_chaos_deterministic () =
  let module Json = Raceguard_obs.Json in
  let config = tiny_config ~fast_path:true in
  let r1 = Raceguard.Chaos.run config in
  let r2 = Raceguard.Chaos.run config in
  Alcotest.(check string) "byte-identical JSON reports"
    (Json.to_string (Raceguard.Chaos.to_json ~config r1))
    (Json.to_string (Raceguard.Chaos.to_json ~config r2));
  Alcotest.(check string) "matrix digest stable" (Raceguard.Chaos.matrix_digest r1)
    (Raceguard.Chaos.matrix_digest r2)

let test_chaos_fast_path_invariant () =
  (* the detector fast path must not change reports, oracle outputs or
     digests — only the fast_path flag itself differs *)
  let r_fast = Raceguard.Chaos.run (tiny_config ~fast_path:true) in
  let r_slow = Raceguard.Chaos.run (tiny_config ~fast_path:false) in
  Alcotest.(check string) "matrix digest invariant under fast_path"
    (Raceguard.Chaos.matrix_digest r_fast)
    (Raceguard.Chaos.matrix_digest r_slow);
  List.iter2
    (fun (a : Raceguard.Chaos.cell) (b : Raceguard.Chaos.cell) ->
      Alcotest.(check string) "signature digest" a.cl_sig_digest b.cl_sig_digest;
      Alcotest.(check string) "behaviour digest" a.cl_behavior_digest b.cl_behavior_digest;
      Alcotest.(check (list string)) "violations" a.cl_violations b.cl_violations)
    r_fast.rp_cells r_slow.rp_cells

(* --- chaos asymmetry ------------------------------------------------ *)

let test_chaos_oom_asymmetry () =
  (* allocation-failure plan on T2: the resilient server degrades to
     503s and stays clean; the legacy server's workers die *)
  let config =
    {
      (tiny_config ~fast_path:true) with
      Raceguard.Chaos.plans = List.filter_map Faults.Plan.lookup [ "oom" ];
    }
  in
  let plan = List.hd config.Raceguard.Chaos.plans in
  let tc = List.hd config.Raceguard.Chaos.tests in
  let on = Raceguard.Chaos.run_cell config ~plan ~resilient:true tc in
  let off = Raceguard.Chaos.run_cell config ~plan ~resilient:false tc in
  Alcotest.(check (list string)) "resilient cell violation-free" [] on.cl_violations;
  Alcotest.(check bool) "faults actually injected" true
    (Faults.Injector.total on.cl_injected > 0);
  Alcotest.(check bool) "legacy cell demonstrably violates" true (off.cl_violations <> [])

let suite =
  ( "faults",
    [
      QCheck_alcotest.to_alcotest qc_backoff_monotone_capped;
      QCheck_alcotest.to_alcotest qc_backoff_deterministic;
      QCheck_alcotest.to_alcotest qc_corrupt_wire_pure;
      Alcotest.test_case "injector: empty plan is a no-op" `Quick test_injector_off_is_noop;
      Alcotest.test_case "injector: decision stream deterministic per seed" `Quick
        test_injector_deterministic_stream;
      Alcotest.test_case "timer wheel: cancel racing resend" `Quick test_timer_cancel_race;
      Alcotest.test_case "chaos: byte-identical reports per (seed, plan)" `Quick
        test_chaos_deterministic;
      Alcotest.test_case "chaos: digests invariant under detector fast path" `Quick
        test_chaos_fast_path_invariant;
      Alcotest.test_case "chaos: oom asymmetry (resilient clean, legacy breaks)" `Quick
        test_chaos_oom_asymmetry;
    ] )
