examples/sip_audit.mli:
