(** Unified lock identifiers for lock-sets.

    The detector mixes three kinds of locks in one set:
    - the virtual {b hardware bus lock} (uid 0) — not a real lock in
      the program, but the detector models the x86 [LOCK] prefix as one
      (either as a plain mutex, the original Helgrind behaviour, or as
      a read-write lock, the paper's HWLC correction);
    - program {b mutexes} (odd uids);
    - program {b read-write locks} (even uids > 0). *)

type t = int

let bus : t = 0
let of_mutex m : t = (2 * m) + 1
let of_rwlock r : t = (2 * r) + 2

let is_bus (t : t) = t = 0

let pp ~name_of ppf (t : t) =
  if t = 0 then Fmt.string ppf "<bus-lock>" else Fmt.string ppf (name_of t)

let of_sync_ref (r : Raceguard_vm.Event.sync_ref) : t option =
  match r with
  | Raceguard_vm.Event.Mutex m -> Some (of_mutex m)
  | Raceguard_vm.Event.Rwlock rw -> Some (of_rwlock rw)
  | Raceguard_vm.Event.Cond _ | Raceguard_vm.Event.Sem _ -> None
