(** Ground truth: the bugs injected into the server (§4.1) and how to
    recognise them in detector reports — the oracle behind experiment
    E10 and the "remaining reports are mostly real" checks. *)

type id =
  | B1_watchdog  (** race in the app's own deadlock-detection code *)
  | B2_init_order  (** thread started before its data is initialised *)
  | B3_shutdown_order  (** structure destroyed before its user thread exits *)
  | B4_returned_reference  (** Figure 7: reference escapes the guard *)
  | B5_static_buffer  (** ctime/localtime-style static data *)
  | B6_racy_counters  (** unsynchronised statistics increments *)

val all : id list
val to_string : id -> string
val description : id -> string

val identify : Raceguard_util.Loc.t list -> id list
(** Which known bugs a report call stack witnesses (possibly none). *)

val recovery_path : Raceguard_util.Loc.t list -> bool
(** Does the stack run through the resilience machinery (response
    cache, timer cancel/resend)?  Used to separate recovery-path
    traffic from injected bugs in the chaos classification. *)
