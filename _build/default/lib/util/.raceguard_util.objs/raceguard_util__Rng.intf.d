lib/util/rng.mli:
