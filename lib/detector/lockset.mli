(** Lock-sets: the candidate sets C(v) of the Eraser algorithm.

    Hash-consed: every distinct set is interned once into a global
    table and carries a small integer {!id}; {!equal} is physical
    equality and {!inter} is memoised in a pair-of-ids-keyed cache, so
    the detector hot path costs a hash probe instead of an array merge.

    [top] is the initial "set of all locks"; intersection with it
    yields the other operand, so the universe is never materialised. *)

type t

val top : t
val empty : t
val of_list : int list -> t

val id : t -> int
(** The interned set's unique small-integer id ([top] is 0, [empty]
    is 1); equal ids iff equal sets. *)

val is_empty : t -> bool
(** [top] is not empty. *)

val inter : t -> t -> t
(** Memoised; [inter a a == a] and results are interned, so repeated
    steady-state intersections allocate nothing. *)

val union : t -> t -> t
val add : int -> t -> t
val remove : int -> t -> t

val mem : int -> t -> bool
val equal : t -> t -> bool
(** Physical equality — sound because of interning. *)

val cardinal : t -> int
val to_list : t -> int list option
(** [None] for [Top]. *)

val interned_count : unit -> int
(** Distinct sets interned so far (process-global). *)

val stats : unit -> int * int * int * int
(** [(interned sets, memoised intersections, memo hits, memo misses)]
    — process-global counters for the perf experiment and bench. *)

val pp : name_of:(int -> string) -> Format.formatter -> t -> unit
