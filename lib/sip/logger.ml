(** Asynchronous logging: workers enqueue [LogRecord] objects, a
    dedicated logger thread formats and deletes them.

    The handoff goes through a {!Raceguard_vm.Msg_queue}, i.e. through
    synchronisation the lock-set algorithm cannot see (§4.2.3) — so
    without the DR annotation every record's destructor-chain writes in
    the logger thread are reported.  The logger also calls the
    non-thread-safe {!Timeutil.ctime} (bug B5) and bumps a racy
    counter, and its shutdown interacts with the main thread's eager
    [Stats] destruction (bug B3). *)

module Loc = Raceguard_util.Loc
module Api = Raceguard_vm.Api
module Msg_queue = Raceguard_vm.Msg_queue
module Obj_model = Raceguard_cxxsim.Object_model
module Refstring = Raceguard_cxxsim.Refstring

let lc func line = Loc.v "logger.cpp" ("Logger::" ^ func) line

(* class Record { int timestamp; int level; }
   class LogRecord : Record { RefString text; int processed; } *)
let record_class =
  Obj_model.define ~name:"Record" ~fields:[ "timestamp"; "level" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.scrub ~file:"logger.cpp" ~base_line:20 cls obj ~strings:[]
        ~ints:[ "timestamp"; "level" ])
    ()

let log_record_class =
  Obj_model.define ~parent:record_class ~name:"LogRecord"
    ~fields:[ "text"; "category"; "processed" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.scrub ~file:"logger.cpp" ~base_line:27 cls obj
        ~strings:[ "text"; "category" ] ~ints:[ "processed" ])
    ()

type t = {
  queue : Msg_queue.t;
  stop_flag : int;  (** word set with a bus-locked write, read plainly *)
  stats : Stats.t;
  time : Timeutil.t;
  annotate : bool;
  categories : Refstring.t array;
      (** canned per-level category strings, shared by every logging
          thread (each use copies a shared rep: bus-lock sites) *)
  mutable thread : int;  (** logger tid *)
  mutable lines : string list;  (** host-side sink (the "log file") *)
}

let create ~stats ~time ~annotate =
  let stop_flag = Api.alloc ~loc:(lc "Logger" 40) 1 in
  Api.write ~loc:(lc "Logger" 41) stop_flag 0;
  let mk = Refstring.create ~loc:(lc "Logger" 42) in
  {
    queue = Msg_queue.create ~annotated:annotate ~name:"logger.queue" ~capacity:64 ();
    stop_flag;
    stats;
    time;
    annotate;
    categories = [| mk "DEBUG"; mk "INFO"; mk "WARN"; mk "ERROR" |];
    thread = -1;
    lines = [];
  }

(** Called by worker threads: allocate a record and enqueue it. *)
let log t ~loc ~level text =
  Api.with_frame (lc "log" 56) @@ fun () ->
  let record =
    Obj_model.new_ ~loc log_record_class ~init:(fun obj ->
        let cls = log_record_class in
        Obj_model.set ~loc cls obj "timestamp" (Api.now ());
        Obj_model.set ~loc cls obj "level" level;
        Obj_model.set ~loc cls obj "text" (Refstring.create ~loc text);
        Obj_model.set ~loc cls obj "category"
          (Refstring.copy t.categories.(max 0 (min 3 level)));
        Obj_model.set ~loc cls obj "processed" 0)
  in
  Msg_queue.put t.queue record

let process_record t record =
  Api.with_frame (lc "processRecord" 64) @@ fun () ->
  let cls = log_record_class in
  let when_ = Timeutil.ctime t.time in
  let stamp = Timeutil.read_formatted t.time when_ in
  let text = Refstring.to_string (Obj_model.get ~loc:(lc "run" 68) cls record "text") in
  let level = Obj_model.get ~loc:(lc "run" 69) cls record "level" in
  t.lines <- Printf.sprintf "[%s] <%d> %s" stamp level text :: t.lines;
  (* mark processed: a plain write to worker-created memory — remains a
     (queue-handoff) false positive even with HWLC+DR *)
  Obj_model.set ~loc:(lc "run" 73) cls record "processed" 1;
  Stats.incr_lines_logged t.stats;
  Obj_model.delete_ ~loc:(lc "run" 76) ~annotate:t.annotate cls record

(** The logger thread body. *)
let run t () =
  Api.with_frame (lc "run" 80) @@ fun () ->
  let rec loop () =
    (* drain everything that is queued, then check the stop flag *)
    if Msg_queue.length t.queue > 0 then begin
      process_record t (Msg_queue.get t.queue);
      loop ()
    end
    else if Api.read ~loc:(lc "run" 87) t.stop_flag = 0 then begin
      Api.sleep 3;
      loop ()
    end
  in
  loop ();
  (* final flush: anything enqueued while we saw the flag *)
  while Msg_queue.length t.queue > 0 do
    process_record t (Msg_queue.get t.queue)
  done;
  (* B3: this last bump races with the main thread destroying Stats
     before joining us — a distinct report site for the shutdown bug *)
  Stats.bump_racy t.stats Stats.lines_logged ~loc:(lc "flushFinal" 97)

let start t =
  t.thread <- Api.spawn ~loc:(lc "start" 101) ~name:"logger" (run t)

(** Request shutdown: bus-locked store to the stop flag. *)
let stop t = ignore (Api.atomic_rmw ~loc:(lc "stop" 105) t.stop_flag (fun _ -> 1))

let join t = Api.join ~loc:(lc "join" 107) t.thread

(** Destructor: drain whatever is still enqueued into [lines], exactly
    as the logger thread would have.  Shutdown orderings that race the
    logger (B3 destroys [Stats] before stopping us) must not silently
    drop buffered records — the ordering bug itself stays injected (the
    flush still bumps the possibly-destroyed statistics, which is the
    report site), but every enqueued line reaches the sink. *)
let destroy t =
  Api.with_frame (lc "~Logger" 112) @@ fun () ->
  while Msg_queue.length t.queue > 0 do
    process_record t (Msg_queue.get t.queue)
  done

let lines t = List.rev t.lines
