(** Lock-sets: the candidate sets C(v) of the Eraser algorithm.

    [top] is the initial "set of all locks"; intersection with it
    yields the other operand, so the universe is never materialised. *)

type t = Top | Set of Raceguard_util.Int_sorted_set.t

val top : t
val empty : t
val of_list : int list -> t

val is_empty : t -> bool
(** [Top] is not empty. *)

val inter : t -> t -> t
val mem : int -> t -> bool
val equal : t -> t -> bool
val cardinal : t -> int
val to_list : t -> int list option
(** [None] for [Top]. *)

val pp : name_of:(int -> string) -> Format.formatter -> t -> unit
