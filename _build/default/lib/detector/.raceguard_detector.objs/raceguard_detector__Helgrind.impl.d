lib/detector/helgrind.ml: Fmt Hashtbl List Lock_id Lockset Printf Raceguard_util Raceguard_vm Report Segments
