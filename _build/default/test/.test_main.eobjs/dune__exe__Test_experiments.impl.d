test/test_experiments.ml: Alcotest Lazy List Printf Raceguard Raceguard_cxxsim Raceguard_detector Raceguard_sip String
