lib/cxxsim/allocator.ml: Fmt Hashtbl Raceguard_util Raceguard_vm
