(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (the same rows/series the paper reports), times the
   detector configurations with Bechamel, and measures detector
   throughput (events/sec) as machine-readable JSON for CI.

     dune exec bench/main.exe                  # tables + timings
     dune exec bench/main.exe -- tables        # only the tables/figures
     dune exec bench/main.exe -- timings       # only the Bechamel timings
     dune exec bench/main.exe -- --json        # throughput suite -> BENCH_detector.json
     dune exec bench/main.exe -- --json --quick
     dune exec bench/main.exe -- --json --compare bench/baseline.json

   Throughput flags:
     --json               run the throughput suite and write JSON
     --quick              CI smoke subset (fewer workloads, shorter quota)
     --seed N             VM scheduling seed (default 7; echoed into the JSON)
     --domains N          worker domains for the audit pass and the
                          sequential leg of the scaling suite
                          (1 = sequential, 0 = auto); digests are
                          identical for any value.  The Bechamel timed
                          pass always runs sequentially — parallel
                          timing would corrupt the measurements.
     --out FILE           output path (default BENCH_detector.json)
     --compare FILE       compare against a committed baseline JSON;
                          exit 2 on >threshold normalized-throughput regression
     --max-regression PCT regression threshold in percent (default 25)

   Table/figure index (see DESIGN.md §4):
     Figure 6  -> "fig6"      Figure 5    -> "fig5"
     Figure 4  -> "fig4"      Figures 8/9 -> "fig8"
     Figures 10/11 -> "pools" §4.3 -> "fneg"   §4.1 -> "bugs"
     §4 alloc  -> "alloc"     §4.5 -> "perf"   §3.3 -> "deadlock"
     ablations -> "segments", "states", "baselines" *)

open Bechamel
open Toolkit

module R = Raceguard
module Det = Raceguard_detector
module Vm = Raceguard_vm
module Sip = Raceguard_sip
module Loc = Raceguard_util.Loc
module Obs = Raceguard_obs

let seed = 7

(* ------------------------------------------------------------------ *)
(* Bechamel test subjects: one per table/figure workload               *)
(* ------------------------------------------------------------------ *)

let run_t2 helgrind_configs ~djit () =
  let cfg = { R.Runner.default with seed; helgrind_configs; run_djit = djit } in
  ignore (R.Runner.run_test_case cfg Sip.Workload.t2)

let run_scenario helgrind_configs scenario () =
  let cfg = { R.Runner.default with seed; helgrind_configs } in
  ignore (R.Runner.run_main cfg scenario)

let offline_replay () =
  (* record once per run, replay through the detector post mortem *)
  let recorder = Det.Offline.create_recorder () in
  let vm = Vm.Engine.create ~config:{ Vm.Engine.default_config with seed } () in
  Vm.Engine.add_tool vm (Det.Offline.tool recorder);
  let transport = Sip.Transport.create () in
  let _ =
    Vm.Engine.run vm (fun () ->
        ignore
          (Sip.Workload.run_test_case ~transport ~server_config:R.Runner.default.server
             Sip.Workload.t3 ()))
  in
  let h = Det.Helgrind.create Det.Helgrind.hwlc_dr in
  Det.Offline.replay recorder (Det.Helgrind.tool h)

let minicc_pipeline () =
  let module M = Raceguard_minicc in
  let interp, _pretty, _n =
    M.Interp.compile ~annotate:true ~file:"g.mcc" R.Experiments.figure4_source
  in
  let h = Det.Helgrind.create Det.Helgrind.hwlc_dr in
  let vm = Vm.Engine.create ~config:{ Vm.Engine.default_config with seed } () in
  Vm.Engine.add_tool vm (Det.Helgrind.tool h);
  ignore (Vm.Engine.run vm (fun () -> M.Interp.run_main interp))

let cfgs name c = [ (name, c) ]

let tests =
  [
    (* Figure 6 / §4.5 series: T2 under each configuration *)
    Test.make ~name:"fig6/T2-no-tool" (Staged.stage (run_t2 [] ~djit:false));
    Test.make ~name:"fig6/T2-Original"
      (Staged.stage (run_t2 (cfgs "Original" Det.Helgrind.original) ~djit:false));
    Test.make ~name:"fig6/T2-HWLC"
      (Staged.stage (run_t2 (cfgs "HWLC" Det.Helgrind.hwlc) ~djit:false));
    Test.make ~name:"fig6/T2-HWLC+DR"
      (Staged.stage (run_t2 (cfgs "HWLC+DR" Det.Helgrind.hwlc_dr) ~djit:false));
    (* baselines: DJIT on the same workload *)
    Test.make ~name:"baselines/T2-DJIT" (Staged.stage (run_t2 [] ~djit:true));
    (* ablation: pure Eraser (no state machine) *)
    Test.make ~name:"states/T2-pure-eraser"
      (Staged.stage (run_t2 (cfgs "pure" Det.Helgrind.pure_eraser) ~djit:false));
    (* Figures 8/9: the string test *)
    Test.make ~name:"fig8/stringtest-original"
      (Staged.stage
         (run_scenario (cfgs "Original" Det.Helgrind.original) R.Scenarios.stringtest));
    Test.make ~name:"fig8/stringtest-hwlc"
      (Staged.stage (run_scenario (cfgs "HWLC" Det.Helgrind.hwlc) R.Scenarios.stringtest));
    (* Figures 10/11: handoff patterns *)
    Test.make ~name:"pools/handoff-per-request"
      (Staged.stage
         (run_scenario (cfgs "HWLC+DR" Det.Helgrind.hwlc_dr) R.Scenarios.handoff_per_request));
    Test.make ~name:"pools/handoff-queue"
      (Staged.stage
         (run_scenario (cfgs "HWLC+DR" Det.Helgrind.hwlc_dr) R.Scenarios.handoff_pool));
    (* §4.5 offline mode: record + post-mortem replay *)
    Test.make ~name:"perf/offline-record-replay-T3" (Staged.stage offline_replay);
    (* Figure 4: the full MiniC++ instrumentation pipeline *)
    Test.make ~name:"fig4/minicc-pipeline" (Staged.stage minicc_pipeline);
  ]

let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]

let run_timings () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"raceguard" tests) in
  let analyzed = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "Bechamel timings (monotonic clock, OLS estimate per run):";
  print_endline "";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> est
        | Some [] | None -> nan
      in
      rows := (name, ns) :: !rows)
    analyzed;
  let rows = List.sort compare !rows in
  let width = List.fold_left (fun w (n, _) -> max w (String.length n)) 0 rows in
  List.iter
    (fun (name, ns) -> Printf.printf "  %-*s  %12.3f ms/run\n" width name (ns /. 1e6))
    rows

let run_tables () =
  List.iter
    (fun (id, descr, f) ->
      Printf.printf "==== %s — %s ====\n%!" id descr;
      print_endline (f ());
      print_newline ())
    R.Experiments.all

(* ------------------------------------------------------------------ *)
(* Throughput suite: events/sec per detector config × workload, JSON   *)
(* ------------------------------------------------------------------ *)

type workload = {
  w_name : string;
  w_run : seed:int -> Vm.Tool.t list -> unit;
      (** one full run of the workload with the given tools attached;
          everything downstream of [seed] is deterministic *)
}

let scenario_workload name f =
  {
    w_name = name;
    w_run =
      (fun ~seed tools ->
        let vm = Vm.Engine.create ~config:{ Vm.Engine.default_config with seed } () in
        List.iter (Vm.Engine.add_tool vm) tools;
        ignore (Vm.Engine.run vm f));
  }

let sip_workload tc =
  {
    w_name = String.lowercase_ascii tc.Sip.Workload.tc_name;
    w_run =
      (fun ~seed tools ->
        let vm = Vm.Engine.create ~config:{ Vm.Engine.default_config with seed } () in
        List.iter (Vm.Engine.add_tool vm) tools;
        let transport = Sip.Transport.create () in
        ignore
          (Vm.Engine.run vm (fun () ->
               ignore
                 (Sip.Workload.run_test_case ~transport
                    ~server_config:R.Runner.default.server tc ()))));
  }

let workloads ~quick =
  let micro =
    if quick then
      [
        scenario_workload "micro-contention" (fun () ->
            R.Scenarios.high_contention ~iters:120 ());
        scenario_workload "micro-readshared" (fun () -> R.Scenarios.read_shared ~iters:200 ());
        scenario_workload "micro-readchurn" (fun () ->
            R.Scenarios.read_shared_churn ~rounds:3 ~iters:60 ());
      ]
    else
      [
        scenario_workload "micro-contention" (fun () -> R.Scenarios.high_contention ());
        scenario_workload "micro-readshared" (fun () -> R.Scenarios.read_shared ());
        scenario_workload "micro-readchurn" (fun () -> R.Scenarios.read_shared_churn ());
      ]
  in
  let sip =
    if quick then [ Sip.Workload.t2; Sip.Workload.t3 ] else Sip.Workload.all_test_cases
  in
  List.map sip_workload sip @ micro

(* one detector "subject": fresh per timed run; the audit accessors
   read back report counts and dedup signatures for fidelity checks *)
type subject = {
  s_name : string;
  s_config : Obs.Json.t;  (** full detector configuration, echoed into the JSON header *)
  s_make : unit -> Vm.Tool.t list * (unit -> int) * (unit -> string list);
}

let sig_string (r : Det.Report.t) =
  let kind, frames = Det.Report.signature r in
  Fmt.str "%a@%s" Det.Report.pp_kind kind
    (String.concat ";" (List.map (fun l -> Fmt.str "%a" Loc.pp l) frames))

let sigs_of locations = List.map (fun (r, _) -> sig_string r) locations

let mk_helgrind cfg () =
  let h = Det.Helgrind.create cfg in
  ( [ Det.Helgrind.tool h ],
    (fun () -> Det.Helgrind.location_count h),
    fun () -> sigs_of (Det.Helgrind.locations h) )

let other_config detector = Obs.Json.Obj [ ("detector", Obs.Json.Str detector) ]

let subjects =
  [
    {
      s_name = "no-tool";
      s_config = other_config "none";
      s_make = (fun () -> ([], (fun () -> 0), fun () -> []));
    };
    {
      s_name = "helgrind-original";
      s_config = Det.Helgrind.config_to_json Det.Helgrind.original;
      s_make = mk_helgrind Det.Helgrind.original;
    };
    {
      s_name = "helgrind-hwlc";
      s_config = Det.Helgrind.config_to_json Det.Helgrind.hwlc;
      s_make = mk_helgrind Det.Helgrind.hwlc;
    };
    {
      s_name = "helgrind-hwlc+dr";
      s_config = Det.Helgrind.config_to_json Det.Helgrind.hwlc_dr;
      s_make = mk_helgrind Det.Helgrind.hwlc_dr;
    };
    {
      s_name = "eraser-pure";
      s_config = Det.Helgrind.config_to_json Det.Helgrind.pure_eraser;
      s_make = mk_helgrind Det.Helgrind.pure_eraser;
    };
    {
      s_name = "djit";
      s_config = other_config "djit";
      s_make =
        (fun () ->
          let d = Det.Djit.create () in
          ( [ Det.Djit.tool d ],
            (fun () -> Det.Djit.location_count d),
            fun () -> sigs_of (Det.Djit.locations d) ));
    };
    {
      s_name = "fasttrack";
      s_config = Det.Fasttrack.config_to_json Det.Fasttrack.default_config;
      s_make =
        (fun () ->
          let f = Det.Fasttrack.create () in
          ( [ Det.Fasttrack.tool f ],
            (fun () -> Det.Fasttrack.location_count f),
            fun () -> sigs_of (Det.Fasttrack.locations f) ));
    };
    {
      s_name = "hybrid";
      s_config = other_config "hybrid";
      s_make =
        (fun () ->
          let h = Det.Hybrid.create () in
          ( [ Det.Hybrid.tool h ],
            (fun () -> Det.Hybrid.location_count h),
            fun () -> sigs_of (Det.Hybrid.locations h) ));
    };
    {
      s_name = "hybrid-epoch";
      s_config = other_config "hybrid-epoch";
      s_make =
        (fun () ->
          let h = Det.Hybrid.create ~config:Det.Hybrid.epoch_config () in
          ( [ Det.Hybrid.tool h ],
            (fun () -> Det.Hybrid.location_count h),
            fun () -> sigs_of (Det.Hybrid.locations h) ));
    };
    {
      s_name = "racetrack";
      s_config = other_config "racetrack";
      s_make =
        (fun () ->
          let r = Det.Racetrack.create () in
          ( [ Det.Racetrack.tool r ],
            (fun () -> Det.Racetrack.location_count r),
            fun () -> sigs_of (Det.Racetrack.locations r) ));
    };
  ]

type row = {
  r_workload : string;
  r_config : string;
  r_events : int;  (** VM events emitted by one run (seed-deterministic) *)
  r_reports : int;  (** deduplicated race locations *)
  r_sig_digest : string;  (** MD5 over the sorted dedup signatures *)
  r_ns_per_run : float;
  r_events_per_sec : float;
  r_minor_words_per_event : float;
  r_normalized : float;  (** events/sec relative to no-tool on this workload *)
  r_checked : int;  (** detector accesses checked during the audit run *)
  r_fast_hits : int;  (** of which answered by the shadow fast path *)
  r_interned : int;  (** lock-set intern table size after the audit run *)
  r_gc_words_per_event : float;  (** minor words allocated per event (audit run) *)
}

let composite w s = w.w_name ^ "::" ^ s.s_name

(* Analyze.all keys carry the grouped-test prefix; match on suffix. *)
let estimate tbl composite =
  Hashtbl.fold
    (fun name ols_result acc ->
      if name = composite || String.ends_with ~suffix:("/" ^ composite) name then
        match Analyze.OLS.estimates ols_result with Some (e :: _) -> Some e | _ -> acc
      else acc)
    tbl None

let count_events w ~seed =
  let n = ref 0 in
  w.w_run ~seed [ Vm.Tool.of_fn "count" (fun _ -> incr n) ];
  !n

let digest_sigs sigs = Digest.to_hex (Digest.string (String.concat "\n" (List.sort compare sigs)))

let run_throughput ~quick ~seed ~domains =
  let workloads = workloads ~quick in
  let quota, limit = if quick then (0.15, 60) else (0.5, 200) in
  (* audit pass: one untimed run per subject×workload for event counts,
     report counts, dedup signatures and a metrics-registry delta.
     Each subject×workload pair is one cell on the work-stealing pool:
     detector state is per-instance and the metrics registry is
     domain-local, so report counts and digests are identical for any
     domain count.  (Registry-level gauges such as the lockset intern
     size reflect whatever else already ran on the executing domain —
     in sequential mode, all preceding cells — and are informational,
     not digest material.) *)
  let events_of =
    Raceguard_par.Par.map_cells ~domains
      (fun w -> count_events w ~seed)
      (Array.of_list workloads)
  in
  let audit_cells =
    Array.of_list (List.concat_map (fun w -> List.map (fun s -> (w, s)) subjects) workloads)
  in
  let audited =
    Raceguard_par.Par.map_cells ~domains
      (fun (w, s) ->
        let tools, n_reports, signatures = s.s_make () in
        let before = Obs.Metrics.snapshot () in
        let gc0 = Gc.minor_words () in
        w.w_run ~seed tools;
        let gc_words = Gc.minor_words () -. gc0 in
        let m = Obs.Metrics.diff ~before (Obs.Metrics.snapshot ()) in
        (w.w_name, (s.s_name, (n_reports (), digest_sigs (signatures ()), m, gc_words))))
      audit_cells
  in
  let audits =
    List.mapi
      (fun i w ->
        let per_subject =
          Array.to_list audited
          |> List.filter_map (fun (wn, entry) ->
                 if wn = w.w_name then Some entry else None)
        in
        (w.w_name, (events_of.(i), per_subject)))
      workloads
  in
  (* timed pass: bechamel over every subject×workload *)
  let tests =
    List.concat_map
      (fun w ->
        List.map
          (fun s ->
            Test.make ~name:(composite w s)
              (Staged.stage (fun () ->
                   let tools, _, _ = s.s_make () in
                   w.w_run ~seed tools)))
          subjects)
      workloads
  in
  let cfg = Benchmark.cfg ~limit ~quota:(Time.second quota) ~kde:None () in
  let raw =
    Benchmark.all cfg
      Instance.[ monotonic_clock; minor_allocated ]
      (Test.make_grouped ~name:"throughput" tests)
  in
  let times = Analyze.all ols Instance.monotonic_clock raw in
  let allocs = Analyze.all ols Instance.minor_allocated raw in
  let rows =
    List.concat_map
      (fun w ->
        let events, per_subject = List.assoc w.w_name audits in
        List.map
          (fun s ->
            let key = composite w s in
            let ns = Option.value ~default:nan (estimate times key) in
            let words = Option.value ~default:nan (estimate allocs key) in
            let eps =
              if Float.is_nan ns || ns <= 0. then 0. else float_of_int events /. (ns /. 1e9)
            in
            let n_reports, digest, m, gc_words = List.assoc s.s_name per_subject in
            let counter name = Option.value ~default:0 (Obs.Metrics.find_counter m name) in
            let gauge name = Option.value ~default:0 (Obs.Metrics.find_gauge m name) in
            (* the fast-path columns read whichever detector family the
               subject runs: fasttrack rows report epoch hits, everything
               else the lock-set shadow fast path *)
            let checked, fast_hits =
              if s.s_name = "fasttrack" then
                ( counter "detector.fasttrack.accesses_checked",
                  counter "detector.fasttrack.epoch_hits" )
              else
                ( counter "detector.helgrind.accesses_checked",
                  counter "detector.helgrind.fast_path_hits" )
            in
            {
              r_workload = w.w_name;
              r_config = s.s_name;
              r_events = events;
              r_reports = n_reports;
              r_sig_digest = digest;
              r_ns_per_run = ns;
              r_events_per_sec = eps;
              r_minor_words_per_event =
                (if Float.is_nan words || events = 0 then 0.
                 else words /. float_of_int events);
              r_normalized = 0.;  (* filled below *)
              r_checked = checked;
              r_fast_hits = fast_hits;
              r_interned = gauge "detector.lockset.interned";
              r_gc_words_per_event =
                (if events = 0 then 0. else gc_words /. float_of_int events);
            })
          subjects)
      workloads
  in
  List.map
    (fun r ->
      let base =
        List.find_opt
          (fun b -> b.r_workload = r.r_workload && b.r_config = "no-tool")
          rows
      in
      let normalized =
        match base with
        | Some b when b.r_events_per_sec > 0. -> r.r_events_per_sec /. b.r_events_per_sec
        | _ -> 0.
      in
      { r with r_normalized = normalized })
    rows

(* --- epoch fast-path gate ------------------------------------------- *)

(* FastTrack's whole value proposition is that almost every access is
   decided in the packed-epoch representation.  Pin that property on
   the SIP rows — counter-based (deterministic in the seed), not
   timing-based, so it cannot flake on a loaded runner.  The threshold
   sits just below the observed minimum across T1–T8 (t3 at 0.9405 in
   both quick and full mode; every other workload is above 0.97). *)
let epoch_gate_threshold = 0.93

let epoch_gate rows =
  let is_sip r =
    String.length r.r_workload = 2
    && r.r_workload.[0] = 't'
    && match r.r_workload.[1] with '0' .. '9' -> true | _ -> false
  in
  let rate r =
    if r.r_checked = 0 then 0. else float_of_int r.r_fast_hits /. float_of_int r.r_checked
  in
  let fts = List.filter (fun r -> r.r_config = "fasttrack" && is_sip r) rows in
  List.iter
    (fun r ->
      if rate r < epoch_gate_threshold then begin
        Printf.printf "EPOCH FAST-PATH GATE FAILURE: %s hit rate %.4f < %.2f (%d/%d)\n"
          r.r_workload (rate r) epoch_gate_threshold r.r_fast_hits r.r_checked;
        exit 2
      end)
    fts;
  if fts <> [] then begin
    let lo = List.fold_left (fun acc r -> min acc (rate r)) 1. fts in
    Printf.printf
      "epoch fast-path gate OK: min hit rate %.4f across %d SIP row(s) (>= %.2f)\n%!" lo
      (List.length fts) epoch_gate_threshold
  end;
  (* informational: the representation win in wall-clock terms *)
  List.iter
    (fun f ->
      match
        List.find_opt (fun d -> d.r_config = "djit" && d.r_workload = f.r_workload) rows
      with
      | Some d when d.r_events_per_sec > 0. && f.r_events_per_sec > 0. ->
          Printf.printf "  fasttrack vs djit on %-18s %5.2fx (%.0f vs %.0f events/sec)\n"
            f.r_workload
            (f.r_events_per_sec /. d.r_events_per_sec)
            f.r_events_per_sec d.r_events_per_sec
      | _ -> ())
    (List.filter (fun r -> r.r_config = "fasttrack") rows)

(* --- static-hints suite --------------------------------------------- *)

(* A workload engineered so the static thread-locality hints matter:
   main keeps one long-lived buffer and re-touches every word between
   spawn/join pairs.  Each spawn/join advances main's thread segment,
   so without hints the first access per word per pass misses the
   Exclusive fast path (stale segment stamp); with the buffer pre-marked
   thread-local every access stays on the fast path.  The worker touches
   only locals — the program is race-free, so the report digest must be
   identical (and empty) in both rows. *)
let hints_source =
  {|
fn worker(k) {
  var i = 0;
  while (i < 40) { i = i + k; }
  return i;
}

fn main() {
  var buf = alloc(64);
  var pass = 0;
  while (pass < 6) {
    var i = 0;
    while (i < 64) {
      store(buf + i, load(buf + i) + pass);
      i = i + 1;
    }
    var t = spawn worker(1);
    join(t);
    pass = pass + 1;
  }
  free(buf);
  return 0;
}
|}

let hints_workload_name = "minicc-hints"

let hints_locs () =
  let module M = Raceguard_minicc in
  let ast =
    M.Preprocess.parse (M.Preprocess.with_builtins ()) ~file:"hints.mcc" hints_source
  in
  let r = M.Static_race.analyse ast in
  r.M.Static_race.hint_locs

let hints_run ~seed ~hints () =
  let module M = Raceguard_minicc in
  let interp, _, _ = M.Interp.compile ~annotate:true ~file:"hints.mcc" hints_source in
  let h = Det.Helgrind.create Det.Helgrind.hwlc_dr in
  (match hints with Some locs -> Det.Helgrind.set_static_hints h locs | None -> ());
  let vm = Vm.Engine.create ~config:{ Vm.Engine.default_config with seed } () in
  Vm.Engine.add_tool vm (Det.Helgrind.tool h);
  ignore (Vm.Engine.run vm (fun () -> M.Interp.run_main interp));
  h

let hints_configs =
  [
    ("minicc-hwlc+dr", Det.Helgrind.config_to_json Det.Helgrind.hwlc_dr);
    ("minicc-hwlc+dr+static-hints", Det.Helgrind.config_to_json Det.Helgrind.hwlc_dr);
  ]

(* Two extra rows (baseline vs hinted) plus a strict gate: byte-identical
   report digests AND a strictly higher fast-path hit rate, or exit 2. *)
let hints_rows ~quick ~seed =
  let locs = hints_locs () in
  let events =
    let module M = Raceguard_minicc in
    let interp, _, _ = M.Interp.compile ~annotate:true ~file:"hints.mcc" hints_source in
    let n = ref 0 in
    let vm = Vm.Engine.create ~config:{ Vm.Engine.default_config with seed } () in
    Vm.Engine.add_tool vm (Vm.Tool.of_fn "count" (fun _ -> incr n));
    ignore (Vm.Engine.run vm (fun () -> M.Interp.run_main interp));
    !n
  in
  let mk name hints =
    let h = hints_run ~seed ~hints () in
    let reports = Det.Helgrind.location_count h in
    let digest = digest_sigs (sigs_of (Det.Helgrind.locations h)) in
    let checked = Det.Helgrind.accesses_checked h in
    let hits = Det.Helgrind.fast_path_hits h in
    let reps = if quick then 3 else 10 in
    let t0 = Sys.time () in
    for _ = 1 to reps do
      ignore (hints_run ~seed ~hints ())
    done;
    let ns = (Sys.time () -. t0) /. float_of_int reps *. 1e9 in
    {
      r_workload = hints_workload_name;
      r_config = name;
      r_events = events;
      r_reports = reports;
      r_sig_digest = digest;
      r_ns_per_run = ns;
      r_events_per_sec = (if ns <= 0. then 0. else float_of_int events /. (ns /. 1e9));
      r_minor_words_per_event = 0.;
      r_normalized = 0.;
      (* no no-tool base: excluded from the perf-regression gate *)
      r_checked = checked;
      r_fast_hits = hits;
      r_interned = 0;
      r_gc_words_per_event = 0.;
    }
  in
  let base = mk "minicc-hwlc+dr" None in
  let hinted = mk "minicc-hwlc+dr+static-hints" (Some locs) in
  if hinted.r_sig_digest <> base.r_sig_digest then begin
    Printf.printf "STATIC-HINTS FIDELITY FAILURE: report digest %s (hints) vs %s (baseline)\n"
      hinted.r_sig_digest base.r_sig_digest;
    exit 2
  end;
  let rate r =
    if r.r_checked = 0 then 0. else float_of_int r.r_fast_hits /. float_of_int r.r_checked
  in
  if not (rate hinted > rate base) then begin
    Printf.printf "STATIC-HINTS GATE FAILURE: fast-path hit rate %.4f (hints) <= %.4f (baseline)\n"
      (rate hinted) (rate base);
    exit 2
  end;
  Printf.printf "static-hints gate OK: fast-path hit rate %.4f -> %.4f (%d hint site(s))\n%!"
    (rate base) (rate hinted) (List.length locs);
  [ base; hinted ]

(* --- chaos-off overhead suite --------------------------------------- *)

(* The fault-injection plane must compile to a no-op when its plan is
   empty: wiring an off injector into the transport, the server and the
   engine may not change the schedule (same events, same report digest)
   and may not cost more than 5% of throughput vs no injector at all. *)
let faults_workload_name = "sip-t2-chaos-off"

let faults_run ~seed ~injector () =
  let h = Det.Helgrind.create Det.Helgrind.hwlc_dr in
  let vm =
    Vm.Engine.create ~config:{ Vm.Engine.default_config with seed; faults = injector } ()
  in
  Vm.Engine.add_tool vm (Det.Helgrind.tool h);
  let transport = Sip.Transport.create ?faults:injector () in
  let server = { R.Runner.default.server with Sip.Proxy.faults = injector } in
  ignore
    (Vm.Engine.run vm (fun () ->
         ignore
           (Sip.Workload.run_test_case ~transport ~server_config:server Sip.Workload.t2 ())));
  h

let faults_events ~seed ~injector =
  let vm =
    Vm.Engine.create ~config:{ Vm.Engine.default_config with seed; faults = injector } ()
  in
  let n = ref 0 in
  Vm.Engine.add_tool vm (Vm.Tool.of_fn "count" (fun _ -> incr n));
  let transport = Sip.Transport.create ?faults:injector () in
  let server = { R.Runner.default.server with Sip.Proxy.faults = injector } in
  ignore
    (Vm.Engine.run vm (fun () ->
         ignore
           (Sip.Workload.run_test_case ~transport ~server_config:server Sip.Workload.t2 ())));
  !n

let faults_configs =
  [
    ("sip-hwlc+dr-no-injector", Det.Helgrind.config_to_json Det.Helgrind.hwlc_dr);
    ("sip-hwlc+dr-injector-off", Det.Helgrind.config_to_json Det.Helgrind.hwlc_dr);
  ]

let faults_rows ~quick ~seed =
  let off_injector () =
    Some (Raceguard_faults.Injector.create ~seed ~plan:Raceguard_faults.Plan.none)
  in
  let variants = [ ("sip-hwlc+dr-no-injector", fun () -> None);
                   ("sip-hwlc+dr-injector-off", off_injector) ] in
  let audited =
    List.map
      (fun (name, inj) ->
        let h = faults_run ~seed ~injector:(inj ()) () in
        let events = faults_events ~seed ~injector:(inj ()) in
        (name, inj, events, Det.Helgrind.location_count h,
         digest_sigs (sigs_of (Det.Helgrind.locations h))))
      variants
  in
  (* interleave the timed repetitions so clock drift hits both equally *)
  let reps = if quick then 4 else 12 in
  let spent = Hashtbl.create 4 in
  List.iter (fun (name, _, _, _, _) -> Hashtbl.replace spent name 0.) audited;
  List.iter (fun (_, inj, _, _, _) -> ignore (faults_run ~seed ~injector:(inj ()) ()))
    audited (* warm-up *);
  for _ = 1 to reps do
    List.iter
      (fun (name, inj, _, _, _) ->
        let injector = inj () in
        let t0 = Sys.time () in
        ignore (faults_run ~seed ~injector ());
        Hashtbl.replace spent name (Hashtbl.find spent name +. (Sys.time () -. t0)))
      audited
  done;
  let rows =
    List.map
      (fun (name, _, events, reports, digest) ->
        let ns = Hashtbl.find spent name /. float_of_int reps *. 1e9 in
        {
          r_workload = faults_workload_name;
          r_config = name;
          r_events = events;
          r_reports = reports;
          r_sig_digest = digest;
          r_ns_per_run = ns;
          r_events_per_sec = (if ns <= 0. then 0. else float_of_int events /. (ns /. 1e9));
          r_minor_words_per_event = 0.;
          r_normalized = 0.;
          (* gated in-process below, not via the baseline comparison *)
          r_checked = 0;
          r_fast_hits = 0;
          r_interned = 0;
          r_gc_words_per_event = 0.;
        })
      audited
  in
  let find name = List.find (fun r -> r.r_config = name) rows in
  let absent = find "sip-hwlc+dr-no-injector" in
  let off = find "sip-hwlc+dr-injector-off" in
  if off.r_sig_digest <> absent.r_sig_digest || off.r_events <> absent.r_events then begin
    Printf.printf
      "CHAOS-OFF FIDELITY FAILURE: off injector perturbed the run (%d/%s events/digest vs \
       %d/%s)\n"
      off.r_events off.r_sig_digest absent.r_events absent.r_sig_digest;
    exit 2
  end;
  let ratio =
    if absent.r_events_per_sec <= 0. then 1.
    else off.r_events_per_sec /. absent.r_events_per_sec
  in
  if ratio < 0.95 then begin
    Printf.printf
      "CHAOS-OFF OVERHEAD GATE FAILURE: normalized throughput %.3f < 0.95 of the \
       injector-free build\n"
      ratio;
    exit 2
  end;
  Printf.printf "chaos-off overhead gate OK: normalized throughput %.3f (>= 0.95)\n%!" ratio;
  rows

(* --- record/replay trace suite -------------------------------------- *)

(* Record mode is write-behind: the VM is deterministic in (workload,
   seed), so the monitored run logs only those inputs and the binary
   trace is materialized by a capture re-execution at save time — no
   per-event observer can stay inside a 10% budget against a VM that
   retires ~5M events/sec, and determinism means none is needed.  Four
   rows: the detection-off baseline, the record-mode monitored run
   (gated >= 0.90 normalized — the paper's "don't perturb the server"
   budget), the capture+encode pass (the real trace-production cost,
   reported rather than hidden), and the §4.5 payoff: events/sec when
   every registry configuration replays from the recorded bytes,
   VM-free.  Two audits run first and exit 2 on failure: the ride-along
   recorder (used when a live-analysis run is already paying for
   capture) must not perturb the detector's digest, and the write-behind
   materialization must reproduce the ride-along capture byte for
   byte. *)

module Trace = Raceguard_trace

let trace_workload_name = "sip-t2-trace"

let plain_run ~seed () =
  let vm = Vm.Engine.create ~config:{ Vm.Engine.default_config with seed } () in
  let transport = Sip.Transport.create () in
  ignore
    (Vm.Engine.run vm (fun () ->
         ignore
           (Sip.Workload.run_test_case ~transport ~server_config:R.Runner.default.server
              Sip.Workload.t2 ())))

let trace_run ~seed ~record () =
  let h = Det.Helgrind.create Det.Helgrind.hwlc_dr in
  let recorder =
    if record then
      Some
        (Det.Offline.create_recorder
           ~meta:[ ("workload", "T2"); ("seed", string_of_int seed) ]
           ())
    else None
  in
  let vm = Vm.Engine.create ~config:{ Vm.Engine.default_config with seed } () in
  Vm.Engine.add_tool vm (Det.Helgrind.tool h);
  (match recorder with Some r -> Vm.Engine.add_tool vm (Det.Offline.tool r) | None -> ());
  let transport = Sip.Transport.create () in
  ignore
    (Vm.Engine.run vm (fun () ->
         ignore
           (Sip.Workload.run_test_case ~transport ~server_config:R.Runner.default.server
              Sip.Workload.t2 ())));
  (h, recorder)

let trace_configs =
  [
    ("sip-plain-detection-off", Obs.Json.Str "no tools attached");
    ( "sip-record-write-behind",
      Obs.Json.Str "record mode: log (workload, seed), write-behind capture" );
    ("trace-capture-encode", Obs.Json.Str "deterministic capture re-execution + binary encode");
    ("trace-replay-registry", Obs.Json.Str "all registry configurations, offline");
  ]

let trace_rows ~quick ~seed =
  (* audit 1: the ride-along recorder is a pure observer — attaching it
     next to the detector must not move the report digest *)
  let audit record =
    let h, r = trace_run ~seed ~record () in
    (Det.Helgrind.location_count h, digest_sigs (sigs_of (Det.Helgrind.locations h)), r)
  in
  let base_reports, base_digest, _ = audit false in
  let rec_reports, rec_digest, recorder = audit true in
  let recorder = Option.get recorder in
  let events = Det.Offline.length recorder in
  if rec_digest <> base_digest || rec_reports <> base_reports then begin
    Printf.printf
      "RECORDER FIDELITY FAILURE: recorder perturbed the run (%d/%s vs %d/%s)\n" rec_reports
      rec_digest base_reports base_digest;
    exit 2
  end;
  (* audit 2: write-behind is sound only if the capture re-execution is
     deterministic — materializing the same (workload, seed) twice must
     produce byte-identical traces, with the same event count the
     ride-along recorder saw *)
  let deferred = R.Trace_ops.record_deferred ~seed Sip.Workload.t2 in
  let materialized = R.Trace_ops.materialize deferred in
  let mat_bytes = Det.Offline.contents materialized.R.Trace_ops.rec_recorder in
  let again =
    Det.Offline.contents (R.Trace_ops.record_test ~seed Sip.Workload.t2).R.Trace_ops.rec_recorder
  in
  if
    (not (String.equal mat_bytes again))
    || Det.Offline.length materialized.R.Trace_ops.rec_recorder <> events
  then begin
    Printf.printf
      "WRITE-BEHIND FIDELITY FAILURE: materialized trace diverges (%d bytes vs %d, %d \
       events vs %d)\n"
      (String.length mat_bytes) (String.length again)
      (Det.Offline.length materialized.R.Trace_ops.rec_recorder)
      events;
    exit 2
  end;
  (* interleave the timed repetitions so clock drift hits all legs
     equally: plain run | record-mode run | capture+encode pass *)
  let reps = if quick then 4 else 12 in
  let spent_plain = ref 0. and spent_record = ref 0. and spent_encode = ref 0. in
  plain_run ~seed ();
  ignore (R.Trace_ops.record_deferred ~seed Sip.Workload.t2) (* warm-up *);
  for _ = 1 to reps do
    let t0 = Sys.time () in
    plain_run ~seed ();
    spent_plain := !spent_plain +. (Sys.time () -. t0);
    let t1 = Sys.time () in
    ignore (R.Trace_ops.record_deferred ~seed Sip.Workload.t2);
    spent_record := !spent_record +. (Sys.time () -. t1);
    let t2 = Sys.time () in
    ignore
      (Det.Offline.contents
         (R.Trace_ops.record_test ~seed Sip.Workload.t2).R.Trace_ops.rec_recorder);
    spent_encode := !spent_encode +. (Sys.time () -. t2)
  done;
  let trace =
    match Trace.Reader.of_string mat_bytes with
    | Ok t -> t
    | Error (`Msg m) ->
        Printf.printf "TRACE DECODE FAILURE: %s\n" m;
        exit 2
  in
  ignore (Det.Offline.replay_all trace) (* warm-up *);
  let t0 = Sys.time () in
  let verdicts = Det.Offline.replay_all trace in
  let replay_s = Sys.time () -. t0 in
  let n_configs = List.length verdicts in
  let row name reports digest ns =
    {
      r_workload = trace_workload_name;
      r_config = name;
      r_events = events;
      r_reports = reports;
      r_sig_digest = digest;
      r_ns_per_run = ns;
      r_events_per_sec = (if ns <= 0. then 0. else float_of_int events /. (ns /. 1e9));
      r_minor_words_per_event = 0.;
      r_normalized = 0.;
      (* gated in-process below, not via the baseline comparison *)
      r_checked = 0;
      r_fast_hits = 0;
      r_interned = 0;
      r_gc_words_per_event = 0.;
    }
  in
  let plain =
    row "sip-plain-detection-off" 0 "-" (!spent_plain /. float_of_int reps *. 1e9)
  in
  let record =
    row "sip-record-write-behind" 0 "-" (!spent_record /. float_of_int reps *. 1e9)
  in
  let encode =
    row "trace-capture-encode" rec_reports rec_digest
      (!spent_encode /. float_of_int reps *. 1e9)
  in
  (* the replay row's events/sec counts events fed across all configs —
     the offline plane's aggregate analysis rate *)
  let replay =
    let total = events * n_configs in
    let r = row "trace-replay-registry" 0 "-" (replay_s *. 1e9) in
    {
      r with
      r_events = total;
      r_events_per_sec = (if replay_s <= 0. then 0. else float_of_int total /. replay_s);
    }
  in
  let ratio =
    if plain.r_events_per_sec <= 0. then 1.
    else record.r_events_per_sec /. plain.r_events_per_sec
  in
  if ratio < 0.90 then begin
    Printf.printf
      "RECORD OVERHEAD GATE FAILURE: record-mode normalized throughput %.3f < 0.90 of \
       the detection-off run\n"
      ratio;
    exit 2
  end;
  Printf.printf
    "record overhead gate OK: normalized throughput %.3f (>= 0.90 vs detection-off), %d \
     events, %.2f bytes/event, capture+encode %.0f events/sec, replay %.0f events/sec \
     across %d configs\n%!"
    ratio events
    (float_of_int (String.length mat_bytes) /. float_of_int events)
    encode.r_events_per_sec replay.r_events_per_sec n_configs;
  [ plain; record; encode; replay ]

(* --- automated-repair pipeline -------------------------------------- *)

(* The full raceguard-fix pipeline over an embedded racy program:
   parse -> static lockset pass -> dynamic detection across the
   verification seeds -> cross-check -> patch synthesis -> four-stage
   verification -> emitted-source recheck.  Gated in-process: the
   pipeline must produce >= 1 verified patch whose emitted source
   rechecks, or we exit 2.  The row's normalized value is the plain
   (no-tool, single-seed) run's wall time over the pipeline's — a
   machine-independent cost factor gated against the baseline. *)

let fix_source =
  {|
class Counter {
  var value;
}

fn locked_worker(c, m, n) {
  var i = 0;
  while (i < n) {
    lock (m) {
      c.value = c.value + 1;
    }
    i = i + 1;
  }
  return 0;
}

fn unlocked_worker(c, n) {
  var i = 0;
  while (i < n) {
    c.value = c.value + 1;
    i = i + 1;
  }
  return 0;
}

fn main() {
  var m = mutex("bench_guard");
  var c = new Counter();
  c.value = 0;
  var t1 = spawn locked_worker(c, m, 8);
  var t2 = spawn unlocked_worker(c, 8);
  join(t1);
  join(t2);
  print(c.value);
  delete c;
  return 0;
}
|}

let fix_rows ~quick ~seed:_ =
  let module Fix = Raceguard_fix in
  let module M = Raceguard_minicc in
  let reps = if quick then 2 else 4 in
  let run_fix () =
    match Fix.Engine.run ~file:"bench_fix.mcc" ~src:fix_source () with
    | Ok t -> t
    | Error e ->
        Printf.printf "FIX PIPELINE FAILURE: %s\n" e;
        exit 2
  in
  let run_plain () =
    let interp, _, _ = M.Interp.compile ~annotate:true ~file:"bench_fix.mcc" fix_source in
    let vm = Vm.Engine.create ~config:{ Vm.Engine.default_config with seed = 1 } () in
    ignore (Vm.Engine.run vm (fun () -> M.Interp.run_main interp));
    interp
  in
  let best reps f =
    let t = ref infinity and last = ref None in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !t then t := dt;
      last := Some r
    done;
    (Option.get !last, !t)
  in
  let result, t_fix = best reps run_fix in
  (* the plain leg is ~microseconds; many reps keep the min stable so
     the normalized ratio doesn't flap the baseline gate *)
  let _, t_plain = best (reps * 25) (fun () -> ignore (run_plain ())) in
  let verified =
    List.filter (fun p -> p.Fix.Engine.pr_verified) result.Fix.Engine.t_patches
  in
  if verified = [] || not result.Fix.Engine.t_recheck_ok then begin
    Printf.printf
      "FIX PIPELINE GATE FAILURE: %d verified patch(es), emitted-source recheck %s\n"
      (List.length verified)
      (if result.Fix.Engine.t_recheck_ok then "ok" else "FAILED");
    exit 2
  end;
  let digest =
    digest_sigs
      (List.map
         (fun p ->
           p.Fix.Engine.pr_plan.Fix.Synth.pl_strategy
           ^ "|" ^ p.Fix.Engine.pr_plan.Fix.Synth.pl_guard_desc)
         verified)
  in
  Printf.printf
    "fix pipeline gate OK: %d verified patch(es) in %.1f ms (plain run %.2f ms, cost \
     factor %.0fx)\n%!"
    (List.length verified) (t_fix *. 1e3) (t_plain *. 1e3)
    (if t_plain > 0. then t_fix /. t_plain else 0.);
  [
    {
      r_workload = "minicc-racy-counter";
      r_config = "fix-pipeline";
      r_events = List.length result.Fix.Engine.t_seeds;
      r_reports = List.length result.Fix.Engine.t_confirmed;
      r_sig_digest = digest;
      r_ns_per_run = t_fix *. 1e9;
      r_events_per_sec = (if t_fix <= 0. then 0. else 1. /. t_fix);
      r_minor_words_per_event = 0.;
      r_normalized = (if t_fix <= 0. then 0. else t_plain /. t_fix);
      r_checked = 0;
      r_fast_hits = 0;
      r_interned = 0;
      r_gc_words_per_event = 0.;
    };
  ]

(* --- sharded-registrar storm suite ----------------------------------- *)

(* The sharded registrar driven directly, VM-scheduled: 8 writer threads
   register a user population onto a Resilient striped table sized to
   double repeatedly under the load (initial 8 shards, grow_at 8), with
   a lookup tail mixing cross-shard reads into the storm.  Gated
   in-process: the post-run audit must be clean, every registration must
   have survived the resizes, and the table must have reached its shard
   ceiling — or exit 2.  Two rows: no-tool (normalized 0, exempt from
   the baseline gate) and HWLC+DR, whose normalized throughput the
   baseline comparison covers like any detector row. *)

let storm_workload_name = "registrar-storm"
let storm_loc = Loc.v "bench_storm.ml" "storm" 1

let storm_params ~quick = if quick then (2_000, 64) else (20_000, 256)

let storm_run ~quick ~seed tools =
  let users, max_shards = storm_params ~quick in
  let vm = Vm.Engine.create ~config:{ Vm.Engine.default_config with seed } () in
  List.iter (Vm.Engine.add_tool vm) tools;
  let reg = ref None in
  let outcome =
    Vm.Engine.run vm (fun () ->
        let alloc = Raceguard_cxxsim.Allocator.create Raceguard_cxxsim.Allocator.Direct in
        let stats = Sip.Stats.create () in
        let r =
          Sip.Registrar.create
            ~sharding:
              (Sip.Registrar.Sharded
                 { flavor = Sip.Registrar.Resilient; initial = 8; grow_at = 8; max_shards })
            ~alloc ~stats ()
        in
        reg := Some r;
        let workers = 8 in
        let per = users / workers in
        let threads =
          List.init workers (fun w ->
              Vm.Api.spawn ~loc:storm_loc ~name:(Printf.sprintf "storm%d" w) (fun () ->
                  for i = w * per to ((w + 1) * per) - 1 do
                    ignore
                      (Sip.Registrar.register r ~annotate:true
                         ~aor:(Printf.sprintf "u%d@bench" i)
                         ~contact:(Printf.sprintf "sip:c%d" i)
                         ~cseq:1 ~expires:1_000_000)
                  done;
                  (* lookup tail: cross-shard reads racing later growers *)
                  for i = w * per to (w * per) + (per / 4) - 1 do
                    match Sip.Registrar.lookup r ~aor:(Printf.sprintf "u%d@bench" i) with
                    | Some c -> Sip.Registrar.Refstring.release c
                    | None -> ()
                  done))
        in
        List.iter (fun t -> Vm.Api.join ~loc:storm_loc t) threads;
        ignore (Sip.Registrar.rebalance r))
  in
  (match outcome.Vm.Engine.failures with
  | [] -> ()
  | (_, name, e) :: _ ->
      Printf.printf "REGISTRAR STORM FAILURE: thread %s raised %s\n" name
        (Printexc.to_string e);
      exit 2);
  if outcome.Vm.Engine.deadlock <> None then begin
    Printf.printf "REGISTRAR STORM FAILURE: deadlock\n";
    exit 2
  end;
  Option.get !reg

let storm_configs =
  [
    ("storm-no-tool", other_config "none");
    ("storm-hwlc+dr", Det.Helgrind.config_to_json Det.Helgrind.hwlc_dr);
  ]

let storm_rows ~quick ~seed =
  let users, max_shards = storm_params ~quick in
  let events =
    let n = ref 0 in
    ignore (storm_run ~quick ~seed [ Vm.Tool.of_fn "count" (fun _ -> incr n) ]);
    !n
  in
  let variants =
    [
      ("storm-no-tool", fun () -> ([], (fun () -> 0), fun () -> []));
      ("storm-hwlc+dr", mk_helgrind Det.Helgrind.hwlc_dr);
    ]
  in
  let audited =
    List.map
      (fun (name, make) ->
        let tools, n_reports, signatures = make () in
        let before = Obs.Metrics.snapshot () in
        let gc0 = Gc.minor_words () in
        let r = storm_run ~quick ~seed tools in
        let gc_words = Gc.minor_words () -. gc0 in
        let m = Obs.Metrics.diff ~before (Obs.Metrics.snapshot ()) in
        let audit = Sip.Registrar.audit r in
        (* bound_aors, not size: the latter takes the shard locks and
           needs VM context, the former reads the host mirrors *)
        let bound = List.length (Sip.Registrar.bound_aors r) in
        if audit <> [] || bound <> users || Sip.Registrar.shard_count r <> max_shards
        then begin
          Printf.printf
            "REGISTRAR STORM GATE FAILURE (%s): bound %d/%d, %d/%d shards, audit [%s]\n" name
            bound users (Sip.Registrar.shard_count r) max_shards
            (String.concat ", " audit);
          exit 2
        end;
        Printf.printf
          "registrar storm gate OK (%s): %d users over %d shards, %d resize(s), %d \
           migration(s), audit clean\n%!"
          name users (Sip.Registrar.shard_count r) (Sip.Registrar.resizes r)
          (Sip.Registrar.migrations r);
        (name, make, n_reports (), digest_sigs (signatures ()), m, gc_words))
      variants
  in
  (* interleave the timed repetitions so clock drift hits both equally *)
  let reps = if quick then 3 else 6 in
  let spent = Hashtbl.create 4 in
  List.iter (fun (name, _, _, _, _, _) -> Hashtbl.replace spent name 0.) audited;
  List.iter
    (fun (_, make, _, _, _, _) ->
      let tools, _, _ = make () in
      ignore (storm_run ~quick ~seed tools))
    audited (* warm-up *);
  for _ = 1 to reps do
    List.iter
      (fun (name, make, _, _, _, _) ->
        let tools, _, _ = make () in
        let t0 = Sys.time () in
        ignore (storm_run ~quick ~seed tools);
        Hashtbl.replace spent name (Hashtbl.find spent name +. (Sys.time () -. t0)))
      audited
  done;
  let rows =
    List.map
      (fun (name, _, reports, digest, m, gc_words) ->
        let ns = Hashtbl.find spent name /. float_of_int reps *. 1e9 in
        let counter n = Option.value ~default:0 (Obs.Metrics.find_counter m n) in
        {
          r_workload = storm_workload_name;
          r_config = name;
          r_events = events;
          r_reports = reports;
          r_sig_digest = digest;
          r_ns_per_run = ns;
          r_events_per_sec = (if ns <= 0. then 0. else float_of_int events /. (ns /. 1e9));
          r_minor_words_per_event = 0.;
          r_normalized = 0.;
          (* filled below for the detector row *)
          r_checked = counter "detector.helgrind.accesses_checked";
          r_fast_hits = counter "detector.helgrind.fast_path_hits";
          r_interned = 0;
          r_gc_words_per_event =
            (if events = 0 then 0. else gc_words /. float_of_int events);
        })
      audited
  in
  let base = List.find (fun r -> r.r_config = "storm-no-tool") rows in
  List.map
    (fun r ->
      if r.r_config = "storm-no-tool" || base.r_events_per_sec <= 0. then r
      else { r with r_normalized = r.r_events_per_sec /. base.r_events_per_sec })
    rows

(* --- domain-scaling suite ------------------------------------------- *)

(* The quick chaos grid run whole, once per domain count: the
   work-stealing pool's headline number (cells/sec vs domains) plus the
   determinism pin that justifies it — the concatenated per-cell
   digests must be byte-identical on every leg, or we exit 2.  The
   quick grid bounds the suite's runtime even in full mode; speedup is
   relative to the 1-domain leg and is only meaningful on runners with
   enough cores (CI checks it conditionally). *)

type scaling_row = {
  sc_domains : int;
  sc_cells : int;
  sc_seconds : float;
  sc_cells_per_sec : float;
  sc_speedup : float;  (** vs the 1-domain leg of the same process *)
  sc_steals : int;
  sc_digest : string;  (** MD5 over the per-cell digests, in cell order *)
}

let scaling_domains = [ 1; 2; 4; 8 ]

let scaling_rows ~seed =
  let config = { R.Chaos.quick with R.Chaos.seed } in
  let grid = R.Chaos.grid config in
  let leg domains =
    let t0 = Unix.gettimeofday () in
    let cells, stats =
      Raceguard_par.Par.map_cells_stats ~domains
        (fun (plan, tc, resilient) -> R.Chaos.run_cell config ~plan ~resilient tc)
        grid
    in
    let seconds = Unix.gettimeofday () -. t0 in
    let digest =
      Digest.to_hex
        (Digest.string
           (String.concat "\n"
              (Array.to_list
                 (Array.map
                    (fun (c : R.Chaos.cell) ->
                      Printf.sprintf "%s|%s|%b|%s|%s" c.R.Chaos.cl_plan c.R.Chaos.cl_test
                        c.R.Chaos.cl_resilient c.R.Chaos.cl_sig_digest
                        c.R.Chaos.cl_behavior_digest)
                    cells))))
    in
    {
      sc_domains = domains;
      sc_cells = Array.length cells;
      sc_seconds = seconds;
      sc_cells_per_sec =
        (if seconds <= 0. then 0. else float_of_int (Array.length cells) /. seconds);
      sc_speedup = 1.;  (* filled below *)
      sc_steals = stats.Raceguard_par.Par.st_steals;
      sc_digest = digest;
    }
  in
  let legs = List.map leg scaling_domains in
  let base = List.hd legs in
  List.iter
    (fun l ->
      if l.sc_digest <> base.sc_digest then begin
        Printf.printf
          "SCALING DETERMINISM FAILURE: %d-domain digest %s differs from 1-domain %s\n"
          l.sc_domains l.sc_digest base.sc_digest;
        exit 2
      end)
    legs;
  let legs =
    List.map
      (fun l ->
        {
          l with
          sc_speedup = (if l.sc_seconds <= 0. then 0. else base.sc_seconds /. l.sc_seconds);
        })
      legs
  in
  Printf.printf "scaling determinism OK: digest %s identical across domains %s\n%!"
    base.sc_digest
    (String.concat "/" (List.map string_of_int scaling_domains));
  legs

(* --- JSON output --------------------------------------------------- *)

let fl x = if Float.is_nan x || Float.is_integer x then Printf.sprintf "%.1f" x else Printf.sprintf "%.6g" x

let row_json r =
  let hit_rate =
    if r.r_checked = 0 then 0. else float_of_int r.r_fast_hits /. float_of_int r.r_checked
  in
  Printf.sprintf
    "{\"workload\": \"%s\", \"config\": \"%s\", \"events\": %d, \"reports\": %d, \
     \"sig_digest\": \"%s\", \"ns_per_run\": %s, \"events_per_sec\": %s, \
     \"minor_words_per_event\": %s, \"normalized\": %s, \"metrics\": \
     {\"accesses_checked\": %d, \"fast_path_hits\": %d, \"fast_path_hit_rate\": %s, \
     \"lockset_interned\": %d, \"gc_minor_words_per_event\": %s}}"
    r.r_workload r.r_config r.r_events r.r_reports r.r_sig_digest (fl r.r_ns_per_run)
    (fl r.r_events_per_sec) (fl r.r_minor_words_per_event) (fl r.r_normalized) r.r_checked
    r.r_fast_hits (fl hit_rate) r.r_interned
    (fl r.r_gc_words_per_event)

let scaling_json l =
  Printf.sprintf
    "{\"domains\": %d, \"cells\": %d, \"seconds\": %s, \"cells_per_sec\": %s, \"speedup\": \
     %s, \"steals\": %d, \"digest\": \"%s\"}"
    l.sc_domains l.sc_cells (fl l.sc_seconds) (fl l.sc_cells_per_sec) (fl l.sc_speedup)
    l.sc_steals l.sc_digest

let write_json ~out ~quick ~seed ~domains ~scaling rows =
  let oc = open_out out in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"schema\": \"raceguard-bench/2\",\n";
  Printf.fprintf oc "  \"seed\": %d,\n" seed;
  Printf.fprintf oc "  \"mode\": \"%s\",\n" (if quick then "quick" else "full");
  Printf.fprintf oc "  \"domains\": %d,\n" domains;
  Printf.fprintf oc "  \"scaling\": [\n";
  let nsc = List.length scaling in
  List.iteri
    (fun i l ->
      Printf.fprintf oc "    %s%s\n" (scaling_json l) (if i = nsc - 1 then "" else ","))
    scaling;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"configs\": {\n";
  let configs =
    List.map (fun s -> (s.s_name, s.s_config)) subjects
    @ hints_configs @ faults_configs @ trace_configs @ storm_configs
  in
  let ns = List.length configs in
  List.iteri
    (fun i (name, cfg) ->
      Printf.fprintf oc "    \"%s\": %s%s\n" name (Obs.Json.to_string cfg)
        (if i = ns - 1 then "" else ","))
    configs;
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"results\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i r -> Printf.fprintf oc "    %s%s\n" (row_json r) (if i = n - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let print_summary rows =
  Printf.printf "%-18s %-18s %10s %12s %8s %8s\n" "workload" "config" "events"
    "events/sec" "norm" "reports";
  List.iter
    (fun r ->
      Printf.printf "%-18s %-18s %10d %12.0f %8.3f %8d\n" r.r_workload r.r_config r.r_events
        r.r_events_per_sec r.r_normalized r.r_reports)
    rows

(* --- baseline comparison ------------------------------------------- *)

(* minimal field extraction from the one-object-per-line JSON we emit *)
let json_str_field line key =
  let pat = "\"" ^ key ^ "\": \"" in
  match String.index_opt line '{' with
  | None -> None
  | Some _ -> (
      let rec find i =
        if i + String.length pat > String.length line then None
        else if String.sub line i (String.length pat) = pat then Some (i + String.length pat)
        else find (i + 1)
      in
      match find 0 with
      | None -> None
      | Some start ->
          let stop = String.index_from line start '"' in
          Some (String.sub line start (stop - start)))

let json_num_field line key =
  let pat = "\"" ^ key ^ "\": " in
  let rec find i =
    if i + String.length pat > String.length line then None
    else if String.sub line i (String.length pat) = pat then Some (i + String.length pat)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      let stop = ref start in
      while
        !stop < String.length line
        && (match line.[!stop] with
           | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' | 'n' | 'a' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.sub line start (!stop - start))

(* Tolerates both the one-row-per-line output [write_json] emits and a
   pretty-printed (one-field-per-line) baseline: fields are tracked as
   they stream past and a row is flushed when its "normalized" field
   arrives — [row_json] fixes the field order within a row, so the
   pending workload/config always belong to that row. *)
let load_baseline file =
  let ic = open_in file in
  let rows = ref [] in
  let cur_w = ref None and cur_c = ref None and cur_eps = ref 0. in
  (try
     while true do
       let line = input_line ic in
       (match json_str_field line "workload" with Some w -> cur_w := Some w | None -> ());
       (match json_str_field line "config" with Some c -> cur_c := Some c | None -> ());
       (match json_num_field line "events_per_sec" with
       | Some e -> cur_eps := e
       | None -> ());
       match json_num_field line "normalized" with
       | Some norm -> (
           match (!cur_w, !cur_c) with
           | Some w, Some c ->
               rows := ((w, c), (norm, !cur_eps)) :: !rows;
               cur_w := None;
               cur_c := None;
               cur_eps := 0.
           | _ -> ())
       | None -> ()
     done
   with End_of_file -> close_in ic);
  !rows

let compare_baseline ~threshold_pct ~baseline rows =
  let base = load_baseline baseline in
  let tolerance = 1. -. (threshold_pct /. 100.) in
  let regressions =
    List.filter_map
      (fun r ->
        if r.r_config = "no-tool" then None
        else
          match List.assoc_opt (r.r_workload, r.r_config) base with
          | None | Some (0., _) -> None
          | Some (b_norm, _) ->
              (* normalized throughput is machine-speed independent:
                 detector events/sec relative to the no-tool run of the
                 same binary on the same machine *)
              let ratio = r.r_normalized /. b_norm in
              if ratio < tolerance then Some (r, b_norm, ratio) else None)
      rows
  in
  (match regressions with
  | [] -> Printf.printf "baseline comparison OK (threshold %.0f%%, %s)\n" threshold_pct baseline
  | rs ->
      Printf.printf "PERF REGRESSION vs %s (threshold %.0f%%):\n" baseline threshold_pct;
      List.iter
        (fun (r, b_norm, ratio) ->
          Printf.printf "  %s/%s: normalized %.3f vs baseline %.3f (%.0f%% of baseline)\n"
            r.r_workload r.r_config r.r_normalized b_norm (ratio *. 100.))
        rs);
  regressions = []

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json_mode = ref false
  and quick = ref false
  and seed_ref = ref seed
  and domains = ref 1
  and out = ref "BENCH_detector.json"
  and baseline = ref None
  and threshold = ref 25.
  and positional = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
        json_mode := true;
        parse rest
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--seed" :: n :: rest ->
        seed_ref := int_of_string n;
        parse rest
    | "--domains" :: n :: rest ->
        domains := int_of_string n;
        parse rest
    | "--out" :: f :: rest ->
        out := f;
        parse rest
    | "--compare" :: f :: rest ->
        json_mode := true;
        baseline := Some f;
        parse rest
    | "--max-regression" :: p :: rest ->
        threshold := float_of_string p;
        parse rest
    | x :: rest ->
        positional := x :: !positional;
        parse rest
  in
  parse args;
  if !json_mode then begin
    let domains = Raceguard_par.Par.resolve !domains in
    Printf.printf "throughput suite: mode=%s seed=%d domains=%d\n%!"
      (if !quick then "quick" else "full")
      !seed_ref domains;
    let rows = run_throughput ~quick:!quick ~seed:!seed_ref ~domains in
    epoch_gate rows;
    let rows = rows @ hints_rows ~quick:!quick ~seed:!seed_ref in
    let rows = rows @ faults_rows ~quick:!quick ~seed:!seed_ref in
    let rows = rows @ trace_rows ~quick:!quick ~seed:!seed_ref in
    let rows = rows @ fix_rows ~quick:!quick ~seed:!seed_ref in
    let rows = rows @ storm_rows ~quick:!quick ~seed:!seed_ref in
    let scaling = scaling_rows ~seed:!seed_ref in
    write_json ~out:!out ~quick:!quick ~seed:!seed_ref ~domains ~scaling rows;
    print_summary rows;
    Printf.printf "%-10s %8s %10s %14s %8s %8s\n" "scaling" "domains" "cells"
      "cells/sec" "speedup" "steals";
    List.iter
      (fun l ->
        Printf.printf "%-10s %8d %10d %14.2f %8.2f %8d\n" "" l.sc_domains l.sc_cells
          l.sc_cells_per_sec l.sc_speedup l.sc_steals)
      scaling;
    Printf.printf "wrote %s\n" !out;
    match !baseline with
    | Some b -> if not (compare_baseline ~threshold_pct:!threshold ~baseline:b rows) then exit 2
    | None -> ()
  end
  else begin
    let what = match !positional with [ x ] -> x | _ -> "all" in
    if what = "tables" || what = "all" then run_tables ();
    if what = "timings" || what = "all" then run_timings ()
  end
