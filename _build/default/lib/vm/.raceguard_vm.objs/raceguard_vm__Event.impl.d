lib/vm/event.ml: Eff Fmt Raceguard_util
