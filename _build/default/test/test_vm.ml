(* Tests for the virtual machine: scheduling, synchronisation objects,
   memory, events, determinism, deadlock detection. *)

module Vm = Raceguard_vm
module Engine = Vm.Engine
module Api = Vm.Api
module Event = Vm.Event
module Loc = Raceguard_util.Loc

let loc = Loc.v "test_vm.ml" "test" 1

let run ?(seed = 1) ?(policy = Engine.Random_seeded) ?tool f =
  let vm = Engine.create ~config:{ Engine.default_config with seed; policy } () in
  (match tool with Some t -> Engine.add_tool vm t | None -> ());
  let result = ref None in
  let outcome = Engine.run vm (fun () -> result := Some (f ())) in
  (outcome, !result)

let check_clean (outcome : Engine.outcome) =
  Alcotest.(check bool) "no deadlock" true (outcome.deadlock = None);
  (match outcome.failures with
  | [] -> ()
  | (_, name, e) :: _ ->
      Alcotest.failf "thread %s raised %s" name (Printexc.to_string e));
  ()

(* --- basic execution ------------------------------------------------ *)

let test_mutex_counter () =
  let outcome, result =
    run (fun () ->
        let c = Api.alloc ~loc 1 in
        let m = Api.Mutex.create ~loc "m" in
        let worker () =
          for _ = 1 to 25 do
            Api.Mutex.with_lock ~loc m (fun () ->
                Api.write ~loc c (Api.read ~loc c + 1))
          done
        in
        let ts = List.init 4 (fun i -> Api.spawn ~loc ~name:(Printf.sprintf "w%d" i) worker) in
        List.iter (Api.join ~loc) ts;
        Api.read ~loc c)
  in
  check_clean outcome;
  Alcotest.(check (option int)) "no lost updates under the mutex" (Some 100) result

let test_racy_counter_loses_updates () =
  (* sanity of the simulation itself: an unlocked RMW under the
     random scheduler actually loses updates for some seed *)
  let lost_somewhere =
    List.exists
      (fun seed ->
        let _, result =
          run ~seed (fun () ->
              let c = Api.alloc ~loc 1 in
              let worker () =
                for _ = 1 to 20 do
                  let v = Api.read ~loc c in
                  Api.write ~loc c (v + 1)
                done
              in
              let t1 = Api.spawn ~loc ~name:"a" worker in
              let t2 = Api.spawn ~loc ~name:"b" worker in
              Api.join ~loc t1;
              Api.join ~loc t2;
              Api.read ~loc c)
        in
        result <> Some 40)
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check bool) "some schedule loses an update" true lost_somewhere

let test_deterministic_same_seed () =
  let trace seed =
    let events = ref [] in
    let tool = Vm.Tool.of_fn "rec" (fun e -> events := Fmt.str "%a" Event.pp e :: !events) in
    let outcome, _ =
      run ~seed ~tool (fun () ->
          let c = Api.alloc ~loc 1 in
          let worker () = Api.write ~loc c (Api.read ~loc c + 1) in
          let t1 = Api.spawn ~loc ~name:"a" worker in
          let t2 = Api.spawn ~loc ~name:"b" worker in
          Api.join ~loc t1;
          Api.join ~loc t2)
    in
    check_clean outcome;
    List.rev !events
  in
  Alcotest.(check (list string)) "same seed, same trace" (trace 9) (trace 9);
  Alcotest.(check bool) "different seeds usually differ" true (trace 1 <> trace 3 || trace 2 <> trace 5)

let test_join_after_exit () =
  let outcome, result =
    run (fun () ->
        let t = Api.spawn ~loc ~name:"quick" (fun () -> ()) in
        (* let it finish first *)
        Api.sleep 10;
        Api.join ~loc t;
        42)
  in
  check_clean outcome;
  Alcotest.(check (option int)) "join of finished thread" (Some 42) result

let test_trylock () =
  let outcome, result =
    run (fun () ->
        let m = Api.Mutex.create ~loc "m" in
        let first = Api.Mutex.try_lock ~loc m in
        let second = Api.Mutex.try_lock ~loc m in
        Api.Mutex.unlock ~loc m;
        let third = Api.Mutex.try_lock ~loc m in
        Api.Mutex.unlock ~loc m;
        (first, second, third))
  in
  check_clean outcome;
  Alcotest.(check (option (triple bool bool bool)))
    "trylock semantics" (Some (true, false, true)) result

let test_mutex_misuse () =
  let outcome, _ =
    run (fun () ->
        let m = Api.Mutex.create ~loc "m" in
        Api.Mutex.unlock ~loc m)
  in
  Alcotest.(check bool) "unlock of unheld mutex fails the thread" true
    (List.exists (fun (_, _, e) -> match e with Engine.Misuse _ -> true | _ -> false)
       outcome.failures)

let test_double_free () =
  let outcome, _ =
    run (fun () ->
        let a = Api.alloc ~loc 4 in
        Api.free ~loc a;
        Api.free ~loc a)
  in
  Alcotest.(check bool) "double free raises" true (outcome.failures <> [])

(* --- rwlock --------------------------------------------------------- *)

let test_rwlock_readers_concurrent () =
  (* two readers can hold the lock at the same time: both acquire
     before either releases, observed through the event stream *)
  let acquired = ref 0 and max_concurrent = ref 0 in
  let tool =
    Vm.Tool.of_fn "rw" (fun e ->
        match e with
        | Event.E_acquire { lock = Event.Rwlock _; _ } ->
            incr acquired;
            if !acquired > !max_concurrent then max_concurrent := !acquired
        | Event.E_release { lock = Event.Rwlock _; _ } -> decr acquired
        | _ -> ())
  in
  let outcome, _ =
    run ~seed:3 ~tool (fun () ->
        let rw = Api.Rwlock.create ~loc "rw" in
        let gate = Api.Sem.create ~loc ~init:0 "gate" in
        let reader () =
          Api.Rwlock.rdlock ~loc rw;
          Api.Sem.post ~loc gate;
          Api.sleep 20;
          Api.Rwlock.unlock ~loc rw
        in
        let t1 = Api.spawn ~loc ~name:"r1" reader in
        let t2 = Api.spawn ~loc ~name:"r2" reader in
        Api.Sem.wait ~loc gate;
        Api.Sem.wait ~loc gate;
        Api.join ~loc t1;
        Api.join ~loc t2)
  in
  check_clean outcome;
  Alcotest.(check int) "two concurrent readers" 2 !max_concurrent

let test_rwlock_writer_exclusive () =
  (* a writer never overlaps a reader: track with a shadow flag *)
  let outcome, result =
    run ~seed:11 (fun () ->
        let rw = Api.Rwlock.create ~loc "rw" in
        let data = Api.alloc ~loc 1 in
        let violations = ref 0 in
        let writer () =
          for _ = 1 to 5 do
            Api.Rwlock.with_wrlock ~loc rw (fun () ->
                Api.write ~loc data 1;
                Api.yield ();
                Api.write ~loc data 0)
          done
        in
        let reader () =
          for _ = 1 to 10 do
            Api.Rwlock.with_rdlock ~loc rw (fun () ->
                if Api.read ~loc data <> 0 then incr violations)
          done
        in
        let w = Api.spawn ~loc ~name:"w" writer in
        let r1 = Api.spawn ~loc ~name:"r1" reader in
        let r2 = Api.spawn ~loc ~name:"r2" reader in
        Api.join ~loc w;
        Api.join ~loc r1;
        Api.join ~loc r2;
        !violations)
  in
  check_clean outcome;
  Alcotest.(check (option int)) "writer exclusion holds" (Some 0) result

(* --- condvars and semaphores ---------------------------------------- *)

let test_condvar_producer_consumer () =
  let outcome, result =
    run ~seed:17 (fun () ->
        let m = Api.Mutex.create ~loc "m" in
        let cv = Api.Cond.create ~loc "cv" in
        let slot = Api.alloc ~loc 1 in
        let sum = ref 0 in
        let consumer () =
          for _ = 1 to 10 do
            Api.Mutex.lock ~loc m;
            while Api.read ~loc slot = 0 do
              Api.Cond.wait ~loc cv m
            done;
            sum := !sum + Api.read ~loc slot;
            Api.write ~loc slot 0;
            Api.Cond.signal ~loc cv;
            Api.Mutex.unlock ~loc m
          done
        in
        let producer () =
          for i = 1 to 10 do
            Api.Mutex.lock ~loc m;
            while Api.read ~loc slot <> 0 do
              Api.Cond.wait ~loc cv m
            done;
            Api.write ~loc slot i;
            Api.Cond.signal ~loc cv;
            Api.Mutex.unlock ~loc m
          done
        in
        let c = Api.spawn ~loc ~name:"consumer" consumer in
        let p = Api.spawn ~loc ~name:"producer" producer in
        Api.join ~loc c;
        Api.join ~loc p;
        !sum)
  in
  check_clean outcome;
  Alcotest.(check (option int)) "all items consumed" (Some 55) result

let test_cond_broadcast () =
  let outcome, result =
    run ~seed:23 (fun () ->
        let m = Api.Mutex.create ~loc "m" in
        let cv = Api.Cond.create ~loc "cv" in
        let go = Api.alloc ~loc 1 in
        let woke = ref 0 in
        let waiter () =
          Api.Mutex.lock ~loc m;
          while Api.read ~loc go = 0 do
            Api.Cond.wait ~loc cv m
          done;
          incr woke;
          Api.Mutex.unlock ~loc m
        in
        let ts = List.init 5 (fun i -> Api.spawn ~loc ~name:(Printf.sprintf "w%d" i) waiter) in
        Api.sleep 30;
        Api.Mutex.lock ~loc m;
        Api.write ~loc go 1;
        Api.Cond.broadcast ~loc cv;
        Api.Mutex.unlock ~loc m;
        List.iter (Api.join ~loc) ts;
        !woke)
  in
  check_clean outcome;
  Alcotest.(check (option int)) "broadcast wakes everyone" (Some 5) result

let test_semaphore () =
  let outcome, result =
    run (fun () ->
        let s = Api.Sem.create ~loc ~init:2 "s" in
        let inside = Api.alloc ~loc 1 in
        let peak = ref 0 in
        let worker () =
          Api.Sem.wait ~loc s;
          let n = Api.read ~loc inside + 1 in
          Api.write ~loc inside n;
          if n > !peak then peak := n;
          Api.sleep 5;
          Api.write ~loc inside (Api.read ~loc inside - 1);
          Api.Sem.post ~loc s
        in
        let ts = List.init 6 (fun i -> Api.spawn ~loc ~name:(Printf.sprintf "w%d" i) worker) in
        List.iter (Api.join ~loc) ts;
        !peak)
  in
  check_clean outcome;
  (match result with
  | Some peak -> Alcotest.(check bool) "at most 2 inside" true (peak <= 2 && peak >= 1)
  | None -> Alcotest.fail "no result")

(* --- msg queue and thread pool --------------------------------------- *)

let test_msg_queue_fifo () =
  let outcome, result =
    run (fun () ->
        let q = Vm.Msg_queue.create ~name:"q" ~capacity:3 () in
        let received = ref [] in
        let consumer () =
          for _ = 1 to 10 do
            received := Vm.Msg_queue.get q :: !received
          done
        in
        let c = Api.spawn ~loc ~name:"c" consumer in
        for i = 1 to 10 do
          Vm.Msg_queue.put q (i * 11)
        done;
        Api.join ~loc c;
        List.rev !received)
  in
  check_clean outcome;
  Alcotest.(check (option (list int)))
    "FIFO order, bounded queue" (Some (List.init 10 (fun i -> (i + 1) * 11))) result

let test_thread_pool_processes_all () =
  let outcome, result =
    run ~seed:29 (fun () ->
        let processed = ref [] in
        let pool =
          Vm.Thread_pool.create ~name:"pool" ~workers:3 ~queue_capacity:4
            ~handler:(fun task -> processed := task :: !processed)
            ()
        in
        for i = 1 to 20 do
          Vm.Thread_pool.submit pool i
        done;
        Vm.Thread_pool.shutdown pool;
        List.sort compare !processed)
  in
  check_clean outcome;
  Alcotest.(check (option (list int)))
    "every task processed exactly once" (Some (List.init 20 (fun i -> i + 1))) result

(* --- deadlock detection ---------------------------------------------- *)

let test_deadlock_detected () =
  let outcome, _ =
    run ~policy:Engine.Round_robin (fun () ->
        let a = Api.Mutex.create ~loc "A" and b = Api.Mutex.create ~loc "B" in
        let t1 =
          Api.spawn ~loc ~name:"t1" (fun () ->
              Api.Mutex.lock ~loc a;
              Api.yield ();
              Api.Mutex.lock ~loc b;
              Api.Mutex.unlock ~loc b;
              Api.Mutex.unlock ~loc a)
        in
        let t2 =
          Api.spawn ~loc ~name:"t2" (fun () ->
              Api.Mutex.lock ~loc b;
              Api.yield ();
              Api.Mutex.lock ~loc a;
              Api.Mutex.unlock ~loc a;
              Api.Mutex.unlock ~loc b)
        in
        Api.join ~loc t1;
        Api.join ~loc t2)
  in
  match outcome.deadlock with
  | Some d -> Alcotest.(check int) "two threads in the cycle" 2 (List.length d.dl_cycle)
  | None -> Alcotest.fail "deadlock not detected"

let test_lost_signal_hang () =
  let outcome, _ =
    run (fun () ->
        let m = Api.Mutex.create ~loc "m" in
        let cv = Api.Cond.create ~loc "cv" in
        Api.Mutex.lock ~loc m;
        Api.Cond.wait ~loc cv m
        (* nobody will ever signal *))
  in
  match outcome.deadlock with
  | Some d ->
      Alcotest.(check bool) "reported as hang, not cycle" true
        (d.dl_cycle = [] && d.dl_stuck <> [])
  | None -> Alcotest.fail "hang not detected"

(* --- clock / sleep / atomic ------------------------------------------ *)

let test_sleep_advances_clock () =
  let outcome, result =
    run (fun () ->
        let t0 = Api.now () in
        Api.sleep 100;
        Api.now () - t0)
  in
  check_clean outcome;
  match result with
  | Some d -> Alcotest.(check bool) "clock advanced by at least the sleep" true (d >= 100)
  | None -> Alcotest.fail "no result"

let test_atomic_rmw_indivisible () =
  (* atomic increments never lose updates, unlike the racy test above *)
  let outcome, result =
    run ~seed:31 (fun () ->
        let c = Api.alloc ~loc 1 in
        let worker () =
          for _ = 1 to 50 do
            ignore (Api.atomic_incr ~loc c)
          done
        in
        let ts = List.init 4 (fun i -> Api.spawn ~loc ~name:(Printf.sprintf "w%d" i) worker) in
        List.iter (Api.join ~loc) ts;
        Api.read ~loc c)
  in
  check_clean outcome;
  Alcotest.(check (option int)) "atomics never lose updates" (Some 200) result

let test_atomic_cas () =
  let outcome, result =
    run (fun () ->
        let a = Api.alloc ~loc 1 in
        Api.write ~loc a 5;
        let ok = Api.atomic_cas ~loc a ~expected:5 ~desired:9 in
        let not_ok = Api.atomic_cas ~loc a ~expected:5 ~desired:1 in
        (ok, not_ok, Api.read ~loc a))
  in
  check_clean outcome;
  Alcotest.(check (option (triple bool bool int))) "cas" (Some (true, false, 9)) result

let test_op_budget () =
  let vm =
    Engine.create ~config:{ Engine.default_config with max_ops = 1000 } ()
  in
  let outcome =
    Engine.run vm (fun () ->
        while true do
          Api.yield ()
        done)
  in
  Alcotest.(check bool) "livelock cut off by op budget" true (outcome.deadlock <> None)

let test_frames_stack () =
  let stacks = ref [] in
  let tool =
    Vm.Tool.of_fn "frames" (fun _ -> ())
  in
  ignore tool;
  let tool2 =
    Vm.Tool.make ~name:"frames" ~on_event:(fun ctx e ->
        match e with
        | Event.E_write { tid; _ } -> stacks := ctx.stack_of tid :: !stacks
        | _ -> ())
  in
  let outcome, _ =
    run ~tool:tool2 (fun () ->
        let a = Api.alloc ~loc 1 in
        Api.with_frame (Loc.v "f.c" "outer" 1) (fun () ->
            Api.with_frame (Loc.v "f.c" "inner" 2) (fun () -> Api.write ~loc a 1)))
  in
  check_clean outcome;
  match !stacks with
  | [ stack ] ->
      Alcotest.(check (list string)) "frames innermost first"
        [ "inner (f.c:2)"; "outer (f.c:1)"; "main (<vm>:0)" ]
        (List.map Loc.to_string stack)
  | l -> Alcotest.failf "expected exactly one write, saw %d" (List.length l)

let test_sticky_policy_fewer_switches () =
  let switches policy =
    let outcome, _ =
      run ~policy (fun () ->
          let a = Api.alloc ~loc 1 in
          let w () =
            for _ = 1 to 20 do
              Api.write ~loc a 1
            done
          in
          let t1 = Api.spawn ~loc ~name:"a" w in
          let t2 = Api.spawn ~loc ~name:"b" w in
          Api.join ~loc t1;
          Api.join ~loc t2)
    in
    outcome.stats.scheduler_switches
  in
  (* Sticky runs each thread to completion; both policies do the same
     amount of work, but Sticky should never context-switch more *)
  Alcotest.(check bool) "sticky <= round-robin switching" true
    (switches Engine.Sticky <= switches Engine.Round_robin)

let test_memory_no_reuse () =
  let vm =
    Engine.create ~config:{ Engine.default_config with reuse_memory = false } ()
  in
  let addrs = ref (0, 0) in
  let outcome =
    Engine.run vm (fun () ->
        let a = Api.alloc ~loc 4 in
        Api.free ~loc a;
        let b = Api.alloc ~loc 4 in
        addrs := (a, b))
  in
  assert (outcome.failures = []);
  let a, b = !addrs in
  Alcotest.(check bool) "fresh addresses without reuse" true (a <> b)

let test_memory_reuse_lifo () =
  let addrs = ref (0, 0) in
  let outcome, _ =
    run (fun () ->
        let a = Api.alloc ~loc 4 in
        Api.free ~loc a;
        let b = Api.alloc ~loc 4 in
        addrs := (a, b))
  in
  check_clean outcome;
  let a, b = !addrs in
  Alcotest.(check int) "same-size block recycled" a b

let test_queue_blocks_when_full () =
  (* capacity-1 queue: the producer must block on the second put until
     the consumer drains one element *)
  let outcome, result =
    run ~seed:13 (fun () ->
        let q = Vm.Msg_queue.create ~name:"q1" ~capacity:1 () in
        let order = ref [] in
        let producer () =
          Vm.Msg_queue.put q 1;
          order := "put1" :: !order;
          Vm.Msg_queue.put q 2;
          order := "put2" :: !order
        in
        let t = Api.spawn ~loc ~name:"producer" producer in
        Api.sleep 30;
        order := "get-start" :: !order;
        let a = Vm.Msg_queue.get q in
        let b = Vm.Msg_queue.get q in
        Api.join ~loc t;
        (List.rev !order, a, b))
  in
  check_clean outcome;
  match result with
  | Some (order, a, b) ->
      Alcotest.(check (pair int int)) "values in order" (1, 2) (a, b);
      (* put2 cannot complete before the main thread starts draining *)
      let idx x = ref (List.mapi (fun i s -> (s, i)) order) |> fun l -> List.assoc x !l in
      Alcotest.(check bool) "put2 blocked until a get ran" true (idx "put2" > idx "get-start")
  | None -> Alcotest.fail "no result"

let test_signal_with_no_waiter_is_lost () =
  (* POSIX semantics: a signal with no waiter does nothing; the waiter
     must therefore check its predicate (here: it does, and the flag
     write comes after, so the program still terminates thanks to the
     while loop re-check under the lock) *)
  let outcome, _ =
    run (fun () ->
        let m = Api.Mutex.create ~loc "m" in
        let cv = Api.Cond.create ~loc "cv" in
        let flag = Api.alloc ~loc 1 in
        (* signal before anyone waits: lost *)
        Api.Cond.signal ~loc cv;
        let t =
          Api.spawn ~loc ~name:"setter" (fun () ->
              Api.sleep 5;
              Api.Mutex.lock ~loc m;
              Api.write ~loc flag 1;
              Api.Cond.signal ~loc cv;
              Api.Mutex.unlock ~loc m)
        in
        Api.Mutex.lock ~loc m;
        while Api.read ~loc flag = 0 do
          Api.Cond.wait ~loc cv m
        done;
        Api.Mutex.unlock ~loc m;
        Api.join ~loc t)
  in
  check_clean outcome

let test_spawn_many_threads () =
  let outcome, result =
    run (fun () ->
        let counter = Api.alloc ~loc 1 in
        let ts =
          List.init 40 (fun i ->
              Api.spawn ~loc ~name:(Printf.sprintf "t%d" i) (fun () ->
                  ignore (Api.atomic_incr ~loc counter)))
        in
        List.iter (Api.join ~loc) ts;
        Api.read ~loc counter)
  in
  check_clean outcome;
  Alcotest.(check (option int)) "40 threads all ran" (Some 40) result;
  Alcotest.(check int) "thread count" 41 outcome.stats.threads_created

let test_rwlock_writer_waits_for_readers () =
  (* a writer arriving while readers hold the lock must wait until the
     last reader releases; readers arriving behind a queued writer do
     not starve it forever (FIFO queue) *)
  let outcome, result =
    run ~seed:19 (fun () ->
        let rw = Api.Rwlock.create ~loc "rw" in
        let log = ref [] in
        let reader name hold () =
          Api.Rwlock.rdlock ~loc rw;
          log := (name ^ ":in") :: !log;
          Api.sleep hold;
          log := (name ^ ":out") :: !log;
          Api.Rwlock.unlock ~loc rw
        in
        let writer () =
          Api.Rwlock.wrlock ~loc rw;
          log := "w:in" :: !log;
          Api.Rwlock.unlock ~loc rw
        in
        let r1 = Api.spawn ~loc ~name:"r1" (reader "r1" 30) in
        Api.sleep 5;
        let w = Api.spawn ~loc ~name:"w" writer in
        Api.join ~loc r1;
        Api.join ~loc w;
        List.rev !log)
  in
  check_clean outcome;
  match result with
  | Some log ->
      let idx x =
        let rec go i = function
          | [] -> -1
          | y :: rest -> if y = x then i else go (i + 1) rest
        in
        go 0 log
      in
      Alcotest.(check bool) "writer entered after the reader left" true
        (idx "w:in" > idx "r1:out")
  | None -> Alcotest.fail "no result"

let test_block_metadata () =
  let info = ref None in
  let tool =
    Vm.Tool.make ~name:"blocks" ~on_event:(fun ctx e ->
        match e with
        | Event.E_write { addr; _ } when !info = None -> info := ctx.block_of addr
        | _ -> ())
  in
  let outcome, _ =
    run ~tool (fun () ->
        Api.with_frame (Loc.v "b.c" "allocator_caller" 3) (fun () ->
            let a = Api.alloc ~loc:(Loc.v "b.c" "allocate" 4) 6 in
            Api.write ~loc a 1))
  in
  check_clean outcome;
  match !info with
  | Some (b : Vm.Memory.block) ->
      Alcotest.(check int) "block length" 6 b.len;
      Alcotest.(check int) "allocating thread" 0 b.alloc_tid;
      Alcotest.(check bool) "allocation stack captured" true
        (List.exists (fun l -> Loc.func l = "allocator_caller") b.alloc_stack)
  | None -> Alcotest.fail "no block info observed"

let test_memory_stats () =
  let outcome, result =
    run (fun () ->
        let a = Api.alloc ~loc 10 in
        let _b = Api.alloc ~loc 5 in
        Api.free ~loc a;
        ())
  in
  ignore result;
  check_clean outcome;
  Alcotest.(check int) "allocs counted" 2 outcome.stats.memory_allocs;
  Alcotest.(check int) "live words" 5 outcome.stats.memory_live_words

let suite =
  ( "vm",
    [
      Alcotest.test_case "mutex counter" `Quick test_mutex_counter;
      Alcotest.test_case "racy counter loses updates" `Quick test_racy_counter_loses_updates;
      Alcotest.test_case "deterministic per seed" `Quick test_deterministic_same_seed;
      Alcotest.test_case "join after exit" `Quick test_join_after_exit;
      Alcotest.test_case "trylock" `Quick test_trylock;
      Alcotest.test_case "mutex misuse" `Quick test_mutex_misuse;
      Alcotest.test_case "double free" `Quick test_double_free;
      Alcotest.test_case "rwlock readers concurrent" `Quick test_rwlock_readers_concurrent;
      Alcotest.test_case "rwlock writer exclusive" `Quick test_rwlock_writer_exclusive;
      Alcotest.test_case "condvar producer/consumer" `Quick test_condvar_producer_consumer;
      Alcotest.test_case "cond broadcast" `Quick test_cond_broadcast;
      Alcotest.test_case "semaphore bound" `Quick test_semaphore;
      Alcotest.test_case "msg queue FIFO" `Quick test_msg_queue_fifo;
      Alcotest.test_case "thread pool completes" `Quick test_thread_pool_processes_all;
      Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
      Alcotest.test_case "lost signal hang" `Quick test_lost_signal_hang;
      Alcotest.test_case "sleep advances clock" `Quick test_sleep_advances_clock;
      Alcotest.test_case "atomic rmw indivisible" `Quick test_atomic_rmw_indivisible;
      Alcotest.test_case "atomic cas" `Quick test_atomic_cas;
      Alcotest.test_case "op budget stops livelock" `Quick test_op_budget;
      Alcotest.test_case "sticky policy" `Quick test_sticky_policy_fewer_switches;
      Alcotest.test_case "memory without reuse" `Quick test_memory_no_reuse;
      Alcotest.test_case "memory LIFO reuse" `Quick test_memory_reuse_lifo;
      Alcotest.test_case "queue blocks when full" `Quick test_queue_blocks_when_full;
      Alcotest.test_case "lost signal semantics" `Quick test_signal_with_no_waiter_is_lost;
      Alcotest.test_case "many threads" `Quick test_spawn_many_threads;
      Alcotest.test_case "rwlock writer waits" `Quick test_rwlock_writer_waits_for_readers;
      Alcotest.test_case "block metadata" `Quick test_block_metadata;
      Alcotest.test_case "call stacks" `Quick test_frames_stack;
      Alcotest.test_case "memory stats" `Quick test_memory_stats;
    ] )
