lib/sip/sip_msg.ml: Buffer Char List Printf Raceguard_cxxsim Raceguard_util Raceguard_vm String
