(** Retransmission / housekeeping timers: workers schedule [TimerTask]
    objects into a locked list; the timer thread fires due tasks and
    deletes them (another cross-thread delete site), and runs the
    periodic housekeeping callback (registrar expiry, route refresh).

    With a [resend] callback the wheel retransmits unacknowledged final
    responses RFC-3261-style: bounded attempts with {!Backoff} delays,
    disarmed by {!cancel} when the ACK arrives. *)

val timer_task_class : Raceguard_cxxsim.Object_model.class_desc
val retransmit_timer_class : Raceguard_cxxsim.Object_model.class_desc

val max_attempts : int
(** Retransmission attempt budget per transaction. *)

type t

val create :
  alloc:Raceguard_cxxsim.Allocator.t ->
  annotate:bool ->
  ?resend:(txn_key:int -> attempt:int -> bool) ->
  ?backoff:Backoff.params ->
  ?recover_alloc_failure:bool ->
  housekeeping:(unit -> unit) ->
  unit ->
  t
(** [resend ~txn_key ~attempt] must retransmit the transaction's final
    response and return whether to keep the timer armed; attempts are
    rescheduled with [backoff] delays (seeded by [txn_key]) while the
    budget lasts.  [recover_alloc_failure] makes the timer thread
    swallow injected allocation failures instead of dying. *)

val start : t -> unit
val schedule_retransmit : t -> txn_key:int -> delay:int -> unit

val cancel : t -> txn_key:int -> int
(** Disarm every pending timer for the transaction (its ACK arrived);
    returns how many were removed. *)

val stop : t -> unit
val join : t -> unit
val fired : t -> int
val resent : t -> int
val cancelled : t -> int
