#!/usr/bin/env python3
"""par-smoke gate: a --domains N run must be digest-identical to the
committed sequential run, and the bench scaling suite must be sane.

Usage:
    python3 ci/check_par_digests.py \
        --chaos chaos_par.json --pin ci/chaos_quick_digests.json \
        --bench BENCH_par.json --baseline bench/baseline.json

Checks, in order:
  1. the chaos report parses, has schema raceguard-chaos/1, and every
     per-cell (sig_digest, behavior_digest) plus the matrix digest is
     byte-identical to the committed sequential pin;
  2. the bench JSON parses, has schema raceguard-bench/2, and every
     (workload, config) row's sig_digest equals the committed
     baseline's row (parallel audit == sequential audit);
  3. the scaling array's legs all carry the same digest (the bench
     binary already exits 2 on mismatch; this re-asserts from the
     artifact), and — only when this runner has >= 4 CPUs — the
     4-domain leg shows > 1.5x speedup over the 1-domain leg.

Digest equality is unconditional: it holds on any machine.  The
speedup check is hardware-dependent, so it is skipped (with a notice)
on small runners.
"""
import argparse
import json
import os
import sys


def fail(msg: str) -> None:
    print(f"par-smoke FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_chaos(chaos_path: str, pin_path: str) -> None:
    x = json.load(open(chaos_path))
    pin = json.load(open(pin_path))
    if x.get("schema") != "raceguard-chaos/1":
        fail(f"chaos schema {x.get('schema')!r}")
    if pin.get("schema") != "raceguard-chaos-digests/1":
        fail(f"pin schema {pin.get('schema')!r}")
    if x["seed"] != pin["seed"]:
        fail(f"seed mismatch: run {x['seed']} vs pin {pin['seed']}")
    cells = x["cells"]
    if len(cells) != len(pin["cells"]):
        fail(f"cell count {len(cells)} vs pinned {len(pin['cells'])}")
    for i, (got, want) in enumerate(zip(cells, pin["cells"])):
        key = (want["plan"], want["test"], want["resilient"])
        if (got["plan"], got["test"], got["resilient"]) != key:
            fail(f"cell {i} is {got['plan']}/{got['test']} — grid order changed")
        for field in ("sig_digest", "behavior_digest"):
            if got[field] != want[field]:
                fail(
                    f"cell {i} ({'/'.join(map(str, key))}) {field} "
                    f"{got[field]} != pinned {want[field]}"
                )
    if x["summary"]["matrix_digest"] != pin["matrix_digest"]:
        fail(
            f"matrix digest {x['summary']['matrix_digest']} "
            f"!= pinned {pin['matrix_digest']}"
        )
    print(
        f"chaos: {len(cells)} cell digests at domains={x.get('domains')} "
        f"identical to the sequential pin (matrix {pin['matrix_digest']})"
    )


def check_bench(bench_path: str, baseline_path: str) -> list:
    x = json.load(open(bench_path))
    base = json.load(open(baseline_path))
    if x.get("schema") != "raceguard-bench/2":
        fail(f"bench schema {x.get('schema')!r}")
    if base.get("schema") != "raceguard-bench/2":
        fail(f"baseline schema {base.get('schema')!r}")
    want = {
        (r["workload"], r["config"]): r["sig_digest"] for r in base["results"]
    }
    checked = 0
    for r in x["results"]:
        key = (r["workload"], r["config"])
        if key not in want:
            fail(f"row {key} missing from the committed baseline")
        if r["sig_digest"] != want[key]:
            fail(
                f"row {'/'.join(key)} sig_digest {r['sig_digest']} "
                f"!= baseline {want[key]}"
            )
        checked += 1
    print(
        f"bench: {checked} row sig_digests at domains={x.get('domains')} "
        f"identical to bench/baseline.json"
    )
    return x["scaling"]


def check_scaling(scaling: list) -> None:
    if not scaling:
        fail("bench JSON has no scaling array")
    digests = {leg["digest"] for leg in scaling}
    if len(digests) != 1:
        fail(f"scaling legs disagree on digest: {sorted(digests)}")
    by_domains = {leg["domains"]: leg for leg in scaling}
    for d in (1, 2, 4, 8):
        if d not in by_domains:
            fail(f"scaling array misses the {d}-domain leg")
    cpus = os.cpu_count() or 1
    leg4 = by_domains[4]
    if cpus >= 4:
        if leg4["speedup"] <= 1.5:
            fail(
                f"4-domain speedup {leg4['speedup']:.2f} <= 1.5 "
                f"on a {cpus}-CPU runner"
            )
        print(f"scaling: 4-domain speedup {leg4['speedup']:.2f} (> 1.5, {cpus} CPUs)")
    else:
        print(
            f"scaling: speedup check skipped ({cpus} CPU(s) < 4); "
            f"digest equality across legs verified"
        )


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--chaos", required=True)
    ap.add_argument("--pin", required=True)
    ap.add_argument("--bench", required=True)
    ap.add_argument("--baseline", required=True)
    args = ap.parse_args()
    check_chaos(args.chaos, args.pin)
    scaling = check_bench(args.bench, args.baseline)
    check_scaling(scaling)
    print("par-smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
