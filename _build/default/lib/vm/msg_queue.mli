(** A bounded message queue built from a mutex and two condition
    variables, as {e application-level library code} (its internals are
    visible to the detectors — deliberately, per §4.2.3: the lock-set
    algorithm must see exactly what Helgrind saw).

    With [annotated = true] (the instrumented build of the §5
    extension) put/get emit [ANNOTATE_HAPPENS_BEFORE]/[_AFTER] client
    requests tagged with the transferred value, so annotation-aware
    detectors recognise the ownership transfer. *)

type t

val create : ?annotated:bool -> name:string -> capacity:int -> unit -> t
(** Allocates the ring storage in VM memory; call from inside a
    simulated thread.  [capacity] must be positive. *)

val put : t -> int -> unit
(** Enqueue a value (usually the address of a message struct); blocks
    while the queue is full. *)

val get : t -> int
(** Dequeue; blocks while the queue is empty.  FIFO. *)

val length : t -> int
(** Current element count (takes the queue's lock). *)
