lib/util/int_sorted_set.ml: Array Fmt List
