(** The Helgrind-style lock-set race detector.

    Implements the Eraser algorithm with the per-location state machine
    of Figure 1 (New / Exclusive / Shared-RO / Shared-Modified), the
    VisualThreads thread-segment refinement (Figure 2), and the two
    improvements contributed by the paper:

    - {b HWLC} ([bus_model = Rw_lock]): the x86 bus lock is modelled as
      a read-write lock implicitly held for reading by {e every} read
      access and held for writing by [LOCK]-prefixed writes, instead of
      the original plain mutex held only around [LOCK]-prefixed
      instructions.  This removes the spurious reports on bus-locked
      reference counters (Figures 8/9) while still flagging plain
      writes that race with them.  Supporting it required read-write
      lock-sets (reads check locks held in {e any} mode, writes check
      locks held in {e write} mode), which also gives POSIX rw-lock
      support ([track_rwlocks]) "for free", as the paper notes.

    - {b DR} ([destructor_annotations]): honour the
      [VALGRIND_HG_DESTRUCT] client request emitted by annotated
      [delete] operators (Figure 4): the object's memory becomes
      exclusively owned by the deleting thread's current segment, so
      the vptr writes performed by the destructor chain of a derived
      class no longer look like unsynchronised writes to shared memory
      — while a genuine access by another thread during destruction is
      still detected.

    Setting [eraser_states = false] disables the state machine and
    runs the naive textbook Eraser (lock-set refined from the very
    first access, warnings whenever it empties) — the configuration the
    paper calls "too many false positives" for initialisation and
    read-shared data. *)

module Loc = Raceguard_util.Loc
module Vm = Raceguard_vm
open Vm.Event

type bus_model =
  | Locked_mutex  (** original Helgrind: a mutex around LOCK-prefixed ops *)
  | Rw_lock  (** the paper's corrected model *)

type config = {
  bus_model : bus_model;
  destructor_annotations : bool;
  thread_segments : bool;
  track_rwlocks : bool;
      (** understand POSIX rw-lock events; the original Helgrind did not *)
  eraser_states : bool;  (** Figure 1 state machine (vs. pure Eraser) *)
  report_reads : bool;  (** also report reads with empty lock-set *)
  hb_annotations : bool;
      (** honour HAPPENS_BEFORE/AFTER client requests: the paper's §5
          future work ("higher level constructs for synchronization
          that the lock-set algorithm is unaware of"), implemented as
          annotation-induced thread-segment edges *)
}

(** The three configurations evaluated in Figures 5/6. *)
let original =
  {
    bus_model = Locked_mutex;
    destructor_annotations = false;
    thread_segments = true;
    track_rwlocks = false;
    eraser_states = true;
    report_reads = true;
    hb_annotations = false;
  }

let hwlc = { original with bus_model = Rw_lock; track_rwlocks = true }
let hwlc_dr = { hwlc with destructor_annotations = true }

(** The §5 extension on top of the paper's final configuration. *)
let hwlc_dr_hb = { hwlc_dr with hb_annotations = true }

(** Ablation: Eraser without the state machine. *)
let pure_eraser = { original with eraser_states = false }

let pp_config_name ppf c =
  let base =
    match (c.bus_model, c.destructor_annotations) with
    | Locked_mutex, false -> "Original"
    | Locked_mutex, true -> "Original+DR"
    | Rw_lock, false -> "HWLC"
    | Rw_lock, true -> "HWLC+DR"
  in
  let base = if c.eraser_states then base else base ^ "(pure)" in
  let base = if c.thread_segments then base else base ^ "-noTS" in
  let base = if c.hb_annotations then base ^ "+HB" else base in
  Fmt.string ppf base

(* ------------------------------------------------------------------ *)
(* Shadow state                                                        *)
(* ------------------------------------------------------------------ *)

type owner = { o_tid : int; o_seg : Segments.seg }

type state =
  | Virgin
  | Exclusive of owner
  | Shared_ro of Lockset.t
  | Shared_mod of Lockset.t

let pp_state ~name_of ppf = function
  | Virgin -> Fmt.string ppf "virgin"
  | Exclusive o -> Fmt.pf ppf "exclusive (thread %d)" o.o_tid
  | Shared_ro ls -> Fmt.pf ppf "shared RO, %a" (Lockset.pp ~name_of) ls
  | Shared_mod ls -> Fmt.pf ppf "shared modified, %a" (Lockset.pp ~name_of) ls

type thread_locks = { mutable held_any : int list; mutable held_write : int list }
(** uids currently held, by mode (unsorted association-free lists;
    locks are few) *)

type t = {
  config : config;
  shadow : (int, state ref) Hashtbl.t;  (** word address -> state *)
  locks : (int, thread_locks) Hashtbl.t;  (** tid -> held locks *)
  segments : Segments.t;
  lock_names : (int, string) Hashtbl.t;  (** uid -> name *)
  collector : Report.collector;
  mutable benign : (int * int) list;
  mutable accesses_checked : int;
  mutable warning_filter : (tid:int -> addr:int -> kind:Report.kind -> bool) option;
      (** when set, a warning is only recorded if the filter agrees —
          the composition hook used by the {!Hybrid} detector *)
}

let create ?(suppressions = []) config =
  {
    config;
    shadow = Hashtbl.create 65536;
    locks = Hashtbl.create 64;
    segments = Segments.create ();
    lock_names = Hashtbl.create 64;
    collector = Report.collector ~suppressions ();
    benign = [];
    accesses_checked = 0;
    warning_filter = None;
  }

let set_warning_filter t f = t.warning_filter <- Some f

let reports t = Report.occurrences t.collector
let locations t = Report.locations t.collector
let location_count t = Report.location_count t.collector
let collector t = t.collector
let accesses_checked t = t.accesses_checked

let name_of t uid =
  match Hashtbl.find_opt t.lock_names uid with
  | Some n -> Printf.sprintf "%S" n
  | None -> Printf.sprintf "lock#%d" uid

let thread_locks t tid =
  match Hashtbl.find_opt t.locks tid with
  | Some l -> l
  | None ->
      let l = { held_any = []; held_write = [] } in
      Hashtbl.replace t.locks tid l;
      l

let cell t addr =
  match Hashtbl.find_opt t.shadow addr with
  | Some c -> c
  | None ->
      let c = ref Virgin in
      Hashtbl.replace t.shadow addr c;
      c

let is_benign t addr = List.exists (fun (base, len) -> addr >= base && addr < base + len) t.benign

(* Effective lock-sets for one access, including the virtual bus lock
   according to the configured model. *)
let effective_sets t tid ~atomic =
  let l = thread_locks t tid in
  let with_bus cond set = if cond then Lock_id.bus :: set else set in
  let any =
    match t.config.bus_model with
    | Rw_lock ->
        (* every read access implicitly holds the bus lock in read
           mode; LOCK-prefixed accesses hold it too *)
        with_bus true l.held_any
    | Locked_mutex -> with_bus atomic l.held_any
  in
  let write = with_bus atomic l.held_write in
  (Lockset.of_list any, Lockset.of_list write)

(* ------------------------------------------------------------------ *)
(* The per-access state machine                                        *)
(* ------------------------------------------------------------------ *)

type access = Read | Write

let report t (ctx : Vm.Tool.ctx) ~kind ~tid ~addr ~loc ~prev_state =
  let block =
    match ctx.block_of addr with
    | Some (b : Vm.Memory.block) ->
        Some
          {
            Report.b_base = b.base;
            b_len = b.len;
            b_alloc_tid = b.alloc_tid;
            b_alloc_stack = b.alloc_stack;
          }
    | None -> None
  in
  let stack = loc :: ctx.stack_of tid in
  Report.add t.collector
    {
      Report.kind;
      addr;
      tid;
      thread_name = ctx.thread_name tid;
      stack;
      detail = Fmt.str "Previous state: %a" (pp_state ~name_of:(name_of t)) prev_state;
      block;
      clock = ctx.clock ();
    }

let check_access t ctx ~access ~tid ~addr ~atomic ~loc =
  t.accesses_checked <- t.accesses_checked + 1;
  let c = cell t addr in
  let prev = !c in
  let any_set, write_set = effective_sets t tid ~atomic in
  let seg = Segments.seg_of t.segments tid in
  let warn kind ls =
    if
      Lockset.is_empty ls
      && (not (is_benign t addr))
      && (match t.warning_filter with None -> true | Some f -> f ~tid ~addr ~kind)
    then report t ctx ~kind ~tid ~addr ~loc ~prev_state:prev
  in
  if not t.config.eraser_states then begin
    (* pure Eraser: C(v) starts at Top and is refined by every access *)
    let ls_prev = match prev with Shared_mod ls -> ls | _ -> Lockset.top in
    let ls =
      match access with
      | Read -> Lockset.inter ls_prev any_set
      | Write -> Lockset.inter ls_prev write_set
    in
    (match access with
    | Read -> warn Report.Race_read ls
    | Write -> warn Report.Race_write ls);
    c := Shared_mod ls
  end
  else
    match prev with
    | Virgin -> c := Exclusive { o_tid = tid; o_seg = seg }
    | Exclusive o ->
        if o.o_tid = tid then c := Exclusive { o_tid = tid; o_seg = seg }
        else if t.config.thread_segments && Segments.happens_before t.segments o.o_seg seg then
          (* ownership passes to the later segment; stays exclusive *)
          c := Exclusive { o_tid = tid; o_seg = seg }
        else begin
          (* second thread: initialise the candidate set with the locks
             active at this access and start checking *)
          match access with
          | Read -> c := Shared_ro any_set
          | Write ->
              warn Report.Race_write write_set;
              c := Shared_mod write_set
        end
    | Shared_ro ls -> (
        match access with
        | Read -> c := Shared_ro (Lockset.inter ls any_set)
        | Write ->
            let ls = Lockset.inter ls write_set in
            warn Report.Race_write ls;
            c := Shared_mod ls)
    | Shared_mod ls -> (
        match access with
        | Read ->
            let ls = Lockset.inter ls any_set in
            if t.config.report_reads then warn Report.Race_read ls;
            c := Shared_mod ls
        | Write ->
            let ls = Lockset.inter ls write_set in
            warn Report.Race_write ls;
            c := Shared_mod ls)

(* ------------------------------------------------------------------ *)
(* Event dispatch                                                      *)
(* ------------------------------------------------------------------ *)

let acquire t tid uid mode =
  let l = thread_locks t tid in
  l.held_any <- uid :: l.held_any;
  match mode with
  | Vm.Eff.Write_mode -> l.held_write <- uid :: l.held_write
  | Vm.Eff.Read_mode -> ()

let release t tid uid =
  let remove_one xs =
    let rec go = function [] -> [] | x :: rest -> if x = uid then rest else x :: go rest in
    go xs
  in
  let l = thread_locks t tid in
  l.held_any <- remove_one l.held_any;
  l.held_write <- remove_one l.held_write

let on_event t (ctx : Vm.Tool.ctx) (e : Vm.Event.t) =
  match e with
  | E_thread_start { tid; parent; _ } -> Segments.on_thread_start t.segments ~tid ~parent
  | E_thread_exit { tid } -> Segments.on_thread_exit t.segments ~tid
  | E_join { joiner; joined; _ } -> Segments.on_join t.segments ~joiner ~joined
  | E_spawn _ -> ()  (* segment split already done at thread_start *)
  | E_read { tid; addr; atomic; loc; _ } ->
      check_access t ctx ~access:Read ~tid ~addr ~atomic ~loc
  | E_write { tid; addr; atomic; loc; _ } ->
      check_access t ctx ~access:Write ~tid ~addr ~atomic ~loc
  | E_alloc { addr; len; _ } ->
      (* fresh (or recycled through malloc) memory starts life virgin *)
      for a = addr to addr + len - 1 do
        match Hashtbl.find_opt t.shadow a with Some c -> c := Virgin | None -> ()
      done
  | E_free _ -> ()
  | E_sync_create { sync; name; _ } -> (
      match Lock_id.of_sync_ref sync with
      | Some uid -> Hashtbl.replace t.lock_names uid name
      | None -> ())
  | E_acquire { tid; lock; mode; _ } -> (
      match lock with
      | Mutex m -> acquire t tid (Lock_id.of_mutex m) Vm.Eff.Write_mode
      | Rwlock rw -> if t.config.track_rwlocks then acquire t tid (Lock_id.of_rwlock rw) mode
      | Cond _ | Sem _ -> ())
  | E_release { tid; lock; _ } -> (
      match lock with
      | Mutex m -> release t tid (Lock_id.of_mutex m)
      | Rwlock rw -> if t.config.track_rwlocks then release t tid (Lock_id.of_rwlock rw)
      | Cond _ | Sem _ -> ())
  | E_cond_signal _ | E_cond_wait_pre _ | E_cond_wait_post _ | E_sem_post _ | E_sem_wait_post _
    ->
      ()  (* the lock-set algorithm is blind to these — §4.2.3 *)
  | E_client { tid; req; _ } -> (
      match req with
      | Vm.Eff.Destruct { addr; len } ->
          if t.config.destructor_annotations then begin
            (* the object is about to be destroyed: it becomes
               exclusively owned by the deleting thread's segment, so
               destructor-chain writes stop looking like races while
               genuine concurrent accesses still trigger a transition *)
            let seg = Segments.seg_of t.segments tid in
            for a = addr to addr + len - 1 do
              (cell t a) := Exclusive { o_tid = tid; o_seg = seg }
            done
          end
      | Vm.Eff.Benign_race { addr; len } -> t.benign <- (addr, len) :: t.benign
      | Vm.Eff.Happens_before { tag } ->
          if t.config.hb_annotations then Segments.on_happens_before t.segments ~tid ~tag
      | Vm.Eff.Happens_after { tag } ->
          if t.config.hb_annotations then Segments.on_happens_after t.segments ~tid ~tag)

let tool t = Vm.Tool.make ~name:"helgrind" ~on_event:(on_event t)
