(** Fixed-capacity ring-buffer event tracer with Chrome
    [trace_event]-JSON export.

    The VM and detectors call [emit] on their hot paths, so the tracer
    must be cheap when disabled and bounded when enabled:

    - A [None] tracer (the default everywhere) costs one physical
      comparison at each site.
    - An enabled tracer samples 1-in-[sample] events with a plain
      counter — deterministic, so two runs over the same event stream
      trace the same records — and overwrites the oldest record once
      [capacity] is reached (the ring remembers the *tail* of the run,
      which is where crashes and warnings live).

    Records are deliberately generic (ts/tid/name/cat/args): this
    library sits below [lib/vm], so the engine maps its [Event.t] to
    strings itself.  Timestamps are VM logical clock ticks, exported as
    microseconds so chrome://tracing renders them on a sensible axis. *)

type record = {
  ts : int; (* VM logical clock *)
  tid : int;
  name : string;
  cat : string;
  args : (string * Json.t) list;
}

type t = {
  ring : record option array;
  capacity : int;
  sample : int;
  mutable tick : int; (* events offered, for sampling *)
  mutable next : int; (* next write slot *)
  mutable recorded : int; (* total records written (>= capacity once wrapped) *)
}

let create ?(capacity = 4096) ?(sample = 1) () =
  if capacity <= 0 then invalid_arg "Obs.Trace.create: capacity must be positive";
  if sample <= 0 then invalid_arg "Obs.Trace.create: sample must be positive";
  { ring = Array.make capacity None; capacity; sample; tick = 0; next = 0; recorded = 0 }

let emit t ~ts ~tid ~name ~cat ?(args = []) () =
  let n = t.tick in
  t.tick <- n + 1;
  if n mod t.sample = 0 then begin
    t.ring.(t.next) <- Some { ts; tid; name; cat; args };
    t.next <- (t.next + 1) mod t.capacity;
    t.recorded <- t.recorded + 1
  end

let offered t = t.tick
let recorded t = t.recorded
let dropped t = max 0 (t.recorded - t.capacity)

(* Oldest-first: once wrapped, the oldest live record sits at [next].
   The final stable sort guarantees monotonic timestamps to consumers
   (chrome://tracing silently misrenders out-of-order instants) even if
   the slot walk and the emit order ever disagree; on the already-sorted
   common case it is a single O(n) pass. *)
let records t =
  let out = ref [] in
  let start = if t.recorded >= t.capacity then t.next else 0 in
  for k = t.capacity - 1 downto 0 do
    match t.ring.((start + k) mod t.capacity) with
    | Some r -> out := r :: !out
    | None -> ()
  done;
  List.stable_sort (fun a b -> compare a.ts b.ts) !out

let record_to_json r =
  Json.Obj
    ([
       ("name", Json.Str r.name);
       ("cat", Json.Str r.cat);
       ("ph", Json.Str "i"); (* instant event *)
       ("s", Json.Str "t"); (* thread-scoped *)
       ("ts", Json.int r.ts);
       ("pid", Json.int 1);
       ("tid", Json.int r.tid);
     ]
    @ if r.args = [] then [] else [ ("args", Json.Obj r.args) ])

let to_json t =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map record_to_json (records t)));
      ("displayTimeUnit", Json.Str "ms");
      ( "otherData",
        Json.Obj
          [
            ("generator", Json.Str "raceguard");
            ("sample", Json.int t.sample);
            ("offered", Json.int t.tick);
            ("recorded", Json.int t.recorded);
            ("dropped", Json.int (dropped t));
          ] );
    ]

let to_string t = Json.to_string ~indent:1 (to_json t)
