(** Operations available {e inside} simulated threads — the "system
    call" surface of the VM.

    A simulated application is ordinary OCaml code calling these
    functions; each call suspends the calling fiber, lets the scheduler
    interpret the operation and emit events to the attached tools, and
    resumes.  Every call is therefore a potential preemption point —
    the granularity at which the serialised execution can interleave
    threads, as under Valgrind.

    All functions taking [~loc] record the (pseudo) source position for
    race reports; use {!with_frame} to maintain the simulated call
    stack that reports print.  Calling any of these outside
    {!Engine.run} raises [Effect.Unhandled]. *)

module Loc = Raceguard_util.Loc

(** {1 Memory} *)

val read : loc:Loc.t -> int -> int
(** [read ~loc addr] loads the word at [addr]. *)

val write : loc:Loc.t -> int -> int -> unit
(** [write ~loc addr v] stores [v] at [addr]. *)

val atomic_rmw : loc:Loc.t -> int -> (int -> int) -> int
(** A [LOCK]-prefixed read-modify-write: indivisible (no scheduling
    point between the load and the store), flagged atomic in the event
    stream.  Returns the {e old} value. *)

val atomic_incr : loc:Loc.t -> int -> int
val atomic_decr : loc:Loc.t -> int -> int

val atomic_cas : loc:Loc.t -> int -> expected:int -> desired:int -> bool
(** Compare-and-swap; true iff the swap happened. *)

val alloc : loc:Loc.t -> int -> int
(** [alloc ~loc len] allocates [len] zeroed words; returns the base
    address.  Tools see an allocation event (shadow state resets). *)

val free : loc:Loc.t -> int -> unit
(** Release a block by base address.  Double frees fail the thread. *)

(** {1 Threads} *)

val spawn : loc:Loc.t -> name:string -> (unit -> unit) -> int
(** Start a thread; returns its tid.  The new thread is immediately
    runnable; whether it runs before the parent continues is the
    scheduler's choice. *)

val join : loc:Loc.t -> int -> unit
(** Block until the thread terminates.  Joining an already-finished
    thread returns immediately (and still emits the join event). *)

val self : unit -> int
val yield : unit -> unit

val sleep : int -> unit
(** Block for at least [n] virtual clock ticks. *)

val now : unit -> int
(** The virtual clock (one tick per VM operation). *)

val random_int : int -> int
(** Deterministic per-run randomness drawn from the VM seed. *)

(** {1 Synchronisation} *)

module Mutex : sig
  type t = int

  val create : loc:Loc.t -> string -> t
  val lock : loc:Loc.t -> t -> unit
  (** Non-recursive: relocking a held mutex fails the thread. *)

  val try_lock : loc:Loc.t -> t -> bool
  val unlock : loc:Loc.t -> t -> unit
  (** Unlocking a mutex the thread does not hold fails the thread. *)

  val with_lock : loc:Loc.t -> t -> (unit -> 'a) -> 'a
end

module Rwlock : sig
  type t = int

  val create : loc:Loc.t -> string -> t
  val rdlock : loc:Loc.t -> t -> unit
  val wrlock : loc:Loc.t -> t -> unit
  val unlock : loc:Loc.t -> t -> unit
  val with_rdlock : loc:Loc.t -> t -> (unit -> 'a) -> 'a
  val with_wrlock : loc:Loc.t -> t -> (unit -> 'a) -> 'a
end

module Cond : sig
  type t = int

  val create : loc:Loc.t -> string -> t

  val wait : loc:Loc.t -> t -> Mutex.t -> unit
  (** Atomically releases the mutex and blocks; on wake-up the mutex is
      reacquired before returning.  The caller must hold the mutex. *)

  val signal : loc:Loc.t -> t -> unit
  val broadcast : loc:Loc.t -> t -> unit
end

module Sem : sig
  type t = int

  val create : loc:Loc.t -> init:int -> string -> t
  val wait : loc:Loc.t -> t -> unit
  val post : loc:Loc.t -> t -> unit
end

(** {1 Client requests}

    User-space calls recognised by the VM and forwarded to tools; no
    effect on execution (Valgrind's [VALGRIND_*] macro mechanism). *)

val hg_destruct : addr:int -> len:int -> unit
(** [VALGRIND_HG_DESTRUCT] (Figure 4): the object at
    [addr..addr+len-1] is about to be destroyed by this thread. *)

val benign_race : addr:int -> len:int -> unit
(** Mark a range as intentionally racy. *)

val annotate_happens_before : tag:int -> unit
(** [ANNOTATE_HAPPENS_BEFORE]: order everything this thread did so far
    before any thread that subsequently observes [tag] with
    {!annotate_happens_after} — the §5 higher-level-synchronisation
    extension. *)

val annotate_happens_after : tag:int -> unit

(** {1 Call-stack maintenance} *)

val push_frame : Loc.t -> unit
val pop_frame : unit -> unit

val with_frame : Loc.t -> (unit -> 'a) -> 'a
(** Run the function with [loc] pushed on the simulated call stack
    (restored on exception). *)
