(** Retransmission / housekeeping timers.

    Workers schedule [TimerTask] objects into a locked list; a timer
    thread fires due tasks and deletes them — yet another shared-object
    delete site (the task was created by a worker, is deleted by the
    timer thread), plus a periodic housekeeping callback used for
    registrar expiry. *)

module Loc = Raceguard_util.Loc
module Api = Raceguard_vm.Api
module Obj_model = Raceguard_cxxsim.Object_model

let lc func line = Loc.v "timer_wheel.cpp" ("TimerWheel::" ^ func) line

(* class TimerTask { int due; int kind; }
   class RetransmitTimer : TimerTask { int attempts; int txn_key; } *)
let timer_task_class =
  Obj_model.define ~name:"TimerTask" ~fields:[ "due"; "kind" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.scrub ~file:"timer_wheel.cpp" ~base_line:19 cls obj ~strings:[]
        ~ints:[ "due"; "kind" ])
    ()

let retransmit_timer_class =
  Obj_model.define ~parent:timer_task_class ~name:"RetransmitTimer"
    ~fields:[ "attempts"; "txn_key" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.scrub ~file:"timer_wheel.cpp" ~base_line:27 cls obj ~strings:[]
        ~ints:[ "attempts"; "txn_key" ])
    ()

type t = {
  mutex : Api.Mutex.t;
  pending : Raceguard_cxxsim.Containers.Vector.t;  (** task addresses *)
  stop_flag : int;
  annotate : bool;
  housekeeping : unit -> unit;
  mutable thread : int;
  mutable fired : int;
}

let create ~alloc ~annotate ~housekeeping =
  {
    mutex = Api.Mutex.create ~loc:(lc "TimerWheel" 40) "timer.mutex";
    pending = Raceguard_cxxsim.Containers.Vector.create alloc;
    stop_flag = Api.alloc ~loc:(lc "TimerWheel" 42) 1;
    annotate;
    housekeeping;
    thread = -1;
    fired = 0;
  }

(** Schedule a retransmission timer for a transaction. *)
let schedule_retransmit t ~txn_key ~delay =
  let loc = lc "schedule" 52 in
  Api.with_frame loc @@ fun () ->
  let task =
    Obj_model.new_ ~loc retransmit_timer_class ~init:(fun obj ->
        let cls = retransmit_timer_class in
        Obj_model.set ~loc cls obj "due" (Api.now () + delay);
        Obj_model.set ~loc cls obj "kind" 1;
        Obj_model.set ~loc cls obj "attempts" 0;
        Obj_model.set ~loc cls obj "txn_key" txn_key)
  in
  Api.Mutex.with_lock ~loc t.mutex (fun () ->
      Raceguard_cxxsim.Containers.Vector.push_back t.pending task)

let fire_due t =
  let loc = lc "fireDue" 66 in
  Api.with_frame loc @@ fun () ->
  let module V = Raceguard_cxxsim.Containers.Vector in
  let now = Api.now () in
  let due = ref [] in
  Api.Mutex.with_lock ~loc t.mutex (fun () ->
      (* collect due tasks; compact the vector in place *)
      let n = V.size t.pending in
      let keep = ref [] in
      for i = 0 to n - 1 do
        let task = V.get t.pending i in
        if task <> 0 then begin
          if Obj_model.get ~loc retransmit_timer_class task "due" <= now then
            due := task :: !due
          else keep := task :: !keep
        end
      done;
      let keep = List.rev !keep in
      List.iteri (fun i task -> V.set t.pending i task) keep;
      for i = List.length keep to n - 1 do
        V.set t.pending i 0
      done);
  List.iter
    (fun task ->
      t.fired <- t.fired + 1;
      (* "retransmit" (a real server would resend here), then delete
         the worker-created task in the timer thread *)
      Obj_model.delete_ ~loc:(lc "fireDue" 90) ~annotate:t.annotate retransmit_timer_class task)
    !due

let run t () =
  Api.with_frame (lc "run" 94) @@ fun () ->
  while Api.read ~loc:(lc "run" 95) t.stop_flag = 0 do
    Api.sleep 15;
    fire_due t;
    t.housekeeping ()
  done;
  fire_due t

let start t = t.thread <- Api.spawn ~loc:(lc "start" 102) ~name:"timer-wheel" (run t)
let stop t = ignore (Api.atomic_rmw ~loc:(lc "stop" 103) t.stop_flag (fun _ -> 1))
let join t = if t.thread >= 0 then Api.join ~loc:(lc "join" 104) t.thread
let fired t = t.fired
