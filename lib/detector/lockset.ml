(** Lock-sets: the candidate sets C(v) of the Eraser algorithm,
    hash-consed à la Eraser's original lockset-index design.

    Every distinct set is interned exactly once into a global table and
    represented by a small integer id, so
    - equality is physical ([==], one comparison),
    - the per-word shadow state stores one immutable pointer,
    - intersections are memoised in a pair-of-ids-keyed cache: the hot
      path of the detector (steady-state [inter] of the same two sets
      on every access) is a single hash probe instead of an array merge
      plus allocation.

    [Top] is the initial "set of all locks" — intersecting anything
    with it yields the other operand, so we never need to materialise
    the universe. *)

module Iss = Raceguard_util.Int_sorted_set
module Metrics = Raceguard_obs.Metrics

(* The single stats path: these instruments live in the process-global
   registry; [stats ()] reads the same handles, so E9, the bench and
   the runner all see one source of truth. *)
let m_interned = Metrics.gauge "detector.lockset.interned"
let m_inter_memo_entries = Metrics.gauge "detector.lockset.inter_memo_entries"
let m_memo_hits = Metrics.counter "detector.lockset.inter_memo_hits"
let m_memo_misses = Metrics.counter "detector.lockset.inter_memo_misses"

type repr = Top | Set of Iss.t
type t = { id : int; repr : repr }

(* ------------------------------------------------------------------ *)
(* The intern table                                                    *)
(* ------------------------------------------------------------------ *)

module Key = struct
  type t = Iss.t

  let equal = Iss.equal
  let hash (s : t) = Hashtbl.hash (s : Iss.t :> int array)
end

module Intern = Hashtbl.Make (Key)

let top = { id = 0; repr = Top }
let empty = { id = 1; repr = Set Iss.empty }

(* the memo key packs both ids into one immediate int (no tuple
   allocation on the hot path); [intern] guards the 24-bit id space *)
module Memo = Hashtbl.Make (struct
  type t = int

  let equal (a : int) b = a = b
  let hash (k : int) = Hashtbl.hash k
end)

(* ids are domain-global: lock uids restart per VM instance, so the
   universe of distinct sets stays small even across many runs.  The
   whole intern/memo store is domain-local (Domain.DLS): the multicore
   pool runs independent cells on several domains, and sharing one
   Hashtbl across them would be both a crash hazard and an id-space
   collision (memo keys embed ids).  Physical equality of sets holds
   within a domain — exactly the scope of any one cell's detectors. *)
type store = {
  mutable next_id : int;
  table : t Intern.t;
  inter_memo : t Memo.t;
  add_memo : t Memo.t;
  remove_memo : t Memo.t;
}

let store_key : store Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        next_id = 2;
        table = Intern.create 256;
        inter_memo = Memo.create 1024;
        add_memo = Memo.create 256;
        remove_memo = Memo.create 256;
      })

let store () = Domain.DLS.get store_key

let intern_in st (s : Iss.t) =
  if Iss.is_empty s then empty
  else
    match Intern.find_opt st.table s with
    | Some t -> t
    | None ->
        if st.next_id >= 0xFFFFFF then failwith "Lockset: intern id space exhausted";
        let t = { id = st.next_id; repr = Set s } in
        st.next_id <- st.next_id + 1;
        Intern.add st.table s t;
        Metrics.set m_interned (st.next_id - 2);
        t

let intern s = intern_in (store ()) s

let of_list l = intern (Iss.of_list l)

(* --- memoised intersection ---------------------------------------- *)

let inter a b =
  if a == b then a
  else
    match (a.repr, b.repr) with
    | Top, _ -> b
    | _, Top -> a
    | Set sa, Set sb -> (
        let st = store () in
        let key =
          if a.id <= b.id then (a.id lsl 24) lor b.id else (b.id lsl 24) lor a.id
        in
        (* Hashtbl.find over find_opt: no [Some] allocation on the hit
           path, and hits dominate after warm-up *)
        match Memo.find st.inter_memo key with
        | r ->
            Metrics.incr m_memo_hits;
            r
        | exception Not_found ->
            Metrics.incr m_memo_misses;
            let r = intern_in st (Iss.inter sa sb) in
            Memo.add st.inter_memo key r;
            Metrics.set m_inter_memo_entries (Memo.length st.inter_memo);
            r)

let union a b =
  match (a.repr, b.repr) with
  | Top, _ | _, Top -> top
  | Set sa, Set sb -> intern (Iss.union sa sb)

(* add/remove run on every acquire/release — in lock-heavy workloads
   that is a third of all events — so they are memoised too, keyed by
   (element, set id).  Lock uids share the 24-bit guard of set ids. *)

let add x t =
  match t.repr with
  | Top -> top
  | Set s -> (
      let st = store () in
      let key = (x lsl 24) lor t.id in
      match Memo.find st.add_memo key with
      | r -> r
      | exception Not_found ->
          let r = intern_in st (Iss.add x s) in
          Memo.add st.add_memo key r;
          r)

let remove x t =
  match t.repr with
  | Top -> top
  | Set s -> (
      let st = store () in
      let key = (x lsl 24) lor t.id in
      match Memo.find st.remove_memo key with
      | r -> r
      | exception Not_found ->
          let r = intern_in st (Iss.remove x s) in
          Memo.add st.remove_memo key r;
          r)

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let id t = t.id
let is_empty t = t == empty
let equal (a : t) b = a == b
let mem x t = match t.repr with Top -> true | Set s -> Iss.mem x s
let cardinal t = match t.repr with Top -> max_int | Set s -> Iss.cardinal s
let to_list t = match t.repr with Top -> None | Set s -> Some (Iss.to_list s)

let interned_count () = (store ()).next_id - 2

let stats () =
  ( interned_count (),
    Memo.length (store ()).inter_memo,
    Metrics.counter_value m_memo_hits,
    Metrics.counter_value m_memo_misses )

let pp ~name_of ppf t =
  match t.repr with
  | Top -> Fmt.string ppf "<all locks>"
  | Set s ->
      if Iss.is_empty s then Fmt.string ppf "no locks"
      else
        Fmt.pf ppf "{%a}"
          Fmt.(list ~sep:(any ", ") (fun ppf uid -> Lock_id.pp ~name_of ppf uid))
          (Iss.to_list s)
