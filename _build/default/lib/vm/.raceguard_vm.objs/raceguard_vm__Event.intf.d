lib/vm/event.mli: Eff Format Raceguard_util
