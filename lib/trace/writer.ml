(** Streaming encoder for the [raceguard-trace/1] compact binary trace.

    Layout (all multi-byte integers are LEB128 varints unless noted):

    {v
    "RGTR"  version=1  schema  meta-count (key value)*     header
    ( Sdef | Ldef | Kdef | Bdef | Snap | Event )*          body
    0x7F  event-count  snapshot-count                      end record
    crc32 (u32 LE, over everything before it)  "RGTE"      footer
    v}

    Strings, source locations, call stacks and heap blocks are interned:
    a definition record is written once, on first use, and every later
    reference is a small integer id — the tables that make the format
    compact.  Each event record carries the introspection data a
    detector tool would query live (clock, the acting thread's call
    stack and name, the accessed heap block), so replay needs no VM.

    Snapshot markers are written every [snapshot_every] events with the
    event index, clock and table sizes — the seek points the time-travel
    and info views use.

    Recorder throughput stats ([trace.record.events], [.bytes],
    [.snapshots], [.events_per_kb]) are published through the
    {!Raceguard_obs.Metrics} registry, so they ride the existing
    snapshot/merge/JSON path. *)

module Vm = Raceguard_vm
module Loc = Raceguard_util.Loc
module Metrics = Raceguard_obs.Metrics

let schema = "raceguard-trace/1"
let magic_head = "RGTR"
let magic_tail = "RGTE"
let version = 1

(* record tags (events live at 0x20 + Event.kind_id) *)
let tag_sdef = 0x01
let tag_ldef = 0x02
let tag_kdef = 0x03
let tag_bdef = 0x04
let tag_snap = 0x05
let tag_end = 0x7F
let tag_event = 0x20

let m_events = Metrics.counter "trace.record.events"
let m_bytes = Metrics.counter "trace.record.bytes"
let m_snapshots = Metrics.counter "trace.record.snapshots"
let g_events_per_kb = Metrics.gauge "trace.record.events_per_kb"

type t = {
  buf : Buffer.t;
  strings : (string, int) Hashtbl.t;
  locs : (Loc.t, int) Hashtbl.t;
  stacks : (int list, int) Hashtbl.t;
  blocks : (int * int * int * int * int * bool, int) Hashtbl.t;
  snapshot_every : int;
  mutable n_strings : int;
  mutable n_locs : int;
  mutable n_stacks : int;
  mutable n_blocks : int;
  mutable events : int;
  mutable snapshots : int;
  mutable last_clock : int;
  (* Physical-equality memos over the structural intern tables.  The VM
     hands tools the SAME cons cells / records between events — a
     thread's [frames] list only changes on call/return, its name never,
     a heap block record only on free — so a [==] probe replaces the
     structural hash (string hashing per loc, list allocation per stack)
     that would otherwise run on every event and dominate record cost.
     Soundness: all memoized values are immutable except a block's
     [freed] field, which the block memo re-checks on every hit. *)
  mutable stack_memo : (Loc.t list * int) option array;  (** indexed by tid *)
  mutable name_memo : (string * int) option array;  (** indexed by tid *)
  mutable loc_memo : (Loc.t * int) option;
  mutable block_memo : (Vm.Memory.block * bool * int) option;
  (* Deferred encoding: the tool hot path only stores references into
     preallocated parallel arrays (struct-of-arrays, zero allocation
     per event: the event, the acting thread's frames pointer, the
     clock) and the interning + varint encode runs at flush time, off
     the run's critical path.  The structural work is unavoidable — the
     workload allocates fresh [Loc.t]s and frame cons cells on every
     call, so interning costs string hashes per event — but paying it
     after the run keeps the recorder's perturbation of the server
     under test to a handful of word stores, which is what the <=10%
     record-overhead budget measures.  Everything captured is immutable
     at flush time: events, [Loc.t]s and the persistent [frames] cons
     cells are never mutated; a thread's name is fixed at creation and
     tids are never reused, so names are captured once per tid.  Heap
     blocks are not captured at all: the event stream itself carries
     every alloc and free, so flush replays a shadow block table
     ([sh_owners]/[sh_blocks]) that answers the [block_of] query —
     including the block's freed flag — exactly as {!Vm.Memory} would
     have answered it live at each event (see {!shadow_alloc}). *)
  mutable p_n : int;  (** captured-but-unencoded events *)
  mutable p_event : Vm.Event.t array;
  mutable p_stack : Loc.t list array;
  mutable p_clock : int array;
  mutable p_name : string option array;  (** indexed by tid, set once *)
  sh_owners : (int, int) Hashtbl.t;  (** word -> block base *)
  sh_blocks : (int, Vm.Memory.block) Hashtbl.t;  (** base -> block *)
  (* metrics are batched: per-event [Metrics] traffic (two domain-local
     lookups per event) is visible against a ~12-byte encode, so the
     counters advance only at snapshot markers and in [contents] *)
  mutable flushed_events : int;
  mutable flushed_bytes : int;
}

let default_snapshot_every = 4096

let create ?(snapshot_every = default_snapshot_every) ?(meta = []) () =
  if snapshot_every <= 0 then invalid_arg "Writer.create: snapshot_every must be positive";
  let buf = Buffer.create (64 * 1024) in
  Buffer.add_string buf magic_head;
  Buffer.add_char buf (Char.chr version);
  Codec.write_string buf schema;
  Codec.write_varint buf (List.length meta);
  List.iter
    (fun (k, v) ->
      Codec.write_string buf k;
      Codec.write_string buf v)
    meta;
  {
    buf;
    strings = Hashtbl.create 64;
    locs = Hashtbl.create 256;
    stacks = Hashtbl.create 256;
    blocks = Hashtbl.create 64;
    snapshot_every;
    n_strings = 0;
    n_locs = 0;
    n_stacks = 0;
    n_blocks = 0;
    events = 0;
    snapshots = 0;
    last_clock = 0;
    stack_memo = Array.make 16 None;
    name_memo = Array.make 16 None;
    loc_memo = None;
    block_memo = None;
    p_n = 0;
    p_event = Array.make 1024 (Vm.Event.E_thread_exit { tid = -1 });
    p_stack = Array.make 1024 [];
    p_clock = Array.make 1024 0;
    p_name = Array.make 16 None;
    sh_owners = Hashtbl.create 1024;
    sh_blocks = Hashtbl.create 256;
    flushed_events = 0;
    flushed_bytes = 0;
  }

let grown a tid =
  let n = ref (Array.length a) in
  while tid >= !n do
    n := !n * 2
  done;
  let a' = Array.make !n None in
  Array.blit a 0 a' 0 (Array.length a);
  a'

(* --- interning: write the def record on first use ------------------- *)

let string_id t s =
  match Hashtbl.find_opt t.strings s with
  | Some id -> id
  | None ->
      let id = t.n_strings in
      t.n_strings <- id + 1;
      Hashtbl.add t.strings s id;
      Buffer.add_char t.buf (Char.chr tag_sdef);
      Codec.write_string t.buf s;
      id

let loc_id_slow t (loc : Loc.t) =
  match Hashtbl.find_opt t.locs loc with
  | Some id -> id
  | None ->
      let file = string_id t (Loc.file loc) in
      let func = string_id t (Loc.func loc) in
      let id = t.n_locs in
      t.n_locs <- id + 1;
      Hashtbl.add t.locs loc id;
      Buffer.add_char t.buf (Char.chr tag_ldef);
      Codec.write_varint t.buf file;
      Codec.write_varint t.buf func;
      Codec.write_varint t.buf (Loc.line loc);
      id

let loc_id t (loc : Loc.t) =
  match t.loc_memo with
  | Some (l, id) when l == loc -> id
  | _ ->
      let id = loc_id_slow t loc in
      t.loc_memo <- Some (loc, id);
      id

let stack_id_slow t (stack : Loc.t list) =
  let ids = List.map (loc_id t) stack in
  match Hashtbl.find_opt t.stacks ids with
  | Some id -> id
  | None ->
      let id = t.n_stacks in
      t.n_stacks <- id + 1;
      Hashtbl.add t.stacks ids id;
      Buffer.add_char t.buf (Char.chr tag_kdef);
      Codec.write_varint t.buf (List.length ids);
      List.iter (Codec.write_varint t.buf) ids;
      id

(* a thread's frames only change on call/return, so consecutive events
   of one thread nearly always hit the [==] probe *)
let stack_id t ~tid (stack : Loc.t list) =
  if tid >= Array.length t.stack_memo then t.stack_memo <- grown t.stack_memo tid;
  match Array.unsafe_get t.stack_memo tid with
  | Some (s, id) when s == stack -> id
  | _ ->
      let id = stack_id_slow t stack in
      Array.unsafe_set t.stack_memo tid (Some (stack, id));
      id

let name_id t ~tid (name : string) =
  if tid >= Array.length t.name_memo then t.name_memo <- grown t.name_memo tid;
  match Array.unsafe_get t.name_memo tid with
  | Some (n, id) when n == name -> id
  | _ ->
      let id = string_id t name in
      Array.unsafe_set t.name_memo tid (Some (name, id));
      id

(* [freed] is the block's freed flag at capture time, not [b.freed]
   now — see {!pending} *)
let block_id_slow t (b : Vm.Memory.block) ~freed =
  let lid = loc_id t b.alloc_loc in
  let sid = stack_id_slow t b.alloc_stack in
  let key = (b.base, b.len, b.alloc_tid, lid, sid, freed) in
  match Hashtbl.find_opt t.blocks key with
  | Some id -> id
  | None ->
      let id = t.n_blocks in
      t.n_blocks <- id + 1;
      Hashtbl.add t.blocks key id;
      Buffer.add_char t.buf (Char.chr tag_bdef);
      Codec.write_varint t.buf b.base;
      Codec.write_varint t.buf b.len;
      Codec.write_varint t.buf b.alloc_tid;
      Codec.write_varint t.buf lid;
      Codec.write_varint t.buf sid;
      Codec.write_bool t.buf freed;
      id

(* the memo must key on the captured [freed] flag: a [==] hit on a
   block whose state changed must re-intern (distinct def record) *)
let block_id t (b : Vm.Memory.block) ~freed =
  match t.block_memo with
  | Some (b', freed', id) when b' == b && freed' = freed -> id
  | _ ->
      let id = block_id_slow t b ~freed in
      t.block_memo <- Some (b, freed, id);
      id

(* --- event payloads ------------------------------------------------- *)

let write_sync buf (s : Vm.Event.sync_ref) =
  let kind, id =
    match s with
    | Vm.Event.Mutex i -> (0, i)
    | Vm.Event.Rwlock i -> (1, i)
    | Vm.Event.Cond i -> (2, i)
    | Vm.Event.Sem i -> (3, i)
  in
  Codec.write_varint buf ((id lsl 2) lor kind)

let write_payload t (ev : Vm.Event.t) =
  let buf = t.buf in
  let v = Codec.write_varint buf in
  let z = Codec.write_zigzag buf in
  let b = Codec.write_bool buf in
  let l loc = v (loc_id t loc) in
  match ev with
  | E_thread_start { tid; name; parent } ->
      v tid;
      v (string_id t name);
      v (match parent with None -> 0 | Some p -> p + 1)
  | E_thread_exit { tid } -> v tid
  | E_spawn { parent; child; loc } ->
      v parent;
      v child;
      l loc
  | E_join { joiner; joined; loc } ->
      v joiner;
      v joined;
      l loc
  | E_read { tid; addr; value; atomic; loc } | E_write { tid; addr; value; atomic; loc } ->
      v tid;
      v addr;
      z value;
      b atomic;
      l loc
  | E_alloc { tid; addr; len; loc } | E_free { tid; addr; len; loc } ->
      v tid;
      v addr;
      v len;
      l loc
  | E_sync_create { tid; sync; name; loc } ->
      v tid;
      write_sync buf sync;
      v (string_id t name);
      l loc
  | E_acquire { tid; lock; mode; loc } ->
      v tid;
      write_sync buf lock;
      b (mode = Vm.Eff.Write_mode);
      l loc
  | E_release { tid; lock; loc } ->
      v tid;
      write_sync buf lock;
      l loc
  | E_cond_signal { tid; cv; broadcast; loc } ->
      v tid;
      v cv;
      b broadcast;
      l loc
  | E_cond_wait_pre { tid; cv; m; loc } | E_cond_wait_post { tid; cv; m; loc } ->
      v tid;
      v cv;
      v m;
      l loc
  | E_sem_post { tid; sem; loc } | E_sem_wait_post { tid; sem; loc } ->
      v tid;
      v sem;
      l loc
  | E_client { tid; req; loc } ->
      v tid;
      (match req with
      | Vm.Eff.Destruct { addr; len } ->
          Buffer.add_char buf '\000';
          v addr;
          v len
      | Vm.Eff.Benign_race { addr; len } ->
          Buffer.add_char buf '\001';
          v addr;
          v len
      | Vm.Eff.Happens_before { tag } ->
          Buffer.add_char buf '\002';
          z tag
      | Vm.Eff.Happens_after { tag } ->
          Buffer.add_char buf '\003';
          z tag);
      l loc

(* Definition records must never appear inside an event record, so
   everything a payload will reference is interned (and its defs
   emitted) before the event tag is written; [write_payload] then only
   sees table hits. *)
let pre_intern t (ev : Vm.Event.t) =
  (match ev with
  | E_thread_start { name; _ } | E_sync_create { name; _ } -> ignore (string_id t name)
  | _ -> ());
  match ev with
  | E_thread_start _ | E_thread_exit _ -> ()
  | E_spawn { loc; _ }
  | E_join { loc; _ }
  | E_read { loc; _ }
  | E_write { loc; _ }
  | E_alloc { loc; _ }
  | E_free { loc; _ }
  | E_sync_create { loc; _ }
  | E_acquire { loc; _ }
  | E_release { loc; _ }
  | E_cond_signal { loc; _ }
  | E_cond_wait_pre { loc; _ }
  | E_cond_wait_post { loc; _ }
  | E_sem_post { loc; _ }
  | E_sem_wait_post { loc; _ }
  | E_client { loc; _ } ->
      ignore (loc_id t loc)

let flush_metrics t =
  let bytes = Buffer.length t.buf in
  Metrics.add m_events (t.events - t.flushed_events);
  Metrics.add m_bytes (bytes - t.flushed_bytes);
  Metrics.set g_events_per_kb (t.events * 1024 / max 1 bytes);
  t.flushed_events <- t.events;
  t.flushed_bytes <- bytes

let maybe_snapshot t =
  if t.events > 0 && t.events mod t.snapshot_every = 0 then begin
    Buffer.add_char t.buf (Char.chr tag_snap);
    Codec.write_varint t.buf t.events;
    Codec.write_varint t.buf t.last_clock;
    Codec.write_varint t.buf t.n_strings;
    Codec.write_varint t.buf t.n_locs;
    Codec.write_varint t.buf t.n_stacks;
    Codec.write_varint t.buf t.n_blocks;
    t.snapshots <- t.snapshots + 1;
    Metrics.incr m_snapshots;
    flush_metrics t
  end

let encode_entry t ~event ~clock ~stack ~thread_name ~block ~freed =
  maybe_snapshot t;
  let tid = Vm.Event.tid event in
  if tid < 0 then invalid_arg "Writer.add_entry: negative tid";
  pre_intern t event;
  let sid = stack_id t ~tid stack in
  let nid = name_id t ~tid thread_name in
  let bid = match block with None -> 0 | Some b -> block_id t b ~freed + 1 in
  Buffer.add_char t.buf (Char.chr (tag_event + Vm.Event.kind_id event));
  write_payload t event;
  if clock < t.last_clock then invalid_arg "Writer.add_entry: clock went backwards";
  Codec.write_varint t.buf (clock - t.last_clock);
  t.last_clock <- clock;
  Codec.write_varint t.buf sid;
  Codec.write_varint t.buf nid;
  (match event with
  | E_read _ | E_write _ -> Codec.write_varint t.buf bid
  | _ -> ());
  t.events <- t.events + 1

(* The shadow block table mirrors {!Vm.Memory}'s [block_of] exactly:
   [owners] maps every word of an allocated range to its block base and
   is never cleared on free (so accesses to freed blocks still resolve,
   which is how use-after-free encodes), fresh ranges never overlap,
   and the allocator reuses a range only whole (size-segregated free
   lists), so a word's range is static once allocated and a realloc
   simply replaces the block record at the same base. *)
let shadow_alloc t ~(event : Vm.Event.t) ~stack =
  match event with
  | E_alloc { tid; addr; len; loc } ->
      let block : Vm.Memory.block =
        { base = addr; len; alloc_tid = tid; alloc_loc = loc; alloc_stack = stack; freed = false }
      in
      Hashtbl.replace t.sh_blocks addr block;
      for w = addr to addr + len - 1 do
        Hashtbl.replace t.sh_owners w addr
      done
  | E_free { addr; _ } -> (
      match Hashtbl.find_opt t.sh_blocks addr with
      | Some b -> b.freed <- true
      | None -> invalid_arg "Writer.flush: free of a block never allocated")
  | _ -> ()

let shadow_block_of t addr =
  match Hashtbl.find_opt t.sh_owners addr with
  | None -> None
  | Some base -> Hashtbl.find_opt t.sh_blocks base

(** Encode every captured-but-unencoded event.  Intern order — and so
    the emitted bytes — is identical to encoding each event as it
    happened, because flush preserves capture order and the shadow
    block table is advanced event by event. *)
let flush t =
  if t.p_n > 0 then begin
    for i = 0 to t.p_n - 1 do
      let event = t.p_event.(i) in
      let stack = t.p_stack.(i) in
      shadow_alloc t ~event ~stack;
      let block =
        match event with
        | E_read { addr; _ } | E_write { addr; _ } -> shadow_block_of t addr
        | _ -> None
      in
      let tid = Vm.Event.tid event in
      let thread_name =
        match if tid >= 0 && tid < Array.length t.p_name then t.p_name.(tid) else None with
        | Some n -> n
        | None -> invalid_arg "Writer.flush: event for a thread never captured"
      in
      let freed = match block with Some b -> b.freed | None -> false in
      encode_entry t ~event ~clock:t.p_clock.(i) ~stack ~thread_name ~block ~freed
    done;
    (* drop the references so flushed capture slots don't pin VM data *)
    Array.fill t.p_event 0 t.p_n (Vm.Event.E_thread_exit { tid = -1 });
    Array.fill t.p_stack 0 t.p_n [];
    t.p_n <- 0
  end

(** Record one event together with the introspection data a live
    detector would query: the acting thread's call stack and name, the
    accessed heap block (reads/writes), and the clock.  Encodes
    eagerly (flushing any deferred captures first, to keep stream
    order). *)
let add_entry t ~event ~clock ~stack ~thread_name ~block =
  flush t;
  let freed = match block with Some (b : Vm.Memory.block) -> b.freed | None -> false in
  encode_entry t ~event ~clock ~stack ~thread_name ~block ~freed

let grow_capture t =
  let n = Array.length t.p_event in
  let n' = n * 2 in
  let g dummy a =
    let a' = Array.make n' dummy in
    Array.blit a 0 a' 0 n;
    a'
  in
  t.p_event <- g (Vm.Event.E_thread_exit { tid = -1 }) t.p_event;
  t.p_stack <- g [] t.p_stack;
  let m = Array.make n' 0 in
  Array.blit t.p_clock 0 m 0 n;
  t.p_clock <- m

(** The VM tool: capture every event of a run — zero analysis, zero
    interning, zero allocation: three word stores into preallocated
    arrays (a thread's name is captured once, on its first event).
    Encoding runs lazily at the first
    {!contents}/{!event_count}/{!byte_size} call. *)
let add_event t (ctx : Vm.Tool.ctx) event =
  let i = t.p_n in
  if i >= Array.length t.p_event then grow_capture t;
  let tid = Vm.Event.tid event in
  if tid >= 0 then begin
    if tid >= Array.length t.p_name then t.p_name <- grown t.p_name tid;
    if Array.unsafe_get t.p_name tid == None then
      Array.unsafe_set t.p_name tid (Some (ctx.thread_name tid))
  end;
  Array.unsafe_set t.p_event i event;
  Array.unsafe_set t.p_stack i (ctx.stack_of tid);
  Array.unsafe_set t.p_clock i (ctx.clock ());
  t.p_n <- i + 1

let tool t = Vm.Tool.make ~name:"trace-recorder" ~on_event:(add_event t)

let event_count t =
  flush t;
  t.events

let snapshot_count t =
  flush t;
  t.snapshots

let byte_size t =
  flush t;
  Buffer.length t.buf

(** Body + end record + CRC-guarded footer.  Non-destructive: the
    writer stays usable, so in-memory record/replay can snapshot the
    stream at any point. *)
let contents t =
  flush t;
  flush_metrics t;
  let tail = Buffer.create 32 in
  Buffer.add_char tail (Char.chr tag_end);
  Codec.write_varint tail t.events;
  Codec.write_varint tail t.snapshots;
  let body = Buffer.contents t.buf ^ Buffer.contents tail in
  let crc = Codec.crc32 body 0 (String.length body) in
  let foot = Buffer.create 8 in
  Codec.write_u32 foot crc;
  Buffer.add_string foot magic_tail;
  body ^ Buffer.contents foot

let to_file t path =
  let oc = open_out_bin path in
  output_string oc (contents t);
  close_out oc
