lib/detector/report.ml: Fmt List Map Raceguard_util Suppression
