lib/util/growvec.mli:
