bin/experiments.ml: Arg Cmd Cmdliner List Printf Raceguard Term
