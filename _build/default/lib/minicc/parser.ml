(** Recursive-descent parser for MiniC++ (precedence climbing for
    expressions).  The real pipeline used ELSA/Elkhound because full
    ISO C++ needs a GLR parser; MiniC++ is deliberately LL so a
    hand-written parser is honest. *)

open Ast

exception Error of string * Token.pos

type t = { mutable toks : Token.t list }

let peek p = match p.toks with [] -> assert false | tok :: _ -> tok
let kind p = (peek p).Token.kind
let pos p = (peek p).Token.pos

let advance p = match p.toks with [] -> () | _ :: rest -> p.toks <- rest

let expect p k =
  let tok = peek p in
  if tok.Token.kind = k then advance p
  else
    raise
      (Error
         ( Printf.sprintf "expected %s, found %s" (Token.describe k)
             (Token.describe tok.Token.kind),
           tok.Token.pos ))

let expect_ident p =
  match kind p with
  | Token.IDENT s ->
      advance p;
      s
  | k -> raise (Error ("expected identifier, found " ^ Token.describe k, pos p))

(* --- expressions ---------------------------------------------------- *)

let binop_of_kind = function
  | Token.PLUS -> Some (Add, 6)
  | Token.MINUS -> Some (Sub, 6)
  | Token.STAR -> Some (Mul, 7)
  | Token.SLASH -> Some (Div, 7)
  | Token.PERCENT -> Some (Mod, 7)
  | Token.EQ -> Some (Eq, 4)
  | Token.NEQ -> Some (Neq, 4)
  | Token.LT -> Some (Lt, 5)
  | Token.LE -> Some (Le, 5)
  | Token.GT -> Some (Gt, 5)
  | Token.GE -> Some (Ge, 5)
  | Token.ANDAND -> Some (And, 3)
  | Token.OROR -> Some (Or, 2)
  | _ -> None

let rec parse_expr p = parse_binary p 0

and parse_binary p min_prec =
  let lhs = parse_unary p in
  let rec loop lhs =
    match binop_of_kind (kind p) with
    | Some (op, prec) when prec >= min_prec ->
        let opos = pos p in
        advance p;
        let rhs = parse_binary p (prec + 1) in
        loop { e = Binop (op, lhs, rhs); epos = opos }
    | _ -> lhs
  in
  loop lhs

and parse_unary p =
  match kind p with
  | Token.BANG ->
      let upos = pos p in
      advance p;
      { e = Unop (Not, parse_unary p); epos = upos }
  | Token.MINUS ->
      let upos = pos p in
      advance p;
      { e = Unop (Neg, parse_unary p); epos = upos }
  | _ -> parse_postfix p

and parse_postfix p =
  let prim = parse_primary p in
  let rec loop e =
    match kind p with
    | Token.DOT -> (
        advance p;
        let fpos = pos p in
        let name = expect_ident p in
        match kind p with
        | Token.LPAREN ->
            let args = parse_args p in
            loop { e = Method_call (e, name, args); epos = fpos }
        | _ -> loop { e = Field (e, name); epos = fpos })
    | _ -> e
  in
  loop prim

and parse_args p =
  expect p Token.LPAREN;
  let rec go acc =
    match kind p with
    | Token.RPAREN ->
        advance p;
        List.rev acc
    | _ -> (
        let e = parse_expr p in
        match kind p with
        | Token.COMMA ->
            advance p;
            go (e :: acc)
        | Token.RPAREN ->
            advance p;
            List.rev (e :: acc)
        | k -> raise (Error ("expected ',' or ')', found " ^ Token.describe k, pos p)))
  in
  go []

and parse_primary p =
  let tpos = pos p in
  match kind p with
  | Token.INT n ->
      advance p;
      { e = Int n; epos = tpos }
  | Token.STRING s ->
      advance p;
      { e = Str s; epos = tpos }
  | Token.KW_null ->
      advance p;
      { e = Null; epos = tpos }
  | Token.KW_this ->
      advance p;
      { e = This; epos = tpos }
  | Token.KW_new ->
      advance p;
      let cls = expect_ident p in
      expect p Token.LPAREN;
      expect p Token.RPAREN;
      { e = New cls; epos = tpos }
  | Token.KW_spawn ->
      advance p;
      let fn = expect_ident p in
      let args = parse_args p in
      { e = Spawn (fn, args); epos = tpos }
  | Token.IDENT name -> (
      advance p;
      match kind p with
      | Token.LPAREN ->
          let args = parse_args p in
          { e = Call (name, args); epos = tpos }
      | _ -> { e = Var name; epos = tpos })
  | Token.LPAREN ->
      advance p;
      let e = parse_expr p in
      expect p Token.RPAREN;
      e
  | k -> raise (Error ("expected expression, found " ^ Token.describe k, tpos))

(* --- statements ----------------------------------------------------- *)

let rec parse_stmt p =
  let spos = pos p in
  match kind p with
  | Token.KW_var ->
      advance p;
      let name = expect_ident p in
      expect p Token.ASSIGN;
      let init = parse_expr p in
      expect p Token.SEMI;
      { s = Var_decl (name, init); spos }
  | Token.KW_if ->
      advance p;
      expect p Token.LPAREN;
      let cond = parse_expr p in
      expect p Token.RPAREN;
      let then_ = parse_block p in
      let else_ =
        if kind p = Token.KW_else then begin
          advance p;
          if kind p = Token.KW_if then [ parse_stmt p ] else parse_block p
        end
        else []
      in
      { s = If (cond, then_, else_); spos }
  | Token.KW_while ->
      advance p;
      expect p Token.LPAREN;
      let cond = parse_expr p in
      expect p Token.RPAREN;
      let body = parse_block p in
      { s = While (cond, body); spos }
  | Token.KW_return ->
      advance p;
      if kind p = Token.SEMI then begin
        advance p;
        { s = Return None; spos }
      end
      else begin
        let e = parse_expr p in
        expect p Token.SEMI;
        { s = Return (Some e); spos }
      end
  | Token.KW_delete ->
      advance p;
      let e = parse_expr p in
      expect p Token.SEMI;
      { s = Delete e; spos }
  | Token.KW_lock ->
      advance p;
      expect p Token.LPAREN;
      let m = parse_expr p in
      expect p Token.RPAREN;
      let body = parse_block p in
      { s = Lock (m, body); spos }
  | Token.LBRACE -> { s = Block (parse_block p); spos }
  | _ -> (
      (* assignment or expression statement: parse an expression, then
         look for '=' *)
      let e = parse_expr p in
      match kind p with
      | Token.ASSIGN -> (
          advance p;
          let rhs = parse_expr p in
          expect p Token.SEMI;
          match e.e with
          | Var name -> { s = Assign (Lvar name, rhs); spos }
          | Field (obj, f) -> { s = Assign (Lfield (obj, f, e.epos), rhs); spos }
          | _ -> raise (Error ("invalid assignment target", e.epos)))
      | _ ->
          expect p Token.SEMI;
          { s = Expr e; spos })

and parse_block p =
  expect p Token.LBRACE;
  let rec go acc =
    match kind p with
    | Token.RBRACE ->
        advance p;
        List.rev acc
    | Token.EOF -> raise (Error ("unexpected end of input in block", pos p))
    | _ -> go (parse_stmt p :: acc)
  in
  go []

(* --- declarations --------------------------------------------------- *)

let parse_fn p =
  let fn_pos = pos p in
  expect p Token.KW_fn;
  let fn_name = expect_ident p in
  expect p Token.LPAREN;
  let rec params acc =
    match kind p with
    | Token.RPAREN ->
        advance p;
        List.rev acc
    | _ -> (
        let name = expect_ident p in
        match kind p with
        | Token.COMMA ->
            advance p;
            params (name :: acc)
        | Token.RPAREN ->
            advance p;
            List.rev (name :: acc)
        | k -> raise (Error ("expected ',' or ')', found " ^ Token.describe k, pos p)))
  in
  let fn_params = params [] in
  let fn_body = parse_block p in
  { fn_name; fn_params; fn_body; fn_pos }

let parse_class p =
  let cls_pos = pos p in
  expect p Token.KW_class;
  let cls_name = expect_ident p in
  let cls_parent =
    if kind p = Token.COLON then begin
      advance p;
      Some (expect_ident p)
    end
    else None
  in
  expect p Token.LBRACE;
  let fields = ref [] and methods = ref [] and dtor = ref None in
  let rec go () =
    match kind p with
    | Token.RBRACE -> advance p
    | Token.KW_var ->
        advance p;
        let name = expect_ident p in
        expect p Token.SEMI;
        fields := name :: !fields;
        go ()
    | Token.KW_fn -> (
        (* method or destructor *)
        let fpos = pos p in
        advance p;
        match kind p with
        | Token.TILDE ->
            advance p;
            let dname = expect_ident p in
            if dname <> cls_name then
              raise (Error ("destructor name must match class name", fpos));
            expect p Token.LPAREN;
            expect p Token.RPAREN;
            let body = parse_block p in
            if !dtor <> None then raise (Error ("duplicate destructor", fpos));
            dtor := Some body;
            go ()
        | _ ->
            let name = expect_ident p in
            expect p Token.LPAREN;
            let rec params acc =
              match kind p with
              | Token.RPAREN ->
                  advance p;
                  List.rev acc
              | _ -> (
                  let pn = expect_ident p in
                  match kind p with
                  | Token.COMMA ->
                      advance p;
                      params (pn :: acc)
                  | Token.RPAREN ->
                      advance p;
                      List.rev (pn :: acc)
                  | k -> raise (Error ("expected ',' or ')', found " ^ Token.describe k, pos p)))
            in
            let fn_params = params [] in
            let fn_body = parse_block p in
            methods := { fn_name = name; fn_params; fn_body; fn_pos = fpos } :: !methods;
            go ())
    | k -> raise (Error ("expected field, method or '}', found " ^ Token.describe k, pos p))
  in
  go ();
  {
    cls_name;
    cls_parent;
    cls_fields = List.rev !fields;
    cls_methods = List.rev !methods;
    cls_dtor = !dtor;
    cls_pos;
  }

let parse_program ~file toks =
  let p = { toks } in
  let rec go acc =
    match kind p with
    | Token.EOF -> List.rev acc
    | Token.KW_class -> go (Dclass (parse_class p) :: acc)
    | Token.KW_fn -> go (Dfn (parse_fn p) :: acc)
    | k -> raise (Error ("expected declaration, found " ^ Token.describe k, pos p))
  in
  { decls = go []; source_file = file }

(** Front-end convenience: lex + parse. *)
let parse_string ~file src = parse_program ~file (Lexer.tokens ~file src)
