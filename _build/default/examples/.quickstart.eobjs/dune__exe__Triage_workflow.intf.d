examples/triage_workflow.mli:
