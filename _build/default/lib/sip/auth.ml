(** Digest-style authentication for REGISTER (RFC 2617 reduced to its
    concurrency-relevant skeleton).

    The nonce cache is a shared mutex-guarded map; challenge creates a
    [Nonce] object, verification unlinks it under the lock and deletes
    it outside — one more instance of the delete-after-unlink pattern
    whose destructor chain the DR annotation must suppress.  Enable
    with [Proxy.config.require_auth]. *)

module Loc = Raceguard_util.Loc
module Api = Raceguard_vm.Api
module Obj_model = Raceguard_cxxsim.Object_model
module Refstring = Raceguard_cxxsim.Refstring
module Containers = Raceguard_cxxsim.Containers

let lc func line = Loc.v "auth.cpp" ("NonceCache::" ^ func) line

(* class Token { int issued_at; int uses; }
   class Nonce : Token { RefString user; int value; } *)
let token_class =
  Obj_model.define ~name:"Token" ~fields:[ "issued_at"; "uses" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.scrub ~file:"auth.cpp" ~base_line:20 cls obj ~strings:[]
        ~ints:[ "issued_at"; "uses" ])
    ()

let nonce_class =
  Obj_model.define ~parent:token_class ~name:"Nonce" ~fields:[ "user"; "value" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.scrub ~file:"auth.cpp" ~base_line:27 cls obj ~strings:[ "user" ]
        ~ints:[ "value" ])
    ()

type t = {
  mutex : Api.Mutex.t;
  nonces : Containers.Map.t;  (** hash(user) -> Nonce address *)
  annotate : bool;
}

let create ~alloc ~annotate =
  {
    mutex = Api.Mutex.create ~loc:(lc "NonceCache" 38) "auth.mutex";
    nonces = Containers.Map.create alloc;
    annotate;
  }

(** The client-side response to a challenge (the "digest"). *)
let response_for ~nonce = (nonce * 31) land 0xFFFFFF

(** Issue a challenge for [user]: create a nonce, replace any previous
    one (deleting it outside the lock), return the nonce value. *)
let challenge t ~user =
  let loc = lc "challenge" 49 in
  Api.with_frame loc @@ fun () ->
  let value = 1 + (Api.random_int 0xFFFFF) in
  let nonce =
    Obj_model.new_ ~loc nonce_class ~init:(fun obj ->
        let cls = nonce_class in
        Obj_model.set ~loc cls obj "issued_at" (Api.now ());
        Obj_model.set ~loc cls obj "uses" 0;
        Obj_model.set ~loc cls obj "user" (Refstring.create ~loc user);
        Obj_model.set ~loc cls obj "value" value)
  in
  let key = Registrar.hash_string user in
  let old =
    Api.Mutex.with_lock ~loc t.mutex (fun () ->
        let old = Containers.Map.find t.nonces key in
        Containers.Map.insert t.nonces key nonce;
        old)
  in
  (match old with
  | Some o when o <> 0 -> Obj_model.delete_ ~loc:(lc "challenge" 67) ~annotate:t.annotate nonce_class o
  | _ -> ());
  value

(** Verify a response: consume the nonce (single use) and check the
    digest.  Returns false for unknown users, stale nonces or wrong
    responses. *)
let verify t ~user ~response =
  let loc = lc "verify" 75 in
  Api.with_frame loc @@ fun () ->
  let key = Registrar.hash_string user in
  let nonce =
    Api.Mutex.with_lock ~loc t.mutex (fun () ->
        match Containers.Map.find t.nonces key with
        | Some n when n <> 0 ->
            ignore (Containers.Map.remove t.nonces key);
            Some n
        | _ -> None)
  in
  match nonce with
  | None -> false
  | Some n ->
      let value = Obj_model.get ~loc nonce_class n "value" in
      let ok = response = response_for ~nonce:value in
      Obj_model.delete_ ~loc:(lc "verify" 90) ~annotate:t.annotate nonce_class n;
      ok
