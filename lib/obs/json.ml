(** A minimal JSON value: printer and recursive-descent parser.

    The observability layer emits machine-readable artefacts (metrics
    snapshots, Chrome [trace_event] files, warning provenance) and the
    test-suite must round-trip them; pulling a JSON library into the
    build for that would be the only external dependency of the whole
    repo, so we keep a ~150-line self-contained implementation here.
    Numbers are floats (like JavaScript); object member order is
    preserved. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let int i = Num (float_of_int i)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_num b x =
  if Float.is_nan x then Buffer.add_string b "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" x)
  else Buffer.add_string b (Printf.sprintf "%.17g" x)

let rec emit ~indent ~level b v =
  let pad n = if indent > 0 then Buffer.add_string b (String.make (n * indent) ' ') in
  let nl () = if indent > 0 then Buffer.add_char b '\n' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num x -> add_num b x
  | Str s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
  | List [] -> Buffer.add_string b "[]"
  | List xs ->
      Buffer.add_char b '[';
      nl ();
      List.iteri
        (fun i x ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (level + 1);
          emit ~indent ~level:(level + 1) b x)
        xs;
      nl ();
      pad level;
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
      Buffer.add_char b '{';
      nl ();
      List.iteri
        (fun i (k, x) ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (level + 1);
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\": ";
          emit ~indent ~level:(level + 1) b x)
        kvs;
      nl ();
      pad level;
      Buffer.add_char b '}'

let to_string ?(indent = 0) v =
  let b = Buffer.create 1024 in
  emit ~indent ~level:0 b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { s : string; mutable i : int }

let error c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.i))
let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None

let skip_ws c =
  while
    c.i < String.length c.s
    && match c.s.[c.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.i <- c.i + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.i <- c.i + 1
  | _ -> error c (Printf.sprintf "expected '%c'" ch)

let literal c word v =
  let n = String.length word in
  if c.i + n <= String.length c.s && String.sub c.s c.i n = word then begin
    c.i <- c.i + n;
    v
  end
  else error c ("expected " ^ word)

let parse_string_body c =
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> c.i <- c.i + 1
    | Some '\\' -> (
        c.i <- c.i + 1;
        match peek c with
        | Some '"' -> Buffer.add_char b '"'; c.i <- c.i + 1; go ()
        | Some '\\' -> Buffer.add_char b '\\'; c.i <- c.i + 1; go ()
        | Some '/' -> Buffer.add_char b '/'; c.i <- c.i + 1; go ()
        | Some 'n' -> Buffer.add_char b '\n'; c.i <- c.i + 1; go ()
        | Some 'r' -> Buffer.add_char b '\r'; c.i <- c.i + 1; go ()
        | Some 't' -> Buffer.add_char b '\t'; c.i <- c.i + 1; go ()
        | Some 'b' -> Buffer.add_char b '\b'; c.i <- c.i + 1; go ()
        | Some 'f' -> Buffer.add_char b '\012'; c.i <- c.i + 1; go ()
        | Some 'u' ->
            if c.i + 5 > String.length c.s then error c "truncated \\u escape";
            let hex = String.sub c.s (c.i + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex) with _ -> error c "bad \\u escape"
            in
            (* BMP only, encoded as UTF-8; enough for our own output *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end;
            c.i <- c.i + 5;
            go ()
        | _ -> error c "bad escape")
    | Some ch ->
        Buffer.add_char b ch;
        c.i <- c.i + 1;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.i in
  let number_char ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while (match peek c with Some ch -> number_char ch | None -> false) do
    c.i <- c.i + 1
  done;
  match float_of_string_opt (String.sub c.s start (c.i - start)) with
  | Some x -> Num x
  | None -> error c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '{' ->
      c.i <- c.i + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.i <- c.i + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          expect c '"';
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.i <- c.i + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              c.i <- c.i + 1;
              List.rev ((k, v) :: acc)
          | _ -> error c "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      c.i <- c.i + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.i <- c.i + 1;
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.i <- c.i + 1;
              elements (v :: acc)
          | Some ']' ->
              c.i <- c.i + 1;
              List.rev (v :: acc)
          | _ -> error c "expected ',' or ']'"
        in
        List (elements [])
      end
  | Some '"' ->
      c.i <- c.i + 1;
      Str (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let parse s =
  let c = { s; i = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.i <> String.length s then Error (Printf.sprintf "trailing garbage at offset %d" c.i)
      else Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors ----------------------------------------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
let to_float_opt = function Num x -> Some x | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
