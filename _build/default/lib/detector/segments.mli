(** Thread segments and their happens-before graph (Figure 2).

    A thread's execution is cut into segments at thread-create and
    thread-join operations (and, with the §5 extension, at
    happens-before annotations).  Memory touched only by totally
    ordered segments is still exclusively owned even if the touching
    threads differ — the VisualThreads refinement. *)

type seg = int

type t

val create : unit -> t

val seg_of : t -> int -> seg
(** The thread's current (active) segment. *)

val on_thread_start : t -> tid:int -> parent:int option -> unit
(** Split the parent's segment: parent continues in a fresh segment,
    the child starts in another, both descending from the segment
    before the create. *)

val on_thread_exit : t -> tid:int -> unit

val on_join : t -> joiner:int -> joined:int -> unit
(** The joiner continues in a fresh segment descending from both its
    own past and the joined thread's final segment. *)

val on_happens_before : t -> tid:int -> tag:int -> unit
(** [ANNOTATE_HAPPENS_BEFORE]: remember the thread's segment under
    [tag] and move the thread to a fresh segment (sender half of a
    create-style edge). *)

val on_happens_after : t -> tid:int -> tag:int -> unit
(** [ANNOTATE_HAPPENS_AFTER]: the thread's next segment descends from
    both its own past and the segment recorded under [tag]; a no-op if
    no matching BEFORE was seen. *)

val happens_before : t -> seg -> seg -> bool
(** Reachability in the segment DAG (reflexive).  Memoised; queries are
    cheap after warm-up. *)

val count : t -> int
(** Number of segments created so far. *)
