(** Container allocators: the GNU libstdc++ pool allocator issue.

    "Memory is reused internally and accesses to the reused memory
    regions are reported as data races, even though the accesses are
    separated by freeing and allocating, as Helgrind does not know
    anything about them.  Fortunately, the allocation strategy of the
    GNU Standard C++ Library is configurable with environment
    variables" (§4).

    [Pooled] reproduces the default pool behaviour: chunks are carved
    out of slabs obtained from the VM heap and recycled on an internal
    free list — no [malloc]/[free] events reach the detector, so the
    shadow state of a chunk leaks from its previous logical lifetime
    into the next one and produces false positives whenever the chunk
    migrates between threads.

    [Direct] reproduces [GLIBCXX_FORCE_NEW]: every allocation goes
    straight to the VM heap, the detector sees every lifetime boundary
    and resets the shadow state. *)

module Loc = Raceguard_util.Loc
module Api = Raceguard_vm.Api
module Injector = Raceguard_faults.Injector

type mode = Direct | Pooled

let pp_mode ppf = function
  | Direct -> Fmt.string ppf "direct (GLIBCXX_FORCE_NEW)"
  | Pooled -> Fmt.string ppf "pooled (default)"

let slab_chunks = 32
(** chunks carved from each slab *)

type t = {
  mode : mode;
  faults : Injector.t option;
  free_lists : (int, int list ref) Hashtbl.t;  (** size -> chunk addresses *)
  mutable slabs_allocated : int;
  mutable pool_hits : int;
}

let create ?faults mode =
  { mode; faults; free_lists = Hashtbl.create 16; slabs_allocated = 0; pool_hits = 0 }

let lc line = Loc.v "pool_allocator.h" "__pool_alloc" line

let alloc t ~loc n =
  (match t.faults with
  | Some inj when Injector.alloc_fails inj -> raise Injector.Out_of_memory
  | _ -> ());
  match t.mode with
  | Direct -> Api.alloc ~loc n
  | Pooled -> (
      let cell =
        match Hashtbl.find_opt t.free_lists n with
        | Some c -> c
        | None ->
            let c = ref [] in
            Hashtbl.replace t.free_lists n c;
            c
      in
      match !cell with
      | chunk :: rest ->
          cell := rest;
          t.pool_hits <- t.pool_hits + 1;
          chunk
      | [] ->
          (* carve a fresh slab into chunks; only the slab allocation
             is visible to the detector *)
          let slab = Api.alloc ~loc:(lc 120) (n * slab_chunks) in
          t.slabs_allocated <- t.slabs_allocated + 1;
          for i = slab_chunks - 1 downto 1 do
            cell := (slab + (i * n)) :: !cell
          done;
          slab)

let free t ~loc addr n =
  match t.mode with
  | Direct -> Api.free ~loc addr
  | Pooled ->
      (* recycled silently: no event reaches the detector *)
      let cell =
        match Hashtbl.find_opt t.free_lists n with
        | Some c -> c
        | None ->
            let c = ref [] in
            Hashtbl.replace t.free_lists n c;
            c
      in
      cell := addr :: !cell

let slabs_allocated t = t.slabs_allocated
let pool_hits t = t.pool_hits
