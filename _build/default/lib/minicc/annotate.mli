(** The automatic source annotation pass (§3.1 / Figure 4): rewrite
    every [delete e;] into [delete ca_deletor_single(e);], the helper
    that announces the destruction to the race detector and returns its
    argument unchanged.  Automatic, transparent (the on-disk source is
    untouched), harmless under normal execution, and idempotent. *)

val annotate : Ast.program -> Ast.program * int
(** Returns the rewritten program and the number of deletes annotated. *)

val unannotated_deletes : Ast.program -> int
(** Raw deletes remaining (build diagnostics; 0 after {!annotate}). *)
