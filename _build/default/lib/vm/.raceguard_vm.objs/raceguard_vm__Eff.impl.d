lib/vm/eff.ml: Effect Fmt Raceguard_util
