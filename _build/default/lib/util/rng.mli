(** Deterministic pseudo-random number generator (splitmix64).

    Every source of nondeterminism in the simulator goes through an
    explicit [Rng.t] so a run is fully reproducible from its seed; we
    avoid [Stdlib.Random] because its state is global and its algorithm
    differs across OCaml releases. *)

type t

val create : seed:int -> t
val copy : t -> t

val next : t -> int
(** A non-negative pseudo-random int. *)

val int : t -> int -> int
(** [int t bound] in [\[0, bound)]; [bound] must be positive. *)

val int_in_range : t -> lo:int -> hi:int -> int
val bool : t -> bool

val chance : t -> num:int -> den:int -> bool
(** True with probability [num/den]. *)

val pick : t -> 'a array -> 'a
val pick_list : t -> 'a list -> 'a
val shuffle_in_place : t -> 'a array -> unit

val split : t -> t
(** Derive an independent stream. *)
