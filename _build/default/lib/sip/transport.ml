(** Simulated datagram transport (the "kernel" socket).

    The test drivers (the SIPp stand-in) and the server exchange wire
    messages through this module.  Payload strings travel through a
    host-level queue — the kernel's socket buffer, invisible to the
    race detector, exactly as a real kernel is invisible to Helgrind.
    A VM semaphore provides the blocking [recvfrom] behaviour.

    On [recv] the payload is copied into a {e freshly allocated} VM
    buffer by the receiving thread — modelling the [read(2)] syscall
    copying into the caller's buffer in the caller's context, which is
    how Valgrind attributes syscall memory effects. *)

module Loc = Raceguard_util.Loc
module Api = Raceguard_vm.Api

let lc func line = Loc.v "transport.cpp" func line

type endpoint = {
  name : string;
  inbox : (string * string) Queue.t;  (** (source, wire) — host level *)
  ready : Api.Sem.t;
  mutable dropped : int;
}

type t = { endpoints : (string, endpoint) Hashtbl.t }

let create () = { endpoints = Hashtbl.create 8 }

(** Must be called from inside the VM (it creates a semaphore). *)
let endpoint t name =
  match Hashtbl.find_opt t.endpoints name with
  | Some ep -> ep
  | None ->
      let ep =
        {
          name;
          inbox = Queue.create ();
          ready = Api.Sem.create ~loc:(lc "socket" 10) ~init:0 (name ^ ".sock");
          dropped = 0;
        }
      in
      Hashtbl.replace t.endpoints name ep;
      ep

(** Send [wire] from [src] to the endpoint named [dst]. *)
let send t ~src ~dst wire =
  match Hashtbl.find_opt t.endpoints dst with
  | None -> ( (* unknown destination: datagram silently dropped *) )
  | Some ep ->
      Queue.push (src, wire) ep.inbox;
      Api.Sem.post ~loc:(lc "sendto" 24) ep.ready

(** Blocking receive: returns the source endpoint name, the address of
    a fresh VM buffer holding the payload (one char per word), and its
    length.  The caller owns (and must free) the buffer. *)
let recv _t ep =
  Api.Sem.wait ~loc:(lc "recvfrom" 31) ep.ready;
  let src, wire = Queue.pop ep.inbox in
  let len = String.length wire in
  let buf = Api.alloc ~loc:(lc "recvfrom" 34) (max 1 len) in
  String.iteri (fun i c -> Api.write ~loc:(lc "recvfrom" 35) (buf + i) (Char.code c)) wire;
  (src, buf, len)

(** Read a received buffer back into a host string (VM reads). *)
let read_buffer buf len =
  String.init len (fun i -> Char.chr (Api.read ~loc:(lc "recvfrom" 41) (buf + i) land 0xff))

(** Non-VM helpers for test drivers inspecting their own inbox after
    the run finished. *)
let drain_host ep =
  let out = ref [] in
  Queue.iter (fun m -> out := m :: !out) ep.inbox;
  List.rev !out

let pending ep = Queue.length ep.inbox
