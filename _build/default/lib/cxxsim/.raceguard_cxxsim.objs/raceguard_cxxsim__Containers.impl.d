lib/cxxsim/containers.ml: Allocator Raceguard_util Raceguard_vm
