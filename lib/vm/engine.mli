(** The virtual machine engine: a deterministic cooperative scheduler
    for simulated threads (the Valgrind-substitute substrate).

    Create a VM, attach tools, then {!run} a main function that uses
    {!Api} operations.  Execution is fully serialised: tools observe
    one totally ordered event stream, and a given (program, seed,
    policy) triple reproduces bit-for-bit. *)

(** {1 Configuration} *)

type policy =
  | Round_robin  (** strict FIFO over ready threads *)
  | Random_seeded  (** uniformly random among ready threads (uses seed) *)
  | Sticky
      (** keep running the current thread until it blocks or exits;
          models a coarse-grained interleaving with few switches *)
  | Scripted of int array
      (** replay a decision script: the k-th nontrivial scheduling
          decision picks ready thread [script.(k) mod n]; past the end
          of the script decisions default to 0 (FIFO).  The backbone of
          systematic schedule exploration ({!Explore}). *)

val pp_policy : Format.formatter -> policy -> unit

type config = {
  seed : int;
  policy : policy;
  reuse_memory : bool;  (** allocator recycles freed blocks *)
  trace_events : bool;  (** record the full event trace in the outcome *)
  max_ops : int;  (** safety valve against runaway simulations *)
  tracer : Raceguard_obs.Trace.t option;
      (** offer every emitted event to this sampling ring tracer
          (Chrome trace_event export); [None] (the default) costs one
          comparison per event *)
  faults : Raceguard_faults.Injector.t option;
      (** fault-injection decision engine for delayed thread starts and
          slow mutex acquisitions; [None] (the default) costs one
          comparison per spawn / free-mutex acquisition.  Fault
          decisions come from the injector's own streams, so the
          scheduler's rng — and therefore every fault-free run — is
          untouched *)
}

val default_config : config

(** {1 Outcomes} *)

type deadlock = {
  dl_cycle : (int * string) list;  (** threads in a waits-for cycle *)
  dl_stuck : (int * string) list;  (** blocked threads with no waker *)
}

val pp_deadlock : Format.formatter -> deadlock -> unit

type run_stats = {
  ops_executed : int;
  scheduler_switches : int;
  threads_created : int;
  final_clock : int;
  memory_allocs : int;
  memory_live_words : int;
}

type outcome = {
  deadlock : deadlock option;
      (** set when the run ended with blocked threads (cyclic wait or
          lost wake-up) or exhausted its operation budget *)
  failures : (int * string * exn) list;
      (** threads that raised, as (tid, name, exn); API misuse (bad
          unlock, double free, out-of-bounds access) lands here *)
  stats : run_stats;
  trace : Event.t array;  (** empty unless [config.trace_events] *)
}

exception Misuse of string
(** Raised {e inside} a simulated thread on API misuse; shows up in
    [failures] unless the program catches it. *)

(** {1 The VM} *)

type t

val create : ?config:config -> unit -> t

val add_tool : t -> Tool.t -> unit
(** Attach a tool; it sees every event from then on.  Any number of
    tools can watch the same run. *)

val run : t -> (unit -> unit) -> outcome
(** Execute [main] as thread 0 until every thread finishes, a deadlock
    is detected, or the op budget runs out.  A VM is single-use: create
    a fresh one per run. *)

val memory : t -> Memory.t

val decision_log : t -> (int * int) list
(** Chronological log of the run's nontrivial scheduling decisions as
    (chosen index, arity) pairs — only decision points with more than
    one ready thread are logged, and only under the [Scripted] policy
    (its sole consumer).  Meaningful after {!run}; used by {!Explore}
    to enumerate alternative schedules. *)
