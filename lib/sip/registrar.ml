(** The registrar: user → contact bindings, guarded by one mutex.

    Binding objects are created by the worker handling a REGISTER,
    stored in a shared map, and later deleted by {e different} workers
    (refresh, unregister, expiry) — correctly: the binding is unlinked
    from the map under the lock and deleted {e outside} it, at which
    point it is private again.  The lock-set algorithm cannot know
    that: the destructor-chain writes happen with an empty lock-set on
    SHARED-MODIFIED memory, producing the paper's dominant
    false-positive class until the DR annotation suppresses it. *)

module Loc = Raceguard_util.Loc
module Api = Raceguard_vm.Api
module Obj_model = Raceguard_cxxsim.Object_model
module Refstring = Raceguard_cxxsim.Refstring
module Containers = Raceguard_cxxsim.Containers

let lc func line = Loc.v "registrar.cpp" ("Registrar::" ^ func) line

(* class Binding { RefString aor; int expires_at; }
   class ContactBinding : Binding { RefString contact, user_agent; int cseq; int q_value; } *)
let binding_class =
  Obj_model.define ~name:"Binding" ~fields:[ "aor"; "expires_at" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.scrub ~file:"registrar.cpp" ~base_line:25 cls obj ~strings:[ "aor" ]
        ~ints:[ "expires_at" ])
    ()

let contact_binding_class =
  Obj_model.define ~parent:binding_class ~name:"ContactBinding"
    ~fields:[ "contact"; "user_agent"; "cseq"; "q_value" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.scrub ~file:"registrar.cpp" ~base_line:34 cls obj
        ~strings:[ "contact"; "user_agent" ] ~ints:[ "cseq"; "q_value" ])
    ()

type t = {
  mutex : Api.Mutex.t;
  bindings : Containers.Map.t;  (** hash(aor) -> binding object address *)
  stats : Stats.t;
  mirror : (int, string * string) Hashtbl.t;
      (** host-side shadow of the bindings map: hash(aor) -> (aor,
          contact).  Maintained next to every map update, with no VM
          reads, so post-run oracles (chaos "no lost registration") can
          inspect the registrar without perturbing the detectors — the
          same idiom as {!Stats}'s metric mirrors. *)
}

let hash_string s =
  let h = ref 5381 in
  String.iter (fun c -> h := (!h * 33) + Char.code c) s;
  !h land 0x3FFFFFFF

let create ~alloc ~stats =
  {
    mutex = Api.Mutex.create ~loc:(lc "Registrar" 50) "registrar.mutex";
    bindings = Containers.Map.create alloc;
    stats;
    mirror = Hashtbl.create 16;
  }

let new_binding ~loc ~aor ~contact ~cseq ~expires_at =
  Obj_model.new_ ~loc contact_binding_class ~init:(fun obj ->
      let cls = contact_binding_class in
      Obj_model.set ~loc cls obj "aor" (Refstring.create ~loc aor);
      Obj_model.set ~loc cls obj "expires_at" expires_at;
      Obj_model.set ~loc cls obj "contact" (Refstring.create ~loc contact);
      Obj_model.set ~loc cls obj "user_agent" (Refstring.create ~loc "SIPp-sim/1.0");
      Obj_model.set ~loc cls obj "cseq" cseq;
      Obj_model.set ~loc cls obj "q_value" 100)

(** Register or refresh a binding.  Returns [`Registered] or
    [`Refreshed].  A refresh unlinks the old binding under the lock and
    deletes it outside (the FP-generating pattern). *)
let register t ~annotate ~aor ~contact ~cseq ~expires =
  let loc = lc "addBinding" 70 in
  Api.with_frame loc @@ fun () ->
  let expires_at = Api.now () + (expires * 100) in
  let fresh = new_binding ~loc ~aor ~contact ~cseq ~expires_at in
  let key = hash_string aor in
  let old =
    Api.Mutex.with_lock ~loc t.mutex (fun () ->
        let old = Containers.Map.find t.bindings key in
        Containers.Map.insert t.bindings key fresh;
        old)
  in
  Hashtbl.replace t.mirror key (aor, contact);
  match old with
  | Some old_binding when old_binding <> 0 ->
      (* delete outside the lock: the object is private again *)
      Obj_model.delete_ ~loc:(lc "addBinding" 82) ~annotate contact_binding_class old_binding;
      `Refreshed
  | _ ->
      Stats.incr_registered t.stats;
      `Registered

(** Remove a binding (REGISTER with Expires: 0). *)
let unregister t ~annotate ~aor =
  let loc = lc "removeBinding" 91 in
  Api.with_frame loc @@ fun () ->
  let key = hash_string aor in
  let victim =
    Api.Mutex.with_lock ~loc t.mutex (fun () ->
        match Containers.Map.find t.bindings key with
        | Some b when b <> 0 ->
            ignore (Containers.Map.remove t.bindings key);
            Some b
        | _ -> None)
  in
  match victim with
  | Some b ->
      Hashtbl.remove t.mirror key;
      Stats.decr_registered t.stats;
      Obj_model.delete_ ~loc:(lc "removeBinding" 103) ~annotate contact_binding_class b;
      true
  | None -> false

(** Look up the current contact for an AOR; copies the contact string
    {e under the lock} (correct code, but the copy bumps a shared
    refcount — a bus-lock site). *)
let lookup t ~aor =
  let loc = lc "lookup" 111 in
  Api.with_frame loc @@ fun () ->
  let key = hash_string aor in
  Api.Mutex.with_lock ~loc t.mutex (fun () ->
      match Containers.Map.find t.bindings key with
      | Some b when b <> 0 ->
          let cls = contact_binding_class in
          let expires_at = Obj_model.get ~loc cls b "expires_at" in
          if expires_at > Api.now () then
            Some (Refstring.copy (Obj_model.get ~loc cls b "contact"))
          else None
      | _ -> None)

(** Delete every expired binding: unlink under the lock, delete
    outside.  Called from the housekeeping timer. *)
let expire_stale t ~annotate =
  let loc = lc "expireStale" 126 in
  Api.with_frame loc @@ fun () ->
  let now = Api.now () in
  let victims = ref [] in
  Api.Mutex.with_lock ~loc t.mutex (fun () ->
      let expired = ref [] in
      Containers.Map.iter t.bindings (fun key b ->
          if b <> 0 then begin
            let e = Obj_model.get ~loc contact_binding_class b "expires_at" in
            if e <= now then expired := (key, b) :: !expired
          end);
      List.iter
        (fun (key, b) ->
          ignore (Containers.Map.remove t.bindings key);
          victims := (key, b) :: !victims)
        !expired);
  List.iter
    (fun (key, b) ->
      Hashtbl.remove t.mirror key;
      Stats.decr_registered t.stats;
      Obj_model.delete_ ~loc:(lc "expireStale" 145) ~annotate contact_binding_class b)
    !victims;
  List.length !victims

let size t =
  Api.Mutex.with_lock ~loc:(lc "size" 150) t.mutex (fun () ->
      Containers.Map.size t.bindings)

(** Host-side view of the current bindings, sorted by AOR — for
    post-run oracles only (no VM traffic). *)
let bound_aors t =
  Hashtbl.fold (fun _ (aor, _) acc -> aor :: acc) t.mirror []
  |> List.sort compare
