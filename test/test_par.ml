(* The work-stealing pool (lib/par/): deque linearizability against a
   sequential model, no lost or duplicated cells under real concurrent
   stealing, the map_cells ≡ Array.map contract, exception
   propagation, --domains 0 resolution — and the determinism pin the
   whole PR rests on: chaos and bench-style digests are byte-identical
   for --domains 1/2/4 on seeds 7 and 42. *)

module Par = Raceguard_par.Par
module Deque = Raceguard_par.Deque
module R = Raceguard
module Det = Raceguard_detector
module Vm = Raceguard_vm
module Sip = Raceguard_sip
module Loc = Raceguard_util.Loc

(* --- deque vs sequential model ------------------------------------- *)

(* The owner-side sequence (push/pop bottom) interleaved with top-side
   steals, all on one domain: every op must agree with a list model
   where the front is the steal end and the back is the push end. *)
type op = Push | Pop | Steal

let gen_ops =
  QCheck2.Gen.(
    list_size (int_range 1 200)
      (oneof [ return Push; return Pop; return Steal ]))

let pp_ops ops =
  String.concat ""
    (List.map (function Push -> "u" | Pop -> "o" | Steal -> "s") ops)

let qc_deque_model =
  QCheck2.Test.make ~count:300 ~name:"deque agrees with the list model"
    ~print:pp_ops gen_ops (fun ops ->
      let d = Deque.create ~capacity:(List.length ops + 1) in
      let model = ref [] (* front = steal end, back = push/pop end *) in
      let next = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Push ->
              Deque.push d !next;
              model := !model @ [ !next ];
              incr next
          | Pop -> (
              let got = Deque.pop d in
              match (got, List.rev !model) with
              | Some x, y :: rest_rev ->
                  if x <> y then ok := false;
                  model := List.rev rest_rev
              | None, [] -> ()
              | _ -> ok := false)
          | Steal -> (
              (* single-domain: a steal may never observe Retry *)
              match (Deque.steal d, !model) with
              | Deque.Stolen x, y :: rest ->
                  if x <> y then ok := false;
                  model := rest
              | Deque.Empty, [] -> ()
              | _ -> ok := false))
        ops;
      !ok && Deque.size d = List.length !model)

(* --- concurrent steals: nothing lost, nothing duplicated ------------ *)

(* One owner pushes [n] tokens and pops between pushes; [thieves]
   domains steal concurrently the whole time.  Afterwards the union of
   everything popped and everything stolen must be exactly {0..n-1},
   each token once. *)
let qc_deque_concurrent =
  QCheck2.Test.make ~count:25 ~name:"concurrent steals lose/duplicate nothing"
    ~print:QCheck2.Print.(pair int int)
    QCheck2.Gen.(pair (int_range 50 400) (int_range 1 3))
    (fun (n, thieves) ->
      let d = Deque.create ~capacity:n in
      let stop = Atomic.make false in
      let stolen = Array.init thieves (fun _ -> ref []) in
      let domains =
        Array.init thieves (fun i ->
            Domain.spawn (fun () ->
                let mine = stolen.(i) in
                while not (Atomic.get stop) do
                  (match Deque.steal d with
                  | Deque.Stolen x -> mine := x :: !mine
                  | Deque.Empty | Deque.Retry -> ());
                  Domain.cpu_relax ()
                done))
      in
      let popped = ref [] in
      for x = 0 to n - 1 do
        Deque.push d x;
        (* pop roughly every third push, mid-stream *)
        if x mod 3 = 0 then
          match Deque.pop d with Some y -> popped := y :: !popped | None -> ()
      done;
      (* drain what the thieves left behind *)
      let rec drain () =
        match Deque.pop d with
        | Some y ->
            popped := y :: !popped;
            drain ()
        | None -> ()
      in
      drain ();
      Atomic.set stop true;
      Array.iter Domain.join domains;
      let all =
        !popped @ List.concat_map (fun r -> !r) (Array.to_list stolen)
      in
      List.sort_uniq compare all = List.init n Fun.id
      && List.length all = n)

(* --- map_cells ≡ Array.map ----------------------------------------- *)

let qc_map_cells_is_map =
  QCheck2.Test.make ~count:60 ~name:"map_cells ≡ Array.map for domains 1/2/4"
    ~print:QCheck2.Print.(list int)
    QCheck2.Gen.(list_size (int_range 0 50) (int_range (-1000) 1000))
    (fun xs ->
      let cells = Array.of_list xs in
      let f x = (x * 31) lxor 7 in
      let expect = Array.map f cells in
      List.for_all
        (fun domains -> Par.map_cells ~domains f cells = expect)
        [ 1; 2; 4 ])

let exn_propagation () =
  (* all cells still run; the lowest-index failure is re-raised *)
  let ran = Array.make 8 false in
  let f i =
    ran.(i) <- true;
    if i = 5 || i = 2 then failwith (Printf.sprintf "cell %d" i) else i
  in
  List.iter
    (fun domains ->
      (match Par.map_cells ~domains f (Array.init 8 Fun.id) with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
          Alcotest.(check string) "lowest-index failure wins" "cell 2" msg);
      Alcotest.(check bool) "every cell still ran" true
        (Array.for_all Fun.id ran);
      Array.fill ran 0 8 false)
    [ 1; 2; 4 ]

let resolve_auto () =
  Alcotest.(check int) "resolve keeps explicit counts" 3 (Par.resolve 3);
  let r = Par.resolve 0 in
  Alcotest.(check bool) "0 resolves to recommended() >= 1" true
    (r = Par.recommended () && r >= 1);
  Alcotest.(check int) "negative also resolves" r (Par.resolve (-2))

let stats_cover_cells () =
  let cells = Array.init 16 Fun.id in
  let _, st = Par.map_cells_stats ~domains:4 (fun x -> x + 1) cells in
  Alcotest.(check int) "every cell counted" 16 st.Par.st_cells;
  Alcotest.(check bool) "steals within bounds" true
    (st.Par.st_steals >= 0 && st.Par.st_steals <= 16)

(* --- determinism pins: chaos and bench digests --------------------- *)

(* a reduced chaos grid — 2 plans × T2 × both resilience settings —
   keeps the pin fast while still spreading cells across workers *)
let pin_config seed =
  {
    R.Chaos.quick with
    R.Chaos.seed;
    plans =
      List.filter_map Raceguard_faults.Plan.lookup [ "drop"; "oom" ]
      |> (function [] -> R.Chaos.quick.R.Chaos.plans | ps -> ps);
    tests = [ Sip.Workload.t2 ];
  }

let chaos_digest config ~domains =
  R.Chaos.matrix_digest (R.Chaos.run { config with R.Chaos.domains })

let chaos_pin seed () =
  let config = pin_config seed in
  let base = chaos_digest config ~domains:1 in
  List.iter
    (fun domains ->
      Alcotest.(check string)
        (Printf.sprintf "seed %d: --domains %d ≡ --domains 1" seed domains)
        base
        (chaos_digest config ~domains))
    [ 2; 4 ]

(* bench-style audit digest: the same per-cell computation the bench
   suite's audit pass does — run a workload under a fresh detector and
   digest the sorted dedup signatures *)
let sig_string (r : Det.Report.t) =
  let kind, frames = Det.Report.signature r in
  Fmt.str "%a@%s" Det.Report.pp_kind kind
    (String.concat ";" (List.map (fun l -> Fmt.str "%a" Loc.pp l) frames))

let audit_cell ~seed (tc, cfg) =
  let h = Det.Helgrind.create cfg in
  let vm = Vm.Engine.create ~config:{ Vm.Engine.default_config with seed } () in
  Vm.Engine.add_tool vm (Det.Helgrind.tool h);
  let transport = Sip.Transport.create () in
  ignore
    (Vm.Engine.run vm (fun () ->
         ignore
           (Sip.Workload.run_test_case ~transport
              ~server_config:R.Runner.default.server tc ())));
  let sigs = List.map (fun (r, _) -> sig_string r) (Det.Helgrind.locations h) in
  Digest.to_hex (Digest.string (String.concat "\n" (List.sort compare sigs)))

let bench_audit_digests ~seed ~domains =
  let cells =
    [| (Sip.Workload.t2, Det.Helgrind.original);
       (Sip.Workload.t2, Det.Helgrind.hwlc_dr);
       (Sip.Workload.t6, Det.Helgrind.original);
       (Sip.Workload.t6, Det.Helgrind.hwlc_dr) |]
  in
  Par.map_cells ~domains (audit_cell ~seed) cells

let bench_pin seed () =
  let base = bench_audit_digests ~seed ~domains:1 in
  List.iter
    (fun domains ->
      Alcotest.(check (array string))
        (Printf.sprintf "seed %d: audit digests at %d domains" seed domains)
        base
        (bench_audit_digests ~seed ~domains))
    [ 2; 4 ]

let suite =
  ( "par",
    [
      QCheck_alcotest.to_alcotest qc_deque_model;
      QCheck_alcotest.to_alcotest qc_deque_concurrent;
      QCheck_alcotest.to_alcotest qc_map_cells_is_map;
      Alcotest.test_case "exception propagation" `Quick exn_propagation;
      Alcotest.test_case "--domains 0 resolution" `Quick resolve_auto;
      Alcotest.test_case "pool stats cover every cell" `Quick stats_cover_cells;
      Alcotest.test_case "chaos digest pin, seed 7" `Quick (chaos_pin 7);
      Alcotest.test_case "chaos digest pin, seed 42" `Quick (chaos_pin 42);
      Alcotest.test_case "bench digest pin, seed 7" `Quick (bench_pin 7);
      Alcotest.test_case "bench digest pin, seed 42" `Quick (bench_pin 42);
    ] )
