lib/vm/msg_queue.ml: Api Raceguard_util
