(** The tool ("skin") interface.

    A tool subscribes to the VM's event stream, exactly like a Valgrind
    tool instruments the intermediate code.  The [ctx] record gives
    tools synchronous read access to VM introspection data (call
    stacks, thread names, heap blocks) without exposing the engine. *)

module Loc = Raceguard_util.Loc

type ctx = {
  stack_of : int -> Loc.t list;
      (** current call stack of a thread, innermost frame first *)
  thread_name : int -> string;
  block_of : int -> Memory.block option;
      (** heap block containing an address, if any *)
  clock : unit -> int;  (** virtual clock *)
}

type t = { name : string; on_event : ctx -> Event.t -> unit }

let make ~name ~on_event = { name; on_event }

(** A tool that invokes a callback on every event; handy in tests. *)
let of_fn name f = { name; on_event = (fun _ctx e -> f e) }
