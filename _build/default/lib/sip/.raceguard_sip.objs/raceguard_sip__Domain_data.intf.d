lib/sip/domain_data.mli: Raceguard_cxxsim
