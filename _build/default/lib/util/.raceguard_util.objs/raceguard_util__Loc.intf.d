lib/util/loc.mli: Format Map Set
