lib/sip/workload.ml: Auth List Printf Proxy Raceguard_util Raceguard_vm Sip_msg String Transport
