lib/detector/suppression.mli: Raceguard_util
