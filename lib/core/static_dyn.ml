(** Cross-check of static lint findings against dynamic detector
    reports.

    The static pass ({!Raceguard_minicc.Static_race}) builds its
    warning stacks exactly like the interpreter builds dynamic frames,
    so a static and a dynamic finding describe the same defect iff
    their (kind, top-[signature_depth] stack) signatures coincide — the
    same signature Valgrind and the {!Report} collector deduplicate
    by.  The disagreements are the interesting part:

    - {b Static_only}: a path the explored schedule never executed
      (the static pass's raison d'être) — or a static false positive
      from its abstractions;
    - {b Dynamic_only}: sharing the lockset algorithm flags but the
      static pass proves fork-join ordered (e.g. a plain write after
      [join]), or code reached through pointers the static pass lost
      to havoc. *)

module Loc = Raceguard_util.Loc
module Report = Raceguard_detector.Report
module Static = Raceguard_minicc.Static_race
module Json = Raceguard_obs.Json

type verdict =
  | Confirmed  (** same signature found statically and dynamically *)
  | Static_only
  | Dynamic_only

type entry = {
  e_verdict : verdict;
  e_kind : Report.kind;
  e_stack : Loc.t list;  (** the signature frames (top 4) *)
}

type t = {
  entries : entry list;  (** confirmed, then static-only, then dynamic-only *)
  n_confirmed : int;
  n_static_only : int;
  n_dynamic_only : int;
}

let rec take n = function
  | [] -> []
  | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest

let sig_of kind stack = (kind, take Report.signature_depth stack)

let sig_compare (k1, s1) (k2, s2) =
  let c = compare k1 k2 in
  if c <> 0 then c else List.compare Loc.compare s1 s2

module Sig_set = Set.Make (struct
  type t = Report.kind * Loc.t list

  let compare = sig_compare
end)

(** Compare the static result with the dynamic reports of one (or
    more) runs of the same program. *)
let cross_check ~(static : Static.result) ~(dynamic : Report.t list) : t =
  let static_sigs =
    List.fold_left
      (fun acc (w : Static.warning) -> Sig_set.add (sig_of w.w_kind w.w_stack) acc)
      Sig_set.empty static.warnings
  in
  let dynamic_sigs =
    List.fold_left
      (fun acc (r : Report.t) -> Sig_set.add (Report.signature r) acc)
      Sig_set.empty dynamic
  in
  let entry v (k, s) = { e_verdict = v; e_kind = k; e_stack = s } in
  let confirmed = Sig_set.inter static_sigs dynamic_sigs in
  let static_only = Sig_set.diff static_sigs dynamic_sigs in
  let dynamic_only = Sig_set.diff dynamic_sigs static_sigs in
  {
    entries =
      List.map (entry Confirmed) (Sig_set.elements confirmed)
      @ List.map (entry Static_only) (Sig_set.elements static_only)
      @ List.map (entry Dynamic_only) (Sig_set.elements dynamic_only);
    n_confirmed = Sig_set.cardinal confirmed;
    n_static_only = Sig_set.cardinal static_only;
    n_dynamic_only = Sig_set.cardinal dynamic_only;
  }

(** Multi-seed cross-check: replay the program under [run] once per
    seed (each replay a cell on the work-stealing pool) and compare
    the static findings against the {e union} of the dynamic
    signatures.  More schedules shrink the static-only bucket — an
    unexecuted path on seed 1 may execute on seed 42.  Set union is
    order-independent and {!cross_check} sorts its entries, so the
    verdicts are identical for any [domains]. *)
let cross_check_seeds ?(domains = 1) ~(static : Static.result)
    ~(run : int -> Report.t list) seeds : t =
  let seeds = Array.of_list (List.sort_uniq compare seeds) in
  let per_seed =
    Raceguard_par.Par.map_cells ~domains:(Raceguard_par.Par.resolve domains) run seeds
  in
  cross_check ~static ~dynamic:(List.concat (Array.to_list per_seed))

let confirmed_sigs t =
  List.filter_map
    (fun e ->
      if e.e_verdict = Confirmed then Some (sig_of e.e_kind e.e_stack) else None)
    t.entries

let verdict_to_string = function
  | Confirmed -> "confirmed"
  | Static_only -> "static-only"
  | Dynamic_only -> "dynamic-only"

let pp ppf t =
  Fmt.pf ppf "static/dynamic cross-check: %d confirmed, %d static-only, %d dynamic-only@\n"
    t.n_confirmed t.n_static_only t.n_dynamic_only;
  List.iter
    (fun e ->
      Fmt.pf ppf "  [%-12s] %a at %a@\n" (verdict_to_string e.e_verdict) Report.pp_kind
        e.e_kind
        Fmt.(list ~sep:(any " <- ") Loc.pp)
        e.e_stack)
    t.entries

let to_json t =
  Json.Obj
    [
      ("confirmed", Json.int t.n_confirmed);
      ("static_only", Json.int t.n_static_only);
      ("dynamic_only", Json.int t.n_dynamic_only);
      ( "entries",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("verdict", Json.Str (verdict_to_string e.e_verdict));
                   ("kind", Json.Str (Fmt.str "%a" Report.pp_kind e.e_kind));
                   ( "stack",
                     Json.List (List.map (fun l -> Json.Str (Loc.to_string l)) e.e_stack) );
                 ])
             t.entries) );
    ]
