(** Semantic checks for MiniC++ programs, performed between parsing and
    annotation/interpretation: acyclic hierarchy, no duplicates,
    variables defined before use, [this] only in methods, known
    functions with matching arities, a parameterless [main]. *)

exception Error of string * Token.pos

val builtins : (string * int) list
(** Builtin functions and their arities. *)

val check_all : Ast.program -> (string * Token.pos) list
(** Every semantic violation with its position, in source-walk order —
    the lint-friendly entry point.  Empty means the program is well
    formed. *)

val check : Ast.program -> unit
(** Raises {!Error} on the first violation (the head of
    {!check_all}). *)
