(** Packed FastTrack epochs: one access stamp [tid × clk] in a single
    immediate int, so the common non-racy access is decided by an O(1)
    compare instead of an O(n) vector-clock walk. *)

type t = int
(** [clk lsl tid_bits | (tid + 1)]; [0] is {!none}. *)

val tid_bits : int
val max_tid : int

val none : t
(** The "no access yet" epoch; all-zero shadow memory is valid. *)

val is_none : t -> bool

val make : tid:int -> clk:int -> t
(** Raises [Invalid_argument] if [tid] exceeds {!max_tid}. *)

val tid : t -> int
val clk : t -> int

val ordered_before : t -> Vector_clock.t -> bool
(** Is the access stamped [e] happened-before the clock state? O(1).
    {!none} is vacuously ordered. *)

val pp : Format.formatter -> t -> unit
