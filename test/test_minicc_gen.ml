(* Generative testing of the MiniC++ pipeline: random well-formed
   programs are pretty-printed, re-parsed, checked, annotated and
   executed.  Properties:

   - pretty/reparse is the identity (modulo printing);
   - the checker accepts every generated program;
   - the interpreter runs them without runtime errors, deadlocks or
     VM misuse;
   - the annotation pass never changes program output;
   - execution is deterministic per seed. *)

module M = Raceguard_minicc
module Vm = Raceguard_vm
module Engine = Vm.Engine
open M.Ast

let pos = { M.Token.file = "gen.mcc"; line = 1; col = 1 }
let e d = { e = d; epos = pos }
let s d = { s = d; spos = pos }

(* --- AST generators --------------------------------------------------- *)

open QCheck2.Gen

(* integer expressions over the variables in scope (no division: the
   generator guarantees crash-freedom) *)
let rec gen_expr ~vars n =
  if n <= 0 then gen_atom ~vars
  else
    oneof
      [
        gen_atom ~vars;
        (let* op = oneofl [ Add; Sub; Mul; Eq; Neq; Lt; Le; Gt; Ge; And; Or ] in
         let* a = gen_expr ~vars (n / 2) in
         let* b = gen_expr ~vars (n / 2) in
         return (e (Binop (op, a, b))));
        (let* a = gen_expr ~vars (n - 1) in
         return (e (Unop (Not, a))));
        (let* a = gen_expr ~vars (n - 1) in
         return (e (Unop (Neg, a))));
      ]

and gen_atom ~vars =
  if vars = [] then map (fun n -> e (Int n)) (int_range (-20) 20)
  else
    oneof
      [
        map (fun n -> e (Int n)) (int_range (-20) 20);
        map (fun v -> e (Var v)) (oneofl vars);
      ]

(* statements writing only to [vars]; bounded loops by construction *)
let gen_stmts ~vars =
  let* items =
    list_size (int_bound 6)
      (oneof
         [
           (let* v = oneofl vars in
            let* ex = gen_expr ~vars 3 in
            return (`Assign (v, ex)));
           (let* ex = gen_expr ~vars 2 in
            return (`Print ex));
           (let* c = gen_expr ~vars 2 in
            let* v = oneofl vars in
            let* a = gen_expr ~vars 2 in
            return (`If (c, v, a)));
           (let* v = oneofl vars in
            let* iters = int_range 1 4 in
            return (`Loop (v, iters)));
         ])
  in
  return
    (List.concat_map
       (function
         | `Assign (v, ex) -> [ s (Assign (Lvar v, ex)) ]
         | `Print ex -> [ s (Expr (e (Call ("print", [ ex ])))) ]
         | `If (c, v, a) -> [ s (If (c, [ s (Assign (Lvar v, a)) ], [])) ]
         | `Loop (v, iters) ->
             (* var __i = 0; while (__i < iters) { v = v + __i; __i = __i + 1; } *)
             let i = "__i_" ^ v in
             [
               s (Var_decl (i, e (Int 0)));
               s
                 (While
                    ( e (Binop (Lt, e (Var i), e (Int iters))),
                      [
                        s (Assign (Lvar v, e (Binop (Add, e (Var v), e (Var i)))));
                        s (Assign (Lvar i, e (Binop (Add, e (Var i), e (Int 1)))));
                      ] ));
             ])
       items)

let gen_function ~name =
  let params = [ "p"; "q" ] in
  let* decls = list_size (int_bound 2) (int_range 0 9) in
  let vars = params @ List.mapi (fun i _ -> Printf.sprintf "v%d" i) decls in
  let decl_stmts =
    List.mapi (fun i init -> s (Var_decl (Printf.sprintf "v%d" i, e (Int init)))) decls
  in
  let* body = gen_stmts ~vars in
  let* ret = gen_expr ~vars 2 in
  return
    {
      fn_name = name;
      fn_params = params;
      fn_body = decl_stmts @ body @ [ s (Return (Some ret)) ];
      fn_pos = pos;
    }

let gen_program =
  let* n_fns = int_range 1 3 in
  let* fns =
    flatten_l (List.init n_fns (fun i -> gen_function ~name:(Printf.sprintf "f%d" i)))
  in
  (* main: declare locals, call the functions, spawn/join one worker *)
  let* main_body = gen_stmts ~vars:[ "a"; "b" ] in
  let calls =
    List.map
      (fun f ->
        s
          (Expr
             (e (Call ("print", [ e (Call (f.fn_name, [ e (Var "a"); e (Int 3) ])) ])))) )
      fns
  in
  let spawn_join =
    [
      s (Var_decl ("t", e (Spawn ((List.hd fns).fn_name, [ e (Int 1); e (Int 2) ]))));
      s (Expr (e (Call ("join", [ e (Var "t") ]))));
    ]
  in
  let main =
    {
      fn_name = "main";
      fn_params = [];
      fn_body =
        [ s (Var_decl ("a", e (Int 5))); s (Var_decl ("b", e (Int 7))) ]
        @ main_body @ calls @ spawn_join
        @ [ s (Return (Some (e (Int 0)))) ];
      fn_pos = pos;
    }
  in
  return { decls = List.map (fun f -> Dfn f) fns @ [ Dfn main ]; source_file = "gen.mcc" }

(* a richer generator exercising the object-oriented surface: classes
   with fields, methods and destructors, allocation, field assignment,
   method calls, scoped lock statements and delete *)
let gen_class_program =
  let* n_fields = int_range 1 3 in
  let fields = List.init n_fields (Printf.sprintf "f%d") in
  let* inits = flatten_l (List.map (fun _ -> int_range 0 9) fields) in
  let* bump = int_range 1 5 in
  let* with_dtor = bool in
  let* with_lock = bool in
  let* extra = gen_stmts ~vars:[ "a" ] in
  let fld o f = e (Field (o, f)) in
  let f0 = List.hd fields in
  let meth =
    {
      fn_name = "bump";
      fn_params = [ "n" ];
      fn_body =
        [
          s
            (Assign
               ( Lfield (e This, f0, pos),
                 e (Binop (Add, fld (e This) f0, e (Var "n"))) ));
          s (Return (Some (fld (e This) f0)));
        ];
      fn_pos = pos;
    }
  in
  let cls =
    {
      cls_name = "C";
      cls_parent = None;
      cls_fields = fields;
      cls_methods = [ meth ];
      cls_dtor =
        (if with_dtor then Some [ s (Assign (Lfield (e This, f0, pos), e (Int 0))) ]
         else None);
      cls_pos = pos;
    }
  in
  let o = e (Var "o") in
  let main_body =
    [ s (Var_decl ("a", e (Int 4))); s (Var_decl ("m", e (Call ("mutex", [ e (Str "g") ])))) ]
    @ [ s (Var_decl ("o", e (New "C"))) ]
    @ List.map2 (fun f v -> s (Assign (Lfield (o, f, pos), e (Int v)))) fields inits
    @ (if with_lock then
         [ s (Lock (e (Var "m"), [ s (Assign (Lfield (o, f0, pos), fld o f0)) ])) ]
       else [])
    @ extra
    @ [
        s (Expr (e (Call ("print", [ e (Method_call (o, "bump", [ e (Int bump) ])) ]))));
        s (Delete o);
        s (Return (Some (e (Int 0))));
      ]
  in
  let main = { fn_name = "main"; fn_params = []; fn_body = main_body; fn_pos = pos } in
  return { decls = [ Dclass cls; Dfn main ]; source_file = "gen.mcc" }

(* --- AST normalisation (round-trip modulo printing) --------------------- *)

(* Two programs are the same modulo printing when they are equal after
   zeroing every source position and folding the two encodings the
   printer legitimately conflates: [Unop (Neg, Int n)] prints as the
   literal [-n], and [Deletor x] prints as the [ca_deletor_single(x)]
   builtin call. *)
let zero_pos = { M.Token.file = ""; line = 0; col = 0 }

let rec norm_expr e0 =
  let d =
    match e0.e with
    | Int n -> Int n
    | Str s -> Str s
    | Null -> Null
    | Var v -> Var v
    | This -> This
    | Field (o, f) -> Field (norm_expr o, f)
    | Binop (op, a, b) -> Binop (op, norm_expr a, norm_expr b)
    | Unop (Neg, a) -> (
        match norm_expr a with
        | { e = Int n; _ } -> Int (-n)
        | a' -> Unop (Neg, a'))
    | Unop (op, a) -> Unop (op, norm_expr a)
    | Call ("ca_deletor_single", [ x ]) -> Deletor (norm_expr x)
    | Call (f, args) -> Call (f, List.map norm_expr args)
    | Method_call (o, m, args) -> Method_call (norm_expr o, m, List.map norm_expr args)
    | New c -> New c
    | Spawn (f, args) -> Spawn (f, List.map norm_expr args)
    | Deletor x -> Deletor (norm_expr x)
  in
  { e = d; epos = zero_pos }

let norm_lvalue = function
  | Lvar v -> Lvar v
  | Lfield (o, f, _) -> Lfield (norm_expr o, f, zero_pos)

let rec norm_stmt s0 =
  let d =
    match s0.s with
    | Var_decl (v, e) -> Var_decl (v, norm_expr e)
    | Assign (lv, e) -> Assign (norm_lvalue lv, norm_expr e)
    | Expr e -> Expr (norm_expr e)
    | If (c, a, b) -> If (norm_expr c, List.map norm_stmt a, List.map norm_stmt b)
    | While (c, b) -> While (norm_expr c, List.map norm_stmt b)
    | Return e -> Return (Option.map norm_expr e)
    | Delete e -> Delete (norm_expr e)
    | Lock (m, b) -> Lock (norm_expr m, List.map norm_stmt b)
    | Block b -> Block (List.map norm_stmt b)
  in
  { s = d; spos = zero_pos }

let norm_fn f =
  { f with fn_body = List.map norm_stmt f.fn_body; fn_pos = zero_pos }

let norm_decl = function
  | Dfn f -> Dfn (norm_fn f)
  | Dclass c ->
      Dclass
        {
          c with
          cls_methods = List.map norm_fn c.cls_methods;
          cls_dtor = Option.map (List.map norm_stmt) c.cls_dtor;
          cls_pos = zero_pos;
        }

let norm p = { decls = List.map norm_decl p.decls; source_file = "" }

let ast_roundtrips p =
  let reparsed = M.Parser.parse_string ~file:"gen.mcc" (M.Pretty.program p) in
  norm reparsed = norm p

(* --- properties -------------------------------------------------------- *)

let execute ?(seed = 1) program =
  let interp = M.Interp.create program in
  let vm = Engine.create ~config:{ Engine.default_config with seed } () in
  let outcome = Engine.run vm (fun () -> M.Interp.run_main interp) in
  (outcome, M.Interp.output interp)

let qc_roundtrip =
  QCheck2.Test.make ~name:"generated programs: pretty/reparse identity" ~count:150 gen_program
    (fun p ->
      let printed = M.Pretty.program p in
      let reparsed = M.Parser.parse_string ~file:"gen.mcc" printed in
      M.Pretty.program reparsed = printed)

let qc_ast_roundtrip =
  QCheck2.Test.make ~name:"generated programs: parse o pretty = id on the AST" ~count:150
    gen_program ast_roundtrips

let qc_ast_roundtrip_classes =
  QCheck2.Test.make
    ~name:"generated class programs: parse o pretty = id on the AST" ~count:150
    gen_class_program ast_roundtrips

let qc_class_checker_accepts =
  QCheck2.Test.make ~name:"generated class programs: checker accepts" ~count:100
    gen_class_program (fun p -> M.Check.check_all p = [])

let test_examples_ast_roundtrip () =
  let read_file path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  Array.iter
    (fun file ->
      let path = "../examples/programs/" ^ file in
      let p =
        M.Preprocess.parse (M.Preprocess.with_builtins ()) ~file:path (read_file path)
      in
      Alcotest.(check bool) (file ^ " round-trips") true (ast_roundtrips p);
      (* the annotated variant exercises the Deletor printing *)
      let annotated, _ = M.Annotate.annotate p in
      Alcotest.(check bool) (file ^ " annotated round-trips") true (ast_roundtrips annotated))
    (Sys.readdir "../examples/programs")

let qc_checker_accepts =
  QCheck2.Test.make ~name:"generated programs: checker accepts" ~count:150 gen_program
    (fun p ->
      match M.Check.check p with () -> true | exception M.Check.Error _ -> false)

let qc_runs_clean =
  QCheck2.Test.make ~name:"generated programs: run without errors" ~count:100 gen_program
    (fun p ->
      let outcome, _ = execute p in
      outcome.failures = [] && outcome.deadlock = None)

let qc_annotation_preserves_output =
  QCheck2.Test.make ~name:"generated programs: annotation preserves output" ~count:100
    gen_program (fun p ->
      let annotated, _ = M.Annotate.annotate p in
      let _, out1 = execute p in
      let _, out2 = execute annotated in
      out1 = out2)

let qc_deterministic =
  QCheck2.Test.make ~name:"generated programs: deterministic per seed" ~count:60 gen_program
    (fun p ->
      let _, a = execute ~seed:9 p in
      let _, b = execute ~seed:9 p in
      a = b)

let suite =
  ( "minicc-gen",
    [
      QCheck_alcotest.to_alcotest qc_roundtrip;
      QCheck_alcotest.to_alcotest qc_ast_roundtrip;
      QCheck_alcotest.to_alcotest qc_ast_roundtrip_classes;
      QCheck_alcotest.to_alcotest qc_class_checker_accepts;
      Alcotest.test_case "example programs: parse o pretty = id on the AST" `Quick
        test_examples_ast_roundtrip;
      QCheck_alcotest.to_alcotest qc_checker_accepts;
      QCheck_alcotest.to_alcotest qc_runs_clean;
      QCheck_alcotest.to_alcotest qc_annotation_preserves_output;
      QCheck_alcotest.to_alcotest qc_deterministic;
    ] )
