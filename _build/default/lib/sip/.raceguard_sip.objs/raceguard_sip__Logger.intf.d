lib/sip/logger.mli: Raceguard_cxxsim Raceguard_util Stats Timeutil
