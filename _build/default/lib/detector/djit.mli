(** DJIT-style happens-before race detector (Itzkovitz et al.) — the
    vector-clock baseline the paper discusses in §2.2.

    Reports only {e apparent} races on the observed execution: accesses
    unordered by the happens-before relation induced by create/join and
    synchronisation.  A subset of the lock-set algorithm's reports on
    the same run, with none of its locking-discipline false positives —
    and with schedule-dependent misses instead. *)

type config = {
  sync_on_cond : bool;
      (** treat condition signal→wait as ordering; §2.2 criticises
          detectors for assuming this holds on all SMP systems *)
  sync_on_sem : bool;  (** treat semaphore post→wait as ordering *)
  sync_on_annotations : bool;  (** honour HAPPENS_BEFORE/AFTER requests *)
  first_only : bool;
      (** stop checking a location after its first report ("it detects
          only the first apparent data race") *)
}

val default_config : config

type t

val create : ?config:config -> ?suppressions:Suppression.t list -> unit -> t
val tool : t -> Raceguard_vm.Tool.t

val on_event : t -> Raceguard_vm.Tool.ctx -> Raceguard_vm.Event.t -> unit
(** Feed one event directly (composition / offline replay). *)

val unordered_now : t -> tid:int -> addr:int -> write:bool -> bool
(** Composition probe: would an access by [tid] to [addr] right now be
    concurrent (unordered) with a previous conflicting access?  Pure.
    [write] makes previous reads conflict too. *)

val reports : t -> Report.t list
val locations : t -> (Report.t * int) list
val location_count : t -> int
val collector : t -> Report.collector
