(** Post-mortem (offline) analysis — the §2.2 / §4.5 trade-off.

    A {!recorder} logs every event together with the introspection data
    a detector would query live (stacks, blocks, clock); {!replay}
    feeds any tool the recorded stream afterwards.  Replaying a
    detector over a recorded trace reproduces its online reports
    exactly (asserted in the test suite); the log's measured
    {!footprint_words} is the "large amounts of data" cost the paper
    attributes to offline techniques. *)

module Vm = Raceguard_vm

type recorder

val create_recorder : unit -> recorder

val tool : recorder -> Vm.Tool.t
(** Attach to the VM to capture the run. *)

val length : recorder -> int
(** Events recorded. *)

val footprint_words : recorder -> int
(** Rough space cost of the log, in words. *)

val replay : recorder -> Vm.Tool.t -> unit
(** Feed the recorded trace through a tool, post mortem. *)
