(** Word-addressed simulated memory with an allocator.

    Addresses are word indices; address 0 is the null pointer and never
    allocated.  Every allocation is recorded as a {!block} carrying the
    allocating thread and call stack, so race reports can print the
    Valgrind-style "Address ... is N words inside a block of size M
    alloc'd by thread T" footer (Figure 9). *)

module Loc = Raceguard_util.Loc

type block = {
  base : int;
  len : int;
  alloc_tid : int;
  alloc_loc : Loc.t;
  alloc_stack : Loc.t list;
  mutable freed : bool;
}

type t

val create : ?reuse:bool -> unit -> t
(** [reuse] (default true): freed blocks are recycled LIFO from
    size-segregated free lists, like a production malloc; with [false]
    every allocation gets fresh addresses. *)

val null : int

val get : t -> int -> int
(** Raises [Invalid_argument] outside the allocated range. *)

val set : t -> int -> int -> unit

val alloc : t -> tid:int -> loc:Loc.t -> stack:Loc.t list -> len:int -> int
(** Returns the base address of a zeroed block. *)

val free : t -> addr:int -> int
(** Returns the freed block's length.  Raises [Invalid_argument] on a
    non-base address or double free. *)

val block_of : t -> int -> block option
(** The block containing an address (live or freed). *)

val live_words : t -> int
val total_allocs : t -> int
val words_used : t -> int
