test/test_classify.ml: Alcotest Fmt List Raceguard Raceguard_detector Raceguard_sip Raceguard_util String
