lib/detector/report.mli: Format Raceguard_util Suppression
