(** Structural diff of two decoded traces: find the first divergent
    event and show it with a window of the shared schedule before it.

    The intended use is cross-seed (or cross-config) comparison of the
    same workload: the first divergence pinpoints where two schedules
    split, which is usually the scheduling decision a seed-dependent
    warning hinges on. *)

module Vm = Raceguard_vm

type divergence = {
  d_index : int;  (** index of the first event that differs *)
  d_left : Reader.entry option;
  d_right : Reader.entry option;
  d_context : Reader.entry list;  (** up to [window] shared events before the split *)
}

let entry_equal (a : Reader.entry) (b : Reader.entry) =
  a.en_event = b.en_event && a.en_clock = b.en_clock && a.en_stack = b.en_stack
  && a.en_thread = b.en_thread

let default_window = 8

(** [first_divergence a b] is [None] when the traces are
    event-identical (same events, clocks, stacks, thread names, same
    length). *)
let first_divergence ?(window = default_window) a b =
  let ea = Reader.entries a and eb = Reader.entries b in
  let na = Array.length ea and nb = Array.length eb in
  let rec go i =
    if i >= na && i >= nb then None
    else if i >= na || i >= nb || not (entry_equal ea.(i) eb.(i)) then
      let context =
        let lo = max 0 (i - window) in
        Array.to_list (Array.sub ea lo (min i na - lo))
      in
      Some
        {
          d_index = i;
          d_left = (if i < na then Some ea.(i) else None);
          d_right = (if i < nb then Some eb.(i) else None);
          d_context = context;
        }
    else go (i + 1)
  in
  go 0

let pp_entry ppf (e : Reader.entry) =
  Fmt.pf ppf "@[<h>#%d clk=%d [%s] %a@]" e.en_index e.en_clock e.en_thread Vm.Event.pp
    e.en_event

let pp_side ppf = function
  | Some e -> pp_entry ppf e
  | None -> Fmt.string ppf "<trace ends here>"

let pp_divergence ppf d =
  Fmt.pf ppf "@[<v>first divergence at event %d@," d.d_index;
  if d.d_context <> [] then begin
    Fmt.pf ppf "shared schedule before the split:@,";
    List.iter (fun e -> Fmt.pf ppf "  %a@," pp_entry e) d.d_context
  end;
  Fmt.pf ppf "left:  %a@,right: %a@]" pp_side d.d_left pp_side d.d_right
