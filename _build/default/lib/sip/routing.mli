(** The routing table: next-hop selection behind a POSIX read-write
    lock — data the original Helgrind reported wholesale because it
    "does not implement" rw-locks (§2.3.2); the HWLC configuration's
    rw-lock-aware lock-sets accept it. *)

type t

val create : domains:string list -> t

val next_hop : t -> domain:string -> (int * int * string) option
(** Read-locked scan: (hop id, cost, gateway name); [None] for unknown
    domains. *)

val refresh : t -> unit
(** Write-locked cost update (run from the housekeeping timer). *)

val refreshes : t -> int
