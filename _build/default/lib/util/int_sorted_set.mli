(** Small immutable integer sets as sorted arrays.

    Lock-sets are tiny (0–3 elements) and the hot operation is
    intersection, so a sorted [int array] beats a balanced tree in both
    constant factor and memory.  All operations are persistent. *)

type t = private int array

val empty : t
val is_empty : t -> bool
val cardinal : t -> int
val mem : int -> t -> bool
val of_list : int list -> t
val to_list : t -> int list
val singleton : int -> t
val add : int -> t -> t
val remove : int -> t -> t
val inter : t -> t -> t
val union : t -> t -> t
val equal : t -> t -> bool
val subset : t -> t -> bool
val pp : (Format.formatter -> int -> unit) -> Format.formatter -> t -> unit
