lib/util/int_sorted_set.mli: Format
