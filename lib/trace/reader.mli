(** Decoder and replay driver for [raceguard-trace/1] traces.

    Decoding validates the whole container up front (magics, version,
    schema, CRC-32 footer, end-record counts) and rejects truncated or
    corrupt input with a descriptive error.  {!replay} then drives any
    set of VM tools over the decoded stream through a synthesised
    {!Raceguard_vm.Tool.ctx} that answers introspection queries from
    the recorded per-event data — no VM, no re-execution. *)

module Vm = Raceguard_vm
module Loc = Raceguard_util.Loc

type entry = {
  en_index : int;  (** 0-based position in the event stream *)
  en_offset : int;  (** byte offset of the event record's tag *)
  en_event : Vm.Event.t;
  en_clock : int;
  en_stack : Loc.t list;  (** acting thread's call stack at the event *)
  en_thread : string;  (** acting thread's name *)
  en_block : Vm.Memory.block option;
      (** reads/writes: the heap block containing the address *)
}

type snapshot_mark = {
  sn_offset : int;  (** byte offset of the marker *)
  sn_index : int;  (** events before this marker *)
  sn_clock : int;
  sn_strings : int;
  sn_locs : int;
  sn_stacks : int;
  sn_blocks : int;
}

type t

val of_string : string -> (t, [ `Msg of string ]) result
val of_file : string -> (t, [ `Msg of string ]) result

val version : t -> int
val schema : t -> string
val meta : t -> (string * string) list
val meta_find : t -> string -> string option
val entries : t -> entry array
val length : t -> int
val snapshots : t -> snapshot_mark list
val byte_size : t -> int

val replay : ?on_event:(entry -> unit) -> t -> Vm.Tool.t list -> unit
(** Feed every entry to each tool, in order.  The ctx seen by the tools
    answers [stack_of]/[thread_name]/[block_of]/[clock] from the
    recorded data, so a detector replayed here observes exactly what it
    would have observed live.  [on_event] fires before the tools see
    each entry. *)
