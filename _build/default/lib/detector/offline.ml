(** Post-mortem (offline) analysis — §2.2 / §4.5.

    "Principally, on-the-fly checkers can work post mortem and hence
    reduce the performance impact due to the online calculations.  But
    they still need logging of the execution trace.  Hence, offline
    techniques suffer from their need for large amounts of data."

    A {!recorder} is a VM tool that logs every event {e together with}
    the introspection data a detector would have queried live (call
    stack, heap block, clock).  {!replay} then feeds any detector tool
    the recorded stream through a synthetic context.  The recorder's
    [footprint_words] makes the space cost measurable — the trade-off
    experiment of §4.5. *)

module Vm = Raceguard_vm
module Loc = Raceguard_util.Loc
module Growvec = Raceguard_util.Growvec

type entry = {
  event : Vm.Event.t;
  stack : Loc.t list;
  thread_name : string;
  block : Vm.Memory.block option;
  clock : int;
}

type recorder = { entries : entry Growvec.t }

let dummy_entry =
  {
    event = Vm.Event.E_thread_exit { tid = -1 };
    stack = [];
    thread_name = "";
    block = None;
    clock = 0;
  }

let create_recorder () = { entries = Growvec.create ~dummy:dummy_entry }

let tool r =
  Vm.Tool.make ~name:"trace-recorder" ~on_event:(fun (ctx : Vm.Tool.ctx) event ->
      let tid = Vm.Event.tid event in
      ignore
        (Growvec.push r.entries
           {
             event;
             stack = ctx.stack_of tid;
             thread_name = ctx.thread_name tid;
             block =
               (match event with
               | Vm.Event.E_read { addr; _ } | Vm.Event.E_write { addr; _ } -> ctx.block_of addr
               | _ -> None);
             clock = ctx.clock ();
           }))

let length r = Growvec.length r.entries

(** Rough space cost of the log, in words — the paper's "heavy memory
    usage" of offline analysis, made concrete. *)
let footprint_words r =
  Growvec.fold
    (fun acc e ->
      (* event record + stack spine + block pointer + name *)
      acc + 8 + (4 * List.length e.stack) + (String.length e.thread_name / 8))
    0 r.entries

(** Feed a recorded trace through a tool, post mortem. *)
let replay r (tool : Vm.Tool.t) =
  Growvec.iter
    (fun e ->
      let ctx : Vm.Tool.ctx =
        {
          stack_of = (fun _ -> e.stack);
          thread_name = (fun _ -> e.thread_name);
          block_of = (fun _ -> e.block);
          clock = (fun () -> e.clock);
        }
      in
      tool.Vm.Tool.on_event ctx e.event)
    r.entries
