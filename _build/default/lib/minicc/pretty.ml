(** Pretty-printer for MiniC++.

    Used to inspect the annotated source exactly as Figure 4 of the
    paper shows the instrumented C++: the annotation pass runs on the
    AST and the pretty-printer renders what "the compiler" would see.
    [print (parse src)] followed by re-parsing is the identity on the
    AST (a property test in the suite). *)

open Ast

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Neq -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "&&" | Or -> "||"

let prec_of = function
  | Or -> 2 | And -> 3
  | Eq | Neq -> 4
  | Lt | Le | Gt | Ge -> 5
  | Add | Sub -> 6
  | Mul | Div | Mod -> 7

let rec expr ?(prec = 0) buf (e : expr) =
  match e.e with
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Str s -> Buffer.add_string buf (Printf.sprintf "%S" s)
  | Null -> Buffer.add_string buf "null"
  | Var v -> Buffer.add_string buf v
  | This -> Buffer.add_string buf "this"
  | Field (o, f) ->
      expr ~prec:10 buf o;
      Buffer.add_char buf '.';
      Buffer.add_string buf f
  | Binop (op, a, b) ->
      let p = prec_of op in
      if p < prec then Buffer.add_char buf '(';
      expr ~prec:p buf a;
      Buffer.add_string buf (" " ^ binop_str op ^ " ");
      expr ~prec:(p + 1) buf b;
      if p < prec then Buffer.add_char buf ')'
  | Unop (Not, a) ->
      Buffer.add_char buf '!';
      expr ~prec:9 buf a
  | Unop (Neg, a) ->
      Buffer.add_char buf '-';
      expr ~prec:9 buf a
  | Call (name, args) -> call buf name args
  | Method_call (o, m, args) ->
      expr ~prec:10 buf o;
      Buffer.add_char buf '.';
      call buf m args
  | New c -> Buffer.add_string buf ("new " ^ c ^ "()")
  | Spawn (f, args) ->
      Buffer.add_string buf "spawn ";
      call buf f args
  | Deletor inner -> call buf "ca_deletor_single" [ inner ]

and call buf name args =
  Buffer.add_string buf name;
  Buffer.add_char buf '(';
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_string buf ", ";
      expr buf a)
    args;
  Buffer.add_char buf ')'

let rec stmt buf ~indent (s : stmt) =
  let pad = String.make indent ' ' in
  let line fmt = Fmt.kstr (fun str -> Buffer.add_string buf (pad ^ str ^ "\n")) fmt in
  let block b = List.iter (stmt buf ~indent:(indent + 2)) b in
  match s.s with
  | Var_decl (n, e) ->
      let b = Buffer.create 32 in
      expr b e;
      line "var %s = %s;" n (Buffer.contents b)
  | Assign (Lvar n, e) ->
      let b = Buffer.create 32 in
      expr b e;
      line "%s = %s;" n (Buffer.contents b)
  | Assign (Lfield (o, f, _), e) ->
      let bo = Buffer.create 32 and be = Buffer.create 32 in
      expr ~prec:10 bo o;
      expr be e;
      line "%s.%s = %s;" (Buffer.contents bo) f (Buffer.contents be)
  | Expr e ->
      let b = Buffer.create 32 in
      expr b e;
      line "%s;" (Buffer.contents b)
  | If (c, a, []) ->
      let b = Buffer.create 32 in
      expr b c;
      line "if (%s) {" (Buffer.contents b);
      block a;
      line "}"
  | If (c, a, e) ->
      let b = Buffer.create 32 in
      expr b c;
      line "if (%s) {" (Buffer.contents b);
      block a;
      line "} else {";
      block e;
      line "}"
  | While (c, body) ->
      let b = Buffer.create 32 in
      expr b c;
      line "while (%s) {" (Buffer.contents b);
      block body;
      line "}"
  | Return None -> line "return;"
  | Return (Some e) ->
      let b = Buffer.create 32 in
      expr b e;
      line "return %s;" (Buffer.contents b)
  | Delete e ->
      let b = Buffer.create 32 in
      expr b e;
      line "delete %s;" (Buffer.contents b)
  | Lock (m, body) ->
      let b = Buffer.create 32 in
      expr b m;
      line "lock (%s) {" (Buffer.contents b);
      block body;
      line "}"
  | Block body ->
      line "{";
      block body;
      line "}"

let fn buf ~indent f =
  let pad = String.make indent ' ' in
  Buffer.add_string buf
    (Printf.sprintf "%sfn %s(%s) {\n" pad f.fn_name (String.concat ", " f.fn_params));
  List.iter (stmt buf ~indent:(indent + 2)) f.fn_body;
  Buffer.add_string buf (pad ^ "}\n")

let class_decl buf c =
  Buffer.add_string buf
    (Printf.sprintf "class %s%s {\n" c.cls_name
       (match c.cls_parent with Some p -> " : " ^ p | None -> ""));
  List.iter (fun f -> Buffer.add_string buf (Printf.sprintf "  var %s;\n" f)) c.cls_fields;
  (match c.cls_dtor with
  | None -> ()
  | Some body ->
      Buffer.add_string buf (Printf.sprintf "  fn ~%s() {\n" c.cls_name);
      List.iter (stmt buf ~indent:4) body;
      Buffer.add_string buf "  }\n");
  List.iter (fn buf ~indent:2) c.cls_methods;
  Buffer.add_string buf "}\n"

(** Render a whole program.  [header_comment] is prepended (the build
    wrapper adds the "#include <valgrind/helgrind.h>" banner for
    annotated output, mirroring Figure 4). *)
let program ?(header_comment = "") (p : program) =
  let buf = Buffer.create 1024 in
  if header_comment <> "" then Buffer.add_string buf (header_comment ^ "\n");
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf '\n';
      match d with Dclass c -> class_decl buf c | Dfn f -> fn buf ~indent:0 f)
    p.decls;
  Buffer.contents buf
