examples/thread_handoff.ml: Raceguard
