(* Property tests over randomly generated concurrent programs.

   These pin the detector's two sides:
   - quietness: programs that follow a consistent locking discipline
     (or never share memory at all) produce zero reports under every
     configuration with the state machine;
   - sensitivity: programs with at least one unlocked write to memory
     written by two threads are reported by pure Eraser (which is
     schedule-independent for write/write because it never delays
     lock-set initialisation);
   - determinism: a (seed, program) pair always yields the same
     reports. *)

module Vm = Raceguard_vm
module Engine = Vm.Engine
module Api = Vm.Api
module Det = Raceguard_detector
module Loc = Raceguard_util.Loc

let loc = Loc.v "gen.c" "main" 1

(* a generated program: [n_threads] workers, [n_vars] shared words,
   [n_locks] mutexes, and per-thread scripts of (var, action) *)
type action = Read | Write | Locked_incr of int  (* lock index *)

type gen_program = {
  n_threads : int;
  n_vars : int;
  n_locks : int;
  scripts : (int * action) list array;  (** per thread: (var, action) *)
}

let gen_action ~n_locks =
  QCheck2.Gen.(
    oneof
      [
        return Read;
        return Write;
        map (fun l -> Locked_incr l) (int_bound (max 0 (n_locks - 1)));
      ])

let gen_program =
  QCheck2.Gen.(
    let* n_threads = int_range 2 4 in
    let* n_vars = int_range 1 4 in
    let* n_locks = int_range 1 3 in
    let* scripts =
      array_size (return n_threads)
        (list_size (int_bound 12) (pair (int_bound (n_vars - 1)) (gen_action ~n_locks)))
    in
    return { n_threads; n_vars; n_locks; scripts })

(* build a VM program from the description; [discipline] maps every
   action on var v to "hold lock (v mod n_locks)" when true *)
let build p ~discipline () =
  let vars = Array.init p.n_vars (fun _ -> Api.alloc ~loc 1) in
  let locks =
    Array.init p.n_locks (fun i -> Api.Mutex.create ~loc (Printf.sprintf "L%d" i))
  in
  let lock_for v = locks.(v mod p.n_locks) in
  let run_script script () =
    List.iter
      (fun (v, action) ->
        let addr = vars.(v) in
        let wloc = Loc.v "gen.c" "worker" (10 + v) in
        match action with
        | Read ->
            if discipline then
              Api.Mutex.with_lock ~loc:wloc (lock_for v) (fun () ->
                  ignore (Api.read ~loc:wloc addr))
            else ignore (Api.read ~loc:wloc addr)
        | Write ->
            if discipline then
              Api.Mutex.with_lock ~loc:wloc (lock_for v) (fun () -> Api.write ~loc:wloc addr 1)
            else Api.write ~loc:wloc addr 1
        | Locked_incr l ->
            let l = if discipline then lock_for v else locks.(l) in
            Api.Mutex.with_lock ~loc:wloc l (fun () ->
                Api.write ~loc:wloc addr (Api.read ~loc:wloc addr + 1)))
      script
  in
  let tids =
    Array.to_list
      (Array.mapi
         (fun i script -> Api.spawn ~loc ~name:(Printf.sprintf "w%d" i) (run_script script))
         p.scripts)
  in
  List.iter (Api.join ~loc) tids

let run_count ?(seed = 1) config program =
  let vm = Engine.create ~config:{ Engine.default_config with seed } () in
  let h = Det.Helgrind.create config in
  Engine.add_tool vm (Det.Helgrind.tool h);
  let outcome = Engine.run vm program in
  assert (outcome.failures = []);
  assert (outcome.deadlock = None);
  Det.Helgrind.location_count h

(* 1. quietness: consistent per-variable locking is never reported *)
let qc_disciplined_is_silent =
  QCheck2.Test.make ~name:"disciplined locking is never reported" ~count:120 gen_program
    (fun p ->
      List.for_all
        (fun seed ->
          run_count ~seed Det.Helgrind.hwlc_dr (build p ~discipline:true) = 0)
        [ 1; 5 ])

(* single-lock discipline must not deadlock and must stay silent even
   for the original configuration *)
let qc_disciplined_original_silent =
  QCheck2.Test.make ~name:"disciplined locking silent under Original too" ~count:80 gen_program
    (fun p -> run_count Det.Helgrind.original (build p ~discipline:true) = 0)

(* 2. thread-local programs are silent: give each thread its own vars *)
let qc_thread_local_is_silent =
  QCheck2.Test.make ~name:"thread-local memory is never reported" ~count:80 gen_program
    (fun p ->
      let program () =
        let run_script script () =
          (* each worker allocates a private copy of everything *)
          let vars = Array.init p.n_vars (fun _ -> Api.alloc ~loc 1) in
          List.iter
            (fun (v, action) ->
              let addr = vars.(v) in
              let wloc = Loc.v "gen.c" "worker" (10 + v) in
              match action with
              | Read -> ignore (Api.read ~loc:wloc addr)
              | Write | Locked_incr _ -> Api.write ~loc:wloc addr 1)
            script
        in
        let tids =
          Array.to_list
            (Array.mapi
               (fun i script ->
                 Api.spawn ~loc ~name:(Printf.sprintf "w%d" i) (run_script script))
               p.scripts)
        in
        List.iter (Api.join ~loc) tids
      in
      run_count Det.Helgrind.hwlc_dr program = 0)

(* 3. sensitivity: if some variable is written by two threads and at
   least one write is unlocked, pure Eraser reports something *)
let qc_pure_eraser_catches_unlocked_shared_writes =
  QCheck2.Test.make ~name:"pure Eraser reports unlocked shared writes" ~count:120 gen_program
    (fun p ->
      let writers = Array.make p.n_vars [] in
      let unlocked_write = Array.make p.n_vars false in
      Array.iteri
        (fun t script ->
          List.iter
            (fun (v, action) ->
              match action with
              | Write ->
                  if not (List.mem t writers.(v)) then writers.(v) <- t :: writers.(v);
                  unlocked_write.(v) <- true
              | Locked_incr _ ->
                  if not (List.mem t writers.(v)) then writers.(v) <- t :: writers.(v)
              | Read -> ())
            script)
        p.scripts;
      let has_racy_var =
        Array.exists Fun.id
          (Array.mapi (fun v w -> List.length writers.(v) >= 2 && w) unlocked_write)
      in
      QCheck2.assume has_racy_var;
      run_count Det.Helgrind.pure_eraser (build p ~discipline:false) > 0)

(* 4. determinism: same seed, same locations, across all configs at once *)
let qc_deterministic =
  QCheck2.Test.make ~name:"detection is deterministic per seed" ~count:60 gen_program
    (fun p ->
      let counts seed =
        List.map
          (fun c -> run_count ~seed c (build p ~discipline:false))
          [ Det.Helgrind.original; Det.Helgrind.hwlc; Det.Helgrind.hwlc_dr ]
      in
      counts 3 = counts 3)

(* 5. monotonicity of the improvements: on any program, HWLC+DR never
   reports more locations than HWLC, which never reports more than
   Original... this is NOT a theorem for arbitrary programs (the
   configurations change state-machine trajectories), but it holds on
   this action vocabulary where annotations only remove reports *)
let qc_config_monotone =
  QCheck2.Test.make ~name:"HWLC and DR only remove reports (this vocabulary)" ~count:80
    gen_program (fun p ->
      let program = build p ~discipline:false in
      let o = run_count Det.Helgrind.original program in
      let h = run_count Det.Helgrind.hwlc program in
      let d = run_count Det.Helgrind.hwlc_dr program in
      h <= o && d <= h)

(* 6. trace well-formedness: on any generated program, the event
   stream satisfies the structural invariants every tool relies on *)
let qc_trace_invariants =
  QCheck2.Test.make ~name:"event streams are well-formed" ~count:80 gen_program (fun p ->
      let events = ref [] in
      let vm = Engine.create ~config:{ Engine.default_config with seed = 2 } () in
      Engine.add_tool vm (Vm.Tool.of_fn "rec" (fun e -> events := e :: !events));
      let outcome = Engine.run vm (build p ~discipline:true) in
      assert (outcome.failures = []);
      let events = List.rev !events in
      let ok = ref true in
      (* every acquire is released by the same thread before it exits;
         locks are never double-granted *)
      let held : (Vm.Event.sync_ref * int) list ref = ref [] in
      let started = Hashtbl.create 8 and exited = Hashtbl.create 8 in
      List.iter
        (fun (e : Vm.Event.t) ->
          (match e with
          | Vm.Event.E_thread_start { tid; _ } -> Hashtbl.replace started tid ()
          | Vm.Event.E_thread_exit { tid } ->
              if List.exists (fun (_, t) -> t = tid) !held then ok := false;
              Hashtbl.replace exited tid ()
          | Vm.Event.E_acquire { tid; lock = Vm.Event.Mutex m; _ } ->
              if List.mem_assoc (Vm.Event.Mutex m) !held then ok := false;
              held := (Vm.Event.Mutex m, tid) :: !held
          | Vm.Event.E_release { tid; lock = Vm.Event.Mutex m; _ } -> (
              match List.assoc_opt (Vm.Event.Mutex m) !held with
              | Some owner when owner = tid ->
                  held := List.remove_assoc (Vm.Event.Mutex m) !held
              | _ -> ok := false)
          | Vm.Event.E_join { joined; _ } ->
              (* a join event only fires for threads that exited *)
              if not (Hashtbl.mem exited joined) then ok := false
          | _ -> ());
          (* no event is attributed to a thread that never started *)
          let tid = Vm.Event.tid e in
          match e with
          | Vm.Event.E_thread_start _ -> ()
          | _ -> if not (Hashtbl.mem started tid) then ok := false)
        events;
      (* everything released at the end *)
      if !held <> [] then ok := false;
      !ok)

let suite =
  ( "properties",
    [
      QCheck_alcotest.to_alcotest qc_disciplined_is_silent;
      QCheck_alcotest.to_alcotest qc_disciplined_original_silent;
      QCheck_alcotest.to_alcotest qc_thread_local_is_silent;
      QCheck_alcotest.to_alcotest qc_pure_eraser_catches_unlocked_shared_writes;
      QCheck_alcotest.to_alcotest qc_deterministic;
      QCheck_alcotest.to_alcotest qc_config_monotone;
      QCheck_alcotest.to_alcotest qc_trace_invariants;
    ] )
