lib/sip/registrar.ml: Char List Raceguard_cxxsim Raceguard_util Raceguard_vm Stats String
