(** Command-line entry point regenerating the paper's tables/figures.

    {v
    raceguard-experiments list               # available experiments
    raceguard-experiments run fig6           # one experiment
    raceguard-experiments run all            # everything
    raceguard-experiments explain T4         # per-warning provenance
    raceguard-experiments trace record T4    # binary trace of a run
    raceguard-experiments trace replay f.rgt # offline multi-detector replay
    raceguard-experiments trace diff a b     # first divergent event
    raceguard-experiments trace info f.rgt   # header/meta/histogram
    v} *)

open Cmdliner

module Det = Raceguard_detector
module Trace = Raceguard_trace
module Obs = Raceguard_obs

let list_cmd =
  let doc = "List available experiments." in
  let run () =
    List.iter
      (fun (name, descr, _) -> Printf.printf "%-10s %s\n" name descr)
      Raceguard.Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run one experiment (or 'all')." in
  let experiment_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT" ~doc:"experiment id")
  in
  let run name =
    let run_one (id, descr, f) =
      Printf.printf "==== %s — %s ====\n%!" id descr;
      print_endline (f ());
      print_newline ()
    in
    if name = "all" then begin
      List.iter run_one Raceguard.Experiments.all;
      `Ok ()
    end
    else
      match List.find_opt (fun (id, _, _) -> id = name) Raceguard.Experiments.all with
      | Some e ->
          run_one e;
          `Ok ()
      | None ->
          `Error
            ( false,
              Printf.sprintf "unknown experiment %S; try 'raceguard-experiments list'" name )
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(ret (const run $ experiment_arg))

let explain_cmd =
  let doc =
    "Explain every warning of a test case: shadow-state history plus the config knobs (hwlc, \
     dr, segments, hb) that would suppress it.  With --from-trace, the explanation is \
     derived by time travel through a recorded trace instead: each provenance transition is \
     resolved to its exact trace offset and the surrounding schedule slice is printed."
  in
  let test_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"TEST" ~doc:"test case (T1..T8); not needed with --from-trace")
  in
  let from_trace_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "from-trace" ] ~docv:"FILE"
          ~doc:"time-travel a recorded raceguard-trace/1 file instead of running a test case")
  in
  let window_arg =
    Arg.(
      value & opt int 4
      & info [ "window" ] ~docv:"N"
          ~doc:"schedule-slice events either side of each transition (with --from-trace)")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"emit machine-readable JSON instead of text")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"VM scheduling seed") in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE" ~doc:"write a Chrome trace_event JSON of the run to $(docv)")
  in
  let sample_arg =
    Arg.(
      value & opt int 1
      & info [ "sample" ] ~docv:"N" ~doc:"trace 1-in-$(docv) offered events (with --trace)")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE" ~doc:"write the run's metrics snapshot JSON to $(docv)")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "worker domains: run each detector configuration as its own cell on the \
             work-stealing pool (1 = sequential, 0 = auto); warnings and attribution are \
             identical for any value")
  in
  let run test from_trace window json seed trace sample metrics domains =
    match from_trace with
    | Some file -> (
        match Raceguard_trace.Reader.of_file file with
        | Error (`Msg m) -> `Error (false, Printf.sprintf "%s: %s" file m)
        | Ok tr ->
            let ft = Raceguard.Trace_ops.explain_from_trace ~window tr in
            if json then
              print_endline
                (Raceguard_obs.Json.to_string ~indent:2
                   (Raceguard.Trace_ops.from_trace_json ft))
            else Fmt.pr "%a@." Raceguard.Trace_ops.pp_from_trace ft;
            `Ok ())
    | None -> (
    match test with
    | None -> `Error (true, "a TEST case (or --from-trace FILE) is required")
    | Some test ->
    match Raceguard.Explain.test_case_of_string test with
    | None -> `Error (false, Printf.sprintf "unknown test case %S (expected T1..T8)" test)
    | Some tc ->
        let module Obs = Raceguard_obs in
        let tracer =
          match trace with
          | None -> None
          | Some _ -> Some (Obs.Trace.create ~capacity:65536 ~sample ())
        in
        let runner = { Raceguard.Runner.default with seed; tracer } in
        let x = Raceguard.Explain.run ~runner ~domains tc in
        if json then print_endline (Obs.Json.to_string ~indent:2 (Raceguard.Explain.to_json x))
        else Fmt.pr "%a@." Raceguard.Explain.pp x;
        (match (trace, tracer) with
        | Some file, Some tr ->
            let oc = open_out file in
            output_string oc (Obs.Trace.to_string tr);
            close_out oc;
            Printf.eprintf "trace: %s (%d records, %d offered)\n%!" file (Obs.Trace.recorded tr)
              (Obs.Trace.offered tr)
        | _ -> ());
        (match metrics with
        | Some file ->
            let oc = open_out file in
            output_string oc
              (Obs.Json.to_string ~indent:2
                 (Obs.Metrics.to_json x.Raceguard.Explain.x_result.Raceguard.Runner.metrics));
            close_out oc;
            Printf.eprintf "metrics: %s\n%!" file
        | None -> ());
        `Ok ())
  in
  Cmd.v
    (Cmd.info "explain" ~doc)
    Term.(
      ret
        (const run $ test_arg $ from_trace_arg $ window_arg $ json_arg $ seed_arg $ trace_arg
       $ sample_arg $ metrics_arg $ domains_arg))

let chaos_cmd =
  let doc =
    "Run the chaos matrix: fault plans crossed with SIP test cases, with and without the \
     proxy's resilience layer, judged by post-run invariant oracles.  Exits non-zero unless \
     every resilient cell is violation-free and at least one baseline cell violates an \
     oracle."
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"emit the raceguard-chaos/1 JSON report")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"CI smoke subset (3 plans on T2/T6)")
  in
  let seed_arg = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"matrix seed") in
  let plan_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ] ~docv:"NAME" ~doc:"run only the named fault plan")
  in
  let test_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "test" ] ~docv:"T" ~doc:"run only the named test case (T1..T10)")
  in
  let no_fast_path_arg =
    Arg.(
      value & flag
      & info [ "no-fast-path" ]
          ~doc:"disable the detector fast path (digests must not change)")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"write the report (JSON or text) to $(docv)")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "worker domains for the cell grid (1 = sequential, 0 = auto); every digest is \
             identical for any value")
  in
  let record_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "record-dir" ] ~docv:"DIR"
          ~doc:
            "record every cell into a raceguard-trace/1 file under $(docv) (created if \
             missing); the recorder is a pure observer, digests are unchanged")
  in
  let run json quick seed plan test no_fast_path out domains record_dir =
    (match record_dir with
    | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
    | _ -> ());
    let base = if quick then Raceguard.Chaos.quick else Raceguard.Chaos.default in
    let config =
      { base with Raceguard.Chaos.seed; fast_path = not no_fast_path; domains; record_dir }
    in
    let with_plan =
      match plan with
      | None -> Ok config
      | Some name -> (
          match Raceguard_faults.Plan.lookup name with
          | Some p ->
              (* a shard plan selects only the scenario half of the
                 grid; a shipped plan only the T1–T8 half *)
              if List.exists (fun (q : Raceguard_faults.Plan.t) -> q.p_name = name)
                   Raceguard_faults.Plan.shard_shipped
              then
                Ok { config with Raceguard.Chaos.plans = []; shard_plans = [ p ] }
              else Ok { config with Raceguard.Chaos.plans = [ p ]; shard_plans = [] }
          | None -> Error (Printf.sprintf "unknown fault plan %S" name))
    in
    match with_plan with
    | Error e -> `Error (false, e)
    | Ok config -> (
        let config =
          match test with
          | None -> config
          | Some t ->
              let only (tc : Raceguard_sip.Workload.test_case) = tc.tc_name = t in
              {
                config with
                Raceguard.Chaos.tests = List.filter only config.Raceguard.Chaos.tests;
                scenario_tests = List.filter only config.Raceguard.Chaos.scenario_tests;
              }
        in
        match (config.Raceguard.Chaos.tests, config.Raceguard.Chaos.scenario_tests) with
        | [], [] -> `Error (false, "no test cases selected (expected T1..T10)")
        | _ ->
            let report = Raceguard.Chaos.run config in
            let rendered =
              if json then
                Raceguard_obs.Json.to_string ~indent:2
                  (Raceguard.Chaos.to_json ~config report)
                ^ "\n"
              else Fmt.str "%a@." Raceguard.Chaos.pp report
            in
            (match out with
            | Some file ->
                let oc = open_out file in
                output_string oc rendered;
                close_out oc;
                Printf.eprintf "chaos report: %s\n%!" file
            | None -> print_string rendered);
            if report.Raceguard.Chaos.rp_resilient_violations > 0 then begin
              (* a resilient cell broke an invariant oracle: the one
                 outcome that must never pass CI — exit 1 outright
                 (cmdliner's `Error path would exit 124, which generic
                 shell wrappers don't treat as a test failure) *)
              Printf.eprintf "chaos matrix FAILED: %d resilient cell violation(s)\n%!"
                report.Raceguard.Chaos.rp_resilient_violations;
              exit 1
            end;
            if Raceguard.Chaos.passed report then `Ok ()
            else `Error (false, "chaos matrix failed: invariant asymmetry not established"))
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      ret
        (const run $ json_arg $ quick_arg $ seed_arg $ plan_arg $ test_arg $ no_fast_path_arg
       $ out_arg $ domains_arg $ record_dir_arg))

(* --- trace: record / replay / diff / info --------------------------- *)

let load_trace file =
  match Trace.Reader.of_file file with
  | Ok t -> Ok t
  | Error (`Msg m) -> Error (Printf.sprintf "%s: %s" file m)

let pp_verdict ppf (v : Det.Offline.verdict) =
  Fmt.pf ppf "%-20s %8d events %4d occurrence(s) %3d location(s)  sig %s  report %s"
    v.v_config v.v_events v.v_occurrences v.v_locations
    (String.sub v.v_sig_digest 0 12)
    (String.sub v.v_report_digest 0 12)

let trace_record_cmd =
  let doc =
    "Record a test case into a compact raceguard-trace/1 binary file: one VM run with the \
     zero-analysis recorder attached.  With --verify-live, every registry detector \
     configuration also observes the same run and its verdict digests are printed — the \
     ground truth a later replay must reproduce."
  in
  let test_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TEST" ~doc:"test case (T1..T8)")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"output file (default $(i,TEST)-$(i,SEED).rgt)")
  in
  let seed_arg = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"VM scheduling seed") in
  let snapshot_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "snapshot-every" ] ~docv:"N" ~doc:"snapshot marker cadence in events")
  in
  let verify_arg =
    Arg.(
      value & flag
      & info [ "verify-live" ]
          ~doc:"attach all registry detector configurations live and print their verdicts")
  in
  let run test out seed snapshot_every verify =
    match Raceguard.Trace_ops.test_case_of_string test with
    | None -> `Error (false, Printf.sprintf "unknown test case %S (expected T1..T8)" test)
    | Some tc ->
        let live = if verify then Det.Offline.configs else [] in
        let r = Raceguard.Trace_ops.record_test ~seed ?snapshot_every ~live tc in
        let file =
          match out with
          | Some f -> f
          | None -> Printf.sprintf "%s-%d.rgt" (String.lowercase_ascii test) seed
        in
        Det.Offline.to_file r.rec_recorder file;
        let w = Det.Offline.writer r.rec_recorder in
        Printf.printf "recorded %s: %d events, %d snapshot(s), %d bytes (%.2f bytes/event)\n"
          file
          (Trace.Writer.event_count w)
          (Trace.Writer.snapshot_count w)
          (Trace.Writer.byte_size w)
          (if Trace.Writer.event_count w = 0 then 0.
           else float_of_int (Trace.Writer.byte_size w) /. float_of_int (Trace.Writer.event_count w));
        List.iter (fun v -> Fmt.pr "live    %a@." pp_verdict v) r.rec_live;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "record" ~doc)
    Term.(ret (const run $ test_arg $ out_arg $ seed_arg $ snapshot_arg $ verify_arg))

let configs_arg =
  Arg.(
    value
    & opt (list string) Det.Offline.configs
    & info [ "configs" ] ~docv:"NAMES"
        ~doc:
          (Printf.sprintf "comma-separated detector configurations (default all: %s)"
             (String.concat ", " Det.Offline.configs)))

let trace_replay_cmd =
  let doc =
    "Replay a recorded trace through detector configurations without re-executing the \
     program.  With --verify-live, the workload named in the trace header is re-run live \
     (same seed) with the same configurations attached and every verdict must be \
     byte-identical, or the command exits 1."
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"trace file")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "fan configurations across worker domains (1 = sequential, 0 = auto); verdicts \
             are identical for any value")
  in
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"emit raceguard-replay/1 JSON") in
  let verify_arg =
    Arg.(
      value & flag
      & info [ "verify-live" ] ~doc:"re-run the recorded workload live and compare verdicts")
  in
  let chrome_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:"also export the trace as Chrome trace_event JSON to $(docv)")
  in
  let run file configs domains json verify chrome =
    match load_trace file with
    | Error e -> `Error (false, e)
    | Ok trace -> (
        let unknown = List.filter (fun c -> not (List.mem c Det.Offline.configs)) configs in
        if unknown <> [] then
          `Error (false, "unknown config(s): " ^ String.concat ", " unknown)
        else
          let replayed = Raceguard.Trace_ops.replay_parallel ~domains ~configs trace in
          let live =
            if not verify then []
            else
              match
                ( Trace.Reader.meta_find trace "workload",
                  Option.bind (Trace.Reader.meta_find trace "seed") int_of_string_opt )
              with
              | Some w, Some seed -> (
                  match Raceguard.Trace_ops.test_case_of_string w with
                  | Some tc ->
                      (Raceguard.Trace_ops.record_test ~seed ~live:configs tc).rec_live
                  | None -> failwith ("trace names unknown workload " ^ w))
              | _ -> failwith "trace header lacks workload/seed meta; cannot verify live"
          in
          (match chrome with
          | Some f ->
              let oc = open_out f in
              output_string oc
                (Obs.Json.to_string ~indent:1 (Raceguard.Trace_ops.chrome_json trace));
              close_out oc;
              Printf.eprintf "chrome trace: %s\n%!" f
          | None -> ());
          if json then
            print_endline
              (Obs.Json.to_string ~indent:2
                 (Raceguard.Trace_ops.replay_json ~live ~trace replayed))
          else begin
            Printf.printf "replayed %s: %d events through %d configuration(s), %d domain(s)\n"
              file (Trace.Reader.length trace) (List.length configs) domains;
            List.iter (fun v -> Fmt.pr "replay  %a@." pp_verdict v) replayed;
            List.iter (fun v -> Fmt.pr "live    %a@." pp_verdict v) live
          end;
          if verify then begin
            let comparison = Raceguard.Trace_ops.compare_verdicts ~live replayed in
            let bad = List.filter (fun (_, v) -> v <> `Match) comparison in
            if bad <> [] then begin
              List.iter
                (fun (name, _) ->
                  Printf.eprintf "REPLAY MISMATCH: %s differs between live and replay\n" name)
                bad;
              exit 1
            end;
            (* stderr: with --json, stdout must stay one parseable object *)
            Printf.eprintf "verify-live OK: %d configuration(s) byte-identical\n"
              (List.length comparison)
          end;
          `Ok ())
  in
  Cmd.v
    (Cmd.info "replay" ~doc)
    Term.(
      ret (const run $ file_arg $ configs_arg $ domains_arg $ json_arg $ verify_arg $ chrome_arg))

let trace_diff_cmd =
  let doc =
    "Compare two recorded traces event by event and report the first divergence with a \
     window of the shared schedule before it.  Exits 1 when the traces diverge (like diff)."
  in
  let left_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"LEFT" ~doc:"first trace file")
  in
  let right_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"RIGHT" ~doc:"second trace file")
  in
  let window_arg =
    Arg.(
      value
      & opt int Trace.Diff.default_window
      & info [ "window" ] ~docv:"N" ~doc:"shared-schedule context events to show")
  in
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"emit raceguard-trace-diff/1 JSON") in
  let run left right window json =
    match (load_trace left, load_trace right) with
    | Error e, _ | _, Error e -> `Error (false, e)
    | Ok a, Ok b ->
        if json then
          print_endline (Obs.Json.to_string ~indent:2 (Raceguard.Trace_ops.diff_json a b))
        else (
          match Trace.Diff.first_divergence ~window a b with
          | None ->
              Printf.printf "traces identical: %d events\n" (Trace.Reader.length a)
          | Some d -> Fmt.pr "%a@." Trace.Diff.pp_divergence d);
        (match Trace.Diff.first_divergence a b with None -> () | Some _ -> exit 1);
        `Ok ()
  in
  Cmd.v
    (Cmd.info "diff" ~doc)
    Term.(ret (const run $ left_arg $ right_arg $ window_arg $ json_arg))

let trace_info_cmd =
  let doc = "Show a recorded trace's header, meta, tables and event-kind histogram." in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"trace file")
  in
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"emit raceguard-trace-info/1 JSON") in
  let run file json =
    match load_trace file with
    | Error e -> `Error (false, e)
    | Ok trace ->
        if json then
          print_endline (Obs.Json.to_string ~indent:2 (Raceguard.Trace_ops.info_json trace))
        else Fmt.pr "%a@." Raceguard.Trace_ops.pp_info trace;
        `Ok ()
  in
  Cmd.v (Cmd.info "info" ~doc) Term.(ret (const run $ file_arg $ json_arg))

let trace_cmd =
  let doc = "Record, replay, diff and inspect raceguard-trace/1 binary traces." in
  Cmd.group (Cmd.info "trace" ~doc)
    [ trace_record_cmd; trace_replay_cmd; trace_diff_cmd; trace_info_cmd ]

let json_check_cmd =
  let doc =
    "Validate that a file parses with the project's own JSON parser and report its schema \
     (CI smoke for machine-readable outputs)."
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"JSON file")
  in
  let run file =
    let ic = open_in_bin file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    let module Json = Raceguard_obs.Json in
    match Json.parse s with
    | Ok j ->
        let schema =
          match j with
          | Json.Obj fields -> (
              match List.assoc_opt "schema" fields with
              | Some (Json.Str s) -> s
              | _ -> "<none>")
          | _ -> "<not an object>"
        in
        Printf.printf "%s: ok (schema %s)\n" file schema;
        `Ok ()
    | Error e -> `Error (false, Printf.sprintf "%s: JSON parse error: %s" file e)
  in
  Cmd.v (Cmd.info "json-check" ~doc) Term.(ret (const run $ file_arg))

let scenario_cmd =
  let doc =
    "List, export and validate the data-driven storm workload scenarios \
     (raceguard-scenario/1).  Without arguments, lists the shipped scenarios (T9/T10); \
     with NAME, prints that scenario (--json for the JSON document); with --check FILE, \
     parses an external scenario document, validates it and confirms it round-trips."
  in
  let name_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"shipped scenario name (T9, T10)")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"emit the raceguard-scenario/1 JSON document")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"write the output to $(docv)")
  in
  let check_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "check" ] ~docv:"FILE"
          ~doc:"parse and validate $(docv) as a raceguard-scenario/1 document")
  in
  let module Scenario = Raceguard_sip.Workload.Scenario in
  let emit out rendered =
    match out with
    | Some file ->
        let oc = open_out file in
        output_string oc rendered;
        close_out oc;
        Printf.eprintf "scenario: %s\n%!" file
    | None -> print_string rendered
  in
  let describe (sc : Scenario.t) =
    let sharded =
      match sc.sc_sharding with
      | None -> "unsharded"
      | Some sp ->
          Printf.sprintf "sharded %d..%d (grow at %d/shard)" sp.sp_initial sp.sp_max_shards
            sp.sp_grow_at
    in
    Printf.sprintf "%-4s %d agent(s), %s — %s" sc.sc_name (List.length sc.sc_agents) sharded
      sc.sc_description
  in
  let run name json out check =
    match check with
    | Some file -> (
        let ic = open_in_bin file in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        match Scenario.of_string s with
        | Error e -> `Error (false, Printf.sprintf "%s: %s" file e)
        | Ok sc -> (
            (* round-trip: the parsed value must re-serialize to a
               document that parses back to the same value *)
            match Scenario.of_string (Obs.Json.to_string (Scenario.to_json sc)) with
            | Ok sc' when sc' = sc ->
                Printf.printf "%s: ok (schema %s, %s)\n" file Scenario.schema (describe sc);
                `Ok ()
            | Ok _ -> `Error (false, Printf.sprintf "%s: round-trip mismatch" file)
            | Error e -> `Error (false, Printf.sprintf "%s: round-trip parse error: %s" file e)))
    | None -> (
        match name with
        | None ->
            List.iter
              (fun sc -> print_endline (describe sc))
              Raceguard.Scenarios.sip_scenarios;
            `Ok ()
        | Some n -> (
            match Raceguard.Scenarios.sip_lookup n with
            | None -> `Error (false, Printf.sprintf "unknown scenario %S (expected T9/T10)" n)
            | Some sc ->
                let rendered =
                  if json then
                    Obs.Json.to_string ~indent:2 (Scenario.to_json sc) ^ "\n"
                  else describe sc ^ "\n"
                in
                emit out rendered;
                `Ok ()))
  in
  Cmd.v (Cmd.info "scenario" ~doc)
    Term.(ret (const run $ name_arg $ json_arg $ out_arg $ check_arg))

let fix_cmd =
  let doc =
    "Automatically repair confirmed data races in a MiniC++ program: static-lockset-driven \
     patch synthesis with four-stage verification (static re-analysis, lock-order safety, \
     dynamic re-runs, behaviour oracles).  Emits the raceguard-fix/1 document with --json \
     and the combined repaired source with --out-dir.  Exits 2 when a verified patch fails \
     the emitted-source recheck."
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC++ source file")
  in
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"emit raceguard-fix/1 JSON") in
  let seeds_arg =
    Arg.(
      value
      & opt (list int) Raceguard_fix.Engine.default_seeds
      & info [ "seeds" ] ~docv:"S1,S2,.." ~doc:"verification schedule seeds")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"worker domains for the verification fan-out (0 = auto)")
  in
  let out_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out-dir" ] ~docv:"DIR"
          ~doc:"write the repaired source as DIR/<base>.fixed.mcc (created if missing)")
  in
  let run file json seeds domains out_dir =
    let ic = open_in_bin file in
    let src = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Raceguard_fix.Engine.run ~seeds ~domains ~file ~src () with
    | Error e -> `Error (false, e)
    | Ok t ->
        if json then
          print_endline (Obs.Json.to_string ~indent:2 (Raceguard_fix.Engine.to_json t))
        else Fmt.pr "%a@." Raceguard_fix.Engine.pp t;
        Option.iter
          (fun dir ->
            match t.Raceguard_fix.Engine.t_combined_source with
            | None -> ()
            | Some repaired ->
                if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
                let base = Filename.remove_extension (Filename.basename file) in
                let path = Filename.concat dir (base ^ ".fixed.mcc") in
                let oc = open_out path in
                output_string oc repaired;
                close_out oc;
                if not json then Fmt.pr "wrote %s@." path)
          out_dir;
        if t.Raceguard_fix.Engine.t_recheck_ok then `Ok () else exit 2
  in
  Cmd.v (Cmd.info "fix" ~doc)
    Term.(ret (const run $ file_arg $ json_arg $ seeds_arg $ domains_arg $ out_dir_arg))

let () =
  let doc = "Reproduce the tables and figures of the paper." in
  let info = Cmd.info "raceguard-experiments" ~version:"0.9" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; run_cmd; explain_cmd; chaos_cmd; fix_cmd; trace_cmd; json_check_cmd;
            scenario_cmd;
          ]))
