(** Hand-written lexer for MiniC++. *)

exception Error of string * Token.pos

type t = {
  src : string;
  file : string;
  mutable off : int;
  mutable line : int;
  mutable bol : int;  (** offset of beginning of current line *)
}

let create ~file src = { src; file; off = 0; line = 1; bol = 0 }

let pos t = { Token.file = t.file; line = t.line; col = t.off - t.bol + 1 }

let peek t = if t.off < String.length t.src then Some t.src.[t.off] else None

let advance t =
  (match peek t with
  | Some '\n' ->
      t.line <- t.line + 1;
      t.bol <- t.off + 1
  | _ -> ());
  t.off <- t.off + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_trivia t =
  match peek t with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance t;
      skip_trivia t
  | Some '/' when t.off + 1 < String.length t.src && t.src.[t.off + 1] = '/' ->
      while peek t <> None && peek t <> Some '\n' do
        advance t
      done;
      skip_trivia t
  | Some '/' when t.off + 1 < String.length t.src && t.src.[t.off + 1] = '*' ->
      let p = pos t in
      advance t;
      advance t;
      let rec go () =
        match peek t with
        | None -> raise (Error ("unterminated block comment", p))
        | Some '*' when t.off + 1 < String.length t.src && t.src.[t.off + 1] = '/' ->
            advance t;
            advance t
        | Some _ ->
            advance t;
            go ()
      in
      go ();
      skip_trivia t
  | _ -> ()

let lex_number t p =
  let start = t.off in
  while (match peek t with Some c when is_digit c -> true | _ -> false) do
    advance t
  done;
  { Token.kind = Token.INT (int_of_string (String.sub t.src start (t.off - start))); pos = p }

let lex_ident t p =
  let start = t.off in
  while (match peek t with Some c when is_ident_char c -> true | _ -> false) do
    advance t
  done;
  let s = String.sub t.src start (t.off - start) in
  let kind =
    match Token.keyword_of_string s with Some kw -> kw | None -> Token.IDENT s
  in
  { Token.kind; pos = p }

let lex_string t p =
  advance t;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek t with
    | None -> raise (Error ("unterminated string literal", p))
    | Some '"' -> advance t
    | Some '\\' ->
        advance t;
        (match peek t with
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some c -> Buffer.add_char buf c
        | None -> raise (Error ("unterminated escape", p)));
        advance t;
        go ()
    | Some c ->
        Buffer.add_char buf c;
        advance t;
        go ()
  in
  go ();
  { Token.kind = Token.STRING (Buffer.contents buf); pos = p }

let next t =
  skip_trivia t;
  let p = pos t in
  let single kind =
    advance t;
    { Token.kind; pos = p }
  in
  let double kind =
    advance t;
    advance t;
    { Token.kind; pos = p }
  in
  let second = if t.off + 1 < String.length t.src then Some t.src.[t.off + 1] else None in
  match peek t with
  | None -> { Token.kind = Token.EOF; pos = p }
  | Some c when is_digit c -> lex_number t p
  | Some c when is_ident_start c -> lex_ident t p
  | Some '"' -> lex_string t p
  | Some '{' -> single Token.LBRACE
  | Some '}' -> single Token.RBRACE
  | Some '(' -> single Token.LPAREN
  | Some ')' -> single Token.RPAREN
  | Some ';' -> single Token.SEMI
  | Some ',' -> single Token.COMMA
  | Some ':' -> single Token.COLON
  | Some '.' -> single Token.DOT
  | Some '~' -> single Token.TILDE
  | Some '+' -> single Token.PLUS
  | Some '-' -> single Token.MINUS
  | Some '*' -> single Token.STAR
  | Some '/' -> single Token.SLASH
  | Some '%' -> single Token.PERCENT
  | Some '=' when second = Some '=' -> double Token.EQ
  | Some '=' -> single Token.ASSIGN
  | Some '!' when second = Some '=' -> double Token.NEQ
  | Some '!' -> single Token.BANG
  | Some '<' when second = Some '=' -> double Token.LE
  | Some '<' -> single Token.LT
  | Some '>' when second = Some '=' -> double Token.GE
  | Some '>' -> single Token.GT
  | Some '&' when second = Some '&' -> double Token.ANDAND
  | Some '|' when second = Some '|' -> double Token.OROR
  | Some c -> raise (Error (Printf.sprintf "unexpected character %C" c, p))

(** Tokenise a whole source string. *)
let tokens ~file src =
  let t = create ~file src in
  let rec go acc =
    let tok = next t in
    if tok.Token.kind = Token.EOF then List.rev (tok :: acc) else go (tok :: acc)
  in
  go []
