lib/vm/api.mli: Raceguard_util
