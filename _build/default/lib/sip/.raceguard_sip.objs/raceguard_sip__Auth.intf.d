lib/sip/auth.mli: Raceguard_cxxsim
