lib/minicc/check.mli: Ast Token
