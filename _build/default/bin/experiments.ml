(** Command-line entry point regenerating the paper's tables/figures.

    {v
    raceguard-experiments list          # available experiments
    raceguard-experiments run fig6      # one experiment
    raceguard-experiments run all       # everything
    v} *)

open Cmdliner

let list_cmd =
  let doc = "List available experiments." in
  let run () =
    List.iter
      (fun (name, descr, _) -> Printf.printf "%-10s %s\n" name descr)
      Raceguard.Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run one experiment (or 'all')." in
  let experiment_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT" ~doc:"experiment id")
  in
  let run name =
    let run_one (id, descr, f) =
      Printf.printf "==== %s — %s ====\n%!" id descr;
      print_endline (f ());
      print_newline ()
    in
    if name = "all" then begin
      List.iter run_one Raceguard.Experiments.all;
      `Ok ()
    end
    else
      match List.find_opt (fun (id, _, _) -> id = name) Raceguard.Experiments.all with
      | Some e ->
          run_one e;
          `Ok ()
      | None ->
          `Error
            ( false,
              Printf.sprintf "unknown experiment %S; try 'raceguard-experiments list'" name )
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(ret (const run $ experiment_arg))

let () =
  let doc = "Reproduce the tables and figures of the paper." in
  let info = Cmd.info "raceguard-experiments" ~version:"0.9" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd ]))
