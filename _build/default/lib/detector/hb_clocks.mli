(** Shared happens-before clock maintenance for the vector-clock-based
    detectors ({!Djit}, {!Racetrack}): one clock per thread, advanced
    and joined along create/join, lock release→acquire, and
    (configurably) condition-variable, semaphore and annotation
    edges. *)

type config = {
  sync_on_cond : bool;
  sync_on_sem : bool;
  sync_on_annotations : bool;
}

val default_config : config
(** All edge sources on. *)

type t

val create : ?config:config -> unit -> t

val on_event : t -> Raceguard_vm.Event.t -> unit
(** Absorb one event's effect on the clocks (memory events are
    ignored).  Call before consulting the queries below for the same
    event's access. *)

val thread_vc : t -> int -> Vector_clock.t
(** The thread's current clock (created on first use). *)

val clock_of : t -> int -> int
(** The thread's own component — the stamp to record on a shadow
    cell. *)

val ordered_before : t -> tid:int -> clk:int -> now:int -> bool
(** Is an access stamped (tid, clk) happens-before thread [now]'s
    current state? *)
