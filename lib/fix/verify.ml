(** Four-stage patch verification.

    A candidate patch is only {e verified} when all four stages pass:

    {ol
    {- {b static}: re-running {!Static_race.analyse} on the patched AST
       shows every repaired signature gone and no signature that was
       not already in the original analysis;}
    {- {b lock-order}: the patched program's static acquisition-nesting
       graph ({!Rewrite.lock_nest_edges} fed through
       {!Lock_order.Static_graph}) contains no inversion pair absent
       from the original's, and the dynamic lock-order tool reports no
       new signature on any verification schedule;}
    {- {b dynamic}: on every schedule seed, the repaired reports are
       gone and every report {e not} attributable to the patched group
       is byte-identical to the original run's rendering;}
    {- {b behaviour}: chaos-matrix-style invariant oracles — every
       patched run terminates without thread failures or deadlock, the
       output shape matches the original run on every seed, and
       wherever the original output was schedule-independent the
       patched output agrees with it.}}

    All patched-program schedules are fanned across domains with
    {!Raceguard_par.Par.map_cells}; verdicts are identical for any
    domain count, like every other campaign in the repo. *)

module M = Raceguard_minicc
module Det = Raceguard_detector
module Vm = Raceguard_vm
module Par = Raceguard_par.Par
module Report = Det.Report
module Loc = Raceguard_util.Loc

type sigkey = Report.kind * Loc.t list

type stage = { sg_name : string; sg_ok : bool; sg_detail : string }

(** Everything one deterministic schedule of one program variant
    yields, ready for byte- and signature-level comparison. *)
type seed_run = {
  sr_seed : int;
  sr_race_rendered : (sigkey * string) list;  (** sorted [Report.pp] renderings *)
  sr_race_sigs : sigkey list;
  sr_lo_sigs : sigkey list;  (** lock-order report signatures *)
  sr_reports : Report.t list;  (** the raw race reports, for cross-checking *)
  sr_output : string list;
  sr_deadlock : bool;
  sr_failures : int;
}

let run_seed (p : M.Ast.program) seed : seed_run =
  let ast, _n = M.Annotate.annotate p in
  let interp = M.Interp.create ast in
  let vm = Vm.Engine.create ~config:{ Vm.Engine.default_config with seed } () in
  let helgrind = Det.Helgrind.create Det.Helgrind.hwlc_dr in
  let lo = Det.Lock_order.create () in
  Vm.Engine.add_tool vm (Det.Helgrind.tool helgrind);
  Vm.Engine.add_tool vm (Det.Lock_order.tool lo);
  let outcome = Vm.Engine.run vm (fun () -> M.Interp.run_main interp) in
  let races = List.map fst (Det.Helgrind.locations helgrind) in
  {
    sr_seed = seed;
    sr_race_rendered =
      List.sort compare
        (List.map (fun r -> (Report.signature r, Fmt.str "%a" Report.pp r)) races);
    sr_race_sigs = List.sort_uniq compare (List.map Report.signature races);
    sr_lo_sigs =
      List.sort_uniq compare
        (List.map (fun (r, _) -> Report.signature r) (Det.Lock_order.locations lo));
    sr_reports = races;
    sr_output = M.Interp.output interp;
    sr_deadlock = outcome.Vm.Engine.deadlock <> None;
    sr_failures = List.length outcome.Vm.Engine.failures;
  }

(** One run per seed, fanned across domains. *)
let run_seeds ?(domains = 1) (p : M.Ast.program) (seeds : int list) : seed_run list =
  Par.map_cells ~domains:(Par.resolve domains) (run_seed p) (Array.of_list seeds)
  |> Array.to_list

let static_sigs (r : M.Static_race.result) =
  List.sort_uniq compare
    (List.map
       (fun (w : M.Static_race.warning) ->
         Raceguard.Static_dyn.sig_of w.M.Static_race.w_kind w.M.Static_race.w_stack)
       r.M.Static_race.warnings)

(* --- stage 1: static ------------------------------------------------ *)

let stage_static ~orig_static ~patched_static ~fixed =
  let so = static_sigs orig_static and sp = static_sigs patched_static in
  let still = List.filter (fun s -> List.mem s sp) fixed in
  let fresh = List.filter (fun s -> not (List.mem s so)) sp in
  {
    sg_name = "static";
    sg_ok = still = [] && fresh = [];
    sg_detail =
      (if still <> [] then Fmt.str "%d repaired warning(s) still present" (List.length still)
       else if fresh <> [] then Fmt.str "%d new static warning(s)" (List.length fresh)
       else
         Fmt.str "%d -> %d static warnings, repaired signatures gone"
           (List.length so) (List.length sp));
  }

(* --- stage 2: lock order -------------------------------------------- *)

let stage_lock_order ~orig_prog ~patched_prog ~orig_runs ~patched_runs =
  let intern = Hashtbl.create 16 in
  let id k =
    match Hashtbl.find_opt intern k with
    | Some i -> i
    | None ->
        let i = Hashtbl.length intern in
        Hashtbl.replace intern k i;
        i
  in
  let graph p =
    Det.Lock_order.Static_graph.of_edges
      (List.map (fun (a, b) -> (id a, id b)) (Rewrite.lock_nest_edges p))
  in
  let inv_o = Det.Lock_order.Static_graph.inversions (graph orig_prog) in
  let inv_p = Det.Lock_order.Static_graph.inversions (graph patched_prog) in
  let new_invs = List.filter (fun e -> not (List.mem e inv_o)) inv_p in
  let lo_union runs = List.sort_uniq compare (List.concat_map (fun r -> r.sr_lo_sigs) runs) in
  let new_dyn =
    List.filter (fun s -> not (List.mem s (lo_union orig_runs))) (lo_union patched_runs)
  in
  {
    sg_name = "lock-order";
    sg_ok = new_invs = [] && new_dyn = [];
    sg_detail =
      (if new_invs <> [] then
         Fmt.str "%d new acquisition-order inversion(s)" (List.length new_invs)
       else if new_dyn <> [] then
         Fmt.str "%d new dynamic lock-order report(s)" (List.length new_dyn)
       else
         Fmt.str "no new inversion (%d order pair(s) checked)"
           (List.length (Det.Lock_order.Static_graph.edges (graph patched_prog))));
  }

(* --- stage 3: dynamic ------------------------------------------------ *)

let stage_dynamic ~orig_runs ~patched_runs ~fixed ~group =
  let errs = ref [] in
  List.iter2
    (fun (o : seed_run) (pt : seed_run) ->
      let leftover = List.filter (fun s -> List.mem s fixed) pt.sr_race_sigs in
      if leftover <> [] then
        errs := Fmt.str "seed %d: repaired report still fires" o.sr_seed :: !errs;
      let fresh = List.filter (fun s -> not (List.mem s o.sr_race_sigs)) pt.sr_race_sigs in
      if fresh <> [] then
        errs := Fmt.str "seed %d: %d new dynamic report(s)" o.sr_seed (List.length fresh) :: !errs;
      let outside runs =
        List.filter_map
          (fun (s, rendered) -> if List.mem s group then None else Some rendered)
          runs.sr_race_rendered
      in
      if outside o <> outside pt then
        errs := Fmt.str "seed %d: reports outside the patched group changed" o.sr_seed :: !errs)
    orig_runs patched_runs;
  {
    sg_name = "dynamic";
    sg_ok = !errs = [];
    sg_detail =
      (match !errs with
      | [] ->
          Fmt.str "repaired reports gone on %d schedule(s); all others byte-identical"
            (List.length patched_runs)
      | e -> String.concat "; " (List.sort_uniq compare e));
  }

(* --- stage 4: behaviour oracles -------------------------------------- *)

let stage_behaviour ~orig_runs ~patched_runs =
  let errs = ref [] in
  List.iter2
    (fun (o : seed_run) (pt : seed_run) ->
      if pt.sr_failures > 0 then
        errs := Fmt.str "seed %d: %d thread failure(s)" o.sr_seed pt.sr_failures :: !errs;
      if pt.sr_deadlock then errs := Fmt.str "seed %d: deadlock" o.sr_seed :: !errs;
      if List.length pt.sr_output <> List.length o.sr_output then
        errs := Fmt.str "seed %d: output length changed" o.sr_seed :: !errs)
    orig_runs patched_runs;
  (* where the original output is schedule-independent, the patch must
     preserve it (racy outputs are legitimately allowed to settle) *)
  (match (orig_runs, patched_runs) with
  | o0 :: _, _ ->
      let n = List.length o0.sr_output in
      let stable =
        List.for_all (fun (o : seed_run) -> List.length o.sr_output = n) orig_runs
      in
      if stable then
        List.iteri
          (fun i line ->
            let all_orig_agree =
              List.for_all (fun (o : seed_run) -> List.nth o.sr_output i = line) orig_runs
            in
            if all_orig_agree then
              List.iter
                (fun (pt : seed_run) ->
                  if List.length pt.sr_output = n && List.nth pt.sr_output i <> line then
                    errs :=
                      Fmt.str "seed %d: schedule-independent output line %d changed"
                        pt.sr_seed i
                      :: !errs)
                patched_runs)
          o0.sr_output
  | [], _ -> ());
  {
    sg_name = "behaviour";
    sg_ok = !errs = [];
    sg_detail =
      (match !errs with
      | [] ->
          Fmt.str
            "all %d schedule(s) terminate cleanly; schedule-independent output preserved"
            (List.length patched_runs)
      | e -> String.concat "; " (List.sort_uniq compare e));
  }

(** Run all four stages for one patch. *)
let verify ~orig_prog ~patched_prog ~orig_static ~orig_runs ~seeds ~domains
    ~(fixed : sigkey list) ~(group : sigkey list) : stage list * bool =
  let patched_static = M.Static_race.analyse patched_prog in
  let patched_runs = run_seeds ~domains patched_prog seeds in
  let stages =
    [
      stage_static ~orig_static ~patched_static ~fixed;
      stage_lock_order ~orig_prog ~patched_prog ~orig_runs ~patched_runs;
      stage_dynamic ~orig_runs ~patched_runs ~fixed ~group;
      stage_behaviour ~orig_runs ~patched_runs;
    ]
  in
  (stages, List.for_all (fun s -> s.sg_ok) stages)
