test/test_properties.ml: Array Fun Hashtbl List Printf QCheck2 QCheck_alcotest Raceguard_detector Raceguard_util Raceguard_vm
