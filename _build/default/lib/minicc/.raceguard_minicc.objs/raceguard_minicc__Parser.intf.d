lib/minicc/parser.mli: Ast Token
