(** A fixed-size worker pool fed by a {!Msg_queue} — the thread-pool
    concurrency pattern of §4.2.3 / Figure 11.

    Workers are created before any task data exists, so ownership of
    submitted tasks transfers through queue put/get — synchronisation
    the lock-set algorithm cannot see, unless the queue is [annotated]
    and the detector honours happens-before annotations. *)

type t

val create :
  ?annotated:bool ->
  name:string ->
  workers:int ->
  queue_capacity:int ->
  handler:(int -> unit) ->
  unit ->
  t
(** Start [workers] threads, each looping: pop a task address and run
    [handler] on it (on the worker's simulated stack). *)

val submit : t -> int -> unit
(** Submit a task address for processing.  The value [-1] is reserved
    as the shutdown sentinel. *)

val queue_length : t -> int
(** Current queue depth (takes the queue mutex) — the overload-shedding
    high-water probe. *)

val shutdown : t -> unit
(** Push one sentinel per worker and join them all; pending tasks are
    processed first (FIFO). *)
