lib/vm/memory.ml: Array Fmt Hashtbl Raceguard_util
