(** Predictive deadlock detection by lock-order analysis.

    Records the order in which threads nest lock acquisitions; an
    acquisition that closes a cycle in the order graph is reported as a
    potential deadlock, even on runs where the timing happened to be
    benign — the capability that makes the application's home-grown
    timeout detector (§3.3/§4.1) unnecessary. *)

type t

val create : ?suppressions:Suppression.t list -> unit -> t
val tool : t -> Raceguard_vm.Tool.t

val reports : t -> Report.t list
val locations : t -> (Report.t * int) list
(** One report per unordered lock pair (deduplicated). *)

val location_count : t -> int
val collector : t -> Report.collector

(** Persistent acquisition-order graph for hypothetical-edge queries.
    The repair engine builds one per program variant from static lock
    nesting and compares [inversions] before/after a patch: a verified
    patch must not create an inversion pair absent from the original. *)
module Static_graph : sig
  type t

  val empty : t
  val add_edge : t -> before:int -> after:int -> t
  (** Record that some thread can acquire [after] while holding
      [before].  Self-edges are ignored. *)

  val of_edges : (int * int) list -> t
  val edges : t -> (int * int) list
  (** Sorted, deduplicated. *)

  val reachable : t -> from:int -> target:int -> bool

  val inversions : t -> (int * int) list
  (** Every unordered pair [(a, b)] ([a < b]) acquirable in both
      orders — each is a potential deadlock.  Sorted. *)

  val adds_inversion : t -> before:int -> after:int -> bool
  (** Would adding the edge create an inversion the graph does not
      already contain? *)
end
