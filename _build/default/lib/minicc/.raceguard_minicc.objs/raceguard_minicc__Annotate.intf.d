lib/minicc/annotate.mli: Ast
