(** The SIPp stand-in: scripted UAC drivers and the eight test cases of
    the paper's evaluation (§3.3).

    Each driver runs as a VM thread with its own transport endpoint,
    sends scripted requests, checks the responses (host-side oracle),
    and the test case joins them all before shutting the server down. *)

type driver

val make_driver : transport:Transport.t -> string -> driver
(** Call from inside the VM (creates the endpoint's semaphore). *)

(** {1 Low-level driver operations} *)

val send : driver -> string -> unit
(** Send a raw wire message to the server. *)

val recv_response : driver -> string
(** Wait for one response and return its wire text. *)

val request :
  meth:Sip_msg.meth ->
  uri:string ->
  from:string ->
  to_:string ->
  call_id:string ->
  cseq:int ->
  ?contact:string ->
  ?expires:int ->
  ?auth:int ->
  unit ->
  string
(** Build a request wire message. *)

val expect : driver -> ?among:int list -> int -> unit
(** Wait for one response and record an oracle failure unless its
    status is the expected one (or in [among]). *)

(** {1 Scenario building blocks} *)

val do_register :
  driver -> user:string -> domain:string -> cseq:int -> ?expires:int -> unit -> unit

val do_unregister : driver -> user:string -> domain:string -> cseq:int -> unit

val do_register_auth : driver -> user:string -> domain:string -> cseq:int -> unit
(** Registration against a server with [require_auth]: expect the 401
    digest challenge, compute the response, retry, expect 200. *)

val do_options : driver -> domain:string -> cseq:int -> unit

val do_call :
  driver ->
  caller:string ->
  callee:string ->
  domain:string ->
  call_id:string ->
  cseq:int ->
  ?talk:int ->
  unit ->
  unit
(** One complete call: INVITE (180 + 200), ACK, pause, BYE (200). *)

val do_failed_call :
  driver -> caller:string -> callee:string -> domain:string -> call_id:string -> cseq:int -> unit

val do_cancelled_call :
  driver -> caller:string -> callee:string -> domain:string -> call_id:string -> cseq:int -> unit

val do_malformed : driver -> cseq:int -> unit

(** {1 Test cases} *)

type test_case = {
  tc_name : string;
  tc_description : string;
  tc_drivers : (string * (driver -> unit)) list;
}

(** [t1] REGISTER burst + refreshes + OPTIONS pings. *)
val t1 : test_case

(** [t2] basic INVITE/ACK/BYE calls. *)
val t2 : test_case

(** [t3] OPTIONS keep-alives only — the lightest case. *)
val t3 : test_case

(** [t4] mixed REGISTER + calls, three agents. *)
val t4 : test_case

(** [t5] concurrent calls + re-registrations — the heaviest case. *)
val t5 : test_case

(** [t6] registrar churn (register/refresh/unregister). *)
val t6 : test_case

(** [t7] error flows: malformed datagrams, 404s, stray BYEs. *)
val t7 : test_case

(** [t8] INVITE/CANCEL teardown flows. *)
val t8 : test_case

val all_test_cases : test_case list

(** {1 Running} *)

type run_result = {
  r_failures : string list;  (** oracle violations across all drivers *)
  r_responses : int;
  r_requests_handled : int;
}

val run_test_case :
  transport:Transport.t -> server_config:Proxy.config -> test_case -> unit -> run_result
(** Body to execute as the VM main thread: start the server, run every
    driver in its own thread, join them, stop and shut down. *)

(** {1 Chaos workload}

    Fault-tolerant drivers for runs with datagram faults injected: every
    request is retransmitted with bounded backoff until a matching final
    response arrives, 503s are honoured and retried, duplicates are
    discarded.  The server's resilience is a separate toggle — the
    asymmetry the chaos matrix measures. *)

type chaos_opts = {
  co_max_attempts : int;  (** per transaction, before declaring it unanswered *)
  co_attempt_timeout : int;  (** base wait (ticks) before retransmitting *)
  co_seed : int;  (** perturbs the per-transaction backoff jitter *)
}

val default_chaos_opts : chaos_opts

val chaos_test_cases : chaos_opts -> test_case list
(** The T1–T8 shapes with hardened drivers and driver-disjoint users
    (reduced iteration counts — each matrix cell is one full run). *)

type chaos_run_result = {
  cr_base : run_result;
  cr_acked_regs : (string * bool) list;
      (** chronological (aor, should-be-bound): every REGISTER /
          unREGISTER the server acknowledged with a 200 *)
  cr_shed_seen : int;  (** 503s received by drivers *)
  cr_unanswered : int;  (** transactions with no final after all retries *)
  cr_bound : string list;  (** server-side bound AORs after shutdown *)
  cr_sheds : int;  (** server-side deliberate 503 count *)
  cr_cache_hits : int;  (** retransmissions absorbed by the cache *)
  cr_retransmits : int;  (** timer-driven 200 retransmissions *)
  cr_shard_audit : string list;
      (** {!Registrar.audit} violations after shutdown (empty when the
          registrar kept its invariants — always, when unsharded) *)
  cr_shard_count : int;  (** final shard count (1 when unsharded) *)
  cr_resizes : int;  (** online shard-doublings performed *)
  cr_migrations : int;  (** bindings moved shard-to-shard *)
}

val run_chaos_test_case :
  transport:Transport.t ->
  server_config:Proxy.config ->
  test_case ->
  unit ->
  chaos_run_result
(** Chaos variant of {!run_test_case}: same lifecycle, hardened
    drivers, richer post-run evidence for the invariant oracles. *)

(** {1 The scenario DSL ([raceguard-scenario/1])}

    Data-driven call-flow scenarios: T9+ storm workloads are JSON
    documents compiled onto the hardened chaos drivers.  String fields
    substitute [%i] (innermost repeat index) and [%a] (agent name);
    CSeq numbers are assigned per agent from disjoint ranges. *)
module Scenario : sig
  type step =
    | Register of { user : string; domain : string; expires : int }
    | Unregister of { user : string; domain : string }
    | Options of { domain : string }
    | Call of { caller : string; callee : string; domain : string; talk : int }
    | Sleep of int
    | Repeat of { count : int; body : step list }

  type agent = { ag_name : string; ag_steps : step list }

  type shard_spec = { sp_initial : int; sp_grow_at : int; sp_max_shards : int }

  type t = {
    sc_name : string;
    sc_description : string;
    sc_sharding : shard_spec option;
        (** when set, the scenario runs against a sharded registrar
            ([Resilient] with the chaos resilience toggle on,
            [Legacy_striped] with it off) *)
    sc_agents : agent list;
  }

  val schema : string
  (** ["raceguard-scenario/1"] *)

  val sharding : resilient:bool -> t -> Registrar.sharding
  (** The registrar configuration this scenario's cells run against. *)

  val to_test_case : chaos_opts -> t -> test_case
  (** Compile onto the hardened chaos drivers (one thread per agent). *)

  val to_json : t -> Raceguard_obs.Json.t
  val of_json : Raceguard_obs.Json.t -> (t, string) result
  val of_string : string -> (t, string) result
end
