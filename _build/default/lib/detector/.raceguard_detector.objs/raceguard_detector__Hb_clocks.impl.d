lib/detector/hb_clocks.ml: Hashtbl Raceguard_vm Vector_clock
