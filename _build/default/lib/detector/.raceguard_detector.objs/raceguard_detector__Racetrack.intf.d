lib/detector/racetrack.mli: Hb_clocks Helgrind Raceguard_vm Report Suppression
