examples/thread_handoff.mli:
