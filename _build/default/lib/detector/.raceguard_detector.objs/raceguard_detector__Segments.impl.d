lib/detector/segments.ml: Hashtbl List Raceguard_util
