(** Per-thread held-lock bookkeeping shared by the lock-set detectors:
    uid lists as source of truth plus an interned {!ctx} bundling the
    four effective lock-sets, with memoised acquire transitions and
    snapshot-restored LIFO releases. *)

type ctx = private {
  c_id : int;
  any_set : Lockset.t;
  any_bus : Lockset.t;
  write_set : Lockset.t;
  write_bus : Lockset.t;
}

type snap
(** state before one acquire, restored by a LIFO release *)

type t = {
  mutable held_any : int list;
  mutable held_write : int list;
  mutable ctx : ctx;
  mutable snaps : snap list;
}

val create : unit -> t

val acquire : t -> int -> Raceguard_vm.Eff.mode -> unit
(** Record one acquisition of lock [uid] in the given mode. *)

val release : t -> int -> unit
(** Drop one acquisition of [uid] (both modes). *)

val effective : t -> bus_rw:bool -> atomic:bool -> Lockset.t * Lockset.t
(** The interned (any-mode, write-mode) lock-sets of one access,
    including the virtual bus lock per the configured model. *)
