(** Transactions and call sessions (dialog state).

    An INVITE creates an [InviteTransaction] and a [CallSession]; the
    ACK updates the transaction; the BYE (handled by a {e different}
    worker thread) unlinks both under their table locks and deletes
    them outside — more instances of the destructor false-positive
    pattern, at distinct report sites. *)

module Loc = Raceguard_util.Loc
module Api = Raceguard_vm.Api
module Obj_model = Raceguard_cxxsim.Object_model
module Refstring = Raceguard_cxxsim.Refstring
module Containers = Raceguard_cxxsim.Containers

let lc func line = Loc.v "dialogs.cpp" ("DialogTable::" ^ func) line

(* class Transaction { RefString call_id; int state; int cseq; }
   class ClientTransaction : Transaction { RefString branch; int retransmits; }
   class InviteTransaction : ClientTransaction { int invite_cseq; int acked; } *)
let transaction_class =
  Obj_model.define ~name:"Transaction" ~fields:[ "call_id"; "state"; "cseq" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.scrub ~file:"dialogs.cpp" ~base_line:22 cls obj ~strings:[ "call_id" ]
        ~ints:[ "state"; "cseq" ])
    ()

let client_transaction_class =
  Obj_model.define ~parent:transaction_class ~name:"ClientTransaction"
    ~fields:[ "branch"; "retransmits" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.scrub ~file:"dialogs.cpp" ~base_line:30 cls obj ~strings:[ "branch" ]
        ~ints:[ "retransmits" ])
    ()

let invite_transaction_class =
  Obj_model.define ~parent:client_transaction_class ~name:"InviteTransaction"
    ~fields:[ "invite_cseq"; "acked" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.scrub ~file:"dialogs.cpp" ~base_line:38 cls obj ~strings:[]
        ~ints:[ "acked"; "invite_cseq" ])
    ()

(* class Session { RefString caller; RefString callee; }
   class MediaSession : Session { int media_port; int codec; }
   class CallSession : MediaSession { RefString subject; int started_at; } *)
let session_class =
  Obj_model.define ~name:"Session" ~fields:[ "caller"; "callee" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.scrub ~file:"dialogs.cpp" ~base_line:48 cls obj
        ~strings:[ "caller"; "callee" ] ~ints:[])
    ()

let media_session_class =
  Obj_model.define ~parent:session_class ~name:"MediaSession"
    ~fields:[ "media_port"; "codec" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.scrub ~file:"dialogs.cpp" ~base_line:56 cls obj ~strings:[]
        ~ints:[ "media_port"; "codec" ])
    ()

let call_session_class =
  Obj_model.define ~parent:media_session_class ~name:"CallSession"
    ~fields:[ "subject"; "started_at" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.scrub ~file:"dialogs.cpp" ~base_line:64 cls obj ~strings:[ "subject" ]
        ~ints:[ "started_at" ])
    ()

(* transaction states *)
let st_proceeding = 1
let st_confirmed = 2
let st_cancelled = 3

type t = {
  mutex : Api.Mutex.t;
  transactions : Containers.Map.t;  (** hash(call_id) -> transaction *)
  sessions : Containers.Map.t;  (** hash(call_id) -> session *)
  stats : Stats.t;
}

let hash = Registrar.hash_string

let create ~alloc ~stats =
  {
    mutex = Api.Mutex.create ~loc:(lc "DialogTable" 72) "dialogs.mutex";
    transactions = Containers.Map.create alloc;
    sessions = Containers.Map.create alloc;
    stats;
  }

(** INVITE: create transaction + session, insert under the lock. *)
let start_call t ~caller ~callee ~call_id ~cseq =
  let loc = lc "startCall" 81 in
  Api.with_frame loc @@ fun () ->
  let txn =
    Obj_model.new_ ~loc invite_transaction_class ~init:(fun obj ->
        let cls = invite_transaction_class in
        Obj_model.set ~loc cls obj "call_id" (Refstring.create ~loc call_id);
        Obj_model.set ~loc cls obj "state" st_proceeding;
        Obj_model.set ~loc cls obj "cseq" cseq;
        Obj_model.set ~loc cls obj "branch" (Refstring.create ~loc ("z9hG4bK-" ^ call_id));
        Obj_model.set ~loc cls obj "retransmits" 0;
        Obj_model.set ~loc cls obj "invite_cseq" cseq;
        Obj_model.set ~loc cls obj "acked" 0)
  in
  let session =
    Obj_model.new_ ~loc call_session_class ~init:(fun obj ->
        let cls = call_session_class in
        Obj_model.set ~loc cls obj "caller" (Refstring.create ~loc caller);
        Obj_model.set ~loc cls obj "callee" (Refstring.create ~loc callee);
        Obj_model.set ~loc cls obj "media_port" (10_000 + (cseq land 0xfff));
        Obj_model.set ~loc cls obj "codec" 8;
        Obj_model.set ~loc cls obj "subject" (Refstring.create ~loc "conference");
        Obj_model.set ~loc cls obj "started_at" (Api.now ()))
  in
  let key = hash call_id in
  let duplicate =
    Api.Mutex.with_lock ~loc t.mutex (fun () ->
        match Containers.Map.find t.transactions key with
        | Some existing when existing <> 0 -> true
        | _ ->
            Containers.Map.insert t.transactions key txn;
            Containers.Map.insert t.sessions key session;
            false)
  in
  if duplicate then false
  else begin
    Stats.incr_active_calls t.stats;
    true
  end

(** ACK: mark the transaction confirmed (correctly locked). *)
let confirm t ~call_id =
  let loc = lc "confirm" 115 in
  Api.with_frame loc @@ fun () ->
  let key = hash call_id in
  Api.Mutex.with_lock ~loc t.mutex (fun () ->
      match Containers.Map.find t.transactions key with
      | Some txn when txn <> 0 ->
          let cls = invite_transaction_class in
          Obj_model.set ~loc cls txn "state" st_confirmed;
          Obj_model.set ~loc cls txn "acked" 1;
          true
      | _ -> false)

(** CANCEL: mark cancelled; the BYE/cleanup path will delete. *)
let cancel t ~call_id =
  let loc = lc "cancel" 129 in
  Api.with_frame loc @@ fun () ->
  let key = hash call_id in
  Api.Mutex.with_lock ~loc t.mutex (fun () ->
      match Containers.Map.find t.transactions key with
      | Some txn when txn <> 0 ->
          Obj_model.set ~loc invite_transaction_class txn "state" st_cancelled;
          true
      | _ -> false)

(** BYE: unlink transaction and session under the lock, delete both
    outside — two distinct destructor-FP sites per call teardown. *)
let end_call t ~annotate ~call_id =
  let loc = lc "endCall" 141 in
  Api.with_frame loc @@ fun () ->
  let key = hash call_id in
  let victims =
    Api.Mutex.with_lock ~loc t.mutex (fun () ->
        let txn = Containers.Map.find t.transactions key in
        let session = Containers.Map.find t.sessions key in
        (match txn with
        | Some x when x <> 0 -> ignore (Containers.Map.remove t.transactions key)
        | _ -> ());
        (match session with
        | Some s when s <> 0 -> ignore (Containers.Map.remove t.sessions key)
        | _ -> ());
        (txn, session))
  in
  match victims with
  | Some txn, Some session when txn <> 0 && session <> 0 ->
      Obj_model.delete_ ~loc:(lc "endCall" 157) ~annotate invite_transaction_class txn;
      Obj_model.delete_ ~loc:(lc "endCall" 158) ~annotate call_session_class session;
      Stats.decr_active_calls t.stats;
      true
  | _ -> false

let active_count t =
  Api.Mutex.with_lock ~loc:(lc "activeCount" 164) t.mutex (fun () ->
      Containers.Map.size t.sessions)
