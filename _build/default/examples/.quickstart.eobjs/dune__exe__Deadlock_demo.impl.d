examples/deadlock_demo.ml: Raceguard
