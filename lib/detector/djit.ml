(** DJIT-style happens-before race detector (Itzkovitz et al., §2.2).

    Pure vector-clock detection: an access races iff it is concurrent
    (unordered by the happens-before relation induced by thread
    create/join and synchronisation operations) with a previous
    conflicting access to the same location.

    Per the paper's discussion:
    - DJIT reports only {e apparent} races on the observed execution —
      a subset of what the lock-set approach flags — so it misses races
      that a different schedule would expose (its false negatives are
      the lock-set's strength);
    - "it detects only the first apparent data race" per location:
      [first_only] reproduces this (default true);
    - §2.2 criticises detectors that assume signal/wait imposes a
      strong order; [sync_on_cond]/[sync_on_sem] let you toggle whether
      condition-variable and semaphore edges are honoured, so the
      effect of that (unsound) assumption is measurable. *)

module Loc = Raceguard_util.Loc
module Vm = Raceguard_vm
module Vc = Vector_clock
open Vm.Event

type config = {
  sync_on_cond : bool;
  sync_on_sem : bool;
  sync_on_annotations : bool;  (** honour HAPPENS_BEFORE/AFTER requests *)
  first_only : bool;
}

let default_config =
  { sync_on_cond = true; sync_on_sem = true; sync_on_annotations = true; first_only = true }

type last_access = { a_tid : int; a_clk : int; a_loc : Loc.t }

type cell = {
  mutable last_write : last_access option;
  mutable reads : last_access list;  (** one per tid since last write *)
  mutable dead : bool;  (** stop checking after first report *)
}

type t = {
  config : config;
  clocks : Hb_clocks.t;  (** shared happens-before machinery *)
  mutable shadow : cell array;
      (** dense, indexed by word address — the VM allocator hands out
          dense word indices, so a direct-mapped array (as in
          {!Helgrind}) beats hashing on every access {e and} makes
          allocation-range re-initialisation a plain sweep *)
  collector : Report.collector;
}

let create ?(config = default_config) ?(suppressions = []) () =
  {
    config;
    clocks =
      Hb_clocks.create
        ~config:
          {
            Hb_clocks.sync_on_cond = config.sync_on_cond;
            sync_on_sem = config.sync_on_sem;
            sync_on_annotations = config.sync_on_annotations;
          }
        ();
    shadow = [||];
    collector = Report.collector ~suppressions ();
  }

let reports t = Report.occurrences t.collector
let locations t = Report.locations t.collector
let location_count t = Report.location_count t.collector
let collector t = t.collector

let thread_vc t tid = Hb_clocks.thread_vc t.clocks tid

let fresh_cell () = { last_write = None; reads = []; dead = false }

let cell t addr =
  let n = Array.length t.shadow in
  if addr >= n then begin
    let a =
      Array.init
        (max 4096 (max (2 * n) (addr + 1)))
        (fun i -> if i < n then Array.unsafe_get t.shadow i else fresh_cell ())
    in
    t.shadow <- a
  end;
  Array.unsafe_get t.shadow addr

let report t (ctx : Vm.Tool.ctx) ~kind ~tid ~addr ~loc ~(prev : last_access) =
  let block =
    match ctx.block_of addr with
    | Some (b : Vm.Memory.block) ->
        Some
          {
            Report.b_base = b.base;
            b_len = b.len;
            b_alloc_tid = b.alloc_tid;
            b_alloc_stack = b.alloc_stack;
          }
    | None -> None
  in
  Report.add t.collector
    {
      Report.kind;
      addr;
      tid;
      thread_name = ctx.thread_name tid;
      stack = loc :: ctx.stack_of tid;
      detail =
        Fmt.str "Conflicts with unordered access by thread %d at %a" prev.a_tid Loc.pp prev.a_loc;
      block;
      clock = ctx.clock ();
      provenance = None;
    }

let check_read t ctx ~tid ~addr ~loc =
  let c = cell t addr in
  if not c.dead then begin
    let me = thread_vc t tid in
    (match c.last_write with
    | Some w when w.a_tid <> tid && not (Vc.ordered_before ~tid:w.a_tid ~clk:w.a_clk me) ->
        report t ctx ~kind:Report.Race_read ~tid ~addr ~loc ~prev:w;
        if t.config.first_only then c.dead <- true
    | _ -> ());
    if not c.dead then
      c.reads <-
        { a_tid = tid; a_clk = Vc.get me tid; a_loc = loc }
        :: List.filter (fun r -> r.a_tid <> tid) c.reads
  end

let check_write t ctx ~tid ~addr ~loc =
  let c = cell t addr in
  if not c.dead then begin
    let me = thread_vc t tid in
    let conflicts =
      (match c.last_write with Some w when w.a_tid <> tid -> [ w ] | _ -> [])
      @ List.filter (fun r -> r.a_tid <> tid) c.reads
    in
    (match
       List.find_opt (fun a -> not (Vc.ordered_before ~tid:a.a_tid ~clk:a.a_clk me)) conflicts
     with
    | Some prev ->
        report t ctx ~kind:Report.Race_write ~tid ~addr ~loc ~prev;
        if t.config.first_only then c.dead <- true
    | None -> ());
    if not c.dead then begin
      c.last_write <- Some { a_tid = tid; a_clk = Vc.get me tid; a_loc = loc };
      c.reads <- []
    end
  end

(** Probe for detector composition: would an access by [tid] to [addr]
    right now be unordered with a previous conflicting access?  Pure —
    does not update any state.  [write] selects whether previous reads
    conflict too. *)
let unordered_now t ~tid ~addr ~write =
  if addr >= Array.length t.shadow then false
  else
    let c = Array.unsafe_get t.shadow addr in
    if c.dead then
      (* once [first_only] kills a cell its [last_write]/[reads] stop
         being maintained; answering from that stale state would keep
         gating composed (hybrid) warnings on an access that may long
         since have been ordered — dead cells answer [false] *)
      false
    else
      let me = thread_vc t tid in
      let unordered (a : last_access) =
        a.a_tid <> tid && not (Vc.ordered_before ~tid:a.a_tid ~clk:a.a_clk me)
      in
      (match c.last_write with Some w when unordered w -> true | _ -> false)
      || (write && List.exists unordered c.reads)

let on_event t (ctx : Vm.Tool.ctx) (e : Vm.Event.t) =
  Hb_clocks.on_event t.clocks e;
  match e with
  | E_read { tid; addr; loc; _ } -> check_read t ctx ~tid ~addr ~loc
  | E_write { tid; addr; loc; _ } -> check_write t ctx ~tid ~addr ~loc
  | E_alloc { addr; len; _ } ->
      (* range clear on the dense shadow (one array sweep, no hashing;
         the old Hashtbl shadow paid one probe per byte of every
         allocation); slots past the frontier are already fresh *)
      let n = Array.length t.shadow in
      for a = addr to min (addr + len - 1) (n - 1) do
        let c = Array.unsafe_get t.shadow a in
        c.last_write <- None;
        c.reads <- [];
        c.dead <- false
      done
  | E_thread_start _ | E_thread_exit _ | E_join _ | E_spawn _ | E_free _ | E_sync_create _
  | E_acquire _ | E_release _ | E_cond_signal _ | E_cond_wait_pre _ | E_cond_wait_post _
  | E_sem_post _ | E_sem_wait_post _ | E_client _ ->
      ()

let tool t = Vm.Tool.make ~name:"djit" ~on_event:(on_event t)
