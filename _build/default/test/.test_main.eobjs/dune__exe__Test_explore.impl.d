test/test_explore.ml: Alcotest Fmt List Raceguard Raceguard_detector Raceguard_util Raceguard_vm
