(** Call graph for MiniC++ programs, feeding {!Static_race}.

    Nodes are free functions, methods and destructors; edges resolve
    virtual dispatch conservatively (every class defining the called
    method) and [delete] conservatively (every destructor).  Roots are
    [main] plus every [Spawn] target — the places a thread can start. *)

type node =
  | Func of string
  | Method of string * string  (** class, method *)
  | Dtor of string  (** class *)

val node_name : node -> string
(** The interpreter's frame-attribution name: [f], [C::m] or [C::~C]. *)

val compare_node : node -> node -> int

type t

val build : Ast.program -> t

val nodes : t -> node list
(** All nodes, in declaration order. *)

val roots : t -> node list
(** [main] (when present) first, then spawn targets in source order. *)

val callees : t -> node -> node list

val n_edges : t -> int

val reachable : t -> node list
(** Nodes reachable from the roots. *)

val unreachable_functions : t -> string list
(** Free functions no thread can reach — dead code the static pass
    skips and the lint output mentions. *)

val may_recurse : t -> node -> bool
(** [node] participates in a call cycle (including self-recursion). *)

val may_alter_locks : t -> node -> bool
(** [node] or a transitive callee uses an unbalanced lock builtin
    ([mutex_lock] & friends), i.e. calling it can change the caller's
    held-lock set; scoped [lock] blocks cannot. *)

val pp : Format.formatter -> t -> unit
