(** The raceguard-fix pipeline: analyse → confirm → synthesise →
    verify → emit.

    Given one MiniC++ source file the engine runs the static lockset
    pass and the dynamic detectors over a set of schedule seeds,
    cross-checks them ({!Raceguard.Static_dyn}), plans one patch per
    confirmed [(site, field)] group ({!Synth}), verifies each candidate
    four ways ({!Verify}), folds every verified patch into a combined
    repaired program, and re-parses the pretty-printed repair to prove
    the emitted {e source} — not just the in-memory AST — still checks
    and carries the same residual static warnings.

    Results render as a human report ({!pp}) or the machine-readable
    [raceguard-fix/1] document ({!to_json}). *)

module M = Raceguard_minicc
module Det = Raceguard_detector
module Static_dyn = Raceguard.Static_dyn
module Json = Raceguard_obs.Json
module Report = Det.Report
module Loc = Raceguard_util.Loc
module Token = M.Token

type patch_result = {
  pr_id : int;
  pr_plan : Synth.plan;
  pr_patched : M.Ast.program option;  (** [None] when application failed *)
  pr_source : string option;  (** pretty-printed repaired source *)
  pr_stages : Verify.stage list;
  pr_verified : bool;
  pr_error : string option;  (** application failure, if any *)
}

type t = {
  t_file : string;
  t_seeds : int list;
  t_domains : int;
  t_cross : Static_dyn.t;
  t_confirmed : Verify.sigkey list;
  t_patches : patch_result list;
  t_unfixed : (string * string) list;  (** (group description, reason) *)
  t_combined_source : string option;
      (** all verified patches folded into one repaired source *)
  t_recheck_ok : bool;
      (** every verified patch's emitted source re-parses, re-checks
          and re-analyses identically to its patched AST *)
}

let default_seeds = [ 1; 2; 3; 5; 7 ]

let header file =
  Fmt.str "// repaired by raceguard-fix/1 from %s" (Filename.basename file)

(** Re-parse one emitted repair and prove it equivalent to the patched
    AST it was printed from: same front-end acceptance, same static
    warning multiset. *)
let recheck_source ~file ~patched src =
  match M.Preprocess.parse (M.Preprocess.with_builtins ()) ~file src with
  | exception e -> Error (Fmt.str "emitted source no longer parses: %s" (Printexc.to_string e))
  | reparsed -> (
      match M.Check.check_all reparsed with
      | (msg, _) :: _ -> Error (Fmt.str "emitted source no longer checks: %s" msg)
      | [] ->
          let sigs p =
            List.sort compare
              (List.map
                 (fun (w : M.Static_race.warning) ->
                   Static_dyn.sig_of w.M.Static_race.w_kind w.M.Static_race.w_stack)
                 (M.Static_race.analyse p).M.Static_race.warnings)
          in
          if sigs reparsed = sigs patched then Ok ()
          else Error "emitted source carries different static warnings than the patched AST")

let run ?(seeds = default_seeds) ?(domains = 1) ~file ~src () : (t, string) result =
  let seeds = List.sort_uniq compare seeds in
  match M.Preprocess.parse (M.Preprocess.with_builtins ()) ~file src with
  | exception e -> Error (Fmt.str "front-end: %s" (Printexc.to_string e))
  | p0 -> (
      match M.Check.check_all p0 with
      | (msg, pos) :: _ ->
          Error (Fmt.str "%s:%d:%d: %s" pos.Token.file pos.Token.line pos.Token.col msg)
      | [] ->
          let static0 = M.Static_race.analyse p0 in
          let orig_runs = Verify.run_seeds ~domains p0 seeds in
          let dynamic = List.concat_map (fun r -> r.Verify.sr_reports) orig_runs in
          let cross = Static_dyn.cross_check ~static:static0 ~dynamic in
          let confirmed = Static_dyn.confirmed_sigs cross in
          let plans, unfixed = Synth.plan_groups p0 static0 ~confirmed in
          let patches =
            List.mapi
              (fun i plan ->
                match Synth.apply p0 plan with
                | Error e ->
                    {
                      pr_id = i;
                      pr_plan = plan;
                      pr_patched = None;
                      pr_source = None;
                      pr_stages = [];
                      pr_verified = false;
                      pr_error = Some e;
                    }
                | Ok patched ->
                    let stages, verified =
                      Verify.verify ~orig_prog:p0 ~patched_prog:patched
                        ~orig_static:static0 ~orig_runs ~seeds ~domains
                        ~fixed:plan.Synth.pl_fixed_sigs ~group:plan.Synth.pl_group_sigs
                    in
                    {
                      pr_id = i;
                      pr_plan = plan;
                      pr_patched = Some patched;
                      pr_source =
                        Some (M.Pretty.program ~header_comment:(header file) patched);
                      pr_stages = stages;
                      pr_verified = verified;
                      pr_error = None;
                    })
              plans
          in
          let verified_patches = List.filter (fun pr -> pr.pr_verified) patches in
          let combined =
            match verified_patches with
            | [] -> None
            | _ ->
                List.fold_left
                  (fun acc pr ->
                    match acc with
                    | None -> None
                    | Some p -> (
                        match Synth.apply p pr.pr_plan with
                        | Ok p' -> Some p'
                        | Error _ -> None))
                  (Some p0) verified_patches
          in
          let recheck_ok =
            List.for_all
              (fun pr ->
                match (pr.pr_patched, pr.pr_source) with
                | Some patched, Some src ->
                    recheck_source ~file ~patched src = Ok ()
                | _ -> true)
              verified_patches
          in
          Ok
            {
              t_file = file;
              t_seeds = seeds;
              t_domains = domains;
              t_cross = cross;
              t_confirmed = confirmed;
              t_patches = patches;
              t_unfixed = unfixed;
              t_combined_source =
                Option.map (M.Pretty.program ~header_comment:(header file)) combined;
              t_recheck_ok = recheck_ok;
            })

let n_verified t = List.length (List.filter (fun p -> p.pr_verified) t.t_patches)

let n_rejected t =
  List.length (List.filter (fun p -> not p.pr_verified) t.t_patches)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let sig_json (kind, stack) =
  Json.Obj
    [
      ("kind", Json.Str (Fmt.str "%a" Report.pp_kind kind));
      ( "stack",
        Json.List
          (List.map
             (fun (l : Loc.t) ->
               Json.Obj
                 [
                   ("file", Json.Str l.Loc.file);
                   ("func", Json.Str l.Loc.func);
                   ("line", Json.int l.Loc.line);
                 ])
             stack) );
    ]

let patch_json pr =
  let plan = pr.pr_plan in
  Json.Obj
    ([
       ("id", Json.int pr.pr_id);
       ("site", Json.int plan.Synth.pl_site.M.Static_race.site_id);
       ( "site_desc",
         Json.Str plan.Synth.pl_site.M.Static_race.site_desc );
       ("field", Json.Str plan.Synth.pl_field);
       ("strategy", Json.Str plan.Synth.pl_strategy);
       ("guard", Json.Str plan.Synth.pl_guard_desc);
       ("fixed", Json.List (List.map sig_json plan.Synth.pl_fixed_sigs));
       ( "wraps",
         Json.List
           (List.map
              (fun (node, (pos : Token.pos)) ->
                Json.Obj
                  [
                    ("func", Json.Str node);
                    ("line", Json.int pos.Token.line);
                    ("col", Json.int pos.Token.col);
                  ])
              plan.Synth.pl_targets) );
       ("edits", Json.List (List.map (fun e -> Json.Str e) plan.Synth.pl_edits));
       ( "stages",
         Json.List
           (List.map
              (fun (s : Verify.stage) ->
                Json.Obj
                  [
                    ("name", Json.Str s.Verify.sg_name);
                    ("ok", Json.Bool s.Verify.sg_ok);
                    ("detail", Json.Str s.Verify.sg_detail);
                  ])
              pr.pr_stages) );
       ("verified", Json.Bool pr.pr_verified);
     ]
    @ (match pr.pr_error with
      | Some e -> [ ("error", Json.Str e) ]
      | None -> [])
    @ match pr.pr_source with Some s -> [ ("source", Json.Str s) ] | None -> [])

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str "raceguard-fix/1");
      ("file", Json.Str t.t_file);
      ("seeds", Json.List (List.map Json.int t.t_seeds));
      ("confirmed", Json.List (List.map sig_json t.t_confirmed));
      ("patches", Json.List (List.map patch_json t.t_patches));
      ( "unfixed",
        Json.List
          (List.map
             (fun (group, reason) ->
               Json.Obj [ ("group", Json.Str group); ("reason", Json.Str reason) ])
             t.t_unfixed) );
      ( "summary",
        Json.Obj
          [
            ("patches", Json.int (List.length t.t_patches));
            ("verified", Json.int (n_verified t));
            ("rejected", Json.int (n_rejected t));
            ("unfixed", Json.int (List.length t.t_unfixed));
            ("recheck_ok", Json.Bool t.t_recheck_ok);
          ] );
    ]

let pp ppf t =
  Fmt.pf ppf "== raceguard-fix: %s ==@\n" t.t_file;
  Fmt.pf ppf "seeds: %a; confirmed findings: %d@\n"
    Fmt.(list ~sep:(any ",") int)
    t.t_seeds (List.length t.t_confirmed);
  List.iter
    (fun pr ->
      let plan = pr.pr_plan in
      Fmt.pf ppf "@\npatch #%d [%s] %s of %s via %s@\n" pr.pr_id
        plan.Synth.pl_strategy plan.Synth.pl_site.M.Static_race.site_desc
        (M.Static_race.field_desc plan.Synth.pl_field)
        plan.Synth.pl_guard_desc;
      List.iter (fun e -> Fmt.pf ppf "  edit: %s@\n" e) plan.Synth.pl_edits;
      (match pr.pr_error with
      | Some e -> Fmt.pf ppf "  application FAILED: %s@\n" e
      | None ->
          List.iter
            (fun (s : Verify.stage) ->
              Fmt.pf ppf "  [%s] %-10s %s@\n"
                (if s.Verify.sg_ok then "pass" else "FAIL")
                s.Verify.sg_name s.Verify.sg_detail)
            pr.pr_stages);
      Fmt.pf ppf "  verdict: %s@\n"
        (if pr.pr_verified then "VERIFIED" else "rejected"))
    t.t_patches;
  List.iter
    (fun (group, reason) -> Fmt.pf ppf "@\nunfixed %s: %s@\n" group reason)
    t.t_unfixed;
  Fmt.pf ppf "@\nsummary: %d patch(es), %d verified, %d rejected, %d unfixed%s@\n"
    (List.length t.t_patches) (n_verified t) (n_rejected t)
    (List.length t.t_unfixed)
    (if t.t_recheck_ok then "" else "; EMITTED-SOURCE RECHECK FAILED")
