(** A GNU-libstdc++-style copy-on-write reference-counted string — the
    [std::string] of Figures 8/9.

    The shared representation block carries a reference counter updated
    with bus-locked increments but {e inspected} with plain reads: the
    access mix that the original Helgrind bus-lock model misreports and
    the HWLC correction accepts. *)

module Loc = Raceguard_util.Loc

type t = int
(** Address of the representation block ([refcount; length; chars...]). *)

val create : loc:Loc.t -> string -> t
(** Fresh representation with reference count 1. *)

val length : t -> int
val get_char : t -> int -> int

val is_shared : t -> bool
(** Plain (unlocked) read of the reference counter — the
    [_M_is_shared]-style check. *)

val copy : t -> t
(** Share the representation: plain check + bus-locked increment
    ([_M_grab]). *)

val release : t -> unit
(** Drop one reference (bus-locked decrement); frees the representation
    at zero ([_M_dispose]). *)

val to_string : t -> string
(** Read the character data out (plain reads). *)

val clone : loc:Loc.t -> t -> t
(** Deep copy into a fresh representation. *)

val set_char : loc:Loc.t -> t -> int -> char -> t
(** Copy-on-write mutation: unshares first when needed; returns the
    (possibly new) representation. *)

val equal : t -> t -> bool
val hash : t -> int
