(* Test aggregator: every suite registers here; run with `dune runtest`. *)

let () =
  Alcotest.run "raceguard"
    [
      Test_util.suite;
      Test_vm.suite;
      Test_detector.suite;
      Test_hb.suite;
      Test_cxxsim.suite;
      Test_minicc.suite;
      Test_minicc_gen.suite;
      Test_sip.suite;
      Test_sip_internals.suite;
      Test_classify.suite;
      Test_explore.suite;
      Test_properties.suite;
      Test_fasttrack.suite;
      Test_faults.suite;
      Test_shards.suite;
      Test_fastpath.suite;
      Test_static.suite;
      Test_callgraph.suite;
      Test_fix.suite;
      Test_obs.suite;
      Test_trace.suite;
      Test_par.suite;
      Test_experiments.suite;
    ]
