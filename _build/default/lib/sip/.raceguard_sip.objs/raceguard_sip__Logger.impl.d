lib/sip/logger.ml: Array List Printf Raceguard_cxxsim Raceguard_util Raceguard_vm Stats Timeutil
