(** The registrar: user → contact bindings behind one mutex.

    Binding objects are created by the worker handling a REGISTER and
    later deleted by {e different} workers (refresh, unregister,
    expiry) after being unlinked under the lock — correct code whose
    destructor chains are the paper's dominant false-positive class
    until the DR annotation suppresses them. *)

module Refstring = Raceguard_cxxsim.Refstring

val binding_class : Raceguard_cxxsim.Object_model.class_desc
val contact_binding_class : Raceguard_cxxsim.Object_model.class_desc

val hash_string : string -> int
(** djb2-style hash used as container key for AORs/call-ids. *)

type t

val create : alloc:Raceguard_cxxsim.Allocator.t -> stats:Stats.t -> t

val register :
  t ->
  annotate:bool ->
  aor:string ->
  contact:string ->
  cseq:int ->
  expires:int ->
  [ `Registered | `Refreshed ]
(** Add or refresh a binding; a refresh unlinks the old binding under
    the lock and deletes it outside (the FP-generating pattern). *)

val unregister : t -> annotate:bool -> aor:string -> bool

val lookup : t -> aor:string -> Refstring.t option
(** Current contact for an AOR, as a {e copy} of the stored string
    (caller must release it); [None] if absent or expired. *)

val expire_stale : t -> annotate:bool -> int
(** Delete every expired binding; returns how many. *)

val size : t -> int

val bound_aors : t -> string list
(** Host-side mirror of the currently bound AORs, sorted — post-run
    oracle use only (no VM traffic, safe after shutdown). *)
