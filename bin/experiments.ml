(** Command-line entry point regenerating the paper's tables/figures.

    {v
    raceguard-experiments list          # available experiments
    raceguard-experiments run fig6      # one experiment
    raceguard-experiments run all       # everything
    raceguard-experiments explain T4    # per-warning provenance
    v} *)

open Cmdliner

let list_cmd =
  let doc = "List available experiments." in
  let run () =
    List.iter
      (fun (name, descr, _) -> Printf.printf "%-10s %s\n" name descr)
      Raceguard.Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run one experiment (or 'all')." in
  let experiment_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT" ~doc:"experiment id")
  in
  let run name =
    let run_one (id, descr, f) =
      Printf.printf "==== %s — %s ====\n%!" id descr;
      print_endline (f ());
      print_newline ()
    in
    if name = "all" then begin
      List.iter run_one Raceguard.Experiments.all;
      `Ok ()
    end
    else
      match List.find_opt (fun (id, _, _) -> id = name) Raceguard.Experiments.all with
      | Some e ->
          run_one e;
          `Ok ()
      | None ->
          `Error
            ( false,
              Printf.sprintf "unknown experiment %S; try 'raceguard-experiments list'" name )
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(ret (const run $ experiment_arg))

let explain_cmd =
  let doc =
    "Explain every warning of a test case: shadow-state history plus the config knobs (hwlc, \
     dr, segments, hb) that would suppress it."
  in
  let test_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TEST" ~doc:"test case (T1..T8)")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"emit machine-readable JSON instead of text")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"VM scheduling seed") in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE" ~doc:"write a Chrome trace_event JSON of the run to $(docv)")
  in
  let sample_arg =
    Arg.(
      value & opt int 1
      & info [ "sample" ] ~docv:"N" ~doc:"trace 1-in-$(docv) offered events (with --trace)")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE" ~doc:"write the run's metrics snapshot JSON to $(docv)")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "worker domains: run each detector configuration as its own cell on the \
             work-stealing pool (1 = sequential, 0 = auto); warnings and attribution are \
             identical for any value")
  in
  let run test json seed trace sample metrics domains =
    match Raceguard.Explain.test_case_of_string test with
    | None -> `Error (false, Printf.sprintf "unknown test case %S (expected T1..T8)" test)
    | Some tc ->
        let module Obs = Raceguard_obs in
        let tracer =
          match trace with
          | None -> None
          | Some _ -> Some (Obs.Trace.create ~capacity:65536 ~sample ())
        in
        let runner = { Raceguard.Runner.default with seed; tracer } in
        let x = Raceguard.Explain.run ~runner ~domains tc in
        if json then print_endline (Obs.Json.to_string ~indent:2 (Raceguard.Explain.to_json x))
        else Fmt.pr "%a@." Raceguard.Explain.pp x;
        (match (trace, tracer) with
        | Some file, Some tr ->
            let oc = open_out file in
            output_string oc (Obs.Trace.to_string tr);
            close_out oc;
            Printf.eprintf "trace: %s (%d records, %d offered)\n%!" file (Obs.Trace.recorded tr)
              (Obs.Trace.offered tr)
        | _ -> ());
        (match metrics with
        | Some file ->
            let oc = open_out file in
            output_string oc
              (Obs.Json.to_string ~indent:2
                 (Obs.Metrics.to_json x.Raceguard.Explain.x_result.Raceguard.Runner.metrics));
            close_out oc;
            Printf.eprintf "metrics: %s\n%!" file
        | None -> ());
        `Ok ()
  in
  Cmd.v
    (Cmd.info "explain" ~doc)
    Term.(
      ret
        (const run $ test_arg $ json_arg $ seed_arg $ trace_arg $ sample_arg $ metrics_arg
       $ domains_arg))

let chaos_cmd =
  let doc =
    "Run the chaos matrix: fault plans crossed with SIP test cases, with and without the \
     proxy's resilience layer, judged by post-run invariant oracles.  Exits non-zero unless \
     every resilient cell is violation-free and at least one baseline cell violates an \
     oracle."
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"emit the raceguard-chaos/1 JSON report")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"CI smoke subset (3 plans on T2/T6)")
  in
  let seed_arg = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"matrix seed") in
  let plan_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ] ~docv:"NAME" ~doc:"run only the named fault plan")
  in
  let test_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "test" ] ~docv:"T" ~doc:"run only the named test case (T1..T8)")
  in
  let no_fast_path_arg =
    Arg.(
      value & flag
      & info [ "no-fast-path" ]
          ~doc:"disable the detector fast path (digests must not change)")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"write the report (JSON or text) to $(docv)")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "worker domains for the cell grid (1 = sequential, 0 = auto); every digest is \
             identical for any value")
  in
  let run json quick seed plan test no_fast_path out domains =
    let base = if quick then Raceguard.Chaos.quick else Raceguard.Chaos.default in
    let config = { base with Raceguard.Chaos.seed; fast_path = not no_fast_path; domains } in
    let with_plan =
      match plan with
      | None -> Ok config
      | Some name -> (
          match Raceguard_faults.Plan.lookup name with
          | Some p -> Ok { config with Raceguard.Chaos.plans = [ p ] }
          | None -> Error (Printf.sprintf "unknown fault plan %S" name))
    in
    match with_plan with
    | Error e -> `Error (false, e)
    | Ok config -> (
        let config =
          match test with
          | None -> config
          | Some t ->
              {
                config with
                Raceguard.Chaos.tests =
                  List.filter
                    (fun (tc : Raceguard_sip.Workload.test_case) -> tc.tc_name = t)
                    config.Raceguard.Chaos.tests;
              }
        in
        match config.Raceguard.Chaos.tests with
        | [] -> `Error (false, "no test cases selected (expected T1..T8)")
        | _ ->
            let report = Raceguard.Chaos.run config in
            let rendered =
              if json then
                Raceguard_obs.Json.to_string ~indent:2
                  (Raceguard.Chaos.to_json ~config report)
                ^ "\n"
              else Fmt.str "%a@." Raceguard.Chaos.pp report
            in
            (match out with
            | Some file ->
                let oc = open_out file in
                output_string oc rendered;
                close_out oc;
                Printf.eprintf "chaos report: %s\n%!" file
            | None -> print_string rendered);
            if report.Raceguard.Chaos.rp_resilient_violations > 0 then begin
              (* a resilient cell broke an invariant oracle: the one
                 outcome that must never pass CI — exit 1 outright
                 (cmdliner's `Error path would exit 124, which generic
                 shell wrappers don't treat as a test failure) *)
              Printf.eprintf "chaos matrix FAILED: %d resilient cell violation(s)\n%!"
                report.Raceguard.Chaos.rp_resilient_violations;
              exit 1
            end;
            if Raceguard.Chaos.passed report then `Ok ()
            else `Error (false, "chaos matrix failed: invariant asymmetry not established"))
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      ret
        (const run $ json_arg $ quick_arg $ seed_arg $ plan_arg $ test_arg $ no_fast_path_arg
       $ out_arg $ domains_arg))

let json_check_cmd =
  let doc =
    "Validate that a file parses with the project's own JSON parser and report its schema \
     (CI smoke for machine-readable outputs)."
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"JSON file")
  in
  let run file =
    let ic = open_in_bin file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    let module Json = Raceguard_obs.Json in
    match Json.parse s with
    | Ok j ->
        let schema =
          match j with
          | Json.Obj fields -> (
              match List.assoc_opt "schema" fields with
              | Some (Json.Str s) -> s
              | _ -> "<none>")
          | _ -> "<not an object>"
        in
        Printf.printf "%s: ok (schema %s)\n" file schema;
        `Ok ()
    | Error e -> `Error (false, Printf.sprintf "%s: JSON parse error: %s" file e)
  in
  Cmd.v (Cmd.info "json-check" ~doc) Term.(ret (const run $ file_arg))

let () =
  let doc = "Reproduce the tables and figures of the paper." in
  let info = Cmd.info "raceguard-experiments" ~version:"0.9" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; explain_cmd; chaos_cmd; json_check_cmd ]))
