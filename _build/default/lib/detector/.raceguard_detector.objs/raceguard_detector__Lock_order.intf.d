lib/detector/lock_order.mli: Raceguard_vm Report Suppression
