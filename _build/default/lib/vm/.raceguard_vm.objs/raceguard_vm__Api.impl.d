lib/vm/api.ml: Eff Fun Raceguard_util
