(** Static lockset & thread-escape analysis for MiniC++ — the lint
    companion to the dynamic Helgrind detector.

    Walks the AST interprocedurally from [main] and every [Spawn]
    target, computing must-held locksets per access (with the HWLC bus
    lock implicit on reads and bus-locked RMWs), fork-join ordering
    windows, and a thread-escape closure over allocation sites.
    Conflicting concurrent accesses to escaping sites with disjoint
    locksets become warnings whose [Loc.t] stacks mirror the
    interpreter's dynamic frames, so they can be cross-checked against
    dynamic {!Raceguard_detector.Report} signatures.

    See DESIGN.md §10 for what this pass can and cannot promise. *)

module Loc = Raceguard_util.Loc
module Report = Raceguard_detector.Report
module Suppression = Raceguard_detector.Suppression

module ISet : Set.S with type elt = int

type site = {
  site_id : int;
  site_loc : Loc.t;
  site_desc : string;  (** e.g. ["new Counter"], ["alloc"], ["mutex"] *)
  site_cls : string option;
  site_alloc : bool;  (** a memory allocation (locality-hint candidate) *)
}

type warning = {
  w_kind : Report.kind;  (** {!Report.Race_write} or {!Report.Race_read} *)
  w_stack : Loc.t list;  (** innermost first, like dynamic report stacks *)
  w_pos : Token.pos;  (** precise span (line and column) of the racing access *)
  w_site : site;
  w_field : string;  (** field name, ["<vptr>"], or ["[]"] for raw words *)
  w_locks : ISet.t;  (** real locks held at the access (bus excluded) *)
  w_counter_kind : Report.kind;
  w_counter_stack : Loc.t list;  (** one conflicting concurrent access *)
  w_counter_pos : Token.pos;
}

type access_info = {
  ac_kind : Report.kind;
  ac_site : int;
  ac_field : string;
  ac_stack : Loc.t list;
  ac_pos : Token.pos;
  ac_locks : ISet.t;  (** real locks held (bus excluded) *)
  ac_warned : bool;  (** participates in some race warning *)
}
(** One deduplicated abstract access.  The repair engine groups these by
    [(ac_site, ac_field)] to choose a guard lock and find every access
    that needs wrapping. *)

type stats = {
  n_roots : int;  (** thread roots walked (main + distinct spawns) *)
  n_accesses : int;  (** deduplicated access records *)
  n_sites : int;
  n_alloc_sites : int;
  n_escaping : int;
  cg_nodes : int;
  cg_edges : int;
  passes : int;  (** heap fixpoint passes run *)
  truncated : bool;  (** an analysis bound was hit; results are partial *)
}

type result = {
  warnings : warning list;
  suppressions : Suppression.t list;
      (** for consistently-guarded shared accesses, [of_frames]-shaped *)
  sites : site list;  (** every abstract site (locks and allocations), id order *)
  accesses : access_info list;  (** every recorded access, first-seen order *)
  local_allocs : site list;  (** allocation sites proven thread-local *)
  escaping_allocs : site list;
  hint_locs : (string * int) list;
      (** (file, line) pairs safe to pre-mark thread-local in the
          dynamic detector ({!Raceguard_detector.Helgrind.set_static_hints}) *)
  unreachable : string list;  (** free functions no thread reaches *)
  stats : stats;
}

val analyse : Ast.program -> result
(** Run the analysis on a checked program.  Deterministic; terminates
    on all inputs (bounded loops, calls, and passes — [stats.truncated]
    says whether a bound was hit). *)

val field_desc : string -> string
(** ["<vptr>"] → ["vptr"], ["[]"] → ["word"], otherwise
    ["field 'f'"] — the rendering used by warnings and the repair
    engine alike. *)

val pp_warning : Format.formatter -> warning -> unit
val pp_result : Format.formatter -> result -> unit
(** Human-readable lint rendering, Valgrind-flavoured stacks. *)

val to_json : file:string -> result -> Raceguard_obs.Json.t
(** The machine-readable [raceguard-lint/1] document. *)
