(** Hybrid lock-set × happens-before detection — the Multi-Race /
    O'Callahan-Choi combination surveyed in §2.2.

    A {!Helgrind} instance performs the lock-set analysis; each of its
    candidate warnings is admitted only if a {!Djit} instance on the
    same event stream confirms the access is concurrent with a previous
    conflicting access.  Precision up; DJIT's schedule-dependence is
    the price. *)

type gate_engine =
  | Vector_clocks  (** full-VC {!Djit} gate — the historical default *)
  | Epochs  (** {!Fasttrack} gate with adaptive demotion — same answers *)

type config = {
  helgrind : Helgrind.config;
  sync_on_cond : bool;  (** HB edges for condition variables *)
  sync_on_sem : bool;  (** HB edges for semaphores *)
  gate : gate_engine;
}

val default_config : config
(** HWLC+DR lock-sets, all HB edge sources on, vector-clock gate. *)

val epoch_config : config
(** [default_config] with the epoch ({!Fasttrack}) gate. *)

type t

val create : ?config:config -> ?suppressions:Suppression.t list -> unit -> t
val tool : t -> Raceguard_vm.Tool.t
val on_event : t -> Raceguard_vm.Tool.ctx -> Raceguard_vm.Event.t -> unit

val reports : t -> Report.t list
val locations : t -> (Report.t * int) list
val location_count : t -> int
val collector : t -> Report.collector
