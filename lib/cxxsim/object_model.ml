(** The C++ object model, reduced to its memory behaviour.

    What matters for race detection is not C++ syntax but the memory
    access patterns the compiled code performs.  Two of them are the
    sources of the paper's dominant false-positive class (§4.2.1):

    - {b construction}: each constructor in the chain (base first, then
      derived) writes the object's vptr slot to its own class's vtable
      before running its body;
    - {b destruction}: each destructor in the chain (most-derived
      first, then bases) {e writes the vptr back} to its own class's
      vtable — "the destructor of the super-class should only see the
      properties of its class and therefore the environment has to be
      changed" — then runs its body, and finally the memory is
      released.

    Those vptr writes are plain unsynchronised stores into memory that
    is typically in a SHARED state, so Helgrind warns.  The paper's DR
    improvement wraps every [delete] so that a [VALGRIND_HG_DESTRUCT]
    client request marks the memory exclusive first; [delete_]
    reproduces exactly that (Figure 4) behind the [~annotate] switch
    (the build-time instrumentation toggle). *)

module Loc = Raceguard_util.Loc
module Api = Raceguard_vm.Api

type class_desc = {
  cls_name : string;
  parent : class_desc option;
  own_fields : string list;
  dtor_body : (t -> int -> unit) option;
      (** user-written destructor body for this level; receives the
          class (for field access) and the object address *)
}

and t = class_desc

(* vtable ids: one per class name, assigned on first use.  The table is
   domain-local (the multicore pool runs independent cells on several
   domains): ids are only ever written into VM memory and compared
   within one cell, so per-domain numbering is invisible to cell
   behaviour, and a shared Hashtbl would race. *)
type vtables = { mutable next_vtable : int; vtable_ids : (string, int) Hashtbl.t }

let vtables_key : vtables Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { next_vtable = 1; vtable_ids = Hashtbl.create 64 })

let vtable_id cls =
  let vt = Domain.DLS.get vtables_key in
  match Hashtbl.find_opt vt.vtable_ids cls.cls_name with
  | Some id -> id
  | None ->
      let id = vt.next_vtable in
      vt.next_vtable <- id + 1;
      Hashtbl.replace vt.vtable_ids cls.cls_name id;
      id

(** Define a class.  [parent] gives single inheritance. *)
let define ?parent ?dtor_body ~name ~fields () =
  { cls_name = name; parent; own_fields = fields; dtor_body }

let rec chain cls = match cls.parent with None -> [ cls ] | Some p -> chain p @ [ cls ]
(** base-most first *)

let all_fields cls = List.concat_map (fun c -> c.own_fields) (chain cls)

(** object size in words: one vptr slot + all fields *)
let size cls = 1 + List.length (all_fields cls)

(** word offset of a field within the object (vptr is slot 0) *)
let field_offset cls name =
  let rec go i = function
    | [] -> Fmt.invalid_arg "field %S not found in class %s" name cls.cls_name
    | f :: rest -> if f = name then i else go (i + 1) rest
  in
  go 1 (all_fields cls)

(* ------------------------------------------------------------------ *)
(* new / delete                                                        *)
(* ------------------------------------------------------------------ *)

(** [operator new] + constructor chain: allocate, then let each level
    base→derived install its vtable pointer and zero its own fields.
    [init] runs as the most-derived constructor body. *)
let new_ ~loc ?(init = fun _ -> ()) cls =
  let addr = Api.alloc ~loc (size cls) in
  List.iter
    (fun level ->
      (* each constructor level rewrites the vptr to its own vtable *)
      Api.write ~loc:{ loc with Loc.func = level.cls_name ^ "::" ^ level.cls_name } addr
        (vtable_id level))
    (chain cls);
  init addr;
  addr

(** Read the vptr — what a virtual call does before dispatching. *)
let vptr ~loc addr = Api.read ~loc addr

let get ~loc cls addr field = Api.read ~loc (addr + field_offset cls field)
let set ~loc cls addr field v = Api.write ~loc (addr + field_offset cls field) v

(** Helper for writing destructor bodies: release each ref-counted
    string field and scrub each plain field, giving every access its
    own source line — compiled destructors touch each member at a
    distinct instruction, so each member is a distinct report site. *)
let scrub ~file ~base_line cls obj ~strings ~ints =
  List.iteri
    (fun i f ->
      let loc = Raceguard_util.Loc.v file (cls.cls_name ^ "::~" ^ cls.cls_name) (base_line + i) in
      let s = get ~loc cls obj f in
      if s <> 0 then Refstring.release s)
    strings;
  List.iteri
    (fun i f ->
      let loc =
        Raceguard_util.Loc.v file
          (cls.cls_name ^ "::~" ^ cls.cls_name)
          (base_line + List.length strings + i)
      in
      set ~loc cls obj f 0)
    ints

(** Destructor chain + [operator delete].

    [annotate = true] corresponds to compiling with the paper's
    automatic source instrumentation: the argument is passed through a
    [ca_deletor_single]-style helper that issues [VALGRIND_HG_DESTRUCT]
    before any destructor runs (Figure 4).  With [annotate = false]
    (the uninstrumented build) the vptr writes below hit memory still
    in a shared state and each becomes a spurious race report. *)
let delete_ ~loc ~annotate cls addr =
  if addr <> 0 then begin
    if annotate then Api.hg_destruct ~addr ~len:(size cls);
    List.iter
      (fun level ->
        let dloc = { loc with Loc.func = level.cls_name ^ "::~" ^ level.cls_name } in
        (* entering this destructor level: the object's dynamic type
           reverts to this class — write the vptr *)
        Api.write ~loc:dloc addr (vtable_id level);
        match level.dtor_body with None -> () | Some body -> body level addr)
      (List.rev (chain cls));
    Api.free ~loc addr
  end
