(** Classification of reported locations.

    Figure 5 splits every test case's reports into hardware-bus-lock
    false positives, destructor false positives, and the rest, by
    {e differencing} the three configurations; on top of that the
    ground-truth oracle ({!Raceguard_sip.Bugs}) attributes remaining
    reports to the injected real bugs. *)

module Det = Raceguard_detector

module Sig_set : Set.S with type elt = Det.Report.signature

val signature_set : (Det.Report.t * int) list -> Sig_set.t

type split = {
  hw_lock_fp : int;  (** removed by the HWLC correction *)
  destructor_fp : int;  (** removed by the DR annotation *)
  remaining : int;  (** still reported by HWLC+DR *)
  remaining_true : int;  (** remaining & matching a known injected bug *)
  remaining_recovery : int;
      (** remaining & running through the resilience machinery
          (recovery-path traffic, not an injected bug) *)
  remaining_other : int;  (** remaining, unattributed (pool FPs etc.) *)
  total : int;  (** locations reported by the Original configuration *)
}

val split :
  original:(Det.Report.t * int) list ->
  hwlc:(Det.Report.t * int) list ->
  hwlc_dr:(Det.Report.t * int) list ->
  split

val reduction_pct : split -> float
(** Percentage of the Original population removed by HWLC+DR. *)

val bugs_found : (Det.Report.t * int) list -> Raceguard_sip.Bugs.id list
(** Which injected bugs the locations witness (sorted, deduplicated). *)
